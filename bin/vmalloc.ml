(* vmalloc — command-line front end.

   Subcommands:
     generate   write a random problem instance to a file
     solve      run one algorithm on an instance (file or generated)
     compare    run the major algorithms on an instance and tabulate
     inspect    parse an instance file and print a summary
     simulate   run the online-hosting simulation (extension)
     theorem    print the Theorem 1 table

   Examples:
     vmalloc generate -o inst.txt --hosts 16 --services 64 --cov 0.7
     vmalloc solve inst.txt --algo metahvplight
     vmalloc compare inst.txt
     vmalloc solve --hosts 8 --services 24 --algo metavp   (generate ad hoc) *)

open Cmdliner

(* Shared generation options. *)

type gen_opts = {
  hosts : int;
  services : int;
  cov : float;
  slack : float;
  cpu_homogeneous : bool;
  mem_homogeneous : bool;
  seed : int;
}

let gen_opts_term =
  let hosts =
    Arg.(value & opt int 16 & info [ "hosts" ] ~docv:"H"
           ~doc:"Number of nodes.")
  in
  let services =
    Arg.(value & opt int 48 & info [ "services" ] ~docv:"J"
           ~doc:"Number of services.")
  in
  let cov =
    Arg.(value & opt float 0.5 & info [ "cov" ] ~docv:"C"
           ~doc:"Coefficient of variation of node capacities (0 = \
                 homogeneous).")
  in
  let slack =
    Arg.(value & opt float 0.4 & info [ "slack" ] ~docv:"S"
           ~doc:"Memory slack in (0,1); lower is harder.")
  in
  let cpu_h =
    Arg.(value & flag & info [ "cpu-homogeneous" ]
           ~doc:"Hold CPU capacities at 0.5.")
  in
  let mem_h =
    Arg.(value & flag & info [ "mem-homogeneous" ]
           ~doc:"Hold memory capacities at 0.5.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Random seed.")
  in
  let make hosts services cov slack cpu_homogeneous mem_homogeneous seed =
    { hosts; services; cov; slack; cpu_homogeneous; mem_homogeneous; seed }
  in
  Term.(const make $ hosts $ services $ cov $ slack $ cpu_h $ mem_h $ seed)

let generate_instance (o : gen_opts) =
  Workload.Generator.generate
    ~rng:(Prng.Rng.create ~seed:o.seed)
    {
      Workload.Generator.hosts = o.hosts;
      services = o.services;
      cov = o.cov;
      slack = o.slack;
      cpu_homogeneous = o.cpu_homogeneous;
      mem_homogeneous = o.mem_homogeneous;
    }

let load_or_generate file opts =
  match file with
  | Some path -> (
      match Model.Codec.read_file path with
      | Ok inst -> Ok inst
      | Error e -> Error (Printf.sprintf "cannot read %s: %s" path e))
  | None -> (
      try Ok (generate_instance opts)
      with Invalid_argument e -> Error e)

let instance_file_term =
  Arg.(value & pos 0 (some file) None
       & info [] ~docv:"INSTANCE"
           ~doc:"Instance file (omit to generate one from the options).")

(* generate *)

let generate_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: stdout).")
  in
  let run opts output =
    match (try Ok (generate_instance opts) with Invalid_argument e -> Error e)
    with
    | Error e -> `Error (false, e)
    | Ok inst -> (
        match output with
        | Some path ->
            Model.Codec.write_file path inst;
            Printf.printf "wrote %s (%d nodes, %d services)\n" path
              (Model.Instance.n_nodes inst)
              (Model.Instance.n_services inst);
            `Ok ()
        | None ->
            print_string (Model.Codec.to_string inst);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random problem instance (paper §4).")
    Term.(ret (const run $ gen_opts_term $ output))

(* solve *)

(* [--domains 0] is the documented "read $VMALLOC_DOMAINS" sentinel;
   anything negative is a usage error, reported on one line with nonzero
   exit rather than silently clamped. *)
let check_domains = function
  | 0 -> Ok (Experiments.Scale.domains_from_env ())
  | d when d > 0 -> Ok d
  | d ->
      Error
        (Printf.sprintf
           "--domains %d: the domain count must be positive (or 0 to read \
            $VMALLOC_DOMAINS)"
           d)

let unknown_algorithm name =
  Printf.sprintf "unknown algorithm %S (valid: %s)" name
    (String.concat ", " Heuristics.Algorithms.valid_names)

let algo_term =
  Arg.(value & opt string "metahvplight"
       & info [ "algo" ] ~docv:"NAME"
           ~doc:"Algorithm: rrnd, rrnz, rrnd-probed, rrnz-probed (rounding \
                 from warm-started yield probes), metagreedy, metavp, \
                 metahvp, metahvplight, or milp (exact, small instances \
                 only).")

let stats_term =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Collect the deterministic operation counters (oracle \
                 probes, strategy wins, bins examined, ...) during the run \
                 and print the merged snapshot after the result.")

let print_stats () =
  print_string (Obs.Metrics.Snapshot.render (Obs.Metrics.snapshot ()))

(* ---- Output sinks ---------------------------------------------------- *)

(* Every file-producing option (--trace, --trace-folded, --timeline,
   --timeline-prom, --stats-out) goes through one registry: the path is
   validated writable up front — a typo'd directory is a one-line usage
   error before the run, not a lost trace after it — and the content is
   flushed by an at_exit hook, so even a run that dies mid-way leaves
   whatever was captured on disk. Each sink is written exactly once
   (commands flush explicitly on the normal path; at_exit is the safety
   net). *)
let sinks : (string * (unit -> string) * bool ref) list ref = ref []
let sinks_hooked = ref false

let flush_sinks () =
  List.iter
    (fun (path, render, written) ->
      if not !written then begin
        written := true;
        try
          let oc = open_out path in
          output_string oc (render ());
          close_out oc
        with Sys_error _ -> ()
      end)
    (List.rev !sinks)

let register_sink path render =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      close_out oc;
      if not !sinks_hooked then begin
        sinks_hooked := true;
        at_exit flush_sinks
      end;
      sinks := (path, render, ref false) :: !sinks;
      Ok ()

(* [register_sinks [(path_opt, render); ...]] registers the present ones
   left to right, stopping at the first unwritable path. *)
let register_sinks specs =
  List.fold_left
    (fun acc (path, render) ->
      match (acc, path) with
      | Error _, _ | _, None -> acc
      | Ok (), Some path -> register_sink path render)
    (Ok ()) specs

let stats_out_term =
  Arg.(value & opt (some string) None
       & info [ "stats-out" ] ~docv:"FILE"
           ~doc:"Write the merged counter/histogram snapshot as JSON to \
                 $(docv) when the run ends (implies counter collection, \
                 with or without --stats).")

let trace_folded_term =
  Arg.(value & opt (some string) None
       & info [ "trace-folded" ] ~docv:"FILE"
           ~doc:"Fold the span trace into collapsed stacks — one \
                 $(b,root;child;leaf self-microseconds) line per distinct \
                 stack, the format flamegraph.pl and speedscope consume — \
                 and write them to $(docv).")

(* ---- solve --batch --------------------------------------------------- *)

(* One job per non-empty, non-[#] line of the batch file. A line is either
   a bare instance-file path, or whitespace-separated [key=value] pairs
   overriding the command-line generator options — [hosts], [services],
   [cov], [slack], [seed] — plus [algo=NAME] to pick the per-job
   algorithm. Results come back in line order whatever the pool size. *)
let parse_batch_line ~(defaults : gen_opts) ~default_algo lineno line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m))
      fmt
  in
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Ok None
  | [ path ] when not (String.contains path '=') -> (
      match Model.Codec.read_file path with
      | Ok inst -> Ok (Some (default_algo, defaults.seed, inst))
      | Error e -> fail "cannot read %s: %s" path e)
  | tokens -> (
      let parse acc tok =
        match acc with
        | Error _ -> acc
        | Ok (opts, algo) -> (
            match String.index_opt tok '=' with
            | None -> fail "bad token %S (expected key=value or a file path)" tok
            | Some i ->
                let key = String.lowercase_ascii (String.sub tok 0 i) in
                let v = String.sub tok (i + 1) (String.length tok - i - 1) in
                let int_v f =
                  match int_of_string_opt v with
                  | Some n -> Ok (f n)
                  | None -> fail "%s=%S: expected an integer" key v
                in
                let float_v f =
                  match float_of_string_opt v with
                  | Some x -> Ok (f x)
                  | None -> fail "%s=%S: expected a number" key v
                in
                let opt r = Result.map (fun o -> (o, algo)) r in
                (match key with
                | "hosts" -> opt (int_v (fun n -> { opts with hosts = n }))
                | "services" ->
                    opt (int_v (fun n -> { opts with services = n }))
                | "seed" -> opt (int_v (fun n -> { opts with seed = n }))
                | "cov" -> opt (float_v (fun x -> { opts with cov = x }))
                | "slack" -> opt (float_v (fun x -> { opts with slack = x }))
                | "algo" -> Ok (opts, v)
                | k ->
                    fail "unknown key %S (expected hosts, services, cov, \
                          slack, seed, or algo)" k))
      in
      match List.fold_left parse (Ok (defaults, default_algo)) tokens with
      | Error _ as e -> e
      | Ok (opts, algo) -> (
          match generate_instance opts with
          | inst -> Ok (Some (algo, opts.seed, inst))
          | exception Invalid_argument e -> fail "%s" e))

let load_batch_jobs ~defaults ~default_algo path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) acc
        else
          match parse_batch_line ~defaults ~default_algo lineno line with
          | Error _ as e -> e
          | Ok None -> go (lineno + 1) acc
          | Ok (Some (algo_name, seed, inst)) -> (
              match Heuristics.Algorithms.by_name ~seed algo_name with
              | None ->
                  Error
                    (Printf.sprintf "line %d: %s" lineno
                       (unknown_algorithm algo_name))
              | Some algo ->
                  go (lineno + 1)
                    ({ Heuristics.Batch.algo; instance = inst } :: acc))
  in
  go 1 []

let run_batch ~jobs ~domains ~depth =
  let jobs = Array.of_list jobs in
  let t0 = Unix.gettimeofday () in
  let results =
    Par.Pool.with_pool ~domains (fun pool ->
        let sched = Par.Scheduler.create ~pool in
        Heuristics.Batch.solve_batch ?depth ~sched jobs)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i result ->
      match result with
      | Some (sol : Heuristics.Vp_solver.solution) ->
          Printf.printf "[%d] %s: minimum yield %.4f\n" i
            jobs.(i).Heuristics.Batch.algo.name sol.min_yield
      | None ->
          Printf.printf "[%d] %s: no feasible placement\n" i
            jobs.(i).Heuristics.Batch.algo.name)
    results;
  Printf.printf "%d jobs on %d domain(s): %.3fs total, %.3fs/job\n"
    (Array.length jobs) domains dt
    (dt /. float_of_int (max 1 (Array.length jobs)))

let solve_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"Print per-service yields and the placement.")
  in
  let batch =
    Arg.(value & opt (some file) None
         & info [ "batch" ] ~docv:"FILE"
             ~doc:"Solve a multi-tenant batch over one shared domain pool: \
                   one job per non-empty, non-# line of $(docv) — either a \
                   bare instance-file path or key=value overrides (hosts, \
                   services, cov, slack, seed, algo) of this command's \
                   options. Probe rounds of all jobs interleave on the \
                   pool; results print in line order and are bit-identical \
                   to solving each line separately.")
  in
  let depth =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"M"
             ~doc:"With --batch: force the speculation depth of every \
                   yield-search round instead of the adaptive cost-model \
                   choice (results are bit-identical at any value).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains for speculative parallel yield probes \
                   (0 = read \\$VMALLOC_DOMAINS, defaulting to the \
                   recommended domain count; 1 = sequential). The result \
                   is bit-identical at any value.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a span trace of the solve and write it to \
                   $(docv) in Chrome trace-event JSON (open in \
                   chrome://tracing or Perfetto).")
  in
  let run file opts algo_name verbose domains stats trace trace_folded
      stats_out batch depth =
    match check_domains domains with
    | Error e -> `Error (false, e)
    | Ok domains -> (
        match
          register_sinks
            [
              (trace, fun () -> Obs.Trace.to_json ());
              (trace_folded, fun () -> Obs.Trace.to_folded ());
              ( stats_out,
                fun () ->
                  Obs.Metrics.Snapshot.to_json (Obs.Metrics.snapshot ()) );
            ]
        with
        | Error e -> `Error (false, e)
        | Ok () -> (
            if stats || stats_out <> None then begin
              Obs.Metrics.reset ();
              Obs.Metrics.set_enabled true
            end;
            let tracing = trace <> None || trace_folded <> None in
            if tracing then Obs.Trace.start ();
            let finish () =
              if stats then print_stats ();
              if tracing then Obs.Trace.stop ();
              flush_sinks ();
              Option.iter
                (fun path ->
                  Printf.eprintf "wrote trace %s (%d events)\n%!" path
                    (Obs.Trace.event_count ()))
                trace;
              Option.iter
                (fun path ->
                  Printf.eprintf "wrote folded stacks %s\n%!" path)
                trace_folded;
              Option.iter
                (fun path -> Printf.eprintf "wrote stats %s\n%!" path)
                stats_out;
              `Ok ()
            in
            match batch with
            | Some batch_file -> (
                if file <> None then
                  `Error
                    ( false,
                      "--batch and a positional INSTANCE are mutually \
                       exclusive (reference instance files from the batch \
                       lines instead)" )
                else
                  match
                    load_batch_jobs ~defaults:opts ~default_algo:algo_name
                      batch_file
                  with
                  | Error e -> `Error (false, e)
                  | Ok [] ->
                      `Error
                        (false, Printf.sprintf "%s: no jobs" batch_file)
                  | Ok jobs ->
                      run_batch ~jobs ~domains ~depth;
                      finish ())
            | None -> (
                match load_or_generate file opts with
                | Error e -> `Error (false, e)
                | Ok inst -> (
                    match
                      Heuristics.Algorithms.by_name ~seed:opts.seed algo_name
                    with
                    | None -> `Error (false, unknown_algorithm algo_name)
                    | Some algo ->
                        let solve () =
                          if domains > 1 then
                            Par.Pool.with_pool ~domains (fun pool ->
                                algo.solve ~pool inst)
                          else algo.solve inst
                        in
                        let t0 = Sys.time () in
                        let result = solve () in
                        let dt = Sys.time () -. t0 in
                        (match result with
                        | None ->
                            Printf.printf
                              "%s: no feasible placement (%.3fs)\n" algo.name
                              dt
                        | Some sol ->
                            Printf.printf "%s: minimum yield %.4f (%.3fs)\n"
                              algo.name sol.min_yield dt;
                            if verbose then begin
                              match
                                Model.Placement.water_fill inst sol.placement
                              with
                              | None -> ()
                              | Some alloc ->
                                  print_string
                                    (Model.Report.render inst alloc)
                            end);
                        finish ()))))
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Place services with one algorithm (--domains > 1 runs the \
             yield search's probes in parallel; --batch multiplexes many \
             jobs over one pool; --stats / --stats-out / --trace / \
             --trace-folded observe the run).")
    Term.(ret (const run $ instance_file_term $ gen_opts_term $ algo_term
               $ verbose $ domains $ stats_term $ trace $ trace_folded_term
               $ stats_out_term $ batch $ depth))

(* compare *)

let domains_term =
  Arg.(value & opt int 0
       & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for running the algorithms in parallel \
                 (0 = read \\$VMALLOC_DOMAINS, defaulting to the \
                 recommended domain count; 1 = sequential).")

let compare_cmd =
  let run file opts domains stats stats_out =
    match load_or_generate file opts with
    | Error e -> `Error (false, e)
    | Ok inst -> (
        match check_domains domains with
        | Error e -> `Error (false, e)
        | Ok domains -> (
            match
              register_sinks
                [
                  ( stats_out,
                    fun () ->
                      Obs.Metrics.Snapshot.to_json (Obs.Metrics.snapshot ())
                  );
                ]
            with
            | Error e -> `Error (false, e)
            | Ok () ->
            if stats || stats_out <> None then begin
              Obs.Metrics.reset ();
              Obs.Metrics.set_enabled true
            end;
            let table =
              Stats.Table.create
                ~headers:[ "algorithm"; "min yield"; "time (s)" ]
            in
            let all =
              Array.of_list
                (Heuristics.Algorithms.majors ~seed:opts.seed
                @ [ Heuristics.Algorithms.metahvplight ])
            in
            (* One task per algorithm; rows — and, with [--stats], the
               per-task metric sinks — land in registry order either way. *)
            let rows =
              Par.Pool.with_pool ~domains (fun pool ->
                  Par.Pool.map pool all
                    (fun (algo : Heuristics.Algorithms.t) ->
                      let t0 = Unix.gettimeofday () in
                      let cell =
                        match algo.solve inst with
                        | Some sol -> Printf.sprintf "%.4f" sol.min_yield
                        | None -> "fail"
                      in
                      [ algo.name; cell;
                        Printf.sprintf "%.3f" (Unix.gettimeofday () -. t0) ]))
            in
            Array.iter (Stats.Table.add_row table) rows;
            Stats.Table.print table;
            if stats then print_stats ();
            flush_sinks ();
            Option.iter
              (fun path -> Printf.eprintf "wrote stats %s\n%!" path)
              stats_out;
            `Ok ()))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run the paper's major algorithms on one instance (in parallel \
             with --domains > 1; --stats prints the merged operation \
             counters, --stats-out writes them as JSON).")
    Term.(ret (const run $ instance_file_term $ gen_opts_term $ domains_term
               $ stats_term $ stats_out_term))

(* inspect *)

let inspect_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"INSTANCE" ~doc:"Instance file.")
  in
  let run file =
    match Model.Codec.read_file file with
    | Error e -> `Error (false, e)
    | Ok inst ->
        let open Vec in
        let total = Model.Instance.total_capacity inst in
        let reqs = Model.Instance.total_requirement inst in
        let needs = Model.Instance.total_need inst in
        Format.printf "%a@." Model.Analysis.pp (Model.Analysis.analyze inst);
        Printf.printf "total capacity:    %s\n" (Vector.to_string total);
        Printf.printf "total requirement: %s\n" (Vector.to_string reqs);
        Printf.printf "total need:        %s\n" (Vector.to_string needs);
        (match Heuristics.Milp.relaxed_bound inst with
        | Some b -> Printf.printf "LP yield bound:    %.4f\n" b
        | None -> print_endline "LP yield bound:    infeasible");
        `Ok ()
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Summarize an instance file.")
    Term.(ret (const run $ file))

(* simulate *)

let simulate_cmd =
  let horizon =
    Arg.(value & opt float 150. & info [ "horizon" ] ~docv:"T"
           ~doc:"Simulated time units.")
  in
  let arrival_rate =
    Arg.(value & opt float 0.8 & info [ "arrival-rate" ] ~docv:"R"
           ~doc:"Poisson arrival intensity.")
  in
  let mean_lifetime =
    Arg.(value & opt float 30. & info [ "lifetime" ] ~docv:"L"
           ~doc:"Mean (exponential) service lifetime.")
  in
  let period =
    Arg.(value & opt float 10. & info [ "period" ] ~docv:"P"
           ~doc:"Reallocation period.")
  in
  let max_error =
    Arg.(value & opt float 0.0 & info [ "error" ] ~docv:"E"
           ~doc:"Max CPU-need estimation error.")
  in
  let threshold =
    Arg.(value & opt string "0" & info [ "threshold" ] ~docv:"T"
           ~doc:"Mitigation threshold: a number, or 'adaptive'.")
  in
  let hosts =
    Arg.(value & opt int 10 & info [ "hosts" ] ~docv:"H"
           ~doc:"Number of nodes (two generations).")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:"Partition the platform into $(docv) disjoint node shards \
                   simulated independently; stats and event logs are merged \
                   deterministically by (time, shard). 1 = the plain \
                   single-engine run.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains for running the shards in parallel (0 = \
                   read \\$VMALLOC_DOMAINS, defaulting to the recommended \
                   domain count; 1 = sequential). The merged output is \
                   byte-identical at any value.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record shard/reallocation spans and write them to \
                   $(docv) in Chrome trace-event JSON.")
  in
  let policy =
    Arg.(value & opt string "resolve"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Placement policy: 'resolve' re-solves each shard every \
                   reallocation epoch; 'greedy-random' and 'best-fit' place \
                   arrivals by probing candidate bins and repair locally on \
                   departures, falling back to a full re-solve only on \
                   drift.")
  in
  let repair_budget =
    Arg.(value & opt int 8
         & info [ "repair-budget" ] ~docv:"N"
             ~doc:"Max services re-packed per departure-triggered repair \
                   pass (probe policies only).")
  in
  let algo =
    Arg.(value & opt string "metahvplight"
         & info [ "algo" ] ~docv:"NAME"
             ~doc:"Placement algorithm for epoch/fallback re-solves \
                   ('greedy' is the cheap single-pass choice for large \
                   runs).")
  in
  let partition =
    Arg.(value & opt string "contiguous"
         & info [ "partition" ] ~docv:"P"
             ~doc:"Node partition across shards: 'contiguous' index \
                   ranges, or 'capacity' for the LPT capacity-balanced \
                   assignment.")
  in
  let timeline =
    Arg.(value & opt (some string) None
         & info [ "timeline" ] ~docv:"FILE"
             ~doc:"Sample sim-clock gauges (global yield, active services, \
                   shard imbalance, repair/bins/pivot rates) on a fixed \
                   virtual-time grid and write them to $(docv) as JSONL. \
                   Byte-identical at any --domains value.")
  in
  let timeline_prom =
    Arg.(value & opt (some string) None
         & info [ "timeline-prom" ] ~docv:"FILE"
             ~doc:"Like --timeline, in the Prometheus text exposition \
                   format (sim time as the sample timestamp).")
  in
  let timeline_interval =
    Arg.(value & opt float 5.
         & info [ "timeline-interval" ] ~docv:"DT"
             ~doc:"Virtual-time sampling interval for --timeline / \
                   --timeline-prom.")
  in
  let run horizon arrival_rate mean_lifetime period max_error threshold hosts
      seed shards domains stats trace policy repair_budget algo partition
      trace_folded stats_out timeline timeline_prom timeline_interval =
    let threshold_mode =
      if String.lowercase_ascii threshold = "adaptive" then
        Ok (Simulator.Engine.Adaptive
              (Sharing.Adaptive_threshold.create ~quantile:90. ()))
      else
        match float_of_string_opt threshold with
        | Some t when t >= 0. -> Ok (Simulator.Engine.Fixed t)
        | _ -> Error ("bad threshold: " ^ threshold)
    in
    let placement_mode =
      match Simulator.Policy.of_string policy with
      | Some p -> Ok p
      | None ->
          Error
            (Printf.sprintf "bad policy: %s (expected %s)" policy
               (String.concat " | " Simulator.Policy.valid_names))
    in
    let algorithm_mode =
      match Heuristics.Algorithms.by_name ~seed algo with
      | Some a -> Ok a
      | None ->
          Error
            (Printf.sprintf "bad algorithm: %s (expected %s)" algo
               (String.concat " | " Heuristics.Algorithms.valid_names))
    in
    let partition_mode =
      match String.lowercase_ascii partition with
      | "contiguous" -> Ok Simulator.Sharded.Contiguous
      | "capacity" | "capacity-balanced" ->
          Ok Simulator.Sharded.Capacity_balanced
      | _ ->
          Error
            (Printf.sprintf
               "bad partition: %s (expected contiguous | capacity)" partition)
    in
    match
      ( threshold_mode,
        check_domains domains,
        placement_mode,
        algorithm_mode,
        partition_mode )
    with
    | Error e, _, _, _, _
    | _, Error e, _, _, _
    | _, _, Error e, _, _
    | _, _, _, Error e, _
    | _, _, _, _, Error e ->
        `Error (false, e)
    | Ok threshold, Ok domains, Ok placement, Ok algorithm, Ok partition -> (
        let want_timeline = timeline <> None || timeline_prom <> None in
        if want_timeline && timeline_interval <= 0. then
          `Error
            ( false,
              Printf.sprintf "--timeline-interval %g: must be positive"
                timeline_interval )
        else
        let tl_ref = ref None in
        let tl_render f () =
          match !tl_ref with Some tl -> f tl | None -> ""
        in
        match
          register_sinks
            [
              (trace, fun () -> Obs.Trace.to_json ());
              (trace_folded, fun () -> Obs.Trace.to_folded ());
              ( stats_out,
                fun () ->
                  Obs.Metrics.Snapshot.to_json (Obs.Metrics.snapshot ()) );
              (timeline, tl_render Obs.Timeline.to_jsonl);
              (timeline_prom, tl_render Obs.Timeline.to_prom);
            ]
        with
        | Error e -> `Error (false, e)
        | Ok () -> (
        let platform =
          Array.init hosts (fun id ->
              if id < hosts / 2 then
                Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
              else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)
        in
        let config =
          {
            Simulator.Engine.default_config with
            horizon;
            arrival_rate;
            mean_lifetime;
            reallocation_period = period;
            max_error;
            threshold;
            memory_scale = 0.5;
            placement;
            repair_budget;
            algorithm;
          }
        in
        if stats || stats_out <> None then begin
          Obs.Metrics.reset ();
          Obs.Metrics.set_enabled true
        end;
        let tracing = trace <> None || trace_folded <> None in
        if tracing then Obs.Trace.start ();
        let timeline_interval =
          if want_timeline then Some timeline_interval else None
        in
        let simulate () =
          if domains > 1 && shards > 1 then
            Par.Pool.with_pool ~domains (fun pool ->
                Simulator.Sharded.run ~pool ~seed ~shards ~partition
                  ?timeline_interval config ~platform)
          else
            Simulator.Sharded.run ~seed ~shards ~partition ?timeline_interval
              config ~platform
        in
        match simulate () with
        | { merged; _ } as result ->
            if shards > 1 then Printf.printf "shards: %d\n" shards;
            if placement <> Simulator.Policy.Resolve then
              Printf.printf "policy: %s (repair budget %d)\n"
                (Simulator.Policy.to_string placement)
                repair_budget;
            Printf.printf
              "horizon %.0f: %d arrivals (%d rejected), %d departures\n\
               %d reallocations (%d failed), %d migrations\n\
               time-averaged minimum yield: %.4f\n\
               final threshold: %.3f\n"
              horizon merged.arrivals merged.rejected merged.departures
              merged.reallocations merged.failed_reallocations
              merged.migrations merged.mean_min_yield merged.final_threshold;
            tl_ref := result.Simulator.Sharded.timeline;
            if stats then print_stats ();
            if tracing then Obs.Trace.stop ();
            flush_sinks ();
            Option.iter
              (fun path ->
                Printf.eprintf "wrote trace %s (%d events)\n%!" path
                  (Obs.Trace.event_count ()))
              trace;
            Option.iter
              (fun path -> Printf.eprintf "wrote folded stacks %s\n%!" path)
              trace_folded;
            Option.iter
              (fun path -> Printf.eprintf "wrote stats %s\n%!" path)
              stats_out;
            (match !tl_ref with
            | Some tl ->
                let note path =
                  Printf.eprintf "wrote timeline %s (%d samples)\n%!" path
                    (Obs.Timeline.length tl)
                in
                Option.iter note timeline;
                Option.iter note timeline_prom
            | None -> ());
            `Ok ()
        | exception Invalid_argument e -> `Error (false, e)))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the online-hosting simulation (arrivals/departures with \
             periodic reallocation; --shards partitions the platform into \
             independent shards, --domains runs them in parallel, --stats / \
             --stats-out / --trace / --trace-folded / --timeline observe \
             the run).")
    Term.(ret (const run $ horizon $ arrival_rate $ mean_lifetime $ period
               $ max_error $ threshold $ hosts $ seed $ shards $ domains
               $ stats_term $ trace $ policy $ repair_budget $ algo
               $ partition $ trace_folded_term $ stats_out_term $ timeline
               $ timeline_prom $ timeline_interval))

(* report *)

let report_cmd =
  let history =
    Arg.(value & opt string "bench/history"
         & info [ "history" ] ~docv:"DIR"
             ~doc:"Bench history directory (one \
                   $(b,<git-rev>-<n>.json) archive per bench run).")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"REV"
             ~doc:"Baseline git rev for deltas and the regression gate \
                   (default: the oldest rev in the history).")
  in
  let max_regression =
    Arg.(value & opt float 25.
         & info [ "max-regression" ] ~docv:"PCT"
             ~doc:"Fail when a gated (deterministic counter) metric's \
                   latest value exceeds the baseline by more than $(docv) \
                   percent. Wall-clock metrics are never gated.")
  in
  let run history baseline max_regression =
    match Obs.Report.load ~dir:history with
    | Error e -> `Error (false, e)
    | Ok t -> (
        let baseline =
          match baseline with
          | Some rev -> rev
          | None -> (Obs.Report.revs t).(0)
        in
        match Obs.Report.render ~baseline t with
        | Error e -> `Error (false, e)
        | Ok table -> (
            print_string table;
            match
              Obs.Report.gate ~baseline ~max_regression_pct:max_regression t
            with
            | Error e -> `Error (false, e)
            | Ok [] ->
                Printf.printf
                  "\ngate: ok (no gated metric above baseline %s +%g%%)\n"
                  baseline max_regression;
                `Ok ()
            | Ok failures ->
                print_newline ();
                print_string (Obs.Report.render_failures failures);
                `Error
                  ( false,
                    Printf.sprintf
                      "%d gated metric(s) regressed past %g%% of baseline %s"
                      (List.length failures) max_regression baseline )))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render the bench-history observatory (per-metric sparkline \
             trends across revs, deltas vs a baseline) and gate the \
             deterministic counter metrics against regressions.")
    Term.(ret (const run $ history $ baseline $ max_regression))

(* theorem *)

let theorem_cmd =
  let run () =
    print_string
      (Experiments.Theorem_check.report (Experiments.Theorem_check.run ()));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "theorem"
       ~doc:"Check the EQUALWEIGHTS competitive-ratio theorem empirically.")
    Term.(ret (const run $ const ()))

let () =
  let doc =
    "virtual machine resource allocation on heterogeneous platforms \
     (Casanova, Stillwell, Vivien; IPDPS 2012)"
  in
  let info = Cmd.info "vmalloc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; solve_cmd; compare_cmd; inspect_cmd; simulate_cmd;
            report_cmd; theorem_cmd ]))
