(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (at a configurable scale — see Experiments.Scale and
   DESIGN.md §3/§4).

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 figfamilies
             successrate ranking hvplight theorem ablation online parbench
             probepar kernel batch lp obs sim micro (default: all).
   Scale: VMALLOC_SCALE=small|medium|paper (default small).
   Parallelism: VMALLOC_DOMAINS=N (default: recommended domain count;
   1 = legacy sequential path). Results are bit-for-bit independent of N;
   wall times per section land in BENCH_par.json. *)

let progress msg = Printf.eprintf "[bench] %s\n%!" msg

let section_header name =
  Printf.printf "\n%s\n%s\n" name (String.make (String.length name) '=')

(* The experiment drivers' trial fan-out. [None] = legacy sequential
   path (VMALLOC_DOMAINS=1). *)
let pool : Par.Pool.t option ref = ref None

let pool_size () =
  match !pool with Some p -> Par.Pool.size p | None -> 1

(* Wall time per executed section, in execution order, for BENCH_par.json. *)
let section_times : (string * float) list ref = ref []

(* Sequential vs N-domain comparisons recorded by the parbench section. *)
type comparison = {
  c_section : string;
  c_domains : int;
  sequential_s : float;
  parallel_s : float;
}

let comparisons : comparison list ref = ref []

(* Sequential vs k-probe yield-search comparisons (one instance, one
   algorithm) recorded by the probepar section. *)
type probe_comparison = {
  p_algorithm : string;
  p_domains : int;
  p_seq_rounds : int;
  p_par_rounds : int;
  p_seq_s : float;
  p_par_s : float;
}

let probe_comparisons : probe_comparison list ref = ref []

(* Per-algorithm operation counts recorded by the obs section, as
   (algorithm, Snapshot JSON) pairs in run order. *)
let obs_snapshots : (string * string) list ref = ref []

(* METAHVP wall time with the metric sinks disabled vs enabled — the
   zero-overhead-when-disabled check. *)
let obs_overhead : (float * float) option ref = ref None

(* Online-simulator measurements recorded by the sim section. *)
type sim_scale_point = {
  s_horizon : float;
  s_admitted : int;
  s_seconds : float;
}

let sim_scaling : sim_scale_point list ref = ref []
let sim_skips : int option ref = ref None

type sim_shard_run = {
  sh_shards : int;
  sh_domains : int;
  sh_seconds : float;
  sh_identical : bool;
}

let sim_shard_runs : sim_shard_run list ref = ref []

(* Placement-policy comparison (full re-solve vs incremental probe
   placement + local repair) recorded by the online section. Everything
   but the wall time is deterministic. *)
type online_run = {
  o_policy : string;
  o_hosts : int;
  o_events : int;  (* arrivals + departures *)
  o_bins_touched : int;
  o_repairs : int;
  o_fallbacks : int;
  o_admitted : int;
  o_mean_yield : float;
  o_seconds : float;
}

let online_runs : online_run list ref = ref []

(* Kernel vs naive probe-path comparisons (probe-shared packing kernel,
   DESIGN.md §11) recorded by the kernel section. *)
type kernel_run = {
  k_algorithm : string;
  k_domains : int;
  k_kernel_s : float;
  k_naive_s : float;
  k_identical : bool;
}

let kernel_runs : kernel_run list ref = ref []

(* Multi-tenant batched solving vs back-to-back serial solves (batch
   section, DESIGN.md §16): N concurrent yield searches multiplexed over
   one scheduler pool. Round counts and result identity are deterministic
   (stdout); wall times, speculative waste and scratch reuses vary with
   the host / domain scheduling and go to stderr and the batch block of
   BENCH_par.json. The CI-gated headline is the round ratio — serial
   binary-search rounds per interleaved scheduler round — not wall
   clock. *)
type batch_run = {
  b_tenants : int;
  b_domains : int;
  b_serial_s : float;
  b_batched_s : float;
  b_serial_rounds : int;
  b_sched_rounds : int;
  b_waste : int;
  b_scratch_reuses : int;
  b_identical : bool;
}

let batch_runs : batch_run list ref = ref []

(* Dense-tableau vs sparse-revised simplex wall times on one LP (lp
   section). Pivot counts and objectives are deterministic; wall times are
   not, so only the former print to stdout. *)
type lp_solver_run = {
  l_label : string;
  l_n_vars : int;
  l_n_cons : int;
  l_dense_s : float;
  l_revised_s : float;
  l_agree : bool;
}

let lp_solver_runs : lp_solver_run list ref = ref []

(* Cold vs warm-started yield-probe sequences (lp section): total revised
   pivots across the whole binary search, both arms. *)
type lp_probe_run = {
  l_instance : string;
  l_cold_pivots : int;
  l_warm_pivots : int;
  l_warm_starts : int;
  l_cold_s : float;
  l_warm_s : float;
  l_same_yield : bool;
}

let lp_probe_runs : lp_probe_run list ref = ref []

(* Sparse Markowitz LU vs the dense-LU + eta-file factorization backend
   (VMALLOC_DENSE_LU=1) over the same cold + warm re-solve sequence (lp
   section). Flop, fill and refactorization counters are deterministic;
   wall times are not. *)
type lp_sparse_lu_run = {
  s_label : string;
  s_n_vars : int;
  s_n_cons : int;
  s_sparse_flops : int;
  s_dense_flops : int;
  s_fill_in : int;
  s_ft_updates : int;
  s_sparse_refactors : int;
  s_dense_refactors : int;
  s_sparse_s : float;
  s_dense_s : float;
  s_identical : bool;
}

let lp_sparse_lu_runs : lp_sparse_lu_run list ref = ref []

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Inf token; a non-finite statistic (mean yield over an
   empty horizon, say) serializes as null so the file stays parseable. *)
let json_4f v = if Float.is_finite v then Printf.sprintf "%.4f" v else "null"

let write_bench_par_json ~scale_label ~total path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"scale\": \"%s\",\n" (json_escape scale_label);
  out "  \"domains\": %d,\n" (pool_size ());
  out "  \"total_seconds\": %.3f,\n" total;
  out "  \"sections\": [\n";
  let sections = List.rev !section_times in
  List.iteri
    (fun i (name, dt) ->
      out "    {\"name\": \"%s\", \"seconds\": %.3f}%s\n" (json_escape name)
        dt
        (if i < List.length sections - 1 then "," else ""))
    sections;
  out "  ],\n";
  out "  \"comparisons\": [\n";
  let cs = List.rev !comparisons in
  List.iteri
    (fun i c ->
      out
        "    {\"section\": \"%s\", \"domains\": %d, \"sequential_seconds\": \
         %.3f, \"parallel_seconds\": %.3f, \"speedup\": %.2f}%s\n"
        (json_escape c.c_section) c.c_domains c.sequential_s c.parallel_s
        (if c.parallel_s > 0. then c.sequential_s /. c.parallel_s else 0.)
        (if i < List.length cs - 1 then "," else ""))
    cs;
  out "  ],\n";
  out "  \"probe_par\": [\n";
  let ps = List.rev !probe_comparisons in
  List.iteri
    (fun i p ->
      out
        "    {\"algorithm\": \"%s\", \"domains\": %d, \"sequential_rounds\": \
         %d, \"parallel_rounds\": %d, \"round_ratio\": %.2f, \
         \"sequential_seconds\": %.3f, \"parallel_seconds\": %.3f}%s\n"
        (json_escape p.p_algorithm) p.p_domains p.p_seq_rounds p.p_par_rounds
        (if p.p_par_rounds > 0 then
           float_of_int p.p_seq_rounds /. float_of_int p.p_par_rounds
         else 0.)
        p.p_seq_s p.p_par_s
        (if i < List.length ps - 1 then "," else ""))
    ps;
  out "  ],\n";
  out "  \"kernel\": [\n";
  let ks = List.rev !kernel_runs in
  List.iteri
    (fun i k ->
      out
        "    {\"algorithm\": \"%s\", \"domains\": %d, \"kernel_seconds\": \
         %.4f, \"naive_seconds\": %.4f, \"speedup\": %.2f, \"identical\": \
         %b}%s\n"
        (json_escape k.k_algorithm) k.k_domains k.k_kernel_s k.k_naive_s
        (if k.k_kernel_s > 0. then k.k_naive_s /. k.k_kernel_s else 0.)
        k.k_identical
        (if i < List.length ks - 1 then "," else ""))
    ks;
  out "  ],\n";
  out "  \"batch\": [\n";
  let bs = List.rev !batch_runs in
  List.iteri
    (fun i b ->
      out
        "    {\"tenants\": %d, \"domains\": %d, \"serial_seconds\": %.4f, \
         \"batched_seconds\": %.4f, \"throughput_speedup\": %.2f, \
         \"serial_rounds\": %d, \"rounds_interleaved\": %d, \
         \"round_speedup\": %.2f, \"speculative_waste\": %d, \
         \"scratch_reuses\": %d, \"identical\": %b}%s\n"
        b.b_tenants b.b_domains b.b_serial_s b.b_batched_s
        (if b.b_batched_s > 0. then b.b_serial_s /. b.b_batched_s else 0.)
        b.b_serial_rounds b.b_sched_rounds
        (float_of_int b.b_serial_rounds
        /. float_of_int (max 1 b.b_sched_rounds))
        b.b_waste b.b_scratch_reuses b.b_identical
        (if i < List.length bs - 1 then "," else ""))
    bs;
  out "  ],\n";
  out "  \"lp\": {\n";
  out "    \"solver\": [\n";
  let ls = List.rev !lp_solver_runs in
  List.iteri
    (fun i l ->
      out
        "      {\"label\": \"%s\", \"n_vars\": %d, \"n_cons\": %d, \
         \"dense_seconds\": %.4f, \"revised_seconds\": %.4f, \"speedup\": \
         %.2f, \"agree\": %b}%s\n"
        (json_escape l.l_label) l.l_n_vars l.l_n_cons l.l_dense_s
        l.l_revised_s
        (if l.l_revised_s > 0. then l.l_dense_s /. l.l_revised_s else 0.)
        l.l_agree
        (if i < List.length ls - 1 then "," else ""))
    ls;
  out "    ],\n";
  out "    \"probe\": [\n";
  let lp = List.rev !lp_probe_runs in
  List.iteri
    (fun i l ->
      out
        "      {\"instance\": \"%s\", \"cold_pivots\": %d, \"warm_pivots\": \
         %d, \"warm_starts\": %d, \"pivot_ratio\": %.2f, \"cold_seconds\": \
         %.4f, \"warm_seconds\": %.4f, \"same_yield\": %b}%s\n"
        (json_escape l.l_instance) l.l_cold_pivots l.l_warm_pivots
        l.l_warm_starts
        (if l.l_warm_pivots > 0 then
           float_of_int l.l_cold_pivots /. float_of_int l.l_warm_pivots
         else 0.)
        l.l_cold_s l.l_warm_s l.l_same_yield
        (if i < List.length lp - 1 then "," else ""))
    lp;
  out "    ],\n";
  out "    \"sparse_lu\": [\n";
  let sl = List.rev !lp_sparse_lu_runs in
  List.iteri
    (fun i s ->
      out
        "      {\"label\": \"%s\", \"n_vars\": %d, \"n_cons\": %d, \
         \"sparse_flops\": %d, \"dense_flops\": %d, \"flop_ratio\": %.2f, \
         \"fill_in\": %d, \"ft_updates\": %d, \
         \"sparse_refactorizations\": %d, \"dense_refactorizations\": %d, \
         \"sparse_seconds\": %.4f, \"dense_seconds\": %.4f, \
         \"identical\": %b}%s\n"
        (json_escape s.s_label) s.s_n_vars s.s_n_cons s.s_sparse_flops
        s.s_dense_flops
        (if s.s_sparse_flops > 0 then
           float_of_int s.s_dense_flops /. float_of_int s.s_sparse_flops
         else 0.)
        s.s_fill_in s.s_ft_updates s.s_sparse_refactors s.s_dense_refactors
        s.s_sparse_s s.s_dense_s s.s_identical
        (if i < List.length sl - 1 then "," else ""))
    sl;
  out "    ]\n";
  out "  },\n";
  out "  \"obs\": {\n";
  out "    \"per_algorithm\": [\n";
  let snaps = List.rev !obs_snapshots in
  List.iteri
    (fun i (name, json) ->
      out "      {\"algorithm\": \"%s\", \"metrics\": %s}%s\n"
        (json_escape name) json
        (if i < List.length snaps - 1 then "," else ""))
    snaps;
  out "    ],\n";
  (match !obs_overhead with
  | Some (disabled_s, enabled_s) ->
      out
        "    \"overhead\": {\"algorithm\": \"METAHVP\", \"disabled_seconds\": \
         %.4f, \"enabled_seconds\": %.4f, \"enabled_over_disabled\": %.3f}\n"
        disabled_s enabled_s
        (if disabled_s > 0. then enabled_s /. disabled_s else 0.)
  | None -> out "    \"overhead\": null\n");
  out "  },\n";
  out "  \"sim\": {\n";
  out "    \"scaling\": [\n";
  let sc = List.rev !sim_scaling in
  List.iteri
    (fun i p ->
      out
        "      {\"horizon\": %.0f, \"admitted\": %d, \"seconds\": %.3f, \
         \"us_per_admitted\": %.1f}%s\n"
        p.s_horizon p.s_admitted p.s_seconds
        (if p.s_admitted > 0 then
           p.s_seconds /. float_of_int p.s_admitted *. 1e6
         else 0.)
        (if i < List.length sc - 1 then "," else ""))
    sc;
  out "    ],\n";
  (match !sim_skips with
  | Some n -> out "    \"reeval_skips\": %d,\n" n
  | None -> out "    \"reeval_skips\": null,\n");
  out "    \"sharded\": [\n";
  let sr = List.rev !sim_shard_runs in
  List.iteri
    (fun i r ->
      out
        "      {\"shards\": %d, \"domains\": %d, \"seconds\": %.3f, \
         \"identical\": %b}%s\n"
        r.sh_shards r.sh_domains r.sh_seconds r.sh_identical
        (if i < List.length sr - 1 then "," else ""))
    sr;
  out "    ]\n";
  out "  },\n";
  out "  \"online\": [\n";
  let ors = List.rev !online_runs in
  List.iteri
    (fun i o ->
      out
        "    {\"policy\": \"%s\", \"hosts\": %d, \"events\": %d, \
         \"bins_touched\": %d, \"bins_per_event\": %.2f, \"repairs\": %d, \
         \"fallbacks\": %d, \"admitted\": %d, \"mean_min_yield\": %s, \
         \"seconds\": %.3f}%s\n"
        (json_escape o.o_policy) o.o_hosts o.o_events o.o_bins_touched
        (if o.o_events > 0 then
           float_of_int o.o_bins_touched /. float_of_int o.o_events
         else 0.)
        o.o_repairs o.o_fallbacks o.o_admitted (json_4f o.o_mean_yield)
        o.o_seconds
        (if i < List.length ors - 1 then "," else ""))
    ors;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.eprintf "[bench] wrote %s\n%!" path

(* Satellite: keep a local record of every bench run. The current
   BENCH_par.json is copied to bench/history/<git-rev>-<n>.json (smallest
   unused n), and the history path goes to stderr with the other
   run-varying output. *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "norev"
  with _ -> "norev"

let persist_history path =
  try
    let mkdir d =
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    in
    mkdir "bench";
    let dir = Filename.concat "bench" "history" in
    mkdir dir;
    let rev = git_rev () in
    let rec pick n =
      let candidate =
        Filename.concat dir (Printf.sprintf "%s-%d.json" rev n)
      in
      if Sys.file_exists candidate then pick (n + 1) else candidate
    in
    let dest = pick 0 in
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin dest in
    output_string oc contents;
    close_out oc;
    Printf.eprintf "[bench] bench history: %s\n%!" dest
  with e ->
    Printf.eprintf "[bench] bench history skipped: %s\n%!"
      (Printexc.to_string e)

(* Table 1 / Table 2 share their (expensive) runs. *)
let table_runs = ref None

let get_table_runs scale =
  match !table_runs with
  | Some r -> r
  | None ->
      let r = Experiments.Table1.run ~progress ?pool:!pool scale in
      table_runs := Some r;
      r

(* Sequential vs N-domain wall time on the Table 1 sweep — the perf
   trajectory's first data point. Bypasses the table-run cache so both
   arms do identical work. *)
let run_parbench scale =
  section_header "Parallel speedup (Table 1 sweep, sequential vs domains)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, sequential_s =
    time (fun () -> Experiments.Table1.run ~progress scale)
  in
  let par, parallel_s =
    time (fun () -> Experiments.Table1.run ~progress ?pool:!pool scale)
  in
  let identical =
    Experiments.Table1.report_table1 seq = Experiments.Table1.report_table1 par
  in
  comparisons :=
    { c_section = "table1"; c_domains = pool_size (); sequential_s;
      parallel_s }
    :: !comparisons;
  Printf.printf
    "sequential: %.2fs   %d domains: %.2fs   speedup: %.2fx\n\
     reports byte-identical: %s\n"
    sequential_s (pool_size ()) parallel_s
    (if parallel_s > 0. then sequential_s /. parallel_s else 0.)
    (if identical then "yes" else "NO (determinism bug!)")

(* Sequential vs speculative k-probe yield search on one mid-size instance:
   the pool accelerating a *single* trial rather than a trial sweep. Round
   counts are deterministic (and bit-identity of the solutions is asserted);
   wall times go to BENCH_par.json. On a 1-core container the wall-time
   speedup is < 1 — the headline is the round ratio. *)
(* The mid-size Table-1 workload point shared by the probepar, kernel, obs
   and micro sections (and the backfill fallbacks). *)
let corpus_instance () =
  Experiments.Corpus.instance
    {
      Experiments.Corpus.hosts = 10;
      services = 40;
      cov = 0.5;
      slack = 0.4;
      cpu_homogeneous = false;
      mem_homogeneous = false;
      rep = 0;
    }

let run_probe_par () =
  section_header "Speculative k-probe yield search (sequential vs pooled)";
  let inst = corpus_instance () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let table =
    Stats.Table.create
      ~headers:
        [ "algorithm"; "domains"; "seq rounds"; "par rounds"; "ratio";
          "identical" ]
  in
  List.iter
    (fun (name, strategies) ->
      let solve pool rounds =
        Heuristics.Vp_solver.solve_multi ?pool
          ~on_round:(fun _ -> incr rounds)
          strategies inst
      in
      let seq_rounds = ref 0 in
      let seq, p_seq_s = time (fun () -> solve None seq_rounds) in
      List.iter
        (fun domains ->
          let par_rounds = ref 0 in
          let par, p_par_s =
            time (fun () ->
                Par.Pool.with_pool ~domains (fun pool ->
                    solve (Some pool) par_rounds))
          in
          let identical =
            match (seq, par) with
            | None, None -> true
            | Some (a : Heuristics.Vp_solver.solution), Some b ->
                a.placement = b.placement
                && Int64.bits_of_float a.min_yield
                   = Int64.bits_of_float b.min_yield
            | _ -> false
          in
          probe_comparisons :=
            { p_algorithm = name; p_domains = domains;
              p_seq_rounds = !seq_rounds; p_par_rounds = !par_rounds;
              p_seq_s; p_par_s }
            :: !probe_comparisons;
          Stats.Table.add_row table
            [
              name; string_of_int domains; string_of_int !seq_rounds;
              string_of_int !par_rounds;
              Printf.sprintf "%.2fx"
                (float_of_int !seq_rounds /. float_of_int (max 1 !par_rounds));
              (if identical then "yes" else "NO (determinism bug!)");
            ])
        [ 2; 4 ])
    [
      ("METAVP", Packing.Strategy.vp_all);
      ("METAHVP", Packing.Strategy.hvp_all);
      ("METAHVPLIGHT", Packing.Strategy.hvp_light);
    ];
  Stats.Table.print table

(* Probe-shared packing kernel (DESIGN.md §11): METAHVP through the kernel
   probe path vs the naive fresh-allocation path on the Table-1 workload
   point, at probe-pool sizes 1/2/4. Placements and yields must be
   bit-identical (stdout); wall times and the speedup go to the kernel
   block of BENCH_par.json — the acceptance bar is kernel >= 2x naive. *)
let solutions_identical a b =
  match (a, b) with
  | None, None -> true
  | Some (x : Heuristics.Vp_solver.solution),
    Some (y : Heuristics.Vp_solver.solution) ->
      x.placement = y.placement
      && Int64.bits_of_float x.min_yield = Int64.bits_of_float y.min_yield
  | _ -> false

let kernel_measure ~algorithm ~strategies ~domains ~reps inst =
  let solve pool kernel () =
    Heuristics.Vp_solver.solve_multi ?pool ~kernel strategies inst
  in
  let best f =
    let best_t = ref infinity and result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best_t then best_t := dt;
      result := Some r
    done;
    (Option.get !result, !best_t)
  in
  let run pool =
    let kernel, k_kernel_s = best (solve pool true) in
    let naive, k_naive_s = best (solve pool false) in
    (kernel, naive, k_kernel_s, k_naive_s)
  in
  let kernel, naive, k_kernel_s, k_naive_s =
    if domains = 1 then run None
    else Par.Pool.with_pool ~domains (fun p -> run (Some p))
  in
  let r =
    { k_algorithm = algorithm; k_domains = domains; k_kernel_s; k_naive_s;
      k_identical = solutions_identical kernel naive }
  in
  kernel_runs := r :: !kernel_runs;
  r

let run_kernel () =
  section_header "Probe-shared packing kernel (kernel vs naive probe path)";
  let inst = corpus_instance () in
  let table =
    Stats.Table.create
      ~headers:
        [ "algorithm"; "domains"; "kernel s"; "naive s"; "speedup";
          "identical" ]
  in
  List.iter
    (fun domains ->
      let r =
        kernel_measure ~algorithm:"METAHVP"
          ~strategies:Packing.Strategy.hvp_all ~domains ~reps:3 inst
      in
      Stats.Table.add_row table
        [
          r.k_algorithm; string_of_int r.k_domains;
          Printf.sprintf "%.3f" r.k_kernel_s;
          Printf.sprintf "%.3f" r.k_naive_s;
          Printf.sprintf "%.2fx"
            (if r.k_kernel_s > 0. then r.k_naive_s /. r.k_kernel_s else 0.);
          (if r.k_identical then "yes" else "NO (kernel bug!)");
        ])
    [ 1; 2; 4 ];
  Stats.Table.print table

(* Multi-tenant batch workload: same-shape tenants (hosts x services
   fixed — shape equality is what lets a completed job's retired kernels
   rebind to later probes) with varying slack and rep. *)
let batch_jobs ~tenants =
  let slacks = [| 0.3; 0.4; 0.5 |] in
  Array.init tenants (fun i ->
      {
        Heuristics.Batch.algo = Heuristics.Algorithms.metahvplight;
        instance =
          Experiments.Corpus.instance
            {
              Experiments.Corpus.hosts = 10;
              services = 40;
              cov = 0.5;
              slack = slacks.(i mod Array.length slacks);
              cpu_homogeneous = false;
              mem_homogeneous = false;
              rep = i;
            };
      })

let results_identical a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x -> if not (solutions_identical x b.(i)) then ok := false)
    a;
  !ok

(* One (tenants, domains) point: the serial arm is passed in (it is
   shared across the pool sizes); the batched arm runs [reps] passes over
   one pool so pass 2 rebinds the kernels pass 1 retired
   (scheduler.scratch_reuses). Counters come from pass 1 alone — one
   deterministic batch execution — except reuses, summed over all
   passes. *)
let batch_measure ~tenants ~domains ~reps
    ~serial:(serial_results, b_serial_s, b_serial_rounds) jobs =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let first, b_batched_s, b_sched_rounds, b_waste, b_scratch_reuses,
      passes_identical =
    Par.Pool.with_pool ~domains @@ fun pool ->
    let sched = Par.Scheduler.create ~pool in
    let pass () =
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled true;
      let r, dt = time (fun () -> Heuristics.Batch.solve_batch ~sched jobs) in
      Obs.Metrics.set_enabled false;
      (r, dt, Obs.Metrics.snapshot ())
    in
    let first, dt1, snap1 = pass () in
    let v = Obs.Metrics.Snapshot.counter_value snap1 in
    let best = ref dt1 in
    let reuses = ref (v "scheduler.scratch_reuses") in
    let identical = ref true in
    for _ = 2 to reps do
      let r, dt, snap = pass () in
      if not (results_identical r first) then identical := false;
      if dt < !best then best := dt;
      reuses :=
        !reuses
        + Obs.Metrics.Snapshot.counter_value snap "scheduler.scratch_reuses"
    done;
    ( first, !best, v "scheduler.rounds_interleaved",
      v "binary_search.speculative_waste", !reuses, !identical )
  in
  let r =
    {
      b_tenants = tenants;
      b_domains = domains;
      b_serial_s;
      b_batched_s;
      b_serial_rounds;
      b_sched_rounds;
      b_waste;
      b_scratch_reuses;
      b_identical = passes_identical && results_identical first serial_results;
    }
  in
  batch_runs := r :: !batch_runs;
  Printf.eprintf
    "[bench] batch t=%d d=%d: serial %.2fs  batched %.2fs  waste %d  \
     reuses %d\n%!"
    tenants domains b_serial_s b_batched_s b_waste b_scratch_reuses;
  r

(* The serial arm: the same jobs solved back-to-back, counting the yield
   searches' sequential rounds (= probes). *)
let batch_serial_arm jobs =
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let t0 = Unix.gettimeofday () in
  let results =
    Array.map
      (fun j -> j.Heuristics.Batch.algo.solve j.Heuristics.Batch.instance)
      jobs
  in
  let dt = Unix.gettimeofday () -. t0 in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled was_enabled;
  ( results, dt,
    Obs.Metrics.Snapshot.counter_value snap "binary_search.rounds" )

let run_batch_bench () =
  section_header "Multi-tenant batched solving (one scheduler pool)";
  let table =
    Stats.Table.create
      ~headers:
        [ "tenants"; "domains"; "serial rounds"; "sched rounds"; "ratio";
          "identical" ]
  in
  List.iter
    (fun tenants ->
      let jobs = batch_jobs ~tenants in
      let serial = batch_serial_arm jobs in
      List.iter
        (fun domains ->
          let r = batch_measure ~tenants ~domains ~reps:2 ~serial jobs in
          Stats.Table.add_row table
            [
              string_of_int r.b_tenants;
              string_of_int r.b_domains;
              string_of_int r.b_serial_rounds;
              string_of_int r.b_sched_rounds;
              Printf.sprintf "%.2fx"
                (float_of_int r.b_serial_rounds
                /. float_of_int (max 1 r.b_sched_rounds));
              (if r.b_identical then "yes" else "NO (scheduler bug!)");
            ])
        [ 1; 2; 4 ])
    [ 1; 4; 16 ];
  Stats.Table.print table

(* Per-algorithm operation counts on one mid-size instance (the probepar
   corpus point), plus the disabled-sink overhead check. The counter
   snapshots are deterministic — sequential solves, no probe pool — so they
   print to stdout; the overhead wall times go to stderr and
   BENCH_par.json. *)
let run_obs () =
  section_header "Observability: per-algorithm operation counts";
  let inst = corpus_instance () in
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let algorithms =
    Heuristics.Algorithms.majors ~seed:1
    @ [ Heuristics.Algorithms.metahvplight ]
  in
  List.iter
    (fun (algo : Heuristics.Algorithms.t) ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled true;
      ignore (algo.solve inst);
      Obs.Metrics.set_enabled false;
      let snap = Obs.Metrics.snapshot () in
      obs_snapshots :=
        (algo.name, Obs.Metrics.Snapshot.to_json snap) :: !obs_snapshots;
      Printf.printf "-- %s --\n%s" algo.name
        (Obs.Metrics.Snapshot.render snap))
    algorithms;
  (* Disabled-path overhead: every instrumentation call is one atomic load
     and branch, so enabled-vs-disabled wall time on the most heavily
     instrumented solver should be within run-to-run noise. Best of 3 per
     arm to damp that noise. *)
  let time_solve () =
    let t0 = Unix.gettimeofday () in
    ignore (Heuristics.Algorithms.metahvp.solve inst);
    Unix.gettimeofday () -. t0
  in
  let best_of_3 () =
    List.fold_left (fun acc _ -> min acc (time_solve ())) infinity [ 1; 2; 3 ]
  in
  Obs.Metrics.set_enabled false;
  let disabled_s = best_of_3 () in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let enabled_s = best_of_3 () in
  obs_overhead := Some (disabled_s, enabled_s);
  Printf.eprintf
    "[bench] obs overhead (METAHVP, best of 3): disabled %.3fs  enabled \
     %.3fs  (ratio %.3f)\n%!"
    disabled_s enabled_s
    (if disabled_s > 0. then enabled_s /. disabled_s else 0.)

(* LP section helpers (also used by the backfill fallbacks).

   The paper generator scales total CPU need to exactly match total CPU
   capacity, so the rational relaxation is feasible at yield 1 and the
   yield search returns after a single probe — useless for measuring
   warm-started probe sequences. This builder oversubscribes CPU by
   [factor], forcing max yield ~ 1/factor and a full bisection. *)
let oversubscribed_instance ~seed ~nodes:n_nodes ~services:n_services ~factor =
  let rng = Prng.Rng.create ~seed in
  let nodes =
    Array.init n_nodes (fun id ->
        Model.Node.make_cores ~id ~cores:4
          ~cpu:(Prng.Rng.uniform_range rng 1.5 2.5)
          ~mem:1.0)
  in
  let total_cpu =
    Array.fold_left
      (fun acc (nd : Model.Node.t) ->
        acc +. Vec.Vector.get nd.capacity.Vec.Epair.aggregate 0)
      0. nodes
  in
  let per_service = factor *. total_cpu /. Float.of_int n_services in
  let services =
    Array.init n_services (fun id ->
        let agg = per_service *. Prng.Rng.uniform_range rng 0.7 1.3 in
        Model.Service.make_2d ~id
          ~mem_req:(Prng.Rng.uniform_range rng 0.05 0.15)
          ~cpu_need:(agg /. 2., agg) ())
  in
  Model.Instance.v ~nodes ~services

(* One LP through both solvers; objectives must agree (lp.solver block). *)
let lp_solver_measure ~label p =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rd, l_dense_s = time (fun () -> Lp.Dense_simplex.solve p) in
  let rr, l_revised_s = time (fun () -> Lp.Simplex.solve p) in
  let l_agree =
    match (rd, rr) with
    | Lp.Dense_simplex.Optimal d, Lp.Simplex.Optimal r ->
        Float.abs (d.objective -. r.objective)
        <= 1e-6 *. (1. +. Float.abs d.objective)
    | Lp.Dense_simplex.Infeasible, Lp.Simplex.Infeasible
    | Lp.Dense_simplex.Unbounded, Lp.Simplex.Unbounded ->
        true
    | _ -> false
  in
  let run =
    { l_label = label; l_n_vars = p.Lp.Problem.n_vars;
      l_n_cons = Lp.Problem.n_constraints p; l_dense_s; l_revised_s; l_agree }
  in
  lp_solver_runs := run :: !lp_solver_runs;
  Printf.eprintf "[bench] lp solver %s: dense %.3fs  revised %.3fs\n%!" label
    l_dense_s l_revised_s;
  run

(* The full relaxed yield search, cold then warm-started; total revised
   pivots across the probe sequence come from the obs counters (lp.probe
   block). Pivot counts and yields are deterministic; wall times are not. *)
let lp_probe_measure ~label instance =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let arm warm =
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    let r, dt =
      time (fun () -> Heuristics.Milp.relaxed_yield_search ~warm instance)
    in
    Obs.Metrics.set_enabled false;
    let snap = Obs.Metrics.snapshot () in
    let v name = Obs.Metrics.Snapshot.counter_value snap name in
    (r, dt, v "simplex.pivots", v "simplex.warm_starts")
  in
  let rc, l_cold_s, l_cold_pivots, _ = arm false in
  let rw, l_warm_s, l_warm_pivots, l_warm_starts = arm true in
  let l_same_yield =
    match (rc, rw) with
    | Some (_, yc), Some (_, yw) ->
        Float.abs (yc -. yw)
        <= 2. *. Heuristics.Binary_search.default_tolerance
    | None, None -> true
    | _ -> false
  in
  let run =
    { l_instance = label; l_cold_pivots; l_warm_pivots; l_warm_starts;
      l_cold_s; l_warm_s; l_same_yield }
  in
  lp_probe_runs := run :: !lp_probe_runs;
  Printf.eprintf "[bench] lp probe %s: cold %.3fs  warm %.3fs\n%!" label
    l_cold_s l_warm_s;
  run

(* One LP through the revised simplex under both factorization backends:
   a cold solve plus three warm re-solves from the optimal basis.
   VMALLOC_DENSE_LU is read per solve, so toggling it in-process selects
   the backend. The arms must return bit-identical solutions (locked
   exhaustively by test_simplex_diff.ml); here identity doubles as a
   sanity bit in the artifact — verdict and objective bits here; the full
   vectors only on the lp_gen corpus, see below — and the flop counters
   quantify how much factorization work the Markowitz ordering saves
   (lp.sparse_lu block). *)
let lp_sparse_lu_measure ~label p =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let arm dense =
    let prev = Sys.getenv_opt "VMALLOC_DENSE_LU" in
    Unix.putenv "VMALLOC_DENSE_LU" (if dense then "1" else "0");
    Fun.protect ~finally:(fun () ->
        Unix.putenv "VMALLOC_DENSE_LU" (Option.value prev ~default:"0"))
    @@ fun () ->
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    let results, dt =
      time @@ fun () ->
      let r, basis = Lp.Simplex.solve_basis p in
      r
      ::
      (match basis with
      | Some b -> List.init 3 (fun _ -> Lp.Simplex.solve ~warm_basis:b p)
      | None -> [])
    in
    Obs.Metrics.set_enabled false;
    let snap = Obs.Metrics.snapshot () in
    let v name = Obs.Metrics.Snapshot.counter_value snap name in
    ( results, dt, v "simplex.lu_flops", v "simplex.lu_fill_in",
      v "simplex.ft_updates", v "simplex.refactorizations" )
  in
  let rs, s_sparse_s, s_sparse_flops, s_fill_in, s_ft_updates,
      s_sparse_refactors =
    arm false
  in
  let rd, s_dense_s, s_dense_flops, _, _, s_dense_refactors = arm true in
  (* Verdicts and optimal objectives must match to the last bit. The full
     solution vector is bit-identical too on the lp_gen corpus (locked by
     test_simplex_diff.ml), but the paper relaxations at this scale have
     massively degenerate alternative optima — only the yield variable
     carries objective weight — so the backends may legitimately stop at
     different vertices of the same optimal face. *)
  let s_identical =
    List.length rs = List.length rd
    && List.for_all2
         (fun a b ->
           match (a, b) with
           | Lp.Simplex.Optimal a, Lp.Simplex.Optimal b ->
               Int64.bits_of_float a.objective
               = Int64.bits_of_float b.objective
           | Lp.Simplex.Infeasible, Lp.Simplex.Infeasible
           | Lp.Simplex.Unbounded, Lp.Simplex.Unbounded ->
               true
           | _ -> false)
         rs rd
  in
  let run =
    { s_label = label; s_n_vars = p.Lp.Problem.n_vars;
      s_n_cons = Lp.Problem.n_constraints p; s_sparse_flops; s_dense_flops;
      s_fill_in; s_ft_updates; s_sparse_refactors; s_dense_refactors;
      s_sparse_s; s_dense_s; s_identical }
  in
  lp_sparse_lu_runs := run :: !lp_sparse_lu_runs;
  Printf.eprintf "[bench] lp sparse_lu %s: sparse %.3fs  dense-LU %.3fs\n%!"
    label s_sparse_s s_dense_s;
  run

let run_lp () =
  section_header "LP: revised simplex vs dense oracle; warm vs cold probes";
  let solver_table =
    Stats.Table.create ~headers:[ "LP"; "vars"; "cons"; "agree" ]
  in
  List.iter
    (fun family ->
      let label = Printf.sprintf "lp_gen:%s 9x12" (Lp_gen.family_name family) in
      let r =
        lp_solver_measure ~label
          (Lp_gen.generate ~seed:0 ~n_vars:9 ~n_cons:12 family)
      in
      Stats.Table.add_row solver_table
        [ label; string_of_int r.l_n_vars; string_of_int r.l_n_cons;
          (if r.l_agree then "yes" else "NO (solver bug!)") ])
    [ Lp_gen.Feasible; Lp_gen.Degenerate ];
  List.iter
    (fun (nodes, services) ->
      let inst = oversubscribed_instance ~seed:2 ~nodes ~services ~factor:2. in
      let p, _ = Heuristics.Milp.formulation ~integer:false inst in
      let label = Printf.sprintf "relaxation %dnx%ds" nodes services in
      let r = lp_solver_measure ~label p in
      Stats.Table.add_row solver_table
        [ label; string_of_int r.l_n_vars; string_of_int r.l_n_cons;
          (if r.l_agree then "yes" else "NO (solver bug!)") ])
    [ (4, 12); (6, 24); (8, 32) ];
  Stats.Table.print solver_table;
  let probe_table =
    Stats.Table.create
      ~headers:
        [ "instance"; "cold pivots"; "warm pivots"; "warm starts"; "ratio";
          "same yield" ]
  in
  List.iter
    (fun (nodes, services) ->
      let label = Printf.sprintf "%dnx%ds 2x-oversub" nodes services in
      let r =
        lp_probe_measure ~label
          (oversubscribed_instance ~seed:1 ~nodes ~services ~factor:2.)
      in
      Stats.Table.add_row probe_table
        [ label; string_of_int r.l_cold_pivots;
          string_of_int r.l_warm_pivots; string_of_int r.l_warm_starts;
          Printf.sprintf "%.2fx"
            (if r.l_warm_pivots > 0 then
               float_of_int r.l_cold_pivots /. float_of_int r.l_warm_pivots
             else 0.);
          (if r.l_same_yield then "yes" else "NO (warm-start bug!)") ])
    [ (6, 24); (10, 40) ];
  Stats.Table.print probe_table;
  (* Factorization backends up to 100x the Table-1 LP scale: the sparse
     families where Markowitz ordering pays. Block-diagonal runs at the
     full 100x point (2000x1500 — its bases stay nearly fill-free, so
     both arms finish in CI time and the flop ratio shows what the
     ordering buys at scale); banded runs at 3x linear scale (600x450),
     the largest point whose fill-in-heavy dense arm stays within the CI
     budget. A paper relaxation keeps the dense-ish baseline shape. *)
  let sparse_table =
    Stats.Table.create
      ~headers:
        [ "LP"; "sparse flops"; "dense flops"; "ratio"; "fill-in";
          "FT updates"; "same obj bits" ]
  in
  let add_sparse_row label p =
    let r = lp_sparse_lu_measure ~label p in
    Stats.Table.add_row sparse_table
      [ label; string_of_int r.s_sparse_flops; string_of_int r.s_dense_flops;
        Printf.sprintf "%.1fx"
          (if r.s_sparse_flops > 0 then
             float_of_int r.s_dense_flops /. float_of_int r.s_sparse_flops
           else 0.);
        string_of_int r.s_fill_in; string_of_int r.s_ft_updates;
        (if r.s_identical then "yes" else "NO (backend bug!)") ]
  in
  List.iter
    (fun (family, n_vars, n_cons) ->
      add_sparse_row
        (Printf.sprintf "lp_gen:%s %dx%d" (Lp_gen.family_name family) n_vars
           n_cons)
        (Lp_gen.generate ~seed:0 ~n_vars ~n_cons family))
    [ (Lp_gen.Banded, 600, 450); (Lp_gen.Block_diag, 2000, 1500) ];
  (let inst = oversubscribed_instance ~seed:2 ~nodes:8 ~services:64 ~factor:2. in
   let p, _ = Heuristics.Milp.formulation ~integer:false inst in
   add_sparse_row "relaxation 8nx64s" p);
  Stats.Table.print sparse_table

let run_table1 scale =
  section_header "Table 1: pairwise comparison of major heuristics";
  print_string (Experiments.Table1.report_table1 (get_table_runs scale));
  print_endline
    "Paper's shape: METAHVP >= METAVP > METAGREEDY > RRNZ in both yield\n\
     and success rate; RRND has high yield on its rare successes but the\n\
     worst success rate."

let run_table2 scale =
  section_header "Table 2: algorithm run times";
  print_string (Experiments.Table1.report_table2 (get_table_runs scale));
  print_endline
    "Paper's shape: RRNZ orders of magnitude slower (solves an LP);\n\
     METAGREEDY << METAVP < METAHVP (roughly 3x METAVP)."

let run_fig_cov scale variant name =
  section_header name;
  let result = Experiments.Fig_cov.run ~progress ?pool:!pool scale variant in
  print_string (Experiments.Fig_cov.report result);
  print_endline
    "Paper's shape: differences are <= 0 almost everywhere (METAHVP best);\n\
     the METAVP gap widens as the coefficient of variation grows."

let run_fig_error scale services name =
  section_header name;
  let result =
    Experiments.Fig_error.run ~progress ?pool:!pool scale ~services
  in
  print_string (Experiments.Fig_error.report result);
  print_endline
    "Paper's shape: ideal on top; weight/equal with threshold 0 decay\n\
     fastest with error; higher thresholds flatten the curves toward the\n\
     zero-knowledge floor."

let run_success_rate () =
  section_header "Success rate vs memory slack";
  print_string
    (Experiments.Success_rate.report
       (Experiments.Success_rate.run ~progress ()))

let run_ranking () =
  section_header "§5.1 methodology: ranking the 253 HVP strategies";
  print_string
    (Experiments.Strategy_ranking.report
       (Experiments.Strategy_ranking.run ~progress ()))

let run_hvplight scale =
  section_header "§5.1: METAHVPLIGHT";
  print_string
    (Experiments.Light.report
       (Experiments.Light.run ~progress ?pool:!pool scale))

let run_theorem () =
  section_header "Theorem 1";
  print_string
    (Experiments.Theorem_check.report (Experiments.Theorem_check.run ()))

let run_fig_families scale =
  section_header "Appendix figure families (Figs. 8-34 and 35-66, sampled)";
  print_string
    (Experiments.Families.report_cov_family
       (Experiments.Families.cov_family ~progress ?pool:!pool scale));
  print_newline ();
  print_string
    (Experiments.Families.report_error_family
       (Experiments.Families.error_family ~progress ?pool:!pool scale))

(* Online-hosting extension: fixed vs adaptive mitigation thresholds in the
   deployment loop the paper's conclusion sketches. *)
(* One placement-policy arm: run the engine with metrics on, read the
   simulator.* counters, and record an [online_run]. Shared with the
   backfill fallback. *)
let online_policy_measure ~hosts ~config placement =
  let platform =
    Array.init hosts (fun id ->
        if id < hosts / 2 then
          Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
        else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)
  in
  let config = { config with Simulator.Engine.placement } in
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let t0 = Unix.gettimeofday () in
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:11) config ~platform
  in
  let o_seconds = Unix.gettimeofday () -. t0 in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.set_enabled was_enabled;
  let counter = Obs.Metrics.Snapshot.counter_value snap in
  let run =
    {
      o_policy = Simulator.Policy.to_string placement;
      o_hosts = hosts;
      o_events = stats.arrivals + stats.departures;
      o_bins_touched = counter "simulator.bins_touched";
      o_repairs = counter "simulator.repairs";
      o_fallbacks = counter "simulator.repair_fallbacks";
      o_admitted = stats.admitted;
      o_mean_yield = stats.mean_min_yield;
      o_seconds;
    }
  in
  online_runs := run :: !online_runs;
  run

let run_online () =
  section_header "Online hosting (extension; paper §8)";
  let platform =
    Array.init 10 (fun id ->
        if id < 6 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
        else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)
  in
  let base =
    {
      Simulator.Engine.default_config with
      horizon = 150.;
      arrival_rate = 0.8;
      mean_lifetime = 30.;
      reallocation_period = 10.;
      max_error = 0.08;
      memory_scale = 0.5;
    }
  in
  let table =
    Stats.Table.create
      ~headers:
        [ "mitigation"; "mean min yield"; "migrations"; "final threshold" ]
  in
  let row name config =
    let stats =
      Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:17) config ~platform
    in
    Stats.Table.add_row table
      [
        name;
        Printf.sprintf "%.4f" stats.mean_min_yield;
        string_of_int stats.migrations;
        Printf.sprintf "%.3f" stats.final_threshold;
      ]
  in
  row "none (t=0)" { base with threshold = Simulator.Engine.Fixed 0. };
  row "fixed t=0.10" { base with threshold = Simulator.Engine.Fixed 0.1 };
  row "fixed t=0.30" { base with threshold = Simulator.Engine.Fixed 0.3 };
  row "adaptive (q90)"
    {
      base with
      threshold =
        Simulator.Engine.Adaptive
          (Sharing.Adaptive_threshold.create ~quantile:90. ());
    };
  Stats.Table.print table;
  print_endline
    "Expected shape: no mitigation suffers under error; the adaptive\n\
     controller approaches the best fixed threshold without tuning.";
  (* Placement policies at 100x the Table-1 platform scale: the probe
     policies should touch at least 5x fewer bins per event than the full
     re-solve path (its admission scan alone walks every node per
     arrival). The epoch/fallback re-solver is the cheap single-pass
     greedy so the resolve arm's wall time stays bounded. *)
  print_newline ();
  print_endline "Placement policies (1000 hosts, 100x Table-1 scale):";
  let policy_config =
    {
      Simulator.Engine.default_config with
      horizon = 120.;
      arrival_rate = 30.;
      mean_lifetime = 30.;
      reallocation_period = 10.;
      max_error = 0.08;
      memory_scale = 0.5;
      algorithm = Heuristics.Algorithms.single_greedy Heuristics.Greedy.S7
          Heuristics.Greedy.P4;
    }
  in
  let ptable =
    Stats.Table.create
      ~headers:
        [ "policy"; "admitted"; "mean min yield"; "bins/event"; "repairs";
          "fallbacks" ]
  in
  let resolve_bpe = ref 0. in
  List.iter
    (fun placement ->
      let r = online_policy_measure ~hosts:1000 ~config:policy_config placement in
      let bpe =
        if r.o_events > 0 then
          float_of_int r.o_bins_touched /. float_of_int r.o_events
        else 0.
      in
      if placement = Simulator.Policy.Resolve then resolve_bpe := bpe;
      Stats.Table.add_row ptable
        [
          r.o_policy;
          string_of_int r.o_admitted;
          Printf.sprintf "%.4f" r.o_mean_yield;
          Printf.sprintf "%.1f" bpe;
          string_of_int r.o_repairs;
          string_of_int r.o_fallbacks;
        ];
      Printf.eprintf "[bench] online policy %s: %.3fs\n%!" r.o_policy
        r.o_seconds;
      if placement <> Simulator.Policy.Resolve then
        Printf.printf "%s touches >=5x fewer bins per event than resolve: %s\n"
          r.o_policy
          (if !resolve_bpe >= 5. *. bpe then "yes"
           else "NO (incremental-path regression!)"))
    Simulator.Policy.all;
  Stats.Table.print ptable

(* Online-simulator section: (1) arrival-path scaling — with a bounded
   steady-state active set, total cost must grow ~linearly in admitted
   services now that the engine's arrival/departure paths are O(log n)
   (the former list-append copy made the constant grow with the live set);
   (2) the rejected-arrival re-evaluation skip counter; (3) sharded runs:
   shards=4 merged deterministically, byte-identical at any domain count.
   Counts and identity flags are deterministic (stdout); wall times go to
   stderr and the sim block of BENCH_par.json. *)
let run_sim () =
  section_header "Online simulator (sharded engine, hot-path scaling)";
  let platform =
    Array.init 8 (fun id ->
        if id < 4 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
        else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)
  in
  let config horizon =
    {
      Simulator.Engine.default_config with
      horizon;
      arrival_rate = 2.;
      mean_lifetime = 12.;
      reallocation_period = 20.;
      (* Tight enough that a few arrivals are rejected — the skip-path
         measurement needs them — while the steady-state set stays
         bounded. *)
      memory_scale = 1.4;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Arrival-path scaling: doubling the horizon doubles admitted arrivals
     while the steady-state active set stays bounded. *)
  List.iter
    (fun horizon ->
      let stats, s_seconds =
        time (fun () ->
            Simulator.Engine.run
              ~rng:(Prng.Rng.create ~seed:0)
              (config horizon) ~platform)
      in
      sim_scaling :=
        { s_horizon = horizon; s_admitted = stats.admitted; s_seconds }
        :: !sim_scaling;
      Printf.printf "horizon %4.0f: %4d admitted, %3d rejected\n" horizon
        stats.admitted stats.rejected;
      Printf.eprintf "[bench] sim horizon %.0f: %.3fs (%.1f us/admitted)\n%!"
        horizon s_seconds
        (if stats.admitted > 0 then
           s_seconds /. float_of_int stats.admitted *. 1e6
         else 0.))
    [ 100.; 200.; 400. ];
  (* Rejected-arrival skip counter on the default sim scenario. *)
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let skip_stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:0) (config 200.)
      ~platform
  in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.set_enabled was_enabled;
  let skips = Obs.Metrics.Snapshot.counter_value snap "simulator.reeval_skips" in
  sim_skips := Some skips;
  Printf.printf
    "re-evaluation skips (rejected arrivals): %d of %d rejected — %s\n" skips
    skip_stats.rejected
    (if skips = skip_stats.rejected && skips > 0 then "ok"
     else "UNEXPECTED (skip-path bug!)");
  (* Sharded runs: 4 shards, sequential vs the session pool. *)
  let sharded ?pool domains =
    let r, seconds =
      time (fun () ->
          Simulator.Sharded.run ?pool ~seed:0 ~shards:4 (config 200.)
            ~platform)
    in
    (r, domains, seconds)
  in
  let base, _, base_s = sharded 1 in
  sim_shard_runs :=
    { sh_shards = 4; sh_domains = 1; sh_seconds = base_s;
      sh_identical = true }
    :: !sim_shard_runs;
  (match !pool with
  | Some p ->
      let par, domains, par_s = sharded ~pool:p (Par.Pool.size p) in
      let identical = par.Simulator.Sharded.merged = base.Simulator.Sharded.merged in
      sim_shard_runs :=
        { sh_shards = 4; sh_domains = domains; sh_seconds = par_s;
          sh_identical = identical }
        :: !sim_shard_runs;
      Printf.printf "sharded (4 shards) merged stats identical at %d domains: %s\n"
        domains
        (if identical then "yes" else "NO (determinism bug!)")
  | None ->
      Printf.printf
        "sharded (4 shards) merged stats identical at 1 domain: yes\n");
  Printf.printf "sharded admitted: %d  merged min-yield samples: %d\n"
    base.Simulator.Sharded.merged.admitted
    (List.length base.Simulator.Sharded.merged.yield_samples)

let run_ablation () =
  section_header "Ablations";
  print_string
    (Experiments.Ablation.report_window
       (Experiments.Ablation.window_sweep ?pool:!pool ()));
  print_newline ();
  print_string
    (Experiments.Ablation.report_pp_implementation
       (Experiments.Ablation.pp_implementation ?pool:!pool ()));
  print_newline ();
  print_string
    (Experiments.Ablation.report_tolerance
       (Experiments.Ablation.tolerance_sweep ?pool:!pool ()));
  print_newline ();
  print_string
    (Experiments.Ablation.report_dimension
       (Experiments.Ablation.dimension_sweep ?pool:!pool ()))

(* Bechamel micro-benchmarks: per-algorithm cost on one fixed mid-size
   instance (complements Table 2's wall-clock averages). *)
let run_micro () =
  section_header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let inst = corpus_instance () in
  let solver name (algo : Heuristics.Algorithms.t) =
    Test.make ~name (Staged.stage (fun () -> ignore (algo.solve inst)))
  in
  let tests =
    Test.make_grouped ~name:"solvers" ~fmt:"%s/%s"
      [
        solver "metagreedy" Heuristics.Algorithms.metagreedy;
        solver "metavp" Heuristics.Algorithms.metavp;
        solver "metahvplight" Heuristics.Algorithms.metahvplight;
        solver "rrnz" (Heuristics.Algorithms.rrnz ~seed:1);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "%-24s %12.0f ns/run (%s)\n" name est measure
          | _ -> Printf.printf "%-24s (no estimate)\n" name)
        tbl)
    merged

(* Satellite: BENCH_par.json must never ship hollow arrays. When a run
   selects a subset of sections (e.g. CI's `bench -- obs sim`), any block
   whose section didn't run gets one cheap fallback measurement here, so
   every consumer sees at least one entry per block at every scale. The
   fallbacks use METAHVPLIGHT (60 strategies) and a short sim horizon to
   stay a few hundred milliseconds each. *)
let backfill_bench_blocks () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let inst = lazy (corpus_instance ()) in
  if !kernel_runs = [] then begin
    progress "backfill: kernel block (METAHVPLIGHT, 1 domain)";
    ignore
      (kernel_measure ~algorithm:"METAHVPLIGHT"
         ~strategies:Packing.Strategy.hvp_light ~domains:1 ~reps:1
         (Lazy.force inst))
  end;
  if !comparisons = [] then begin
    progress "backfill: comparisons block (METAHVPLIGHT, 1 vs 2 domains)";
    let solve pool () =
      ignore
        (Heuristics.Vp_solver.solve_multi ?pool Packing.Strategy.hvp_light
           (Lazy.force inst))
    in
    let (), sequential_s = time (solve None) in
    let (), parallel_s =
      time (fun () ->
          Par.Pool.with_pool ~domains:2 (fun p -> solve (Some p) ()))
    in
    comparisons :=
      { c_section = "fallback:hvplight-solve"; c_domains = 2; sequential_s;
        parallel_s }
      :: !comparisons
  end;
  if !probe_comparisons = [] then begin
    progress "backfill: probe_par block (METAHVPLIGHT, 2 domains)";
    let solve pool rounds =
      ignore
        (Heuristics.Vp_solver.solve_multi ?pool
           ~on_round:(fun _ -> incr rounds)
           Packing.Strategy.hvp_light (Lazy.force inst))
    in
    let seq_rounds = ref 0 in
    let (), p_seq_s = time (fun () -> solve None seq_rounds) in
    let par_rounds = ref 0 in
    let (), p_par_s =
      time (fun () ->
          Par.Pool.with_pool ~domains:2 (fun p -> solve (Some p) par_rounds))
    in
    probe_comparisons :=
      { p_algorithm = "METAHVPLIGHT"; p_domains = 2;
        p_seq_rounds = !seq_rounds; p_par_rounds = !par_rounds; p_seq_s;
        p_par_s }
      :: !probe_comparisons
  end;
  if !obs_snapshots = [] || !obs_overhead = None then begin
    progress "backfill: obs block (METAHVPLIGHT counters + overhead)";
    let was_enabled = Obs.Metrics.enabled () in
    Fun.protect ~finally:(fun () ->
        Obs.Metrics.set_enabled false;
        Obs.Metrics.reset ();
        Obs.Metrics.set_enabled was_enabled)
    @@ fun () ->
    let solve () =
      ignore (Heuristics.Algorithms.metahvplight.solve (Lazy.force inst))
    in
    if !obs_snapshots = [] then begin
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled true;
      solve ();
      Obs.Metrics.set_enabled false;
      let snap = Obs.Metrics.snapshot () in
      obs_snapshots :=
        ("METAHVPLIGHT", Obs.Metrics.Snapshot.to_json snap)
        :: !obs_snapshots
    end;
    if !obs_overhead = None then begin
      Obs.Metrics.set_enabled false;
      let (), disabled_s = time solve in
      Obs.Metrics.set_enabled true;
      Obs.Metrics.reset ();
      let (), enabled_s = time solve in
      obs_overhead := Some (disabled_s, enabled_s)
    end
  end;
  if !batch_runs = [] then begin
    progress "backfill: batch block (4 tenants, 2 domains)";
    let jobs = batch_jobs ~tenants:4 in
    let serial = batch_serial_arm jobs in
    ignore (batch_measure ~tenants:4 ~domains:2 ~reps:2 ~serial jobs)
  end;
  if !lp_solver_runs = [] then begin
    progress "backfill: lp.solver block (lp_gen 9x12)";
    ignore
      (lp_solver_measure ~label:"fallback:lp_gen:feasible 9x12"
         (Lp_gen.generate ~seed:0 ~n_vars:9 ~n_cons:12 Lp_gen.Feasible))
  end;
  if !lp_probe_runs = [] then begin
    progress "backfill: lp.probe block (3nx8s 2x-oversub)";
    ignore
      (lp_probe_measure ~label:"fallback:3nx8s 2x-oversub"
         (oversubscribed_instance ~seed:1 ~nodes:3 ~services:8 ~factor:2.))
  end;
  if !lp_sparse_lu_runs = [] then begin
    progress "backfill: lp.sparse_lu block (banded 200x150)";
    ignore
      (lp_sparse_lu_measure ~label:"fallback:lp_gen:banded 200x150"
         (Lp_gen.generate ~seed:0 ~n_vars:200 ~n_cons:150 Lp_gen.Banded))
  end;
  if !sim_scaling = [] || !sim_skips = None || !sim_shard_runs = [] then begin
    progress "backfill: sim block (horizon 50)";
    let platform =
      Array.init 4 (fun id ->
          if id < 2 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
          else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)
    in
    let config =
      {
        Simulator.Engine.default_config with
        horizon = 50.;
        arrival_rate = 2.;
        mean_lifetime = 12.;
        reallocation_period = 20.;
        memory_scale = 1.4;
      }
    in
    if !sim_scaling = [] || !sim_skips = None then begin
      let was_enabled = Obs.Metrics.enabled () in
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled true;
      let stats, s_seconds =
        time (fun () ->
            Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:0) config
              ~platform)
      in
      Obs.Metrics.set_enabled false;
      let snap = Obs.Metrics.snapshot () in
      Obs.Metrics.set_enabled was_enabled;
      if !sim_scaling = [] then
        sim_scaling :=
          { s_horizon = 50.; s_admitted = stats.admitted; s_seconds }
          :: !sim_scaling;
      if !sim_skips = None then
        sim_skips :=
          Some
            (Obs.Metrics.Snapshot.counter_value snap "simulator.reeval_skips")
    end;
    if !sim_shard_runs = [] then begin
      let _, sh_seconds =
        time (fun () ->
            Simulator.Sharded.run ~seed:0 ~shards:2 config ~platform)
      in
      sim_shard_runs :=
        { sh_shards = 2; sh_domains = 1; sh_seconds; sh_identical = true }
        :: !sim_shard_runs
    end
  end;
  if !online_runs = [] then begin
    progress "backfill: online block (40 hosts, resolve vs greedy-random)";
    let config =
      {
        Simulator.Engine.default_config with
        horizon = 40.;
        arrival_rate = 4.;
        mean_lifetime = 20.;
        reallocation_period = 10.;
        memory_scale = 0.5;
        algorithm =
          Heuristics.Algorithms.single_greedy Heuristics.Greedy.S7
            Heuristics.Greedy.P4;
      }
    in
    ignore (online_policy_measure ~hosts:40 ~config Simulator.Policy.Resolve);
    ignore
      (online_policy_measure ~hosts:40 ~config Simulator.Policy.Greedy_random)
  end

let all_sections =
  [
    "table1"; "table2"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
    "figfamilies"; "successrate"; "ranking"; "hvplight"; "theorem";
    "ablation"; "online"; "parbench"; "probepar"; "kernel"; "batch"; "lp";
    "obs"; "sim"; "micro";
  ]

let () =
  let scale = Experiments.Scale.from_env () in
  let domains = Experiments.Scale.domains_from_env () in
  if domains > 1 then pool := Some (Par.Pool.create ~domains);
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> all_sections
  in
  (* Anything that varies across runs or domain counts goes to stderr:
     stdout is the deterministic result stream. *)
  Printf.printf "vmalloc benchmark harness — scale preset: %s\n"
    scale.Experiments.Scale.label;
  Printf.eprintf "[bench] trial parallelism: %d domain%s%s\n%!" domains
    (if domains = 1 then "" else "s")
    (if domains = 1 then " (legacy sequential path)" else "");
  let t0 = Unix.gettimeofday () in
  let timed_section name f =
    let s0 = Unix.gettimeofday () in
    f ();
    section_times := (name, Unix.gettimeofday () -. s0) :: !section_times
  in
  List.iter
    (fun section ->
      timed_section section @@ fun () ->
      match section with
      | "table1" -> run_table1 scale
      | "table2" -> run_table2 scale
      | "fig2" ->
          run_fig_cov scale Experiments.Fig_cov.Fully_heterogeneous
            "Fig. 2 family: yield difference vs CoV (fully heterogeneous)"
      | "fig3" ->
          run_fig_cov scale Experiments.Fig_cov.Cpu_homogeneous
            "Fig. 3: yield difference vs CoV (CPU homogeneous)"
      | "fig4" ->
          run_fig_cov scale Experiments.Fig_cov.Mem_homogeneous
            "Fig. 4: yield difference vs CoV (memory homogeneous)"
      | "fig5" ->
          run_fig_error scale
            (List.nth scale.Experiments.Scale.error_services 0)
            "Fig. 5 family: error experiments (small service count)"
      | "fig6" ->
          run_fig_error scale
            (List.nth scale.Experiments.Scale.error_services 1)
            "Fig. 6 family: error experiments (medium service count)"
      | "fig7" ->
          run_fig_error scale
            (List.nth scale.Experiments.Scale.error_services 2)
            "Fig. 7 family: error experiments (large service count)"
      | "figfamilies" -> run_fig_families scale
      | "online" -> run_online ()
      | "successrate" -> run_success_rate ()
      | "ranking" -> run_ranking ()
      | "hvplight" -> run_hvplight scale
      | "theorem" -> run_theorem ()
      | "ablation" -> run_ablation ()
      | "parbench" -> run_parbench scale
      | "probepar" -> run_probe_par ()
      | "kernel" -> run_kernel ()
      | "batch" -> run_batch_bench ()
      | "lp" -> run_lp ()
      | "obs" -> run_obs ()
      | "sim" -> run_sim ()
      | "micro" -> run_micro ()
      | other -> Printf.eprintf "unknown section %S (skipped)\n" other)
    requested;
  timed_section "backfill" backfill_bench_blocks;
  let total = Unix.gettimeofday () -. t0 in
  Printf.eprintf "[bench] total bench time: %.1fs\n%!" total;
  write_bench_par_json ~scale_label:scale.Experiments.Scale.label ~total
    "BENCH_par.json";
  persist_history "BENCH_par.json";
  Option.iter Par.Pool.shutdown !pool
