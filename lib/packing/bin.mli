(** Mutable packing bins.

    A bin is a node's capacity pair plus the aggregate load accumulated so
    far. Bins are heterogeneous: each carries its own elementary and
    aggregate capacities (paper §3.5.4). *)

type t = private {
  id : int;
  mutable capacity : Vec.Epair.t;
      (** fixed for a bin's lifetime with a node, re-pointed only by
          {!rebind} when a scratch-pool kernel is recycled across solves *)
  load : float array;  (** aggregate load per dimension, mutated by [place] *)
  mutable contents : int list;  (** item ids, most recent first *)
  mutable sum_load : float;
      (** Running sum of [load], maintained by [place]/[reset] as the same
          left fold the on-demand computation used, so {!load_sum} is O(1)
          and bit-identical to folding. *)
  mutable sum_remaining : float;
      (** Running sum of clamped remaining aggregate capacity; same
          contract as [sum_load] for {!remaining_sum}. *)
}

val v : id:int -> capacity:Vec.Epair.t -> t
(** Fresh empty bin. *)

val reset : t -> unit
(** Return the bin to its freshly created state (zero load, no contents)
    without reallocating — the probe kernel's per-attempt recycle. *)

val rebind : t -> capacity:Vec.Epair.t -> unit
(** [reset] plus re-pointing the bin at a new capacity of the {e same}
    dimension — the kernel scratch pool's cross-solve recycle. The result
    is indistinguishable from a fresh [v ~id ~capacity]. Asserts on a
    dimension mismatch (callers key reuse on matching shape). *)

val dim : t -> int

val fits : t -> Item.t -> bool
(** Admission test: the item's elementary demand fits the bin's elementary
    capacity and current load plus the item's aggregate demand fits the
    aggregate capacity (library tolerance). *)

val place : t -> Item.t -> unit
(** Add the item. Does not re-check {!fits}. *)

val load_vector : t -> Vec.Vector.t
(** Current aggregate load (copy). *)

val remaining : t -> Vec.Vector.t
(** Aggregate capacity minus load, clamped at 0 (copy). *)

val load_sum : t -> float
(** Sum of loads across dimensions (Best-Fit's homogeneous criterion).
    O(1): reads the running [sum_load] field. *)

val remaining_sum : t -> float
(** Sum of remaining aggregate capacity (Best-Fit's heterogeneous
    criterion). O(1) and allocation-free: reads the running
    [sum_remaining] field instead of materializing {!remaining}. *)

val size : t -> Vec.Vector.t
(** The vector used by bin-sorting strategies: aggregate capacity. *)

val pp : Format.formatter -> t -> unit
