type flavour = Permutation | Choose

type bin_ranking = By_load | By_remaining_capacity

(* The permutation-key engine's unit of work is one candidate key built and
   compared while a bin selects its next item; attempts count the select
   passes (one per placed item plus one final empty pass per bin). *)
let c_keys = Obs.Metrics.counter "packing.perm_keys_tried"
let c_attempts = Obs.Metrics.counter "packing.placement_attempts"
let c_placed = Obs.Metrics.counter "packing.placements"

(* Rank positions of a bin's dimensions: position.(d) = rank of dimension d
   in the bin's preference order (0 = the dimension we most want demand
   in). *)
let bin_positions ranking bin =
  let perm =
    match ranking with
    | By_load -> Vec.Vector.permutation_asc (Bin.load_vector bin)
    | By_remaining_capacity ->
        Vec.Vector.permutation_desc (Bin.remaining bin)
  in
  let pos = Array.make (Array.length perm) 0 in
  Array.iteri (fun rank d -> pos.(d) <- rank) perm;
  pos

let item_key ~bin_perm_pos (item : Item.t) =
  let item_perm = Vec.Vector.permutation_desc (Item.size item) in
  Array.map (fun d -> bin_perm_pos.(d)) item_perm

let compare_keys flavour ~window a b =
  let w = min window (Array.length a) in
  let view key =
    let v = Array.sub key 0 w in
    (match flavour with
    | Permutation -> ()
    | Choose -> Array.sort compare v);
    v
  in
  compare (view a) (view b)

(* Probe-shared scratch (DESIGN.md §11). An item's descending dimension
   permutation depends only on its demand vector, which is fixed for the
   whole fixed-yield probe, so the kernel computes it once per (probe,
   item) instead of once per candidate key — across METAHVP's 121
   Permutation-Pack attempts that removes the dominant allocation in the
   probe bill. The remaining per-select-pass state (bin dimension ranks,
   comparison windows) lives in reusable buffers. A scratch belongs to one
   strategy cache and must only be used from one domain at a time. *)
type scratch = {
  mutable perms : int array array;
      (* item id -> descending dimension permutation of its aggregate
         demand; [||] = not yet computed this probe *)
  mutable pos : int array;  (* dimension -> rank in the bin's order *)
  mutable vals : float array;  (* per-dimension sort values *)
  mutable order : int array;  (* dimension permutation being built *)
  mutable key_a : int array;  (* Choose-flavour window views *)
  mutable key_b : int array;
}

let scratch () =
  { perms = [||]; pos = [||]; vals = [||]; order = [||]; key_a = [||];
    key_b = [||] }

let scratch_new_probe s = Array.fill s.perms 0 (Array.length s.perms) [||]

let ensure_capacity s ~n_items ~dims =
  if Array.length s.perms < n_items then s.perms <- Array.make n_items [||];
  if Array.length s.pos < dims then begin
    s.pos <- Array.make dims 0;
    s.vals <- Array.make dims 0.;
    s.order <- Array.make dims 0;
    s.key_a <- Array.make dims 0;
    s.key_b <- Array.make dims 0
  end

(* Stable insertion sort of dimension indices over [s.vals] — the unique
   stable result, hence identical to the [Array.stable_sort] inside
   [Vector.permutation_asc]/[permutation_desc] under the same
   comparator. *)
let fill_order ~desc s d =
  let order = s.order and vals = s.vals in
  for i = 0 to d - 1 do
    order.(i) <- i
  done;
  for i = 1 to d - 1 do
    let x = order.(i) in
    let j = ref (i - 1) in
    while
      !j >= 0
      &&
      let c =
        if desc then Float.compare vals.(x) vals.(order.(!j))
        else Float.compare vals.(order.(!j)) vals.(x)
      in
      c > 0
    do
      order.(!j + 1) <- order.(!j);
      decr j
    done;
    order.(!j + 1) <- x
  done

(* [s.pos] := the same ranks [bin_positions] computes, without the load /
   remaining vector copies ([s.vals] is filled with the very expressions
   [Bin.load_vector] / [Bin.remaining] use). *)
let fill_positions ranking s (bin : Bin.t) =
  let d = Bin.dim bin in
  (match ranking with
  | By_load ->
      for i = 0 to d - 1 do
        s.vals.(i) <- bin.Bin.load.(i)
      done;
      fill_order ~desc:false s d
  | By_remaining_capacity ->
      let cap = bin.Bin.capacity.Vec.Epair.aggregate in
      for i = 0 to d - 1 do
        s.vals.(i) <-
          Float.max 0. (Vec.Vector.get cap i -. bin.Bin.load.(i))
      done;
      fill_order ~desc:true s d);
  for r = 0 to d - 1 do
    s.pos.(s.order.(r)) <- r
  done

let item_perm s (item : Item.t) =
  let id = item.Item.id in
  let p = s.perms.(id) in
  if p != [||] then p
  else begin
    let p = Vec.Vector.permutation_desc (Item.size item) in
    s.perms.(id) <- p;
    p
  end

(* Compare two candidate keys without materializing them: key.(k) =
   pos.(perm.(k)), lexicographic over the first [w] entries
   ([compare_keys] always sees equal-length views, so polymorphic compare
   there is exactly this element-wise order). Choose-flavour views are
   sorted multisets, so any correct sort of the window matches
   [Array.sort] inside [compare_keys]. *)
let compare_perms flavour ~w s pa pb =
  let pos = s.pos in
  match flavour with
  | Permutation ->
      let rec lex k =
        if k >= w then 0
        else
          let c = Int.compare pos.(pa.(k)) pos.(pb.(k)) in
          if c <> 0 then c else lex (k + 1)
      in
      lex 0
  | Choose ->
      let a = s.key_a and b = s.key_b in
      for k = 0 to w - 1 do
        a.(k) <- pos.(pa.(k));
        b.(k) <- pos.(pb.(k))
      done;
      let insort v =
        for i = 1 to w - 1 do
          let x = v.(i) in
          let j = ref (i - 1) in
          while !j >= 0 && v.(!j) > x do
            v.(!j + 1) <- v.(!j);
            decr j
          done;
          v.(!j + 1) <- x
        done
      in
      insort a;
      insort b;
      let rec lex k =
        if k >= w then 0
        else
          let c = Int.compare a.(k) b.(k) in
          if c <> 0 then c else lex (k + 1)
      in
      lex 0

let pack ?(flavour = Permutation) ?window ?(ranking = By_load) ?scratch ~bins
    ~items () =
  let n_items = Array.length items in
  let window =
    match window with
    | Some w ->
        if w <= 0 then invalid_arg "Permutation_pack.pack: window must be > 0";
        w
    | None ->
        if n_items = 0 then 1 else Vec.Epair.dim items.(0).Item.demand
  in
  let unplaced = Array.make n_items true in
  let left = ref n_items in
  let fill_bin_naive bin =
    let rec select () =
      if !left = 0 then ()
      else begin
        Obs.Metrics.incr c_attempts;
        let pos = bin_positions ranking bin in
        let best = ref (-1) and best_key = ref [||] in
        for j = 0 to n_items - 1 do
          if unplaced.(j) && Bin.fits bin items.(j) then begin
            Obs.Metrics.incr c_keys;
            let key = item_key ~bin_perm_pos:pos items.(j) in
            (* Strict comparison keeps the earliest item on key ties, which
               is how the sorted per-permutation lists of the original
               formulation break ties. *)
            if !best < 0 || compare_keys flavour ~window key !best_key < 0
            then begin
              best := j;
              best_key := key
            end
          end
        done;
        if !best >= 0 then begin
          Obs.Metrics.incr c_placed;
          Bin.place bin items.(!best);
          unplaced.(!best) <- false;
          decr left;
          select ()
        end
      end
    in
    select ()
  in
  let fill_bin_scratch s bin =
    let d = Bin.dim bin in
    let w = min window d in
    let rec select () =
      if !left = 0 then ()
      else begin
        Obs.Metrics.incr c_attempts;
        fill_positions ranking s bin;
        let best = ref (-1) and best_perm = ref [||] in
        for j = 0 to n_items - 1 do
          if unplaced.(j) && Bin.fits bin items.(j) then begin
            Obs.Metrics.incr c_keys;
            let pj = item_perm s items.(j) in
            if !best < 0 || compare_perms flavour ~w s pj !best_perm < 0
            then begin
              best := j;
              best_perm := pj
            end
          end
        done;
        if !best >= 0 then begin
          Obs.Metrics.incr c_placed;
          Bin.place bin items.(!best);
          unplaced.(!best) <- false;
          decr left;
          select ()
        end
      end
    in
    select ()
  in
  (match scratch with
  | None -> Array.iter fill_bin_naive bins
  | Some s ->
      let max_id =
        Array.fold_left (fun acc (it : Item.t) -> max acc it.Item.id) (-1)
          items
      in
      let dims =
        Array.fold_left (fun acc b -> max acc (Bin.dim b)) 1 bins
      in
      ensure_capacity s ~n_items:(max_id + 1) ~dims;
      Array.iter (fill_bin_scratch s) bins);
  !left = 0
