type flavour = Permutation | Choose

type bin_ranking = By_load | By_remaining_capacity

(* The permutation-key engine's unit of work is one candidate key built and
   compared while a bin selects its next item; attempts count the select
   passes (one per placed item plus one final empty pass per bin). *)
let c_keys = Obs.Metrics.counter "packing.perm_keys_tried"
let c_attempts = Obs.Metrics.counter "packing.placement_attempts"
let c_placed = Obs.Metrics.counter "packing.placements"

(* Rank positions of a bin's dimensions: position.(d) = rank of dimension d
   in the bin's preference order (0 = the dimension we most want demand
   in). *)
let bin_positions ranking bin =
  let perm =
    match ranking with
    | By_load -> Vec.Vector.permutation_asc (Bin.load_vector bin)
    | By_remaining_capacity ->
        Vec.Vector.permutation_desc (Bin.remaining bin)
  in
  let pos = Array.make (Array.length perm) 0 in
  Array.iteri (fun rank d -> pos.(d) <- rank) perm;
  pos

let item_key ~bin_perm_pos (item : Item.t) =
  let item_perm = Vec.Vector.permutation_desc (Item.size item) in
  Array.map (fun d -> bin_perm_pos.(d)) item_perm

let compare_keys flavour ~window a b =
  let w = min window (Array.length a) in
  let view key =
    let v = Array.sub key 0 w in
    (match flavour with
    | Permutation -> ()
    | Choose -> Array.sort compare v);
    v
  in
  compare (view a) (view b)

let pack ?(flavour = Permutation) ?window ?(ranking = By_load) ~bins ~items () =
  let n_items = Array.length items in
  let window =
    match window with
    | Some w ->
        if w <= 0 then invalid_arg "Permutation_pack.pack: window must be > 0";
        w
    | None ->
        if n_items = 0 then 1 else Vec.Epair.dim items.(0).Item.demand
  in
  let unplaced = Array.make n_items true in
  let left = ref n_items in
  let fill_bin bin =
    let rec select () =
      if !left = 0 then ()
      else begin
        Obs.Metrics.incr c_attempts;
        let pos = bin_positions ranking bin in
        let best = ref (-1) and best_key = ref [||] in
        for j = 0 to n_items - 1 do
          if unplaced.(j) && Bin.fits bin items.(j) then begin
            Obs.Metrics.incr c_keys;
            let key = item_key ~bin_perm_pos:pos items.(j) in
            (* Strict comparison keeps the earliest item on key ties, which
               is how the sorted per-permutation lists of the original
               formulation break ties. *)
            if !best < 0 || compare_keys flavour ~window key !best_key < 0
            then begin
              best := j;
              best_key := key
            end
          end
        done;
        if !best >= 0 then begin
          Obs.Metrics.incr c_placed;
          Bin.place bin items.(!best);
          unplaced.(!best) <- false;
          decr left;
          select ()
        end
      end
    in
    select ()
  in
  Array.iter fill_bin bins;
  !left = 0
