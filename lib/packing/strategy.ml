type algo =
  | First_fit
  | Best_fit
  | Permutation_pack of { flavour : Permutation_pack.flavour;
                          window : int option }

type variant = Vp | Hvp

type t = {
  algo : algo;
  item_order : Vec.Metric.order;
  bin_order : Vec.Metric.order;
  variant : variant;
}

let assignment ~bins ~n_items =
  let assign = Array.make n_items (-1) in
  Array.iter
    (fun (bin : Bin.t) ->
      List.iter (fun item_id -> assign.(item_id) <- bin.Bin.id) bin.contents)
    bins;
  assign

(* Probe-shared sort memos. Most of the 253 HVP strategies differ only in
   packing rule or bin order, not item measure, so within one fixed-yield
   probe each distinct sorted item order need only be computed once. Bin
   orders sort by capacity, which never changes, so those memos survive
   for the lifetime of the cache. The memoized arrays alias the caller's
   item/bin records (the packing loops only read items and mutate bins in
   place), and are built by the exact [Vec.Metric.sort] the uncached path
   runs — same stable sort over the same values — so a cached run is
   bit-identical to an uncached one. Counted under the solver's namespace:
   it is [Vp_solver]'s probe bill these hits cut. *)
let c_item_hits = Obs.Metrics.counter "vp_solver.items_cache_hits"

type cache = {
  mutable sorted_items : (Vec.Metric.order * Item.t array) list;
  mutable sorted_bins : (Vec.Metric.order * Bin.t array) list;
  pp_scratch : Permutation_pack.scratch;
}

let cache () =
  { sorted_items = []; sorted_bins = [];
    pp_scratch = Permutation_pack.scratch () }

let cache_new_probe c =
  c.sorted_items <- [];
  Permutation_pack.scratch_new_probe c.pp_scratch

(* Full invalidation for rebinding the cache to a *different* item/bin
   pair (the per-domain kernel scratch pool, DESIGN.md §16): unlike
   [cache_new_probe] the bin-order memos must go too — they alias the
   previous instance's bins, whose capacities the new instance does not
   share. After a reset the cache is observationally a fresh one (the
   Permutation-Pack scratch keeps only its buffer capacity, which is
   data-independent). *)
let cache_reset c =
  c.sorted_items <- [];
  c.sorted_bins <- [];
  Permutation_pack.scratch_new_probe c.pp_scratch

let items_in_order cache order items =
  match cache with
  | None -> Vec.Metric.sort order Item.size items
  | Some c -> (
      match List.assoc_opt order c.sorted_items with
      | Some sorted ->
          Obs.Metrics.incr c_item_hits;
          sorted
      | None ->
          let sorted = Vec.Metric.sort order Item.size items in
          c.sorted_items <- (order, sorted) :: c.sorted_items;
          sorted)

let bins_in_order cache order bins =
  match cache with
  | None -> Vec.Metric.sort order Bin.size bins
  | Some c -> (
      match List.assoc_opt order c.sorted_bins with
      | Some sorted -> sorted
      | None ->
          let sorted = Vec.Metric.sort order Bin.size bins in
          c.sorted_bins <- (order, sorted) :: c.sorted_bins;
          sorted)

let run ?cache:memo t ~bins ~items =
  let items = items_in_order memo t.item_order items in
  let bins =
    match (t.variant, t.algo) with
    | Vp, _ | _, Best_fit -> bins
    | Hvp, (First_fit | Permutation_pack _) ->
        bins_in_order memo t.bin_order bins
  in
  let ok =
    match t.algo with
    | First_fit -> Fit.first_fit ~bins ~items
    | Best_fit ->
        let rank =
          match t.variant with
          | Vp -> Fit.By_load
          | Hvp -> Fit.By_remaining
        in
        Fit.best_fit ~rank ~bins ~items
    | Permutation_pack { flavour; window } ->
        let ranking =
          match t.variant with
          | Vp -> Permutation_pack.By_load
          | Hvp -> Permutation_pack.By_remaining_capacity
        in
        let scratch = Option.map (fun c -> c.pp_scratch) memo in
        Permutation_pack.pack ~flavour ?window ~ranking ?scratch ~bins ~items
          ()
  in
  if ok then Some (assignment ~bins ~n_items:(Array.length items)) else None

let algos =
  [
    First_fit;
    Best_fit;
    Permutation_pack { flavour = Permutation_pack.Permutation; window = None };
  ]

let vp_all =
  List.concat_map
    (fun algo ->
      List.map
        (fun item_order ->
          { algo; item_order; bin_order = Vec.Metric.Unsorted; variant = Vp })
        Vec.Metric.all_orders)
    algos

let hvp_all =
  let best_fit =
    List.map
      (fun item_order ->
        { algo = Best_fit; item_order; bin_order = Vec.Metric.Unsorted;
          variant = Hvp })
      Vec.Metric.all_orders
  in
  let sorted_bins =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun item_order ->
            List.map
              (fun bin_order -> { algo; item_order; bin_order; variant = Hvp })
              Vec.Metric.all_orders)
          Vec.Metric.all_orders)
      [
        First_fit;
        Permutation_pack
          { flavour = Permutation_pack.Permutation; window = None };
      ]
  in
  best_fit @ sorted_bins

(* The pruned strategy subset identified in paper §5.1. *)
let light_item_orders =
  Vec.Metric.
    [
      Desc (Scalar Max);
      Desc (Scalar Sum);
      Desc (Scalar Max_difference);
      Desc (Scalar Max_ratio);
    ]

let light_bin_orders =
  Vec.Metric.
    [
      Asc Lex;
      Asc (Scalar Max);
      Asc (Scalar Sum);
      Desc (Scalar Max);
      Desc (Scalar Max_difference);
      Desc (Scalar Max_ratio);
      Unsorted;
    ]

let hvp_light =
  let best_fit =
    List.map
      (fun item_order ->
        { algo = Best_fit; item_order; bin_order = Vec.Metric.Unsorted;
          variant = Hvp })
      light_item_orders
  in
  let sorted_bins =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun item_order ->
            List.map
              (fun bin_order -> { algo; item_order; bin_order; variant = Hvp })
              light_bin_orders)
          light_item_orders)
      [
        First_fit;
        Permutation_pack
          { flavour = Permutation_pack.Permutation; window = None };
      ]
  in
  best_fit @ sorted_bins

let algo_name = function
  | First_fit -> "FF"
  | Best_fit -> "BF"
  | Permutation_pack { flavour = Permutation_pack.Permutation; window = None }
    ->
      "PP"
  | Permutation_pack { flavour = Permutation_pack.Permutation; window = Some w }
    ->
      Printf.sprintf "PP[w=%d]" w
  | Permutation_pack { flavour = Permutation_pack.Choose; window = None } ->
      "CP"
  | Permutation_pack { flavour = Permutation_pack.Choose; window = Some w } ->
      Printf.sprintf "CP[w=%d]" w

let name t =
  let prefix = match t.variant with Vp -> "VP" | Hvp -> "HVP" in
  match t.algo with
  | Best_fit ->
      Printf.sprintf "%s-%s(%s items)" prefix (algo_name t.algo)
        (Vec.Metric.order_to_string t.item_order)
  | First_fit | Permutation_pack _ ->
      if t.variant = Vp then
        Printf.sprintf "%s-%s(%s items)" prefix (algo_name t.algo)
          (Vec.Metric.order_to_string t.item_order)
      else
        Printf.sprintf "%s-%s(%s items, %s bins)" prefix (algo_name t.algo)
          (Vec.Metric.order_to_string t.item_order)
          (Vec.Metric.order_to_string t.bin_order)
