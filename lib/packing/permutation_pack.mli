(** Permutation-Pack and Choose-Pack (Leinberger et al., paper §3.5.2).

    These heuristics fill bins one at a time, repeatedly selecting the
    remaining item that best "goes against" the bin's current capacity
    imbalance: an ideal item has its largest demand in the bin's
    least-loaded dimension, keeping the bin from filling up in one dimension
    while capacity remains in others.

    This module implements the paper's improved O(J²·D) selection: instead
    of maintaining D! per-permutation item lists, each item's demand
    permutation is mapped through the bin's dimension ranking into a
    {e key}, and the fitting item with the lexicographically smallest key
    wins. [Naive_permutation_pack] is the literal D!-list formulation, kept
    as an executable specification for tests and the complexity ablation.

    With window [w < D], only the first [w] key positions are compared.
    Permutation-Pack compares them in order; Choose-Pack treats them as an
    unordered set (it sorts the window before comparing). With [w = 1] the
    two coincide. *)

type flavour = Permutation | Choose

type bin_ranking = By_load | By_remaining_capacity
(** Dimension ranking of the current bin: ascending load (homogeneous VP)
    or descending remaining capacity (HVP, §3.5.4). *)

val item_key : bin_perm_pos:int array -> Item.t -> int array
(** [item_key ~bin_perm_pos item] maps the item's descending-demand
    dimension permutation through the bin's ranking positions; position
    array [bin_perm_pos.(d)] is the rank of dimension [d] in the bin's
    ordering. Exposed for tests. *)

val compare_keys : flavour -> window:int -> int array -> int array -> int
(** Lexicographic key comparison restricted to the window, set-wise for
    Choose-Pack. Exposed for tests. *)

type scratch
(** Probe-shared selection scratch (DESIGN.md §11): per-item demand
    permutations memoized for the lifetime of one fixed-yield probe
    (invalidate with {!scratch_new_probe} when item demands change) plus
    reusable buffers for the per-select-pass bin ranking and window
    comparisons. Packing with a scratch picks the exact same items —
    selection keys are compared without being materialized, but over the
    same values with the same tie-breaks — it only removes the per-key
    allocations. A scratch must only be used from one domain at a time,
    with items whose ids stay dense. *)

val scratch : unit -> scratch
(** Fresh, empty scratch. *)

val scratch_new_probe : scratch -> unit
(** Drop the memoized item permutations (call after item demands change). *)

val pack :
  ?flavour:flavour ->
  ?window:int ->
  ?ranking:bin_ranking ->
  ?scratch:scratch ->
  bins:Bin.t array ->
  items:Item.t array ->
  unit ->
  bool
(** Pack items (already item-sorted: the order breaks key ties) into bins
    (already bin-sorted: bins are filled in order). Defaults: [Permutation],
    [window = D] (full keys), [By_load], no scratch. Returns false when
    items remain after all bins are exhausted. *)
