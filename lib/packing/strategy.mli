(** Strategy enumeration and runner.

    A strategy is an algorithm (First-Fit, Best-Fit, Permutation-Pack /
    Choose-Pack), an item-sorting order, a bin-sorting order and a variant
    flag. The homogeneous variant ([Vp], paper §3.5.1–3.5.3) never sorts
    bins and ranks Best-Fit bins by load; the heterogeneous variant ([Hvp],
    §3.5.4) sorts bins by capacity for First-Fit / Permutation-Pack, and
    ranks by remaining capacity for Best-Fit and for Permutation-Pack's
    per-bin dimension ordering.

    Counting as the paper does: METAVP tries the 33 VP strategies
    (3 algorithms x 11 item orders); METAHVP the 253 HVP strategies
    (11 Best-Fit + 2 x 11 x 11 for FF/PP); METAHVPLIGHT the pruned 60
    (4 Best-Fit + 2 x 4 x 7). *)

type algo =
  | First_fit
  | Best_fit
  | Permutation_pack of { flavour : Permutation_pack.flavour;
                          window : int option }

type variant = Vp | Hvp

type t = {
  algo : algo;
  item_order : Vec.Metric.order;
  bin_order : Vec.Metric.order;  (** ignored by Best-Fit and by [Vp] *)
  variant : variant;
}

type cache
(** Probe-shared sort memos: each distinct item-sort order is computed
    once per probe (invalidate with {!cache_new_probe} when item demands
    change), each distinct bin-sort order once per cache lifetime (bin
    capacities never change), and Permutation-Pack selection runs on a
    {!Permutation_pack.scratch} whose per-item demand permutations are
    likewise memoized per probe. The memoized arrays alias the caller's
    item and bin records, so a cache must only ever be used with the one
    item/bin pair it first saw, from one domain at a time. Hits land on
    the [vp_solver.items_cache_hits] counter. *)

val cache : unit -> cache
(** A fresh, empty memo table. *)

val cache_new_probe : cache -> unit
(** Drop the item-order memos (call after refilling item demands for a new
    probe); bin-order memos are kept. *)

val cache_reset : cache -> unit
(** Drop {e every} memo — item orders, bin orders, Permutation-Pack
    permutations — leaving the cache observationally fresh. Required when
    a cache is rebound to a different item/bin pair (the kernel scratch
    pool): the bin-order memos alias the previous bins, so keeping them
    across instances would be unsound. *)

val run : ?cache:cache -> t -> bins:Bin.t array -> items:Item.t array ->
  int array option
(** Execute one strategy on fresh copies of nothing — [bins] are mutated.
    Items must carry dense ids [0 .. n-1]; on success the result maps item
    id to bin id. Callers should pass freshly created (or {!Bin.reset})
    bins. With [cache], item/bin sort orders are memoized as documented on
    {!type-cache}; results are bit-identical with and without it. *)

val assignment : bins:Bin.t array -> n_items:int -> int array
(** Read the item-to-bin assignment out of packed bins (helper shared with
    tests). *)

val vp_all : t list
(** The 33 homogeneous strategies of METAVP. *)

val hvp_all : t list
(** The 253 heterogeneous strategies of METAHVP. *)

val hvp_light : t list
(** The 60 heterogeneous strategies of METAHVPLIGHT (paper §5.1). *)

val name : t -> string
(** E.g. ["HVP-PP(DMAX items, ASUM bins)"]. *)
