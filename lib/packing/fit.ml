type bin_rank = By_load | By_remaining

(* Packing-engine work counters: one placement attempt per item processed,
   one bin examined per fits test (first-fit stops at the first success,
   best-fit always scans every bin). *)
let c_attempts = Obs.Metrics.counter "packing.placement_attempts"
let c_bins = Obs.Metrics.counter "packing.bins_examined"
let c_placed = Obs.Metrics.counter "packing.placements"

(* Items must be processed strictly in order (the sort is the heuristic), so
   both algorithms use an explicit indexed loop rather than iterators whose
   traversal order is unspecified. *)

let first_fit ~bins ~items =
  let n_bins = Array.length bins in
  let rec place_from j =
    if j >= Array.length items then true
    else begin
      Obs.Metrics.incr c_attempts;
      let item = items.(j) in
      let rec scan b =
        if b >= n_bins then begin
          Obs.Metrics.add c_bins n_bins;
          false
        end
        else if Bin.fits bins.(b) item then begin
          Obs.Metrics.add c_bins (b + 1);
          Obs.Metrics.incr c_placed;
          Bin.place bins.(b) item;
          true
        end
        else scan (b + 1)
      in
      scan 0 && place_from (j + 1)
    end
  in
  place_from 0

let best_fit ~rank ~bins ~items =
  (* Smaller score = more preferred bin. *)
  let score bin =
    match rank with
    | By_load -> -.Bin.load_sum bin
    | By_remaining -> Bin.remaining_sum bin
  in
  let rec place_from j =
    if j >= Array.length items then true
    else begin
      Obs.Metrics.incr c_attempts;
      Obs.Metrics.add c_bins (Array.length bins);
      let item = items.(j) in
      let best = ref (-1) and best_score = ref infinity in
      Array.iteri
        (fun b bin ->
          if Bin.fits bin item then begin
            let s = score bin in
            if s < !best_score then begin
              best := b;
              best_score := s
            end
          end)
        bins;
      if !best >= 0 then begin
        Obs.Metrics.incr c_placed;
        Bin.place bins.(!best) item;
        place_from (j + 1)
      end
      else false
    end
  in
  place_from 0
