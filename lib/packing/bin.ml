type t = {
  id : int;
  mutable capacity : Vec.Epair.t;
  load : float array;
  mutable contents : int list;
  mutable sum_load : float;
  mutable sum_remaining : float;
}

(* The running sums are recomputed as the same left folds the former
   on-demand [load_sum] / [remaining_sum] performed, so their values are
   bit-identical to the naive ones — they just move the O(D) work from
   every Best-Fit score (O(items x bins) reads) to every [place] /
   [reset] (O(items) writes). *)
let fold_load load = Array.fold_left ( +. ) 0. load

let fold_remaining capacity load =
  let open Vec in
  let acc = ref 0. in
  for i = 0 to Array.length load - 1 do
    acc := !acc +. Float.max 0. (Vector.get capacity.Epair.aggregate i -. load.(i))
  done;
  !acc

let v ~id ~capacity =
  let load = Array.make (Vec.Epair.dim capacity) 0. in
  {
    id;
    capacity;
    load;
    contents = [];
    sum_load = fold_load load;
    sum_remaining = fold_remaining capacity load;
  }

let reset t =
  Array.fill t.load 0 (Array.length t.load) 0.;
  t.contents <- [];
  t.sum_load <- fold_load t.load;
  t.sum_remaining <- fold_remaining t.capacity t.load

(* Re-point a recycled bin at another node's capacity (the kernel scratch
   pool rebinding one solve's bins to the next solve's instance). The
   load array is reused, so the new capacity must have the same dimension
   — shape-matching is the caller's lookup key, and the assert keeps a
   mismatch from silently corrupting the running sums. After [rebind] the
   bin is indistinguishable from [v ~id ~capacity]. *)
let rebind t ~capacity =
  assert (Vec.Epair.dim capacity = Array.length t.load);
  t.capacity <- capacity;
  reset t

let dim t = Vec.Epair.dim t.capacity

let fits t (item : Item.t) =
  let open Vec in
  Vector.fits item.demand.Epair.elementary t.capacity.Epair.elementary
  &&
  let d = Array.length t.load in
  let rec loop i =
    if i >= d then true
    else
      let cap = Vector.get t.capacity.Epair.aggregate i in
      let tol = Vector.eps *. Float.max 1. cap in
      t.load.(i) +. Vector.get item.demand.Epair.aggregate i <= cap +. tol
      && loop (i + 1)
  in
  loop 0

let place t (item : Item.t) =
  let open Vec in
  for i = 0 to Array.length t.load - 1 do
    t.load.(i) <- t.load.(i) +. Vector.get item.demand.Epair.aggregate i
  done;
  t.contents <- item.id :: t.contents;
  t.sum_load <- fold_load t.load;
  t.sum_remaining <- fold_remaining t.capacity t.load

let load_vector t = Vec.Vector.of_array t.load

let remaining t =
  let open Vec in
  Vector.init (Array.length t.load) (fun i ->
      Float.max 0. (Vector.get t.capacity.Epair.aggregate i -. t.load.(i)))

let load_sum t = t.sum_load

let remaining_sum t = t.sum_remaining

let size t = t.capacity.Vec.Epair.aggregate

let pp ppf t =
  Format.fprintf ppf "bin#%d cap %a load %a" t.id Vec.Epair.pp t.capacity
    Vec.Vector.pp (load_vector t)
