type t = float array

let eps = 1e-9

let dim v = Array.length v

let get v d = v.(d)

let make d x =
  if d <= 0 then invalid_arg "Vector.make: dimension must be positive";
  Array.make d x

let zero d = make d 0.

let of_array a =
  if Array.length a = 0 then invalid_arg "Vector.of_array: empty";
  Array.copy a

let of_list l = of_array (Array.of_list l)

let to_array v = Array.copy v

let to_list v = Array.to_list v

let init d f =
  if d <= 0 then invalid_arg "Vector.init: dimension must be positive";
  Array.init d f

let map f v = Array.map f v

let map2 f a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector.map2: dimension mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let scale s v = Array.map (fun x -> s *. x) v

let axpy a x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector.axpy: dimension mismatch";
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let axpy_fill dst a ~x ~y ~off =
  let d = Array.length dst in
  if off < 0 || off + d > Array.length x || off + d > Array.length y then
    invalid_arg "Vector.axpy_fill: offset out of range";
  for i = 0 to d - 1 do
    (* Same expression as [axpy], so a filled vector is bit-identical to a
       freshly allocated one. *)
    dst.(i) <- (a *. x.(off + i)) +. y.(off + i)
  done

let sum v = Array.fold_left ( +. ) 0. v

let max_component v = Array.fold_left max neg_infinity v

let min_component v = Array.fold_left min infinity v

let max_ratio v =
  let mx = max_component v and mn = min_component v in
  if mx = 0. && mn = 0. then 1.
  else if mn = 0. then infinity
  else mx /. mn

let max_difference v = max_component v -. min_component v

let compare_lex a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector.compare_lex: dimension mismatch";
  let rec loop i =
    if i >= Array.length a then 0
    else
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let fits demand capacity =
  if Array.length demand <> Array.length capacity then
    invalid_arg "Vector.fits: dimension mismatch";
  let rec loop i =
    if i >= Array.length demand then true
    else
      let tol = eps *. Float.max 1. (Float.abs capacity.(i)) in
      demand.(i) <= capacity.(i) +. tol && loop (i + 1)
  in
  loop 0

let le a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector.le: dimension mismatch";
  let rec loop i =
    if i >= Array.length a then true else a.(i) <= b.(i) && loop (i + 1)
  in
  loop 0

let equal ?(eps = eps) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b

let dominant_dimension v =
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

(* Stable sort of dimension indices; stability gives the tie-break toward
   lower indices that Permutation-Pack's key construction relies on. *)
let sorted_dims cmp v =
  let idx = Array.init (Array.length v) Fun.id in
  let a = Array.map (fun i -> (i, v.(i))) idx in
  Array.stable_sort (fun (_, x) (_, y) -> cmp x y) a;
  Array.map fst a

let permutation_desc v = sorted_dims (fun x y -> Float.compare y x) v

let permutation_asc v = sorted_dims Float.compare v

let dot a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector.dot: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let is_zero v = Array.for_all (fun x -> x = 0.) v

let pp ppf v =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "]"

let to_string v = Format.asprintf "%a" pp v
