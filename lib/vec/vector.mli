(** D-dimensional resource vectors.

    A vector holds one non-negative quantity per resource dimension (CPU,
    memory, network, ...). All algorithms in this library are parametric in
    the number of dimensions [D]; the paper's experiments use [D = 2]
    (CPU, memory).

    Vectors are immutable from the point of view of this interface: every
    operation returns a fresh array. The underlying representation is a
    [float array] so callers can cheaply read components with [get]. *)

type t = private float array

val dim : t -> int
(** Number of resource dimensions. *)

val get : t -> int -> float
(** [get v d] is the quantity in dimension [d]. Raises [Invalid_argument]
    if [d] is out of bounds. *)

val make : int -> float -> t
(** [make d x] is the [d]-dimensional vector with every component [x].
    Raises [Invalid_argument] if [d <= 0]. *)

val zero : int -> t
(** [zero d] is [make d 0.]. *)

val of_array : float array -> t
(** [of_array a] copies [a] into a vector. Raises [Invalid_argument] if [a]
    is empty. *)

val of_list : float list -> t
(** [of_list l] copies [l] into a vector. Raises [Invalid_argument] on []. *)

val to_array : t -> float array
(** A fresh copy of the components. *)

val to_list : t -> float list

val init : int -> (int -> float) -> t

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Raises [Invalid_argument] if dimensions differ. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y], the packing engine's inner-loop primitive
    (demand at yield [a]: [a*need + requirement]). *)

val axpy_fill : t -> float -> x:float array -> y:float array -> off:int -> unit
(** [axpy_fill dst a ~x ~y ~off] overwrites [dst.(i)] with
    [a *. x.(off+i) +. y.(off+i)] for every dimension [i] — the in-place
    form of {!axpy} over flattened per-service buffers, using the exact
    same float expression so a refilled vector is bit-identical to a fresh
    one. This is the single sanctioned mutation of a vector after
    construction: it exists for the probe-shared packing kernel's scratch
    demands, which are never aliased outside the kernel. Raises
    [Invalid_argument] when the [off]-based slice falls outside [x] or
    [y]. *)

val sum : t -> float
(** Sum of all components (the SUM scalarization metric). *)

val max_component : t -> float
(** Largest component (the MAX scalarization metric). *)

val min_component : t -> float

val max_ratio : t -> float
(** Ratio of the largest to the smallest component (MAXRATIO metric). When
    the smallest component is 0 the ratio is [infinity]; the all-zero vector
    has ratio [1.] by convention so that degenerate items sort last among
    ascending orders rather than poisoning comparisons with [nan]. *)

val max_difference : t -> float
(** Largest minus smallest component (MAXDIFFERENCE metric). *)

val compare_lex : t -> t -> int
(** Lexicographic comparison in natural dimension order (LEX metric). *)

val fits : t -> t -> bool
(** [fits demand capacity] is true when [demand] is component-wise at most
    [capacity], up to the library-wide tolerance [eps]. *)

val le : t -> t -> bool
(** Exact component-wise [<=] (no tolerance). *)

val equal : ?eps:float -> t -> t -> bool

val eps : float
(** Library-wide feasibility tolerance (1e-9), scaled by magnitude inside
    [fits]. *)

val dominant_dimension : t -> int
(** Index of the largest component (ties broken toward lower indices). *)

val permutation_desc : t -> int array
(** [permutation_desc v] lists dimension indices sorted by decreasing
    component (ties broken toward lower indices). Used by Permutation-Pack:
    the first entry is the dimension of largest demand. *)

val permutation_asc : t -> int array
(** Dimension indices sorted by increasing component — a bin's load
    permutation (first entry: least-loaded dimension). *)

val dot : t -> t -> float

val is_zero : t -> bool
(** True when every component is 0 (used to detect services with no fluid
    needs, whose yield is unconstrained). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
