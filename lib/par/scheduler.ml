(* Deterministic batched solve driver (DESIGN.md §16).

   N concurrent solve requests share one domain pool: each global round
   polls every live request — in arrival-index order — for the tasks it
   wants evaluated next, concatenates them into a single [Pool.map]
   round, and lets the requests consume their results before the next
   poll. Fairness is round-robin by construction (request i's round-r
   tasks always precede request j's for i < j), and determinism follows
   from the requests themselves: each one's task points and state
   transitions are a pure function of its own results, never of the
   interleaving, so the batched run is bit-identical to running the
   requests back-to-back.

   Tasks are [unit -> unit] thunks that store their result into
   request-local buffers; [Pool.map]'s completion barrier orders those
   writes before the next [step] call reads them. *)

type round = (unit -> unit) array

type request = unit -> round option

type t = {
  pool : Pool.t;
  mutable live : int;
      (* requests not yet finished in the current [run]; 1 when idle so
         occupancy-derived shares degenerate to the standalone case *)
}

let c_requests = Obs.Metrics.counter "scheduler.requests"
let c_rounds = Obs.Metrics.counter "scheduler.rounds_interleaved"

let create ~pool = { pool; live = 1 }

let pool t = t.pool

let occupancy t = t.live

let run t requests =
  let n = Array.length requests in
  if n > 0 then begin
    Obs.Metrics.add c_requests n;
    let finished = Array.make n false in
    let remaining = ref n in
    Fun.protect ~finally:(fun () -> t.live <- 1) @@ fun () ->
    while !remaining > 0 do
      (* Occupancy is sampled once per round, before any step runs, so
         every request's depth policy sees the same (deterministic)
         value whatever order requests finish in. *)
      t.live <- !remaining;
      let batches = ref [] in
      for i = 0 to n - 1 do
        if not finished.(i) then
          match requests.(i) () with
          | None ->
              finished.(i) <- true;
              decr remaining
          | Some tasks -> batches := tasks :: !batches
      done;
      let tasks = Array.concat (List.rev !batches) in
      let n_tasks = Array.length tasks in
      if n_tasks > 0 then begin
        Obs.Metrics.incr c_rounds;
        let t0 = Obs.Cost.now_ns () in
        ignore (Pool.map t.pool tasks (fun task -> task ()));
        Obs.Cost.observe ~tasks:n_tasks
          ~elapsed_ns:(Obs.Cost.now_ns () -. t0)
      end
    done
  end
