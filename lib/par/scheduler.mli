(** Deterministic batched solve driver over one domain pool.

    Multiplexes N concurrent solve requests (many tenants) over a single
    {!Pool}: each global round polls every live request in arrival-index
    order for its next batch of tasks, runs the concatenated batch as one
    {!Pool.map} round, and repeats until every request reports done.
    Interleaving is round-robin and fair by construction, and — because
    each request's task points and state transitions depend only on its
    own results — the batched run is bit-identical to running the same
    requests back-to-back on the same pool (DESIGN.md §16; locked by
    test/test_batch_diff.ml).

    The module is generic: a request is any incremental computation that
    alternates between demanding a batch of tasks and consuming their
    results. {!Heuristics.Batch} adapts the yield binary search and the
    direct (search-free) algorithms onto it.

    Counters: [scheduler.requests] (requests admitted), and
    [scheduler.rounds_interleaved] (pool rounds executed — the
    deterministic unit the bench's batched-throughput gate compares
    against the serial run's [binary_search.rounds]). Every executed
    round also feeds the measured per-task cost model ({!Obs.Cost}) that
    the adaptive speculation depth reads. *)

type round = (unit -> unit) array
(** One request's tasks for one global round. Each task must store its
    result into request-local state; {!Pool.map}'s completion barrier
    makes those writes visible to the request's next step. Tasks run
    concurrently on the pool's domains, so they must not share mutable
    state across tasks and must not call back into the same pool. *)

type request = unit -> round option
(** A stepped request. Called exactly once per global round while live:
    consume the previous round's results (if any) and either return the
    next round's tasks, or [None] when finished. [Some [||]] is allowed
    (the request stays live but contributes no tasks this round). *)

type t

val create : pool:Pool.t -> t
(** A scheduler multiplexing requests over [pool]. Cheap; the pool is
    not owned — the caller keeps responsibility for shutting it down. *)

val pool : t -> Pool.t

val occupancy : t -> int
(** Number of live requests in the currently executing {!run} round
    ([1] when idle). Sampled once per round before any request steps, so
    every request of a round observes the same value — the pool-share
    input to {!Binary_search.adaptive_depth}. *)

val run : t -> request array -> unit
(** Drive all [requests] to completion. Requests are stepped in arrival
    (array) order within every round. Re-entrant calls are not
    supported — one [run] at a time per scheduler. If a task raises, the
    first exception (in pool claim order) propagates after the round's
    in-flight tasks finish, mid-flight request state stays consistent
    (each request owns its buffers), and the scheduler is reusable. *)
