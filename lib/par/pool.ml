type t = {
  size : int;
  mutable workers : unit Domain.t array;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let worker_loop pool =
  let rec next () =
    Mutex.lock pool.mutex;
    let rec take () =
      match Queue.take_opt pool.jobs with
      | Some job -> Some job
      | None ->
          if pool.closed then None
          else begin
            Condition.wait pool.nonempty pool.mutex;
            take ()
          end
    in
    let job = take () in
    Mutex.unlock pool.mutex;
    match job with
    | None -> ()
    | Some job ->
        (* Jobs capture their own exceptions; this is only a backstop so a
           stray raise cannot kill the worker domain. *)
        (try job () with _ -> ());
        next ()
  in
  next ()

(* The pool whose [map] is currently executing a task on this domain, if
   any. A task that calls [map] on the same pool again would deadlock or
   starve (the inner map's helper jobs sit behind the outer map's in the
   one job queue, and the task itself occupies the claim loop), so the
   re-entry is detected here and raised as [Invalid_argument] instead of
   failing silently. Maps on a *different* pool from inside a task are
   fine — that pool's workers are separate domains — so the marker holds
   the pool's identity, not a bare flag. *)
let executing : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let check_not_nested pool =
  match Domain.DLS.get executing with
  | Some p when p == pool ->
      invalid_arg
        "Par.Pool.map: nested map on the same pool from inside a task \
         (documented as forbidden; use a second pool or restructure the \
         task)"
  | _ -> ()

let with_executing pool f =
  let saved = Domain.DLS.get executing in
  Domain.DLS.set executing (Some pool);
  Fun.protect ~finally:(fun () -> Domain.DLS.set executing saved) f

let create ~domains =
  let size = max 1 domains in
  let pool =
    {
      size;
      workers = [||];
      jobs = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let submit pool job =
  Mutex.lock pool.mutex;
  if not pool.closed then begin
    Queue.add job pool.jobs;
    Condition.signal pool.nonempty
  end;
  Mutex.unlock pool.mutex

let map pool arr f =
  check_not_nested pool;
  let n = Array.length arr in
  if pool.size = 1 || n <= 1 then with_executing pool (fun () -> Array.map f arr)
  else begin
    let results = Array.make n None in
    (* When metrics are live, each task runs against a fresh sink so that
       counts accumulated on worker domains can be folded back into the
       caller's sink in task-input order — the merged totals are then the
       sequential ones whatever the interleaving (the flag is sampled once
       so a mid-map toggle cannot half-wrap the round). *)
    let obs = Obs.Metrics.enabled () in
    let sinks = if obs then Array.make n None else [||] in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let error = Atomic.make None in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    (* Each participant claims indices from the shared counter until the
       array is exhausted; results land at their input index, so output
       order never depends on the interleaving. Every index is processed
       even after a task raised — completion therefore always reaches [n],
       which keeps the wait below deadlock-free. *)
    let run_tasks () =
      with_executing pool @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let task () =
            if obs then begin
              let s = Obs.Metrics.fresh_sink () in
              sinks.(i) <- Some s;
              Obs.Metrics.with_sink s (fun () -> f arr.(i))
            end
            else f arr.(i)
          in
          (match task () with
          | v -> results.(i) <- Some v
          | exception e ->
              ignore (Atomic.compare_and_set error None (Some e)));
          let c = 1 + Atomic.fetch_and_add completed 1 in
          if c = n then begin
            Mutex.lock done_mutex;
            Condition.broadcast done_cond;
            Mutex.unlock done_mutex
          end;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (pool.size - 1) (n - 1) in
    for _ = 1 to helpers do
      submit pool run_tasks
    done;
    run_tasks ();
    (* The caller has run out of indices; wait for claims still in flight
       on the worker domains. Helper jobs that only get scheduled after
       this point find the counter exhausted and return immediately. *)
    Mutex.lock done_mutex;
    while Atomic.get completed < n do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    (* The completion barrier above orders every task-sink write before
       these reads; merging in input order makes the fold deterministic. *)
    if obs then
      Array.iter
        (function Some s -> Obs.Metrics.merge_into_current s | None -> ())
        sinks;
    match Atomic.get error with
    | Some e -> raise e
    | None ->
        Array.map
          (function
            | Some v -> v
            | None -> assert false (* completed = n fills every slot *))
          results
  end

let default_chunk pool n = max 1 (n / (pool.size * 4))

let map_reduce pool ?chunk arr ~map:f ~fold ~init =
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ | None -> default_chunk pool n
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let chunks = Array.init n_chunks (fun c -> c) in
    let mapped =
      map pool chunks (fun c ->
          let lo = c * chunk in
          let len = min chunk (n - lo) in
          Array.init len (fun i -> f arr.(lo + i)))
    in
    Array.fold_left (Array.fold_left fold) init mapped
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let domains_from_env () =
  match Sys.getenv_opt "VMALLOC_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ ->
          Printf.eprintf
            "warning: ignoring invalid VMALLOC_DOMAINS %S (want an int >= 1)\n%!"
            s;
          Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
