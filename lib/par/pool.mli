(** Fixed-size domain pool for deterministic experiment fan-out.

    The paper's evaluation is embarrassingly parallel — hundreds of
    independent (instance, algorithm) trials — so the experiment drivers
    hand their trial arrays to a pool of OCaml 5 domains. Determinism is
    preserved by construction: every trial owns an RNG stream derived
    {e before} dispatch (from the stable per-spec hashes in
    {!Experiments.Corpus} or an explicit {!Prng.Rng.split}), tasks never
    share mutable state, and {!map} returns results in input order, so the
    fold that aggregates them observes exactly the sequential order. A pool
    of size 1 short-circuits to [Array.map] — the legacy path.

    Built on the 5.1 stdlib only ([Domain], [Mutex], [Condition],
    [Atomic]); no external scheduler. Worker domains live for the lifetime
    of the pool, and the calling domain participates in every map, so a
    pool never deadlocks even if its workers are busy elsewhere. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the caller is
    the remaining member). [domains] is clamped below at 1. Pools are
    cheap but not free — create one per run, not per trial batch. *)

val size : t -> int
(** Total parallelism, including the calling domain; [>= 1]. *)

val map : t -> 'a array -> ('a -> 'b) -> 'b array
(** [map pool arr f] applies [f] to every element, fanning the work over
    the pool's domains, and returns the results {e in input order}. The
    calling domain works too, so this makes progress with any pool size.
    If any [f] raises, the first exception (in claim order) is re-raised
    in the caller after all in-flight tasks finish. Tasks must not
    themselves call into the same pool: a nested [map] on the pool whose
    task is executing raises [Invalid_argument] (detected per domain, on
    every pool size — previously this failed silently or starved). Maps
    on a {e different} pool from inside a task are allowed.

    When {!Obs.Metrics} is enabled, every task runs against a fresh
    task-local metric sink and the task sinks are merged into the caller's
    sink {e in input order} after the round, so metric totals are
    byte-identical to the sequential run at any pool size (the enabled
    flag is sampled once per map; do not toggle it mid-map). *)

val map_reduce :
  t ->
  ?chunk:int ->
  'a array ->
  map:('a -> 'b) ->
  fold:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'acc
(** Chunked map + sequential in-order fold: the array is cut into chunks
    of [chunk] elements (default: a size targeting ~4 chunks per domain),
    each chunk is mapped as one task, and [fold] consumes the mapped
    values left-to-right in input order — so the result is identical to
    [Array.fold_left] over [Array.map], whatever the pool size. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool is unusable after. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** Scoped [create]/[shutdown] (shutdown also runs on exceptions). *)

val domains_from_env : unit -> int
(** Parallelism selector: [VMALLOC_DOMAINS] if set to a positive integer
    ([1] = legacy sequential path), else
    [Domain.recommended_domain_count ()]. *)
