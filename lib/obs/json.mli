(** Minimal JSON reader (bench-history observatory).

    The repo's emitters hand-print their JSON; this is the matching
    hand-rolled parser for the one consumer that reads JSON back —
    {!Obs.Report} over [bench/history/]. Full JSON syntax; every number
    becomes a [float]; string escapes are decoded (non-ASCII [\u]
    escapes degrade to ['?'], which the bench emitters never produce). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in document order *)

val parse : string -> (t, string) result
(** Parse one complete JSON document ([Error] carries a one-line message
    with a byte offset). *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects and missing keys. *)

val to_num : t -> float option
(** The number, or [Some 0. / Some 1.] for booleans (bench files encode
    flags like [identical] as booleans); [None] otherwise. *)

val to_str : t -> string option

val to_list : t -> t list
(** Elements of a [List], [[]] for any other constructor. *)

val obj_items : t -> (string * t) list
(** Members of an [Obj], [[]] for any other constructor. *)
