(** Deterministic fixed-interval time series (sim-clock gauges).

    A timeline is a fixed set of named gauge columns sampled on a fixed
    virtual-time grid. The container records whatever its producer hands
    it — the online simulator samples global yield, active services,
    shard imbalance, and repair/bins/pivot rates on the sim clock
    (DESIGN.md §14) — and guarantees that bitwise-equal samples serialize
    to {e byte-identical} JSONL and Prometheus text, whatever the domain
    or shard count that produced them. Nothing here reads a wall clock. *)

type t

val create : interval:float -> cols:string array -> t
(** A timeline with the given sampling interval (virtual time units) and
    column names. Raises [Invalid_argument] on a non-positive interval or
    an empty column set. *)

val append : t -> time:float -> float array -> unit
(** Append one sample row (values in column order; the array is copied).
    Raises [Invalid_argument] on a width mismatch. Rows are expected in
    chronological order; the container does not re-sort. *)

val interval : t -> float

val cols : t -> string array

val length : t -> int
(** Number of sample rows. *)

val rows : t -> (float * float array) list
(** All rows, chronological. *)

val to_jsonl : t -> string
(** One self-describing header object
    [{"timeline": {"interval", "samples", "cols"}}] followed by one JSON
    object per sample ([{"t": ..., "<col>": ...}]), newline-delimited.
    Byte-identical for bitwise-equal timelines. *)

val to_prom : t -> string
(** Prometheus-style text exposition: per column a [# HELP]/[# TYPE gauge]
    header and one [vmalloc_<col> <value> <sim-time-ms>] line per sample.
    Byte-identical for bitwise-equal timelines. *)

val equal : t -> t -> bool
(** Structural equality of interval, columns, and rows (bitwise on
    floats via [=] — equal NaNs compare unequal, which the simulator's
    gauges never produce). *)
