(** Measured per-task cost model (EWMA) for speculative schedulers.

    {!Par.Scheduler} and {!Binary_search.maximize_par} feed the wall cost
    of every pool round here; the adaptive speculation-depth policy reads
    the estimate back to decide how many future bisection levels one round
    should precompute (DESIGN.md §16). The estimate influences the amount
    of speculative work only — never the probe points or branch decisions
    — so consuming a wall-clock quantity cannot break result
    bit-identity. *)

val observe : tasks:int -> elapsed_ns:float -> unit
(** Fold one round of [tasks] tasks that took [elapsed_ns] wall time into
    the EWMA (per-task cost, smoothing factor 0.2). Rounds with no tasks
    or a non-positive elapsed time are ignored. Thread-safe. *)

val estimate_ns : unit -> float option
(** Current per-task cost estimate in nanoseconds, or [None] before the
    first observation (callers should fall back to a cost-oblivious
    depth). *)

val reset : unit -> unit
(** Forget all samples (tests). *)

val now_ns : unit -> float
(** Wall clock in nanoseconds — the time base {!observe} expects. *)
