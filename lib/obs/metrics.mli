(** Deterministic operation metrics for the solver stack.

    A process-wide registry of named counters and (power-of-two bucket)
    histograms, with two invariants:

    - {b Zero overhead when disabled.} Every instrumentation call is a
      single atomic-flag load and branch; no allocation, no lookup, no
      lock. The registry handles themselves are created once at module
      initialization.
    - {b Deterministic when enabled.} Increments land in a per-domain
      {e sink} (never a shared cell), and {!Par.Pool.map} runs each task
      against a fresh task-local sink, merging the task sinks into the
      caller's sink {e in task-input order} after the round. Because the
      instrumented code performs the same operations whatever the domain
      count, the merged totals — and the rendered {!Snapshot} — are
      byte-identical at any [VMALLOC_DOMAINS]. Nothing in this module
      ever records a wall-clock time; timestamps live only in
      {!Obs.Trace} exports.

    The speculative probe search ({!Heuristics.Binary_search.maximize_par})
    is the one instrumented path whose {e work} depends on a pool size: a
    probe pool of size k evaluates off-path candidate yields that the
    sequential search never reaches. Those operations really happen and are
    really counted (plus summarized under [binary_search.speculative_waste]);
    counters are invariant in the {e trial fan-out} domain count, not in the
    probe-pool size. *)

type counter
(** Handle to a registered counter (a monotone int). *)

type histogram
(** Handle to a registered histogram (power-of-two value buckets, plus an
    exact count and sum). *)

val counter : string -> counter
(** [counter name] registers (or finds) the counter called [name].
    Idempotent; safe from any domain. Call at module-initialization time,
    not on hot paths. *)

val histogram : string -> histogram
(** [histogram name] registers (or finds) the histogram called [name]. *)

val incr : counter -> unit
(** Add 1 to the counter in the current sink; no-op when disabled. *)

val add : counter -> int -> unit
(** Add [n] to the counter in the current sink; no-op when disabled. *)

val observe : histogram -> int -> unit
(** Record one value into the histogram; no-op when disabled. *)

val enabled : unit -> bool
(** Whether the sinks are live (default: disabled). *)

val set_enabled : bool -> unit
(** Toggle the global metrics flag. Do not toggle while a {!Par.Pool.map}
    is in flight — the pool samples the flag once per map. *)

val enabled_from_env : unit -> bool
(** [true] iff [VMALLOC_OBS] is set to [1], [true], or [yes] — the
    conventional way to run the test suite or a bench with sinks live. *)

(** {1 Sinks}

    Used by {!Par.Pool} to make parallel counting deterministic; normal
    instrumentation code never touches these. *)

type sink
(** A private accumulation buffer. Each domain owns a default sink;
    {!with_sink} temporarily installs a task-local one. A sink must only
    ever be written from one domain at a time. *)

val fresh_sink : unit -> sink
(** An empty, unregistered sink (for one task's deltas). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] runs [f] with [s] installed as the current domain's
    sink, restoring the previous sink afterwards (also on exceptions). *)

val merge_into_current : sink -> unit
(** Fold a task sink's deltas into the current domain's sink. Callers are
    responsible for merge order (input order for determinism). *)

(** {1 Snapshots} *)

module Snapshot : sig
  type t
  (** An immutable, merged view of every registered domain sink. Only
      metrics with at least one recorded event appear. *)

  val counters : t -> (string * int) list
  (** Counter totals, sorted by name. *)

  val counter_value : t -> string -> int
  (** Total for one counter name; 0 when absent. *)

  val render : t -> string
  (** Human-readable listing, sorted by name — byte-identical for equal
      snapshots (used by the determinism tests). *)

  val to_json : t -> string
  (** The snapshot as a JSON object
      [{"counters": {...}, "histograms": {...}}] with keys sorted by
      name (the [obs] block of [BENCH_par.json]). *)

  val equal : t -> t -> bool
end

val snapshot : unit -> Snapshot.t
(** Merge every domain's sink into one view. Call only while no
    {!Par.Pool.map} is in flight. *)

val reset : unit -> unit
(** Zero every domain sink (registrations are kept). *)
