(* Bench-history regression observatory.

   bench/main.ml archives every run as bench/history/<git-rev>-<n>.json.
   This module reads those archives back, aligns the per-block metrics
   across revisions, and renders per-metric sparkline tables — plus a
   regression gate over the *deterministic counter* metrics (simplex
   pivots, bins examined per event, oracle calls, ...). Wall-clock
   seconds are displayed but never gated: they depend on the host, while
   the counters are pure functions of the code, so a counter regression
   is a real algorithmic regression whatever machine CI runs on.

   Determinism: revisions are ordered by (earliest mtime of the rev's
   files, rev name) and each rev's value comes from its highest-numbered
   file, so rendering the same directory twice is byte-identical. *)

type t = {
  revs : string array; (* chronological, oldest first *)
  metrics : (string * float option array) list; (* sorted by key *)
}

type failure = {
  metric : string;
  base : float;
  latest : float;
  pct : float; (* regression, percent; infinity when base = 0 *)
}

(* ---- Metric extraction ---------------------------------------------- *)

(* Deterministic lower-is-better counters: the gate's jurisdiction. *)
let gated_suffixes =
  [
    ".cold_pivots";
    ".warm_pivots";
    ".bins_per_event";
    ".parallel_rounds";
    ".packing.bins_examined";
    ".vp_solver.oracle_calls";
    ".vp_solver.strategy_attempts";
    ".binary_search.rounds";
    ".rounds_interleaved";
  ]

let gated key =
  List.exists (fun s -> String.ends_with ~suffix:s key) gated_suffixes

(* Per-algorithm Obs counters worth tracking across revs (the full
   snapshot would swamp the table with noise like per-strategy wins). *)
let obs_counters =
  [
    "packing.bins_examined";
    "vp_solver.oracle_calls";
    "vp_solver.strategy_attempts";
    "binary_search.rounds";
  ]

let collect (j : Json.t) =
  let out = ref [] in
  let add key v = out := (key, v) :: !out in
  let num field e = Option.bind (Json.member field e) Json.to_num in
  let str field e = Option.bind (Json.member field e) Json.to_str in
  let add_fields prefix fields e =
    List.iter
      (fun f ->
        match num f e with
        | Some v -> add (prefix ^ "." ^ f) v
        | None -> ())
      fields
  in
  let block name = Option.value ~default:Json.Null (Json.member name j) in
  (* lp: warm-start probe instances and solver comparisons *)
  let lp = block "lp" in
  List.iter
    (fun e ->
      match str "instance" e with
      | None -> ()
      | Some inst ->
          add_fields
            (Printf.sprintf "lp.probe[%s]" inst)
            [ "cold_pivots"; "warm_pivots"; "warm_starts"; "pivot_ratio" ]
            e)
    (Json.to_list (Option.value ~default:Json.Null (Json.member "probe" lp)));
  List.iter
    (fun e ->
      match str "label" e with
      | None -> ()
      | Some label ->
          add_fields (Printf.sprintf "lp.solver[%s]" label) [ "speedup" ] e)
    (Json.to_list (Option.value ~default:Json.Null (Json.member "solver" lp)));
  (* kernel: probe-shared packing kernel speedups *)
  List.iter
    (fun e ->
      match (str "algorithm" e, num "domains" e) with
      | Some algo, Some d ->
          add_fields
            (Printf.sprintf "kernel.%s.d%d" algo (int_of_float d))
            [ "speedup" ] e
      | _ -> ())
    (Json.to_list (block "kernel"));
  (* probe_par: speculative probe parallelism *)
  List.iter
    (fun e ->
      match (str "algorithm" e, num "domains" e) with
      | Some algo, Some d ->
          add_fields
            (Printf.sprintf "probe_par.%s.d%d" algo (int_of_float d))
            [ "parallel_rounds"; "sequential_rounds"; "round_ratio" ]
            e
      | _ -> ())
    (Json.to_list (block "probe_par"));
  (* online: per-policy incremental placement efficiency *)
  List.iter
    (fun e ->
      match (str "policy" e, num "hosts" e) with
      | Some policy, Some h ->
          add_fields
            (Printf.sprintf "online.%s.h%d" policy (int_of_float h))
            [
              "bins_per_event";
              "repairs";
              "fallbacks";
              "admitted";
              "mean_min_yield";
            ]
            e
      | _ -> ())
    (Json.to_list (block "online"));
  (* batch: multi-tenant scheduler round counts. [rounds_interleaved] is
     deterministic only when tenants >= domains — occupancy then pins the
     adaptive speculation depth to 1, so the round count is a pure
     function of the request list. With spare pool capacity the depth
     choice may legitimately move with the measured probe cost, so those
     combos contribute only the ungated ratio metrics. *)
  List.iter
    (fun e ->
      match (num "tenants" e, num "domains" e) with
      | Some t, Some d ->
          let prefix =
            Printf.sprintf "batch.t%d.d%d" (int_of_float t) (int_of_float d)
          in
          add_fields prefix [ "round_speedup"; "throughput_speedup" ] e;
          if t >= d then
            add_fields prefix
              [ "serial_rounds"; "rounds_interleaved"; "speculative_waste" ]
              e
      | _ -> ())
    (Json.to_list (block "batch"));
  (* obs: per-algorithm counter snapshots and the metrics overhead ratio *)
  let obs = block "obs" in
  List.iter
    (fun e ->
      match str "algorithm" e with
      | None -> ()
      | Some algo ->
          let counters =
            Option.value ~default:Json.Null (Json.member "metrics" e)
            |> Json.member "counters"
            |> Option.value ~default:Json.Null
          in
          List.iter
            (fun c ->
              match Option.bind (Json.member c counters) Json.to_num with
              | Some v -> add (Printf.sprintf "obs.%s.%s" algo c) v
              | None -> ())
            obs_counters)
    (Json.to_list
       (Option.value ~default:Json.Null (Json.member "per_algorithm" obs)));
  (match Json.member "overhead" obs with
  | Some ov -> add_fields "obs.overhead" [ "enabled_over_disabled" ] ov
  | None -> ());
  (* sim *)
  let sim = block "sim" in
  (match Option.bind (Json.member "reeval_skips" sim) Json.to_num with
  | Some v -> add "sim.reeval_skips" v
  | None -> ());
  List.rev !out

(* ---- Loading -------------------------------------------------------- *)

(* bench/history/<rev>-<n>.json; a basename without the -<n> suffix is
   treated as its own rev at n = 0, so hand-dropped files still load. *)
let rev_of_basename base =
  match String.rindex_opt base '-' with
  | Some i -> (
      match int_of_string_opt (String.sub base (i + 1) (String.length base - i - 1)) with
      | Some n -> (String.sub base 0 i, n)
      | None -> (base, 0))
  | None -> (base, 0)

let load ~dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | names -> (
      let files =
        Array.to_list names
        |> List.filter (fun f -> Filename.check_suffix f ".json")
      in
      if files = [] then
        Error (Printf.sprintf "%s: no bench history (*.json) files" dir)
      else
        let by_rev = Hashtbl.create 8 in
        List.iter
          (fun f ->
            let rev, n = rev_of_basename (Filename.chop_suffix f ".json") in
            let path = Filename.concat dir f in
            let mtime = (Unix.stat path).Unix.st_mtime in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt by_rev rev)
            in
            Hashtbl.replace by_rev rev ((n, mtime, path) :: prev))
          files;
        let revs =
          Hashtbl.fold
            (fun rev entries acc ->
              let first_seen =
                List.fold_left
                  (fun acc (_, m, _) -> Float.min acc m)
                  infinity entries
              in
              let _, _, best =
                List.fold_left
                  (fun ((bn, _, _) as b) ((n, _, _) as e) ->
                    if n > bn then e else b)
                  (List.hd entries) (List.tl entries)
              in
              (first_seen, rev, best) :: acc)
            by_rev []
          |> List.sort compare
        in
        let parsed =
          List.map
            (fun (_, rev, path) ->
              let ic = open_in_bin path in
              let len = in_channel_length ic in
              let body = really_input_string ic len in
              close_in ic;
              match Json.parse body with
              | Ok j -> Ok (rev, collect j)
              | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
            revs
        in
        match
          List.find_map (function Error e -> Some e | Ok _ -> None) parsed
        with
        | Some e -> Error e
        | None ->
            let parsed =
              List.filter_map
                (function Ok x -> Some x | Error _ -> None)
                parsed
            in
            let revs = Array.of_list (List.map fst parsed) in
            let keys =
              List.concat_map (fun (_, ms) -> List.map fst ms) parsed
              |> List.sort_uniq compare
            in
            let metrics =
              List.map
                (fun key ->
                  ( key,
                    Array.of_list
                      (List.map
                         (fun (_, ms) -> List.assoc_opt key ms)
                         parsed) ))
                keys
            in
            Ok { revs; metrics })

let revs t = Array.copy t.revs

(* ---- Rendering ------------------------------------------------------ *)

let spark_glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline values =
  let present = Array.to_list values |> List.filter_map Fun.id in
  let buf = Buffer.create 16 in
  (match present with
  | [] -> Array.iter (fun _ -> Buffer.add_string buf "·") values
  | _ ->
      let lo = List.fold_left Float.min infinity present in
      let hi = List.fold_left Float.max neg_infinity present in
      Array.iter
        (function
          | None -> Buffer.add_string buf "·"
          | Some v ->
              let i =
                if hi <= lo then 3
                else
                  let f = (v -. lo) /. (hi -. lo) in
                  Int.min 7 (int_of_float (f *. 8.))
              in
              Buffer.add_string buf spark_glyphs.(i))
        values);
  Buffer.contents buf

let fmt_value v = Printf.sprintf "%.6g" v

let find_rev t rev =
  let found = ref (-1) in
  Array.iteri (fun i r -> if r = rev then found := i) t.revs;
  if !found < 0 then
    Error
      (Printf.sprintf "baseline rev %s not in history (have: %s)" rev
         (String.concat " " (Array.to_list t.revs)))
  else Ok !found

let delta_pct ~base ~latest =
  if base = 0. then if latest = 0. then Some 0. else None
  else Some ((latest -. base) /. Float.abs base *. 100.)

let render ?baseline t =
  let base_rev =
    match baseline with Some r -> r | None -> t.revs.(0)
  in
  match find_rev t base_rev with
  | Error e -> Error e
  | Ok bi ->
      let li = Array.length t.revs - 1 in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (Printf.sprintf
           "bench history observatory — %d revs, baseline %s, latest %s\n"
           (Array.length t.revs) base_rev t.revs.(li));
      Buffer.add_string buf
        (Printf.sprintf "revs (oldest first): %s\n\n"
           (String.concat " " (Array.to_list t.revs)));
      let key_w =
        List.fold_left
          (fun acc (k, _) ->
            Int.max acc (String.length k + if gated k then 8 else 0))
          6 t.metrics
      in
      let trend_w = Int.max 5 (Array.length t.revs) in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %-*s  %10s  %10s  %9s\n" key_w "metric" trend_w
           "trend" "baseline" "latest" "delta");
      List.iter
        (fun (key, values) ->
          let label = if gated key then key ^ "  [gated]" else key in
          let cell = function Some v -> fmt_value v | None -> "-" in
          let delta =
            match (values.(bi), values.(li)) with
            | Some b, Some l -> (
                match delta_pct ~base:b ~latest:l with
                | Some p -> Printf.sprintf "%+.1f%%" p
                | None -> "new")
            | _ -> "n/a"
          in
          (* The sparkline's glyphs are multi-byte; pad by sample count,
             not byte length. *)
          let trend = sparkline values in
          let trend_pad =
            String.make (Int.max 0 (trend_w - Array.length values)) ' '
          in
          Buffer.add_string buf
            (Printf.sprintf "%-*s  %s%s  %10s  %10s  %9s\n" key_w label trend
               trend_pad
               (cell values.(bi))
               (cell values.(li))
               delta))
        t.metrics;
      Ok (Buffer.contents buf)

(* ---- Regression gate ------------------------------------------------ *)

let gate ~baseline ~max_regression_pct t =
  match find_rev t baseline with
  | Error e -> Error e
  | Ok bi ->
      let li = Array.length t.revs - 1 in
      let failures =
        List.filter_map
          (fun (key, values) ->
            if not (gated key) then None
            else
              match (values.(bi), values.(li)) with
              | Some base, Some latest ->
                  let bad =
                    if base = 0. then latest > 0.
                    else latest > base *. (1. +. (max_regression_pct /. 100.))
                  in
                  if bad then
                    Some
                      {
                        metric = key;
                        base;
                        latest;
                        pct =
                          (if base = 0. then infinity
                           else (latest -. base) /. base *. 100.);
                      }
                  else None
              | _ -> None)
          t.metrics
      in
      Ok failures

let render_failures fs =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "REGRESSION %s: %s -> %s (%s)\n" f.metric
           (fmt_value f.base) (fmt_value f.latest)
           (if f.pct = infinity then "was 0"
            else Printf.sprintf "%+.1f%%" f.pct)))
    fs;
  Buffer.contents buf
