type event = {
  name : string;
  ph : char; (* 'X' complete, 'i' instant *)
  ts : float; (* microseconds *)
  dur : float; (* microseconds; complete events only *)
  tid : int;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let start () = Atomic.set enabled_flag true
let stop () = Atomic.set enabled_flag false

let buf_mutex = Mutex.create ()
let events : event list ref = ref []

let reset () =
  Mutex.lock buf_mutex;
  events := [];
  Mutex.unlock buf_mutex

let record ev =
  Mutex.lock buf_mutex;
  events := ev :: !events;
  Mutex.unlock buf_mutex

let now_us () = Unix.gettimeofday () *. 1e6
let tid () = (Domain.self () :> int)

let span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        record
          { name; ph = 'X'; ts = t0; dur = now_us () -. t0; tid = tid (); args })
      f
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then
    record { name; ph = 'i'; ts = now_us (); dur = 0.; tid = tid (); args }

let event_count () =
  Mutex.lock buf_mutex;
  let n = List.length !events in
  Mutex.unlock buf_mutex;
  n

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\": \"%s\", \"cat\": \"vmalloc\", \"ph\": \"%c\", \"ts\": \
        %.3f, "
       (json_escape ev.name) ev.ph ev.ts);
  if ev.ph = 'X' then
    Buffer.add_string buf (Printf.sprintf "\"dur\": %.3f, " ev.dur);
  if ev.ph = 'i' then Buffer.add_string buf "\"s\": \"t\", ";
  Buffer.add_string buf
    (Printf.sprintf "\"pid\": 0, \"tid\": %d, \"args\": {" ev.tid);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    ev.args;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_json () =
  Mutex.lock buf_mutex;
  let evs = List.rev !events in
  Mutex.unlock buf_mutex;
  let evs = List.stable_sort (fun a b -> Float.compare a.ts b.ts) evs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf (event_to_json ev))
    evs;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  output_string oc (to_json ());
  close_out oc
