type event = {
  name : string;
  ph : char; (* 'X' complete, 'i' instant *)
  ts : float; (* microseconds *)
  dur : float; (* microseconds; complete events only *)
  tid : int;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let start () = Atomic.set enabled_flag true
let stop () = Atomic.set enabled_flag false

let buf_mutex = Mutex.create ()
let events : event list ref = ref []

let reset () =
  Mutex.lock buf_mutex;
  events := [];
  Mutex.unlock buf_mutex

let record ev =
  Mutex.lock buf_mutex;
  events := ev :: !events;
  Mutex.unlock buf_mutex

let now_us () = Unix.gettimeofday () *. 1e6
let tid () = (Domain.self () :> int)

let span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        record
          { name; ph = 'X'; ts = t0; dur = now_us () -. t0; tid = tid (); args })
      f
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then
    record { name; ph = 'i'; ts = now_us (); dur = 0.; tid = tid (); args }

let event_count () =
  Mutex.lock buf_mutex;
  let n = List.length !events in
  Mutex.unlock buf_mutex;
  n

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Timestamps come from a monotonic clock and durations from subtraction,
   but a corrupted or hand-built event must not poison the whole trace
   file: JSON has no NaN/Inf token, so non-finite values emit [null]. *)
let json_us v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

let event_to_json ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\": \"%s\", \"cat\": \"vmalloc\", \"ph\": \"%c\", \"ts\": \
        %s, "
       (json_escape ev.name) ev.ph (json_us ev.ts));
  if ev.ph = 'X' then
    Buffer.add_string buf (Printf.sprintf "\"dur\": %s, " (json_us ev.dur));
  if ev.ph = 'i' then Buffer.add_string buf "\"s\": \"t\", ";
  Buffer.add_string buf
    (Printf.sprintf "\"pid\": 0, \"tid\": %d, \"args\": {" ev.tid);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    ev.args;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_json () =
  Mutex.lock buf_mutex;
  let evs = List.rev !events in
  Mutex.unlock buf_mutex;
  let evs = List.stable_sort (fun a b -> Float.compare a.ts b.ts) evs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf (event_to_json ev))
    evs;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  output_string oc (to_json ());
  close_out oc

(* ---- Span-tree folding ---------------------------------------------- *)

type agg = { label : string; calls : int; total_us : float; self_us : float }
type weight = Self_us | Calls

(* Rebuild the span forest from the flat buffer. Spans nest by interval
   containment within a tid: sorting by (tid, ts asc, dur desc, seq desc)
   puts every ancestor before its descendants — a parent starts no later
   and ends no earlier than its children, and at bitwise-identical
   intervals the parent holds the higher record sequence, because spans
   are recorded on exit (children before parents). A stack sweep that
   pops every span ending at or before the current start then recovers
   each span's ancestor path exactly. Returns
   [(seq, parent_seq, path_root_first, event)] per span; [parent_seq] is
   [-1] at a root. *)
let span_forest () =
  Mutex.lock buf_mutex;
  let evs = !events in
  Mutex.unlock buf_mutex;
  (* The buffer is most-recent-first: arr.(i) has record seq [n - 1 - i]. *)
  let arr = Array.of_list evs in
  let n = Array.length arr in
  let spans = ref [] in
  Array.iteri
    (fun i ev -> if ev.ph = 'X' then spans := (n - 1 - i, ev) :: !spans)
    arr;
  let sorted =
    List.sort
      (fun (sa, (a : event)) (sb, (b : event)) ->
        match compare a.tid b.tid with
        | 0 -> (
            match Float.compare a.ts b.ts with
            | 0 -> (
                match Float.compare b.dur a.dur with
                | 0 -> compare sb sa
                | c -> c)
            | c -> c)
        | c -> c)
      !spans
  in
  let out = ref [] in
  let stack = ref [] in
  let cur_tid = ref min_int in
  let ends (e : event) = e.ts +. e.dur in
  List.iter
    (fun (seq, ev) ->
      if ev.tid <> !cur_tid then begin
        cur_tid := ev.tid;
        stack := []
      end;
      let rec pop () =
        match !stack with
        | (_, top) :: rest when ends top <= ev.ts ->
            stack := rest;
            pop ()
        | _ -> ()
      in
      pop ();
      let parent = match !stack with [] -> -1 | (pseq, _) :: _ -> pseq in
      let path =
        List.rev_map (fun (_, (e : event)) -> e.name) !stack @ [ ev.name ]
      in
      out := (seq, parent, path, ev) :: !out;
      stack := (seq, ev) :: !stack)
    sorted;
  List.rev !out

(* Self time of a span instance: its duration minus its direct children's
   durations, clamped at zero (clock granularity can make children appear
   to cover slightly more than the parent). *)
let self_of forest =
  let child = Hashtbl.create 64 in
  List.iter
    (fun (_, parent, _, (ev : event)) ->
      if parent >= 0 then
        Hashtbl.replace child parent
          (Option.value ~default:0. (Hashtbl.find_opt child parent) +. ev.dur))
    forest;
  fun seq (ev : event) ->
    Float.max 0.
      (ev.dur -. Option.value ~default:0. (Hashtbl.find_opt child seq))

let aggregate () =
  let forest = span_forest () in
  let self = self_of forest in
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (seq, _, _, (ev : event)) ->
      let calls, total, selfs =
        Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt by_label ev.name)
      in
      Hashtbl.replace by_label ev.name
        (calls + 1, total +. ev.dur, selfs +. self seq ev))
    forest;
  Hashtbl.fold
    (fun label (calls, total_us, self_us) acc ->
      { label; calls; total_us; self_us } :: acc)
    by_label []
  |> List.sort (fun a b -> compare a.label b.label)

(* Frame names in folded output must not contain the separators the
   format reserves. *)
let folded_frame name =
  String.map
    (fun c -> match c with ';' | ' ' | '\n' -> '_' | _ -> c)
    name

let to_folded ?(weight = Self_us) () =
  let forest = span_forest () in
  let self = self_of forest in
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (seq, _, path, (ev : event)) ->
      let key = String.concat ";" (List.map folded_frame path) in
      let w =
        match weight with Calls -> 1. | Self_us -> self seq ev
      in
      Hashtbl.replace acc key
        (Option.value ~default:0. (Hashtbl.find_opt acc key) +. w))
    forest;
  let lines = Hashtbl.fold (fun k v l -> (k, v) :: l) acc [] in
  let lines = List.sort (fun (a, _) (b, _) -> compare a b) lines in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s %.0f\n" k v))
    lines;
  Buffer.contents buf

let write_folded ?weight path =
  let oc = open_out path in
  output_string oc (to_folded ?weight ());
  close_out oc
