(** Bench-history regression observatory.

    [bench/main.ml] archives every run as
    [bench/history/<git-rev>-<n>.json]. This module reads those archives
    back, aligns metrics across revisions, renders per-metric sparkline
    tables with deltas against a baseline rev, and gates the
    {e deterministic counter} metrics (simplex pivots, bins per event,
    oracle calls, search rounds — flagged [\[gated\]] in the table)
    against a regression threshold. Wall-clock seconds and speedups are
    shown but never gated: they vary with the host, while the counters
    are pure functions of the code (DESIGN.md §14).

    Loading is deterministic: revisions are ordered by (earliest mtime
    of the rev's files, rev name), each rev's values come from its
    highest-numbered file, and metrics are sorted by key — so rendering
    the same directory twice is byte-identical. *)

type t

type failure = {
  metric : string;
  base : float;  (** baseline value *)
  latest : float;  (** latest rev's value *)
  pct : float;  (** regression percent; [infinity] when [base = 0] *)
}

val load : dir:string -> (t, string) result
(** Read every [*.json] under [dir]. [Error] on an unreadable directory,
    no history files, or an unparseable file. *)

val revs : t -> string array
(** Revisions, oldest first. *)

val gated : string -> bool
(** Whether a metric key is under the gate's jurisdiction (a
    deterministic lower-is-better counter). *)

val render : ?baseline:string -> t -> (string, string) result
(** The sparkline table. [baseline] defaults to the oldest rev;
    [Error] when it is not in the history. *)

val gate :
  baseline:string -> max_regression_pct:float -> t -> (failure list, string) result
(** Gated metrics whose latest value exceeds
    [base * (1 + max_regression_pct / 100)] (any growth from a zero
    base fails). [Ok []] means the gate passes. [Error] when [baseline]
    is not in the history. *)

val render_failures : failure list -> string
(** One [REGRESSION metric: base -> latest (+pct%)] line each. *)
