(* Minimal recursive-descent JSON reader for the bench-history observatory.
   The repo deliberately has no JSON dependency — emitters hand-print their
   output — so the one consumer (Report) gets this small parser: full JSON
   syntax, floats for every number, decoded string escapes (non-ASCII
   \u escapes become '?'; the bench emitters never produce them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char buf '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char buf '\012';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      match peek () with Some c when number_char c -> true | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let items = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (key, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !items)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj items -> List.assoc_opt key items
  | _ -> None

let to_num = function
  | Num v -> Some v
  | Bool b -> Some (if b then 1. else 0.)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> l | _ -> []
let obj_items = function Obj items -> items | _ -> []
