(* Deterministic fixed-interval time series. The container is dumb on
   purpose: producers (the simulator) decide what to sample and when; this
   module only guarantees that two timelines built from bitwise-equal
   samples serialize to byte-identical JSONL / Prometheus text. Every float
   is printed with one fixed format, so byte-identity of the output reduces
   to bitwise identity of the recorded values. *)

type t = {
  interval : float;
  cols : string array;
  mutable rows_rev : (float * float array) list;
  mutable n_rows : int;
}

let create ~interval ~cols =
  if interval <= 0. then invalid_arg "Timeline.create: interval";
  if Array.length cols = 0 then invalid_arg "Timeline.create: no columns";
  { interval; cols = Array.copy cols; rows_rev = []; n_rows = 0 }

let interval t = t.interval
let cols t = Array.copy t.cols
let length t = t.n_rows

let append t ~time values =
  if Array.length values <> Array.length t.cols then
    invalid_arg "Timeline.append: row width mismatch";
  t.rows_rev <- (time, Array.copy values) :: t.rows_rev;
  t.n_rows <- t.n_rows + 1

let rows t = List.rev t.rows_rev

(* One fixed float format everywhere. %.12g round-trips every value the
   gauges produce (small integers, rates, yields in [0,1]) and never
   prints platform-dependent digits for bitwise-equal inputs. *)
let fmt_float v = Printf.sprintf "%.12g" v

(* JSON has no token for NaN or the infinities — "%.12g nan" would produce
   a document every strict parser rejects. Non-finite samples (a gauge
   that divides by an empty interval, say) serialize as [null]; Obs.Json
   reads that back as [Null], whose [to_num] is [None]. The Prometheus
   text format has its own NaN/Inf spelling, so [to_prom] keeps the raw
   value. *)
let json_float v = if Float.is_finite v then fmt_float v else "null"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  (* Self-describing header line, then one object per sample. *)
  Buffer.add_string buf
    (Printf.sprintf
       "{\"timeline\": {\"interval\": %s, \"samples\": %d, \"cols\": [%s]}}\n"
       (json_float t.interval) t.n_rows
       (String.concat ", "
          (Array.to_list
             (Array.map
                (fun c -> Printf.sprintf "\"%s\"" (json_escape c))
                t.cols))));
  List.iter
    (fun (time, values) ->
      Buffer.add_string buf (Printf.sprintf "{\"t\": %s" (json_float time));
      Array.iteri
        (fun i v ->
          Buffer.add_string buf
            (Printf.sprintf ", \"%s\": %s" (json_escape t.cols.(i))
               (json_float v)))
        values;
      Buffer.add_string buf "}\n")
    (rows t);
  Buffer.contents buf

(* Prometheus text exposition: one gauge family per column, one line per
   sample with the virtual time as the (millisecond) timestamp. Names are
   sanitized to the Prometheus charset and prefixed. *)
let prom_name col =
  let buf = Buffer.create (String.length col + 8) in
  Buffer.add_string buf "vmalloc_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    col;
  Buffer.contents buf

let to_prom t =
  let buf = Buffer.create 4096 in
  let all = rows t in
  Array.iteri
    (fun i col ->
      let name = prom_name col in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s vmalloc sim-clock gauge %s\n" name
           (json_escape col));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
      List.iter
        (fun (time, values) ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %.0f\n" name (fmt_float values.(i))
               (time *. 1000.)))
        all)
    t.cols;
  Buffer.contents buf

let equal a b =
  a.interval = b.interval && a.cols = b.cols && rows a = rows b
