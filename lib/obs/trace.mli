(** Span tracer with Chrome trace-event export.

    Records named, wall-clock-stamped spans (and instant events) into a
    process-global buffer and exports them in the Chrome trace-event JSON
    format, so a solver run can be opened in [chrome://tracing] or
    Perfetto. Each event carries the recording domain's id as its [tid],
    which makes speculative probe fan-out visible as parallel tracks.

    Tracing is the {e intentionally nondeterministic} half of [Obs]:
    timestamps and durations appear only in the exported file, never on
    stdout — the deterministic counterpart is {!Obs.Metrics}. When
    disabled (the default), {!span} costs one atomic load and branch and
    calls its thunk directly. *)

val enabled : unit -> bool

val start : unit -> unit
(** Begin capturing (does not clear previously captured events). *)

val stop : unit -> unit

val reset : unit -> unit
(** Drop all captured events. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a complete ("X") event with [f]'s
    wall-clock duration when tracing is enabled (also on exceptions).
    [args] become the event's [args] object. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record an instant ("i") event. *)

val event_count : unit -> int
(** Number of captured events. *)

val to_json : unit -> string
(** All captured events, sorted by timestamp, as
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write : string -> unit
(** [write path] writes {!to_json} to [path]. *)

(** {2 Span folding}

    The flat buffer is folded back into a span forest by interval
    nesting within each [tid] (record order breaks exact-tie ambiguity:
    spans are recorded on exit, so at bitwise-identical intervals the
    parent is the later record). From the forest two views are derived:
    per-label aggregates with {e self time} — a span's duration minus
    its direct children's — and collapsed stacks in the format consumed
    by flamegraph.pl and speedscope. *)

type agg = {
  label : string;  (** span name *)
  calls : int;  (** number of spans with this name *)
  total_us : float;  (** summed (inclusive) duration *)
  self_us : float;
      (** summed duration minus time spent in child spans, clamped at 0
          per span instance *)
}

val aggregate : unit -> agg list
(** Per-label fold of every captured complete span, sorted by label. *)

type weight =
  | Self_us  (** line weight = summed self time, microseconds *)
  | Calls  (** line weight = number of span instances on that stack *)

val to_folded : ?weight:weight -> unit -> string
(** Collapsed-stack export: one [root;child;leaf weight] line per
    distinct stack path, sorted by path ([;] / space / newline in span
    names become [_]). [weight] defaults to [Self_us]; [Calls] weights
    are a pure function of the span-nesting structure, so they are
    byte-identical across runs whose span trees match even though the
    recorded durations differ. *)

val write_folded : ?weight:weight -> string -> unit
(** [write_folded path] writes {!to_folded} to [path]. *)
