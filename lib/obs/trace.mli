(** Span tracer with Chrome trace-event export.

    Records named, wall-clock-stamped spans (and instant events) into a
    process-global buffer and exports them in the Chrome trace-event JSON
    format, so a solver run can be opened in [chrome://tracing] or
    Perfetto. Each event carries the recording domain's id as its [tid],
    which makes speculative probe fan-out visible as parallel tracks.

    Tracing is the {e intentionally nondeterministic} half of [Obs]:
    timestamps and durations appear only in the exported file, never on
    stdout — the deterministic counterpart is {!Obs.Metrics}. When
    disabled (the default), {!span} costs one atomic load and branch and
    calls its thunk directly. *)

val enabled : unit -> bool

val start : unit -> unit
(** Begin capturing (does not clear previously captured events). *)

val stop : unit -> unit

val reset : unit -> unit
(** Drop all captured events. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a complete ("X") event with [f]'s
    wall-clock duration when tracing is enabled (also on exceptions).
    [args] become the event's [args] object. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record an instant ("i") event. *)

val event_count : unit -> int
(** Number of captured events. *)

val to_json : unit -> string
(** All captured events, sorted by timestamp, as
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write : string -> unit
(** [write path] writes {!to_json} to [path]. *)
