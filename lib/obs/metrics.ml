(* The registry maps metric names to dense ids once, at handle-creation
   time; sinks are then plain int arrays indexed by id, so the enabled-path
   cost of an increment is one atomic load, one bounds check, and one array
   write — and the disabled path is the atomic load and branch alone. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let enabled_from_env () =
  match Sys.getenv_opt "VMALLOC_OBS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* --- registry ------------------------------------------------------- *)

type counter = int
type histogram = int

let reg_mutex = Mutex.create ()
let counter_names : string array ref = ref [||]
let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let hist_names : string array ref = ref [||]
let hist_ids : (string, int) Hashtbl.t = Hashtbl.create 16

let register names ids name =
  Mutex.lock reg_mutex;
  let id =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
        let id = Array.length !names in
        names := Array.append !names [| name |];
        Hashtbl.add ids name id;
        id
  in
  Mutex.unlock reg_mutex;
  id

let counter name = register counter_names counter_ids name
let histogram name = register hist_names hist_ids name

(* --- sinks ---------------------------------------------------------- *)

let n_buckets = 64

type hist_data = { buckets : int array; mutable count : int; mutable sum : int }

type sink = {
  mutable counts : int array;
  mutable hists : hist_data option array;
}

let fresh_sink () = { counts = [||]; hists = [||] }

(* Every domain's default sink is registered here so that [snapshot] and
   [reset] can reach counts accumulated on worker domains. Counter merging
   is a commutative sum, so the (nondeterministic) registration order of
   this list never shows in a snapshot. *)
let sinks_mutex = Mutex.create ()
let domain_sinks : sink list ref = ref []

let default_sink_key =
  Domain.DLS.new_key (fun () ->
      let s = fresh_sink () in
      Mutex.lock sinks_mutex;
      domain_sinks := s :: !domain_sinks;
      Mutex.unlock sinks_mutex;
      s)

(* [Some s] while a task sink from [with_sink] is installed. *)
let current_key : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get current_key with
  | Some s -> s
  | None -> Domain.DLS.get default_sink_key

let with_sink s f =
  let saved = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f

let grow a len =
  let b = Array.make len 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let add c n =
  if Atomic.get enabled_flag then begin
    let s = current () in
    if Array.length s.counts <= c then s.counts <- grow s.counts (c + 8);
    s.counts.(c) <- s.counts.(c) + n
  end

let incr c = add c 1

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min !b (n_buckets - 1)
  end

let hist_slot s h =
  if Array.length s.hists <= h then begin
    let b = Array.make (h + 4) None in
    Array.blit s.hists 0 b 0 (Array.length s.hists);
    s.hists <- b
  end;
  match s.hists.(h) with
  | Some d -> d
  | None ->
      let d = { buckets = Array.make n_buckets 0; count = 0; sum = 0 } in
      s.hists.(h) <- Some d;
      d

let observe h v =
  if Atomic.get enabled_flag then begin
    let d = hist_slot (current ()) h in
    let b = bucket_of v in
    d.buckets.(b) <- d.buckets.(b) + 1;
    d.count <- d.count + 1;
    d.sum <- d.sum + v
  end

let merge_into ~dst ~src =
  Array.iteri
    (fun id n ->
      if n <> 0 then begin
        if Array.length dst.counts <= id then dst.counts <- grow dst.counts (id + 8);
        dst.counts.(id) <- dst.counts.(id) + n
      end)
    src.counts;
  Array.iteri
    (fun id d ->
      match d with
      | None -> ()
      | Some d when d.count = 0 -> ()
      | Some d ->
          let t = hist_slot dst id in
          Array.iteri (fun b n -> t.buckets.(b) <- t.buckets.(b) + n) d.buckets;
          t.count <- t.count + d.count;
          t.sum <- t.sum + d.sum)
    src.hists

let merge_into_current src = merge_into ~dst:(current ()) ~src

(* --- snapshots ------------------------------------------------------ *)

module Snapshot = struct
  type hist_view = { h_count : int; h_sum : int; h_buckets : (int * int) list }
  (* buckets as (index, nonzero count) *)

  type t = {
    s_counters : (string * int) list; (* sorted by name, nonzero only *)
    s_hists : (string * hist_view) list; (* sorted by name, nonempty only *)
  }

  let counters t = t.s_counters

  let counter_value t name =
    match List.assoc_opt name t.s_counters with Some v -> v | None -> 0

  (* Bucket i > 0 covers values [2^(i-1), 2^i - 1]; bucket 0 covers <= 0. *)
  let bucket_label i =
    if i = 0 then "0"
    else
      let lo = 1 lsl (i - 1) and hi = (1 lsl i) - 1 in
      if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi

  let render t =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
      t.s_counters;
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%s count=%d sum=%d [%s]\n" name h.h_count h.h_sum
             (String.concat " "
                (List.map
                   (fun (i, n) -> Printf.sprintf "%s:%d" (bucket_label i) n)
                   h.h_buckets))))
      t.s_hists;
    Buffer.contents buf

  let json_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"counters\": {";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape name) v))
      t.s_counters;
    Buffer.add_string buf "}, \"histograms\": {";
    List.iteri
      (fun i (name, h) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": {\"count\": %d, \"sum\": %d, \"buckets\": {"
             (json_escape name) h.h_count h.h_sum);
        List.iteri
          (fun j (b, n) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\": %d" (bucket_label b) n))
          h.h_buckets;
        Buffer.add_string buf "}}")
      t.s_hists;
    Buffer.add_string buf "}}";
    Buffer.contents buf

  let equal a b = a = b
end

let snapshot () =
  let merged = fresh_sink () in
  Mutex.lock sinks_mutex;
  let sinks = !domain_sinks in
  Mutex.unlock sinks_mutex;
  (* The calling domain may be inside a [with_sink] scope (not the usual
     case); its current sink is merged only if it is a registered default
     sink, which [current] guarantees outside such scopes. *)
  List.iter (fun src -> merge_into ~dst:merged ~src) sinks;
  Mutex.lock reg_mutex;
  let c_names = Array.copy !counter_names in
  let h_names = Array.copy !hist_names in
  Mutex.unlock reg_mutex;
  let counters = ref [] in
  Array.iteri
    (fun id v -> if v <> 0 && id < Array.length c_names then
        counters := (c_names.(id), v) :: !counters)
    merged.counts;
  let hists = ref [] in
  Array.iteri
    (fun id d ->
      match d with
      | Some d when d.count > 0 && id < Array.length h_names ->
          let buckets = ref [] in
          for b = n_buckets - 1 downto 0 do
            if d.buckets.(b) <> 0 then buckets := (b, d.buckets.(b)) :: !buckets
          done;
          hists :=
            ( h_names.(id),
              {
                Snapshot.h_count = d.count;
                h_sum = d.sum;
                h_buckets = !buckets;
              } )
            :: !hists
      | _ -> ())
    merged.hists;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    Snapshot.s_counters = List.sort by_name !counters;
    s_hists = List.sort by_name !hists;
  }

let reset () =
  Mutex.lock sinks_mutex;
  List.iter
    (fun s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      Array.iteri (fun i _ -> s.hists.(i) <- None) s.hists)
    !domain_sinks;
  Mutex.unlock sinks_mutex
