(* Measured cost model for speculative schedulers (DESIGN.md §16).

   One global EWMA of the wall cost per scheduled task, fed by every pool
   round the speculative yield search and the batched solve scheduler run.
   The estimate steers only *how much* work a round precomputes
   (speculation depth), never *which* points are probed, so readers can
   consume a wall-clock quantity without breaking bit-identity — the same
   contract the trace subsystem already relies on. *)

let alpha = 0.2

(* 0. doubles as "no sample yet": a real per-task cost of exactly 0 ns is
   not observable from a microsecond clock. *)
let state = Atomic.make 0.

let observe ~tasks ~elapsed_ns =
  if tasks > 0 && elapsed_ns > 0. then begin
    let per = elapsed_ns /. float_of_int tasks in
    let rec update () =
      let prev = Atomic.get state in
      let next =
        if prev = 0. then per else (alpha *. per) +. ((1. -. alpha) *. prev)
      in
      if not (Atomic.compare_and_set state prev next) then update ()
    in
    update ()
  end

let estimate_ns () =
  match Atomic.get state with 0. -> None | c -> Some c

let reset () = Atomic.set state 0.

let now_ns () = Unix.gettimeofday () *. 1e9
