type t = {
  nodes : Node.t array;
  services : Service.t array;
  dims : int;
  req_elem : float array;
  req_agg : float array;
  need_elem : float array;
  need_agg : float array;
}

(* Service j's vectors, flattened at offset j*dims: the probe kernel's
   demand fill reads these contiguously instead of chasing per-service
   epair records. *)
let flatten dims services proj =
  let buf = Array.make (Array.length services * dims) 0. in
  Array.iteri
    (fun j s ->
      let v = proj s in
      for d = 0 to dims - 1 do
        buf.((j * dims) + d) <- Vec.Vector.get v d
      done)
    services;
  buf

let v ~nodes ~services =
  if Array.length nodes = 0 then invalid_arg "Instance.v: no nodes";
  if Array.length services = 0 then invalid_arg "Instance.v: no services";
  let dims = Node.dim nodes.(0) in
  Array.iteri
    (fun i n ->
      if n.Node.id <> i then invalid_arg "Instance.v: node ids must be 0..H-1";
      if Node.dim n <> dims then invalid_arg "Instance.v: node dim mismatch")
    nodes;
  Array.iteri
    (fun i s ->
      if s.Service.id <> i then
        invalid_arg "Instance.v: service ids must be 0..J-1";
      if Service.dim s <> dims then
        invalid_arg "Instance.v: service dim mismatch")
    services;
  {
    nodes;
    services;
    dims;
    req_elem =
      flatten dims services (fun s -> s.Service.requirement.Vec.Epair.elementary);
    req_agg =
      flatten dims services (fun s -> s.Service.requirement.Vec.Epair.aggregate);
    need_elem =
      flatten dims services (fun s -> s.Service.need.Vec.Epair.elementary);
    need_agg =
      flatten dims services (fun s -> s.Service.need.Vec.Epair.aggregate);
  }

let n_nodes t = Array.length t.nodes
let n_services t = Array.length t.services

let node t h = t.nodes.(h)
let service t j = t.services.(j)

let sum_vectors dims proj n get =
  let acc = Array.make dims 0. in
  for i = 0 to n - 1 do
    let v = proj (get i) in
    for d = 0 to dims - 1 do
      acc.(d) <- acc.(d) +. Vec.Vector.get v d
    done
  done;
  Vec.Vector.of_array acc

let total_capacity t =
  sum_vectors t.dims
    (fun n -> n.Node.capacity.Vec.Epair.aggregate)
    (Array.length t.nodes)
    (fun i -> t.nodes.(i))

let total_requirement t =
  sum_vectors t.dims
    (fun s -> s.Service.requirement.Vec.Epair.aggregate)
    (Array.length t.services)
    (fun i -> t.services.(i))

let total_need t =
  sum_vectors t.dims
    (fun s -> s.Service.need.Vec.Epair.aggregate)
    (Array.length t.services)
    (fun i -> t.services.(i))

let map_services f t =
  let services = Array.map f t.services in
  v ~nodes:t.nodes ~services

let pp ppf t =
  Format.fprintf ppf "@[<v>instance: %d nodes, %d services, %d dims"
    (Array.length t.nodes) (Array.length t.services) t.dims;
  Array.iter (fun n -> Format.fprintf ppf "@,  %a" Node.pp n) t.nodes;
  Array.iter (fun s -> Format.fprintf ppf "@,  %a" Service.pp s) t.services;
  Format.fprintf ppf "@]"
