(** Hosted services (virtual machine instances).

    A service carries rigid {e requirements} [(rᵉ, rᵃ)] — the allocation
    below which placement fails — and fluid {e needs} [(nᵉ, nᵃ)] — the
    additional allocation that takes it from minimum acceptable service to
    full performance on the reference machine. Running at yield [y] consumes
    [(rᵉ + y·nᵉ, rᵃ + y·nᵃ)] (paper §2). *)

type t = { id : int; requirement : Vec.Epair.t; need : Vec.Epair.t }

val v : id:int -> requirement:Vec.Epair.t -> need:Vec.Epair.t -> t
(** Raises [Invalid_argument] on dimension mismatches or negative
    components. *)

val cpu_dim : int
(** Dimension index of CPU ([0]) in the 2-D convenience layout shared by
    {!make_2d}, {!Node.make_cores}, and the online simulator's admission
    path. *)

val mem_dim : int
(** Dimension index of memory ([1]) in the same layout. *)

val make_2d :
  id:int ->
  ?cpu_req:float * float ->
  ?mem_req:float ->
  ?cpu_need:float * float ->
  ?mem_need:float ->
  unit ->
  t
(** Convenience for the paper's 2-D experiments. [cpu_req] and [cpu_need]
    are [(elementary, aggregate)] CPU pairs; memory is poolable so a single
    scalar sets both elementary and aggregate components. All default to
    zero. Dimension 0 is CPU, dimension 1 is memory. *)

val dim : t -> int

val demand_at_yield : t -> float -> Vec.Epair.t
(** [demand_at_yield s y] is [(rᵉ + y·nᵉ, rᵃ + y·nᵃ)]. *)

val has_need : t -> bool
(** True when any need component is non-zero. A service with no needs is
    fully satisfied by its requirement and runs at yield 1 by convention. *)

val scale_cpu_need : factor:float -> t -> t
(** Multiply the CPU (dimension 0) need components by [factor]; used by the
    workload generator's normalization and by the error-perturbation
    machinery. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
