(** A resource-allocation problem instance: a platform and a workload. *)

type t = private {
  nodes : Node.t array;
  services : Service.t array;
  dims : int;
  req_elem : float array;
      (** Service requirements (elementary), flattened: service [j]'s
          dimension [d] lives at [j*dims + d]. Never mutated after
          construction; the probe kernel's fused demand fill reads these
          four buffers contiguously. *)
  req_agg : float array;  (** Requirements (aggregate), same layout. *)
  need_elem : float array;  (** Needs (elementary), same layout. *)
  need_agg : float array;  (** Needs (aggregate), same layout. *)
}

val v : nodes:Node.t array -> services:Service.t array -> t
(** Raises [Invalid_argument] when the arrays are empty, dimensions are
    inconsistent, or ids are not exactly [0..len-1] in order (algorithms
    index directly by id). *)

val n_nodes : t -> int
val n_services : t -> int

val node : t -> int -> Node.t
val service : t -> int -> Service.t

val total_capacity : t -> Vec.Vector.t
(** Component-wise sum of aggregate node capacities. *)

val total_requirement : t -> Vec.Vector.t
(** Component-wise sum of aggregate service requirements. *)

val total_need : t -> Vec.Vector.t
(** Component-wise sum of aggregate service needs. *)

val map_services : (Service.t -> Service.t) -> t -> t
(** Rebuild the instance with transformed services (ids must be
    preserved). *)

val pp : Format.formatter -> t -> unit
