type t = { id : int; requirement : Vec.Epair.t; need : Vec.Epair.t }

let check_nonneg what (p : Vec.Epair.t) =
  let check v =
    if Vec.Vector.min_component v < 0. then
      invalid_arg (Printf.sprintf "Service.v: negative %s component" what)
  in
  check p.Vec.Epair.elementary;
  check p.Vec.Epair.aggregate

let v ~id ~requirement ~need =
  if Vec.Epair.dim requirement <> Vec.Epair.dim need then
    invalid_arg "Service.v: requirement/need dimension mismatch";
  check_nonneg "requirement" requirement;
  check_nonneg "need" need;
  { id; requirement; need }

let cpu_dim = 0
let mem_dim = 1

let make_2d ~id ?(cpu_req = (0., 0.)) ?(mem_req = 0.) ?(cpu_need = (0., 0.))
    ?(mem_need = 0.) () =
  let components c m =
    let a = Array.make 2 0. in
    a.(cpu_dim) <- c;
    a.(mem_dim) <- m;
    Vec.Vector.of_array a
  in
  let pair (ce, ca) m =
    Vec.Epair.v ~elementary:(components ce m) ~aggregate:(components ca m)
  in
  v ~id ~requirement:(pair cpu_req mem_req) ~need:(pair cpu_need mem_need)

let dim t = Vec.Epair.dim t.requirement

let demand_at_yield t y =
  Vec.Epair.at_yield ~requirement:t.requirement ~need:t.need y

let has_need t =
  (not (Vec.Vector.is_zero t.need.Vec.Epair.elementary))
  || not (Vec.Vector.is_zero t.need.Vec.Epair.aggregate)

let scale_cpu_need ~factor t =
  let scale_dim0 v =
    Vec.Vector.init (Vec.Vector.dim v) (fun i ->
        if i = 0 then factor *. Vec.Vector.get v i else Vec.Vector.get v i)
  in
  let need =
    Vec.Epair.v
      ~elementary:(scale_dim0 t.need.Vec.Epair.elementary)
      ~aggregate:(scale_dim0 t.need.Vec.Epair.aggregate)
  in
  { t with need }

let equal a b =
  a.id = b.id
  && Vec.Epair.equal a.requirement b.requirement
  && Vec.Epair.equal a.need b.need

let pp ppf t =
  Format.fprintf ppf "service#%d req %a need %a" t.id Vec.Epair.pp
    t.requirement Vec.Epair.pp t.need
