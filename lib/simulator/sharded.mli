(** Sharded online simulation: many independent node shards, one merged,
    deterministic event log.

    The platform's nodes are partitioned into [shards] disjoint shards;
    each shard runs its own {!Engine} with its own pre-split RNG stream
    (derived from [(seed, shard, shards)] with the stable-hash recipe of
    [Experiments.Corpus.seed_of_spec], so streams exist {e before}
    dispatch), its own node sub-array, and — in the adaptive mode — its
    own threshold controller. Because admission, placement, and the
    run-time scheduler all act per node, shards over disjoint node sets
    never interact, so the product of the independent simulations {e is}
    the behaviour of a platform whose resource manager is partitioned —
    the regime the paper's §8 deployment sketch and the reliability /
    capacity-allocation lines of related work study at fleet scale.

    Shard runs fan out over an optional {!Par.Pool}; the per-shard stats
    are returned in shard order whatever the domain count, and the merge
    walks the per-shard event logs by [(time, shard_index)] — lower shard
    index wins ties — so the merged stats, the merged log, and any enabled
    {!Obs.Metrics} snapshot are byte-identical at any [VMALLOC_DOMAINS].
    With one shard the engine's exact RNG stream is kept, making
    [run ~shards:1] bit-identical to {!Engine.run}. *)

type partition_policy =
  | Contiguous
      (** nodes [lo, hi) per shard in platform order — shard sizes differ
          by at most one node, capacities by whatever the platform layout
          happens to put next to each other *)
  | Capacity_balanced
      (** LPT greedy over scalar node capacity (sum of aggregate
          components): nodes by descending capacity, each to the currently
          least-loaded shard. Max and min shard capacity differ by at most
          one node's capacity; with one shard the result is byte-identical
          to [Contiguous]. *)

type result = {
  merged : Engine.stats;
      (** Counters summed across shards; [yield_samples] is the
          [(time, shard)]-merged log whose yield column is the {e global}
          (min-over-shards) piecewise-constant minimum yield at that
          instant; [mean_min_yield] integrates that global minimum;
          [final_threshold] is the max over shards. *)
  per_shard : Engine.stats array;  (** In shard order. *)
  finals : Engine.final_service list array;
      (** Per shard, the services still live at the horizon with their
          final hosts (node ids are shard-local). *)
  timeline : Obs.Timeline.t option;
      (** Present iff [timeline_interval] was given: the merged
          fixed-grid telemetry (see {!timeline_cols}). *)
}

val timeline_cols : string array
(** Columns of the merged timeline, in order: [yield_min] (global
    min-over-shards yield at the grid instant), [active_services] (sum),
    [shard_imbalance] ((max - mean) / mean of per-shard live services, 0
    when the platform is empty), and [repairs_per_t] /
    [bins_touched_per_t] / [pivots_per_t] — per-interval counter deltas
    summed over shards, divided by the interval (rates per virtual-time
    unit). *)

val shard_seed : seed:int -> shard:int -> shards:int -> int
(** The seed of shard [shard]'s RNG stream when [shards > 1] (a stable
    hash of the tuple). Exposed so tests can replay one shard through
    {!Engine.run} directly; [run ~shards:1] uses [seed] itself instead. *)

val partition :
  ?policy:partition_policy ->
  shards:int ->
  Model.Node.t array ->
  Model.Node.t array array
(** Disjoint partition with per-shard dense node ids; within a shard,
    nodes keep their relative platform order. [policy] defaults to
    [Contiguous]. Raises [Invalid_argument] when [shards < 1] or [shards]
    exceeds the node count. *)

val run :
  ?pool:Par.Pool.t ->
  ?seed:int ->
  ?partition:partition_policy ->
  ?incremental:bool ->
  ?timeline_interval:float ->
  shards:int ->
  Engine.config ->
  platform:Model.Node.t array ->
  result
(** Simulate every shard (in parallel when a pool is given) and merge.
    Deterministic in [seed] and [partition] alone — same seed, same
    stats, at any pool size. [seed] defaults to 0, [partition] to
    [Contiguous]; [incremental] is forwarded to {!Engine.run} (probe
    placement policies only). [timeline_interval] turns on fixed-grid
    telemetry: every shard samples its engine on the same virtual-time
    grid and the samples are merged in shard order into
    [result.timeline] — a pure function of [(seed, shards, partition,
    config)], byte-identical at any [VMALLOC_DOMAINS] (DESIGN.md §14).
    Raises like {!Engine.run} plus the {!partition} cases. Each shard
    traces a ["shard"] span when {!Obs.Trace} is enabled. *)
