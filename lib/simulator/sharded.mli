(** Sharded online simulation: many independent node shards, one merged,
    deterministic event log.

    The platform's nodes are partitioned into [shards] contiguous,
    disjoint shards; each shard runs its own {!Engine} with its own
    pre-split RNG stream (derived from [(seed, shard, shards)] with the
    stable-hash recipe of [Experiments.Corpus.seed_of_spec], so streams
    exist {e before} dispatch), its own node sub-array, and — in the
    adaptive mode — its own threshold controller. Because admission,
    placement, and the run-time scheduler all act per node, shards over
    disjoint node sets never interact, so the product of the independent
    simulations {e is} the behaviour of a platform whose resource manager
    is partitioned — the regime the paper's §8 deployment sketch and the
    reliability / capacity-allocation lines of related work study at
    fleet scale.

    Shard runs fan out over an optional {!Par.Pool}; the per-shard stats
    are returned in shard order whatever the domain count, and the merge
    walks the per-shard event logs by [(time, shard_index)] — lower shard
    index wins ties — so the merged stats, the merged log, and any enabled
    {!Obs.Metrics} snapshot are byte-identical at any [VMALLOC_DOMAINS].
    With one shard the engine's exact RNG stream is kept, making
    [run ~shards:1] bit-identical to {!Engine.run}. *)

type result = {
  merged : Engine.stats;
      (** Counters summed across shards; [yield_samples] is the
          [(time, shard)]-merged log whose yield column is the {e global}
          (min-over-shards) piecewise-constant minimum yield at that
          instant; [mean_min_yield] integrates that global minimum;
          [final_threshold] is the max over shards. *)
  per_shard : Engine.stats array;  (** In shard order. *)
}

val partition : shards:int -> Model.Node.t array -> Model.Node.t array array
(** Contiguous balanced partition with per-shard dense node ids. Raises
    [Invalid_argument] when [shards < 1] or [shards] exceeds the node
    count. *)

val run :
  ?pool:Par.Pool.t ->
  ?seed:int ->
  shards:int ->
  Engine.config ->
  platform:Model.Node.t array ->
  result
(** Simulate every shard (in parallel when a pool is given) and merge.
    Deterministic in [seed] alone — same seed, same stats, at any pool
    size. [seed] defaults to 0. Raises like {!Engine.run} plus the
    {!partition} cases. Each shard traces a ["shard"] span when
    {!Obs.Trace} is enabled. *)
