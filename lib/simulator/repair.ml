type entry = { uid : int; mem : float; cpu : float }

type t = {
  mem_cap : float array;
  cpu_cap : float array;
  residents : (int, entry) Hashtbl.t array;
  mem_load : float array;
  cpu_load : float array;
  count : int array;
  gap_factor : float;  (* 1 - yield_gap: bin h is unhealthy when
                          cpu_load(h) * gap_factor > cpu_cap(h) *)
  overloaded : (int, unit) Hashtbl.t;  (* bins with cpu_load > cpu_cap *)
  mutable unhealthy : int;
}

let eps = 1e-9

let probe_limit = 8

let create ~platform ~yield_gap =
  let n = Array.length platform in
  let cap dim h =
    Vec.Vector.get platform.(h).Model.Node.capacity.Vec.Epair.aggregate dim
  in
  {
    mem_cap = Array.init n (cap Model.Service.mem_dim);
    cpu_cap = Array.init n (cap Model.Service.cpu_dim);
    residents = Array.init n (fun _ -> Hashtbl.create 16);
    mem_load = Array.make n 0.;
    cpu_load = Array.make n 0.;
    count = Array.make n 0;
    gap_factor = 1. -. yield_gap;
    overloaded = Hashtbl.create 16;
    unhealthy = 0;
  }

let is_overloaded t h = t.cpu_load.(h) > t.cpu_cap.(h) +. eps

let is_unhealthy t h = (t.cpu_load.(h) *. t.gap_factor) > t.cpu_cap.(h) +. eps

(* Recompute one node's sums from its resident set in ascending-uid order —
   the canonical summation that makes loads a pure function of the set (see
   the .mli) — and maintain the overload/health bookkeeping. *)
let refresh t h =
  let was_unhealthy = is_unhealthy t h in
  let uids =
    Hashtbl.fold (fun uid _ acc -> uid :: acc) t.residents.(h) []
    |> List.sort compare
  in
  let mem = ref 0. and cpu = ref 0. in
  List.iter
    (fun uid ->
      let e = Hashtbl.find t.residents.(h) uid in
      mem := !mem +. e.mem;
      cpu := !cpu +. e.cpu)
    uids;
  t.mem_load.(h) <- !mem;
  t.cpu_load.(h) <- !cpu;
  t.count.(h) <- List.length uids;
  if is_overloaded t h then Hashtbl.replace t.overloaded h ()
  else Hashtbl.remove t.overloaded h;
  match (was_unhealthy, is_unhealthy t h) with
  | false, true -> t.unhealthy <- t.unhealthy + 1
  | true, false -> t.unhealthy <- t.unhealthy - 1
  | _ -> ()

let add t ~node e =
  Hashtbl.replace t.residents.(node) e.uid e;
  refresh t node

let remove t ~node ~uid =
  Hashtbl.remove t.residents.(node) uid;
  refresh t node

let rebuild t entries =
  Array.iter Hashtbl.reset t.residents;
  Array.iter
    (fun (node, e) -> Hashtbl.replace t.residents.(node) e.uid e)
    entries;
  for h = 0 to Array.length t.mem_cap - 1 do
    refresh t h
  done

let mem_fits t h m = t.mem_load.(h) +. m <= t.mem_cap.(h) +. eps

let choose t policy ~rng ~mem =
  let n = Array.length t.mem_cap in
  let touched = ref 0 in
  let probe () =
    incr touched;
    Prng.Rng.int rng n
  in
  let probes = min probe_limit n in
  match policy with
  | Policy.Resolve -> invalid_arg "Repair.choose: resolve has no probe path"
  | Policy.Greedy_random ->
      (* Stolyar's greedy-random rule: take the first random probe that
         fits; scan first-fit only when every probe misses. *)
      let rec try_probe k =
        if k = 0 then None
        else
          let h = probe () in
          if mem_fits t h mem then Some h else try_probe (k - 1)
      in
      let chosen =
        match try_probe probes with
        | Some h -> Some h
        | None ->
            let found = ref None in
            let h = ref 0 in
            while !found = None && !h < n do
              incr touched;
              if mem_fits t !h mem then found := Some !h;
              incr h
            done;
            !found
      in
      (chosen, !touched)
  | Policy.Best_fit ->
      (* Best fit by remaining memory over the same random candidate set;
         strict [<] makes the earliest probe win ties. *)
      let best = ref None and best_rem = ref infinity in
      let consider h =
        if mem_fits t h mem then begin
          let rem = t.mem_cap.(h) -. t.mem_load.(h) -. mem in
          if rem < !best_rem then begin
            best := Some h;
            best_rem := rem
          end
        end
      in
      for _ = 1 to probes do
        consider (probe ())
      done;
      if !best = None then
        for h = 0 to n - 1 do
          incr touched;
          consider h
        done;
      (!best, !touched)

let repair t ~target ~budget ~on_move =
  let touched = ref 1 (* the freed target bin *) in
  let moved = ref 0 in
  let examined = ref 0 in
  let over =
    Hashtbl.fold (fun h () acc -> h :: acc) t.overloaded [] |> List.sort compare
  in
  List.iter
    (fun h ->
      if
        h <> target && !moved < budget && !examined < probe_limit
        && is_overloaded t h
      then begin
        incr touched;
        incr examined;
        (* Largest estimated CPU first so one move sheds the most overload;
           ties by uid keep the order deterministic. *)
        let residents =
          Hashtbl.fold (fun _ e acc -> e :: acc) t.residents.(h) []
          |> List.sort (fun a b ->
                 match compare b.cpu a.cpu with
                 | 0 -> compare a.uid b.uid
                 | c -> c)
        in
        List.iter
          (fun e ->
            if
              !moved < budget && is_overloaded t h
              && mem_fits t target e.mem
              && t.cpu_load.(target) +. e.cpu <= t.cpu_cap.(target) +. eps
            then begin
              Hashtbl.remove t.residents.(h) e.uid;
              Hashtbl.replace t.residents.(target) e.uid e;
              refresh t h;
              refresh t target;
              on_move ~uid:e.uid ~node:target;
              incr moved
            end)
          residents
      end)
    over;
  (!moved, !touched)

let healthy t = t.unhealthy = 0

let mem_load t h = t.mem_load.(h)
let cpu_load t h = t.cpu_load.(h)
let count t h = t.count.(h)
