type threshold_mode =
  | Fixed of float
  | Adaptive of Sharing.Adaptive_threshold.t

type config = {
  horizon : float;
  arrival_rate : float;
  mean_lifetime : float;
  reallocation_period : float;
  max_error : float;
  threshold : threshold_mode;
  policy : Sharing.Policy.t;
  algorithm : Heuristics.Algorithms.t;
  per_core_need : float;
  memory_scale : float;
  placement : Policy.t;
  repair_budget : int;
  yield_gap : float;
}

let default_config =
  {
    horizon = 100.;
    arrival_rate = 1.;
    mean_lifetime = 20.;
    reallocation_period = 5.;
    max_error = 0.;
    threshold = Fixed 0.;
    policy = Sharing.Policy.Alloc_weights;
    algorithm = Heuristics.Algorithms.metahvplight;
    per_core_need = 0.1;
    memory_scale = 0.4;
    placement = Policy.Resolve;
    repair_budget = 8;
    yield_gap = 0.15;
  }

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  departures : int;
  reallocations : int;
  failed_reallocations : int;
  migrations : int;
  mean_min_yield : float;
  yield_samples : (float * float) list;
  final_threshold : float;
}

(* A live service: true and estimated CPU needs plus the rigid memory
   requirement; [node] is its current host. *)
type live = {
  uid : int;
  cores : int;
  true_cpu : float;  (* aggregate true need *)
  est_cpu : float;   (* aggregate estimated need (before thresholding) *)
  memory : float;
  mutable node : int;
}

type event = Arrival | Departure of int (* uid *) | Reallocate

type final_service = { f_uid : int; f_node : int; f_mem : float; f_cpu : float }

(* One timeline grid-point sample. Work counters are cumulative since run
   start and deliberately independent of the Obs.Metrics enabled flag:
   they are plain ints on the engine's own domain, so a sample is a pure
   function of the event history — the determinism the timeline tests
   lock across domain and shard counts (DESIGN.md §14). *)
type timeline_sample = {
  tl_time : float;
  tl_yield : float;
  tl_active : int;
  tl_repairs : int;
  tl_bins_touched : int;
  tl_pivots : int;
}

(* Deterministic operation counters (Obs.Metrics never records wall-clock
   time; reallocation latency in wall-clock terms lives in the "reallocate"
   trace spans instead, with the deterministic work-size proxy — services
   re-placed — in [h_realloc_services]). *)
let c_arrivals = Obs.Metrics.counter "simulator.arrivals"
let c_admitted = Obs.Metrics.counter "simulator.admitted"
let c_rejected = Obs.Metrics.counter "simulator.rejected"
let c_departures = Obs.Metrics.counter "simulator.departures"
let c_reallocations = Obs.Metrics.counter "simulator.reallocations"
let c_migrations = Obs.Metrics.counter "simulator.migrations"
let c_reeval_skips = Obs.Metrics.counter "simulator.reeval_skips"
let c_repairs = Obs.Metrics.counter "simulator.repairs"
let c_repair_fallbacks = Obs.Metrics.counter "simulator.repair_fallbacks"
let c_bins_touched = Obs.Metrics.counter "simulator.bins_touched"
let h_epoch_yield = Obs.Metrics.histogram "simulator.epoch_min_yield_permille"
let h_realloc_services = Obs.Metrics.histogram "simulator.reallocation_services"

let validate config ~platform =
  if config.horizon <= 0. then invalid_arg "Engine.run: horizon";
  if config.arrival_rate <= 0. then invalid_arg "Engine.run: arrival_rate";
  if config.mean_lifetime <= 0. then invalid_arg "Engine.run: mean_lifetime";
  if config.reallocation_period <= 0. then
    invalid_arg "Engine.run: reallocation_period";
  if config.max_error < 0. then invalid_arg "Engine.run: max_error";
  if config.per_core_need <= 0. then invalid_arg "Engine.run: per_core_need";
  if config.memory_scale <= 0. then invalid_arg "Engine.run: memory_scale";
  if config.repair_budget < 0 then invalid_arg "Engine.run: repair_budget";
  if config.yield_gap < 0. || config.yield_gap >= 1. then
    invalid_arg "Engine.run: yield_gap";
  (* The admission path and [service_of_live] assume the 2-D (CPU, memory)
     layout of [Model.Service.make_2d]; reject anything else up front
     rather than silently misreading a capacity component. *)
  if Array.length platform = 0 then invalid_arg "Engine.run: empty platform";
  Array.iter
    (fun n ->
      if Model.Node.dim n <> 2 then
        invalid_arg "Engine.run: platform must be 2-D (CPU, memory)")
    platform

(* Dense-id service arrays for the model layer, in [actives] order. The
   estimated variant applies the current minimum threshold. *)
let service_of_live ~estimated ~threshold id (l : live) =
  let cpu =
    if estimated then Float.max l.est_cpu threshold else l.true_cpu
  in
  Model.Service.make_2d ~id ~mem_req:l.memory
    ~cpu_need:(cpu /. float_of_int l.cores, cpu)
    ()

let build_instances ~platform ~threshold (actives : live array) =
  let true_services =
    Array.mapi (service_of_live ~estimated:false ~threshold:0.) actives
  in
  let est_services =
    Array.mapi (service_of_live ~estimated:true ~threshold) actives
  in
  let placement = Array.map (fun l -> l.node) actives in
  ( actives,
    Model.Instance.v ~nodes:platform ~services:true_services,
    Model.Instance.v ~nodes:platform ~services:est_services,
    placement )

let run ?rng ?(incremental = true) ?final ?timeline config ~platform =
  validate config ~platform;
  (match timeline with
  | Some (dt, _) when dt <= 0. ->
      invalid_arg "Engine.run: timeline interval must be positive"
  | _ -> ());
  let rng = match rng with Some r -> r | None -> Prng.Rng.create ~seed:0 in
  let n_nodes = Array.length platform in
  (* Deterministic work counters for the timeline gauges — always on (an
     int add), unlike their Obs.Metrics twins. *)
  let repairs_n = ref 0 in
  let bins_n = ref 0 in
  let pivot_base = Lp.Pivot_clock.total () in
  let touch_bins n =
    Obs.Metrics.add c_bins_touched n;
    bins_n := !bins_n + n
  in
  (* Incremental bin state, only for the probe-based placement policies.
     The resolve path never consults it, keeping that path byte-identical
     to the pre-policy engine (locked by the golden seed-0 tests). *)
  let rstate =
    match config.placement with
    | Policy.Resolve -> None
    | Policy.Greedy_random | Policy.Best_fit ->
        Some (Repair.create ~platform ~yield_gap:config.yield_gap)
  in
  let queue = Event_queue.create () in
  let actives : live Active_set.t = Active_set.create () in
  let next_uid = ref 0 in
  let arrivals = ref 0 and admitted = ref 0 and rejected = ref 0 in
  let departures = ref 0 in
  let reallocations = ref 0 and failed_reallocations = ref 0 in
  let migrations = ref 0 in
  let yield_samples = ref [] in
  let yield_integral = ref 0. in
  let last_time = ref 0. in
  let current_yield = ref 1. in
  (* Events that neither changed the active set nor the placement nor the
     threshold (i.e. rejected arrivals) cannot change the minimum yield, so
     [record] reuses the cached value instead of rebuilding both instances
     and re-running the scheduler evaluation. *)
  let state_dirty = ref true in
  let current_threshold () =
    match config.threshold with
    | Fixed t -> t
    | Adaptive c -> Sharing.Adaptive_threshold.threshold c
  in
  (* Piecewise-constant integration of the minimum yield. *)
  let advance_to time =
    yield_integral := !yield_integral +. (!current_yield *. (time -. !last_time));
    last_time := time
  in
  let record ?(epoch = false) time =
    let y =
      if not !state_dirty then begin
        Obs.Metrics.incr c_reeval_skips;
        !current_yield
      end
      else if Active_set.is_empty actives then 1.
      else begin
        let _, true_inst, est_inst, placement =
          build_instances ~platform ~threshold:(current_threshold ())
            (Active_set.to_array actives)
        in
        match
          Sharing.Runtime_eval.actual_min_yield config.policy
            ~true_instance:true_inst ~estimated:est_inst placement
        with
        | Some y -> y
        | None -> 0.
      end
    in
    state_dirty := false;
    if epoch then
      Obs.Metrics.observe h_epoch_yield (int_of_float (y *. 1000.));
    current_yield := y;
    yield_samples := (time, y) :: !yield_samples
  in
  (* Memory-requirement admission: the feasible node with the fewest
     services (the zero-knowledge spread — arrivals carry no trusted CPU
     estimate yet, only the rigid requirement matters for admission). *)
  let admit (l : live) =
    let h_count = Array.length platform in
    let mem_load = Array.make h_count 0. in
    let count = Array.make h_count 0 in
    Active_set.iter actives (fun (a : live) ->
        mem_load.(a.node) <- mem_load.(a.node) +. a.memory;
        count.(a.node) <- count.(a.node) + 1);
    let best = ref (-1) in
    for h = 0 to h_count - 1 do
      let cap =
        Vec.Vector.get platform.(h).Model.Node.capacity.Vec.Epair.aggregate
          Model.Service.mem_dim
      in
      if
        mem_load.(h) +. l.memory <= cap +. 1e-9
        && (!best < 0 || count.(h) < count.(!best))
      then best := h
    done;
    touch_bins h_count;
    if !best >= 0 then begin
      l.node <- !best;
      true
    end
    else false
  in
  let entry_of_live (l : live) =
    { Repair.uid = l.uid; mem = l.memory; cpu = l.est_cpu }
  in
  (* Resynchronize the incremental bin state from the live ground truth.
     Because [Repair] always sums residents in ascending-uid order, this
     produces bitwise the same loads the incremental updates maintained —
     the invariant the differential tests exercise via [incremental:false],
     which rebuilds before every decision. *)
  let sync_repair r =
    Repair.rebuild r
      (Array.map
         (fun (l : live) -> (l.node, entry_of_live l))
         (Active_set.to_array actives))
  in
  let reallocate () =
    incr reallocations;
    Obs.Metrics.incr c_reallocations;
    if not (Active_set.is_empty actives) then begin
      let n_live = Active_set.length actives in
      Obs.Metrics.observe h_realloc_services n_live;
      touch_bins n_nodes;
      Obs.Trace.span "reallocate"
        ~args:[ ("services", string_of_int n_live) ]
      @@ fun () ->
      let lives, true_inst, est_inst, old_placement =
        build_instances ~platform ~threshold:(current_threshold ())
          (Active_set.to_array actives)
      in
      match config.algorithm.solve est_inst with
      | None -> incr failed_reallocations
      | Some sol ->
          Array.iteri
            (fun i (l : live) ->
              if sol.placement.(i) <> old_placement.(i) then begin
                incr migrations;
                Obs.Metrics.incr c_migrations
              end;
              l.node <- sol.placement.(i))
            lives;
          (* Close the adaptive feedback loop with what the run-time
             scheduler actually hands out under the new placement. *)
          match config.threshold with
          | Fixed _ -> ()
          | Adaptive controller -> (
              match
                Sharing.Runtime_eval.consumptions config.policy
                  ~true_instance:true_inst ~estimated:est_inst sol.placement
              with
              | None -> ()
              | Some actual ->
                  let estimated =
                    Array.map (fun (l : live) -> l.est_cpu) lives
                  in
                  Sharing.Adaptive_threshold.observe controller ~estimated
                    ~actual)
    end
  in
  (* Fallback arming: a full re-solve fires at most once per unhealthy
     episode. When even the re-solve cannot restore health (the instance is
     genuinely overloaded), the trigger disarms until health is next
     observed, so a burst of events does not re-solve per event. *)
  let fallback_armed = ref true in
  let maybe_fallback r =
    if Repair.healthy r then fallback_armed := true
    else if !fallback_armed then begin
      Obs.Metrics.incr c_repair_fallbacks;
      reallocate ();
      sync_repair r;
      state_dirty := true;
      fallback_armed := Repair.healthy r
    end
  in
  (* Seed the event queue. *)
  let schedule_arrival time =
    let gap = Prng.Rng.exponential rng ~rate:config.arrival_rate in
    let t = time +. gap in
    if t <= config.horizon then Event_queue.add queue ~time:t Arrival
  in
  schedule_arrival 0.;
  let rec schedule_reallocations t =
    if t <= config.horizon then begin
      Event_queue.add queue ~time:t Reallocate;
      schedule_reallocations (t +. config.reallocation_period)
    end
  in
  schedule_reallocations config.reallocation_period;
  record 0.;
  (* Timeline grid: gauges are sampled at virtual times k * interval,
     k = 0, 1, ... <= horizon. A grid point is emitted once every event at
     or before it has been processed (events exactly on the grid land in
     the sample), using the piecewise-constant state between events — the
     same convention as the yield integral. *)
  let tl_next = ref 0 in
  let tl_emit_until limit =
    match timeline with
    | None -> ()
    | Some (dt, emit) ->
        let rec go () =
          let t = float_of_int !tl_next *. dt in
          if t < limit && t <= config.horizon +. 1e-9 then begin
            emit
              {
                tl_time = t;
                tl_yield = !current_yield;
                tl_active = Active_set.length actives;
                tl_repairs = !repairs_n;
                tl_bins_touched = !bins_n;
                tl_pivots = Lp.Pivot_clock.total () - pivot_base;
              };
            incr tl_next;
            go ()
          end
        in
        go ()
  in
  (* Main loop. *)
  let rec loop () =
    match Event_queue.pop_min queue with
    | None -> ()
    | Some (time, event) ->
        tl_emit_until time;
        advance_to time;
        let epoch =
          match event with
          | Arrival ->
              incr arrivals;
              Obs.Metrics.incr c_arrivals;
              schedule_arrival time;
              let task = Workload.Google_trace.sample rng in
              let true_cpu =
                config.per_core_need
                *. float_of_int task.Workload.Google_trace.cores
              in
              let est_cpu =
                if config.max_error = 0. then true_cpu
                else
                  Float.max 0.001
                    (true_cpu
                    +. Prng.Rng.uniform_range rng (-.config.max_error)
                         config.max_error)
              in
              let l =
                {
                  uid = !next_uid;
                  cores = task.cores;
                  true_cpu;
                  est_cpu;
                  memory = config.memory_scale *. task.memory_fraction;
                  node = -1;
                }
              in
              incr next_uid;
              let placed =
                match rstate with
                | None -> if admit l then Some l.node else None
                | Some r ->
                    if not incremental then sync_repair r;
                    let chosen, touched =
                      Repair.choose r config.placement ~rng ~mem:l.memory
                    in
                    touch_bins touched;
                    chosen
              in
              (match placed with
              | Some node ->
                  l.node <- node;
                  incr admitted;
                  Obs.Metrics.incr c_admitted;
                  Active_set.append actives ~uid:l.uid l;
                  (match rstate with
                  | None -> ()
                  | Some r -> Repair.add r ~node (entry_of_live l));
                  state_dirty := true;
                  let lifetime =
                    Prng.Rng.exponential rng
                      ~rate:(1. /. config.mean_lifetime)
                  in
                  if time +. lifetime <= config.horizon then
                    Event_queue.add queue ~time:(time +. lifetime)
                      (Departure l.uid)
                  (* Services outliving the horizon simply never depart. *)
              | None ->
                  incr rejected;
                  Obs.Metrics.incr c_rejected);
              false
          | Departure uid ->
              incr departures;
              Obs.Metrics.incr c_departures;
              (match rstate with
              | None -> ignore (Active_set.remove actives ~uid)
              | Some r -> (
                  match Active_set.take actives ~uid with
                  | None -> ()
                  | Some l ->
                      if not incremental then sync_repair r;
                      Repair.remove r ~node:l.node ~uid;
                      let moved, touched =
                        Repair.repair r ~target:l.node
                          ~budget:config.repair_budget
                          ~on_move:(fun ~uid ~node ->
                            (match Active_set.find actives ~uid with
                            | Some (m : live) -> m.node <- node
                            | None -> ());
                            incr migrations;
                            Obs.Metrics.incr c_migrations)
                      in
                      touch_bins touched;
                      if moved > 0 then begin
                        Obs.Metrics.incr c_repairs;
                        incr repairs_n
                      end;
                      maybe_fallback r));
              state_dirty := true;
              false
          | Reallocate ->
              (match rstate with
              | None ->
                  reallocate ();
                  state_dirty := true
              | Some r ->
                  if not incremental then sync_repair r;
                  maybe_fallback r);
              true
        in
        record ~epoch time;
        loop ()
  in
  loop ();
  tl_emit_until infinity;
  advance_to config.horizon;
  (match final with
  | None -> ()
  | Some f ->
      f
        (List.map
           (fun (l : live) ->
             {
               f_uid = l.uid;
               f_node = l.node;
               f_mem = l.memory;
               f_cpu = l.est_cpu;
             })
           (Active_set.to_list actives)));
  {
    arrivals = !arrivals;
    admitted = !admitted;
    rejected = !rejected;
    departures = !departures;
    reallocations = !reallocations;
    failed_reallocations = !failed_reallocations;
    migrations = !migrations;
    mean_min_yield = !yield_integral /. config.horizon;
    yield_samples = List.rev !yield_samples;
    final_threshold = current_threshold ();
  }
