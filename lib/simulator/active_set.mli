(** Insertion-ordered registry of live services, keyed by uid.

    The engine's arrival path used to append with [actives := !actives @ [l]]
    (a full copy of the live list, O(n) per arrival) and depart with an O(n)
    [List.filter] — quadratic over a run. This structure replaces it with a
    doubly-linked list plus uid hash index: O(1) append, O(1) removal, O(1)
    membership. Iteration visits values in insertion order with removed
    entries spliced out, i.e. {e exactly} the order the list-based code
    produced, so every downstream computation (instance building, admission
    spread, yield evaluation) is byte-identical — locked down by the golden
    seed-0 engine tests. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val mem : 'a t -> uid:int -> bool

val find : 'a t -> uid:int -> 'a option
(** The live value registered under this uid, when present. *)

val append : 'a t -> uid:int -> 'a -> unit
(** Add at the end of the iteration order. Raises [Invalid_argument] on a
    duplicate uid. *)

val remove : 'a t -> uid:int -> bool
(** Unlink the entry with this uid, preserving the relative order of the
    rest; [false] when absent. *)

val take : 'a t -> uid:int -> 'a option
(** {!remove} that also returns the unlinked value ([None] when absent). *)

val iter : 'a t -> ('a -> unit) -> unit
(** In insertion order. *)

val to_array : 'a t -> 'a array
(** Values in insertion order. *)

val to_list : 'a t -> 'a list
