type t = Resolve | Greedy_random | Best_fit

let to_string = function
  | Resolve -> "resolve"
  | Greedy_random -> "greedy-random"
  | Best_fit -> "best-fit"

let all = [ Resolve; Greedy_random; Best_fit ]

let valid_names = List.map to_string all

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> to_string p = s) all
