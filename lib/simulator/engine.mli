(** Online service-hosting simulation (extension; paper §8).

    The paper studies the off-line problem: a fixed set of services placed
    once. Its conclusion describes deploying METAHVPLIGHT plus the
    error-mitigation strategy inside a resource manager — which is an
    {e online} system: services arrive (Poisson), run for a while
    (exponential lifetime), and depart; the manager re-runs the placement
    algorithm periodically, migrating services when beneficial, while the
    run-time scheduler divides CPU according to a {!Sharing.Policy} using
    (possibly erroneous) need estimates.

    This engine is a classic discrete-event simulation over that loop. At
    every event (arrival, departure, reallocation) the actual minimum yield
    is re-evaluated against the services' true needs, giving an exact
    piecewise-constant integral of the objective over time. An optional
    {!Sharing.Adaptive_threshold} controller closes the feedback loop the
    paper's future work asks for. *)

type threshold_mode =
  | Fixed of float  (** the paper's §6.2 static threshold *)
  | Adaptive of Sharing.Adaptive_threshold.t
      (** feedback controller updated after every reallocation *)

type config = {
  horizon : float;  (** simulated time to run for *)
  arrival_rate : float;  (** Poisson arrival intensity (services per time) *)
  mean_lifetime : float;  (** exponential service lifetime *)
  reallocation_period : float;  (** period of the placement loop *)
  max_error : float;  (** CPU-need estimation error for arriving services *)
  threshold : threshold_mode;
  policy : Sharing.Policy.t;  (** run-time CPU sharing policy *)
  algorithm : Heuristics.Algorithms.t;  (** placement algorithm *)
  per_core_need : float;  (** true per-core CPU need of arriving services *)
  memory_scale : float;  (** memory requirement = scale * trace fraction *)
  placement : Policy.t;
      (** how events are handled: [Resolve] re-solves the whole shard each
          reallocation epoch (the original engine); the probe policies
          place arrivals by probing candidate bins and repair locally on
          departures, falling back to a full re-solve only on drift *)
  repair_budget : int;
      (** max services re-packed per departure-triggered repair pass
          (probe policies only) *)
  yield_gap : float;
      (** drift tolerance in [0, 1): a bin whose CPU load exceeds
          capacity / (1 - yield_gap) marks the placement unhealthy and
          arms the full re-solve fallback (probe policies only) *)
}

val default_config : config
(** METAHVPLIGHT, ALLOCWEIGHTS, fixed threshold 0, horizon 100, one arrival
    per time unit, mean lifetime 20, reallocation every 5, no error,
    per-core need 0.1, memory scale 0.4, resolve placement, repair budget
    8, yield gap 0.15. *)

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;  (** arrivals whose requirements fit no node *)
  departures : int;
  reallocations : int;
  failed_reallocations : int;
      (** periods where the algorithm found no placement and the previous
          placement was kept *)
  migrations : int;  (** placement changes across reallocations *)
  mean_min_yield : float;  (** time-average of the actual minimum yield *)
  yield_samples : (float * float) list;
      (** (time, actual min yield) at every event, chronological *)
  final_threshold : float;
}

type final_service = {
  f_uid : int;
  f_node : int;
  f_mem : float;
  f_cpu : float;  (** estimated aggregate CPU need *)
}
(** A service still live at the horizon, with its final host — the
    end-of-run placement handed to the [?final] callback so tests can
    check feasibility without re-deriving it from the yield log. *)

type timeline_sample = {
  tl_time : float;  (** grid time k * interval *)
  tl_yield : float;  (** actual minimum yield at that instant *)
  tl_active : int;  (** live services at that instant *)
  tl_repairs : int;  (** cumulative repair passes that moved a service *)
  tl_bins_touched : int;  (** cumulative bins examined by decisions *)
  tl_pivots : int;  (** cumulative simplex pivots spent by this run *)
}
(** One fixed-grid telemetry sample (DESIGN.md §14). The last three
    fields are cumulative counters since the start of the run; consumers
    turn them into rates by differencing consecutive samples. They are
    counted by the engine itself (pivots via {!Lp.Pivot_clock}), never
    read from the {!Obs.Metrics} sinks, so they are exact whether or not
    metrics are enabled and independent of what else runs in the
    process. *)

val run :
  ?rng:Prng.Rng.t ->
  ?incremental:bool ->
  ?final:(final_service list -> unit) ->
  ?timeline:float * (timeline_sample -> unit) ->
  config ->
  platform:Model.Node.t array ->
  stats
(** Simulate. Deterministic given the rng (default seed 0). Raises
    [Invalid_argument] on non-positive horizon, rates, or periods, on a
    negative repair budget or a yield gap outside [0, 1), and on any
    platform that is empty or not 2-D — the admission path reads the
    memory capacity at {!Model.Service.mem_dim} and would silently
    misread any other dimension layout.

    [incremental] (default [true]) only affects the probe placement
    policies: [false] rebuilds the per-bin load state from the live
    ground truth before {e every} decision instead of updating it in
    place. Because the bin state always sums residents in a canonical
    order, the two modes are bitwise-identical — [incremental:false] is
    the slow reference the differential tests compare against, never a
    mode to run for its own sake. [final] receives the services still
    live at the horizon, in insertion order, just before [run] returns.

    [timeline] is [(interval, emit)]: [emit] receives one
    {!timeline_sample} per virtual-time grid point [k * interval] in
    [\[0, horizon\]], in order, each reflecting the piecewise-constant
    state after every event at or before that instant. Sampling is driven
    purely by the sim clock, so the sequence is deterministic for a given
    rng whatever the domain count. Raises [Invalid_argument] on a
    non-positive interval.

    The arrival/departure paths are O(log n) per event (priority-queue
    discipline plus an O(1) insertion-ordered active set); the minimum
    yield is re-evaluated only on events that can change it — rejected
    arrivals reuse the cached value, counted under the
    [simulator.reeval_skips] metric. With {!Obs.Metrics} enabled the
    engine also counts arrivals/admissions/rejections/departures/
    reallocations/migrations, bins examined per decision
    ([simulator.bins_touched]), repair passes that moved at least one
    service ([simulator.repairs]) and drift-triggered full re-solves
    ([simulator.repair_fallbacks]), and records per-epoch min-yield
    (permille) and services-per-reallocation histograms; with
    {!Obs.Trace} enabled each reallocation is a ["reallocate"] span. *)
