(* Intrusive doubly-linked list threaded through a uid index. The list
   gives O(1) ordered append and O(1) unlink; the hash table gives O(1)
   lookup by uid. Iteration walks the links first-to-last, which is exactly
   the insertion order with removed cells spliced out — the same sequence
   the engine's former [list ref] produced via [@ [x]] appends and
   [List.filter] removals. *)

type 'a cell = {
  uid : int;
  value : 'a;
  mutable prev : 'a cell option;
  mutable next : 'a cell option;
}

type 'a t = {
  mutable first : 'a cell option;
  mutable last : 'a cell option;
  index : (int, 'a cell) Hashtbl.t;
  mutable length : int;
}

let create () = { first = None; last = None; index = Hashtbl.create 64; length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let mem t ~uid = Hashtbl.mem t.index uid

let find t ~uid =
  Option.map (fun cell -> cell.value) (Hashtbl.find_opt t.index uid)

let append t ~uid value =
  if Hashtbl.mem t.index uid then
    invalid_arg "Active_set.append: duplicate uid";
  let cell = { uid; value; prev = t.last; next = None } in
  (match t.last with
  | None -> t.first <- Some cell
  | Some last -> last.next <- Some cell);
  t.last <- Some cell;
  Hashtbl.replace t.index uid cell;
  t.length <- t.length + 1

let remove t ~uid =
  match Hashtbl.find_opt t.index uid with
  | None -> false
  | Some cell ->
      (match cell.prev with
      | None -> t.first <- cell.next
      | Some p -> p.next <- cell.next);
      (match cell.next with
      | None -> t.last <- cell.prev
      | Some n -> n.prev <- cell.prev);
      Hashtbl.remove t.index uid;
      t.length <- t.length - 1;
      true

let take t ~uid =
  match find t ~uid with
  | None -> None
  | Some v ->
      ignore (remove t ~uid);
      Some v

let iter t f =
  let rec go = function
    | None -> ()
    | Some cell ->
        f cell.value;
        go cell.next
  in
  go t.first

let to_array t =
  match t.first with
  | None -> [||]
  | Some first ->
      let arr = Array.make t.length first.value in
      let i = ref 0 in
      iter t (fun v ->
          arr.(!i) <- v;
          incr i);
      arr

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some cell -> go (cell.value :: acc) cell.next
  in
  go [] t.first
