type partition_policy = Contiguous | Capacity_balanced

type result = {
  merged : Engine.stats;
  per_shard : Engine.stats array;
  finals : Engine.final_service list array;
  timeline : Obs.Timeline.t option;
}

let timeline_cols =
  [|
    "yield_min";
    "active_services";
    "shard_imbalance";
    "repairs_per_t";
    "bins_touched_per_t";
    "pivots_per_t";
  |]

(* Same recipe as Experiments.Corpus.seed_of_spec: a stable Hashtbl.hash of
   the identifying tuple, so every shard's stream exists before dispatch
   and adding shards never perturbs other shards' streams. A single shard
   keeps the engine's exact stream for drop-in compatibility. *)
let shard_seed ~seed ~shard ~shards = Hashtbl.hash (seed, shard, shards)

let shard_rng ~seed ~shard ~shards =
  if shards = 1 then Prng.Rng.create ~seed
  else Prng.Rng.create ~seed:(shard_seed ~seed ~shard ~shards)

(* Scalar size of a node for balancing: the sum of its aggregate capacity
   components. Any fixed positive weighting would do — the partition only
   has to be deterministic and roughly even. *)
let node_capacity (n : Model.Node.t) =
  let agg = n.Model.Node.capacity.Vec.Epair.aggregate in
  let s = ref 0. in
  for d = 0 to Model.Node.dim n - 1 do
    s := !s +. Vec.Vector.get agg d
  done;
  !s

(* Node ids must be dense per instance (Instance.v), so re-id within the
   shard; capacities are shared immutably. Members are kept in ascending
   platform order inside each shard, which makes the one-shard
   capacity-balanced partition byte-identical to the contiguous one. *)
let reid platform members =
  Array.mapi
    (fun i p -> Model.Node.v ~id:i ~capacity:platform.(p).Model.Node.capacity)
    members

let split ~policy ~shards platform =
  let h = Array.length platform in
  if shards < 1 then invalid_arg "Sharded.run: shards must be positive";
  if shards > h then invalid_arg "Sharded.run: more shards than nodes";
  match policy with
  | Contiguous ->
      Array.init shards (fun s ->
          let lo = s * h / shards and hi = (s + 1) * h / shards in
          reid platform (Array.init (hi - lo) (fun i -> lo + i)))
  | Capacity_balanced ->
      (* LPT greedy: nodes by descending capacity (ties by index), each to
         the currently least-loaded shard (ties by lowest shard index).
         Classic list-scheduling bound: max and min shard capacity differ
         by at most one node's capacity. *)
      let cap = Array.map node_capacity platform in
      let order = Array.init h (fun i -> i) in
      Array.sort
        (fun a b ->
          match compare cap.(b) cap.(a) with 0 -> compare a b | c -> c)
        order;
      let totals = Array.make shards 0. in
      let members = Array.make shards [] in
      Array.iter
        (fun i ->
          let best = ref 0 in
          for s = 1 to shards - 1 do
            if totals.(s) < totals.(!best) then best := s
          done;
          totals.(!best) <- totals.(!best) +. cap.(i);
          members.(!best) <- i :: members.(!best))
        order;
      Array.map
        (fun lst -> reid platform (Array.of_list (List.sort compare lst)))
        members

let partition ?(policy = Contiguous) ~shards platform =
  split ~policy ~shards platform

(* Each shard owns every piece of mutable state it touches: its RNG stream,
   its node sub-array (fresh ids), and — for the adaptive mode — a fresh
   controller cloned from the caller's configuration. *)
let shard_config config =
  match config.Engine.threshold with
  | Engine.Fixed _ -> config
  | Engine.Adaptive c ->
      {
        config with
        Engine.threshold =
          Engine.Adaptive (Sharing.Adaptive_threshold.fresh c);
      }

(* Deterministic k-way merge of the per-shard event logs by
   (time, shard_index): at equal times the lower shard index wins, so the
   merged log — and the piecewise-constant integral of the global minimum
   yield computed during the same walk — is a pure function of the
   per-shard stats, independent of how the shards were scheduled. The
   float arithmetic below replays Engine.run's [advance_to] accumulation
   term-for-term, so a single-shard merge is bit-identical to the engine's
   own integral. *)
let merge ~horizon (per_shard : Engine.stats array) =
  let k = Array.length per_shard in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per_shard in
  let heads =
    Array.map (fun (s : Engine.stats) -> ref s.Engine.yield_samples) per_shard
  in
  (* Every engine run starts at yield 1 and samples at t = 0, so the
     initial [current] values are placeholders consumed immediately. *)
  let current = Array.make k 1. in
  let global_min () = Array.fold_left Float.min current.(0) current in
  let integral = ref 0. in
  let last_time = ref 0. in
  let samples = ref [] in
  let next_shard () =
    let best = ref (-1) and best_time = ref infinity in
    Array.iteri
      (fun i head ->
        match !head with
        | [] -> ()
        | (t, _) :: _ ->
            if t < !best_time then begin
              best := i;
              best_time := t
            end)
      heads;
    !best
  in
  let rec walk () =
    match next_shard () with
    | -1 -> ()
    | s ->
        let time, y =
          match !(heads.(s)) with
          | sample :: rest ->
              heads.(s) := rest;
              sample
          | [] -> assert false
        in
        integral := !integral +. (global_min () *. (time -. !last_time));
        last_time := time;
        current.(s) <- y;
        samples := (time, global_min ()) :: !samples;
        walk ()
  in
  walk ();
  integral := !integral +. (global_min () *. (horizon -. !last_time));
  {
    Engine.arrivals = sum (fun s -> s.Engine.arrivals);
    admitted = sum (fun s -> s.Engine.admitted);
    rejected = sum (fun s -> s.Engine.rejected);
    departures = sum (fun s -> s.Engine.departures);
    reallocations = sum (fun s -> s.Engine.reallocations);
    failed_reallocations = sum (fun s -> s.Engine.failed_reallocations);
    migrations = sum (fun s -> s.Engine.migrations);
    mean_min_yield = !integral /. horizon;
    yield_samples = List.rev !samples;
    final_threshold =
      Array.fold_left
        (fun acc (s : Engine.stats) -> Float.max acc s.Engine.final_threshold)
        per_shard.(0).Engine.final_threshold per_shard;
  }

(* Per-grid-index fold of the per-shard sample sequences. Every shard runs
   the same config (same horizon, same interval), so each produces exactly
   the same grid: row i of every shard is the sample at t = i * interval.
   Gauges are combined pointwise (min / sum / imbalance); the cumulative
   counters are summed and differenced against the previous grid point to
   give rates per virtual-time unit. All arithmetic is a pure fold over
   the per-shard samples in shard order, so the result is byte-stable at
   any pool size. *)
let merge_timeline ~interval (per_shard : Engine.timeline_sample array array)
    =
  let k = Array.length per_shard in
  let n = Array.length per_shard.(0) in
  Array.iter
    (fun (s : Engine.timeline_sample array) ->
      if Array.length s <> n then
        invalid_arg "Sharded.run: shards disagree on the timeline grid")
    per_shard;
  let tl = Obs.Timeline.create ~interval ~cols:timeline_cols in
  let prev = ref (0, 0, 0) in
  for i = 0 to n - 1 do
    let ym = ref infinity and active = ref 0 and active_max = ref 0 in
    let repairs = ref 0 and bins = ref 0 and pivots = ref 0 in
    for s = 0 to k - 1 do
      let x = per_shard.(s).(i) in
      ym := Float.min !ym x.Engine.tl_yield;
      active := !active + x.Engine.tl_active;
      if x.Engine.tl_active > !active_max then active_max := x.Engine.tl_active;
      repairs := !repairs + x.Engine.tl_repairs;
      bins := !bins + x.Engine.tl_bins_touched;
      pivots := !pivots + x.Engine.tl_pivots
    done;
    let mean = float_of_int !active /. float_of_int k in
    let imbalance =
      if !active = 0 then 0.
      else (float_of_int !active_max -. mean) /. mean
    in
    let pr, pb, pp = !prev in
    let rate cum last = float_of_int (cum - last) /. interval in
    Obs.Timeline.append tl
      ~time:per_shard.(0).(i).Engine.tl_time
      [|
        !ym;
        float_of_int !active;
        imbalance;
        rate !repairs pr;
        rate !bins pb;
        rate !pivots pp;
      |];
    prev := (!repairs, !bins, !pivots)
  done;
  tl

let run ?pool ?(seed = 0) ?(partition = Contiguous) ?(incremental = true)
    ?timeline_interval ~shards config ~platform =
  let parts = split ~policy:partition ~shards platform in
  let indices = Array.init shards (fun s -> s) in
  (* Every shard's stream is derived up front, in shard order, outside the
     pool tasks — stream identity is a pure function of (seed, shard,
     shards), so hoisting changes no stream, but it keeps RNG construction
     out of the per-shard event loop and off the worker domains. *)
  let rngs = Array.init shards (fun s -> shard_rng ~seed ~shard:s ~shards) in
  let run_one s =
    Obs.Trace.span "shard" ~args:[ ("shard", string_of_int s) ] @@ fun () ->
    let finals = ref [] in
    let samples = ref [] in
    let timeline =
      Option.map
        (fun dt ->
          (dt, fun x -> samples := (x : Engine.timeline_sample) :: !samples))
        timeline_interval
    in
    let stats =
      Engine.run ~rng:rngs.(s) ~incremental
        ~final:(fun fs -> finals := fs)
        ?timeline (shard_config config) ~platform:parts.(s)
    in
    (stats, !finals, Array.of_list (List.rev !samples))
  in
  let results =
    match pool with
    | Some pool when shards > 1 -> Par.Pool.map pool indices run_one
    | _ -> Array.map run_one indices
  in
  let per_shard = Array.map (fun (s, _, _) -> s) results in
  let finals = Array.map (fun (_, f, _) -> f) results in
  let timeline =
    Option.map
      (fun dt ->
        merge_timeline ~interval:dt
          (Array.map (fun (_, _, t) -> t) results))
      timeline_interval
  in
  {
    merged = merge ~horizon:config.Engine.horizon per_shard;
    per_shard;
    finals;
    timeline;
  }
