(** Online placement policies for the engine's arrival/departure path.

    {!Resolve} is the original batch behaviour: arrivals are admitted by
    the zero-knowledge memory spread and every reallocation epoch re-runs
    the configured placement algorithm over the whole shard. The two
    incremental policies replace that full solve with per-event decisions
    that examine only a handful of candidate bins:

    - {!Greedy_random} follows Stolyar's greedy-random online packing rule
      (PAPERS.md, arxiv 1205.4271): probe bins uniformly at random and
      take the first one whose memory fits, falling back to a first-fit
      scan only when every probe misses.
    - {!Best_fit} is the best-fit-by-remaining variant (in the spirit of
      the occupied-resource minimization of Stolyar–Zhong,
      arxiv 1212.0875): probe the same random candidates but keep the
      feasible one with the least remaining memory after placement,
      falling back to a full best-fit scan when every probe misses. *)

type t = Resolve | Greedy_random | Best_fit

val all : t list
(** Every policy, in declaration order. *)

val to_string : t -> string
(** CLI spellings: ["resolve"], ["greedy-random"], ["best-fit"]. *)

val of_string : string -> t option
(** Case-insensitive inverse of {!to_string}. *)

val valid_names : string list
(** The accepted spellings, in declaration order — for error messages. *)
