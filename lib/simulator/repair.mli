(** Incremental bin state for the engine's online placement policies
    (DESIGN.md §13).

    Tracks, per node, the resident services with their rigid memory
    requirement and estimated aggregate CPU need, plus the derived
    per-node load sums. Every per-node sum is (re)computed by summing the
    node's residents {e in ascending-uid order}, so the sums are a pure
    function of the resident {e sets} — independent of the add/remove/move
    history. That canonical-order rule is what makes the incremental path
    bit-identical to a from-scratch {!rebuild} before every decision
    (locked by [test/test_repair_diff.ml]): float addition is not
    associative, so history-dependent running sums would drift across the
    two paths and flip borderline feasibility comparisons.

    The state also maintains, in O(1) per touched node, the number of
    {e unhealthy} bins — bins whose CPU overload proxy
    [capacity / load < 1 - yield_gap] signals drift beyond the configured
    yield gap — so the engine's fallback test ({!healthy}) never scans the
    platform. All decision functions are deterministic given the state and
    the caller's RNG; none of them records metrics (the engine owns the
    [simulator.*] counters). *)

type entry = { uid : int; mem : float; cpu : float }
(** One resident service: rigid memory requirement and estimated aggregate
    CPU need (un-thresholded, matching the engine's [est_cpu]). *)

type t

val create : platform:Model.Node.t array -> yield_gap:float -> t
(** Empty state over the platform's aggregate memory and CPU capacities
    (2-D layout of {!Model.Service.cpu_dim}/{!Model.Service.mem_dim}). *)

val add : t -> node:int -> entry -> unit
(** Register a resident and refresh that node's sums. *)

val remove : t -> node:int -> uid:int -> unit
(** Unregister (no-op when absent) and refresh that node's sums. *)

val rebuild : t -> (int * entry) array -> unit
(** Replace the whole state with the given [(node, entry)] ground truth —
    the full-recompute reference path, and the resynchronization step
    after a fallback re-solve moved services wholesale. *)

val probe_limit : int
(** Random candidate bins examined per arrival before the deterministic
    full-scan fallback (8, clamped to the node count). *)

val choose :
  t -> Policy.t -> rng:Prng.Rng.t -> mem:float -> int option * int
(** [choose t policy ~rng ~mem] picks the arrival's node:
    {!Policy.Greedy_random} takes the first random probe whose memory
    fits, {!Policy.Best_fit} keeps the feasible probe with the least
    remaining memory; both fall back to a deterministic full scan
    (first-fit / best-fit) when every probe misses, so an arrival is
    rejected ([None]) iff it fits {e no} node — the same criterion as the
    resolve path's admission. Returns the decision plus the number of bins
    examined. Raises [Invalid_argument] on {!Policy.Resolve}, which keeps
    its own admission rule. *)

val repair :
  t ->
  target:int ->
  budget:int ->
  on_move:(uid:int -> node:int -> unit) ->
  int * int
(** [repair t ~target ~budget ~on_move] runs the departure-triggered local
    repair pass: walk the currently CPU-overloaded bins in ascending index
    order — at most {!probe_limit} of them, keeping the pass local even
    when the whole platform is overloaded — and re-pack their residents
    (largest estimated CPU first, ties by uid) into the just-freed
    [target] bin while memory fits and the move does not overload
    [target], up to [budget] moves. [on_move] fires once per re-packed
    service. Returns [(services moved, bins examined)] — the freed bin
    counts as one examination. *)

val healthy : t -> bool
(** O(1): no bin's overload proxy exceeds the yield gap. The engine falls
    back to a full re-solve when this turns false after a repair pass or
    at a reallocation epoch. *)

val mem_load : t -> int -> float
val cpu_load : t -> int -> float
val count : t -> int -> int
(** Read-only views for tests and diagnostics. *)
