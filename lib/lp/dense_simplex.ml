type solution = { objective : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

let feasibility_tol = 1e-7

let pivot_tol = 1e-9

let reduced_cost_tol = 1e-9

(* Shared counter names with the revised solver (lib/obs registration is
   idempotent): whichever solver runs, the same counters move, so bench and
   CI assertions do not care which implementation served a solve. *)
let c_pivots = Obs.Metrics.counter "simplex.pivots"
let c_phase1_iters = Obs.Metrics.counter "simplex.phase1_iterations"
let c_degenerate = Obs.Metrics.counter "simplex.degenerate_pivots"
let c_bland = Obs.Metrics.counter "simplex.bland_switches"

let default_bland_after_degenerate = 16

(* Internal row form: dense coefficients over the structural variables,
   relation and rhs, after lower-bound shifting and rhs sign normalization
   are applied by [prepare]. *)
type row = { mutable a : float array; mutable rel : Problem.relation;
             mutable b : float }

let prepare (p : Problem.t) =
  let n = p.n_vars in
  (* Shift x = x' + lower so that all variables have lower bound 0. *)
  let shift = p.lower in
  let rows =
    List.map
      (fun (cstr : Problem.linear_constraint) ->
        let a = Array.make n 0. in
        List.iter (fun (v, coef) -> a.(v) <- a.(v) +. coef) cstr.coeffs;
        let offset = ref 0. in
        for v = 0 to n - 1 do
          offset := !offset +. (a.(v) *. shift.(v))
        done;
        { a; rel = cstr.relation; b = cstr.rhs -. !offset })
      p.constraints
  in
  (* Finite upper bounds become explicit <= rows (in shifted space the bound
     is upper - lower). *)
  let upper_rows = ref [] in
  for v = n - 1 downto 0 do
    if Float.is_finite p.upper.(v) then begin
      let a = Array.make n 0. in
      a.(v) <- 1.;
      upper_rows := { a; rel = Problem.Le; b = p.upper.(v) -. shift.(v) }
                    :: !upper_rows
    end
  done;
  let rows = Array.of_list (rows @ !upper_rows) in
  (* Normalize to b >= 0. *)
  Array.iter
    (fun r ->
      if r.b < 0. then begin
        r.a <- Array.map (fun x -> -.x) r.a;
        r.b <- -.r.b;
        r.rel <-
          (match r.rel with
          | Problem.Le -> Problem.Ge
          | Problem.Ge -> Problem.Le
          | Problem.Eq -> Problem.Eq)
      end)
    rows;
  rows

(* Column layout of the tableau: [0, n) structural, [n, n + n_slack) slack /
   surplus, [n + n_slack, n_cols) artificial; extra rhs column at index
   n_cols. *)
type tableau = {
  t : float array array;  (* m rows, each of length n_cols + 1 *)
  obj : float array;      (* reduced-cost row, length n_cols + 1 *)
  basis : int array;      (* basic column of each row *)
  n_struct : int;
  art_start : int;        (* first artificial column *)
  n_cols : int;
}

let build_tableau n rows =
  let m = Array.length rows in
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun r ->
      match r.rel with
      | Problem.Le -> incr n_slack
      | Problem.Ge -> incr n_slack; incr n_art
      | Problem.Eq -> incr n_art)
    rows;
  let n_cols = n + !n_slack + !n_art in
  let t = Array.init m (fun _ -> Array.make (n_cols + 1) 0.) in
  let basis = Array.make m (-1) in
  let slack = ref n and art = ref (n + !n_slack) in
  Array.iteri
    (fun i r ->
      Array.blit r.a 0 t.(i) 0 n;
      t.(i).(n_cols) <- r.b;
      (match r.rel with
      | Problem.Le ->
          t.(i).(!slack) <- 1.;
          basis.(i) <- !slack;
          incr slack
      | Problem.Ge ->
          t.(i).(!slack) <- -1.;
          incr slack;
          t.(i).(!art) <- 1.;
          basis.(i) <- !art;
          incr art
      | Problem.Eq ->
          t.(i).(!art) <- 1.;
          basis.(i) <- !art;
          incr art))
    rows;
  {
    t;
    obj = Array.make (n_cols + 1) 0.;
    basis;
    n_struct = n;
    art_start = n + !n_slack;
    n_cols;
  }

(* Returns whether the pivot was degenerate (leaving row rhs ≈ 0): the basis
   changes but the point does not move, the precondition for cycling. *)
let pivot tab ~row ~col =
  Obs.Metrics.incr c_pivots;
  Pivot_clock.tick ();
  let t = tab.t and n_cols = tab.n_cols in
  let degenerate = Float.abs t.(row).(n_cols) <= feasibility_tol in
  if degenerate then Obs.Metrics.incr c_degenerate;
  let pr = t.(row) in
  let piv = pr.(col) in
  for j = 0 to n_cols do
    pr.(j) <- pr.(j) /. piv
  done;
  pr.(col) <- 1.;
  let eliminate target =
    let f = target.(col) in
    if Float.abs f > 0. then begin
      for j = 0 to n_cols do
        target.(j) <- target.(j) -. (f *. pr.(j))
      done;
      target.(col) <- 0.
    end
  in
  Array.iteri (fun i r -> if i <> row then eliminate r) t;
  eliminate tab.obj;
  tab.basis.(row) <- col;
  degenerate

exception Unbounded_direction

(* One simplex phase on the current objective row; [blocked col] excludes
   columns (artificials in phase 2) from entering. Minimization convention:
   entering columns have reduced cost < -tol. Returns unit; raises
   [Unbounded_direction] when a column can decrease forever.

   Anti-cycling: Dantzig pricing switches permanently to Bland's rule either
   after an overall iteration budget (the pre-existing guard) or as soon as
   [bland_after_degenerate] consecutive degenerate pivots occur — the streak
   is the actual cycling signature, so the switch now fires while a cycle is
   still tight instead of after thousands of wasted pivots. *)
let run_phase ?(blocked = fun _ -> false) ?iters_counter
    ?(bland_after_degenerate = default_bland_after_degenerate)
    ~max_iterations tab =
  let m = Array.length tab.t and n_cols = tab.n_cols in
  let bland_after = max 5_000 (10 * (m + n_cols)) in
  let iters = ref 0 in
  let bland = ref false in
  let degenerate_streak = ref 0 in
  let choose_entering () =
    if !bland || !iters > bland_after then begin
      (* Bland: smallest eligible index. *)
      let rec loop j =
        if j >= n_cols then None
        else if (not (blocked j)) && tab.obj.(j) < -.reduced_cost_tol then
          Some j
        else loop (j + 1)
      in
      loop 0
    end
    else begin
      (* Dantzig: most negative reduced cost. *)
      let best = ref (-1) and best_v = ref (-.reduced_cost_tol) in
      for j = 0 to n_cols - 1 do
        if (not (blocked j)) && tab.obj.(j) < !best_v then begin
          best := j;
          best_v := tab.obj.(j)
        end
      done;
      if !best >= 0 then Some !best else None
    end
  in
  let choose_leaving col =
    let best = ref (-1) and best_ratio = ref infinity in
    for i = 0 to m - 1 do
      let a = tab.t.(i).(col) in
      if a > pivot_tol then begin
        let ratio = tab.t.(i).(n_cols) /. a in
        if
          ratio < !best_ratio -. 1e-12
          || (Float.abs (ratio -. !best_ratio) <= 1e-12
              && !best >= 0
              && tab.basis.(i) < tab.basis.(!best))
        then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    if !best >= 0 then Some !best else None
  in
  let rec loop () =
    incr iters;
    (match iters_counter with
    | Some c -> Obs.Metrics.incr c
    | None -> ());
    if !iters > max_iterations then
      failwith "Lp.Dense_simplex: iteration limit exceeded";
    match choose_entering () with
    | None -> ()
    | Some col -> (
        match choose_leaving col with
        | None -> raise Unbounded_direction
        | Some row ->
            let degenerate = pivot tab ~row ~col in
            if degenerate then begin
              incr degenerate_streak;
              if (not !bland) && !degenerate_streak >= bland_after_degenerate
              then begin
                bland := true;
                Obs.Metrics.incr c_bland
              end
            end
            else degenerate_streak := 0;
            loop ())
  in
  loop ()

(* Rebuild the reduced-cost row for cost vector [cost] (length n_cols; rhs
   cell set to 0) priced out against the current basis. *)
let set_objective tab cost =
  let n_cols = tab.n_cols in
  Array.blit cost 0 tab.obj 0 n_cols;
  tab.obj.(n_cols) <- 0.;
  Array.iteri
    (fun i b ->
      let cb = cost.(b) in
      if cb <> 0. then begin
        let row = tab.t.(i) in
        for j = 0 to n_cols do
          tab.obj.(j) <- tab.obj.(j) -. (cb *. row.(j))
        done
      end)
    tab.basis

(* After phase 1, drive artificial variables out of the basis. Rows where no
   non-artificial pivot exists are redundant; their artificial stays basic at
   value 0, which is harmless because artificials are blocked in phase 2. *)
let expel_artificials tab =
  let m = Array.length tab.t in
  for i = 0 to m - 1 do
    if tab.basis.(i) >= tab.art_start then begin
      let col = ref (-1) in
      let j = ref 0 in
      while !col < 0 && !j < tab.art_start do
        if Float.abs tab.t.(i).(!j) > 1e-7 then col := !j;
        incr j
      done;
      if !col >= 0 then ignore (pivot tab ~row:i ~col:!col : bool)
    end
  done

let solve ?max_iterations ?bland_after_degenerate (p : Problem.t) =
  let n = p.n_vars in
  let rows = prepare p in
  let tab = build_tableau n rows in
  let m = Array.length tab.t in
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> max 20_000 (50 * (m + tab.n_cols))
  in
  (* Phase 1: minimize the sum of artificials. *)
  let phase1_cost = Array.make tab.n_cols 0. in
  for j = tab.art_start to tab.n_cols - 1 do
    phase1_cost.(j) <- 1.
  done;
  set_objective tab phase1_cost;
  (match
     run_phase ~iters_counter:c_phase1_iters ?bland_after_degenerate
       ~max_iterations tab
   with
  | () -> ()
  | exception Unbounded_direction ->
      (* Phase 1 objective is bounded below by 0; cannot happen. *)
      assert false);
  let phase1_value = -.tab.obj.(tab.n_cols) in
  if phase1_value > feasibility_tol then Infeasible
  else begin
    expel_artificials tab;
    (* Phase 2 on the real objective, in minimization convention. *)
    let sign = match p.sense with Problem.Minimize -> 1. | Maximize -> -1. in
    let phase2_cost = Array.make tab.n_cols 0. in
    (* Costs apply to shifted variables; the constant sign *. c'lower is
       re-added when reporting. *)
    for v = 0 to n - 1 do
      phase2_cost.(v) <- sign *. p.objective.(v)
    done;
    set_objective tab phase2_cost;
    let blocked j = j >= tab.art_start in
    match run_phase ~blocked ?bland_after_degenerate ~max_iterations tab with
    | exception Unbounded_direction -> Unbounded
    | () ->
        let x = Array.copy p.lower in
        Array.iteri
          (fun i b ->
            if b < n then begin
              let v = tab.t.(i).(tab.n_cols) in
              let v = if Float.abs v < feasibility_tol then 0. else v in
              x.(b) <- x.(b) +. v
            end)
          tab.basis;
        (* Clamp tiny bound violations from floating-point drift. *)
        for v = 0 to n - 1 do
          if x.(v) < p.lower.(v) then x.(v) <- p.lower.(v);
          if x.(v) > p.upper.(v) then x.(v) <- p.upper.(v)
        done;
        Optimal { objective = Problem.objective_value p x; x }
  end
