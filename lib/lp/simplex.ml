type solution = { objective : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

let feasibility_tol = 1e-7

let pivot_tol = 1e-9

let reduced_cost_tol = 1e-9

(* Step sizes at or below this are degenerate pivots: the basis changes but
   the point does not move. *)
let degenerate_step = 1e-9

(* Consecutive degenerate pivots before pricing switches permanently to
   Bland's rule for the rest of the phase (the streak is the cycling
   signature — see Dense_simplex for the same policy on the oracle). *)
let bland_after_degenerate = 16

(* Eta-file length at which the dense-LU backend (VMALLOC_DENSE_LU=1)
   refactorizes from scratch. Each raw eta both slows FTRAN/BTRAN and
   compounds rounding error, so the file is bounded; a dense LU of the
   (small) basis every [refactor_every] pivots costs
   O(m^3 / refactor_every) amortized flops per pivot. *)
let refactor_every = 64

(* The sparse backend refactorizes adaptively instead: after
   [ft_update_cap] Forrest-Tomlin updates (each appends one row eta), or
   as soon as update fill pushes the stored factor past
   [fill_growth_limit] times its fresh size — whichever a given basis
   sequence hits first. Both triggers are pure functions of the pivot
   sequence, so the refactorization schedule is deterministic. *)
let ft_update_cap = 100
let fill_growth_limit = 3

(* Work counters (lib/obs). The first three share names with the dense
   oracle (registration is idempotent), so bench/CI assertions hold
   whichever solver serves a solve; the rest only move here. *)
let c_pivots = Obs.Metrics.counter "simplex.pivots"
let c_phase1_iters = Obs.Metrics.counter "simplex.phase1_iterations"
let c_degenerate = Obs.Metrics.counter "simplex.degenerate_pivots"
let c_warm = Obs.Metrics.counter "simplex.warm_starts"
let c_refactor = Obs.Metrics.counter "simplex.refactorizations"
let c_bland = Obs.Metrics.counter "simplex.bland_switches"
let c_warm_fallbacks = Obs.Metrics.counter "simplex.warm_fallbacks"
let c_ft = Obs.Metrics.counter "simplex.ft_updates"
let c_fill = Obs.Metrics.counter "simplex.lu_fill_in"
let c_lu_flops = Obs.Metrics.counter "simplex.lu_flops"

(* Nonbasic-at-lower / nonbasic-at-upper / basic, per column. *)
let st_lower = 0
let st_upper = 1
let st_basic = 2

(* A basis is only meaningful against the column layout it was captured
   from: same variable count and same constraint-relation sequence. The key
   fingerprints that layout so [solve ?warm_basis] can reject (and fall back
   to a cold start on) a basis from a structurally different problem. *)
type basis = {
  bas_key : int;
  bas_m : int;
  bas_cols : int array;  (* basic column of each row *)
  bas_stat : int array;  (* status of every column *)
}

let layout_key (p : Problem.t) =
  List.fold_left
    (fun acc (cstr : Problem.linear_constraint) ->
      let code =
        match cstr.relation with Problem.Le -> 1 | Ge -> 2 | Eq -> 3
      in
      ((acc * 31) + code) land 0x3FFFFFFF)
    ((p.n_vars * 131) land 0x3FFFFFFF)
    p.constraints

(* Standard form. Columns: [0, n) structural (CSC), [n, n + m) logicals
   (one +1 entry per row; bounds encode the relation), [n + m, n + 2m)
   artificials (one +1 entry; fixed at 0 outside phase 1). Lower bounds are
   shifted out of the structural variables; finite upper bounds stay
   variable bounds (never rows — this is where the dense oracle pays and
   the revised solver does not). Crucially the layout depends only on
   [n_vars] and the relation sequence, never on the rhs, so a basis carries
   over between problems that differ only in bounds/rhs (yield probes,
   branch-and-bound children). *)
type std = {
  n : int;
  m : int;
  n_cols : int;           (* n + 2m *)
  art_start : int;        (* n + m *)
  csc : Problem.Csc.matrix;
  shift : float array;    (* original lower bounds, length n *)
  b : float array;        (* rhs after shifting, length m *)
  lo : float array;       (* working bounds, length n_cols *)
  up : float array;
  cost : float array;     (* phase-2 minimization costs, length n_cols *)
}

let build (p : Problem.t) =
  let n = p.n_vars in
  let csc = Problem.Csc.of_problem p in
  let m = csc.Problem.Csc.n_rows in
  let n_cols = n + (2 * m) in
  let shift = p.lower in
  let b = Array.make m 0. in
  List.iteri
    (fun i (cstr : Problem.linear_constraint) ->
      let offset =
        List.fold_left
          (fun acc (v, coef) -> acc +. (coef *. shift.(v)))
          0. cstr.coeffs
      in
      b.(i) <- cstr.rhs -. offset)
    p.constraints;
  let lo = Array.make n_cols 0. and up = Array.make n_cols 0. in
  for v = 0 to n - 1 do
    lo.(v) <- 0.;
    up.(v) <- p.upper.(v) -. shift.(v)
  done;
  List.iteri
    (fun i (cstr : Problem.linear_constraint) ->
      let j = n + i in
      match cstr.relation with
      | Problem.Le -> lo.(j) <- 0.; up.(j) <- infinity
      | Problem.Ge -> lo.(j) <- neg_infinity; up.(j) <- 0.
      | Problem.Eq -> lo.(j) <- 0.; up.(j) <- 0.)
    p.constraints;
  (* Artificials fixed at 0; phase 1 widens exactly the ones it uses. *)
  let sign = match p.sense with Problem.Minimize -> 1. | Maximize -> -1. in
  let cost = Array.make n_cols 0. in
  for v = 0 to n - 1 do
    cost.(v) <- sign *. p.objective.(v)
  done;
  { n; m; n_cols; art_start = n + m; csc; shift; b; lo; up; cost }

(* Column access unifying CSC structural columns with the implicit unit
   columns of logicals and artificials. *)
let iter_col std j f =
  if j < std.n then Problem.Csc.iter_col std.csc j f
  else f ((j - std.n) mod std.m) 1.

let col_dot std j w =
  if j < std.n then Problem.Csc.col_dot std.csc j w
  else w.((j - std.n) mod std.m)

(* Dense LU with partial pivoting of the m x m basis matrix — the
   VMALLOC_DENSE_LU=1 backend, kept as the factorization-level
   differential oracle. [lu] stores L (unit diagonal, below) and U (on and
   above); [piv.(k)] is the row k was swapped with at step k; [flops]
   counts the multiply-subtracts the elimination spent. *)
module Lu = struct
  type t = { lu : float array array; piv : int array; size : int;
             flops : int }

  exception Singular

  let factor m fill =
    let a = Array.init m (fun _ -> Array.make m 0.) in
    fill a;
    (* Per-column magnitude of the original matrix: the singularity test
       below is relative to it, so a well-conditioned but small-magnitude
       basis (e.g. one from a row-scaled LP) factors fine where the old
       absolute 1e-11 cutoff spuriously rejected it. *)
    let scale = Array.make m 0. in
    for j = 0 to m - 1 do
      for i = 0 to m - 1 do
        let av = Float.abs a.(i).(j) in
        if av > scale.(j) then scale.(j) <- av
      done
    done;
    let piv = Array.make m 0 in
    let flops = ref 0 in
    for k = 0 to m - 1 do
      let best = ref k in
      for i = k + 1 to m - 1 do
        if Float.abs a.(i).(k) > Float.abs a.(!best).(k) then best := i
      done;
      if scale.(k) = 0. || Float.abs a.(!best).(k) < 1e-11 *. scale.(k)
      then raise Singular;
      piv.(k) <- !best;
      if !best <> k then begin
        let t = a.(k) in
        a.(k) <- a.(!best);
        a.(!best) <- t
      end;
      let ak = a.(k) in
      let akk = ak.(k) in
      for i = k + 1 to m - 1 do
        let ai = a.(i) in
        let f = ai.(k) /. akk in
        ai.(k) <- f;
        if f <> 0. then begin
          flops := !flops + 1 + (m - 1 - k);
          for j = k + 1 to m - 1 do
            ai.(j) <- ai.(j) -. (f *. ak.(j))
          done
        end
      done
    done;
    { lu = a; piv; size = m; flops = !flops }

  (* v := B^-1 v  (PB = LU: apply P, solve L, solve U). *)
  let ftran t v =
    let m = t.size and a = t.lu in
    for k = 0 to m - 1 do
      let p = t.piv.(k) in
      if p <> k then begin
        let x = v.(k) in
        v.(k) <- v.(p);
        v.(p) <- x
      end
    done;
    for k = 0 to m - 1 do
      let vk = v.(k) in
      if vk <> 0. then
        for i = k + 1 to m - 1 do
          v.(i) <- v.(i) -. (a.(i).(k) *. vk)
        done
    done;
    for k = m - 1 downto 0 do
      let s = ref v.(k) in
      let ak = a.(k) in
      for j = k + 1 to m - 1 do
        s := !s -. (ak.(j) *. v.(j))
      done;
      v.(k) <- !s /. ak.(k)
    done

  (* v := B^-T v  (solve U^T, solve L^T, apply P^-1). *)
  let btran t v =
    let m = t.size and a = t.lu in
    for k = 0 to m - 1 do
      let s = ref v.(k) in
      for j = 0 to k - 1 do
        s := !s -. (a.(j).(k) *. v.(j))
      done;
      v.(k) <- !s /. a.(k).(k)
    done;
    for k = m - 1 downto 0 do
      let s = ref v.(k) in
      for i = k + 1 to m - 1 do
        s := !s -. (a.(i).(k) *. v.(i))
      done;
      v.(k) <- !s
    done;
    for k = m - 1 downto 0 do
      let p = t.piv.(k) in
      if p <> k then begin
        let x = v.(k) in
        v.(k) <- v.(p);
        v.(p) <- x
      end
    done
end

(* One product-form update: after the pivot B_new^-1 = E B_old^-1 where E is
   the identity with column [e_row] replaced by the eta vector derived from
   the FTRANed entering column [d] ([e_piv] = d.(e_row), off-pivot nonzeros
   in [e_idx]/[e_val]). *)
type eta = {
  e_row : int;
  e_piv : float;
  e_idx : int array;
  e_val : float array;
}

let dummy_eta = { e_row = 0; e_piv = 1.; e_idx = [||]; e_val = [||] }

(* Basis-inverse maintenance backend. The default is {!Sparse_lu}
   (Markowitz LU, Forrest-Tomlin updates, adaptive refactorization);
   [VMALLOC_DENSE_LU=1] selects the original dense LU + raw eta file,
   kept verbatim as the factorization-level differential oracle. *)
type backend =
  | Dense of { mutable lu : Lu.t; etas : eta array; mutable n_etas : int }
  | Sparse of { mutable slu : Sparse_lu.t }

type state = {
  std : std;
  bas : int array;        (* m: basic column per row *)
  stat : int array;       (* n_cols *)
  xb : float array;       (* m: value of bas.(i) *)
  rep : backend;
}

let apply_eta_fwd eta v =
  let t = v.(eta.e_row) /. eta.e_piv in
  if t <> 0. then begin
    let idx = eta.e_idx and vals = eta.e_val in
    for k = 0 to Array.length idx - 1 do
      v.(idx.(k)) <- v.(idx.(k)) -. (vals.(k) *. t)
    done
  end;
  v.(eta.e_row) <- t

let apply_eta_rev eta v =
  let idx = eta.e_idx and vals = eta.e_val in
  let acc = ref v.(eta.e_row) in
  for k = 0 to Array.length idx - 1 do
    acc := !acc -. (v.(idx.(k)) *. vals.(k))
  done;
  v.(eta.e_row) <- !acc /. eta.e_piv

let ftran st v =
  match st.rep with
  | Dense d ->
      Lu.ftran d.lu v;
      for k = 0 to d.n_etas - 1 do
        apply_eta_fwd d.etas.(k) v
      done
  | Sparse s -> Sparse_lu.ftran s.slu v

let btran st v =
  match st.rep with
  | Dense d ->
      for k = d.n_etas - 1 downto 0 do
        apply_eta_rev d.etas.(k) v
      done;
      Lu.btran d.lu v
  | Sparse s -> Sparse_lu.btran s.slu v

let nb_val st j =
  if st.stat.(j) = st_upper then st.std.up.(j) else st.std.lo.(j)

let sparse_factor_basis std bas =
  Sparse_lu.factor ~size:std.m ~col:(fun k f -> iter_col std bas.(k) f) ()

let dense_factor_basis std bas =
  Lu.factor std.m (fun bmat ->
      for k = 0 to std.m - 1 do
        iter_col std bas.(k) (fun i a -> bmat.(i).(k) <- bmat.(i).(k) +. a)
      done)

(* b - sum over nonbasic j of A_j x_j: the rhs of B xB = r. *)
let residual st =
  let std = st.std in
  let r = Array.copy std.b in
  for j = 0 to std.n_cols - 1 do
    if st.stat.(j) <> st_basic then begin
      let v = nb_val st j in
      if v <> 0. then iter_col std j (fun i a -> r.(i) <- r.(i) -. (a *. v))
    end
  done;
  r

(* xB = B^-1 residual, through the backend's current factor. *)
let compute_xb st =
  let r = residual st in
  ftran st r;
  Array.blit r 0 st.xb 0 st.std.m

(* xB recomputed through one fresh sparse factorization of the current
   basis: a pure function of the discrete (bas, stat) state, independent
   of the backend and of the eta history that led here. Called at phase
   boundaries and optimal endpoints by BOTH backends — this is what makes
   the sparse default and the VMALLOC_DENSE_LU leg return
   bitwise-identical solutions whenever they pivot through the same
   bases. Deliberately unmetered: only backend factorizations count as
   refactorizations. *)
let canonicalize_xb st =
  match sparse_factor_basis st.std st.bas with
  | slu ->
      let r = residual st in
      Sparse_lu.ftran slu r;
      Array.blit r 0 st.xb 0 st.std.m
  | exception Sparse_lu.Singular -> compute_xb st

(* Right after a backend (re)factorization the sparse backend's
   [compute_xb] already equals the canonical recompute (same
   factorization of the same basis, no etas yet), so installs skip the
   extra factor. *)
let canonicalize_xb_fresh st =
  match st.rep with
  | Dense _ -> canonicalize_xb st
  | Sparse _ -> compute_xb st

let refactor st =
  Obs.Metrics.incr c_refactor;
  match st.rep with
  | Dense d ->
      let lu = dense_factor_basis st.std st.bas in
      Obs.Metrics.add c_lu_flops lu.Lu.flops;
      d.lu <- lu;
      d.n_etas <- 0
  | Sparse s ->
      let slu = sparse_factor_basis st.std st.bas in
      Obs.Metrics.add c_lu_flops (Sparse_lu.flops slu);
      Obs.Metrics.add c_fill (Sparse_lu.fill_in slu);
      s.slu <- slu

(* Record one basis change with the backend: a raw eta (dense) or a
   Forrest-Tomlin update (sparse), refactorizing on the backend's
   trigger — eta-file length for dense; update count, fill growth, or a
   degenerate replacement diagonal for sparse. *)
let push_eta st r d_col =
  match st.rep with
  | Dense d ->
      let cnt = ref 0 in
      for i = 0 to Array.length d_col - 1 do
        if i <> r && Float.abs d_col.(i) > 1e-12 then incr cnt
      done;
      let idx = Array.make !cnt 0 and vals = Array.make !cnt 0. in
      let k = ref 0 in
      for i = 0 to Array.length d_col - 1 do
        if i <> r && Float.abs d_col.(i) > 1e-12 then begin
          idx.(!k) <- i;
          vals.(!k) <- d_col.(i);
          incr k
        end
      done;
      d.etas.(d.n_etas) <- { e_row = r; e_piv = d_col.(r); e_idx = idx;
                             e_val = vals };
      d.n_etas <- d.n_etas + 1;
      if d.n_etas >= refactor_every then begin
        refactor st;
        compute_xb st
      end
  | Sparse s -> (
      match Sparse_lu.update s.slu ~pos:r with
      | () ->
          Obs.Metrics.incr c_ft;
          let slu = s.slu in
          if
            Sparse_lu.updates slu >= ft_update_cap
            || Sparse_lu.nnz slu
               > fill_growth_limit
                 * (Sparse_lu.basis_nnz slu + Sparse_lu.fill_in slu
                   + st.std.m)
          then begin
            refactor st;
            compute_xb st
          end
      | exception Sparse_lu.Unstable ->
          refactor st;
          compute_xb st)

(* FTRAN of column [j]. Only ever called on entering columns, each
   followed by at most one [push_eta] before the next solve, so the
   sparse backend stashes the Forrest-Tomlin spike here. *)
let ftran_col st j =
  let v = Array.make st.std.m 0. in
  iter_col st.std j (fun i a -> v.(i) <- v.(i) +. a);
  (match st.rep with
  | Dense _ -> ftran st v
  | Sparse s -> Sparse_lu.ftran_entering s.slu v);
  v

let unit_btran st r =
  let v = Array.make st.std.m 0. in
  v.(r) <- 1.;
  btran st v;
  v

(* Reduced costs d_j = c_j - y . A_j with y = B^-T c_B, for every nonbasic
   column (basic entries left at 0). Recomputed from scratch each pricing
   round: O(m^2) for the BTRAN plus O(nnz) for the dot products, which the
   FTRAN of the chosen column matches anyway. *)
let reduced_costs st cost =
  let std = st.std in
  let y = Array.make std.m 0. in
  for i = 0 to std.m - 1 do
    y.(i) <- cost.(st.bas.(i))
  done;
  btran st y;
  let d = Array.make std.n_cols 0. in
  for j = 0 to std.n_cols - 1 do
    if st.stat.(j) <> st_basic then d.(j) <- cost.(j) -. col_dot std j y
  done;
  d

exception Iteration_limit

type phase_outcome = P_optimal | P_unbounded

(* Primal bounded-variable simplex on cost vector [cost]. Artificials never
   enter (their bounds are fixed outside phase 1, and inside phase 1 they
   only leave). Dantzig pricing; permanent switch to Bland's rule after a
   degenerate-pivot streak or an iteration budget. *)
let primal_phase st ~cost ?iters_counter ~max_iterations () =
  let std = st.std in
  let m = std.m in
  let bland_after_iters = max 5_000 (10 * (m + std.n_cols)) in
  let iters = ref 0 in
  let bland = ref false in
  let streak = ref 0 in
  let fixed j = std.up.(j) -. std.lo.(j) <= 0. in
  let rec loop () =
    incr iters;
    (match iters_counter with
    | Some c -> Obs.Metrics.incr c
    | None -> ());
    if !iters > max_iterations then raise Iteration_limit;
    if (not !bland) && !iters > bland_after_iters then begin
      bland := true;
      Obs.Metrics.incr c_bland
    end;
    let d = reduced_costs st cost in
    let eligible j =
      j < std.art_start
      && st.stat.(j) <> st_basic
      && (not (fixed j))
      && ((st.stat.(j) = st_lower && d.(j) < -.reduced_cost_tol)
         || (st.stat.(j) = st_upper && d.(j) > reduced_cost_tol))
    in
    let entering =
      if !bland then begin
        let rec find j =
          if j >= std.art_start then None
          else if eligible j then Some j
          else find (j + 1)
        in
        find 0
      end
      else begin
        let best = ref (-1) and best_v = ref reduced_cost_tol in
        for j = 0 to std.art_start - 1 do
          if eligible j && Float.abs d.(j) > !best_v then begin
            best := j;
            best_v := Float.abs d.(j)
          end
        done;
        if !best >= 0 then Some !best else None
      end
    in
    match entering with
    | None -> P_optimal
    | Some j ->
        let from_lower = st.stat.(j) = st_lower in
        let dir = if from_lower then 1. else -1. in
        let d_col = ftran_col st j in
        (* Ratio test: x_j moves by t >= 0 in direction [dir]; basic i
           changes at rate -(dir * d_col.(i)). *)
        let best = ref (-1) and best_r = ref infinity
        and best_a = ref 0. and best_bound = ref st_lower in
        for i = 0 to m - 1 do
          let a = dir *. d_col.(i) in
          if a > pivot_tol then begin
            let lo_i = std.lo.(st.bas.(i)) in
            if Float.is_finite lo_i then begin
              let r = (st.xb.(i) -. lo_i) /. a in
              let r = if r < 0. then 0. else r in
              if
                r < !best_r -. 1e-12
                || (r <= !best_r +. 1e-12
                    && !best >= 0
                    && (if !bland then st.bas.(i) < st.bas.(!best)
                       else
                         a > !best_a +. 1e-12
                         || (a >= !best_a -. 1e-12
                            && st.bas.(i) < st.bas.(!best))))
              then begin
                best := i;
                best_r := r;
                best_a := a;
                best_bound := st_lower
              end
            end
          end
          else if a < -.pivot_tol then begin
            let up_i = std.up.(st.bas.(i)) in
            if Float.is_finite up_i then begin
              let r = (up_i -. st.xb.(i)) /. -.a in
              let r = if r < 0. then 0. else r in
              let abs_a = -.a in
              if
                r < !best_r -. 1e-12
                || (r <= !best_r +. 1e-12
                    && !best >= 0
                    && (if !bland then st.bas.(i) < st.bas.(!best)
                       else
                         abs_a > !best_a +. 1e-12
                         || (abs_a >= !best_a -. 1e-12
                            && st.bas.(i) < st.bas.(!best))))
              then begin
                best := i;
                best_r := r;
                best_a := abs_a;
                best_bound := st_upper
              end
            end
          end
        done;
        let range = std.up.(j) -. std.lo.(j) in
        if Float.min range !best_r = infinity then P_unbounded
        else if range <= !best_r then begin
          (* Bound flip: j runs to its opposite bound, no basis change. *)
          for i = 0 to m - 1 do
            st.xb.(i) <- st.xb.(i) -. (dir *. d_col.(i) *. range)
          done;
          st.stat.(j) <- (if from_lower then st_upper else st_lower);
          streak := 0;
          loop ()
        end
        else begin
          let t = !best_r in
          let r = !best in
          for i = 0 to m - 1 do
            st.xb.(i) <- st.xb.(i) -. (dir *. d_col.(i) *. t)
          done;
          let l = st.bas.(r) in
          st.bas.(r) <- j;
          st.xb.(r) <- nb_val st j +. (dir *. t);
          st.stat.(j) <- st_basic;
          st.stat.(l) <- !best_bound;
          Obs.Metrics.incr c_pivots;
          Pivot_clock.tick ();
          if t <= degenerate_step then begin
            Obs.Metrics.incr c_degenerate;
            incr streak;
            if (not !bland) && !streak >= bland_after_degenerate then begin
              bland := true;
              Obs.Metrics.incr c_bland
            end
          end
          else streak := 0;
          push_eta st r d_col;
          loop ()
        end
  in
  loop ()

(* Dual simplex: restore primal feasibility while keeping the (given) cost
   vector's dual feasibility — the warm-start workhorse. Leaving row by
   largest bound violation; entering by the bounded-variable dual ratio test
   (min |d_j| / |alpha_j| over sign-eligible nonbasics). *)
let dual_phase st ~cost ~max_iterations =
  let std = st.std in
  let m = std.m in
  let iters = ref 0 in
  let fixed j = std.up.(j) -. std.lo.(j) <= 0. in
  let rec loop () =
    incr iters;
    if !iters > max_iterations then raise Iteration_limit;
    let r = ref (-1) and viol = ref feasibility_tol in
    for i = 0 to m - 1 do
      let j = st.bas.(i) in
      let v = Float.max (std.lo.(j) -. st.xb.(i)) (st.xb.(i) -. std.up.(j)) in
      if v > !viol then begin
        r := i;
        viol := v
      end
    done;
    if !r < 0 then `Feasible
    else begin
      let r = !r in
      let jl = st.bas.(r) in
      let sigma = if st.xb.(r) < std.lo.(jl) then 1. else -1. in
      let w = unit_btran st r in
      let d = reduced_costs st cost in
      let best = ref (-1) and best_ratio = ref infinity
      and best_alpha = ref 0. in
      for j = 0 to std.n_cols - 1 do
        if st.stat.(j) <> st_basic && not (fixed j) then begin
          let alpha = sigma *. col_dot std j w in
          if
            (st.stat.(j) = st_lower && alpha < -.pivot_tol)
            || (st.stat.(j) = st_upper && alpha > pivot_tol)
          then begin
            let ratio = Float.abs d.(j) /. Float.abs alpha in
            if
              ratio < !best_ratio -. 1e-12
              || (ratio <= !best_ratio +. 1e-12
                  && Float.abs alpha > Float.abs !best_alpha +. 1e-12)
            then begin
              best := j;
              best_ratio := ratio;
              best_alpha := alpha
            end
          end
        end
      done;
      if !best < 0 then `Infeasible
      else begin
        let j = !best in
        let d_col = ftran_col st j in
        let alpha_r = d_col.(r) in
        if Float.abs alpha_r < 1e-11 then
          (* BTRAN/FTRAN numerical disagreement; treat as a failed warm
             start rather than risking a wrong-direction step. *)
          raise Iteration_limit
        else begin
          let beta = if sigma > 0. then std.lo.(jl) else std.up.(jl) in
          let t = (st.xb.(r) -. beta) /. alpha_r in
          for i = 0 to m - 1 do
            st.xb.(i) <- st.xb.(i) -. (t *. d_col.(i))
          done;
          st.bas.(r) <- j;
          st.xb.(r) <- nb_val st j +. t;
          st.stat.(j) <- st_basic;
          st.stat.(jl) <- (if sigma > 0. then st_lower else st_upper);
          Obs.Metrics.incr c_pivots;
          Pivot_clock.tick ();
          if Float.abs t <= degenerate_step then Obs.Metrics.incr c_degenerate;
          push_eta st r d_col;
          loop ()
        end
      end
    end
  in
  loop ()

(* After phase 1, drive artificials out of the basis where a non-artificial
   pivot exists (zero-step exchange); truly redundant rows keep their
   artificial basic at 0, harmless because artificial bounds are [0,0] from
   here on. *)
let expel_artificials st =
  let std = st.std in
  for r = 0 to std.m - 1 do
    if st.bas.(r) >= std.art_start then begin
      let w = unit_btran st r in
      let j = ref (-1) and k = ref 0 in
      while !j < 0 && !k < std.art_start do
        if st.stat.(!k) <> st_basic && Float.abs (col_dot std !k w) > 1e-7
        then j := !k;
        incr k
      done;
      if !j >= 0 then begin
        let jj = !j in
        let d_col = ftran_col st jj in
        if Float.abs d_col.(r) > 1e-9 then begin
          let art = st.bas.(r) in
          st.bas.(r) <- jj;
          st.xb.(r) <- nb_val st jj;
          st.stat.(jj) <- st_basic;
          st.stat.(art) <- st_lower;
          Obs.Metrics.incr c_pivots;
          Pivot_clock.tick ();
          Obs.Metrics.incr c_degenerate;
          push_eta st r d_col
        end
      end
    end
  done

let capture key st =
  {
    bas_key = key;
    bas_m = st.std.m;
    bas_cols = Array.copy st.bas;
    bas_stat = Array.copy st.stat;
  }

let extract (p : Problem.t) st =
  let std = st.std in
  let x = Array.copy p.lower in
  for v = 0 to std.n - 1 do
    if st.stat.(v) = st_upper then x.(v) <- p.upper.(v)
  done;
  for i = 0 to std.m - 1 do
    let j = st.bas.(i) in
    if j < std.n then begin
      let v = st.xb.(i) in
      let v = if Float.abs v < feasibility_tol then 0. else v in
      x.(j) <- p.lower.(j) +. v
    end
  done;
  (* Clamp tiny bound violations from floating-point drift. *)
  for v = 0 to std.n - 1 do
    if x.(v) < p.lower.(v) then x.(v) <- p.lower.(v);
    if x.(v) > p.upper.(v) then x.(v) <- p.upper.(v)
  done;
  Optimal { objective = Problem.objective_value p x; x }

let default_iterations std = max 20_000 (50 * (std.m + std.n_cols))

(* VMALLOC_DENSE_LU=1 keeps the revised method but routes basis
   maintenance through the original dense LU + raw eta file — the
   factorization-level differential oracle (the whole-solver oracle stays
   VMALLOC_DENSE_LP=1). Read per solve so tests can toggle it. *)
let dense_lu_requested () =
  match Sys.getenv_opt "VMALLOC_DENSE_LU" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Cold start: classic two-phase. The initial basis is the logical of every
   row whose rhs its bounds admit, else that row's artificial widened to the
   rhs's side ([0, inf) with cost +1, or (-inf, 0] with cost -1) — the
   column layout itself never depends on the rhs. *)
let solve_cold ~key ~max_iterations (p : Problem.t) std =
  let m = std.m in
  let stat = Array.make std.n_cols st_lower in
  for j = 0 to std.n_cols - 1 do
    if not (Float.is_finite std.lo.(j)) then stat.(j) <- st_upper
  done;
  let bas = Array.make m 0 in
  let xb = Array.make m 0. in
  let need_phase1 = ref false in
  let phase1_cost = Array.make std.n_cols 0. in
  for i = 0 to m - 1 do
    let logical = std.n + i and art = std.n + m + i in
    let bi = std.b.(i) in
    if std.lo.(logical) -. 1e-12 <= bi && bi <= std.up.(logical) +. 1e-12
    then begin
      bas.(i) <- logical;
      stat.(logical) <- st_basic
    end
    else begin
      need_phase1 := true;
      bas.(i) <- art;
      stat.(art) <- st_basic;
      if bi >= 0. then begin
        std.lo.(art) <- 0.;
        std.up.(art) <- infinity;
        phase1_cost.(art) <- 1.
      end
      else begin
        std.lo.(art) <- neg_infinity;
        std.up.(art) <- 0.;
        phase1_cost.(art) <- -1.
      end
    end;
    xb.(i) <- bi
  done;
  (* The initial basis matrix is the identity (logicals and artificials
     are unit columns), so its factorization is near-free under either
     backend. Neither is metered — parity with the warm path, where only
     genuine refactorizations tick the counter. *)
  let rep =
    if dense_lu_requested () then
      Dense
        { lu = dense_factor_basis std bas;
          etas = Array.make refactor_every dummy_eta;
          n_etas = 0 }
    else Sparse { slu = sparse_factor_basis std bas }
  in
  let st = { std; bas; stat; xb; rep } in
  if !need_phase1 then begin
    (match
       primal_phase st ~cost:phase1_cost ~iters_counter:c_phase1_iters
         ~max_iterations ()
     with
    | P_optimal -> ()
    | P_unbounded ->
        (* Phase 1 objective is bounded below by 0; cannot happen. *)
        assert false);
    (* The feasibility verdict below compares xb against a tolerance;
       canonicalize first so the verdict is a function of the discrete
       basis, not of the backend's eta history. *)
    canonicalize_xb st;
    let infeas = ref 0. in
    for i = 0 to m - 1 do
      if st.bas.(i) >= std.art_start then
        infeas := !infeas +. Float.abs st.xb.(i)
    done;
    if !infeas > feasibility_tol then (Infeasible, None)
    else begin
      (* Pin every artificial back to [0,0] and clear it from the basis
         where possible before phase 2. *)
      for i = 0 to m - 1 do
        let art = std.n + m + i in
        std.lo.(art) <- 0.;
        std.up.(art) <- 0.
      done;
      expel_artificials st;
      match primal_phase st ~cost:std.cost ~max_iterations () with
      | P_unbounded -> (Unbounded, None)
      | P_optimal ->
          canonicalize_xb st;
          (extract p st, Some (capture key st))
    end
  end
  else
    match primal_phase st ~cost:std.cost ~max_iterations () with
    | P_unbounded -> (Unbounded, None)
    | P_optimal ->
        canonicalize_xb st;
        (extract p st, Some (capture key st))

exception Incompatible_basis

(* Warm start: install the basis, refactorize, restore dual feasibility of
   the phase-2 costs by bound-flipping nonbasics where needed, then run the
   dual simplex until primal feasible (or proven infeasible) and finish with
   a primal clean-up phase. Any structural mismatch or numerical trouble
   raises and the caller falls back to a cold start. *)
let solve_warm ~key ~max_iterations (p : Problem.t) std (bz : basis) =
  if bz.bas_key <> key || bz.bas_m <> std.m
     || Array.length bz.bas_stat <> std.n_cols
  then raise Incompatible_basis;
  let m = std.m in
  let stat = Array.copy bz.bas_stat in
  let bas = Array.copy bz.bas_cols in
  let seen = Array.make std.n_cols false in
  Array.iter
    (fun j ->
      if j < 0 || j >= std.n_cols || seen.(j) || stat.(j) <> st_basic then
        raise Incompatible_basis;
      seen.(j) <- true)
    bas;
  let basic_count = ref 0 in
  for j = 0 to std.n_cols - 1 do
    match stat.(j) with
    | s when s = st_basic -> incr basic_count
    | s when s = st_lower ->
        if not (Float.is_finite std.lo.(j)) then raise Incompatible_basis
    | s when s = st_upper ->
        if not (Float.is_finite std.up.(j)) then raise Incompatible_basis
    | _ -> raise Incompatible_basis
  done;
  if !basic_count <> m then raise Incompatible_basis;
  Obs.Metrics.incr c_refactor;
  let rep =
    if dense_lu_requested () then begin
      let lu = dense_factor_basis std bas in
      Obs.Metrics.add c_lu_flops lu.Lu.flops;
      Dense
        { lu; etas = Array.make refactor_every dummy_eta; n_etas = 0 }
    end
    else begin
      let slu = sparse_factor_basis std bas in
      Obs.Metrics.add c_lu_flops (Sparse_lu.flops slu);
      Obs.Metrics.add c_fill (Sparse_lu.fill_in slu);
      Sparse { slu }
    end
  in
  let st = { std; bas; stat; xb = Array.make m 0.; rep } in
  canonicalize_xb_fresh st;
  (* Bound-flip nonbasics whose reduced cost has the wrong sign for their
     bound; a variable with no opposite finite bound cannot be repaired. *)
  let d = reduced_costs st std.cost in
  let flips = ref 0 in
  for j = 0 to std.n_cols - 1 do
    if st.stat.(j) = st_lower && d.(j) < -.feasibility_tol then begin
      if not (Float.is_finite std.up.(j)) then raise Incompatible_basis;
      st.stat.(j) <- st_upper;
      incr flips
    end
    else if st.stat.(j) = st_upper && d.(j) > feasibility_tol then begin
      if not (Float.is_finite std.lo.(j)) then raise Incompatible_basis;
      st.stat.(j) <- st_lower;
      incr flips
    end
  done;
  if !flips > 0 then canonicalize_xb_fresh st;
  Obs.Metrics.incr c_warm;
  match dual_phase st ~cost:std.cost ~max_iterations with
  | `Infeasible -> (Infeasible, Some (capture key st))
  | `Feasible -> (
      match primal_phase st ~cost:std.cost ~max_iterations () with
      | P_unbounded -> (Unbounded, None)
      | P_optimal ->
          canonicalize_xb st;
          (extract p st, Some (capture key st)))

let dense_requested () =
  match Sys.getenv_opt "VMALLOC_DENSE_LP" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let convert_dense = function
  | Dense_simplex.Optimal { Dense_simplex.objective; x } ->
      Optimal { objective; x }
  | Dense_simplex.Infeasible -> Infeasible
  | Dense_simplex.Unbounded -> Unbounded

let solve_basis ?max_iterations ?warm_basis (p : Problem.t) =
  if dense_requested () then
    (convert_dense (Dense_simplex.solve ?max_iterations p), None)
  else begin
    let std = build p in
    let key = layout_key p in
    let max_iterations =
      match max_iterations with
      | Some k -> k
      | None -> default_iterations std
    in
    let cold () =
      match solve_cold ~key ~max_iterations p std with
      | result -> result
      | exception Iteration_limit ->
          failwith "Lp.Simplex: iteration limit exceeded"
      | exception (Lu.Singular | Sparse_lu.Singular) ->
          failwith "Lp.Simplex: numerically singular basis"
    in
    match warm_basis with
    | None -> cold ()
    | Some bz -> (
        match solve_warm ~key ~max_iterations p std bz with
        | result -> result
        | exception
            (Incompatible_basis | Iteration_limit | Lu.Singular
            | Sparse_lu.Singular) ->
            (* The warm path never widens artificial bounds, so a cold
               start on the same [std] is safe after any warm failure.
               Counted: a nonzero [simplex.warm_fallbacks] on a probe
               sequence means warm starts are silently degrading to cold
               solves. *)
            Obs.Metrics.incr c_warm_fallbacks;
            cold ())
  end

let solve ?max_iterations ?warm_basis (p : Problem.t) =
  fst (solve_basis ?max_iterations ?warm_basis p)
