(** Two-phase dense primal simplex — the reference oracle.

    This is the original full-tableau solver, kept as the differential-test
    oracle for the sparse revised {!Simplex} (and as the
    [VMALLOC_DENSE_LP=1] escape hatch, dispatched from {!Simplex.solve}).
    It favors obviousness over speed:

    - variable lower bounds are shifted out and finite upper bounds become
      explicit rows, so the working form is [min c'x, Ax {<=,>=,=} b, x >= 0];
    - phase 1 minimizes the sum of artificial variables to find a basic
      feasible solution; phase 2 optimizes the real objective;
    - Dantzig pricing with a permanent switch to Bland's rule after either
      an iteration budget or [bland_after_degenerate] {e consecutive}
      degenerate pivots — the streak is the cycling signature, so
      protection engages while a cycle is tight (counted under
      [simplex.bland_switches]).

    The dense tableau is O((m+u)·(n+m)) memory for [m] constraints, [u]
    finite upper bounds and [n] variables; see DESIGN.md §12 for how this
    compares with the revised solver. *)

type solution = { objective : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

val solve :
  ?max_iterations:int -> ?bland_after_degenerate:int -> Problem.t -> result
(** Solve the LP relaxation (integrality flags are ignored — use
    {!Branch_bound} for MILPs). [max_iterations] defaults to
    [max 20_000 (50 * (m + n))]; if exhausted the solver raises [Failure]
    (never observed on the test corpus — the bound is an anti-hang guard).
    [bland_after_degenerate] (default 16) is the consecutive-degenerate-pivot
    streak after which pricing switches permanently to Bland's rule; tests
    set it to 1 to force the switchover on a cycling LP. *)

val feasibility_tol : float
(** Tolerance used to declare phase-1 success and to clean near-zero values
    in the returned point. *)
