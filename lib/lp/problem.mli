(** Linear-program description.

    This is the substrate replacing the GLPK / CPLEX back-ends of the paper
    (§3.2): a plain declarative LP/MILP datatype consumed by {!Simplex} and
    {!Branch_bound}.

    Variables are indexed [0 .. n_vars-1]. Every variable carries a lower
    and an upper bound ([infinity] for "no upper bound"); lower bounds must
    be finite and non-negative in the current solver (all variables of the
    paper's MILP are in [0,1], so this costs no generality here). *)

type relation = Le | Ge | Eq

type linear_constraint = {
  name : string;
  coeffs : (int * float) list;  (** sparse (variable, coefficient) terms *)
  relation : relation;
  rhs : float;
}

type sense = Maximize | Minimize

type t = {
  n_vars : int;
  sense : sense;
  objective : float array;  (** dense objective coefficients, length n_vars *)
  constraints : linear_constraint list;
  lower : float array;
  upper : float array;
  integer : bool array;  (** true for variables with integrality constraint *)
}

val create :
  ?sense:sense ->
  ?lower:float array ->
  ?upper:float array ->
  ?integer:int list ->
  n_vars:int ->
  objective:float array ->
  constraints:linear_constraint list ->
  unit ->
  t
(** Build a problem. Defaults: [Maximize], lower bounds 0, upper bounds
    [infinity], no integer variables. Raises [Invalid_argument] on length
    mismatches, negative or infinite lower bounds, [upper < lower], or
    out-of-range variable indices. *)

val c : ?name:string -> (int * float) list -> relation -> float -> linear_constraint
(** Constraint smart constructor: [c coeffs rel rhs]. *)

val relax : t -> t
(** Drop all integrality constraints (the rational relaxation of §3.2). *)

val n_constraints : t -> int

val eval_constraint : float array -> linear_constraint -> float
(** Left-hand-side value of a constraint at a point. *)

val is_feasible : ?tol:float -> t -> float array -> bool
(** Check bounds, constraints and (if present) integrality at a point.
    Default tolerance [1e-6]. *)

val objective_value : t -> float array -> float

(** Compressed sparse column view of the constraint matrix — the storage the
    revised {!Simplex} prices and FTRANs against. Rows are constraints in
    declaration order, columns are structural variables; duplicate variable
    mentions within a constraint are summed and exact zeros dropped, so the
    build is deterministic (same problem ⇒ same arrays). *)
module Csc : sig
  type matrix = {
    n_rows : int;
    n_cols : int;
    col_ptr : int array;  (** length [n_cols + 1]; column [j] occupies
                              [col_ptr.(j) .. col_ptr.(j+1) - 1] *)
    row_idx : int array;  (** row of each stored entry, ascending per column *)
    values : float array;
  }

  val of_problem : t -> matrix

  val nnz : matrix -> int

  val col_nnz : matrix -> int -> int
  (** Stored entries of one column — O(1); the sparse-LU bench arm and
      fill diagnostics use it to report basis column populations. *)

  val density : matrix -> float
  (** [nnz / (n_rows * n_cols)], 0 for an empty matrix. *)

  val iter_col : matrix -> int -> (int -> float -> unit) -> unit
  (** [iter_col m j f] calls [f row value] for each stored entry of column
      [j], in ascending row order. *)

  val col_dot : matrix -> int -> float array -> float
  (** [col_dot m j x] is the dot product of column [j] with the (dense,
      length [n_rows]) vector [x]. *)
end

val pp : Format.formatter -> t -> unit
