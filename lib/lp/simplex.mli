(** Sparse revised simplex with bounded variables and warm starts.

    Solves the rational relaxation of a {!Problem.t} (integrality flags are
    ignored — use {!Branch_bound} for MILPs). Unlike the dense tableau kept
    in {!Dense_simplex}, this is a revised method:

    - the constraint matrix is stored once in CSC form
      ({!Problem.Csc}); finite upper bounds stay {e variable} bounds
      handled by the bounded-variable ratio test (including bound flips),
      never explicit rows;
    - the basis inverse is a product form over a {!Sparse_lu} factor: a
      Markowitz-ordered sparse LU of the basis (fill-in counted under
      [simplex.lu_fill_in], factorization work under [simplex.lu_flops]),
      updated one Forrest–Tomlin row eta per pivot
      ([simplex.ft_updates]) and refactorized {e adaptively} — after
      [ft_update_cap] updates, on stored-factor fill growth, or on a
      degenerate replacement diagonal — counted under
      [simplex.refactorizations];
    - at phase boundaries and optimal endpoints the basic solution is
      recomputed through one fresh canonical factorization, making the
      returned point a pure function of the final discrete basis: the
      sparse backend and the dense-LU backend below return
      bitwise-identical solutions whenever they pivot through the same
      bases (locked by the differential suite);
    - Dantzig pricing with a permanent switch to Bland's rule after a
      consecutive degenerate-pivot streak (or an iteration budget),
      counted under [simplex.bland_switches];
    - {!solve} accepts a basis captured from a previous solve
      ([?warm_basis]) and re-optimizes with the {e dual} simplex: the
      column layout depends only on the variable count and the
      constraint-relation sequence — never the rhs or bounds — so the
      optimal basis of one yield probe (or branch-and-bound parent) is
      dual feasible for the next and usually a handful of pivots from
      optimal. Successful installs are counted under
      [simplex.warm_starts]; any mismatch or numerical trouble falls back
      to a cold start (counted under [simplex.warm_fallbacks] — the probe
      suites assert it stays 0), so warm starts can change pivot counts
      but never verdicts beyond the solver's tolerances.

    Two environment escape hatches, each also a CI leg:
    [VMALLOC_DENSE_LP=1] routes every solve through {!Dense_simplex}
    (ignoring [?warm_basis]) — the whole-solver differential oracle; and
    [VMALLOC_DENSE_LU=1] keeps the revised method but maintains the basis
    with the original dense LU + raw eta file refactorized every 64
    pivots — the factorization-level oracle the bit-identity tests
    compare against. See DESIGN.md §12 and §15. *)

type solution = { objective : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

type basis
(** A basis captured from a previous solve: which column is basic in each
    row plus the at-lower/at-upper status of every nonbasic column, tagged
    with a fingerprint of the column layout it belongs to. Immutable and
    reusable across any number of later solves. *)

val solve :
  ?max_iterations:int -> ?warm_basis:basis -> Problem.t -> result
(** Solve the LP relaxation. [max_iterations] (default
    [max 20_000 (50 * (m + n))], per phase) bounds each simplex phase; if a
    cold solve exhausts it the solver raises [Failure] (anti-hang guard,
    never observed on the test corpus) — a warm solve falls back to cold
    first. [warm_basis] must come from a problem with the same variable
    count and constraint-relation sequence (rhs, bounds and objective may
    differ); incompatible bases are silently ignored (cold start). *)

val solve_basis :
  ?max_iterations:int -> ?warm_basis:basis -> Problem.t ->
  result * basis option
(** Like {!solve}, additionally returning the final basis for reuse:
    [Some b] on [Optimal] (cold or warm) and on warm-started [Infeasible]
    (the dual-feasible basis that proved infeasibility — still a good start
    for the next probe); [None] on [Unbounded], on cold [Infeasible], and
    always under [VMALLOC_DENSE_LP=1]. *)

val feasibility_tol : float
(** Tolerance used to declare phase-1 success, accept primal feasibility in
    the dual simplex, and clean near-zero values in the returned point. *)
