type relation = Le | Ge | Eq

type linear_constraint = {
  name : string;
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
}

type sense = Maximize | Minimize

type t = {
  n_vars : int;
  sense : sense;
  objective : float array;
  constraints : linear_constraint list;
  lower : float array;
  upper : float array;
  integer : bool array;
}

let check_constraint n_vars cstr =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= n_vars then
        invalid_arg
          (Printf.sprintf "Lp.Problem: constraint %S references variable %d"
             cstr.name v))
    cstr.coeffs

let create ?(sense = Maximize) ?lower ?upper ?(integer = []) ~n_vars
    ~objective ~constraints () =
  if n_vars <= 0 then invalid_arg "Lp.Problem.create: n_vars must be positive";
  if Array.length objective <> n_vars then
    invalid_arg "Lp.Problem.create: objective length mismatch";
  let lower = match lower with Some l -> l | None -> Array.make n_vars 0. in
  let upper =
    match upper with Some u -> u | None -> Array.make n_vars infinity
  in
  if Array.length lower <> n_vars || Array.length upper <> n_vars then
    invalid_arg "Lp.Problem.create: bounds length mismatch";
  Array.iteri
    (fun i l ->
      if l < 0. || not (Float.is_finite l) then
        invalid_arg
          (Printf.sprintf
             "Lp.Problem.create: variable %d has unsupported lower bound %g" i
             l);
      if upper.(i) < l then
        invalid_arg
          (Printf.sprintf "Lp.Problem.create: variable %d has upper < lower" i))
    lower;
  let integer_flags = Array.make n_vars false in
  List.iter
    (fun v ->
      if v < 0 || v >= n_vars then
        invalid_arg "Lp.Problem.create: integer variable out of range";
      integer_flags.(v) <- true)
    integer;
  List.iter (check_constraint n_vars) constraints;
  {
    n_vars;
    sense;
    objective = Array.copy objective;
    constraints;
    lower = Array.copy lower;
    upper = Array.copy upper;
    integer = integer_flags;
  }

let c ?(name = "") coeffs relation rhs = { name; coeffs; relation; rhs }

let relax p = { p with integer = Array.make p.n_vars false }

let n_constraints p = List.length p.constraints

let eval_constraint x cstr =
  List.fold_left (fun acc (v, a) -> acc +. (a *. x.(v))) 0. cstr.coeffs

let is_feasible ?(tol = 1e-6) p x =
  Array.length x = p.n_vars
  && (let ok = ref true in
      for i = 0 to p.n_vars - 1 do
        if x.(i) < p.lower.(i) -. tol || x.(i) > p.upper.(i) +. tol then
          ok := false;
        if p.integer.(i) && Float.abs (x.(i) -. Float.round x.(i)) > tol then
          ok := false
      done;
      !ok)
  && List.for_all
       (fun cstr ->
         let lhs = eval_constraint x cstr in
         match cstr.relation with
         | Le -> lhs <= cstr.rhs +. tol
         | Ge -> lhs >= cstr.rhs -. tol
         | Eq -> Float.abs (lhs -. cstr.rhs) <= tol)
       p.constraints

let objective_value p x =
  let acc = ref 0. in
  for i = 0 to p.n_vars - 1 do
    acc := !acc +. (p.objective.(i) *. x.(i))
  done;
  !acc

module Csc = struct
  type matrix = {
    n_rows : int;
    n_cols : int;
    col_ptr : int array;
    row_idx : int array;
    values : float array;
  }

  let of_problem p =
    let n_rows = List.length p.constraints in
    let n_cols = p.n_vars in
    (* Gather (row, coef) terms per column; duplicate variable mentions in a
       constraint are summed, exactly as the dense solver's [prepare] does. *)
    let cols = Array.make n_cols [] in
    List.iteri
      (fun i (cstr : linear_constraint) ->
        List.iter (fun (v, a) -> cols.(v) <- (i, a) :: cols.(v)) cstr.coeffs)
      p.constraints;
    let merged =
      Array.map
        (fun terms ->
          let sorted =
            List.sort (fun (r1, _) (r2, _) -> compare r1 r2) terms
          in
          let rec merge = function
            | (r1, a1) :: (r2, a2) :: rest when r1 = r2 ->
                merge ((r1, a1 +. a2) :: rest)
            | (r, a) :: rest ->
                if a = 0. then merge rest else (r, a) :: merge rest
            | [] -> []
          in
          merge sorted)
        cols
    in
    let nnz = Array.fold_left (fun acc l -> acc + List.length l) 0 merged in
    let col_ptr = Array.make (n_cols + 1) 0 in
    let row_idx = Array.make nnz 0 in
    let values = Array.make nnz 0. in
    let k = ref 0 in
    Array.iteri
      (fun j terms ->
        col_ptr.(j) <- !k;
        List.iter
          (fun (r, a) ->
            row_idx.(!k) <- r;
            values.(!k) <- a;
            incr k)
          terms)
      merged;
    col_ptr.(n_cols) <- !k;
    { n_rows; n_cols; col_ptr; row_idx; values }

  let nnz m = Array.length m.values

  let col_nnz m j = m.col_ptr.(j + 1) - m.col_ptr.(j)

  let density m =
    let cells = m.n_rows * m.n_cols in
    if cells = 0 then 0. else float_of_int (nnz m) /. float_of_int cells

  let iter_col m j f =
    for k = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
      f m.row_idx.(k) m.values.(k)
    done

  let col_dot m j x =
    let acc = ref 0. in
    for k = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.row_idx.(k)))
    done;
    !acc
end

let pp_relation ppf = function
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Eq -> Format.pp_print_string ppf "="

let pp ppf p =
  let sense = match p.sense with Maximize -> "max" | Minimize -> "min" in
  Format.fprintf ppf "@[<v>%s" sense;
  Array.iteri
    (fun i coef ->
      if coef <> 0. then Format.fprintf ppf " %+gx%d" coef i)
    p.objective;
  Format.fprintf ppf "@,s.t.";
  List.iter
    (fun cstr ->
      Format.fprintf ppf "@,  ";
      List.iter (fun (v, a) -> Format.fprintf ppf "%+gx%d " a v) cstr.coeffs;
      Format.fprintf ppf "%a %g" pp_relation cstr.relation cstr.rhs;
      if cstr.name <> "" then Format.fprintf ppf "  (%s)" cstr.name)
    p.constraints;
  Format.fprintf ppf "@]"
