(** Branch-and-bound MILP solver over {!Simplex}.

    Replaces the GLPK/CPLEX MILP back-ends for the exact solutions of paper
    §3.1–3.2. Depth-first search branching on the most fractional integer
    variable; each branch tightens that variable's bounds
    ([x <= floor v] / [x >= ceil v]) and re-solves the LP relaxation.
    Nodes whose relaxation cannot beat the incumbent by more than
    [absolute_gap] are pruned — with the paper's binary placement variables
    this explores a manageable tree on small instances.

    Each node's relaxation is warm-started from its parent's optimal basis
    ({!Simplex.solve_basis} with [?warm_basis]): a child differs from its
    parent in exactly one variable bound, so the parent basis stays dual
    feasible and the dual simplex reconciles it in a few pivots instead of
    re-running phase 1. Search-shape counters (lib/obs):
    [branch_bound.nodes], [branch_bound.infeasible_nodes],
    [branch_bound.pruned_nodes]. *)

type outcome =
  | Optimal of Simplex.solution
      (** Proven optimal within [absolute_gap]. *)
  | Infeasible
  | Unbounded
      (** The LP relaxation is unbounded (cannot happen for the paper's
          bounded formulation). *)
  | Node_limit of Simplex.solution option
      (** Search truncated; carries the best incumbent found, if any. *)

val solve :
  ?node_limit:int -> ?absolute_gap:float -> Problem.t -> outcome
(** [node_limit] defaults to 200_000 relaxation solves; [absolute_gap]
    defaults to [1e-7]. *)
