(* Markowitz sparse LU + Forrest–Tomlin updates. See sparse_lu.mli for the
   contract and DESIGN.md §15 for the full derivation.

   Index spaces, fixed throughout this file:
   - "row"  — a row of the input matrix (0..m-1), the space FTRAN inputs
     and BTRAN outputs live in;
   - "bpos" — a column of the input matrix, i.e. a basis position, the
     space FTRAN outputs and BTRAN inputs live in;
   - "slot" — an elimination step of [factor]. Slot k owns pivot row
     [pr.(k)], pivot column [bpos_of_slot.(k)], the diagonal [diag.(k)]
     and the U row [urows.(k)];
   - "position" — the current triangular ordering of slots ([order] /
     [pos_of_slot]). At factor time position = slot; every Forrest–Tomlin
     update cyclically moves one slot to the last position.

   The triangularity invariant that every solve relies on: each entry
   [(c, _)] of [urows.(s)] satisfies
   [pos_of_slot.(slot_of_bpos.(c)) > pos_of_slot.(s)]. [factor]
   establishes it (a pivot row's surviving columns are pivoted at later
   steps) and [update] preserves it (the replaced column moves to the last
   position before its new entries are inserted). *)

let rel_singular_tol = 1e-11
let unstable_tol = 1e-10

exception Singular
exception Unstable

(* Growable (index, value) pair array: the storage for working rows during
   factorization and for U rows afterwards. *)
type pairs = {
  mutable ia : int array;
  mutable va : float array;
  mutable len : int;
}

let pairs_make () = { ia = [||]; va = [||]; len = 0 }

let pairs_push p i v =
  if p.len = Array.length p.ia then begin
    let cap = if p.len = 0 then 4 else 2 * p.len in
    let ia = Array.make cap 0 and va = Array.make cap 0. in
    Array.blit p.ia 0 ia 0 p.len;
    Array.blit p.va 0 va 0 p.len;
    p.ia <- ia;
    p.va <- va
  end;
  p.ia.(p.len) <- i;
  p.va.(p.len) <- v;
  p.len <- p.len + 1

let pairs_clear p = p.len <- 0

let pairs_swap a b =
  let ia = a.ia and va = a.va and len = a.len in
  a.ia <- b.ia;
  a.va <- b.va;
  a.len <- b.len;
  b.ia <- ia;
  b.va <- va;
  b.len <- len

type ints = { mutable a : int array; mutable n : int }

let ints_make () = { a = [||]; n = 0 }

let ints_push s i =
  if s.n = Array.length s.a then begin
    let cap = if s.n = 0 then 4 else 2 * s.n in
    let a = Array.make cap 0 in
    Array.blit s.a 0 a 0 s.n;
    s.a <- a
  end;
  s.a.(s.n) <- i;
  s.n <- s.n + 1

(* One Forrest–Tomlin row eta: after L (and earlier etas), subtract
   [coefs.(q) * v.(slots.(q))] from [v.(tgt)]. *)
type ft_eta = { tgt : int; slots : int array; coefs : float array }

type t = {
  m : int;
  (* L as column etas in elimination-step order, over original row ids. *)
  l_ptr : int array;
  l_rows : int array;
  l_vals : float array;
  pr : int array;            (* slot -> pivot row *)
  bpos_of_slot : int array;
  slot_of_bpos : int array;
  urows : pairs array;       (* per slot: off-diagonal (bpos, value) *)
  diag : float array;        (* per slot *)
  ucols : ints array;        (* per bpos: candidate slots (may be stale) *)
  order : int array;         (* position -> slot *)
  pos_of_slot : int array;
  mutable etas : ft_eta array;
  mutable n_etas : int;
  v_basis_nnz : int;
  v_fresh_nnz : int;
  mutable v_nnz : int;
  mutable v_updates : int;
  v_flops : int;
  (* Scratch. [acc] is kept all-zero between calls. *)
  w : float array;
  acc : float array;
  spike : float array;
  mutable spike_ok : bool;
}

let size t = t.m
let basis_nnz t = t.v_basis_nnz
let nnz t = t.v_nnz
let fill_in t = t.v_fresh_nnz - t.v_basis_nnz
let flops t = t.v_flops
let updates t = t.v_updates

let factor ?(tau = 0.1) ~size:m ~col () =
  let rows = Array.init m (fun _ -> pairs_make ()) in
  let col_scale = Array.make m 0. in
  let basis_nnz = ref 0 in
  for j = 0 to m - 1 do
    col j (fun i v ->
        if v <> 0. then begin
          pairs_push rows.(i) j v;
          incr basis_nnz;
          let av = Float.abs v in
          if av > col_scale.(j) then col_scale.(j) <- av
        end)
  done;
  for j = 0 to m - 1 do
    if col_scale.(j) = 0. then raise Singular
  done;
  let active_row = Array.make m true and active_col = Array.make m true in
  let col_cnt = Array.make m 0 and col_max = Array.make m 0. in
  let pr = Array.make m 0 and pc = Array.make m 0 in
  let l_ptr = Array.make (m + 1) 0 in
  let l = pairs_make () in
  let urows = Array.init m (fun _ -> pairs_make ()) in
  let diag = Array.make m 0. in
  let flops = ref 0 in
  let scratch = pairs_make () in
  for k = 0 to m - 1 do
    (* Column counts and maxima over the active submatrix. *)
    for j = 0 to m - 1 do
      col_cnt.(j) <- 0;
      col_max.(j) <- 0.
    done;
    for i = 0 to m - 1 do
      if active_row.(i) then begin
        let r = rows.(i) in
        for e = 0 to r.len - 1 do
          let j = r.ia.(e) in
          col_cnt.(j) <- col_cnt.(j) + 1;
          let av = Float.abs r.va.(e) in
          if av > col_max.(j) then col_max.(j) <- av
        done
      end
    done;
    (* A column whose remaining entries are all tiny relative to its
       original magnitude is numerically dependent on the columns already
       pivoted — singular, whatever its absolute scale. *)
    for j = 0 to m - 1 do
      if active_col.(j) && col_max.(j) < rel_singular_tol *. col_scale.(j)
      then raise Singular
    done;
    (* Markowitz pivot among threshold-eligible entries; deterministic
       lexicographic tie-break on (cost, column, row). *)
    let bi = ref (-1) and bj = ref (-1) and bcost = ref max_int
    and bval = ref 0. in
    for i = 0 to m - 1 do
      if active_row.(i) then begin
        let r = rows.(i) in
        let rlen = r.len in
        for e = 0 to rlen - 1 do
          let j = r.ia.(e) in
          if Float.abs r.va.(e) >= tau *. col_max.(j) then begin
            let cost = (rlen - 1) * (col_cnt.(j) - 1) in
            if
              cost < !bcost
              || (cost = !bcost && (j < !bj || (j = !bj && i < !bi)))
            then begin
              bi := i;
              bj := j;
              bcost := cost;
              bval := r.va.(e)
            end
          end
        done
      end
    done;
    (* Every active column's max entry is threshold-eligible, so the
       singularity sweep above guarantees a pivot exists. *)
    assert (!bi >= 0);
    let pi = !bi and pj = !bj in
    let piv = !bval in
    pr.(k) <- pi;
    pc.(k) <- pj;
    active_row.(pi) <- false;
    active_col.(pj) <- false;
    diag.(k) <- piv;
    (* The pivot row (minus the pivot) becomes U row k. Its surviving
       columns are pivoted at later steps, giving the triangularity
       invariant. *)
    let u = urows.(k) in
    let prow = rows.(pi) in
    for e = 0 to prow.len - 1 do
      if prow.ia.(e) <> pj then pairs_push u prow.ia.(e) prow.va.(e)
    done;
    (* Eliminate column pj from the remaining rows by a sorted merge
       against the pivot row; exact cancellations are dropped so fill-in
       reflects structural nonzeros only. *)
    for i = 0 to m - 1 do
      if active_row.(i) then begin
        let r = rows.(i) in
        let has = ref false and f = ref 0. in
        for e = 0 to r.len - 1 do
          if r.ia.(e) = pj then begin
            has := true;
            f := r.va.(e) /. piv
          end
        done;
        if !has then begin
          let f = !f in
          pairs_push l i f;
          flops := !flops + 1 + u.len;
          pairs_clear scratch;
          let a = ref 0 and bq = ref 0 in
          while !a < r.len || !bq < u.len do
            let ca = if !a < r.len then r.ia.(!a) else max_int in
            let cb = if !bq < u.len then u.ia.(!bq) else max_int in
            if ca < cb then begin
              if ca <> pj then pairs_push scratch ca r.va.(!a);
              incr a
            end
            else if cb < ca then begin
              let v = -.(f *. u.va.(!bq)) in
              if v <> 0. then pairs_push scratch cb v;
              incr bq
            end
            else begin
              let v = r.va.(!a) -. (f *. u.va.(!bq)) in
              if v <> 0. then pairs_push scratch ca v;
              incr a;
              incr bq
            end
          done;
          pairs_swap r scratch
        end
      end
    done;
    l_ptr.(k + 1) <- l.len
  done;
  let slot_of_bpos = Array.make m 0 in
  for k = 0 to m - 1 do
    slot_of_bpos.(pc.(k)) <- k
  done;
  let ucols = Array.init m (fun _ -> ints_make ()) in
  let u_nnz = ref m in
  for s = 0 to m - 1 do
    let u = urows.(s) in
    u_nnz := !u_nnz + u.len;
    for e = 0 to u.len - 1 do
      ints_push ucols.(u.ia.(e)) s
    done
  done;
  let fresh = l.len + !u_nnz in
  {
    m;
    l_ptr;
    l_rows = Array.sub l.ia 0 l.len;
    l_vals = Array.sub l.va 0 l.len;
    pr;
    bpos_of_slot = pc;
    slot_of_bpos;
    urows;
    diag;
    ucols;
    order = Array.init m Fun.id;
    pos_of_slot = Array.init m Fun.id;
    etas = [||];
    n_etas = 0;
    v_basis_nnz = !basis_nnz;
    v_fresh_nnz = fresh;
    v_nnz = fresh;
    v_updates = 0;
    v_flops = !flops;
    w = Array.make m 0.;
    acc = Array.make m 0.;
    spike = Array.make m 0.;
    spike_ok = false;
  }

let ftran_gen t ~stash v =
  let m = t.m in
  (* L solve, in place over original rows. *)
  for k = 0 to m - 1 do
    let x = v.(t.pr.(k)) in
    if x <> 0. then
      for e = t.l_ptr.(k) to t.l_ptr.(k + 1) - 1 do
        let i = t.l_rows.(e) in
        v.(i) <- v.(i) -. (t.l_vals.(e) *. x)
      done
  done;
  (* Permute into slot space, then apply the Forrest–Tomlin row etas in
     recording order. *)
  let w = t.w in
  for k = 0 to m - 1 do
    w.(k) <- v.(t.pr.(k))
  done;
  for e = 0 to t.n_etas - 1 do
    let eta = t.etas.(e) in
    let acc = ref w.(eta.tgt) in
    for q = 0 to Array.length eta.slots - 1 do
      acc := !acc -. (eta.coefs.(q) *. w.(eta.slots.(q)))
    done;
    w.(eta.tgt) <- !acc
  done;
  if stash then begin
    Array.blit w 0 t.spike 0 m;
    t.spike_ok <- true
  end;
  (* U back-substitution in descending position order, writing the result
     into [v] indexed by basis position; each row's entries reference
     strictly later positions, already final. *)
  for pos = m - 1 downto 0 do
    let s = t.order.(pos) in
    let u = t.urows.(s) in
    let acc = ref w.(s) in
    for e = 0 to u.len - 1 do
      acc := !acc -. (u.va.(e) *. v.(u.ia.(e)))
    done;
    v.(t.bpos_of_slot.(s)) <- !acc /. t.diag.(s)
  done

let ftran t v = ftran_gen t ~stash:false v
let ftran_entering t v = ftran_gen t ~stash:true v

let btran t v =
  let m = t.m in
  let w = t.w in
  for s = 0 to m - 1 do
    w.(s) <- v.(t.bpos_of_slot.(s))
  done;
  (* U^T is lower triangular in position order: forward scatter. *)
  for pos = 0 to m - 1 do
    let s = t.order.(pos) in
    let z = w.(s) /. t.diag.(s) in
    w.(s) <- z;
    if z <> 0. then begin
      let u = t.urows.(s) in
      for e = 0 to u.len - 1 do
        let sc = t.slot_of_bpos.(u.ia.(e)) in
        w.(sc) <- w.(sc) -. (u.va.(e) *. z)
      done
    end
  done;
  (* Transposed etas in reverse recording order. *)
  for e = t.n_etas - 1 downto 0 do
    let eta = t.etas.(e) in
    let x = w.(eta.tgt) in
    if x <> 0. then
      for q = 0 to Array.length eta.slots - 1 do
        let s = eta.slots.(q) in
        w.(s) <- w.(s) -. (eta.coefs.(q) *. x)
      done
  done;
  (* Back to original rows, then the L^T solve: a step's L rows are
     pivoted at later steps, so descending order makes them final. *)
  for k = 0 to m - 1 do
    v.(t.pr.(k)) <- w.(k)
  done;
  for k = m - 1 downto 0 do
    let acc = ref v.(t.pr.(k)) in
    for e = t.l_ptr.(k) to t.l_ptr.(k + 1) - 1 do
      acc := !acc -. (t.l_vals.(e) *. v.(t.l_rows.(e)))
    done;
    v.(t.pr.(k)) <- !acc
  done

let push_ft_eta t eta =
  if t.n_etas = Array.length t.etas then begin
    let cap = if t.n_etas = 0 then 8 else 2 * t.n_etas in
    let dummy = { tgt = 0; slots = [||]; coefs = [||] } in
    let etas = Array.make cap dummy in
    Array.blit t.etas 0 etas 0 t.n_etas;
    t.etas <- etas
  end;
  t.etas.(t.n_etas) <- eta;
  t.n_etas <- t.n_etas + 1

let update t ~pos:p =
  if not t.spike_ok then invalid_arg "Sparse_lu.update: no entering column";
  t.spike_ok <- false;
  let m = t.m in
  let s_t = t.slot_of_bpos.(p) in
  let tpos = t.pos_of_slot.(s_t) in
  (* Row-eta solve: forward-eliminate row s_t against the rows at later
     positions. [acc] is a sparse scatter over slots; every touched cell
     is re-zeroed, keeping the scratch clean. *)
  let acc = t.acc in
  let row_t = t.urows.(s_t) in
  for e = 0 to row_t.len - 1 do
    acc.(t.slot_of_bpos.(row_t.ia.(e))) <- row_t.va.(e)
  done;
  let r_slots = ints_make () in
  let r_coefs = pairs_make () in
  for q = tpos + 1 to m - 1 do
    let s_q = t.order.(q) in
    let a = acc.(s_q) in
    if a <> 0. then begin
      acc.(s_q) <- 0.;
      let r = a /. t.diag.(s_q) in
      ints_push r_slots s_q;
      pairs_push r_coefs s_q r;
      let u = t.urows.(s_q) in
      for e = 0 to u.len - 1 do
        let sc = t.slot_of_bpos.(u.ia.(e)) in
        acc.(sc) <- acc.(sc) -. (u.va.(e) *. r)
      done
    end
  done;
  (* New diagonal of the (relocated) row from the spike, with a relative
     stability check; nothing has been mutated yet, so Unstable leaves the
     factor intact for the caller to refactorize. *)
  let spike = t.spike in
  let d = ref spike.(s_t) in
  for e = 0 to r_coefs.len - 1 do
    d := !d -. (r_coefs.va.(e) *. spike.(r_coefs.ia.(e)))
  done;
  let d = !d in
  let smax = ref 0. in
  for s = 0 to m - 1 do
    let a = Float.abs spike.(s) in
    if a > !smax then smax := a
  done;
  if Float.abs d < unstable_tol *. Float.max 1. !smax then raise Unstable;
  (* Commit. 1: the replaced column disappears from earlier rows (rows at
     later positions cannot hold it, by triangularity; stale candidate
     slots are skipped by the filter). *)
  let uc = t.ucols.(p) in
  for e = 0 to uc.n - 1 do
    let s = uc.a.(e) in
    if s <> s_t then begin
      let u = t.urows.(s) in
      let w = ref 0 in
      for r = 0 to u.len - 1 do
        if u.ia.(r) <> p then begin
          u.ia.(!w) <- u.ia.(r);
          u.va.(!w) <- u.va.(r);
          incr w
        end
      done;
      t.v_nnz <- t.v_nnz - (u.len - !w);
      u.len <- !w
    end
  done;
  (* 2: clear the spiked row; its off-diagonals now live in the eta. *)
  t.v_nnz <- t.v_nnz - row_t.len;
  pairs_clear row_t;
  t.diag.(s_t) <- d;
  (* 3: the spike becomes the new column p, legal everywhere because p is
     about to take the last position. *)
  uc.n <- 0;
  for s = 0 to m - 1 do
    if s <> s_t && spike.(s) <> 0. then begin
      pairs_push t.urows.(s) p spike.(s);
      ints_push uc s;
      t.v_nnz <- t.v_nnz + 1
    end
  done;
  (* 4: record the row eta and cyclically shift position tpos to the
     end. *)
  push_ft_eta t
    {
      tgt = s_t;
      slots = Array.sub r_slots.a 0 r_slots.n;
      coefs = Array.sub r_coefs.va 0 r_coefs.len;
    };
  t.v_nnz <- t.v_nnz + r_slots.n;
  for q = tpos to m - 2 do
    let s = t.order.(q + 1) in
    t.order.(q) <- s;
    t.pos_of_slot.(s) <- q
  done;
  t.order.(m - 1) <- s_t;
  t.pos_of_slot.(s_t) <- m - 1;
  t.v_updates <- t.v_updates + 1
