type outcome =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded
  | Node_limit of Simplex.solution option

let integrality_tol = 1e-6

(* Search-shape counters (lib/obs): relaxations solved, nodes whose
   relaxation was infeasible (both children of a branch on an already-tight
   variable land here), and nodes cut by the incumbent bound. *)
let c_nodes = Obs.Metrics.counter "branch_bound.nodes"
let c_infeasible = Obs.Metrics.counter "branch_bound.infeasible_nodes"
let c_pruned = Obs.Metrics.counter "branch_bound.pruned_nodes"

(* Most fractional integer variable of [x], if any. *)
let branching_variable (p : Problem.t) x =
  let best = ref (-1) and best_frac = ref integrality_tol in
  for v = 0 to p.n_vars - 1 do
    if p.integer.(v) then begin
      let f = x.(v) -. Float.round x.(v) in
      let dist = Float.abs f in
      (* distance to nearest integer, in [0, 0.5] *)
      if dist > !best_frac then begin
        (* prefer the variable closest to 0.5 *)
        let score = 0.5 -. Float.abs (0.5 -. Float.abs f) in
        ignore score;
        best := v;
        best_frac := dist
      end
    end
  done;
  if !best >= 0 then Some !best else None

let solve ?(node_limit = 200_000) ?(absolute_gap = 1e-7) (p : Problem.t) =
  let better a b =
    match p.sense with
    | Problem.Maximize -> a > b
    | Problem.Minimize -> a < b
  in
  let can_improve relax_obj incumbent =
    match incumbent with
    | None -> true
    | Some (inc : Simplex.solution) ->
        better relax_obj (inc.objective +.
          match p.sense with
          | Problem.Maximize -> absolute_gap
          | Problem.Minimize -> -.absolute_gap)
  in
  let nodes = ref 0 in
  let incumbent = ref None in
  let truncated = ref false in
  let root_unbounded = ref false in
  (* DFS over (lower, upper) bound pairs. Each node re-solves its LP
     relaxation warm-started from the parent's optimal basis: a child
     differs from its parent only in one variable bound, so the parent
     basis is dual feasible for the child and the dual simplex usually
     reconciles it in a handful of pivots. The basis returned by a
     warm-started infeasible child is threaded too (it is still dual
     feasible for the sibling). *)
  let rec explore lower upper depth warm =
    if !truncated then ()
    else if !nodes >= node_limit then truncated := true
    else begin
      incr nodes;
      Obs.Metrics.incr c_nodes;
      let sub = { p with Problem.lower; upper; integer = p.integer } in
      match Simplex.solve_basis ?warm_basis:warm (Problem.relax sub) with
      | Simplex.Infeasible, _ -> Obs.Metrics.incr c_infeasible
      | Simplex.Unbounded, _ ->
          (* Only meaningful at the root: an unbounded relaxation of a node
             created by tightening bounds is still reported as unbounded
             overall, matching MILP-solver convention. *)
          if depth = 0 then root_unbounded := true else truncated := true
      | Simplex.Optimal sol, basis ->
          let warm = match basis with Some _ -> basis | None -> warm in
          if can_improve sol.objective !incumbent then begin
            match branching_variable p sol.x with
            | None ->
                (* Integral: new incumbent. Round integer coordinates
                   exactly so downstream consumers can pattern-match. *)
                let x = Array.copy sol.x in
                Array.iteri
                  (fun v flag -> if flag then x.(v) <- Float.round x.(v))
                  p.integer;
                let objective = Problem.objective_value p x in
                incumbent := Some { Simplex.objective; x }
            | Some v ->
                let fl = Float.of_int (int_of_float (Float.round
                           (Float.floor sol.x.(v)))) in
                let down_upper = Array.copy upper in
                down_upper.(v) <- Float.min upper.(v) fl;
                let up_lower = Array.copy lower in
                up_lower.(v) <- Float.max lower.(v) (fl +. 1.);
                (* Explore the branch suggested by the fractional value
                   first: round-to-nearest gives slightly better incumbents
                   early on. *)
                if sol.x.(v) -. fl >= 0.5 then begin
                  if up_lower.(v) <= upper.(v) then
                    explore up_lower upper (depth + 1) warm;
                  if down_upper.(v) >= lower.(v) then
                    explore lower down_upper (depth + 1) warm
                end
                else begin
                  if down_upper.(v) >= lower.(v) then
                    explore lower down_upper (depth + 1) warm;
                  if up_lower.(v) <= upper.(v) then
                    explore up_lower upper (depth + 1) warm
                end
          end
          else Obs.Metrics.incr c_pruned
    end
  in
  explore (Array.copy p.lower) (Array.copy p.upper) 0 None;
  if !root_unbounded then Unbounded
  else if !truncated then Node_limit !incumbent
  else
    match !incumbent with
    | Some sol -> Optimal sol
    | None -> Infeasible
