(* Unlike the Obs.Metrics pivot counters (gated behind VMALLOC_OBS), this
   clock is always on: the simulator's timeline samples pivot deltas on
   the sim clock whether or not the metric sinks are live. One DLS lookup
   plus an int increment per pivot is noise next to the FTRAN/BTRAN work
   a pivot performs. *)

let key = Domain.DLS.new_key (fun () -> ref 0)
let tick () = incr (Domain.DLS.get key)
let total () = !(Domain.DLS.get key)
