(** Always-on, domain-local simplex pivot clock.

    A monotone per-domain count of every simplex pivot performed on the
    calling domain (both the revised and the dense solver tick it),
    independent of the {!Obs.Metrics} enabled flag. Consumers that need a
    deterministic "pivots spent in this stretch of work" — the online
    simulator's timeline gauges — snapshot {!total} at two points on the
    same domain and subtract; because a {!Par.Pool} task runs on exactly
    one domain, such deltas are a pure function of the work performed,
    whatever the pool size. Absolute values are meaningless across
    domains (each domain counts only its own pivots). *)

val tick : unit -> unit
(** Count one pivot on the calling domain. *)

val total : unit -> int
(** The calling domain's cumulative pivot count. *)
