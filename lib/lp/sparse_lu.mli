(** Markowitz-ordered sparse LU factorization with Forrest–Tomlin updates.

    The factorization backend of the revised {!Simplex} (DESIGN.md §15).
    [factor] runs a right-looking sparse elimination of the m×m basis
    matrix: at each step the pivot is chosen to minimize the Markowitz
    count [(row_nnz-1)·(col_nnz-1)] among entries passing a *threshold
    partial pivoting* test within their column ([|a| ≥ τ·colmax],
    τ = 0.1), so fill-in stays near the nonzero count on the banded /
    block-structured bases the yield-probe LPs produce. L and U are stored
    sparsely (column etas for L, per-row dynamic arrays for U), and
    [ftran]/[btran] skip structural zeros end-to-end.

    A pivot replaces one basis column; [update] applies a Forrest–Tomlin
    product-form update instead of refactorizing: the spiked column moves
    to the last pivot position, the spiked row is eliminated by one
    row-eta (a sparse triangular solve), and U is patched in place. The
    factor object tracks its fill-in, update count and factorization
    flops so the caller can refactorize adaptively.

    Every operation is a pure function of the inputs — no randomness, no
    wall clock — so factors, solves and updates are bit-reproducible.
    Singularity is declared *relative to the original column scale*
    ([colmax < 1e-11·scale]), so well-conditioned but small-magnitude
    bases (e.g. row-scaled LPs) factor fine where an absolute threshold
    would reject them. *)

type t

exception Singular
(** Raised by {!factor} when some column of the basis is numerically
    dependent: its largest remaining entry is below [1e-11] times the
    column's original magnitude (or the column was identically zero). *)

exception Unstable
(** Raised by {!update} when the Forrest–Tomlin replacement diagonal is
    too small relative to the spike — the caller should refactorize. The
    factor is left unchanged. *)

val factor :
  ?tau:float -> size:int -> col:(int -> (int -> float -> unit) -> unit) ->
  unit -> t
(** [factor ~size ~col ()] factors the [size]×[size] matrix whose column
    [k] is iterated by [col k f] as [f row value] calls (distinct rows,
    ascending). [tau] (default [0.1]) is the threshold-pivoting relaxation
    factor: entries within [tau] of their column max are pivot-eligible,
    and the Markowitz count breaks the tie. Raises {!Singular}. *)

val size : t -> int

val basis_nnz : t -> int
(** Nonzeros of the factored matrix itself. *)

val nnz : t -> int
(** Current stored nonzeros of L and U, including fill from
    Forrest–Tomlin updates (eta entries and spike columns). *)

val fill_in : t -> int
(** Entries created by elimination: [nnz] right after {!factor} minus
    {!basis_nnz}. Constant over the factor's lifetime. *)

val flops : t -> int
(** Multiply–subtract operations spent by {!factor} (divisions included).
    Constant over the factor's lifetime; the dense LU's equivalent count
    is what the bench [sparse_lu] arm compares against. *)

val updates : t -> int
(** Forrest–Tomlin updates applied since {!factor}. *)

val ftran : t -> float array -> unit
(** [ftran t v] solves [B x = v] in place: on entry [v] is indexed by
    matrix row, on exit [v.(p)] is the solution component of the column
    at basis position [p]. *)

val ftran_entering : t -> float array -> unit
(** Like {!ftran}, additionally stashing the partially-transformed column
    (the Forrest–Tomlin spike) for a subsequent {!update}. The simplex
    uses this for the entering column of a pivot and plain {!ftran}
    everywhere else. *)

val btran : t -> float array -> unit
(** [btran t v] solves [Bᵀ y = v] in place: on entry [v] is indexed by
    basis position, on exit by matrix row. *)

val update : t -> pos:int -> unit
(** [update t ~pos] replaces the basis column at position [pos] with the
    column most recently passed through {!ftran_entering}, patching the
    factorization by one Forrest–Tomlin step. Raises {!Unstable} (factor
    unchanged) when the replacement diagonal is degenerate, and
    [Invalid_argument] if no spike is stashed. *)
