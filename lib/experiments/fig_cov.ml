type variant = Fully_heterogeneous | Cpu_homogeneous | Mem_homogeneous

let variant_name = function
  | Fully_heterogeneous -> "fully heterogeneous"
  | Cpu_homogeneous -> "CPU held homogeneous"
  | Mem_homogeneous -> "memory held homogeneous"

type series = {
  algorithm : string;
  samples : (float * float) list;
}

type result = {
  variant : variant;
  hosts : int;
  services : int;
  slack : float;
  series : series list;
  metahvp_failures : int;
  n_instances : int;
}

let run ?(progress = fun _ -> ()) ?pool ?slack (scale : Scale.t) variant =
  let slack = Option.value slack ~default:scale.fig_cov_slack in
  let cpu_homogeneous = variant = Cpu_homogeneous in
  let mem_homogeneous = variant = Mem_homogeneous in
  let contenders =
    (if scale.fig_cov_include_rrnz then [ Heuristics.Algorithms.rrnz ~seed:1 ]
     else [])
    @ [ Heuristics.Algorithms.metagreedy; Heuristics.Algorithms.metavp ]
  in
  (* Instance RNG streams are derived here, before dispatch. *)
  let instances =
    Array.of_list
      (Corpus.sweep ~hosts:scale.fig_cov_hosts
         ~services:scale.fig_cov_services ~covs:scale.fig_cov_covs
         ~slacks:[ slack ] ~reps:scale.fig_cov_reps ~cpu_homogeneous
         ~mem_homogeneous ())
  in
  let n = Array.length instances in
  progress
    (Printf.sprintf "fig-cov (%s): %d instances" (variant_name variant) n);
  (* One trial per instance: the METAHVP reference plus each contender's
     yield difference. Folding the per-trial results in input order
     reproduces the sequential accumulation exactly. *)
  let trials =
    Run.map ?pool instances (fun ((spec : Corpus.spec), inst) ->
        match Heuristics.Algorithms.metahvp.solve inst with
        | None -> None
        | Some reference ->
            Some
              (List.map
                 (fun (algo : Heuristics.Algorithms.t) ->
                   match algo.solve inst with
                   | None -> None
                   | Some sol ->
                       Some (spec.cov, sol.min_yield -. reference.min_yield))
                 contenders))
  in
  let samples =
    List.map (fun (a : Heuristics.Algorithms.t) -> (a, ref [])) contenders
  in
  let failures = ref 0 in
  Array.iter
    (function
      | None -> incr failures
      | Some per_contender ->
          List.iter2
            (fun (_, acc) sample ->
              match sample with
              | None -> ()
              | Some point -> acc := point :: !acc)
            samples per_contender)
    trials;
  {
    variant;
    hosts = scale.fig_cov_hosts;
    services = scale.fig_cov_services;
    slack;
    series =
      List.map
        (fun ((algo : Heuristics.Algorithms.t), acc) ->
          { algorithm = algo.name; samples = List.rev !acc })
        samples;
    metahvp_failures = !failures;
    n_instances = n;
  }

let report result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "== Fig. 2-family: yield difference vs METAHVP, %s ==\n\
        %d hosts, %d services, slack %.1f, %d instances \
        (METAHVP failed on %d)\n\
        Negative values mean METAHVP achieves the higher minimum yield.\n\n"
       (variant_name result.variant) result.hosts result.services
       result.slack result.n_instances result.metahvp_failures);
  (* Per-CoV averages, one column per contender. *)
  let aggregated =
    List.map
      (fun s -> (s.algorithm, Stats.Series.aggregate s.samples))
      result.series
  in
  let covs =
    List.sort_uniq Float.compare
      (List.concat_map
         (fun (_, pts) -> List.map (fun p -> p.Stats.Series.x) pts)
         aggregated)
  in
  let table =
    Stats.Table.create
      ~headers:("cov" :: List.map fst aggregated)
  in
  List.iter
    (fun cov ->
      let row =
        List.map
          (fun (_, pts) ->
            match
              List.find_opt (fun p -> p.Stats.Series.x = cov) pts
            with
            | Some p -> Printf.sprintf "%+.4f" p.Stats.Series.mean
            | None -> "n/a")
          aggregated
      in
      Stats.Table.add_row table (Printf.sprintf "%.3f" cov :: row))
    covs;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Stats.Series.render
           ~label:(Printf.sprintf "%s - METAHVP vs cov" s.algorithm)
           s.samples);
      Buffer.add_string buf "\n\n")
    result.series;
  Buffer.add_string buf "CSV (per-cov averages):\n";
  List.iter
    (fun (name, pts) ->
      Buffer.add_string buf
        (Stats.Series.to_csv ~header:("cov", name ^ "_minus_METAHVP") pts);
      Buffer.add_char buf '\n')
    aggregated;
  Buffer.contents buf
