(** Experiment scale presets.

    The paper's sweeps (64–512 hosts, 100–2000 services, 36,900 instances
    per service count, GLPK as LP back-end) do not fit a laptop-scale bench
    with a from-scratch dense simplex, so every driver is parameterized by a
    scale. The default [small] preset keeps services-per-node ratios
    comparable to the paper's (1.5–8 services per node) while shrinking
    absolute sizes; [medium] widens the sweeps; [paper] uses the paper's
    axes (64 hosts, 100/250/500 services) and is only intended for long
    unattended runs — LP-based algorithms are still confined to the reduced
    sizes for tractability (DESIGN.md §3).

    Select with the [VMALLOC_SCALE] environment variable
    ([small]/[medium]/[paper]); [FULL=1] is an alias for [medium]. *)

type t = {
  label : string;
  (* Table 1 & 2 *)
  table1_hosts : int;
  table1_services : int list;  (** three scenario sizes *)
  table1_covs : float list;
  table1_slacks : float list;
  table1_reps : int;
  (* Fig. 2–4 family *)
  fig_cov_hosts : int;
  fig_cov_services : int;
  fig_cov_slack : float;
  fig_cov_covs : float list;
  fig_cov_reps : int;
  fig_cov_include_rrnz : bool;
      (** RRNZ solves an LP per instance; off for larger scales *)
  (* Fig. 5–7 family *)
  error_hosts : int;
  error_services : int list;  (** three scenario sizes *)
  error_slack : float;
  error_cov : float;
  error_max_errors : float list;
  error_thresholds : float list;  (** minimum-threshold mitigation levels *)
  error_reps : int;
  (* §5.1 METAHVPLIGHT comparison *)
  light_hosts : int;
  light_services : int;
  light_reps : int;
}

val small : t
val medium : t
val paper : t

val from_env : unit -> t
(** Reads [VMALLOC_SCALE] / [FULL]; defaults to {!small}. *)

val domains_from_env : unit -> int
(** Trial parallelism: [VMALLOC_DOMAINS] if set ([1] = legacy sequential
    path), else [Domain.recommended_domain_count ()]. Alias of
    {!Par.Pool.domains_from_env}. *)
