(** Ablations of the design choices DESIGN.md §5 calls out. *)

type window_row = {
  window : int;
  successes : int;
  mean_yield : float;  (** over its own successes *)
}

val window_sweep :
  ?pool:Par.Pool.t ->
  ?hosts:int -> ?services:int -> ?reps:int -> unit -> window_row list
(** Permutation-Pack window size 1 vs 2 on the 2-D workload (paper §3.5.2
    notes w=1 makes PP and CP coincide). *)

type pp_impl_row = {
  dims : int;
  items : int;
  fast_seconds : float;
  naive_seconds : float;
  identical : bool;  (** same assignment from both implementations *)
}

val pp_implementation :
  ?pool:Par.Pool.t ->
  ?dims_list:int list -> ?items:int -> ?bins:int -> ?reps:int -> unit ->
  pp_impl_row list
(** Fast O(J²·D) key-based selection vs the literal D!-list formulation on
    synthetic packing instances: identical packings, diverging cost as D
    grows (the complexity improvement of §3.5.2). *)

type tolerance_row = {
  tolerance : float;
  mean_yield : float;
  mean_seconds : float;
}

val tolerance_sweep :
  ?pool:Par.Pool.t ->
  ?hosts:int -> ?services:int -> ?reps:int -> unit -> tolerance_row list
(** Binary-search stopping width (paper: 1e-4) vs achieved yield and time,
    using METAHVPLIGHT. *)

type dimension_row = {
  n_dims : int;
  resource_names : string;
  solved : int;
  total : int;
  mean_yield : float;  (** METAHVPLIGHT, over its successes *)
  mean_seconds : float;
}

val dimension_sweep :
  ?pool:Par.Pool.t ->
  ?hosts:int -> ?services:int -> ?reps:int -> unit -> dimension_row list
(** Solve N-dimensional instances ({!Workload.Generator_nd}) with
    METAHVPLIGHT for D = 2..4 — the framework handles arbitrary resource
    lists; cost grows with D through the packing inner loops. *)

val report_window : window_row list -> string
val report_pp_implementation : pp_impl_row list -> string
val report_tolerance : tolerance_row list -> string
val report_dimension : dimension_row list -> string
