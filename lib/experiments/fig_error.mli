(** Figures 5–7 (and the 35–66 family): achieved minimum yield vs maximum
    CPU-need estimation error.

    For each instance and maximum error, the true instance is perturbed into
    an estimated one; METAHVP plans on the estimate (optionally after the
    minimum-threshold mitigation), and the resulting placement is executed
    against the true needs under ALLOCWEIGHTS / EQUALWEIGHTS (plus the
    ALLOCCAPS reference the paper's §6.2 text discusses). The baselines are
    the perfect-knowledge plan ("ideal") and the even-spread zero-knowledge
    placement under equal weights. Values are averaged over instances where
    the planning step succeeded, as in the paper. *)

type series = {
  name : string;
  samples : (float * float) list;  (** (max error, min achieved yield) *)
}

type result = {
  services : int;
  hosts : int;
  slack : float;
  cov : float;
  series : series list;
  n_instances : int;
}

val run :
  ?progress:(string -> unit) ->
  ?pool:Par.Pool.t ->
  ?slack:float ->
  ?cov:float ->
  Scale.t ->
  services:int ->
  result
(** [slack]/[cov] override the scale's defaults (Fig. 35–66 families).
    With a [pool], instances are solved in parallel; every trial's
    perturbation RNG is derived from its spec before dispatch, so the
    result is identical to the sequential run. *)

val report : result -> string
