type t = {
  label : string;
  table1_hosts : int;
  table1_services : int list;
  table1_covs : float list;
  table1_slacks : float list;
  table1_reps : int;
  fig_cov_hosts : int;
  fig_cov_services : int;
  fig_cov_slack : float;
  fig_cov_covs : float list;
  fig_cov_reps : int;
  fig_cov_include_rrnz : bool;
  error_hosts : int;
  error_services : int list;
  error_slack : float;
  error_cov : float;
  error_max_errors : float list;
  error_thresholds : float list;
  error_reps : int;
  light_hosts : int;
  light_services : int;
  light_reps : int;
}

let range lo hi step =
  let rec loop x acc =
    if x > hi +. 1e-9 then List.rev acc else loop (x +. step) (x :: acc)
  in
  loop lo []

let small =
  {
    label = "small";
    table1_hosts = 10;
    table1_services = [ 15; 40; 80 ];
    table1_covs = [ 0.0; 0.5; 1.0 ];
    table1_slacks = [ 0.3; 0.6 ];
    table1_reps = 2;
    fig_cov_hosts = 12;
    fig_cov_services = 60;
    fig_cov_slack = 0.3;
    fig_cov_covs = range 0.0 1.0 0.125;
    fig_cov_reps = 3;
    fig_cov_include_rrnz = true;
    error_hosts = 12;
    error_services = [ 18; 45; 90 ];
    error_slack = 0.4;
    error_cov = 0.5;
    error_max_errors = range 0.0 0.4 0.05;
    error_thresholds = [ 0.0; 0.1; 0.3 ];
    error_reps = 3;
    light_hosts = 24;
    light_services = 180;
    light_reps = 3;
  }

let medium =
  {
    label = "medium";
    table1_hosts = 16;
    table1_services = [ 24; 64; 128 ];
    table1_covs = [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
    table1_slacks = [ 0.2; 0.4; 0.6; 0.8 ];
    table1_reps = 3;
    fig_cov_hosts = 16;
    fig_cov_services = 128;
    fig_cov_slack = 0.3;
    fig_cov_covs = range 0.0 1.0 0.1;
    fig_cov_reps = 5;
    fig_cov_include_rrnz = false;
    error_hosts = 16;
    error_services = [ 24; 64; 128 ];
    error_slack = 0.4;
    error_cov = 0.5;
    error_max_errors = range 0.0 0.4 0.04;
    error_thresholds = [ 0.0; 0.1; 0.3 ];
    error_reps = 5;
    light_hosts = 48;
    light_services = 384;
    light_reps = 3;
  }

let paper =
  {
    label = "paper";
    table1_hosts = 64;
    table1_services = [ 100; 250; 500 ];
    table1_covs = range 0.0 1.0 0.1;
    table1_slacks = range 0.1 0.9 0.1;
    table1_reps = 5;
    fig_cov_hosts = 64;
    fig_cov_services = 500;
    fig_cov_slack = 0.3;
    fig_cov_covs = range 0.0 1.0 0.05;
    fig_cov_reps = 10;
    fig_cov_include_rrnz = false;
    error_hosts = 64;
    error_services = [ 100; 250; 500 ];
    error_slack = 0.4;
    error_cov = 0.5;
    error_max_errors = range 0.0 0.4 0.02;
    error_thresholds = [ 0.0; 0.1; 0.3 ];
    error_reps = 10;
    light_hosts = 128;
    light_services = 1000;
    light_reps = 2;
  }

(* Companion knob to VMALLOC_SCALE: how many domains the drivers fan trials
   over. Parsing lives in Par.Pool (the CLI uses it without this module);
   re-exported here so the bench reads its whole configuration from one
   place. *)
let domains_from_env = Par.Pool.domains_from_env

let from_env () =
  match Sys.getenv_opt "VMALLOC_SCALE" with
  | Some "medium" -> medium
  | Some "paper" -> paper
  | Some "small" | None -> (
      match Sys.getenv_opt "FULL" with
      | Some ("1" | "true" | "yes") -> medium
      | _ -> small)
  | Some other ->
      Printf.eprintf "warning: unknown VMALLOC_SCALE %S, using small\n%!"
        other;
      small
