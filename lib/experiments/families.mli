(** Compact sweeps over the appendix figure families.

    Figures 8–34 repeat Fig. 2 at every memory slack in 0.1–0.9 (for each
    service count); Figures 35–66 repeat Figs. 5–7 over slacks 0.2–0.8 and
    CoV 0/0.5/1. Running every panel at full resolution is a long unattended
    job, so these drivers sample the family axes and print one summary table
    per family: enough to check that the paper's shape holds across the
    whole grid, not just the headline panels. *)

type cov_family_cell = {
  slack : float;
  cov : float;
  algorithm : string;
  mean_diff : float;  (** mean yield difference vs METAHVP *)
  solved : int;
}

val cov_family :
  ?progress:(string -> unit) ->
  ?pool:Par.Pool.t ->
  ?slacks:float list ->
  ?covs:float list ->
  ?reps:int ->
  Scale.t ->
  cov_family_cell list
(** The Fig. 8–34 axis sample. Defaults: slacks [0.1; 0.3; 0.5; 0.7; 0.9],
    covs [0.; 0.5; 1.], 2 reps, contenders METAGREEDY and METAVP. *)

val report_cov_family : cov_family_cell list -> string

type error_family_cell = {
  slack : float;
  cov : float;
  max_error : float;
  ideal : float option;
  weight_t0 : float option;  (** ALLOCWEIGHTS, threshold 0 *)
  weight_t1 : float option;  (** ALLOCWEIGHTS, threshold 0.1 *)
  zero_knowledge : float option;
}

val error_family :
  ?progress:(string -> unit) ->
  ?pool:Par.Pool.t ->
  ?slacks:float list ->
  ?covs:float list ->
  ?max_errors:float list ->
  ?reps:int ->
  Scale.t ->
  error_family_cell list
(** The Fig. 35–66 axis sample. Defaults: slacks [0.2; 0.6; 0.8], covs
    [0.; 0.5; 1.], errors [0.; 0.2; 0.4], 2 reps, services =
    the scale's middle error scenario. *)

val report_error_family : error_family_cell list -> string
