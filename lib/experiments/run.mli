(** Shared trial fan-out for the experiment drivers.

    Every driver takes an optional {!Par.Pool.t}; with no pool (or a pool
    of size 1) the legacy sequential path runs. Both entry points preserve
    input order, so aggregation folds observe trials exactly as the
    sequential code did — the determinism contract of DESIGN.md §8. *)

val map : ?pool:Par.Pool.t -> 'a array -> ('a -> 'b) -> 'b array
(** Order-preserving map over one trial per array element. *)

val concat_map_list :
  ?pool:Par.Pool.t -> 'a list -> ('a -> 'b list) -> 'b list
(** [List.concat_map] with the map fanned over the pool; result order is
    the sequential one. *)
