let map ?pool arr f =
  match pool with
  | Some pool when Par.Pool.size pool > 1 -> Par.Pool.map pool arr f
  | Some _ | None -> Array.map f arr

let concat_map_list ?pool list f =
  Array.to_list (map ?pool (Array.of_list list) f) |> List.concat
