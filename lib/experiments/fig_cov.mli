(** Figures 2–4 (and the 8–34 family): minimum-yield difference from
    METAHVP as platform heterogeneity (coefficient of variation of node
    capacities) grows.

    Each sample is one instance solved by both METAHVP and a contender;
    the y value is [contender_yield - metahvp_yield], so points below zero
    mean METAHVP wins. Figure 3 holds CPU homogeneous, Figure 4 memory. *)

type variant = Fully_heterogeneous | Cpu_homogeneous | Mem_homogeneous

val variant_name : variant -> string

type series = {
  algorithm : string;
  samples : (float * float) list;  (** (cov, yield difference) *)
}

type result = {
  variant : variant;
  hosts : int;
  services : int;
  slack : float;
  series : series list;
  metahvp_failures : int;  (** instances METAHVP itself could not solve *)
  n_instances : int;
}

val run :
  ?progress:(string -> unit) ->
  ?pool:Par.Pool.t ->
  ?slack:float ->
  Scale.t ->
  variant ->
  result
(** [slack] overrides the scale's slack, giving the Fig. 8–34 families.
    With a [pool], instances are solved in parallel; the result is
    identical to the sequential run. *)

val report : result -> string
(** Per-CoV average table, ASCII scatter per contender, and inline CSV. *)
