(** §5.1 comparison: METAHVPLIGHT vs METAHVP — near-identical solution
    quality at a fraction of the run time. *)

type result = {
  hosts : int;
  services : int;
  n_instances : int;
  both_solved : int;
  only_hvp : int;
  only_light : int;
  mean_yield_hvp : float;  (** over instances both solve *)
  mean_yield_light : float;
  mean_time_hvp : float;
  mean_time_light : float;
}

val run : ?progress:(string -> unit) -> ?pool:Par.Pool.t -> Scale.t -> result
(** With a [pool] of size > 1, each METAHVP / METAHVPLIGHT solve runs its
    yield search speculatively over the pool — counts and yields are
    bit-identical to the sequential run, only the timings change. *)

val report : result -> string
