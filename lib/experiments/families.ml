type cov_family_cell = {
  slack : float;
  cov : float;
  algorithm : string;
  mean_diff : float;
  solved : int;
}

let cov_family ?(progress = fun _ -> ()) ?pool
    ?(slacks = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]) ?(covs = [ 0.; 0.5; 1. ])
    ?(reps = 2) (scale : Scale.t) =
  let contenders =
    [ Heuristics.Algorithms.metagreedy; Heuristics.Algorithms.metavp ]
  in
  (* One independent task per (slack, cov) grid cell; the task order (and
     with it the returned cell order) matches the sequential nesting. *)
  let grid =
    List.concat_map (fun slack -> List.map (fun cov -> (slack, cov)) covs)
      slacks
  in
  Run.concat_map_list ?pool grid (fun (slack, cov) ->
      progress (Printf.sprintf "cov-family: slack %.1f cov %.1f" slack cov);
      let instances =
        Corpus.sweep ~hosts:scale.fig_cov_hosts
          ~services:scale.fig_cov_services ~covs:[ cov ] ~slacks:[ slack ]
          ~reps ()
      in
      let acc =
        List.map
          (fun (a : Heuristics.Algorithms.t) -> (a, ref 0., ref 0))
          contenders
      in
      List.iter
        (fun (_, inst) ->
          match Heuristics.Algorithms.metahvp.solve inst with
          | None -> ()
          | Some reference ->
              List.iter
                (fun ((algo : Heuristics.Algorithms.t), sum, count) ->
                  match algo.solve inst with
                  | None -> ()
                  | Some sol ->
                      sum := !sum +. (sol.min_yield -. reference.min_yield);
                      incr count)
                acc)
        instances;
      List.map
        (fun ((algo : Heuristics.Algorithms.t), sum, count) ->
          {
            slack;
            cov;
            algorithm = algo.name;
            mean_diff =
              (if !count = 0 then 0. else !sum /. float_of_int !count);
            solved = !count;
          })
        acc)

let report_cov_family cells =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "== Fig. 8-34 family: mean yield difference vs METAHVP across the \
     slack x cov grid ==\n";
  let algorithms =
    List.sort_uniq compare (List.map (fun c -> c.algorithm) cells)
  in
  let covs = List.sort_uniq compare (List.map (fun c -> c.cov) cells) in
  let slacks = List.sort_uniq compare (List.map (fun c -> c.slack) cells) in
  List.iter
    (fun algorithm ->
      Buffer.add_string buf (Printf.sprintf "\n%s - METAHVP:\n" algorithm);
      let table =
        Stats.Table.create
          ~headers:
            ("slack \\ cov"
            :: List.map (fun c -> Printf.sprintf "%.1f" c) covs)
      in
      List.iter
        (fun slack ->
          let row =
            List.map
              (fun cov ->
                match
                  List.find_opt
                    (fun c ->
                      c.algorithm = algorithm && c.slack = slack
                      && c.cov = cov)
                    cells
                with
                | Some c when c.solved > 0 ->
                    Printf.sprintf "%+.4f" c.mean_diff
                | _ -> "n/a")
              covs
          in
          Stats.Table.add_row table (Printf.sprintf "%.1f" slack :: row))
        slacks;
      Buffer.add_string buf (Stats.Table.render table);
      Buffer.add_char buf '\n')
    algorithms;
  Buffer.add_string buf
    "\nPaper's shape: every cell <= 0, magnitudes growing with cov and \
     shrinking with slack.\n";
  Buffer.contents buf

type error_family_cell = {
  slack : float;
  cov : float;
  max_error : float;
  ideal : float option;
  weight_t0 : float option;
  weight_t1 : float option;
  zero_knowledge : float option;
}

let error_family ?(progress = fun _ -> ()) ?pool
    ?(slacks = [ 0.2; 0.6; 0.8 ]) ?(covs = [ 0.; 0.5; 1. ])
    ?(max_errors = [ 0.; 0.2; 0.4 ]) ?(reps = 2) (scale : Scale.t) =
  let services = List.nth scale.error_services 1 in
  let metahvp = Heuristics.Algorithms.metahvp in
  (* One independent task per (slack, cov) grid cell, ordered as the
     sequential nesting; every RNG inside is derived from the spec hash. *)
  let grid =
    List.concat_map (fun slack -> List.map (fun cov -> (slack, cov)) covs)
      slacks
  in
  Run.concat_map_list ?pool grid (fun (slack, cov) ->
      progress (Printf.sprintf "error-family: slack %.1f cov %.1f" slack cov);
      let instances =
        Corpus.sweep ~hosts:scale.error_hosts ~services ~covs:[ cov ]
          ~slacks:[ slack ] ~reps ()
      in
      List.map
        (fun max_error ->
          let sums = Array.make 4 0. and counts = Array.make 4 0 in
          let push i = function
            | Some y ->
                sums.(i) <- sums.(i) +. y;
                counts.(i) <- counts.(i) + 1
            | None -> ()
          in
          List.iter
            (fun ((spec : Corpus.spec), true_instance) ->
              push 0
                (Option.map
                   (fun (s : Heuristics.Vp_solver.solution) -> s.min_yield)
                   (metahvp.solve true_instance));
              push 3
                (match Sharing.Zero_knowledge.place true_instance with
                | None -> None
                | Some placement ->
                    Sharing.Runtime_eval.actual_min_yield
                      Sharing.Policy.Equal_weights ~true_instance
                      ~estimated:true_instance placement);
              let rng =
                Corpus.rng_of_spec { spec with rep = spec.rep + 2000 }
              in
              let estimated_base =
                Workload.Errors.perturb ~rng ~max_error true_instance
              in
              List.iteri
                (fun i threshold ->
                  let estimated =
                    Workload.Errors.apply_threshold ~threshold estimated_base
                  in
                  match metahvp.solve estimated with
                  | None -> ()
                  | Some sol ->
                      push (1 + i)
                        (Sharing.Runtime_eval.actual_min_yield
                           Sharing.Policy.Alloc_weights ~true_instance
                           ~estimated sol.placement))
                [ 0.; 0.1 ])
            instances;
          let cell i =
            if counts.(i) = 0 then None
            else Some (sums.(i) /. float_of_int counts.(i))
          in
          {
            slack;
            cov;
            max_error;
            ideal = cell 0;
            weight_t0 = cell 1;
            weight_t1 = cell 2;
            zero_knowledge = cell 3;
          })
        max_errors)

let report_error_family cells =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "== Fig. 35-66 family: achieved min yield across slack x cov x error \
     (ALLOCWEIGHTS) ==\n";
  let table =
    Stats.Table.create
      ~headers:
        [ "slack"; "cov"; "max err"; "ideal"; "weight t=0"; "weight t=0.1";
          "zero-knowledge" ]
  in
  let fmt = function
    | Some y -> Printf.sprintf "%.4f" y
    | None -> "n/a"
  in
  List.iter
    (fun c ->
      Stats.Table.add_row table
        [
          Printf.sprintf "%.1f" c.slack;
          Printf.sprintf "%.1f" c.cov;
          Printf.sprintf "%.1f" c.max_error;
          fmt c.ideal;
          fmt c.weight_t0;
          fmt c.weight_t1;
          fmt c.zero_knowledge;
        ])
    cells;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf
    "\nPaper's shape: weight t=0 tracks ideal at error 0 and collapses as \
     error grows; t=0.1 flattens the decay; zero-knowledge is \
     error-independent.\n";
  Buffer.contents buf
