type result = {
  hosts : int;
  services : int;
  n_instances : int;
  both_solved : int;
  only_hvp : int;
  only_light : int;
  mean_yield_hvp : float;
  mean_yield_light : float;
  mean_time_hvp : float;
  mean_time_light : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One trial = one instance solved by both algorithms; the spans record
   the per-algorithm half so the METAHVP-vs-LIGHT cost gap shows up in a
   trace viewer, not just in the mean wall times. *)
let c_trials = Obs.Metrics.counter "experiments.light.trials"

let solve_traced name (algo : Heuristics.Algorithms.t) ?pool inst =
  Obs.Trace.span "trial" ~args:[ ("algorithm", name) ] @@ fun () ->
  timed (fun () -> algo.solve ?pool inst)

let run ?(progress = fun _ -> ()) ?pool (scale : Scale.t) =
  let instances =
    Corpus.sweep ~hosts:scale.light_hosts ~services:scale.light_services
      ~covs:[ 0.25; 0.5; 1.0 ] ~slacks:[ 0.3; 0.5 ] ~reps:scale.light_reps ()
  in
  let n = List.length instances in
  progress
    (Printf.sprintf "light: %d hosts, %d services, %d instances"
       scale.light_hosts scale.light_services n);
  let both = ref 0 and only_hvp = ref 0 and only_light = ref 0 in
  let yield_hvp = ref 0. and yield_light = ref 0. in
  let time_hvp = ref 0. and time_light = ref 0. in
  List.iteri
    (fun i (_, inst) ->
      (* The pool accelerates each solve from the inside (speculative
         yield probes) — bit-identical results, fewer oracle rounds. *)
      Obs.Metrics.incr c_trials;
      let hvp, t_hvp =
        solve_traced "METAHVP" Heuristics.Algorithms.metahvp ?pool inst
      in
      let light, t_light =
        solve_traced "METAHVPLIGHT" Heuristics.Algorithms.metahvplight ?pool
          inst
      in
      time_hvp := !time_hvp +. t_hvp;
      time_light := !time_light +. t_light;
      (match (hvp, light) with
      | Some a, Some b ->
          incr both;
          yield_hvp := !yield_hvp +. a.min_yield;
          yield_light := !yield_light +. b.min_yield
      | Some _, None -> incr only_hvp
      | None, Some _ -> incr only_light
      | None, None -> ());
      if (i + 1) mod 4 = 0 then
        progress (Printf.sprintf "light: %d/%d done" (i + 1) n))
    instances;
  let fdiv a b = if b = 0 then 0. else a /. float_of_int b in
  {
    hosts = scale.light_hosts;
    services = scale.light_services;
    n_instances = n;
    both_solved = !both;
    only_hvp = !only_hvp;
    only_light = !only_light;
    mean_yield_hvp = fdiv !yield_hvp !both;
    mean_yield_light = fdiv !yield_light !both;
    mean_time_hvp = fdiv !time_hvp n;
    mean_time_light = fdiv !time_light n;
  }

let report r =
  let speedup =
    if r.mean_time_light > 0. then r.mean_time_hvp /. r.mean_time_light
    else 0.
  in
  Printf.sprintf
    "== §5.1: METAHVPLIGHT vs METAHVP (%d hosts, %d services, %d instances) \
     ==\n\
     solved by both: %d   only METAHVP: %d   only METAHVPLIGHT: %d\n\
     mean min-yield where both solve: METAHVP %.4f   METAHVPLIGHT %.4f\n\
     mean run time: METAHVP %.3fs   METAHVPLIGHT %.3fs   (speedup %.1fx)\n\
     paper's shape: identical-to-near-identical quality, ~10x faster.\n"
    r.hosts r.services r.n_instances r.both_solved r.only_hvp r.only_light
    r.mean_yield_hvp r.mean_yield_light r.mean_time_hvp r.mean_time_light
    speedup
