type window_row = {
  window : int;
  successes : int;
  mean_yield : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pp_strategy ~window =
  {
    Packing.Strategy.algo =
      Packing.Strategy.Permutation_pack
        { flavour = Packing.Permutation_pack.Permutation;
          window = Some window };
    item_order = Vec.Metric.Desc (Vec.Metric.Scalar Vec.Metric.Max);
    bin_order = Vec.Metric.Asc (Vec.Metric.Scalar Vec.Metric.Sum);
    variant = Packing.Strategy.Hvp;
  }

let window_sweep ?pool ?(hosts = 12) ?(services = 60) ?(reps = 10) () =
  let instances =
    Array.of_list
      (Corpus.sweep ~hosts ~services ~covs:[ 0.5; 1.0 ] ~slacks:[ 0.3 ]
         ~reps ())
  in
  List.map
    (fun window ->
      let results =
        Run.map ?pool instances (fun (_, inst) ->
            Heuristics.Vp_solver.solve (pp_strategy ~window) inst)
      in
      let successes = ref 0 and yield_sum = ref 0. in
      Array.iter
        (function
          | Some (sol : Heuristics.Vp_solver.solution) ->
              incr successes;
              yield_sum := !yield_sum +. sol.min_yield
          | None -> ())
        results;
      {
        window;
        successes = !successes;
        mean_yield =
          (if !successes = 0 then 0.
           else !yield_sum /. float_of_int !successes);
      })
    [ 1; 2 ]

type pp_impl_row = {
  dims : int;
  items : int;
  fast_seconds : float;
  naive_seconds : float;
  identical : bool;
}

(* Synthetic packing instances: D-dimensional items and bins with mild
   heterogeneity, exercised at the raw packing layer (the model layer is
   2-D by workload design). *)
let synthetic_packing ~rng ~dims ~items ~bins =
  let mk_items () =
    Array.init items (fun id ->
        let agg =
          Vec.Vector.init dims (fun _ -> Prng.Rng.uniform_range rng 0.01 0.3)
        in
        Packing.Item.v ~id
          ~demand:(Vec.Epair.v ~elementary:(Vec.Vector.scale 0.5 agg)
                     ~aggregate:agg))
  in
  let mk_bins () =
    Array.init bins (fun id ->
        let agg =
          Vec.Vector.init dims (fun _ -> Prng.Rng.uniform_range rng 0.5 1.0)
        in
        Packing.Bin.v ~id
          ~capacity:(Vec.Epair.v ~elementary:(Vec.Vector.scale 0.5 agg)
                       ~aggregate:agg))
  in
  (mk_items, mk_bins)

let pp_implementation ?pool ?(dims_list = [ 2; 3; 4; 5; 6; 7 ]) ?(items = 80)
    ?(bins = 20)
    ?(reps = 5) () =
  Run.concat_map_list ?pool dims_list (fun dims ->
      let fast_time = ref 0. and naive_time = ref 0. in
      let identical = ref true in
      for rep = 1 to reps do
        let rng = Prng.Rng.create ~seed:(dims * 1000 + rep) in
        let mk_items, mk_bins = synthetic_packing ~rng ~dims ~items ~bins in
        let items_a = mk_items () in
        (* Same demands for both runs: regenerate with a cloned stream. *)
        let rng2 = Prng.Rng.create ~seed:(dims * 1000 + rep) in
        let mk_items2, mk_bins2 =
          synthetic_packing ~rng:rng2 ~dims ~items ~bins
        in
        let items_b = mk_items2 () in
        let bins_a = mk_bins () in
        let bins_b = mk_bins2 () in
        let ok_a, t_fast =
          timed (fun () ->
              Packing.Permutation_pack.pack ~bins:bins_a ~items:items_a ())
        in
        let ok_b, t_naive =
          timed (fun () ->
              Packing.Naive_permutation_pack.pack ~bins:bins_b ~items:items_b
                ())
        in
        fast_time := !fast_time +. t_fast;
        naive_time := !naive_time +. t_naive;
        let assign_a =
          Packing.Strategy.assignment ~bins:bins_a ~n_items:items
        in
        let assign_b =
          Packing.Strategy.assignment ~bins:bins_b ~n_items:items
        in
        if ok_a <> ok_b || assign_a <> assign_b then identical := false
      done;
      [
        {
          dims;
          items;
          fast_seconds = !fast_time /. float_of_int reps;
          naive_seconds = !naive_time /. float_of_int reps;
          identical = !identical;
        };
      ])

type tolerance_row = {
  tolerance : float;
  mean_yield : float;
  mean_seconds : float;
}

let tolerance_sweep ?pool ?(hosts = 12) ?(services = 60) ?(reps = 5) () =
  let instances =
    Array.of_list
      (Corpus.sweep ~hosts ~services ~covs:[ 0.5 ] ~slacks:[ 0.4 ] ~reps ())
  in
  List.map
    (fun tolerance ->
      let results =
        Run.map ?pool instances (fun (_, inst) ->
            timed (fun () ->
                Heuristics.Vp_solver.solve_multi ~tolerance
                  Packing.Strategy.hvp_light inst))
      in
      let yield_sum = ref 0. and time_sum = ref 0. and count = ref 0 in
      Array.iter
        (fun (result, dt) ->
          time_sum := !time_sum +. dt;
          match result with
          | Some (sol : Heuristics.Vp_solver.solution) ->
              incr count;
              yield_sum := !yield_sum +. sol.min_yield
          | None -> ())
        results;
      {
        tolerance;
        mean_yield =
          (if !count = 0 then 0. else !yield_sum /. float_of_int !count);
        mean_seconds = !time_sum /. float_of_int (Array.length instances);
      })
    [ 1e-1; 1e-2; 1e-3; 1e-4 ]

type dimension_row = {
  n_dims : int;
  resource_names : string;
  solved : int;
  total : int;
  mean_yield : float;
  mean_seconds : float;
}

let dimension_sweep ?pool ?(hosts = 8) ?(services = 32) ?(reps = 5) () =
  let resource_sets =
    [
      [| Workload.Generator_nd.cpu; Workload.Generator_nd.memory |];
      [|
        Workload.Generator_nd.cpu; Workload.Generator_nd.memory;
        Workload.Generator_nd.network;
      |];
      Workload.Generator_nd.default_resources;
    ]
  in
  Run.concat_map_list ?pool resource_sets (fun resources ->
      let solved = ref 0 and yield_sum = ref 0. and time_sum = ref 0. in
      for rep = 1 to reps do
        let inst =
          Workload.Generator_nd.generate
            ~rng:(Prng.Rng.create ~seed:(rep * 7919))
            { Workload.Generator_nd.hosts; services; cov = 0.5; resources }
        in
        let result, dt =
          timed (fun () -> Heuristics.Algorithms.metahvplight.solve inst)
        in
        time_sum := !time_sum +. dt;
        match result with
        | Some sol ->
            incr solved;
            yield_sum := !yield_sum +. sol.min_yield
        | None -> ()
      done;
      [
        {
          n_dims = Array.length resources;
          resource_names =
            String.concat "+"
              (Array.to_list
                 (Array.map
                    (fun r -> r.Workload.Generator_nd.name)
                    resources));
          solved = !solved;
          total = reps;
          mean_yield =
            (if !solved = 0 then 0. else !yield_sum /. float_of_int !solved);
          mean_seconds = !time_sum /. float_of_int reps;
        };
      ])

let report_window rows =
  let table =
    Stats.Table.create ~headers:[ "window"; "successes"; "mean yield" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          string_of_int r.window;
          string_of_int r.successes;
          Printf.sprintf "%.4f" r.mean_yield;
        ])
    rows;
  "== Ablation: Permutation-Pack window size (D = 2) ==\n"
  ^ Stats.Table.render table ^ "\n"

let report_pp_implementation rows =
  let table =
    Stats.Table.create
      ~headers:[ "D"; "items"; "fast (s)"; "naive D!-list (s)"; "identical" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          string_of_int r.dims;
          string_of_int r.items;
          Printf.sprintf "%.5f" r.fast_seconds;
          Printf.sprintf "%.5f" r.naive_seconds;
          (if r.identical then "yes" else "NO");
        ])
    rows;
  "== Ablation: fast key-based PP selection vs literal D!-list scan ==\n"
  ^ Stats.Table.render table
  ^ "\nIdentical packings; the naive implementation's cost grows with D!.\n"

let report_dimension rows =
  let table =
    Stats.Table.create
      ~headers:
        [ "D"; "resources"; "solved"; "mean yield"; "mean time (s)" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          string_of_int r.n_dims;
          r.resource_names;
          Printf.sprintf "%d/%d" r.solved r.total;
          Printf.sprintf "%.4f" r.mean_yield;
          Printf.sprintf "%.3f" r.mean_seconds;
        ])
    rows;
  "== Ablation: resource dimensionality (METAHVPLIGHT on N-D workloads) ==\n"
  ^ Stats.Table.render table ^ "\n"

let report_tolerance rows =
  let table =
    Stats.Table.create
      ~headers:[ "tolerance"; "mean yield"; "mean time (s)" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          Printf.sprintf "%g" r.tolerance;
          Printf.sprintf "%.4f" r.mean_yield;
          Printf.sprintf "%.3f" r.mean_seconds;
        ])
    rows;
  "== Ablation: binary-search stopping width (METAHVPLIGHT) ==\n"
  ^ Stats.Table.render table ^ "\n"
