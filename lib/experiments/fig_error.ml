type series = {
  name : string;
  samples : (float * float) list;
}

type result = {
  services : int;
  hosts : int;
  slack : float;
  cov : float;
  series : series list;
  n_instances : int;
}

let run ?(progress = fun _ -> ()) ?pool ?slack ?cov (scale : Scale.t)
    ~services =
  let slack = Option.value slack ~default:scale.error_slack in
  let cov = Option.value cov ~default:scale.error_cov in
  let metahvp = Heuristics.Algorithms.metahvp in
  (* Both the instance and the perturbation RNG of every trial are derived
     here, sequentially and from the spec's stable hash, before any
     dispatch — trial results cannot depend on execution order. *)
  let instances =
    Array.of_list
      (List.map
         (fun ((spec : Corpus.spec), inst) ->
           let perturb_rng =
             Corpus.rng_of_spec { spec with rep = spec.rep + 1000 }
           in
           (inst, perturb_rng))
         (Corpus.sweep ~hosts:scale.error_hosts ~services ~covs:[ cov ]
            ~slacks:[ slack ] ~reps:scale.error_reps ()))
  in
  let n = Array.length instances in
  progress (Printf.sprintf "fig-error: %d services, %d instances" services n);
  (* Each trial emits its (series, max_error, yield) samples in the same
     nested-loop order as the sequential code; trials are then folded in
     input order, so the accumulated series are identical. *)
  let trials =
    Run.map ?pool instances (fun (true_instance, perturb_rng) ->
        let out = ref [] in
        let push name x y = out := (name, x, y) :: !out in
        (* Ideal: plan with perfect knowledge. *)
        let ideal = metahvp.solve true_instance in
        (* Zero knowledge: even spread + equal weights, error-independent. *)
        let zero_knowledge =
          match Sharing.Zero_knowledge.place true_instance with
          | None -> None
          | Some placement ->
              Sharing.Runtime_eval.actual_min_yield
                Sharing.Policy.Equal_weights ~true_instance
                ~estimated:true_instance placement
        in
        List.iter
          (fun max_error ->
            (match ideal with
            | Some sol -> push "ideal" max_error sol.min_yield
            | None -> ());
            (match zero_knowledge with
            | Some y -> push "zero-knowledge" max_error y
            | None -> ());
            let estimated_base =
              Workload.Errors.perturb
                ~rng:(Prng.Rng.copy perturb_rng)
                ~max_error true_instance
            in
            List.iter
              (fun threshold ->
                let estimated =
                  Workload.Errors.apply_threshold ~threshold estimated_base
                in
                match metahvp.solve estimated with
                | None -> ()
                | Some sol ->
                    let eval policy =
                      Sharing.Runtime_eval.actual_min_yield policy
                        ~true_instance ~estimated sol.placement
                    in
                    (match eval Sharing.Policy.Alloc_weights with
                    | Some y ->
                        push
                          (Printf.sprintf "weight, min=%.2f" threshold)
                          max_error y
                    | None -> ());
                    (match eval Sharing.Policy.Equal_weights with
                    | Some y ->
                        push
                          (Printf.sprintf "equal, min=%.2f" threshold)
                          max_error y
                    | None -> ());
                    if threshold = 0. then
                      match eval Sharing.Policy.Alloc_caps with
                      | Some y -> push "caps, min=0.00" max_error y
                      | None -> ())
              scale.error_thresholds)
          scale.error_max_errors;
        List.rev !out)
  in
  (* Accumulators keyed by series name; each sample is (max_error, yield). *)
  let acc : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let push name x y =
    let cell =
      match Hashtbl.find_opt acc name with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add acc name c;
          c
    in
    cell := (x, y) :: !cell
  in
  Array.iter
    (fun samples -> List.iter (fun (name, x, y) -> push name x y) samples)
    trials;
  let order name =
    match name with
    | "ideal" -> 0
    | "zero-knowledge" -> 1
    | "caps, min=0.00" -> 2
    | _ -> 3
  in
  let series =
    Hashtbl.fold (fun name cell out ->
        { name; samples = List.rev !cell } :: out)
      acc []
    |> List.sort (fun a b ->
           match compare (order a.name) (order b.name) with
           | 0 -> compare a.name b.name
           | c -> c)
  in
  {
    services;
    hosts = scale.error_hosts;
    slack;
    cov;
    series;
    n_instances = n;
  }

let report result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "== Fig. 5-7 family: min achieved yield vs max CPU-need error ==\n\
        %d hosts, %d services, slack %.1f, cov %.1f, %d instances\n\
        (averages over instances whose planning step succeeded)\n\n"
       result.hosts result.services result.slack result.cov
       result.n_instances);
  let aggregated =
    List.map
      (fun s -> (s.name, Stats.Series.aggregate s.samples))
      result.series
  in
  let errors =
    List.sort_uniq Float.compare
      (List.concat_map
         (fun (_, pts) -> List.map (fun p -> p.Stats.Series.x) pts)
         aggregated)
  in
  let table =
    Stats.Table.create ~headers:("max error" :: List.map fst aggregated)
  in
  List.iter
    (fun err ->
      let row =
        List.map
          (fun (_, pts) ->
            match List.find_opt (fun p -> p.Stats.Series.x = err) pts with
            | Some p -> Printf.sprintf "%.4f" p.Stats.Series.mean
            | None -> "n/a")
          aggregated
      in
      Stats.Table.add_row table (Printf.sprintf "%.2f" err :: row))
    errors;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\nCSV (per-error averages):\n";
  List.iter
    (fun (name, pts) ->
      Buffer.add_string buf
        (Stats.Series.to_csv ~header:("max_error", name) pts);
      Buffer.add_char buf '\n')
    aggregated;
  Buffer.contents buf
