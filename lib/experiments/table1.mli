(** Table 1 & Table 2 driver: pairwise comparison of the major heuristics
    (RRND, RRNZ, METAGREEDY, METAVP, METAHVP) and their run times, per
    service-count scenario. *)

type scenario = {
  services : int;
  hosts : int;
  n_instances : int;
  names : string array;
  yields : float option array array;  (** [algorithm].(instance) *)
  mean_runtime : float array;  (** seconds, averaged over all instances *)
}

val run :
  ?progress:(string -> unit) ->
  ?pool:Par.Pool.t ->
  ?probe_pool:Par.Pool.t ->
  ?sched:Par.Scheduler.t ->
  Scale.t ->
  scenario list
(** One scenario per entry of [scale.table1_services]; instances sweep the
    scale's CoV and slack lists. With a [pool], trials fan out over its
    domains; with a [probe_pool], each trial's yield binary search instead
    probes speculatively over that pool ({!Heuristics.Binary_search}
    [.maximize_par]); with a [sched], each scenario's full trial set runs
    as one batched multi-tenant workload ({!Heuristics.Batch.solve_batch})
    whose probe rounds interleave on the scheduler's pool — [sched]
    supersedes the other two, pass exactly one. Every mode leaves the
    yields (and thus {!report_table1}) identical to the sequential run —
    only [mean_runtime] varies with machine load (in batched mode it is
    the batch wall time apportioned evenly over the trials). *)

val report_table1 : scenario list -> string
(** The (Y_{A,B}, S_{A,B}) matrices, one per scenario — paper Table 1. *)

val report_table2 : scenario list -> string
(** Mean run times per algorithm and scenario — paper Table 2. *)
