type scenario = {
  services : int;
  hosts : int;
  n_instances : int;
  names : string array;
  yields : float option array array;
  mean_runtime : float array;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One trial = one (instance, algorithm) solve. The counter totals are
   domain-count-invariant (trials do identical work wherever they run);
   the trace spans carry the per-trial record — algorithm, scenario size,
   outcome — stamped with the executing domain. *)
let c_trials = Obs.Metrics.counter "experiments.table1.trials"

let run ?(progress = fun _ -> ()) ?pool ?probe_pool ?sched (scale : Scale.t) =
  let algorithms = Array.of_list (Heuristics.Algorithms.majors ~seed:1) in
  let n_algos = Array.length algorithms in
  List.map
    (fun services ->
      (* The corpus (and with it every per-spec RNG stream) is derived
         sequentially, before any dispatch; each trial below is then a pure
         function of its instance, so the parallel fan-out returns
         bit-for-bit the sequential results. *)
      let instances =
        Array.of_list
          (Corpus.sweep ~hosts:scale.table1_hosts ~services
             ~covs:scale.table1_covs ~slacks:scale.table1_slacks
             ~reps:scale.table1_reps ())
      in
      let n = Array.length instances in
      progress
        (Printf.sprintf "table1: %d services, %d instances%s" services n
           (match pool with
           | Some p when Par.Pool.size p > 1 ->
               Printf.sprintf " on %d domains" (Par.Pool.size p)
           | _ -> ""));
      let per_instance =
        match sched with
        | Some sched ->
            (* Batched mode: the whole scenario — every (instance,
               algorithm) trial — is one multi-tenant workload on the
               scheduler's pool; probe rounds of all trials interleave.
               Yields are bit-identical to the sequential run (the batch
               driver's contract); per-trial wall times are unobservable
               inside an interleaved run, so the batch wall time is
               apportioned evenly across the trials. *)
            let jobs =
              Array.init (n * n_algos) (fun t ->
                  let _, inst = instances.(t / n_algos) in
                  { Heuristics.Batch.algo = algorithms.(t mod n_algos);
                    instance = inst })
            in
            let outs, elapsed =
              timed (fun () -> Heuristics.Batch.solve_batch ~sched jobs)
            in
            let dt = elapsed /. float_of_int (max 1 (Array.length jobs)) in
            Array.init n (fun i ->
                Array.init n_algos (fun a ->
                    Obs.Metrics.incr c_trials;
                    (outs.((i * n_algos) + a), dt)))
        | None ->
            (* [pool] fans trials out; [probe_pool] instead accelerates
               each trial's yield search from the inside. Both leave the
               yields (and so the report) bit-identical to the sequential
               run. *)
            Run.map ?pool instances (fun (_, inst) ->
                Array.map
                  (fun (algo : Heuristics.Algorithms.t) ->
                    Obs.Metrics.incr c_trials;
                    Obs.Trace.span "trial"
                      ~args:
                        [ ("algorithm", algo.name);
                          ("services", string_of_int services) ]
                      (fun () ->
                        timed (fun () -> algo.solve ?pool:probe_pool inst)))
                  algorithms)
      in
      let yields = Array.map (fun _ -> Array.make n None) algorithms in
      let time_sum = Array.make (Array.length algorithms) 0. in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun a (result, dt) ->
              time_sum.(a) <- time_sum.(a) +. dt;
              yields.(a).(i) <-
                Option.map
                  (fun (s : Heuristics.Vp_solver.solution) -> s.min_yield)
                  result)
            row)
        per_instance;
      progress (Printf.sprintf "table1: %d services done" services);
      {
        services;
        hosts = scale.table1_hosts;
        n_instances = n;
        names = Array.map (fun (a : Heuristics.Algorithms.t) -> a.name)
            algorithms;
        yields;
        mean_runtime =
          Array.map (fun t -> t /. float_of_int (max 1 n)) time_sum;
      })
    scale.table1_services

let cell (c : Stats.Pairwise.comparison) =
  let y =
    match c.yield_diff_pct with
    | None -> "n/a"
    | Some v -> Printf.sprintf "%+.1f%%" v
  in
  Printf.sprintf "(%s, %+.1f%%)" y c.success_diff_pct

let report_table1 scenarios =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "== Table 1: %d services on %d hosts (%d instances) ==\n\
            cell A/B = (Y_A,B: avg %% min-yield difference of A relative \
            to B where both succeed,\n\
           \            S_A,B: %% instances only A solves minus %% only B \
            solves)\n"
           s.services s.hosts s.n_instances);
      let table =
        Stats.Table.create
          ~headers:("A/B" :: Array.to_list s.names)
      in
      Array.iteri
        (fun i name_a ->
          let row =
            Array.to_list
              (Array.mapi
                 (fun j _ ->
                   if i = j then "-"
                   else
                     cell
                       (Stats.Pairwise.compare ~a:s.yields.(i)
                          ~b:s.yields.(j)))
                 s.names)
          in
          Stats.Table.add_row table (name_a :: row))
        s.names;
      Buffer.add_string buf (Stats.Table.render table);
      Buffer.add_string buf "\n\n")
    scenarios;
  Buffer.contents buf

let report_table2 scenarios =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== Table 2: mean run times (seconds) ==\n";
  match scenarios with
  | [] -> Buffer.contents buf
  | first :: _ ->
      let headers =
        "Algorithm"
        :: List.map
             (fun (s : scenario) -> Printf.sprintf "%d tasks" s.services)
             scenarios
      in
      let table = Stats.Table.create ~headers in
      Array.iteri
        (fun a name ->
          let row =
            List.map
              (fun (s : scenario) ->
                Printf.sprintf "%.3f" s.mean_runtime.(a))
              scenarios
          in
          Stats.Table.add_row table (name :: row))
        first.names;
      Buffer.add_string buf (Stats.Table.render table);
      Buffer.add_string buf "\n";
      Buffer.contents buf
