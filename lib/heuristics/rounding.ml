let round_probabilities ~rng ~e_matrix instance =
  let open Vec in
  let j_count = Model.Instance.n_services instance in
  let h_count = Model.Instance.n_nodes instance in
  let dims =
    Epair.dim (Model.Instance.node instance 0).Model.Node.capacity
  in
  let req_load = Array.init h_count (fun _ -> Array.make dims 0.) in
  let fits h (s : Model.Service.t) =
    let node = Model.Instance.node instance h in
    Vector.fits s.requirement.Epair.elementary
      node.Model.Node.capacity.Epair.elementary
    &&
    let cap = node.Model.Node.capacity.Epair.aggregate in
    let rec loop d =
      if d >= dims then true
      else
        let c = Vector.get cap d in
        let tol = Vector.eps *. Float.max 1. c in
        req_load.(h).(d) +. Vector.get s.requirement.Epair.aggregate d
        <= c +. tol
        && loop (d + 1)
    in
    loop 0
  in
  let commit h (s : Model.Service.t) =
    for d = 0 to dims - 1 do
      req_load.(h).(d) <-
        req_load.(h).(d) +. Vector.get s.requirement.Epair.aggregate d
    done
  in
  let placement = Array.make j_count (-1) in
  let place_one j =
    let s = Model.Instance.service instance j in
    let probs = Array.copy e_matrix.(j) in
    let rec draw () =
      if Array.for_all (fun p -> p <= 0.) probs then false
      else begin
        let h = Prng.Rng.choose_weighted rng probs in
        if fits h s then begin
          commit h s;
          placement.(j) <- h;
          true
        end
        else begin
          probs.(h) <- 0.;
          draw ()
        end
      end
    in
    draw ()
  in
  let rec loop j =
    if j >= j_count then Some placement
    else if place_one j then loop (j + 1)
    else None
  in
  loop 0

let default_rng () = Prng.Rng.create ~seed:0

let run_rounding ~rng ~adjust instance =
  match Milp.relaxed_e_matrix instance with
  | None -> None
  | Some e_matrix -> (
      let e_matrix = adjust e_matrix in
      match round_probabilities ~rng ~e_matrix instance with
      | None -> None
      | Some placement -> Vp_solver.evaluate instance placement)

let rrnd ?rng instance =
  let rng = match rng with Some r -> r | None -> default_rng () in
  run_rounding ~rng ~adjust:Fun.id instance

let rrnz ?rng ?(epsilon = 0.01) instance =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let adjust =
    Array.map (Array.map (fun p -> if p <= 0. then epsilon else p))
  in
  run_rounding ~rng ~adjust instance

(* Probe-based variants: instead of one maximizing LP, binary-search the
   yield with warm-started feasibility probes (Milp.relaxed_yield_search)
   and round the e-matrix of the highest feasible probe. The rounding pass
   itself is unchanged; what differs is which vertex supplies the
   probabilities (the probe vertex is feasibility-tight at the found yield
   rather than objective-optimal, often spreading mass over more nodes). *)
let run_probed ~rng ~adjust ?tolerance instance =
  match Milp.relaxed_yield_search ?tolerance instance with
  | None -> None
  | Some (e_matrix, _yield) -> (
      let e_matrix = adjust e_matrix in
      match round_probabilities ~rng ~e_matrix instance with
      | None -> None
      | Some placement -> Vp_solver.evaluate instance placement)

let rrnd_probed ?rng ?tolerance instance =
  let rng = match rng with Some r -> r | None -> default_rng () in
  run_probed ~rng ~adjust:Fun.id ?tolerance instance

let rrnz_probed ?rng ?(epsilon = 0.01) ?tolerance instance =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let adjust =
    Array.map (Array.map (fun p -> if p <= 0. then epsilon else p))
  in
  run_probed ~rng ~adjust ?tolerance instance
