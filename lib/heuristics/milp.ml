type mapping = {
  n_vars : int;
  e : int -> int -> int;
  y : int -> int -> int;
  y_min : int;
}

let formulation ?(integer = true) instance =
  let open Vec in
  let j_count = Model.Instance.n_services instance in
  let h_count = Model.Instance.n_nodes instance in
  let dims =
    Epair.dim (Model.Instance.node instance 0).Model.Node.capacity
  in
  let e j h = (j * h_count) + h in
  let y j h = (j_count * h_count) + (j * h_count) + h in
  let y_min = 2 * j_count * h_count in
  let n_vars = y_min + 1 in
  let objective = Array.make n_vars 0. in
  objective.(y_min) <- 1.;
  let upper = Array.make n_vars 1. in
  let constraints = ref [] in
  let add c = constraints := c :: !constraints in
  (* (3) each service placed exactly once. *)
  for j = 0 to j_count - 1 do
    add
      (Lp.Problem.c
         ~name:(Printf.sprintf "place_%d" j)
         (List.init h_count (fun h -> (e j h, 1.)))
         Lp.Problem.Eq 1.)
  done;
  (* (4) yield only on the hosting node. *)
  for j = 0 to j_count - 1 do
    for h = 0 to h_count - 1 do
      add
        (Lp.Problem.c
           ~name:(Printf.sprintf "gate_%d_%d" j h)
           [ (y j h, 1.); (e j h, -1.) ]
           Lp.Problem.Le 0.)
    done
  done;
  (* (5) elementary capacities; constraints slack at e = y = 1 are omitted
     (they can never bind). *)
  for j = 0 to j_count - 1 do
    let s = Model.Instance.service instance j in
    for h = 0 to h_count - 1 do
      let node = Model.Instance.node instance h in
      for d = 0 to dims - 1 do
        let re = Vector.get s.Model.Service.requirement.Epair.elementary d in
        let ne = Vector.get s.Model.Service.need.Epair.elementary d in
        let ce = Vector.get node.Model.Node.capacity.Epair.elementary d in
        if re +. ne > ce +. Vector.eps then
          add
            (Lp.Problem.c
               ~name:(Printf.sprintf "elem_%d_%d_%d" j h d)
               [ (e j h, re); (y j h, ne) ]
               Lp.Problem.Le ce)
      done
    done
  done;
  (* (6) aggregate capacities. *)
  for h = 0 to h_count - 1 do
    let node = Model.Instance.node instance h in
    for d = 0 to dims - 1 do
      let coeffs = ref [] in
      for j = j_count - 1 downto 0 do
        let s = Model.Instance.service instance j in
        let ra = Vector.get s.Model.Service.requirement.Epair.aggregate d in
        let na = Vector.get s.Model.Service.need.Epair.aggregate d in
        if ra <> 0. then coeffs := (e j h, ra) :: !coeffs;
        if na <> 0. then coeffs := (y j h, na) :: !coeffs
      done;
      if !coeffs <> [] then
        add
          (Lp.Problem.c
             ~name:(Printf.sprintf "agg_%d_%d" h d)
             !coeffs Lp.Problem.Le
             (Vector.get node.Model.Node.capacity.Epair.aggregate d))
    done
  done;
  (* (7) Y below every service's yield. *)
  for j = 0 to j_count - 1 do
    add
      (Lp.Problem.c
         ~name:(Printf.sprintf "minyield_%d" j)
         ((y_min, -1.) :: List.init h_count (fun h -> (y j h, 1.)))
         Lp.Problem.Ge 0.)
  done;
  let integer_vars =
    if integer then List.init (j_count * h_count) Fun.id else []
  in
  let problem =
    Lp.Problem.create ~sense:Lp.Problem.Maximize ~upper ~integer:integer_vars
      ~n_vars ~objective ~constraints:(List.rev !constraints) ()
  in
  (problem, { n_vars; e; y; y_min })

type exact = {
  solution : Vp_solver.solution;
  milp_objective : float;
}

let placement_of_e instance mapping x =
  let j_count = Model.Instance.n_services instance in
  let h_count = Model.Instance.n_nodes instance in
  Array.init j_count (fun j ->
      let best = ref 0 in
      for h = 1 to h_count - 1 do
        if x.(mapping.e j h) > x.(mapping.e j !best) then best := h
      done;
      !best)

let solve_exact ?node_limit instance =
  let problem, mapping = formulation ~integer:true instance in
  match Lp.Branch_bound.solve ?node_limit problem with
  | Lp.Branch_bound.Infeasible -> Some None
  | Lp.Branch_bound.Unbounded ->
      (* The formulation is bounded by construction. *)
      assert false
  | Lp.Branch_bound.Node_limit None -> None
  | Lp.Branch_bound.Node_limit (Some sol) | Lp.Branch_bound.Optimal sol -> (
      let placement = placement_of_e instance mapping sol.Lp.Simplex.x in
      match Vp_solver.evaluate instance placement with
      | None -> Some None
      | Some solution ->
          Some (Some { solution; milp_objective = sol.Lp.Simplex.objective }))

let solve_relaxed instance =
  let problem, mapping = formulation ~integer:false instance in
  match Lp.Simplex.solve problem with
  | Lp.Simplex.Optimal sol -> Some (sol, mapping)
  | Lp.Simplex.Infeasible -> None
  | Lp.Simplex.Unbounded -> assert false

let relaxed_bound instance =
  match solve_relaxed instance with
  | Some (sol, _) -> Some sol.Lp.Simplex.objective
  | None -> None

let e_matrix_of instance mapping x =
  let j_count = Model.Instance.n_services instance in
  let h_count = Model.Instance.n_nodes instance in
  Array.init j_count (fun j ->
      Array.init h_count (fun h -> x.(mapping.e j h)))

let relaxed_e_matrix instance =
  match solve_relaxed instance with
  | None -> None
  | Some (sol, mapping) ->
      Some (e_matrix_of instance mapping sol.Lp.Simplex.x)

let probe_formulation instance ~yield_floor =
  let problem, mapping = formulation ~integer:false instance in
  let floor_y = Float.max 0. (Float.min 1. yield_floor) in
  let lower = Array.make problem.Lp.Problem.n_vars 0. in
  lower.(mapping.y_min) <- floor_y;
  let objective = Array.make problem.Lp.Problem.n_vars 0. in
  ({ problem with Lp.Problem.objective; lower }, mapping)

let relaxed_yield_search ?tolerance ?(warm = true) instance =
  let oracle basis y =
    let problem, mapping = probe_formulation instance ~yield_floor:y in
    let warm_basis = if warm then basis else None in
    let result, returned = Lp.Simplex.solve_basis ?warm_basis problem in
    let next =
      if not warm then None
      else match returned with Some _ -> returned | None -> basis
    in
    match result with
    | Lp.Simplex.Optimal sol ->
        (next, Some (e_matrix_of instance mapping sol.Lp.Simplex.x))
    | Lp.Simplex.Infeasible -> (next, None)
    | Lp.Simplex.Unbounded ->
        (* Every probe variable lives in [0,1] and the objective is 0. *)
        assert false
  in
  Binary_search.maximize_warm ?tolerance ~init:None oracle
