(** The paper's MILP formulation (§3.1, Equations 1–7) and its exact /
    relaxed solutions (§3.2).

    Variables: [e_jh ∈ {0,1}] (service [j] placed on node [h]),
    [y_jh ∈ [0,1]] (yield of [j] on [h]), and the objective [Y] (minimum
    yield). Constraints: each service on exactly one node (3), yield only
    where placed (4), per-service elementary capacities (5), per-node
    aggregate capacities (6), [Y] below every service's total yield (7).

    Elementary constraints that are slack even at [e = y = 1] are omitted
    from the generated program — they cannot bind, and dropping them keeps
    the simplex tableau within reach for the instance sizes the LP-based
    algorithms are run on (DESIGN.md §3). *)

type mapping = {
  n_vars : int;
  e : int -> int -> int;  (** [e j h] is the column of e_jh *)
  y : int -> int -> int;  (** [y j h] is the column of y_jh *)
  y_min : int;  (** column of the objective variable Y *)
}

val formulation : ?integer:bool -> Model.Instance.t -> Lp.Problem.t * mapping
(** [integer] (default true) controls whether the [e_jh] carry integrality
    flags; [formulation ~integer:false] is the rational relaxation. *)

type exact = {
  solution : Vp_solver.solution;
  milp_objective : float;  (** the MILP's optimal Y *)
}

val solve_exact :
  ?node_limit:int -> Model.Instance.t -> exact option option
(** Exact branch-and-bound solution. [None] = search truncated by
    [node_limit] with no incumbent (unknown); [Some None] = proven
    infeasible; [Some (Some e)] = placement extracted from the optimal
    [e_jh], re-evaluated by water-filling (which can only improve on the
    MILP's [Y]). *)

val relaxed_bound : Model.Instance.t -> float option
(** Optimal [Y] of the rational relaxation — an upper bound on any
    placement's minimum yield (paper §3.2). [None] when even the relaxation
    is infeasible. *)

val relaxed_e_matrix : Model.Instance.t -> float array array option
(** The fractional [e_jh] matrix (J rows, H columns) of the relaxed
    solution, the input to randomized rounding. *)

val probe_formulation :
  Model.Instance.t -> yield_floor:float -> Lp.Problem.t * mapping
(** The relaxation as a {e feasibility probe} at a fixed yield floor: the
    rational formulation with a zero objective and
    [lower.(y_min) = yield_floor] (clamped to [0,1]). All probes of one
    instance share the same constraint layout and cost vector — only the
    [y_min] lower bound moves — so a basis captured from one probe
    warm-starts the next ({!Lp.Simplex.solve_basis}). *)

val relaxed_yield_search :
  ?tolerance:float -> ?warm:bool -> Model.Instance.t ->
  (float array array * float) option
(** Binary search on the yield using {!probe_formulation} probes (one LP
    feasibility check per probe) instead of one maximizing LP solve.
    Returns the fractional [e_jh] matrix of the highest feasible probe and
    that probe's yield; [None] when even yield 0 is infeasible. [warm]
    (default true) threads the previous probe's basis into each solve via
    {!Binary_search.maximize_warm}; the probe schedule is identical either
    way, so [warm] trades pivots, never answers (the differential suite
    locks warm-vs-cold agreement). [tolerance] as in
    {!Binary_search.maximize}. *)
