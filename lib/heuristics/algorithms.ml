type kind =
  | Yield_search of Packing.Strategy.t list
  | Direct

type t = {
  name : string;
  kind : kind;
  solve : ?pool:Par.Pool.t -> Model.Instance.t -> Vp_solver.solution option;
}

(* Algorithms with no yield binary search ignore the pool. *)
let no_pool solve ?pool:_ instance = solve instance

let metagreedy =
  { name = "METAGREEDY"; kind = Direct; solve = no_pool Greedy.metagreedy }

let metavp =
  { name = "METAVP";
    kind = Yield_search Packing.Strategy.vp_all;
    solve =
      (fun ?pool instance ->
        Vp_solver.solve_multi ?pool Packing.Strategy.vp_all instance) }

let metahvp =
  { name = "METAHVP";
    kind = Yield_search Packing.Strategy.hvp_all;
    solve =
      (fun ?pool instance ->
        Vp_solver.solve_multi ?pool Packing.Strategy.hvp_all instance) }

let metahvplight =
  { name = "METAHVPLIGHT";
    kind = Yield_search Packing.Strategy.hvp_light;
    solve =
      (fun ?pool instance ->
        Vp_solver.solve_multi ?pool Packing.Strategy.hvp_light instance) }

let rrnd ~seed =
  {
    name = "RRND";
    kind = Direct;
    solve =
      no_pool (fun instance ->
          Rounding.rrnd ~rng:(Prng.Rng.create ~seed) instance);
  }

let rrnz ~seed =
  {
    name = "RRNZ";
    kind = Direct;
    solve =
      no_pool (fun instance ->
          Rounding.rrnz ~rng:(Prng.Rng.create ~seed) instance);
  }

let rrnd_probed ~seed =
  {
    name = "RRND-PROBED";
    kind = Direct;
    solve =
      no_pool (fun instance ->
          Rounding.rrnd_probed ~rng:(Prng.Rng.create ~seed) instance);
  }

let rrnz_probed ~seed =
  {
    name = "RRNZ-PROBED";
    kind = Direct;
    solve =
      no_pool (fun instance ->
          Rounding.rrnz_probed ~rng:(Prng.Rng.create ~seed) instance);
  }

let exact_milp ?node_limit () =
  {
    name = "MILP";
    kind = Direct;
    solve =
      no_pool (fun instance ->
          match Milp.solve_exact ?node_limit instance with
          | Some (Some e) -> Some e.Milp.solution
          | Some None | None -> None);
  }

let single_vp strategy =
  { name = Packing.Strategy.name strategy;
    kind = Yield_search [ strategy ];
    solve =
      (fun ?pool instance -> Vp_solver.solve ?pool strategy instance) }

let single_greedy sort place =
  {
    name =
      Printf.sprintf "GREEDY-%s/%s" (Greedy.sort_name sort)
        (Greedy.place_name place);
    kind = Direct;
    solve = no_pool (Greedy.solve sort place);
  }

let majors ~seed =
  [ rrnd ~seed; rrnz ~seed; metagreedy; metavp; metahvp ]

let valid_names =
  [ "rrnd"; "rrnz"; "rrnd-probed"; "rrnz-probed"; "metagreedy"; "metavp";
    "metahvp"; "metahvplight"; "milp"; "greedy" ]

let by_name ~seed name =
  match String.uppercase_ascii name with
  | "RRND" -> Some (rrnd ~seed)
  (* The single best-performing greedy of the paper's §7 sweep — the cheap
     per-epoch re-solver for large online runs, where the meta algorithms'
     full sweep would dominate the event loop. *)
  | "GREEDY" -> Some (single_greedy Greedy.S7 Greedy.P4)
  | "RRNZ" -> Some (rrnz ~seed)
  | "RRND-PROBED" -> Some (rrnd_probed ~seed)
  | "RRNZ-PROBED" -> Some (rrnz_probed ~seed)
  | "METAGREEDY" -> Some metagreedy
  | "METAVP" -> Some metavp
  | "METAHVP" -> Some metahvp
  | "METAHVPLIGHT" -> Some metahvplight
  | "MILP" -> Some (exact_milp ())
  | _ -> None
