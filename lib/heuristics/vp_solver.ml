type solution = {
  placement : Model.Placement.t;
  min_yield : float;
}

let items_at_yield instance y =
  Array.init (Model.Instance.n_services instance) (fun j ->
      let s = Model.Instance.service instance j in
      Packing.Item.v ~id:j ~demand:(Model.Service.demand_at_yield s y))

let fresh_bins instance =
  Array.init (Model.Instance.n_nodes instance) (fun h ->
      let node = Model.Instance.node instance h in
      Packing.Bin.v ~id:h ~capacity:node.Model.Node.capacity)

let pack_at_yield strategy instance y =
  let items = items_at_yield instance y in
  let bins = fresh_bins instance in
  Packing.Strategy.run strategy ~bins ~items

(* Oracle-level observability: how many fixed-yield probes a solve costs,
   how many strategy attempts each probe burns before one packs, and which
   strategy actually wins (the question behind METAHVP's 253-strategy
   bill). Counting is keyed off strategy identity only, so totals are
   deterministic for a fixed amount of performed work. *)
let c_oracle = Obs.Metrics.counter "vp_solver.oracle_calls"
let c_feasible = Obs.Metrics.counter "vp_solver.oracle_feasible"
let c_attempts = Obs.Metrics.counter "vp_solver.strategy_attempts"
let c_pruned = Obs.Metrics.counter "vp_solver.strategies_pruned"
let h_win_index = Obs.Metrics.histogram "vp_solver.strategies_per_win"

let win_counter strategy =
  Obs.Metrics.counter ("vp_solver.win." ^ Packing.Strategy.name strategy)

let probe_args y = [ ("y", Printf.sprintf "%.6f" y) ]

let probe_single strategy instance y =
  Obs.Trace.span "probe" ~args:(probe_args y) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  Obs.Metrics.incr c_attempts;
  match pack_at_yield strategy instance y with
  | None -> None
  | Some placement ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_feasible;
        Obs.Metrics.incr (win_counter strategy);
        Obs.Metrics.observe h_win_index 1
      end;
      Some placement

let probe_multi strategies instance y =
  Obs.Trace.span "probe" ~args:(probe_args y) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let rec attempt idx = function
    | [] -> None
    | strategy :: rest -> (
        Obs.Metrics.incr c_attempts;
        match pack_at_yield strategy instance y with
        | None -> attempt (idx + 1) rest
        | Some placement ->
            if Obs.Metrics.enabled () then begin
              Obs.Metrics.incr c_feasible;
              Obs.Metrics.incr (win_counter strategy);
              Obs.Metrics.observe h_win_index idx
            end;
            Obs.Trace.instant "win"
              ~args:
                (("strategy", Packing.Strategy.name strategy) :: probe_args y);
            Some placement)
  in
  attempt 1 strategies

(* Probe-shared packing kernel (DESIGN.md §11). Every strategy attempt of
   one fixed-yield probe sees the same item demands, so the kernel builds
   the item array once per solve and refills its demand vectors in place
   per probe (a fused [r + y*n] pass over the instance's flattened
   buffers), recycles one bin array via [Bin.reset] instead of
   reallocating per attempt, and memoizes per-probe sort orders and
   Permutation-Pack item permutations through [Strategy.cache].

   Bit-identity with the naive path: refilled demands use the exact
   [axpy] expression fresh allocation uses; reset bins equal fresh bins;
   memoized sorts are the same stable sorts over the same values; and the
   scratch-backed Permutation-Pack selection compares the same keys with
   the same tie-breaks. Locked down by test_kernel_diff.ml.

   Monotone strategy pruning — skip a strategy at probe [y] once it has
   failed at some [y' <= y] — is also implemented, but as an *opt-in*
   ([~prune:true] / VMALLOC_PROBE_PRUNE=1). Its premise, per-strategy
   monotone feasibility, is strictly stronger than the combined-oracle
   monotonicity the binary search assumes, and differential sweeps at
   Table-1 scale falsified it: packing heuristics are anomalous, so a
   strategy that fails at [y'] can succeed at [y > y'] when its sort
   order flips, and an exact skip-with-verification scheme would re-run
   every skipped attempt and save nothing. Measured on the Table-1
   workload the rule fires a handful of times per solve (feasible probes
   win at index ~1-2; infeasible probes arrive in decreasing yield order,
   so their failures never enable a skip), so the default path gives up
   almost nothing by leaving it off — and keeps its outputs bit-identical
   to the naive path. *)
type kernel = {
  mutable k_instance : Model.Instance.t;
      (* mutable: scratch-pool rebinding re-points a retired solve's
         kernel at the next solve's instance *)
  k_items : Packing.Item.t array;
  k_bins : Packing.Bin.t array;
  k_cache : Packing.Strategy.cache;
  mutable k_fail : float array;
      (* per strategy: lowest yield this solve has seen it fail at *)
  mutable k_yield : float;  (* yield k_items currently hold; nan = none *)
}

let make_kernel instance ~n_strategies =
  let dims = instance.Model.Instance.dims in
  {
    k_instance = instance;
    k_items =
      Array.init (Model.Instance.n_services instance) (fun j ->
          Packing.Item.v ~id:j ~demand:(Vec.Epair.zero dims));
    k_bins = fresh_bins instance;
    k_cache = Packing.Strategy.cache ();
    k_fail = Array.make (max 1 n_strategies) infinity;
    k_yield = Float.nan;
  }

let refill k yld =
  if not (k.k_yield = yld) then begin
    let inst = k.k_instance in
    let dims = inst.Model.Instance.dims in
    Array.iteri
      (fun j (it : Packing.Item.t) ->
        let off = j * dims in
        Vec.Vector.axpy_fill it.Packing.Item.demand.Vec.Epair.elementary yld
          ~x:inst.Model.Instance.need_elem ~y:inst.Model.Instance.req_elem
          ~off;
        Vec.Vector.axpy_fill it.Packing.Item.demand.Vec.Epair.aggregate yld
          ~x:inst.Model.Instance.need_agg ~y:inst.Model.Instance.req_agg ~off)
      k.k_items;
    Packing.Strategy.cache_new_probe k.k_cache;
    k.k_yield <- yld
  end

(* Per-domain kernel scratch pools (DESIGN.md §16). The speculative probe
   search evaluates one solve's probes on several domains at once, so the
   scratch must be domain-local; under the batched scheduler many
   concurrent solves (tokens) additionally interleave on every domain, so
   each domain keeps a small token-keyed working set instead of PR 5's
   single latest-solve slot — and a free list of kernels whose solves
   have retired, to be *rebound* to the next same-shaped solve instead of
   allocated afresh. Results are domain-count independent — every kernel,
   fresh or rebound, computes the same bits (rebinding restores exactly
   the freshly-made state: [Bin.rebind] bins, [Strategy.cache_reset]
   memos, pristine failure table, no held yield) — only the reuse/memo
   *hit* counters can vary with probe-task placement, like
   [binary_search.speculative_waste] already does. *)
type kernel_pool = {
  mutable entries : (int * kernel) list;  (* most recent solve first *)
  mutable free : kernel list;  (* retired kernels awaiting rebinding *)
}

(* Working-set bound per domain: above the live-token count of any sane
   batch, so eviction is a memory backstop for long-lived processes that
   never retire tokens (standalone solves), not a churn mechanism —
   keeping it comfortably above the trial counts of the byte-identity
   tests also keeps eviction (whose count depends on task placement) out
   of their snapshots. *)
let entries_cap = 64
let free_cap = 32

let kernel_pools : kernel_pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { entries = []; free = [] })

let solve_tokens = Atomic.make 0

(* Retired solve tokens, published by the batched driver when a request
   completes. Domains cannot reach into each other's domain-local pools,
   so retirement is a shared mark that every domain applies lazily (on
   its next kernel miss), moving dead entries to its free list. Bounded:
   a full table is dropped wholesale — losing pending marks only delays
   reuse until the entries cap evicts, it never affects results. *)
let retired : (int, unit) Hashtbl.t = Hashtbl.create 64
let retired_mutex = Mutex.create ()
let retired_cap = 8192

let retire_token token =
  Mutex.lock retired_mutex;
  if Hashtbl.length retired >= retired_cap then Hashtbl.reset retired;
  Hashtbl.replace retired token ();
  Mutex.unlock retired_mutex

let sweep_retired pool =
  if pool.entries <> [] then begin
    Mutex.lock retired_mutex;
    let dead, live =
      List.partition (fun (t, _) -> Hashtbl.mem retired t) pool.entries
    in
    Mutex.unlock retired_mutex;
    if dead <> [] then begin
      pool.entries <- live;
      List.iter
        (fun (_, k) ->
          if List.length pool.free < free_cap then pool.free <- k :: pool.free)
        dead
    end
  end

let c_scratch = Obs.Metrics.counter "scheduler.scratch_reuses"

let shape_matches k instance =
  Array.length k.k_items = Model.Instance.n_services instance
  && Array.length k.k_bins = Model.Instance.n_nodes instance
  && (Array.length k.k_bins = 0
     || Packing.Bin.dim k.k_bins.(0) = instance.Model.Instance.dims)

(* Restore a recycled kernel to exactly the state [make_kernel] would
   build for [instance]: re-point the bins at the new nodes' capacities,
   drop every sort/permutation memo (the bin memos alias the old bins),
   reset the failure table, and forget the held yield so the first probe
   refills the item demands from the new instance's buffers. *)
let rebind_kernel k instance ~n_strategies =
  k.k_instance <- instance;
  Array.iteri
    (fun h (b : Packing.Bin.t) ->
      Packing.Bin.rebind b
        ~capacity:(Model.Instance.node instance h).Model.Node.capacity)
    k.k_bins;
  Packing.Strategy.cache_reset k.k_cache;
  let n = max 1 n_strategies in
  if Array.length k.k_fail = n then
    Array.fill k.k_fail 0 n infinity
  else k.k_fail <- Array.make n infinity;
  k.k_yield <- Float.nan

let take_free pool instance =
  let rec go acc = function
    | [] -> None
    | k :: rest when shape_matches k instance ->
        pool.free <- List.rev_append acc rest;
        Some k
    | k :: rest -> go (k :: acc) rest
  in
  go [] pool.free

let evict_oldest pool =
  match List.rev pool.entries with
  | [] -> ()
  | (_, k) :: rev_rest ->
      pool.entries <- List.rev rev_rest;
      if List.length pool.free < free_cap then pool.free <- k :: pool.free

let kernel_for ~token instance ~n_strategies =
  let pool = Domain.DLS.get kernel_pools in
  match List.assoc_opt token pool.entries with
  | Some k -> k
  | None ->
      sweep_retired pool;
      if List.length pool.entries >= entries_cap then evict_oldest pool;
      let k =
        match take_free pool instance with
        | Some k ->
            rebind_kernel k instance ~n_strategies;
            Obs.Metrics.incr c_scratch;
            k
        | None -> make_kernel instance ~n_strategies
      in
      pool.entries <- (token, k) :: pool.entries;
      k

let attempt_kernel k strategy ~prune ~index ~yld =
  if prune && k.k_fail.(index) <= yld then begin
    Obs.Metrics.incr c_pruned;
    None
  end
  else begin
    Obs.Metrics.incr c_attempts;
    Array.iter Packing.Bin.reset k.k_bins;
    match
      Packing.Strategy.run ~cache:k.k_cache strategy ~bins:k.k_bins
        ~items:k.k_items
    with
    | None ->
        if yld < k.k_fail.(index) then k.k_fail.(index) <- yld;
        None
    | some -> some
  end

let probe_single_kernel ~token strategy instance yld =
  Obs.Trace.span "probe" ~args:(probe_args yld) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let k = kernel_for ~token instance ~n_strategies:1 in
  refill k yld;
  match attempt_kernel k strategy ~prune:false ~index:0 ~yld with
  | None -> None
  | Some placement ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_feasible;
        Obs.Metrics.incr (win_counter strategy);
        Obs.Metrics.observe h_win_index 1
      end;
      Some placement

let probe_multi_kernel ~token ~prune strategies ~n_strategies instance yld =
  Obs.Trace.span "probe" ~args:(probe_args yld) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let k = kernel_for ~token instance ~n_strategies in
  refill k yld;
  (* [idx] counts performed attempts (the strategies_per_win bill);
     [i] indexes the full list for the pruning table. *)
  let rec attempt i idx = function
    | [] -> None
    | strategy :: rest -> (
        let skipped = prune && k.k_fail.(i) <= yld in
        match attempt_kernel k strategy ~prune ~index:i ~yld with
        | None -> attempt (i + 1) (if skipped then idx else idx + 1) rest
        | Some placement ->
            if Obs.Metrics.enabled () then begin
              Obs.Metrics.incr c_feasible;
              Obs.Metrics.incr (win_counter strategy);
              Obs.Metrics.observe h_win_index idx
            end;
            Obs.Trace.instant "win"
              ~args:
                (("strategy", Packing.Strategy.name strategy)
                :: probe_args yld);
            Some placement)
  in
  attempt 0 1 strategies

(* VMALLOC_NO_PROBE_CACHE=1 restores the naive fresh-allocation probe path
   (no shared scratch, no sort memos, no pruning) — the escape hatch the
   differential tests diff against. Read per solve so tests can toggle it;
   the [?kernel] argument overrides the environment either way. *)
let kernel_disabled_env () =
  match Sys.getenv_opt "VMALLOC_NO_PROBE_CACHE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let use_kernel = function
  | Some choice -> choice
  | None -> not (kernel_disabled_env ())

(* Monotone pruning is opt-in (see the kernel comment above): default off,
   enabled per process with VMALLOC_PROBE_PRUNE=1 or per solve with
   [~prune:true]; the argument overrides the environment either way. *)
let prune_enabled_env () =
  match Sys.getenv_opt "VMALLOC_PROBE_PRUNE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let use_prune = function
  | Some choice -> choice
  | None -> prune_enabled_env ()

let evaluate instance placement =
  match Model.Placement.min_yield instance placement with
  | None -> None
  | Some y -> Some { placement; min_yield = y }

let finish instance = function
  | None -> None
  | Some (placement, _probed_yield) -> evaluate instance placement

(* Probe oracles are pure as observed from outside (the kernel's scratch
   is domain-local and every domain computes identical bits; the naive
   path allocates fresh items and bins per call), so a pool of size > 1
   can run the speculative multi-probe search and still return
   bit-identical results. *)
let search ?tolerance ?pool ?on_round oracle =
  match pool with
  | Some pool when Par.Pool.size pool > 1 ->
      Binary_search.maximize_par ?tolerance ?on_round ~pool oracle
  | Some _ | None -> Binary_search.maximize ?tolerance ?on_round oracle

let solve ?tolerance ?pool ?on_round ?kernel strategy instance =
  Obs.Trace.span "solve" ~args:[ ("strategy", Packing.Strategy.name strategy) ]
  @@ fun () ->
  let oracle =
    if use_kernel kernel then
      let token = Atomic.fetch_and_add solve_tokens 1 in
      probe_single_kernel ~token strategy instance
    else probe_single strategy instance
  in
  search ?tolerance ?pool ?on_round oracle |> finish instance

(* Oracle factory for the batched solve driver ({!Batch}): the same
   probe path [solve_multi] uses, but handed out raw so a
   {!Binary_search.plan} can be stepped by {!Par.Scheduler}, plus the
   retirement hook that releases the solve's kernels into the per-domain
   free pools once the request completes. *)
let batch_oracle ?kernel ?prune strategies instance =
  if use_kernel kernel then begin
    let token = Atomic.fetch_and_add solve_tokens 1 in
    ( probe_multi_kernel ~token ~prune:(use_prune prune) strategies
        ~n_strategies:(List.length strategies)
        instance,
      fun () -> retire_token token )
  end
  else (probe_multi strategies instance, fun () -> ())

let solve_multi ?tolerance ?pool ?on_round ?kernel ?prune strategies instance =
  Obs.Trace.span "solve_multi"
    ~args:[ ("strategies", string_of_int (List.length strategies)) ]
  @@ fun () ->
  let oracle =
    if use_kernel kernel then
      let token = Atomic.fetch_and_add solve_tokens 1 in
      probe_multi_kernel ~token ~prune:(use_prune prune) strategies
        ~n_strategies:(List.length strategies)
        instance
    else probe_multi strategies instance
  in
  search ?tolerance ?pool ?on_round oracle |> finish instance
