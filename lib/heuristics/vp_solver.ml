type solution = {
  placement : Model.Placement.t;
  min_yield : float;
}

let items_at_yield instance y =
  Array.init (Model.Instance.n_services instance) (fun j ->
      let s = Model.Instance.service instance j in
      Packing.Item.v ~id:j ~demand:(Model.Service.demand_at_yield s y))

let fresh_bins instance =
  Array.init (Model.Instance.n_nodes instance) (fun h ->
      let node = Model.Instance.node instance h in
      Packing.Bin.v ~id:h ~capacity:node.Model.Node.capacity)

let pack_at_yield strategy instance y =
  let items = items_at_yield instance y in
  let bins = fresh_bins instance in
  Packing.Strategy.run strategy ~bins ~items

let evaluate instance placement =
  match Model.Placement.min_yield instance placement with
  | None -> None
  | Some y -> Some { placement; min_yield = y }

let finish instance = function
  | None -> None
  | Some (placement, _probed_yield) -> evaluate instance placement

(* Probe oracles are pure (fresh items and bins per call, the instance is
   read-only), so a pool of size > 1 can run the speculative multi-probe
   search and still return bit-identical results. *)
let search ?tolerance ?pool ?on_round oracle =
  match pool with
  | Some pool when Par.Pool.size pool > 1 ->
      Binary_search.maximize_par ?tolerance ?on_round ~pool oracle
  | Some _ | None -> Binary_search.maximize ?tolerance ?on_round oracle

let solve ?tolerance ?pool ?on_round strategy instance =
  search ?tolerance ?pool ?on_round (pack_at_yield strategy instance)
  |> finish instance

let solve_multi ?tolerance ?pool ?on_round strategies instance =
  let oracle y =
    List.find_map (fun strategy -> pack_at_yield strategy instance y)
      strategies
  in
  search ?tolerance ?pool ?on_round oracle |> finish instance
