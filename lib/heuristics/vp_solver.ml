type solution = {
  placement : Model.Placement.t;
  min_yield : float;
}

let items_at_yield instance y =
  Array.init (Model.Instance.n_services instance) (fun j ->
      let s = Model.Instance.service instance j in
      Packing.Item.v ~id:j ~demand:(Model.Service.demand_at_yield s y))

let fresh_bins instance =
  Array.init (Model.Instance.n_nodes instance) (fun h ->
      let node = Model.Instance.node instance h in
      Packing.Bin.v ~id:h ~capacity:node.Model.Node.capacity)

let pack_at_yield strategy instance y =
  let items = items_at_yield instance y in
  let bins = fresh_bins instance in
  Packing.Strategy.run strategy ~bins ~items

(* Oracle-level observability: how many fixed-yield probes a solve costs,
   how many strategy attempts each probe burns before one packs, and which
   strategy actually wins (the question behind METAHVP's 253-strategy
   bill). Counting is keyed off strategy identity only, so totals are
   deterministic for a fixed amount of performed work. *)
let c_oracle = Obs.Metrics.counter "vp_solver.oracle_calls"
let c_feasible = Obs.Metrics.counter "vp_solver.oracle_feasible"
let c_attempts = Obs.Metrics.counter "vp_solver.strategy_attempts"
let c_pruned = Obs.Metrics.counter "vp_solver.strategies_pruned"
let h_win_index = Obs.Metrics.histogram "vp_solver.strategies_per_win"

let win_counter strategy =
  Obs.Metrics.counter ("vp_solver.win." ^ Packing.Strategy.name strategy)

let probe_args y = [ ("y", Printf.sprintf "%.6f" y) ]

let probe_single strategy instance y =
  Obs.Trace.span "probe" ~args:(probe_args y) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  Obs.Metrics.incr c_attempts;
  match pack_at_yield strategy instance y with
  | None -> None
  | Some placement ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_feasible;
        Obs.Metrics.incr (win_counter strategy);
        Obs.Metrics.observe h_win_index 1
      end;
      Some placement

let probe_multi strategies instance y =
  Obs.Trace.span "probe" ~args:(probe_args y) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let rec attempt idx = function
    | [] -> None
    | strategy :: rest -> (
        Obs.Metrics.incr c_attempts;
        match pack_at_yield strategy instance y with
        | None -> attempt (idx + 1) rest
        | Some placement ->
            if Obs.Metrics.enabled () then begin
              Obs.Metrics.incr c_feasible;
              Obs.Metrics.incr (win_counter strategy);
              Obs.Metrics.observe h_win_index idx
            end;
            Obs.Trace.instant "win"
              ~args:
                (("strategy", Packing.Strategy.name strategy) :: probe_args y);
            Some placement)
  in
  attempt 1 strategies

(* Probe-shared packing kernel (DESIGN.md §11). Every strategy attempt of
   one fixed-yield probe sees the same item demands, so the kernel builds
   the item array once per solve and refills its demand vectors in place
   per probe (a fused [r + y*n] pass over the instance's flattened
   buffers), recycles one bin array via [Bin.reset] instead of
   reallocating per attempt, and memoizes per-probe sort orders and
   Permutation-Pack item permutations through [Strategy.cache].

   Bit-identity with the naive path: refilled demands use the exact
   [axpy] expression fresh allocation uses; reset bins equal fresh bins;
   memoized sorts are the same stable sorts over the same values; and the
   scratch-backed Permutation-Pack selection compares the same keys with
   the same tie-breaks. Locked down by test_kernel_diff.ml.

   Monotone strategy pruning — skip a strategy at probe [y] once it has
   failed at some [y' <= y] — is also implemented, but as an *opt-in*
   ([~prune:true] / VMALLOC_PROBE_PRUNE=1). Its premise, per-strategy
   monotone feasibility, is strictly stronger than the combined-oracle
   monotonicity the binary search assumes, and differential sweeps at
   Table-1 scale falsified it: packing heuristics are anomalous, so a
   strategy that fails at [y'] can succeed at [y > y'] when its sort
   order flips, and an exact skip-with-verification scheme would re-run
   every skipped attempt and save nothing. Measured on the Table-1
   workload the rule fires a handful of times per solve (feasible probes
   win at index ~1-2; infeasible probes arrive in decreasing yield order,
   so their failures never enable a skip), so the default path gives up
   almost nothing by leaving it off — and keeps its outputs bit-identical
   to the naive path. *)
type kernel = {
  k_instance : Model.Instance.t;
  k_items : Packing.Item.t array;
  k_bins : Packing.Bin.t array;
  k_cache : Packing.Strategy.cache;
  k_fail : float array;
      (* per strategy: lowest yield this solve has seen it fail at *)
  mutable k_yield : float;  (* yield k_items currently hold; nan = none *)
}

let make_kernel instance ~n_strategies =
  let dims = instance.Model.Instance.dims in
  {
    k_instance = instance;
    k_items =
      Array.init (Model.Instance.n_services instance) (fun j ->
          Packing.Item.v ~id:j ~demand:(Vec.Epair.zero dims));
    k_bins = fresh_bins instance;
    k_cache = Packing.Strategy.cache ();
    k_fail = Array.make (max 1 n_strategies) infinity;
    k_yield = Float.nan;
  }

let refill k yld =
  if not (k.k_yield = yld) then begin
    let inst = k.k_instance in
    let dims = inst.Model.Instance.dims in
    Array.iteri
      (fun j (it : Packing.Item.t) ->
        let off = j * dims in
        Vec.Vector.axpy_fill it.Packing.Item.demand.Vec.Epair.elementary yld
          ~x:inst.Model.Instance.need_elem ~y:inst.Model.Instance.req_elem
          ~off;
        Vec.Vector.axpy_fill it.Packing.Item.demand.Vec.Epair.aggregate yld
          ~x:inst.Model.Instance.need_agg ~y:inst.Model.Instance.req_agg ~off)
      k.k_items;
    Packing.Strategy.cache_new_probe k.k_cache;
    k.k_yield <- yld
  end

(* Per-domain kernel slot. The speculative probe search evaluates one
   solve's probes on several domains at once, so the scratch must be
   domain-local; a single global DLS key holding the latest solve's kernel
   (keyed by a unique per-solve token) keeps it single-writer without
   locks and without growing domain-local storage per solve. Results are
   domain-count independent — every kernel computes the same bits — only
   the pruning/memo *hit* counters can vary with probe-task placement,
   like [binary_search.speculative_waste] already does. *)
let kernel_slot : (int * kernel) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let solve_tokens = Atomic.make 0

let kernel_for ~token instance ~n_strategies =
  match Domain.DLS.get kernel_slot with
  | Some (t, k) when t = token -> k
  | _ ->
      let k = make_kernel instance ~n_strategies in
      Domain.DLS.set kernel_slot (Some (token, k));
      k

let attempt_kernel k strategy ~prune ~index ~yld =
  if prune && k.k_fail.(index) <= yld then begin
    Obs.Metrics.incr c_pruned;
    None
  end
  else begin
    Obs.Metrics.incr c_attempts;
    Array.iter Packing.Bin.reset k.k_bins;
    match
      Packing.Strategy.run ~cache:k.k_cache strategy ~bins:k.k_bins
        ~items:k.k_items
    with
    | None ->
        if yld < k.k_fail.(index) then k.k_fail.(index) <- yld;
        None
    | some -> some
  end

let probe_single_kernel ~token strategy instance yld =
  Obs.Trace.span "probe" ~args:(probe_args yld) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let k = kernel_for ~token instance ~n_strategies:1 in
  refill k yld;
  match attempt_kernel k strategy ~prune:false ~index:0 ~yld with
  | None -> None
  | Some placement ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_feasible;
        Obs.Metrics.incr (win_counter strategy);
        Obs.Metrics.observe h_win_index 1
      end;
      Some placement

let probe_multi_kernel ~token ~prune strategies ~n_strategies instance yld =
  Obs.Trace.span "probe" ~args:(probe_args yld) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let k = kernel_for ~token instance ~n_strategies in
  refill k yld;
  (* [idx] counts performed attempts (the strategies_per_win bill);
     [i] indexes the full list for the pruning table. *)
  let rec attempt i idx = function
    | [] -> None
    | strategy :: rest -> (
        let skipped = prune && k.k_fail.(i) <= yld in
        match attempt_kernel k strategy ~prune ~index:i ~yld with
        | None -> attempt (i + 1) (if skipped then idx else idx + 1) rest
        | Some placement ->
            if Obs.Metrics.enabled () then begin
              Obs.Metrics.incr c_feasible;
              Obs.Metrics.incr (win_counter strategy);
              Obs.Metrics.observe h_win_index idx
            end;
            Obs.Trace.instant "win"
              ~args:
                (("strategy", Packing.Strategy.name strategy)
                :: probe_args yld);
            Some placement)
  in
  attempt 0 1 strategies

(* VMALLOC_NO_PROBE_CACHE=1 restores the naive fresh-allocation probe path
   (no shared scratch, no sort memos, no pruning) — the escape hatch the
   differential tests diff against. Read per solve so tests can toggle it;
   the [?kernel] argument overrides the environment either way. *)
let kernel_disabled_env () =
  match Sys.getenv_opt "VMALLOC_NO_PROBE_CACHE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let use_kernel = function
  | Some choice -> choice
  | None -> not (kernel_disabled_env ())

(* Monotone pruning is opt-in (see the kernel comment above): default off,
   enabled per process with VMALLOC_PROBE_PRUNE=1 or per solve with
   [~prune:true]; the argument overrides the environment either way. *)
let prune_enabled_env () =
  match Sys.getenv_opt "VMALLOC_PROBE_PRUNE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let use_prune = function
  | Some choice -> choice
  | None -> prune_enabled_env ()

let evaluate instance placement =
  match Model.Placement.min_yield instance placement with
  | None -> None
  | Some y -> Some { placement; min_yield = y }

let finish instance = function
  | None -> None
  | Some (placement, _probed_yield) -> evaluate instance placement

(* Probe oracles are pure as observed from outside (the kernel's scratch
   is domain-local and every domain computes identical bits; the naive
   path allocates fresh items and bins per call), so a pool of size > 1
   can run the speculative multi-probe search and still return
   bit-identical results. *)
let search ?tolerance ?pool ?on_round oracle =
  match pool with
  | Some pool when Par.Pool.size pool > 1 ->
      Binary_search.maximize_par ?tolerance ?on_round ~pool oracle
  | Some _ | None -> Binary_search.maximize ?tolerance ?on_round oracle

let solve ?tolerance ?pool ?on_round ?kernel strategy instance =
  Obs.Trace.span "solve" ~args:[ ("strategy", Packing.Strategy.name strategy) ]
  @@ fun () ->
  let oracle =
    if use_kernel kernel then
      let token = Atomic.fetch_and_add solve_tokens 1 in
      probe_single_kernel ~token strategy instance
    else probe_single strategy instance
  in
  search ?tolerance ?pool ?on_round oracle |> finish instance

let solve_multi ?tolerance ?pool ?on_round ?kernel ?prune strategies instance =
  Obs.Trace.span "solve_multi"
    ~args:[ ("strategies", string_of_int (List.length strategies)) ]
  @@ fun () ->
  let oracle =
    if use_kernel kernel then
      let token = Atomic.fetch_and_add solve_tokens 1 in
      probe_multi_kernel ~token ~prune:(use_prune prune) strategies
        ~n_strategies:(List.length strategies)
        instance
    else probe_multi strategies instance
  in
  search ?tolerance ?pool ?on_round oracle |> finish instance
