type solution = {
  placement : Model.Placement.t;
  min_yield : float;
}

let items_at_yield instance y =
  Array.init (Model.Instance.n_services instance) (fun j ->
      let s = Model.Instance.service instance j in
      Packing.Item.v ~id:j ~demand:(Model.Service.demand_at_yield s y))

let fresh_bins instance =
  Array.init (Model.Instance.n_nodes instance) (fun h ->
      let node = Model.Instance.node instance h in
      Packing.Bin.v ~id:h ~capacity:node.Model.Node.capacity)

let pack_at_yield strategy instance y =
  let items = items_at_yield instance y in
  let bins = fresh_bins instance in
  Packing.Strategy.run strategy ~bins ~items

(* Oracle-level observability: how many fixed-yield probes a solve costs,
   how many strategy attempts each probe burns before one packs, and which
   strategy actually wins (the question behind METAHVP's 253-strategy
   bill). Counting is keyed off strategy identity only, so totals are
   deterministic for a fixed amount of performed work. *)
let c_oracle = Obs.Metrics.counter "vp_solver.oracle_calls"
let c_feasible = Obs.Metrics.counter "vp_solver.oracle_feasible"
let c_attempts = Obs.Metrics.counter "vp_solver.strategy_attempts"
let h_win_index = Obs.Metrics.histogram "vp_solver.strategies_per_win"

let win_counter strategy =
  Obs.Metrics.counter ("vp_solver.win." ^ Packing.Strategy.name strategy)

let probe_args y = [ ("y", Printf.sprintf "%.6f" y) ]

let probe_single strategy instance y =
  Obs.Trace.span "probe" ~args:(probe_args y) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  Obs.Metrics.incr c_attempts;
  match pack_at_yield strategy instance y with
  | None -> None
  | Some placement ->
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_feasible;
        Obs.Metrics.incr (win_counter strategy);
        Obs.Metrics.observe h_win_index 1
      end;
      Some placement

let probe_multi strategies instance y =
  Obs.Trace.span "probe" ~args:(probe_args y) @@ fun () ->
  Obs.Metrics.incr c_oracle;
  let rec attempt idx = function
    | [] -> None
    | strategy :: rest -> (
        Obs.Metrics.incr c_attempts;
        match pack_at_yield strategy instance y with
        | None -> attempt (idx + 1) rest
        | Some placement ->
            if Obs.Metrics.enabled () then begin
              Obs.Metrics.incr c_feasible;
              Obs.Metrics.incr (win_counter strategy);
              Obs.Metrics.observe h_win_index idx
            end;
            Obs.Trace.instant "win"
              ~args:
                (("strategy", Packing.Strategy.name strategy) :: probe_args y);
            Some placement)
  in
  attempt 1 strategies

let evaluate instance placement =
  match Model.Placement.min_yield instance placement with
  | None -> None
  | Some y -> Some { placement; min_yield = y }

let finish instance = function
  | None -> None
  | Some (placement, _probed_yield) -> evaluate instance placement

(* Probe oracles are pure (fresh items and bins per call, the instance is
   read-only), so a pool of size > 1 can run the speculative multi-probe
   search and still return bit-identical results. *)
let search ?tolerance ?pool ?on_round oracle =
  match pool with
  | Some pool when Par.Pool.size pool > 1 ->
      Binary_search.maximize_par ?tolerance ?on_round ~pool oracle
  | Some _ | None -> Binary_search.maximize ?tolerance ?on_round oracle

let solve ?tolerance ?pool ?on_round strategy instance =
  Obs.Trace.span "solve" ~args:[ ("strategy", Packing.Strategy.name strategy) ]
  @@ fun () ->
  search ?tolerance ?pool ?on_round (probe_single strategy instance)
  |> finish instance

let solve_multi ?tolerance ?pool ?on_round strategies instance =
  Obs.Trace.span "solve_multi"
    ~args:[ ("strategies", string_of_int (List.length strategies)) ]
  @@ fun () ->
  search ?tolerance ?pool ?on_round (probe_multi strategies instance)
  |> finish instance
