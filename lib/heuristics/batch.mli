(** Multi-tenant batched solving over one domain pool.

    Adapts {!Algorithms} onto {!Par.Scheduler} requests: yield-search
    algorithms ({!Algorithms.Yield_search}) are stepped round by round —
    their probe batches from all jobs interleave fairly in each pool
    round, with speculation depth chosen per round by
    {!Binary_search.adaptive_depth} from the measured probe cost and the
    scheduler's live-request occupancy — while {!Algorithms.Direct}
    algorithms run as single one-shot tasks. Completed yield searches
    retire their probe-kernel tokens, so the per-domain scratch pools
    rebind their kernels to later same-shaped jobs
    ([scheduler.scratch_reuses]) instead of allocating per solve.

    Results are bit-identical to solving the same jobs back-to-back
    sequentially, at any pool size and any (forced or adaptive)
    speculation depth — locked by test/test_batch_diff.ml. *)

type job = { algo : Algorithms.t; instance : Model.Instance.t }

val solve_batch :
  ?tolerance:float ->
  ?depth:int ->
  sched:Par.Scheduler.t ->
  job array ->
  Vp_solver.solution option array
(** Drive all [jobs] to completion over the scheduler's pool; results in
    input order. [tolerance] as in {!Vp_solver.solve_multi}; [depth]
    forces the speculation depth of every yield-search round (clamped
    below at 1, capped by remaining levels — the differential sweep's
    knob) instead of the adaptive cost-model choice. *)
