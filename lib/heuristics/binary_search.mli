(** Binary search on the yield (paper §3.5).

    Since at a fixed yield every service's demand is fixed, any packing
    heuristic doubles as a feasibility oracle for that yield; maximizing the
    minimum yield then reduces to a binary search for the largest yield at
    which the oracle succeeds. The search stops when the bracketing interval
    is narrower than the paper's threshold 1e-4.

    {!maximize_par} is the speculative multi-probe variant: one pool round
    evaluates the candidate yields of the next few bisection levels
    concurrently and then resolves the ordinary probe path through the
    precomputed answers. Because packing oracles are {e not} monotone in the
    yield (a heuristic can pack at 0.6 yet fail at 0.5), any parallel search
    that is bit-identical to the sequential one must probe the {e same}
    points and take the {e same} branch decisions — speculation over the
    bisection tree is exactly that, trading wasted off-path probes (on
    otherwise idle domains) for ⌈log₂(k+1)⌉ bracket levels per round. *)

val default_tolerance : float
(** 1e-4, the paper's threshold. *)

val maximize :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  (float -> 'a option) ->
  ('a * float) option
(** [maximize oracle] probes yields in [0, 1]. Returns the solution produced
    at the highest successful probe together with that yield, or [None] when
    the oracle already fails at yield 0. The oracle is first probed at 1
    (instances with slack can often run everything at full performance),
    then at 0, then bisected. A non-positive [tolerance] is clamped to
    {!default_tolerance} (it would otherwise never terminate). [on_round]
    is called before every oracle round with the yields probed in it —
    always a singleton here; instrumentation only. *)

val maximize_warm :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  init:'w ->
  ('w -> float -> 'w * 'a option) ->
  ('a * float) option
(** [maximize_warm ~init oracle] is {!maximize} for oracles that carry an
    accumulator: each probe receives the state returned by the previous
    probe (starting from [init]) alongside the candidate yield. The state
    is threaded through feasible {e and} infeasible probes but never
    consulted by the search itself, so the probe schedule is exactly
    {!maximize}'s. Used to carry LP warm-start bases across successive
    yield probes ({!Milp.relaxed_yield_search}): probe [k+1] re-optimizes
    from probe [k]'s basis instead of solving from scratch. *)

val maximize_par :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  pool:Par.Pool.t ->
  (float -> 'a option) ->
  ('a * float) option
(** [maximize_par ~pool oracle] returns bit-identical results to
    {!maximize} at the same tolerance, in fewer oracle rounds: each round
    fans the 2^m - 1 candidate yields of the next m = ⌈log₂(size+1)⌉
    bisection levels over the pool ({!Par.Pool.map}) and walks the
    sequential probe path through the precomputed results, so the bracket
    shrinks by 2^m ≥ size+1 per round instead of 2. Identity holds for any
    {e pure} oracle — candidate points are computed with the sequential
    midpoint arithmetic, branch decisions replay the sequential ones, and
    off-path speculative results are discarded. Oracles are evaluated
    concurrently, so they must be thread-safe as well as pure; if one
    raises, the first exception (in claim order) is re-raised after the
    round's in-flight probes finish and the pool remains usable. A pool of
    size 1 degenerates to the sequential probe sequence exactly. [on_round]
    is called once per round with the round's candidate yields. *)
