(** Binary search on the yield (paper §3.5).

    Since at a fixed yield every service's demand is fixed, any packing
    heuristic doubles as a feasibility oracle for that yield; maximizing the
    minimum yield then reduces to a binary search for the largest yield at
    which the oracle succeeds. The search stops when the bracketing interval
    is narrower than the paper's threshold 1e-4.

    {!maximize_par} is the speculative multi-probe variant: one pool round
    evaluates the candidate yields of the next few bisection levels
    concurrently and then resolves the ordinary probe path through the
    precomputed answers. Because packing oracles are {e not} monotone in the
    yield (a heuristic can pack at 0.6 yet fail at 0.5), any parallel search
    that is bit-identical to the sequential one must probe the {e same}
    points and take the {e same} branch decisions — speculation over the
    bisection tree is exactly that, trading wasted off-path probes (on
    otherwise idle domains) for several bracket levels per round. The
    speculation {e depth} — how many future levels one round precomputes —
    only sizes the fan, never the on-path points, so it is a free parameter:
    fixed at ⌈log₂(k+1)⌉ by default, forceable per call, or chosen by the
    measured cost model ({!adaptive_depth}) under the batched scheduler.

    {!plan} exposes the same search as a steppable state machine so
    {!Par.Scheduler} can interleave many searches' rounds; {!maximize_par}
    is a single-request driver over it. *)

val default_tolerance : float
(** 1e-4, the paper's threshold. *)

val maximize :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  (float -> 'a option) ->
  ('a * float) option
(** [maximize oracle] probes yields in [0, 1]. Returns the solution produced
    at the highest successful probe together with that yield, or [None] when
    the oracle already fails at yield 0. The oracle is first probed at 1
    (instances with slack can often run everything at full performance),
    then at 0, then bisected. A non-positive [tolerance] is clamped to
    {!default_tolerance} (it would otherwise never terminate). [on_round]
    is called before every oracle round with the yields probed in it —
    always a singleton here; instrumentation only. *)

val maximize_warm :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  init:'w ->
  ('w -> float -> 'w * 'a option) ->
  ('a * float) option
(** [maximize_warm ~init oracle] is {!maximize} for oracles that carry an
    accumulator: each probe receives the state returned by the previous
    probe (starting from [init]) alongside the candidate yield. The state
    is threaded through feasible {e and} infeasible probes but never
    consulted by the search itself, so the probe schedule is exactly
    {!maximize}'s. Used to carry LP warm-start bases across successive
    yield probes ({!Milp.relaxed_yield_search}): probe [k+1] re-optimizes
    from probe [k]'s basis instead of solving from scratch. *)

val levels_for : pool_size:int -> int
(** ⌈log₂(k+1)⌉ (at least 1): the bisection levels one k-domain round can
    resolve — the default speculation depth. *)

val adaptive_depth : pool_size:int -> occupancy:int -> remaining:int -> int
(** Cost-model speculation depth (DESIGN.md §16): with [occupancy] live
    requests sharing a [pool_size]-domain pool, a request's fair share is
    [pool_size / occupancy] slots; depth [m] then costs
    [ceil((2^m - 1) / share)] waves of probe work (at the per-probe cost
    {!Obs.Cost} measured from previous rounds) plus one round's dispatch
    overhead, and resolves [m] levels — the depth with the best
    levels-per-second rate wins, clamped to [\[1, remaining\]]. Before the
    first cost sample it falls back to [levels_for share]. Depth never
    affects which points are probed, only how many are precomputed, so
    any choice preserves bit-identity. *)

type 'a plan
(** A steppable speculative yield search over oracles of type
    [float -> 'a option] — the state machine {!maximize_par} drives alone
    and {!Par.Scheduler} interleaves across many requests. *)

val plan :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  depth:(remaining:int -> int) ->
  unit ->
  'a plan
(** A fresh search. [depth ~remaining] is consulted once per bisect round
    with the number of levels still separating the bracket from the
    tolerance; its result is clamped to [\[1, remaining\]] (the
    remaining-levels cap keeps final rounds from fanning out candidates no
    resolution path can consume). Counters are shared with the sequential
    search ([binary_search.rounds/probes]), plus
    [binary_search.speculative_waste] for discarded off-path probes and
    the [binary_search.depth] histogram of chosen depths. *)

val plan_next : 'a plan -> prev:'a option array -> float array option
(** Consume the verdicts of the outstanding batch (pass [~prev:[||]] on
    the first call) and emit the next batch of candidate yields, or
    [None] when the search is finished. The caller must evaluate {e all}
    returned points with the pure oracle and pass the verdicts, in point
    order, to the next call — raising [Invalid_argument] on a length
    mismatch. Batches replay the sequential probe path exactly:
    [[|1.|]], then [[|0.|]], then speculative fans in heap order. *)

val plan_result : 'a plan -> ('a * float) option
(** The search outcome — meaningful once {!plan_next} returned [None]:
    the solution at the highest successful probe, or [None] when yield 0
    already failed. *)

val plan_finished : 'a plan -> bool

val maximize_par :
  ?tolerance:float ->
  ?on_round:(float array -> unit) ->
  ?depth:int ->
  pool:Par.Pool.t ->
  (float -> 'a option) ->
  ('a * float) option
(** [maximize_par ~pool oracle] returns bit-identical results to
    {!maximize} at the same tolerance, in fewer oracle rounds: each round
    fans the candidate yields of the next [m] bisection levels over the
    pool ({!Par.Pool.map}) and walks the sequential probe path through the
    precomputed results, so the bracket shrinks by [2^m] per round instead
    of 2. [m] defaults to [levels_for ~pool_size] and is capped by the
    levels actually remaining; [?depth] forces it (clamped below at 1) —
    any value yields the same result, only round counts and speculative
    waste change, which the forced-depth differential sweep locks.
    Identity holds for any {e pure} oracle — candidate points are computed
    with the sequential midpoint arithmetic, branch decisions replay the
    sequential ones, and off-path speculative results are discarded.
    Oracles are evaluated concurrently, so they must be thread-safe as
    well as pure; if one raises, the first exception (in claim order) is
    re-raised after the round's in-flight probes finish and the pool
    remains usable. A pool of size 1 degenerates to the sequential probe
    sequence exactly. [on_round] is called once per round with the round's
    candidate yields. Every executed round feeds the {!Obs.Cost} model
    {!adaptive_depth} reads. *)
