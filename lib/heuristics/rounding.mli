(** Randomized rounding of the relaxed LP solution (paper §3.3).

    Both algorithms first solve the rational relaxation of the MILP and use
    the fractional [e_jh] values as placement probabilities. Services are
    taken in id order; a drawn node that cannot satisfy the service's rigid
    requirements (given what was already committed) gets its probability
    zeroed and the draw is repeated. RRND fails when a service's entire
    probability row is exhausted; RRNZ (§3.3.2) first replaces every zero
    probability with [epsilon], so a service can land on any node that has
    room. *)

val rrnd :
  ?rng:Prng.Rng.t -> Model.Instance.t -> Vp_solver.solution option
(** Randomized Rounding. Default [rng] is seeded with 0. *)

val rrnz :
  ?rng:Prng.Rng.t -> ?epsilon:float -> Model.Instance.t ->
  Vp_solver.solution option
(** Randomized Rounding with No Zero probabilities; [epsilon] defaults to
    the paper's 0.01. *)

val rrnd_probed :
  ?rng:Prng.Rng.t -> ?tolerance:float -> Model.Instance.t ->
  Vp_solver.solution option
val rrnz_probed :
  ?rng:Prng.Rng.t -> ?epsilon:float -> ?tolerance:float ->
  Model.Instance.t -> Vp_solver.solution option
(** Probe-based RRND/RRNZ: the probability matrix comes from
    {!Milp.relaxed_yield_search} (warm-started yield probes, [tolerance]
    as in {!Binary_search.maximize}) instead of the single maximizing LP
    solve. Same rounding pass and defaults as {!rrnd}/{!rrnz}. *)

val round_probabilities :
  rng:Prng.Rng.t ->
  e_matrix:float array array ->
  Model.Instance.t ->
  Model.Placement.t option
(** The shared rounding pass, exposed for tests: given a J x H probability
    matrix, place services in order with requirement-feasibility retries. *)
