type sort_strategy = S1 | S2 | S3 | S4 | S5 | S6 | S7

type place_strategy = P1 | P2 | P3 | P4 | P5 | P6 | P7

let all_sorts = [ S1; S2; S3; S4; S5; S6; S7 ]
let all_places = [ P1; P2; P3; P4; P5; P6; P7 ]

let all_combinations =
  List.concat_map (fun s -> List.map (fun p -> (s, p)) all_places) all_sorts

let sort_name = function
  | S1 -> "S1" | S2 -> "S2" | S3 -> "S3" | S4 -> "S4"
  | S5 -> "S5" | S6 -> "S6" | S7 -> "S7"

let place_name = function
  | P1 -> "P1" | P2 -> "P2" | P3 -> "P3" | P4 -> "P4"
  | P5 -> "P5" | P6 -> "P6" | P7 -> "P7"

let need_agg (s : Model.Service.t) = s.need.Vec.Epair.aggregate
let req_agg (s : Model.Service.t) = s.requirement.Vec.Epair.aggregate

(* Descending sort key; S1 keeps natural order. *)
let sort_services strategy services =
  let key s =
    match strategy with
    | S1 -> 0.
    | S2 -> Vec.Vector.max_component (need_agg s)
    | S3 -> Vec.Vector.sum (need_agg s)
    | S4 -> Vec.Vector.max_component (req_agg s)
    | S5 -> Vec.Vector.sum (req_agg s)
    | S6 ->
        Float.max (Vec.Vector.sum (req_agg s)) (Vec.Vector.sum (need_agg s))
    | S7 -> Vec.Vector.sum (req_agg s) +. Vec.Vector.sum (need_agg s)
  in
  let services = Array.copy services in
  (match strategy with
  | S1 -> ()
  | _ ->
      Array.stable_sort (fun a b -> Float.compare (key b) (key a)) services);
  services

(* One candidate evaluation = one feasibility check of (service, node);
   the score is only computed for feasible candidates, so the feasibility
   checks are the greedy inner-loop's unit of work. *)
let c_candidates = Obs.Metrics.counter "greedy.candidate_evals"
let c_placements = Obs.Metrics.counter "greedy.placements"

(* Mutable per-node placement state. *)
type node_state = {
  node : Model.Node.t;
  req_load : float array;  (* committed aggregate requirements *)
  virtual_load : float array;  (* committed requirement + full need *)
}

let feasible state (s : Model.Service.t) =
  let open Vec in
  Vector.fits s.requirement.Epair.elementary
    state.node.Model.Node.capacity.Epair.elementary
  &&
  let cap = state.node.Model.Node.capacity.Epair.aggregate in
  let d = Vector.dim cap in
  let rec loop i =
    if i >= d then true
    else
      let c = Vector.get cap i in
      let tol = Vector.eps *. Float.max 1. c in
      state.req_load.(i) +. Vector.get s.requirement.Epair.aggregate i
      <= c +. tol
      && loop (i + 1)
  in
  loop 0

(* Selection score: the feasible node with the smallest score wins, ties to
   the lowest node index. *)
let score strategy state (s : Model.Service.t) =
  let open Vec in
  let cap = state.node.Model.Node.capacity.Epair.aggregate in
  let d = Vector.dim cap in
  let avail i = Vector.get cap i -. state.virtual_load.(i) in
  let demand i =
    Vector.get s.requirement.Epair.aggregate i
    +. Vector.get s.need.Epair.aggregate i
  in
  let total_avail =
    let acc = ref 0. in
    for i = 0 to d - 1 do acc := !acc +. avail i done;
    !acc
  in
  match strategy with
  | P1 ->
      let dim_need = Vector.dominant_dimension (need_agg s) in
      -.avail dim_need
  | P2 ->
      let load_after = ref 0. and caps = ref 0. in
      for i = 0 to d - 1 do
        load_after := !load_after +. state.virtual_load.(i) +. demand i;
        caps := !caps +. Vector.get cap i
      done;
      if !caps <= 0. then infinity else !load_after /. !caps
  | P3 ->
      let dim_req = Vector.dominant_dimension (req_agg s) in
      avail dim_req -. demand dim_req
  | P4 -> total_avail
  | P5 ->
      let dim_req = Vector.dominant_dimension (req_agg s) in
      -.(avail dim_req -. demand dim_req)
  | P6 -> -.total_avail
  | P7 -> 0.  (* first feasible node: score constant, ties to lowest index *)

let place sort_strategy place_strategy instance =
  let services =
    sort_services sort_strategy
      (Array.init (Model.Instance.n_services instance)
         (Model.Instance.service instance))
  in
  let dims =
    Vec.Epair.dim (Model.Instance.node instance 0).Model.Node.capacity
  in
  let states =
    Array.init (Model.Instance.n_nodes instance) (fun h ->
        {
          node = Model.Instance.node instance h;
          req_load = Array.make dims 0.;
          virtual_load = Array.make dims 0.;
        })
  in
  let placement = Array.make (Model.Instance.n_services instance) (-1) in
  let commit state (s : Model.Service.t) =
    let open Vec in
    for i = 0 to dims - 1 do
      state.req_load.(i) <-
        state.req_load.(i) +. Vector.get s.requirement.Epair.aggregate i;
      state.virtual_load.(i) <-
        state.virtual_load.(i)
        +. Vector.get s.requirement.Epair.aggregate i
        +. Vector.get s.need.Epair.aggregate i
    done
  in
  let place_one (s : Model.Service.t) =
    let best = ref (-1) and best_score = ref infinity in
    Obs.Metrics.add c_candidates (Array.length states);
    Array.iteri
      (fun h state ->
        if feasible state s then begin
          let sc = score place_strategy state s in
          if sc < !best_score then begin
            best := h;
            best_score := sc
          end
        end)
      states;
    if !best >= 0 then begin
      Obs.Metrics.incr c_placements;
      commit states.(!best) s;
      placement.(s.Model.Service.id) <- !best;
      true
    end
    else false
  in
  let rec loop j =
    if j >= Array.length services then Some placement
    else if place_one services.(j) then loop (j + 1)
    else None
  in
  loop 0

let solve sort_strategy place_strategy instance =
  match place sort_strategy place_strategy instance with
  | None -> None
  | Some placement -> Vp_solver.evaluate instance placement

let metagreedy instance =
  List.fold_left
    (fun best (s, p) ->
      match solve s p instance with
      | None -> best
      | Some sol -> (
          match best with
          | Some (b : Vp_solver.solution) when b.min_yield >= sol.min_yield ->
              best
          | _ -> Some sol))
    None all_combinations
