(** Uniform algorithm registry.

    Every placement algorithm of the paper behind one signature, so the
    experiment harness, CLI, and benches can treat them interchangeably. *)

type kind =
  | Yield_search of Packing.Strategy.t list
      (** a yield binary search whose probe tries the strategies in
          order — steppable, so the batched driver ({!Batch}) can
          interleave its rounds with other requests' *)
  | Direct  (** runs start-to-finish as one opaque task *)

type t = {
  name : string;
  kind : kind;
  solve : ?pool:Par.Pool.t -> Model.Instance.t -> Vp_solver.solution option;
}
(** [solve ?pool instance]: with a [pool] of size > 1 the binary-search
    algorithms (METAVP / METAHVP / METAHVPLIGHT and {!single_vp}) run
    their yield search speculatively over the pool
    ({!Binary_search.maximize_par}) — the result is bit-identical at any
    pool size. Algorithms without a yield search ignore the pool.
    [kind] describes the same split structurally, for drivers that need
    to step the search themselves rather than call [solve]. *)

val metagreedy : t
(** Best of the 49 greedy combinations (§3.4). *)

val metavp : t
(** Binary search over the 33 homogeneous vector-packing strategies
    (§3.5.3). *)

val metahvp : t
(** Binary search over the 253 heterogeneous strategies (§3.5.5). *)

val metahvplight : t
(** Binary search over the pruned 60-strategy subset (§5.1). *)

val rrnd : seed:int -> t
val rrnz : seed:int -> t
(** LP-relaxation rounding (§3.3). Deterministic given the seed. *)

val rrnd_probed : seed:int -> t
val rrnz_probed : seed:int -> t
(** Probe-based rounding variants ({!Rounding.rrnd_probed} /
    {!Rounding.rrnz_probed}): probabilities from warm-started yield
    feasibility probes instead of the single maximizing LP. Not part of
    {!majors} (Table 1 keeps the paper's originals). *)

val exact_milp : ?node_limit:int -> unit -> t
(** Branch-and-bound on the full MILP; only tractable on small instances. *)

val single_vp : Packing.Strategy.t -> t
(** A single packing strategy driven by the yield binary search; the name
    is {!Packing.Strategy.name}. *)

val single_greedy : Greedy.sort_strategy -> Greedy.place_strategy -> t

val majors : seed:int -> t list
(** The five algorithms of Table 1: RRND, RRNZ, METAGREEDY, METAVP,
    METAHVP, in that order. *)

val valid_names : string list
(** The names {!by_name} accepts, lowercase, in registry order — for error
    messages and help text. *)

val by_name : seed:int -> string -> t option
(** Look up any registry algorithm by its name (case-insensitive); accepts
    the five majors plus ["METAHVPLIGHT"], ["MILP"], and ["greedy"] — the
    latter resolving to [single_greedy S7 P4], the cheap single-pass
    solver for large online simulations (see {!valid_names}). *)
