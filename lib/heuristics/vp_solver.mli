(** Vector-packing placement solvers.

    Adapters from {!Packing} strategies to the resource-allocation problem:
    at a candidate yield, every service becomes an item whose demand is
    [(rᵉ + y·nᵉ, rᵃ + y·nᵃ)] and every node a bin; a successful packing is
    a valid placement at that yield.

    Packing strategies are one kind of yield-probe oracle; the LP
    relaxation is the other ({!Milp.relaxed_yield_search}, which threads a
    warm-start basis through {!Binary_search.maximize_warm} instead of a
    packing scratch state). *)

type solution = {
  placement : Model.Placement.t;
  min_yield : float;
      (** Actual minimum yield of the placement (water-filled), which is at
          least the yield the binary search proved feasible. *)
}

val items_at_yield : Model.Instance.t -> float -> Packing.Item.t array
(** Service demands at a common yield, in service-id order. *)

val fresh_bins : Model.Instance.t -> Packing.Bin.t array
(** Empty bins mirroring the instance's nodes. *)

val pack_at_yield :
  Packing.Strategy.t -> Model.Instance.t -> float -> Model.Placement.t option
(** One fixed-yield feasibility probe with a single strategy. *)

val solve :
  ?tolerance:float ->
  ?pool:Par.Pool.t ->
  ?on_round:(float array -> unit) ->
  ?kernel:bool ->
  Packing.Strategy.t ->
  Model.Instance.t ->
  solution option
(** Binary-search the yield with a single strategy as oracle. With a
    [pool] of size > 1 the search runs {!Binary_search.maximize_par} —
    same solution bit-for-bit, fewer oracle rounds. [on_round] observes
    each round's probed yields (instrumentation).

    By default probes run through the probe-shared packing kernel
    (DESIGN.md §11): per-solve item/bin scratch refilled in place,
    memoized sort orders and Permutation-Pack item permutations —
    bit-identical to the naive fresh-allocation path, just cheaper. Set
    the [VMALLOC_NO_PROBE_CACHE=1] environment variable (read per solve)
    or pass [~kernel:false] to restore the naive path; [~kernel]
    overrides the environment in both directions. Kernel sort-memo hits
    land on the [vp_solver.items_cache_hits] counter. *)

val solve_multi :
  ?tolerance:float ->
  ?pool:Par.Pool.t ->
  ?on_round:(float array -> unit) ->
  ?kernel:bool ->
  ?prune:bool ->
  Packing.Strategy.t list ->
  Model.Instance.t ->
  solution option
(** Binary-search where each probe tries the strategies in order and
    succeeds as soon as one packs — the META* construction (§3.5.3,
    §3.5.5). The achieved minimum yield is evaluated on the final
    placement. [pool] / [on_round] / [kernel] as in {!solve}.

    [prune] enables monotone strategy pruning on the kernel path: a
    strategy that failed at yield [y'] is skipped at any probe
    [y >= y'], counted on [vp_solver.strategies_pruned]. Off by default
    (enable per process with [VMALLOC_PROBE_PRUNE=1]; the argument
    overrides the environment): the skip is only exact if each
    strategy's feasibility is monotone in the yield, and differential
    sweeps falsified that premise at Table-1 scale — pruned solves can
    return a different (still valid) placement than the naive path, so
    the mode trades the bit-identity guarantee for the skipped
    attempts. *)

val batch_oracle :
  ?kernel:bool ->
  ?prune:bool ->
  Packing.Strategy.t list ->
  Model.Instance.t ->
  (float -> Model.Placement.t option) * (unit -> unit)
(** The raw fixed-yield probe oracle behind {!solve_multi} (kernel-backed
    unless disabled, see {!solve}) together with its retirement hook, for
    callers that drive the yield search themselves — the batched solve
    driver ({!Batch}) stepping a {!Binary_search.plan} under
    {!Par.Scheduler}. Call the hook exactly once, after the last probe:
    it releases the solve's per-domain kernel scratch into the domain
    free pools, from which a later same-shaped solve is {e rebound}
    instead of allocated (counted on [scheduler.scratch_reuses]);
    rebinding restores a freshly-built kernel's state exactly, so reuse
    never changes results. Standalone {!solve}/{!solve_multi} never
    retire — their kernels age out of the bounded per-domain working set
    instead — keeping their counter totals domain-count invariant. *)

val evaluate : Model.Instance.t -> Model.Placement.t -> solution option
(** Water-fill a placement into a [solution] (shared by greedy and rounding
    algorithms). *)
