(* Multi-tenant batched solving (DESIGN.md §16): adapt the algorithm
   registry onto [Par.Scheduler] requests so N concurrent solves share
   one domain pool.

   A [Yield_search] job becomes a stepped request around a
   [Binary_search.plan]: each scheduler round it contributes its current
   probe batch as tasks (thunks writing verdicts into a request-local
   buffer), and on completion retires its kernel token so the per-domain
   scratch pools can rebind the kernels to later jobs. A [Direct] job
   contributes a single one-shot task running the whole solve. Both are
   pure functions of their own results, so the batched run is
   bit-identical to solving the jobs back-to-back sequentially —
   whatever the pool size, interleaving, or speculation depth. *)

type job = { algo : Algorithms.t; instance : Model.Instance.t }

let yield_search_request ?tolerance ?depth ~sched ~strategies ~instance
    ~(out : Vp_solver.solution option -> unit) () =
  let oracle, retire = Vp_solver.batch_oracle strategies instance in
  let pool_size = Par.Pool.size (Par.Scheduler.pool sched) in
  let depth_fn =
    match depth with
    | Some m ->
        let m = max 1 m in
        fun ~remaining:_ -> m
    | None ->
        fun ~remaining ->
          Binary_search.adaptive_depth ~pool_size
            ~occupancy:(Par.Scheduler.occupancy sched)
            ~remaining
  in
  let plan = Binary_search.plan ?tolerance ~depth:depth_fn () in
  let pending = ref [||] in
  fun () ->
    match Binary_search.plan_next plan ~prev:!pending with
    | Some points ->
        let buf = Array.make (Array.length points) None in
        pending := buf;
        Some
          (Array.mapi (fun j y -> fun () -> buf.(j) <- oracle y) points)
    | None ->
        retire ();
        out
          (match Binary_search.plan_result plan with
          | None -> None
          | Some (placement, _probed_yield) ->
              Vp_solver.evaluate instance placement);
        None

let direct_request ~(algo : Algorithms.t) ~instance
    ~(out : Vp_solver.solution option -> unit) () =
  let emitted = ref false in
  fun () ->
    if !emitted then None
    else begin
      emitted := true;
      (* The whole solve is one task; it must not reach back into the
         shared pool (Pool.map would raise on the nested map), so the
         algorithm runs its sequential path — same result by the pool
         bit-identity contract. *)
      Some [| (fun () -> out (algo.Algorithms.solve instance)) |]
    end

let solve_batch ?tolerance ?depth ~sched jobs =
  let n = Array.length jobs in
  let results = Array.make n None in
  let requests =
    Array.mapi
      (fun i { algo; instance } ->
        let out r = results.(i) <- r in
        match algo.Algorithms.kind with
        | Algorithms.Yield_search strategies ->
            yield_search_request ?tolerance ?depth ~sched ~strategies
              ~instance ~out ()
        | Algorithms.Direct -> direct_request ~algo ~instance ~out ())
      jobs
  in
  Par.Scheduler.run sched requests;
  results
