let default_tolerance = 1e-4

(* A non-positive tolerance would make the bisection loop non-terminating
   (the bracket can never become narrower than 0), so it is clamped to the
   paper's threshold rather than trusted. *)
let clamp_tolerance tolerance =
  if tolerance <= 0. then default_tolerance else tolerance

(* Every oracle round passes through [announce], so the round/probe
   counters live here: one round per call, one probe per candidate point
   (the pooled search evaluates the whole batch). *)
let c_rounds = Obs.Metrics.counter "binary_search.rounds"
let c_probes = Obs.Metrics.counter "binary_search.probes"

(* Speculative probes evaluated by [maximize_par] that the sequential
   probe path never consumes — the price of the k-probe speedup. *)
let c_waste = Obs.Metrics.counter "binary_search.speculative_waste"

let announce on_round points =
  Obs.Metrics.incr c_rounds;
  Obs.Metrics.add c_probes (Array.length points);
  match on_round with Some f -> f points | None -> ()

(* State-threading variant: the oracle receives an accumulator alongside
   the probed yield and returns the updated accumulator with the verdict.
   The probe schedule is identical to [maximize] — the state rides along
   (LP warm-start bases in {!Milp.relaxed_yield_search}), it never steers
   the bisection, so warm and cold searches take the same probe path. *)
let maximize_warm ?(tolerance = default_tolerance) ?on_round ~init oracle =
  let tolerance = clamp_tolerance tolerance in
  let state = ref init in
  let probe y =
    let next, verdict = oracle !state y in
    state := next;
    verdict
  in
  announce on_round [| 1. |];
  match probe 1. with
  | Some sol -> Some (sol, 1.)
  | None -> (
      announce on_round [| 0. |];
      match probe 0. with
      | None -> None
      | Some sol0 ->
          let best = ref (sol0, 0.) in
          let lo = ref 0. and hi = ref 1. in
          while !hi -. !lo > tolerance do
            let mid = 0.5 *. (!lo +. !hi) in
            announce on_round [| mid |];
            match probe mid with
            | Some sol ->
                best := (sol, mid);
                lo := mid
            | None -> hi := mid
          done;
          Some !best)

let maximize ?tolerance ?on_round oracle =
  maximize_warm ?tolerance ?on_round ~init:()
    (fun () y -> ((), oracle y))

(* Depth of the speculative probe tree: the largest m with 2^m - 1
   candidate points needing at most ceil(log2 (k+1)) levels, i.e. the
   number of bisection levels one k-domain round can resolve. *)
let levels_for ~pool_size:k =
  let rec up m = if 1 lsl m >= k + 1 then m else up (m + 1) in
  max 1 (up 0)

let maximize_par ?(tolerance = default_tolerance) ?on_round ~pool oracle =
  let tolerance = clamp_tolerance tolerance in
  announce on_round [| 1. |];
  match oracle 1. with
  | Some sol -> Some (sol, 1.)
  | None -> (
      announce on_round [| 0. |];
      match oracle 0. with
      | None -> None
      | Some sol0 ->
          let levels = levels_for ~pool_size:(Par.Pool.size pool) in
          let n = (1 lsl levels) - 1 in
          let best = ref (sol0, 0.) in
          let lo = ref 0. and hi = ref 1. in
          (* Candidate yields of one speculative round: the next [levels]
             levels of the bisection tree below the current bracket, in
             heap order (children of i at 2i+1 / 2i+2). Every point is
             computed with the same [0.5 *. (lo +. hi)] arithmetic the
             sequential loop uses, so the on-path points are bit-identical
             floats. *)
          let points = Array.make n 0. in
          let rec fill i lo hi =
            if i < n then begin
              let mid = 0.5 *. (lo +. hi) in
              points.(i) <- mid;
              fill ((2 * i) + 1) lo mid;
              fill ((2 * i) + 2) mid hi
            end
          in
          while !hi -. !lo > tolerance do
            fill 0 !lo !hi;
            announce on_round (Array.copy points);
            let results = Par.Pool.map pool points oracle in
            (* Resolve the sequential probe path through the speculative
               results: descend to the upper child on a feasible probe and
               the lower child otherwise, re-checking the stopping width
               before consuming each level exactly as the sequential loop
               checks it before each probe. Off-path results are simply
               discarded — the oracle is pure, so evaluating them cannot
               change the outcome. *)
            let consumed = ref 0 in
            let rec resolve i =
              if i < n && !hi -. !lo > tolerance then begin
                incr consumed;
                match results.(i) with
                | Some sol ->
                    best := (sol, points.(i));
                    lo := points.(i);
                    resolve ((2 * i) + 2)
                | None ->
                    hi := points.(i);
                    resolve ((2 * i) + 1)
              end
            in
            resolve 0;
            Obs.Metrics.add c_waste (n - !consumed)
          done;
          Some !best)
