let default_tolerance = 1e-4

(* A non-positive tolerance would make the bisection loop non-terminating
   (the bracket can never become narrower than 0), so it is clamped to the
   paper's threshold rather than trusted. *)
let clamp_tolerance tolerance =
  if tolerance <= 0. then default_tolerance else tolerance

(* Every oracle round passes through [announce], so the round/probe
   counters live here: one round per call, one probe per candidate point
   (the pooled search evaluates the whole batch). *)
let c_rounds = Obs.Metrics.counter "binary_search.rounds"
let c_probes = Obs.Metrics.counter "binary_search.probes"

(* Speculative probes evaluated by [maximize_par] that the sequential
   probe path never consumes — the price of the k-probe speedup. *)
let c_waste = Obs.Metrics.counter "binary_search.speculative_waste"

(* Speculation depth actually used per bisect round (after the remaining-
   levels cap and the adaptive policy), so the chosen depths are
   observable next to the waste they produce. *)
let h_depth = Obs.Metrics.histogram "binary_search.depth"

let announce on_round points =
  Obs.Metrics.incr c_rounds;
  Obs.Metrics.add c_probes (Array.length points);
  match on_round with Some f -> f points | None -> ()

(* State-threading variant: the oracle receives an accumulator alongside
   the probed yield and returns the updated accumulator with the verdict.
   The probe schedule is identical to [maximize] — the state rides along
   (LP warm-start bases in {!Milp.relaxed_yield_search}), it never steers
   the bisection, so warm and cold searches take the same probe path. *)
let maximize_warm ?(tolerance = default_tolerance) ?on_round ~init oracle =
  let tolerance = clamp_tolerance tolerance in
  let state = ref init in
  let probe y =
    let next, verdict = oracle !state y in
    state := next;
    verdict
  in
  announce on_round [| 1. |];
  match probe 1. with
  | Some sol -> Some (sol, 1.)
  | None -> (
      announce on_round [| 0. |];
      match probe 0. with
      | None -> None
      | Some sol0 ->
          let best = ref (sol0, 0.) in
          let lo = ref 0. and hi = ref 1. in
          while !hi -. !lo > tolerance do
            let mid = 0.5 *. (!lo +. !hi) in
            announce on_round [| mid |];
            match probe mid with
            | Some sol ->
                best := (sol, mid);
                lo := mid
            | None -> hi := mid
          done;
          Some !best)

let maximize ?tolerance ?on_round oracle =
  maximize_warm ?tolerance ?on_round ~init:()
    (fun () y -> ((), oracle y))

(* Depth of the speculative probe tree: the largest m with 2^m - 1
   candidate points needing at most ceil(log2 (k+1)) levels, i.e. the
   number of bisection levels one k-domain round can resolve. *)
let levels_for ~pool_size:k =
  let rec up m = if 1 lsl m >= k + 1 then m else up (m + 1) in
  max 1 (up 0)

(* Bisection levels the sequential loop still needs before [hi - lo]
   drops below the tolerance — the cap that keeps the final speculative
   rounds from fanning out candidates no resolution path can consume.
   Halving by [0.5 *. w] is exact in binary floating point, so the count
   tracks the loop's own bracket shrinkage. *)
let levels_needed ~tolerance ~lo ~hi =
  let w = ref (hi -. lo) and r = ref 0 in
  while !w > tolerance do
    w := 0.5 *. !w;
    incr r
  done;
  max 1 !r

(* Measured cost model for the adaptive speculation depth. Inputs: the
   per-request pool share (pool size over scheduler occupancy) and the
   EWMA per-probe cost lib/obs records from every executed pool round.
   Depth m costs ceil((2^m - 1) / share) waves of probe work plus one
   round of fixed dispatch overhead and resolves m bisection levels, so
   pick the m with the best levels-per-second rate. The choice only sizes
   the precomputed fan — never which points get probed — so feeding a
   wall-clock estimate into it cannot break bit-identity. With probe
   costs far above the overhead (every real packing oracle) the argmax is
   independent of the estimate's exact value, so round counts stay stable
   run to run. *)
let round_overhead_ns = 25_000.

let adaptive_depth ~pool_size ~occupancy ~remaining =
  let share = max 1 (pool_size / max 1 occupancy) in
  let base = levels_for ~pool_size:share in
  let cap = max 1 remaining in
  match Obs.Cost.estimate_ns () with
  | None -> min base cap
  | Some c ->
      let rate m =
        let probes = (1 lsl m) - 1 in
        let waves = (probes + share - 1) / share in
        float_of_int m /. ((float_of_int waves *. c) +. round_overhead_ns)
      in
      let best = ref 1 in
      for m = 2 to base do
        if rate m > rate !best then best := m
      done;
      min !best cap

(* Steppable speculative search — the one state machine behind both
   [maximize_par] (one request, one pool) and [Par.Scheduler] batching
   (many requests interleaved per round). Each [plan_next] consumes the
   previous batch's verdicts and emits the next batch of candidate
   yields; points use the exact [0.5 *. (lo +. hi)] arithmetic of the
   sequential loop and the resolution walk replays its branch decisions,
   re-checking the stopping width before each level, so the outcome is
   bit-identical to [maximize] whatever depth each round used. *)
type stage = Init | Await_one | Await_zero | Await_bisect | Finished

type 'a plan = {
  p_tolerance : float;
  p_on_round : (float array -> unit) option;
  p_depth : remaining:int -> int;
  mutable p_stage : stage;
  mutable p_lo : float;
  mutable p_hi : float;
  mutable p_best : ('a * float) option;
  mutable p_points : float array;  (* the outstanding batch *)
}

let plan ?(tolerance = default_tolerance) ?on_round ~depth () =
  {
    p_tolerance = clamp_tolerance tolerance;
    p_on_round = on_round;
    p_depth = depth;
    p_stage = Init;
    p_lo = 0.;
    p_hi = 1.;
    p_best = None;
    p_points = [||];
  }

let emit p stage points =
  p.p_points <- points;
  p.p_stage <- stage;
  announce p.p_on_round (Array.copy points);
  Some points

(* The speculative fan under the current bracket: the next [m] bisection
   levels in heap order (children of i at 2i+1 / 2i+2), with [m] chosen
   by the plan's depth policy and capped by the levels actually left —
   deeper fans would only produce off-path waste the resolution walk can
   never consume. *)
let emit_fan p =
  let remaining =
    levels_needed ~tolerance:p.p_tolerance ~lo:p.p_lo ~hi:p.p_hi
  in
  let m = max 1 (min (p.p_depth ~remaining) remaining) in
  Obs.Metrics.observe h_depth m;
  let n = (1 lsl m) - 1 in
  let points = Array.make n 0. in
  let rec fill i lo hi =
    if i < n then begin
      let mid = 0.5 *. (lo +. hi) in
      points.(i) <- mid;
      fill ((2 * i) + 1) lo mid;
      fill ((2 * i) + 2) mid hi
    end
  in
  fill 0 p.p_lo p.p_hi;
  emit p Await_bisect points

let finish p =
  p.p_stage <- Finished;
  p.p_points <- [||];
  None

let plan_next p ~prev =
  if
    p.p_stage <> Init
    && Array.length prev <> Array.length p.p_points
  then
    invalid_arg
      "Binary_search.plan_next: result array does not match the \
       outstanding batch";
  match p.p_stage with
  | Finished -> None
  | Init -> emit p Await_one [| 1. |]
  | Await_one -> (
      match prev.(0) with
      | Some sol ->
          p.p_best <- Some (sol, 1.);
          finish p
      | None -> emit p Await_zero [| 0. |])
  | Await_zero -> (
      match prev.(0) with
      | None -> finish p
      | Some sol0 ->
          p.p_best <- Some (sol0, 0.);
          if p.p_hi -. p.p_lo > p.p_tolerance then emit_fan p else finish p)
  | Await_bisect ->
      (* Resolve the sequential probe path through the speculative
         results: descend to the upper child on a feasible probe and the
         lower child otherwise, re-checking the stopping width before
         consuming each level exactly as the sequential loop checks it
         before each probe. Off-path results are simply discarded — the
         oracle is pure, so evaluating them cannot change the outcome. *)
      let n = Array.length p.p_points in
      let consumed = ref 0 in
      let rec resolve i =
        if i < n && p.p_hi -. p.p_lo > p.p_tolerance then begin
          incr consumed;
          match prev.(i) with
          | Some sol ->
              p.p_best <- Some (sol, p.p_points.(i));
              p.p_lo <- p.p_points.(i);
              resolve ((2 * i) + 2)
          | None ->
              p.p_hi <- p.p_points.(i);
              resolve ((2 * i) + 1)
        end
      in
      resolve 0;
      Obs.Metrics.add c_waste (n - !consumed);
      if p.p_hi -. p.p_lo > p.p_tolerance then emit_fan p else finish p

let plan_result p = p.p_best

let plan_finished p = p.p_stage = Finished

let maximize_par ?tolerance ?on_round ?depth ~pool oracle =
  let k = Par.Pool.size pool in
  let depth_fn =
    match depth with
    | Some m ->
        let m = max 1 m in
        fun ~remaining:_ -> m
    | None ->
        let m = levels_for ~pool_size:k in
        fun ~remaining:_ -> m
  in
  let p = plan ?tolerance ?on_round ~depth:depth_fn () in
  let rec drive prev =
    match plan_next p ~prev with
    | None -> plan_result p
    | Some points ->
        let t0 = Obs.Cost.now_ns () in
        let results = Par.Pool.map pool points oracle in
        Obs.Cost.observe
          ~tasks:(Array.length points)
          ~elapsed_ns:(Obs.Cost.now_ns () -. t0);
        drive results
  in
  drive [||]
