type t = {
  quantile : float;
  window : int;
  min_threshold : float;
  max_threshold : float;
  samples : float array;  (* ring buffer of absolute errors *)
  mutable count : int;    (* total observations ever *)
  mutable current : float;
}

let create ?(initial = 0.) ?(quantile = 90.) ?(window = 256)
    ?(min_threshold = 0.) ?(max_threshold = 0.5) () =
  if quantile < 0. || quantile > 100. then
    invalid_arg "Adaptive_threshold.create: quantile out of [0, 100]";
  if window <= 0 then
    invalid_arg "Adaptive_threshold.create: window must be positive";
  if max_threshold < min_threshold then
    invalid_arg "Adaptive_threshold.create: empty clamp range";
  {
    quantile;
    window;
    min_threshold;
    max_threshold;
    samples = Array.make window 0.;
    count = 0;
    current = Float.max min_threshold (Float.min max_threshold initial);
  }

let fresh t = { t with samples = Array.make t.window 0.; count = 0 }

let threshold t = t.current

let observations t = min t.count t.window

let recompute t =
  let n = observations t in
  if n > 0 then begin
    let xs = Array.sub t.samples 0 n in
    Array.sort Float.compare xs;
    (* Linear-interpolated quantile, as in Stats.Summary.percentile (not
       used directly to keep the sharing library free of the stats
       dependency). *)
    let value =
      if n = 1 then xs.(0)
      else begin
        let rank = t.quantile /. 100. *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        ((1. -. frac) *. xs.(lo)) +. (frac *. xs.(hi))
      end
    in
    t.current <-
      Float.max t.min_threshold (Float.min t.max_threshold value)
  end

let observe t ~estimated ~actual =
  if Array.length estimated <> Array.length actual then
    invalid_arg "Adaptive_threshold.observe: length mismatch";
  Array.iteri
    (fun j e ->
      let gap = Float.abs (e -. actual.(j)) in
      t.samples.(t.count mod t.window) <- gap;
      t.count <- t.count + 1)
    estimated;
  recompute t
