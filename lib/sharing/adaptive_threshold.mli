(** Adaptive minimum-threshold controller (paper §8, future work).

    The paper's §6.2 mitigation rounds CPU-need estimates up to a fixed
    minimum threshold; its conclusion lists "a method for determining and
    adapting the threshold" as the natural next step. This controller
    implements the obvious feedback loop: after each planning epoch the
    platform observes, per service, the absolute gap between the estimated
    and the actually consumed CPU; the next epoch's threshold is a high
    quantile of the recent gaps (over a sliding window), clamped to a
    configurable range.

    Rationale: the fixed-threshold sweeps (Figures 5–7) show that the right
    threshold is roughly the scale of the estimation error — too low and
    small underestimated services starve, too high and the plan degrades
    toward zero-knowledge. Tracking an upper quantile of the observed error
    keeps the reserve just above what recent history justifies. *)

type t

val create :
  ?initial:float ->
  ?quantile:float ->
  ?window:int ->
  ?min_threshold:float ->
  ?max_threshold:float ->
  unit ->
  t
(** Defaults: [initial = 0.], [quantile = 90.] (percent), [window = 256]
    observations, clamp range [0, 0.5]. Raises [Invalid_argument] on a
    quantile outside [0, 100], non-positive window, or an empty clamp
    range. *)

val fresh : t -> t
(** An independent controller with the same configuration, the current
    threshold as its starting value, and an empty observation window.
    The sharded simulator hands one to each shard so that no mutable state
    is shared across domains. *)

val threshold : t -> float
(** The threshold to apply to the next epoch's estimates (feed to
    {!Workload.Errors.apply_threshold}-style rounding). *)

val observe : t -> estimated:float array -> actual:float array -> unit
(** Record one epoch's per-service estimated and actually-consumed CPU;
    updates the threshold. Raises [Invalid_argument] on length mismatch. *)

val observations : t -> int
(** Number of error samples currently in the window. *)
