(* Tests for the instance file format: golden output, roundtrips, and
   parse-error reporting. *)

let fig1_instance =
  Model.Instance.v
    ~nodes:
      [|
        Model.Node.make_cores ~id:0 ~cores:4 ~cpu:3.2 ~mem:1.0;
        Model.Node.make_cores ~id:1 ~cores:2 ~cpu:2.0 ~mem:0.5;
      |]
    ~services:
      [|
        Model.Service.make_2d ~id:0 ~cpu_req:(0.5, 1.0) ~mem_req:0.5
          ~cpu_need:(0.5, 1.0) ();
      |]

let instances_equal a b =
  Model.Instance.n_nodes a = Model.Instance.n_nodes b
  && Model.Instance.n_services a = Model.Instance.n_services b
  && List.for_all
       (fun h ->
         Model.Node.equal (Model.Instance.node a h) (Model.Instance.node b h))
       (List.init (Model.Instance.n_nodes a) Fun.id)
  && List.for_all
       (fun j ->
         Model.Service.equal
           (Model.Instance.service a j)
           (Model.Instance.service b j))
       (List.init (Model.Instance.n_services a) Fun.id)

let test_roundtrip_fig1 () =
  match Model.Codec.of_string (Model.Codec.to_string fig1_instance) with
  | Ok parsed ->
      Alcotest.(check bool) "roundtrip" true
        (instances_equal fig1_instance parsed)
  | Error e -> Alcotest.fail e

let test_header_line () =
  let s = Model.Codec.to_string fig1_instance in
  Alcotest.(check bool) "header" true
    (String.length s > 18 && String.sub s 0 18 = "vmalloc-instance 1")

let test_comments_and_blanks_ignored () =
  let s = Model.Codec.to_string fig1_instance in
  let lines = String.split_on_char '\n' s in
  let noisy =
    String.concat "\n"
      (List.concat_map (fun l -> [ "# a comment"; ""; l ]) lines)
  in
  match Model.Codec.of_string noisy with
  | Ok parsed ->
      Alcotest.(check bool) "parses with noise" true
        (instances_equal fig1_instance parsed)
  | Error e -> Alcotest.fail e

let expect_error text fragment =
  match Model.Codec.of_string text with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e fragment)
        true
        (let len = String.length fragment in
         let rec search i =
           i + len <= String.length e
           && (String.sub e i len = fragment || search (i + 1))
         in
         search 0)

let test_bad_header () = expect_error "nonsense 1\ndims 2\n" "bad header"

let test_bad_version () =
  expect_error "vmalloc-instance 99\ndims 2\n" "unsupported version"

let test_bad_float () =
  expect_error
    "vmalloc-instance 1\ndims 1\nnodes 1\nnode 0 elt oops agg 1\nservices 0\n"
    "expected float"

let test_truncated () =
  expect_error "vmalloc-instance 1\ndims 2\nnodes 3\nnode 0 elt 1 1 agg 1 1\n"
    "truncated"

let test_trailing_garbage () =
  let s = Model.Codec.to_string fig1_instance ^ "unexpected stuff\n" in
  expect_error s "trailing content"

let test_zero_services_rejected () =
  (* The model requires at least one service; the codec surfaces the model
     error as a parse diagnostic instead of raising. *)
  match
    Model.Codec.of_string
      "vmalloc-instance 1\ndims 1\nnodes 1\nnode 0 elt 1 agg 1\nservices 0\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_file_roundtrip () =
  let path = Filename.temp_file "vmalloc" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Model.Codec.write_file path fig1_instance;
      match Model.Codec.read_file path with
      | Ok parsed ->
          Alcotest.(check bool) "file roundtrip" true
            (instances_equal fig1_instance parsed)
      | Error e -> Alcotest.fail e)

let test_missing_file () =
  match Model.Codec.read_file "/nonexistent/vmalloc.inst" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* Random instances roundtrip exactly (we print with %.17g). *)

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"codec roundtrips generated instances" ~count:100
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* hosts = int_range 1 10 in
      let* services = int_range 1 20 in
      pure (seed, hosts, services))
    (fun (seed, hosts, services) ->
      let inst =
        Workload.Generator.generate
          ~rng:(Prng.Rng.create ~seed)
          {
            Workload.Generator.hosts;
            services;
            cov = 0.7;
            slack = 0.4;
            cpu_homogeneous = false;
            mem_homogeneous = false;
          }
      in
      match Model.Codec.of_string (Model.Codec.to_string inst) with
      | Ok parsed -> instances_equal inst parsed
      | Error _ -> false)

(* Fuzz: arbitrary text never crashes the parser — it parses or returns a
   diagnostic. *)
let prop_parser_total =
  QCheck2.Test.make ~name:"parser is total on arbitrary text" ~count:500
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 400))
    (fun text ->
      match Model.Codec.of_string text with
      | Ok _ | Error _ -> true)

(* Fuzz with plausible structure: mutate a valid serialization by chopping
   it at a random point. *)
let prop_parser_total_on_truncations =
  QCheck2.Test.make ~name:"parser is total on truncated instances" ~count:200
    QCheck2.Gen.(int_range 0 1000)
    (fun cut ->
      let full = Model.Codec.to_string fig1_instance in
      let cut = min cut (String.length full) in
      match Model.Codec.of_string (String.sub full 0 cut) with
      | Ok _ | Error _ -> true)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("roundtrip Fig. 1", test_roundtrip_fig1);
      ("header line", test_header_line);
      ("comments and blanks", test_comments_and_blanks_ignored);
      ("bad header", test_bad_header);
      ("bad version", test_bad_version);
      ("bad float", test_bad_float);
      ("truncated", test_truncated);
      ("trailing garbage", test_trailing_garbage);
      ("zero services rejected", test_zero_services_rejected);
      ("file roundtrip", test_file_roundtrip);
      ("missing file", test_missing_file);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip_random; prop_parser_total;
        prop_parser_total_on_truncations ]
