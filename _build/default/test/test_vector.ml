(* Unit and property tests for Vec.Vector. *)

open Vec

let check_float = Alcotest.(check (float 1e-12))

let v = Vector.of_list

let test_make_and_get () =
  let x = Vector.make 3 1.5 in
  Alcotest.(check int) "dim" 3 (Vector.dim x);
  check_float "component" 1.5 (Vector.get x 1)

let test_make_invalid () =
  Alcotest.check_raises "zero dim" (Invalid_argument
    "Vector.make: dimension must be positive") (fun () ->
      ignore (Vector.make 0 1.))

let test_of_list_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Vector.of_array: empty")
    (fun () -> ignore (Vector.of_list []))

let test_arithmetic () =
  let a = v [ 1.; 2.; 3. ] and b = v [ 0.5; 0.5; 0.5 ] in
  check_float "add" 2.5 (Vector.get (Vector.add a b) 1);
  check_float "sub" 2.5 (Vector.get (Vector.sub a b) 2);
  check_float "scale" 6. (Vector.get (Vector.scale 2. a) 2);
  check_float "axpy" 1.5 (Vector.get (Vector.axpy 0.5 a b) 1)

let test_dimension_mismatch () =
  let a = v [ 1.; 2. ] and b = v [ 1. ] in
  Alcotest.check_raises "add" (Invalid_argument
    "Vector.map2: dimension mismatch") (fun () -> ignore (Vector.add a b))

let test_metrics () =
  let x = v [ 0.2; 0.8; 0.4 ] in
  check_float "sum" 1.4 (Vector.sum x);
  check_float "max" 0.8 (Vector.max_component x);
  check_float "min" 0.2 (Vector.min_component x);
  check_float "maxratio" 4. (Vector.max_ratio x);
  check_float "maxdiff" 0.6 (Vector.max_difference x)

let test_max_ratio_degenerate () =
  check_float "all zero" 1. (Vector.max_ratio (v [ 0.; 0. ]));
  Alcotest.(check bool) "zero min"
    true
    (Float.is_integer (Vector.max_ratio (v [ 1.; 0. ]))
     = Float.is_integer infinity
     && Vector.max_ratio (v [ 1.; 0. ]) = infinity)

let test_lex () =
  Alcotest.(check bool) "lt" true
    (Vector.compare_lex (v [ 1.; 9. ]) (v [ 2.; 0. ]) < 0);
  Alcotest.(check bool) "eq" true
    (Vector.compare_lex (v [ 1.; 2. ]) (v [ 1.; 2. ]) = 0);
  Alcotest.(check bool) "second dim" true
    (Vector.compare_lex (v [ 1.; 3. ]) (v [ 1.; 2. ]) > 0)

let test_fits () =
  Alcotest.(check bool) "fits" true
    (Vector.fits (v [ 0.5; 0.5 ]) (v [ 0.5; 1. ]));
  Alcotest.(check bool) "tolerance" true
    (Vector.fits (v [ 0.5 +. 1e-12 ]) (v [ 0.5 ]));
  Alcotest.(check bool) "does not fit" false
    (Vector.fits (v [ 0.6 ]) (v [ 0.5 ]))

let test_dominant_dimension () =
  Alcotest.(check int) "dominant" 1
    (Vector.dominant_dimension (v [ 0.1; 0.9; 0.3 ]));
  Alcotest.(check int) "tie to low index" 0
    (Vector.dominant_dimension (v [ 0.5; 0.5 ]))

let test_permutations () =
  let x = v [ 0.3; 0.9; 0.1 ] in
  Alcotest.(check (array int)) "desc" [| 1; 0; 2 |] (Vector.permutation_desc x);
  Alcotest.(check (array int)) "asc" [| 2; 0; 1 |] (Vector.permutation_asc x);
  (* Ties keep natural order (stable). *)
  let t = v [ 0.5; 0.5; 0.1 ] in
  Alcotest.(check (array int)) "stable desc" [| 0; 1; 2 |]
    (Vector.permutation_desc t)

let test_dot_is_zero () =
  check_float "dot" 1.1 (Vector.dot (v [ 1.; 2. ]) (v [ 0.3; 0.4 ]));
  Alcotest.(check bool) "is_zero" true (Vector.is_zero (v [ 0.; 0. ]));
  Alcotest.(check bool) "not zero" false (Vector.is_zero (v [ 0.; 1e-30 ]))

(* Property tests. *)

let vec_gen =
  QCheck2.Gen.(
    let* d = int_range 1 6 in
    let* comps = list_size (pure d) (float_bound_inclusive 10.) in
    pure (Vector.of_list comps))

(* Same-dimension pair, so properties never discard samples. *)
let vec_pair_gen =
  QCheck2.Gen.(
    let* d = int_range 1 6 in
    let* a = list_size (pure d) (float_bound_inclusive 10.) in
    let* b = list_size (pure d) (float_bound_inclusive 10.) in
    pure (Vector.of_list a, Vector.of_list b))

let prop_add_commutative =
  QCheck2.Test.make ~name:"add commutative" ~count:300 vec_pair_gen
    (fun (a, b) -> Vector.equal (Vector.add a b) (Vector.add b a))

let prop_axpy_matches_add_scale =
  QCheck2.Test.make ~name:"axpy = scale + add" ~count:300
    QCheck2.Gen.(pair (float_bound_inclusive 2.) vec_pair_gen)
    (fun (s, (x, y)) ->
      Vector.equal ~eps:1e-9 (Vector.axpy s x y)
        (Vector.add (Vector.scale s x) y))

let prop_max_ge_min =
  QCheck2.Test.make ~name:"max >= min component" ~count:300 vec_gen (fun x ->
      Vector.max_component x >= Vector.min_component x)

let prop_sum_bounds =
  QCheck2.Test.make ~name:"max <= sum <= d * max (non-negative)" ~count:300
    vec_gen (fun x ->
      let d = float_of_int (Vector.dim x) in
      let mx = Vector.max_component x and s = Vector.sum x in
      mx <= s +. 1e-9 && s <= (d *. mx) +. 1e-9)

let prop_permutation_desc_sorted =
  QCheck2.Test.make ~name:"permutation_desc yields descending components"
    ~count:300 vec_gen (fun x ->
      let p = Vector.permutation_desc x in
      let ok = ref true in
      for i = 0 to Array.length p - 2 do
        if Vector.get x p.(i) < Vector.get x p.(i + 1) then ok := false
      done;
      !ok)

let prop_fits_monotone =
  QCheck2.Test.make ~name:"fits is monotone in capacity" ~count:300
    QCheck2.Gen.(pair vec_gen (float_bound_inclusive 5.))
    (fun (x, extra) ->
      let bigger = Vector.map (fun c -> c +. extra) x in
      Vector.fits x bigger)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("make/get", test_make_and_get);
      ("make invalid", test_make_invalid);
      ("of_list empty", test_of_list_empty);
      ("arithmetic", test_arithmetic);
      ("dimension mismatch", test_dimension_mismatch);
      ("scalar metrics", test_metrics);
      ("max_ratio degenerate", test_max_ratio_degenerate);
      ("lexicographic", test_lex);
      ("fits", test_fits);
      ("dominant dimension", test_dominant_dimension);
      ("permutations", test_permutations);
      ("dot / is_zero", test_dot_is_zero);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_add_commutative;
        prop_axpy_matches_add_scale;
        prop_max_ge_min;
        prop_sum_bounds;
        prop_permutation_desc_sorted;
        prop_fits_monotone;
      ]
