(* Tests for Vec.Epair (elementary/aggregate pairs) and Vec.Metric. *)

open Vec

let check_float = Alcotest.(check (float 1e-12))

let pair e a = Epair.of_arrays (Array.of_list e) (Array.of_list a)

let test_dim_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Epair.v: dimension mismatch") (fun () ->
      ignore
        (Epair.v
           ~elementary:(Vector.of_list [ 1. ])
           ~aggregate:(Vector.of_list [ 1.; 2. ])))

let test_uniform () =
  let p = Epair.uniform (Vector.of_list [ 0.5; 0.25 ]) in
  check_float "elem = agg" (Vector.get p.Epair.elementary 1)
    (Vector.get p.Epair.aggregate 1)

let test_at_yield () =
  let requirement = pair [ 0.5; 0.5 ] [ 1.0; 0.5 ] in
  let need = pair [ 0.5; 0. ] [ 1.0; 0. ] in
  let d = Epair.at_yield ~requirement ~need 0.6 in
  check_float "elementary cpu" 0.8 (Vector.get d.Epair.elementary 0);
  check_float "aggregate cpu" 1.6 (Vector.get d.Epair.aggregate 0);
  check_float "memory unchanged" 0.5 (Vector.get d.Epair.aggregate 1)

let test_fits () =
  let cap = pair [ 0.8; 1.0 ] [ 3.2; 1.0 ] in
  Alcotest.(check bool) "fits" true
    (Epair.fits (pair [ 0.5; 0.5 ] [ 1.0; 0.5 ]) cap);
  Alcotest.(check bool) "elementary violated" false
    (Epair.fits (pair [ 0.9; 0.5 ] [ 1.0; 0.5 ]) cap);
  Alcotest.(check bool) "aggregate violated" false
    (Epair.fits (pair [ 0.5; 0.5 ] [ 3.5; 0.5 ]) cap)

let test_add_scale () =
  let a = pair [ 1.; 2. ] [ 2.; 4. ] in
  let b = Epair.scale 0.5 a in
  check_float "scaled elem" 0.5 (Vector.get b.Epair.elementary 0);
  let c = Epair.add a b in
  check_float "sum agg" 6. (Vector.get c.Epair.aggregate 1)

(* Metric tests. *)

let test_metric_values () =
  let x = Vector.of_list [ 0.2; 0.8 ] in
  check_float "MAX" 0.8 (Metric.value Metric.Max x);
  check_float "SUM" 1.0 (Metric.value Metric.Sum x);
  check_float "MAXRATIO" 4. (Metric.value Metric.Max_ratio x);
  check_float "MAXDIFFERENCE" 0.6 (Metric.value Metric.Max_difference x)

let test_metric_order_count () =
  Alcotest.(check int) "11 item orders" 11 (List.length Metric.all_orders)

let test_metric_sort () =
  let items = [| [ 0.9; 0.1 ]; [ 0.2; 0.2 ]; [ 0.5; 0.5 ] |] in
  let items = Array.map Vector.of_list items in
  let by_sum_desc =
    Metric.sort (Metric.Desc (Metric.Scalar Metric.Sum)) Fun.id items
  in
  check_float "largest sum first" 1.0 (Vector.sum by_sum_desc.(0));
  check_float "smallest sum last" 0.4 (Vector.sum by_sum_desc.(2));
  let unsorted = Metric.sort Metric.Unsorted Fun.id items in
  Alcotest.(check bool) "unsorted keeps order" true
    (Vector.equal unsorted.(0) items.(0))

let test_metric_sort_stable () =
  (* Equal keys keep natural order. *)
  let items = [| (0, [ 0.5; 0.5 ]); (1, [ 0.5; 0.5 ]); (2, [ 0.9; 0.1 ]) |] in
  let items = Array.map (fun (i, l) -> (i, Vector.of_list l)) items in
  let sorted = Metric.sort (Metric.Asc (Metric.Scalar Metric.Sum)) snd items in
  Alcotest.(check (list int)) "stable" [ 0; 1; 2 ]
    (Array.to_list (Array.map fst sorted))

let test_metric_names () =
  Alcotest.(check string) "DMAX" "DMAX"
    (Metric.order_to_string (Metric.Desc (Metric.Scalar Metric.Max)));
  Alcotest.(check string) "ALEX" "ALEX"
    (Metric.order_to_string (Metric.Asc Metric.Lex));
  Alcotest.(check string) "NONE" "NONE" (Metric.order_to_string Metric.Unsorted)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("dimension mismatch", test_dim_mismatch);
      ("uniform", test_uniform);
      ("at_yield (Fig. 1 numbers)", test_at_yield);
      ("fits", test_fits);
      ("add / scale", test_add_scale);
      ("metric values", test_metric_values);
      ("11 metric orders", test_metric_order_count);
      ("metric sort", test_metric_sort);
      ("metric sort stability", test_metric_sort_stable);
      ("metric names", test_metric_names);
    ]
