(* Tests for the resource-sharing simulator: work-conserving scheduler,
   allocation policies, Theorem 1, and the zero-knowledge baseline. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float6 = Alcotest.(check (float 1e-6))

(* Work-conserving scheduler. *)

let test_all_satisfiable () =
  let alloc =
    Sharing.Work_conserving.allocate ~capacity:1. ~weights:[| 1.; 1. |]
      ~needs:[| 0.3; 0.4 |]
  in
  check_float "first" 0.3 alloc.(0);
  check_float "second" 0.4 alloc.(1)

let test_redistribution () =
  (* needs (0.2, 0.9), equal weights, capacity 1: water-filling gives the
     second service 0.8. *)
  let alloc =
    Sharing.Work_conserving.allocate ~capacity:1. ~weights:[| 1.; 1. |]
      ~needs:[| 0.2; 0.9 |]
  in
  check_float "small satisfied" 0.2 alloc.(0);
  check_float6 "big gets the rest" 0.8 alloc.(1)

let test_weighted_shares () =
  (* Weights 3:1, both unsatisfiable: allocations proportional. *)
  let alloc =
    Sharing.Work_conserving.allocate ~capacity:1. ~weights:[| 3.; 1. |]
      ~needs:[| 2.; 2. |]
  in
  check_float6 "3/4" 0.75 alloc.(0);
  check_float6 "1/4" 0.25 alloc.(1)

let test_zero_capacity () =
  let alloc =
    Sharing.Work_conserving.allocate ~capacity:0. ~weights:[| 1. |]
      ~needs:[| 1. |]
  in
  check_float "nothing" 0. alloc.(0)

let test_zero_weights_rejected () =
  Alcotest.check_raises "all weights zero"
    (Invalid_argument "Work_conserving.allocate: all weights zero") (fun () ->
      ignore
        (Sharing.Work_conserving.allocate ~capacity:1. ~weights:[| 0.; 0. |]
           ~needs:[| 0.5; 0.5 |]))

let test_multi_round_cascade () =
  (* Three services; two successive satisfactions release capacity. *)
  let alloc =
    Sharing.Work_conserving.allocate ~capacity:0.9
      ~weights:[| 1.; 1.; 1. |]
      ~needs:[| 0.1; 0.25; 1.0 |]
  in
  check_float "tiny" 0.1 alloc.(0);
  check_float6 "middle" 0.25 alloc.(1);
  check_float6 "rest to the big one" 0.55 alloc.(2)

(* Scheduler invariants as properties. *)

let sharing_gen =
  QCheck2.Gen.(
    let* j = int_range 1 12 in
    let* capacity = float_range 0.1 2. in
    let* weights = list_size (pure j) (float_range 0.01 3.) in
    let* needs = list_size (pure j) (float_range 0. 1.) in
    pure (capacity, Array.of_list weights, Array.of_list needs))

let prop_never_exceeds_need =
  QCheck2.Test.make ~name:"consumption never exceeds need" ~count:500
    sharing_gen (fun (capacity, weights, needs) ->
      let alloc = Sharing.Work_conserving.allocate ~capacity ~weights ~needs in
      Array.for_all2 (fun a n -> a <= n +. 1e-9) alloc needs)

let prop_never_exceeds_capacity =
  QCheck2.Test.make ~name:"total consumption never exceeds capacity"
    ~count:500 sharing_gen (fun (capacity, weights, needs) ->
      let alloc = Sharing.Work_conserving.allocate ~capacity ~weights ~needs in
      Array.fold_left ( +. ) 0. alloc
      <= capacity +. (1e-6 *. float_of_int (Array.length needs)))

let prop_work_conserving =
  QCheck2.Test.make
    ~name:"work conserving: capacity exhausted or all satisfied" ~count:500
    sharing_gen (fun (capacity, weights, needs) ->
      let alloc = Sharing.Work_conserving.allocate ~capacity ~weights ~needs in
      let total = Array.fold_left ( +. ) 0. alloc in
      let all_satisfied =
        Array.for_all2 (fun a n -> a >= n -. 1e-9) alloc needs
      in
      let eps_budget =
        Sharing.Work_conserving.epsilon *. float_of_int (Array.length needs)
      in
      all_satisfied || total >= capacity -. eps_budget -. 1e-9)

let prop_satisfied_untouched_by_weights =
  QCheck2.Test.make
    ~name:"fully satisfiable demand ignores weights" ~count:300
    QCheck2.Gen.(
      let* j = int_range 1 8 in
      let* weights = list_size (pure j) (float_range 0.01 3.) in
      let* needs = list_size (pure j) (float_range 0. 0.1) in
      pure (Array.of_list weights, Array.of_list needs))
    (fun (weights, needs) ->
      (* Sum of needs <= 0.8 < capacity 1: everyone satisfied. *)
      let alloc =
        Sharing.Work_conserving.allocate ~capacity:1. ~weights ~needs
      in
      (* A service declared satisfied may be short by at most the
         scheduler's epsilon (the termination tolerance). *)
      Array.for_all2
        (fun a n -> Float.abs (a -. n) <= Sharing.Work_conserving.epsilon)
        alloc needs)

(* Policies. *)

let test_alloc_caps_strands_capacity () =
  (* Estimates gave service 0 a generous cap and service 1 a tiny one; the
     true needs are reversed. Caps strand the surplus. *)
  let yields =
    Sharing.Policy.yields Sharing.Policy.Alloc_caps ~capacity:1.
      ~estimated_allocations:[| 0.8; 0.1 |]
      ~true_needs:[| 0.1; 0.8 |]
  in
  check_float "service 0 satisfied" 1.0 yields.(0);
  check_float6 "service 1 starves at its cap" (0.1 /. 0.8) yields.(1)

let test_alloc_weights_work_conserving () =
  (* Same scenario under ALLOCWEIGHTS: the scheduler hands the surplus to
     the underestimated service. *)
  let yields =
    Sharing.Policy.yields Sharing.Policy.Alloc_weights ~capacity:1.
      ~estimated_allocations:[| 0.8; 0.1 |]
      ~true_needs:[| 0.1; 0.8 |]
  in
  check_float "service 0 satisfied" 1.0 yields.(0);
  check_float6 "service 1 recovered" 1.0 yields.(1)

let test_equal_weights_ignores_estimates () =
  let a =
    Sharing.Policy.yields Sharing.Policy.Equal_weights ~capacity:1.
      ~estimated_allocations:[| 0.9; 0.0 |]
      ~true_needs:[| 0.6; 0.6 |]
  in
  let b =
    Sharing.Policy.yields Sharing.Policy.Equal_weights ~capacity:1.
      ~estimated_allocations:[| 0.0; 0.9 |]
      ~true_needs:[| 0.6; 0.6 |]
  in
  check_float "same under permuted estimates" a.(0) b.(0);
  check_float6 "split evenly" (0.5 /. 0.6) a.(0)

let test_policy_zero_need_service () =
  let yields =
    Sharing.Policy.yields Sharing.Policy.Equal_weights ~capacity:1.
      ~estimated_allocations:[| 0.0; 0.5 |]
      ~true_needs:[| 0.0; 0.5 |]
  in
  check_float "zero-need yield 1" 1.0 yields.(0)

let test_min_yield_empty () =
  check_float "empty node" 1.0
    (Sharing.Policy.min_yield Sharing.Policy.Equal_weights ~capacity:1.
       ~estimated_allocations:[||] ~true_needs:[||])

(* Theorem 1. *)

let test_bound_values () =
  check_float "J=1" 1.0 (Sharing.Theorem.bound 1);
  check_float "J=2" 0.75 (Sharing.Theorem.bound 2);
  check_float "J=10" 0.19 (Sharing.Theorem.bound 10)

let test_tight_instance () =
  List.iter
    (fun j ->
      let needs = Sharing.Theorem.worst_case_instance j in
      check_float6
        (Printf.sprintf "tight at J=%d" j)
        (Sharing.Theorem.bound j)
        (Sharing.Theorem.competitive_ratio ~needs))
    [ 2; 3; 5; 8; 13 ]

let test_optimal_min_yield () =
  check_float "undersubscribed" 1.0
    (Sharing.Theorem.optimal_min_yield ~needs:[| 0.2; 0.3 |]);
  check_float6 "oversubscribed" (1. /. 1.5)
    (Sharing.Theorem.optimal_min_yield ~needs:[| 0.5; 1.0 |])

let prop_theorem_bound_holds =
  QCheck2.Test.make
    ~name:"EQUALWEIGHTS ratio >= (2J-1)/J^2 for needs in (0,1]" ~count:500
    QCheck2.Gen.(
      let* j = int_range 1 15 in
      let* needs = list_size (pure j) (float_range 0.001 1.) in
      pure (Array.of_list needs))
    (fun needs ->
      let j = Array.length needs in
      Sharing.Theorem.competitive_ratio ~needs
      >= Sharing.Theorem.bound j -. 1e-6)

let prop_policy_yields_in_range =
  QCheck2.Test.make ~name:"policy yields always in [0, 1]" ~count:300
    QCheck2.Gen.(
      let* j = int_range 1 10 in
      let* capacity = float_range 0. 2. in
      let* est = list_size (pure j) (float_bound_inclusive 1.) in
      let* needs = list_size (pure j) (float_bound_inclusive 1.) in
      let* policy = int_range 0 2 in
      pure (capacity, Array.of_list est, Array.of_list needs, policy))
    (fun (capacity, estimated_allocations, true_needs, policy) ->
      let policy =
        match policy with
        | 0 -> Sharing.Policy.Alloc_caps
        | 1 -> Sharing.Policy.Alloc_weights
        | _ -> Sharing.Policy.Equal_weights
      in
      let ys =
        Sharing.Policy.yields policy ~capacity ~estimated_allocations
          ~true_needs
      in
      Array.for_all (fun y -> y >= -1e-9 && y <= 1. +. 1e-9) ys)

let prop_adaptive_threshold_clamped =
  QCheck2.Test.make ~name:"adaptive threshold stays in its clamp range"
    ~count:200
    QCheck2.Gen.(
      let* obs =
        list_size (int_range 1 20)
          (list_size (int_range 1 8) (float_bound_inclusive 2.))
      in
      pure obs)
    (fun observations ->
      let c =
        Sharing.Adaptive_threshold.create ~quantile:95. ~min_threshold:0.05
          ~max_threshold:0.3 ()
      in
      List.iter
        (fun xs ->
          let estimated = Array.of_list xs in
          let actual = Array.map (fun x -> x /. 2.) estimated in
          Sharing.Adaptive_threshold.observe c ~estimated ~actual)
        observations;
      let t = Sharing.Adaptive_threshold.threshold c in
      t >= 0.05 && t <= 0.3)

(* Zero-knowledge baseline. *)

let test_zero_knowledge_even_spread () =
  let nodes =
    Array.init 3 (fun id -> Model.Node.make_cores ~id ~cores:4 ~cpu:1. ~mem:1.)
  in
  let services =
    Array.init 6 (fun id -> Model.Service.make_2d ~id ~mem_req:0.1 ())
  in
  let inst = Model.Instance.v ~nodes ~services in
  match Sharing.Zero_knowledge.place inst with
  | None -> Alcotest.fail "should place"
  | Some placement ->
      let counts = Array.make 3 0 in
      Array.iter (fun h -> counts.(h) <- counts.(h) + 1) placement;
      Alcotest.(check (array int)) "two per node" [| 2; 2; 2 |] counts

let test_zero_knowledge_respects_memory () =
  let nodes =
    [|
      Model.Node.make_cores ~id:0 ~cores:4 ~cpu:1. ~mem:0.15;
      Model.Node.make_cores ~id:1 ~cores:4 ~cpu:1. ~mem:1.0;
    |]
  in
  let services =
    Array.init 3 (fun id -> Model.Service.make_2d ~id ~mem_req:0.3 ())
  in
  let inst = Model.Instance.v ~nodes ~services in
  match Sharing.Zero_knowledge.place inst with
  | None -> Alcotest.fail "should place"
  | Some placement ->
      Array.iteri
        (fun j h ->
          Alcotest.(check int) (Printf.sprintf "service %d avoids node 0" j) 1
            h)
        placement;
      Alcotest.(check bool) "feasible" true
        (Model.Placement.feasible inst placement)

let test_zero_knowledge_failure () =
  let inst =
    Model.Instance.v
      ~nodes:[| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:1. ~mem:0.1 |]
      ~services:[| Model.Service.make_2d ~id:0 ~mem_req:0.5 () |]
  in
  Alcotest.(check bool) "no fit" true (Sharing.Zero_knowledge.place inst = None)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("all satisfiable", test_all_satisfiable);
      ("redistribution", test_redistribution);
      ("weighted shares", test_weighted_shares);
      ("zero capacity", test_zero_capacity);
      ("zero weights rejected", test_zero_weights_rejected);
      ("multi-round cascade", test_multi_round_cascade);
      ("ALLOCCAPS strands capacity", test_alloc_caps_strands_capacity);
      ("ALLOCWEIGHTS recovers surplus", test_alloc_weights_work_conserving);
      ("EQUALWEIGHTS ignores estimates", test_equal_weights_ignores_estimates);
      ("zero-need service", test_policy_zero_need_service);
      ("empty node min yield", test_min_yield_empty);
      ("theorem bound values", test_bound_values);
      ("tight instance achieves the bound", test_tight_instance);
      ("optimal min yield", test_optimal_min_yield);
      ("zero-knowledge even spread", test_zero_knowledge_even_spread);
      ("zero-knowledge respects memory", test_zero_knowledge_respects_memory);
      ("zero-knowledge failure", test_zero_knowledge_failure);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_never_exceeds_need;
        prop_never_exceeds_capacity;
        prop_work_conserving;
        prop_satisfied_untouched_by_weights;
        prop_policy_yields_in_range;
        prop_adaptive_threshold_clamped;
        prop_theorem_bound_holds;
      ]
