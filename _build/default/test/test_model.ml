(* Tests for the problem model: nodes, services, instances, yield semantics
   (including the paper's Fig. 1 worked example), placements and the MILP
   constraint checker. *)

let check_float = Alcotest.(check (float 1e-9))

(* Fig. 1 of the paper. *)
let node_a = Model.Node.make_cores ~id:0 ~cores:4 ~cpu:3.2 ~mem:1.0
let node_b = Model.Node.make_cores ~id:1 ~cores:2 ~cpu:2.0 ~mem:0.5

let fig1_service =
  Model.Service.make_2d ~id:0 ~cpu_req:(0.5, 1.0) ~mem_req:0.5
    ~cpu_need:(0.5, 1.0) ~mem_need:0.0 ()

let fig1_instance =
  Model.Instance.v ~nodes:[| node_a; node_b |] ~services:[| fig1_service |]

let test_node_constructors () =
  let open Vec in
  check_float "elementary cpu" 0.8
    (Vector.get node_a.Model.Node.capacity.Epair.elementary 0);
  check_float "aggregate cpu" 3.2
    (Vector.get node_a.Model.Node.capacity.Epair.aggregate 0);
  check_float "memory poolable" 1.0
    (Vector.get node_a.Model.Node.capacity.Epair.elementary 1)

let test_node_invalid () =
  Alcotest.check_raises "elementary > aggregate"
    (Invalid_argument "Node.v: elementary capacity exceeds aggregate in dim 0")
    (fun () ->
      ignore
        (Model.Node.v ~id:0
           ~capacity:(Vec.Epair.of_arrays [| 2.; 1. |] [| 1.; 1. |])))

let test_service_demand () =
  let open Vec in
  let d = Model.Service.demand_at_yield fig1_service 0.6 in
  check_float "agg cpu at 0.6" 1.6 (Vector.get d.Epair.aggregate 0);
  check_float "elem cpu at 0.6" 0.8 (Vector.get d.Epair.elementary 0)

let test_fig1_yields () =
  (match Model.Yield.max_min_yield node_a [ fig1_service ] with
  | Some y -> check_float "node A yield" 0.6 y
  | None -> Alcotest.fail "node A should be feasible");
  match Model.Yield.max_min_yield node_b [ fig1_service ] with
  | Some y -> check_float "node B yield" 1.0 y
  | None -> Alcotest.fail "node B should be feasible"

let test_elementary_bound () =
  (match Model.Yield.elementary_bound node_a fig1_service with
  | Some b -> check_float "bound on A" 0.6 b
  | None -> Alcotest.fail "bound must exist");
  (* A service whose elementary requirement exceeds one core. *)
  let fat =
    Model.Service.make_2d ~id:0 ~cpu_req:(0.9, 0.9) ~mem_req:0.1 ()
  in
  Alcotest.(check bool) "requirement too large" true
    (Model.Yield.elementary_bound node_a fat = None)

let test_zero_need_service () =
  let rigid = Model.Service.make_2d ~id:0 ~mem_req:0.3 () in
  match Model.Yield.max_min_yield node_a [ rigid ] with
  | Some y -> check_float "no needs -> yield 1" 1.0 y
  | None -> Alcotest.fail "should fit"

let test_requirements_fit () =
  let s1 = Model.Service.make_2d ~id:0 ~mem_req:0.6 () in
  let s2 = Model.Service.make_2d ~id:1 ~mem_req:0.6 () in
  Alcotest.(check bool) "one fits" true
    (Model.Yield.requirements_fit node_a [ s1 ]);
  Alcotest.(check bool) "two exceed memory" false
    (Model.Yield.requirements_fit node_a [ s1; s2 ])

let test_aggregate_level_sharing () =
  (* Two services with CPU needs 0.5/0.5 aggregate on a node with 1.0 CPU:
     level 1; with needs 1.0 each: level 0.5. *)
  let node = Model.Node.make_cores ~id:0 ~cores:4 ~cpu:1.0 ~mem:1.0 in
  let svc id need =
    Model.Service.make_2d ~id ~mem_req:0.1 ~cpu_need:(need /. 4., need) ()
  in
  let l1 = Model.Yield.aggregate_level node [ svc 0 0.5; svc 1 0.5 ] in
  check_float "exact fill" 1.0 l1;
  let l2 = Model.Yield.aggregate_level node [ svc 0 1.0; svc 1 1.0 ] in
  check_float "half fill" 0.5 l2

let test_water_fill_respects_elementary_caps () =
  (* Node: 2 cores x 0.5. Service 0's elementary need caps it at 0.5 yield;
     service 1 can use the leftover. *)
  let node = Model.Node.make_cores ~id:0 ~cores:2 ~cpu:1.0 ~mem:1.0 in
  let s0 = Model.Service.make_2d ~id:0 ~mem_req:0.1 ~cpu_need:(1.0, 1.0) () in
  let s1 = Model.Service.make_2d ~id:1 ~mem_req:0.1 ~cpu_need:(0.25, 0.5) () in
  match Model.Yield.water_fill node [ s0; s1 ] with
  | Some [ y0; y1 ] ->
      check_float "capped by elementary" 0.5 y0;
      (* remaining aggregate: 1 - 0.5 = 0.5 -> y1 = min(1, 0.5/0.5) = 1 *)
      check_float "water-filled above" 1.0 y1
  | _ -> Alcotest.fail "water_fill failed"

let test_water_fill_min_matches_max_min () =
  (* The minimum of water-filled yields equals max_min_yield. *)
  let node = Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.8 ~mem:1.0 in
  let services =
    [
      Model.Service.make_2d ~id:0 ~mem_req:0.2 ~cpu_need:(0.1, 0.4) ();
      Model.Service.make_2d ~id:1 ~mem_req:0.2 ~cpu_need:(0.2, 0.6) ();
      Model.Service.make_2d ~id:2 ~mem_req:0.2 ~cpu_need:(0.05, 0.2) ();
    ]
  in
  match
    (Model.Yield.water_fill node services,
     Model.Yield.max_min_yield node services)
  with
  | Some ys, Some m ->
      check_float "min matches" m (List.fold_left Float.min 1. ys)
  | _ -> Alcotest.fail "both should succeed"

let test_fits_at_yield () =
  Alcotest.(check bool) "fits at 0.6 on A" true
    (Model.Yield.fits_at_yield node_a [ fig1_service ] 0.6);
  Alcotest.(check bool) "fails above 0.6 on A" false
    (Model.Yield.fits_at_yield node_a [ fig1_service ] 0.7);
  Alcotest.(check bool) "fits at 1.0 on B" true
    (Model.Yield.fits_at_yield node_b [ fig1_service ] 1.0)

let test_instance_validation () =
  Alcotest.check_raises "bad ids"
    (Invalid_argument "Instance.v: node ids must be 0..H-1") (fun () ->
      ignore (Model.Instance.v ~nodes:[| node_b |] ~services:[| fig1_service |]))

let test_instance_totals () =
  let open Vec in
  let total = Model.Instance.total_capacity fig1_instance in
  check_float "total cpu" 5.2 (Vector.get total 0);
  check_float "total mem" 1.5 (Vector.get total 1);
  let req = Model.Instance.total_requirement fig1_instance in
  check_float "req cpu" 1.0 (Vector.get req 0);
  let need = Model.Instance.total_need fig1_instance in
  check_float "need cpu" 1.0 (Vector.get need 0)

let test_placement_min_yield () =
  (match Model.Placement.min_yield fig1_instance [| 0 |] with
  | Some y -> check_float "on A" 0.6 y
  | None -> Alcotest.fail "feasible");
  (match Model.Placement.min_yield fig1_instance [| 1 |] with
  | Some y -> check_float "on B" 1.0 y
  | None -> Alcotest.fail "feasible");
  Alcotest.(check bool) "invalid placement" true
    (Model.Placement.min_yield fig1_instance [| 7 |] = None)

let test_placement_water_fill_and_check () =
  match Model.Placement.water_fill fig1_instance [| 1 |] with
  | None -> Alcotest.fail "feasible"
  | Some alloc -> (
      check_float "yield" 1.0 alloc.Model.Placement.yields.(0);
      match Model.Placement.check_constraints fig1_instance alloc with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_check_constraints_rejects_overload () =
  let alloc =
    { Model.Placement.placement = [| 0 |]; yields = [| 1.0 |] }
  in
  (* At yield 1.0 on node A the elementary CPU constraint (0.5 + 0.5 > 0.8)
     is violated. *)
  match Model.Placement.check_constraints fig1_instance alloc with
  | Ok () -> Alcotest.fail "should reject"
  | Error e ->
      Alcotest.(check bool) "names constraint 5" true
        (String.length e >= 12 && String.sub e 0 12 = "constraint 5")

let test_group_by_node () =
  let s0 = Model.Service.make_2d ~id:0 ~mem_req:0.1 () in
  let s1 = Model.Service.make_2d ~id:1 ~mem_req:0.1 () in
  let s2 = Model.Service.make_2d ~id:2 ~mem_req:0.1 () in
  let inst =
    Model.Instance.v ~nodes:[| node_a; node_b |] ~services:[| s0; s1; s2 |]
  in
  let groups = Model.Placement.group_by_node inst [| 1; 0; 1 |] in
  Alcotest.(check (list int)) "node 0" [ 1 ]
    (List.map (fun (s : Model.Service.t) -> s.id) groups.(0));
  Alcotest.(check (list int)) "node 1 in id order" [ 0; 2 ]
    (List.map (fun (s : Model.Service.t) -> s.id) groups.(1))

let test_max_average_starves () =
  (* §2 motivation: a cheap service and an expensive one on a single node.
     Average maximization starves the expensive one; max-min does not. *)
  let node = Model.Node.make_cores ~id:0 ~cores:4 ~cpu:1.0 ~mem:1.0 in
  let cheap =
    Model.Service.make_2d ~id:0 ~mem_req:0.1 ~cpu_need:(0.25, 0.2) ()
  in
  let expensive =
    Model.Service.make_2d ~id:1 ~mem_req:0.1 ~cpu_need:(0.25, 1.0) ()
  in
  (match Model.Yield.max_average_yields node [ cheap; expensive ] with
  | Some [ y_cheap; y_expensive ] ->
      check_float "cheap saturated" 1.0 y_cheap;
      Alcotest.(check bool)
        (Printf.sprintf "expensive nearly starved (%.2f)" y_expensive)
        true (y_expensive <= 0.81)
  | _ -> Alcotest.fail "max_average_yields failed");
  match Model.Yield.water_fill node [ cheap; expensive ] with
  | Some [ y_cheap; y_expensive ] ->
      Alcotest.(check bool) "max-min protects the expensive service" true
        (y_expensive > 0.81 && y_cheap >= y_expensive)
  | _ -> Alcotest.fail "water_fill failed"

let test_max_average_at_least_min_sum () =
  (* The average-maximizing greedy never yields a smaller sum than the
     max-min allocation. *)
  let node = Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.8 ~mem:1.0 in
  let services =
    [
      Model.Service.make_2d ~id:0 ~mem_req:0.1 ~cpu_need:(0.1, 0.4) ();
      Model.Service.make_2d ~id:1 ~mem_req:0.1 ~cpu_need:(0.2, 0.8) ();
      Model.Service.make_2d ~id:2 ~mem_req:0.1 ~cpu_need:(0.05, 0.2) ();
    ]
  in
  match
    (Model.Yield.max_average_yields node services,
     Model.Yield.water_fill node services)
  with
  | Some avg, Some fair ->
      let sum = List.fold_left ( +. ) 0. in
      Alcotest.(check bool) "sum(avg) >= sum(fair)" true
        (sum avg +. 1e-9 >= sum fair)
  | _ -> Alcotest.fail "both should succeed"

let test_analysis () =
  let a = Model.Analysis.analyze fig1_instance in
  Alcotest.(check int) "hosts" 2 a.hosts;
  Alcotest.(check int) "services" 1 a.services;
  check_float "services per node" 0.5 a.services_per_node;
  (* CPU requirement 1.0 over 5.2 capacity. *)
  Alcotest.(check (float 1e-9)) "cpu req utilization" (1.0 /. 5.2)
    a.requirement_utilization.(0);
  Alcotest.(check (float 1e-9)) "mem req utilization" (0.5 /. 1.5)
    a.requirement_utilization.(1);
  Alcotest.(check bool) "placeable" true a.all_services_placeable;
  (* Identical nodes would have cov 0; A and B differ. *)
  Alcotest.(check bool) "heterogeneous cpu" true (a.capacity_cov.(0) > 0.)

let test_analysis_unplaceable () =
  let inst =
    Model.Instance.v
      ~nodes:[| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:1. ~mem:0.1 |]
      ~services:[| Model.Service.make_2d ~id:0 ~mem_req:0.5 () |]
  in
  let a = Model.Analysis.analyze inst in
  Alcotest.(check bool) "unplaceable detected" false a.all_services_placeable

let test_report () =
  match Model.Placement.water_fill fig1_instance [| 1 |] with
  | None -> Alcotest.fail "feasible"
  | Some alloc ->
      let util = Model.Report.utilization fig1_instance alloc in
      (* Node B at yield 1: CPU demand 2.0 of 2.0, memory 0.5 of 0.5. *)
      check_float "node B cpu full" 1.0 util.(1).(0);
      check_float "node B mem full" 1.0 util.(1).(1);
      check_float "node A idle" 0.0 util.(0).(0);
      let text = Model.Report.render fig1_instance alloc in
      Alcotest.(check bool) "mentions yield" true
        (String.length text > 0
        && String.sub text 0 13 = "minimum yield")

(* Properties: water-filled allocations always satisfy constraints. *)

let random_node_gen =
  QCheck2.Gen.(
    let* cpu = float_range 0.2 1.0 in
    let* mem = float_range 0.2 1.0 in
    pure (cpu, mem))

let random_instance_gen =
  QCheck2.Gen.(
    let* n_nodes = int_range 1 4 in
    let* n_services = int_range 1 8 in
    let* nodes = list_size (pure n_nodes) random_node_gen in
    let* services =
      list_size (pure n_services)
        (triple (float_range 0.0 0.15) (float_range 0.0 0.3) (int_range 1 4))
    in
    pure (nodes, services))

let build_instance (nodes, services) =
  let nodes =
    List.mapi
      (fun id (cpu, mem) -> Model.Node.make_cores ~id ~cores:4 ~cpu ~mem)
      nodes
  in
  let services =
    List.mapi
      (fun id (mem_req, cpu_need, cores) ->
        Model.Service.make_2d ~id ~mem_req
          ~cpu_need:(cpu_need /. float_of_int cores, cpu_need)
          ())
      services
  in
  Model.Instance.v ~nodes:(Array.of_list nodes)
    ~services:(Array.of_list services)

let prop_water_fill_valid =
  QCheck2.Test.make ~name:"water-filled allocations satisfy constraints 1-7"
    ~count:300
    QCheck2.Gen.(pair random_instance_gen (int_range 0 1000))
    (fun (spec, salt) ->
      let inst = build_instance spec in
      let h = Model.Instance.n_nodes inst in
      let rng = Prng.Rng.create ~seed:salt in
      let placement =
        Array.init (Model.Instance.n_services inst) (fun _ ->
            Prng.Rng.int rng h)
      in
      match Model.Placement.water_fill inst placement with
      | None -> true (* infeasible placements are allowed to be rejected *)
      | Some alloc -> (
          match Model.Placement.check_constraints inst alloc with
          | Ok () -> true
          | Error _ -> false))

let prop_min_yield_le_water_fill_min =
  QCheck2.Test.make
    ~name:"max_min_yield equals min of water-filled yields" ~count:300
    QCheck2.Gen.(pair random_instance_gen (int_range 0 1000))
    (fun (spec, salt) ->
      let inst = build_instance spec in
      let h = Model.Instance.n_nodes inst in
      let rng = Prng.Rng.create ~seed:salt in
      let placement =
        Array.init (Model.Instance.n_services inst) (fun _ ->
            Prng.Rng.int rng h)
      in
      match
        (Model.Placement.min_yield inst placement,
         Model.Placement.water_fill inst placement)
      with
      | None, None -> true
      | Some m, Some alloc ->
          let wf_min = Array.fold_left Float.min 1. alloc.yields in
          Float.abs (m -. wf_min) <= 1e-9
      | _ -> false)

let prop_max_min_yield_consistent_with_fits =
  (* The two independent code paths must agree: the exact breakpoint-sweep
     max-min yield is feasible under the packing-style fixed-yield check,
     and a slightly higher common yield is not (unless capped at 1). *)
  QCheck2.Test.make ~name:"max_min_yield is the fits_at_yield frontier"
    ~count:300
    QCheck2.Gen.(pair random_instance_gen (int_range 0 1000))
    (fun (spec, salt) ->
      let inst = build_instance spec in
      let rng = Prng.Rng.create ~seed:salt in
      let h = Prng.Rng.int rng (Model.Instance.n_nodes inst) in
      let node = Model.Instance.node inst h in
      (* Random subset of services on this node. *)
      let services =
        List.filter
          (fun _ -> Prng.Rng.uniform rng < 0.6)
          (List.init (Model.Instance.n_services inst)
             (Model.Instance.service inst))
      in
      match Model.Yield.max_min_yield node services with
      | None -> not (Model.Yield.requirements_fit node services)
      | Some y ->
          (* Independent oracle: bisect the fixed-yield feasibility check
             and compare against the exact breakpoint sweep. *)
          if not (Model.Yield.fits_at_yield node services 0.) then false
          else begin
            let lo = ref 0. and hi = ref 1. in
            if Model.Yield.fits_at_yield node services 1. then lo := 1.
            else
              for _ = 1 to 40 do
                let mid = 0.5 *. (!lo +. !hi) in
                if Model.Yield.fits_at_yield node services mid then lo := mid
                else hi := mid
              done;
            Float.abs (!lo -. y) <= 1e-6
          end)

let prop_fits_at_yield_monotone =
  QCheck2.Test.make ~name:"fits_at_yield is monotone in yield" ~count:300
    QCheck2.Gen.(
      triple random_instance_gen (float_bound_inclusive 1.)
        (float_bound_inclusive 1.))
    (fun (spec, y1, y2) ->
      let inst = build_instance spec in
      let lo = Float.min y1 y2 and hi = Float.max y1 y2 in
      let node = Model.Instance.node inst 0 in
      let services =
        List.init (Model.Instance.n_services inst)
          (Model.Instance.service inst)
      in
      (not (Model.Yield.fits_at_yield node services hi))
      || Model.Yield.fits_at_yield node services lo)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("node constructors", test_node_constructors);
      ("node validation", test_node_invalid);
      ("service demand at yield", test_service_demand);
      ("Fig. 1 yields (0.6 on A, 1.0 on B)", test_fig1_yields);
      ("elementary bound", test_elementary_bound);
      ("zero-need service", test_zero_need_service);
      ("requirements fit", test_requirements_fit);
      ("aggregate level", test_aggregate_level_sharing);
      ("water-fill with elementary caps", test_water_fill_respects_elementary_caps);
      ("water-fill min = max-min yield", test_water_fill_min_matches_max_min);
      ("fits_at_yield", test_fits_at_yield);
      ("instance validation", test_instance_validation);
      ("instance totals", test_instance_totals);
      ("placement min yield", test_placement_min_yield);
      ("placement water-fill + checker", test_placement_water_fill_and_check);
      ("checker rejects overload", test_check_constraints_rejects_overload);
      ("group by node", test_group_by_node);
      ("analysis", test_analysis);
      ("analysis unplaceable", test_analysis_unplaceable);
      ("max-average starves (§2 motivation)", test_max_average_starves);
      ("max-average sum dominates", test_max_average_at_least_min_sum);
      ("placement report", test_report);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_water_fill_valid;
        prop_min_yield_le_water_fill_min;
        prop_max_min_yield_consistent_with_fits;
        prop_fits_at_yield_monotone;
      ]
