(* Tests for the statistics library: summaries, the paper's pairwise
   metrics, tables and series. *)

let check_float = Alcotest.(check (float 1e-9))

let test_summary_basic () =
  let s = Stats.Summary.of_list [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 s.count;
  check_float "mean" 2.5 s.mean;
  check_float "min" 1. s.min;
  check_float "max" 4. s.max;
  check_float "stddev" (sqrt 1.25) s.stddev

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty")
    (fun () -> ignore (Stats.Summary.of_array [||]))

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.Summary.median xs);
  check_float "p0" 1. (Stats.Summary.percentile xs 0.);
  check_float "p100" 5. (Stats.Summary.percentile xs 100.);
  check_float "p25" 2. (Stats.Summary.percentile xs 25.)

let test_cov () =
  check_float "zero mean" 0.
    (Stats.Summary.coefficient_of_variation [| 1.; -1. |]);
  check_float "uniform" 0. (Stats.Summary.coefficient_of_variation [| 2.; 2. |])

(* Pairwise. *)

let test_pairwise_yield_diff () =
  let a = [| Some 0.6; Some 0.8; None |] in
  let b = [| Some 0.5; Some 0.4; Some 0.9 |] in
  let c = Stats.Pairwise.compare ~a ~b in
  (* Diffs: (0.6-0.5)/0.5 = 20%, (0.8-0.4)/0.4 = 100% -> avg 60%. *)
  (match c.yield_diff_pct with
  | Some y -> check_float "Y_{A,B}" 60. y
  | None -> Alcotest.fail "expected diff");
  (* S: only-A 0%, only-B 1/3. *)
  Alcotest.(check (float 1e-9)) "S_{A,B}" (-100. /. 3.) c.success_diff_pct;
  Alcotest.(check int) "both" 2 c.both_succeed;
  Alcotest.(check int) "only b" 1 c.only_b

let test_pairwise_antisymmetry () =
  let a = [| Some 0.6; None; Some 0.2; None |] in
  let b = [| Some 0.3; Some 0.4; None; None |] in
  let ab = Stats.Pairwise.compare ~a ~b in
  let ba = Stats.Pairwise.compare ~a:b ~b:a in
  check_float "S antisymmetric" ab.success_diff_pct (-.ba.success_diff_pct);
  Alcotest.(check int) "neither symmetric" ab.neither ba.neither

let test_pairwise_zero_baseline_skipped () =
  let a = [| Some 0.5 |] and b = [| Some 0. |] in
  let c = Stats.Pairwise.compare ~a ~b in
  Alcotest.(check bool) "no ratio against zero" true (c.yield_diff_pct = None);
  Alcotest.(check int) "still counted as both" 1 c.both_succeed

let test_pairwise_matrix () =
  let results = [| [| Some 0.5 |]; [| Some 0.6 |]; [| None |] |] in
  let names = [| "A"; "B"; "C" |] in
  let m = Stats.Pairwise.matrix ~names ~results in
  Alcotest.(check int) "ordered pairs" 6 (List.length m);
  let a_vs_b =
    List.find (fun (x, y, _) -> x = "A" && y = "B") m |> fun (_, _, c) -> c
  in
  (match a_vs_b.yield_diff_pct with
  | Some y -> Alcotest.(check (float 1e-6)) "A vs B" (-16.666666) y
  | None -> Alcotest.fail "diff expected")

let test_pairwise_mismatch () =
  Alcotest.check_raises "length"
    (Invalid_argument "Pairwise.compare: length mismatch") (fun () ->
      ignore (Stats.Pairwise.compare ~a:[| None |] ~b:[| None; None |]))

(* Table. *)

let test_table_render () =
  let t = Stats.Table.create ~headers:[ "name"; "value" ] in
  Stats.Table.add_row t [ "alpha"; "1" ];
  Stats.Table.add_row t [ "b"; "22" ];
  let rendered = Stats.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check string) "header" "name   value" (List.nth lines 0);
  Alcotest.(check string) "row 1" "alpha  1" (List.nth lines 2)

let test_table_row_mismatch () =
  let t = Stats.Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "width"
    (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Stats.Table.add_row t [ "only one" ])

(* Series. *)

let test_series_aggregate () =
  let pts =
    Stats.Series.aggregate [ (0.5, 1.); (0.5, 3.); (0.1, 10.); (0.9, 0.) ]
  in
  Alcotest.(check int) "3 groups" 3 (List.length pts);
  let p05 = List.nth pts 1 in
  check_float "x" 0.5 p05.Stats.Series.x;
  check_float "mean" 2. p05.Stats.Series.mean;
  Alcotest.(check int) "count" 2 p05.Stats.Series.count;
  (* Sorted by x. *)
  check_float "first x" 0.1 (List.nth pts 0).Stats.Series.x

let test_series_csv () =
  let csv =
    Stats.Series.to_csv ~header:("x", "y")
      [ { Stats.Series.x = 0.1; mean = 0.5; count = 3 } ]
  in
  Alcotest.(check string) "csv" "x,y\n0.1,0.5\n" csv

let test_series_render_no_data () =
  Alcotest.(check string) "empty" "label: (no data)"
    (Stats.Series.render ~label:"label" [])

let prop_pairwise_counts_partition =
  QCheck2.Test.make ~name:"pairwise counts partition the instance set"
    ~count:300
    QCheck2.Gen.(
      let* n = int_range 1 50 in
      let opt = option (float_bound_inclusive 1.) in
      let* a = list_size (pure n) opt in
      let* b = list_size (pure n) opt in
      pure (Array.of_list a, Array.of_list b))
    (fun (a, b) ->
      let c = Stats.Pairwise.compare ~a ~b in
      c.both_succeed + c.only_a + c.only_b + c.neither = Array.length a)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("summary basics", test_summary_basic);
      ("summary empty", test_summary_empty);
      ("percentiles", test_percentile);
      ("coefficient of variation", test_cov);
      ("pairwise yield diff", test_pairwise_yield_diff);
      ("pairwise antisymmetry", test_pairwise_antisymmetry);
      ("pairwise zero baseline", test_pairwise_zero_baseline_skipped);
      ("pairwise matrix", test_pairwise_matrix);
      ("pairwise mismatch", test_pairwise_mismatch);
      ("table render", test_table_render);
      ("table row mismatch", test_table_row_mismatch);
      ("series aggregate", test_series_aggregate);
      ("series csv", test_series_csv);
      ("series render empty", test_series_render_no_data);
    ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_pairwise_counts_partition ]
