(* Integration tests for the experiment harness, at tiny scales so the
   whole suite stays fast. *)

let tiny_scale =
  {
    Experiments.Scale.label = "tiny";
    table1_hosts = 4;
    table1_services = [ 6 ];
    table1_covs = [ 0.5 ];
    table1_slacks = [ 0.5 ];
    table1_reps = 2;
    fig_cov_hosts = 4;
    fig_cov_services = 8;
    fig_cov_slack = 0.4;
    fig_cov_covs = [ 0.0; 1.0 ];
    fig_cov_reps = 1;
    fig_cov_include_rrnz = false;
    error_hosts = 4;
    error_services = [ 8; 8; 8 ];
    error_slack = 0.4;
    error_cov = 0.5;
    error_max_errors = [ 0.0; 0.2 ];
    error_thresholds = [ 0.0; 0.1 ];
    error_reps = 1;
    light_hosts = 4;
    light_services = 12;
    light_reps = 1;
  }

let test_corpus_deterministic () =
  let spec =
    {
      Experiments.Corpus.hosts = 4;
      services = 6;
      cov = 0.5;
      slack = 0.4;
      cpu_homogeneous = false;
      mem_homogeneous = false;
      rep = 0;
    }
  in
  let a = Experiments.Corpus.instance spec in
  let b = Experiments.Corpus.instance spec in
  for j = 0 to Model.Instance.n_services a - 1 do
    Alcotest.(check bool) "same" true
      (Model.Service.equal (Model.Instance.service a j)
         (Model.Instance.service b j))
  done

let test_corpus_rep_variation () =
  let spec rep =
    {
      Experiments.Corpus.hosts = 4;
      services = 6;
      cov = 0.5;
      slack = 0.4;
      cpu_homogeneous = false;
      mem_homogeneous = false;
      rep;
    }
  in
  let a = Experiments.Corpus.instance (spec 0) in
  let b = Experiments.Corpus.instance (spec 1) in
  let differs = ref false in
  for j = 0 to Model.Instance.n_services a - 1 do
    if
      not
        (Model.Service.equal (Model.Instance.service a j)
           (Model.Instance.service b j))
    then differs := true
  done;
  Alcotest.(check bool) "reps differ" true !differs

let test_sweep_size () =
  let instances =
    Experiments.Corpus.sweep ~hosts:3 ~services:4 ~covs:[ 0.; 0.5 ]
      ~slacks:[ 0.3; 0.6 ] ~reps:2 ()
  in
  Alcotest.(check int) "2 x 2 x 2" 8 (List.length instances)

let test_table1_runs () =
  let scenarios = Experiments.Table1.run tiny_scale in
  Alcotest.(check int) "one scenario" 1 (List.length scenarios);
  let s = List.hd scenarios in
  Alcotest.(check int) "5 algorithms" 5 (Array.length s.names);
  Alcotest.(check int) "instances" 2 s.n_instances;
  (* Reports render. *)
  Alcotest.(check bool) "table1 report non-empty" true
    (String.length (Experiments.Table1.report_table1 scenarios) > 0);
  Alcotest.(check bool) "table2 report non-empty" true
    (String.length (Experiments.Table1.report_table2 scenarios) > 0)

let test_fig_cov_runs () =
  let r =
    Experiments.Fig_cov.run tiny_scale Experiments.Fig_cov.Fully_heterogeneous
  in
  Alcotest.(check int) "2 contenders (no rrnz)" 2 (List.length r.series);
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Fig_cov.report r) > 0)

let test_fig_cov_homogeneous_variant () =
  let r =
    Experiments.Fig_cov.run tiny_scale Experiments.Fig_cov.Cpu_homogeneous
  in
  Alcotest.(check string) "variant label" "CPU held homogeneous"
    (Experiments.Fig_cov.variant_name r.variant)

let test_fig_error_runs () =
  let r = Experiments.Fig_error.run tiny_scale ~services:8 in
  (* ideal, zero-knowledge, caps, weight x2 thresholds, equal x2. *)
  Alcotest.(check bool) "has ideal series" true
    (List.exists
       (fun (s : Experiments.Fig_error.series) -> s.name = "ideal")
       r.series);
  Alcotest.(check bool) "has zero-knowledge series" true
    (List.exists
       (fun (s : Experiments.Fig_error.series) -> s.name = "zero-knowledge")
       r.series);
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Fig_error.report r) > 0)

let test_error_eval_perfect_estimates () =
  (* With exact estimates and ALLOCWEIGHTS, the achieved min yield is at
     least the planned one (work conservation can only help). *)
  let inst =
    Experiments.Corpus.instance
      {
        Experiments.Corpus.hosts = 4;
        services = 10;
        cov = 0.5;
        slack = 0.5;
        cpu_homogeneous = false;
        mem_homogeneous = false;
        rep = 3;
      }
  in
  match Heuristics.Algorithms.metahvp.solve inst with
  | None -> Alcotest.fail "planning failed"
  | Some sol -> (
      match
        Sharing.Runtime_eval.actual_min_yield Sharing.Policy.Alloc_weights
          ~true_instance:inst ~estimated:inst sol.placement
      with
      | None -> Alcotest.fail "evaluation failed"
      | Some actual ->
          Alcotest.(check bool)
            (Printf.sprintf "actual %.4f >= planned %.4f" actual sol.min_yield)
            true
            (actual >= sol.min_yield -. 1e-6))

let test_theorem_check_rows () =
  let rows = Experiments.Theorem_check.run ~random_per_j:20 ~js:[ 2; 4 ] () in
  List.iter
    (fun (r : Experiments.Theorem_check.row) ->
      Alcotest.(check (float 1e-6)) "tight" r.bound r.worst_case_ratio;
      Alcotest.(check bool) "random above bound" true
        (r.min_random_ratio >= r.bound -. 1e-6))
    rows

let test_light_runs () =
  let r = Experiments.Light.run tiny_scale in
  Alcotest.(check bool) "consistent counts" true
    (r.both_solved + r.only_hvp + r.only_light <= r.n_instances);
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Light.report r) > 0)

let test_ablation_window () =
  let rows = Experiments.Ablation.window_sweep ~hosts:4 ~services:8 ~reps:2 () in
  Alcotest.(check int) "two windows" 2 (List.length rows)

let test_ablation_pp_impl () =
  let rows =
    Experiments.Ablation.pp_implementation ~dims_list:[ 2; 3 ] ~items:20
      ~bins:6 ~reps:2 ()
  in
  List.iter
    (fun (r : Experiments.Ablation.pp_impl_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "identical at D=%d" r.dims)
        true r.identical)
    rows

let test_ablation_tolerance () =
  let rows =
    Experiments.Ablation.tolerance_sweep ~hosts:4 ~services:8 ~reps:1 ()
  in
  Alcotest.(check int) "four tolerances" 4 (List.length rows);
  (* Yield must be monotonically non-decreasing as tolerance tightens. *)
  let rec check = function
    | (a : Experiments.Ablation.tolerance_row)
      :: (b :: _ as rest : Experiments.Ablation.tolerance_row list) ->
        Alcotest.(check bool) "tighter tolerance never hurts yield" true
          (b.mean_yield >= a.mean_yield -. 1e-9);
        check rest
    | _ -> ()
  in
  check rows

let test_success_rate () =
  let cells =
    Experiments.Success_rate.run ~hosts:4 ~services:10
      ~slacks:[ 0.05; 0.5 ] ~covs:[ 0.5 ] ~reps:2 ()
  in
  Alcotest.(check int) "4 algos x 2 slacks" 8 (List.length cells);
  List.iter
    (fun (c : Experiments.Success_rate.cell) ->
      Alcotest.(check bool) "solved <= total" true (c.solved <= c.total))
    cells;
  (* Harder slack never has a strictly better rate for the same algorithm
     at this corpus size. *)
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Success_rate.report cells) > 0)

let test_cov_family () =
  let cells =
    Experiments.Families.cov_family ~slacks:[ 0.5 ] ~covs:[ 0.5 ] ~reps:1
      tiny_scale
  in
  Alcotest.(check int) "two contenders x one cell" 2 (List.length cells);
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Families.report_cov_family cells) > 0)

let test_error_family () =
  let cells =
    Experiments.Families.error_family ~slacks:[ 0.5 ] ~covs:[ 0.5 ]
      ~max_errors:[ 0.; 0.2 ] ~reps:1 tiny_scale
  in
  Alcotest.(check int) "two error levels" 2 (List.length cells);
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Families.report_error_family cells) > 0)

let test_scale_presets () =
  Alcotest.(check string) "small" "small" Experiments.Scale.small.label;
  Alcotest.(check string) "medium" "medium" Experiments.Scale.medium.label;
  Alcotest.(check string) "paper" "paper" Experiments.Scale.paper.label;
  Alcotest.(check int) "paper uses 64 hosts" 64
    Experiments.Scale.paper.table1_hosts;
  Alcotest.(check (list int)) "paper service counts" [ 100; 250; 500 ]
    Experiments.Scale.paper.table1_services

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("corpus deterministic", test_corpus_deterministic);
      ("corpus reps vary", test_corpus_rep_variation);
      ("sweep size", test_sweep_size);
      ("table1 runs", test_table1_runs);
      ("fig-cov runs", test_fig_cov_runs);
      ("fig-cov variant", test_fig_cov_homogeneous_variant);
      ("fig-error runs", test_fig_error_runs);
      ("error eval with perfect estimates", test_error_eval_perfect_estimates);
      ("theorem check rows", test_theorem_check_rows);
      ("light comparison runs", test_light_runs);
      ("ablation window", test_ablation_window);
      ("ablation PP implementations agree", test_ablation_pp_impl);
      ("ablation tolerance monotone", test_ablation_tolerance);
      ("success rate", test_success_rate);
      ("cov family", test_cov_family);
      ("error family", test_error_family);
      ("scale presets", test_scale_presets);
    ]
