(* Tests for the online-hosting extension: event queue, adaptive threshold
   controller, and the discrete-event engine. *)

let check_float = Alcotest.(check (float 1e-9))

(* Event queue. *)

let test_queue_ordering () =
  let q = Simulator.Event_queue.create () in
  Simulator.Event_queue.add q ~time:3. "c";
  Simulator.Event_queue.add q ~time:1. "a";
  Simulator.Event_queue.add q ~time:2. "b";
  let pop () =
    match Simulator.Event_queue.pop_min q with
    | Some (_, x) -> x
    | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Simulator.Event_queue.is_empty q)

let test_queue_tie_break_fifo () =
  let q = Simulator.Event_queue.create () in
  Simulator.Event_queue.add q ~time:1. "first";
  Simulator.Event_queue.add q ~time:1. "second";
  (match Simulator.Event_queue.pop_min q with
  | Some (_, x) -> Alcotest.(check string) "insertion order" "first" x
  | None -> Alcotest.fail "empty");
  match Simulator.Event_queue.pop_min q with
  | Some (_, x) -> Alcotest.(check string) "then second" "second" x
  | None -> Alcotest.fail "empty"

let prop_queue_sorts =
  QCheck2.Test.make ~name:"event queue pops in time order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_bound_inclusive 1000.))
    (fun times ->
      let q = Simulator.Event_queue.create () in
      List.iteri (fun i t -> Simulator.Event_queue.add q ~time:t i) times;
      let rec drain acc =
        match Simulator.Event_queue.pop_min q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort Float.compare times)

(* Adaptive threshold. *)

let test_adaptive_initial () =
  let c = Sharing.Adaptive_threshold.create ~initial:0.2 () in
  check_float "initial" 0.2 (Sharing.Adaptive_threshold.threshold c);
  Alcotest.(check int) "no observations" 0
    (Sharing.Adaptive_threshold.observations c)

let test_adaptive_tracks_error () =
  let c = Sharing.Adaptive_threshold.create ~quantile:100. () in
  Sharing.Adaptive_threshold.observe c
    ~estimated:[| 0.5; 0.3; 0.2 |]
    ~actual:[| 0.45; 0.32; 0.2 |];
  (* Gaps: 0.05, 0.02, 0.0 -> max = 0.05. *)
  check_float "max gap" 0.05 (Sharing.Adaptive_threshold.threshold c);
  Alcotest.(check int) "three observations" 3
    (Sharing.Adaptive_threshold.observations c)

let test_adaptive_clamped () =
  let c =
    Sharing.Adaptive_threshold.create ~quantile:100. ~max_threshold:0.1 ()
  in
  Sharing.Adaptive_threshold.observe c ~estimated:[| 1.0 |] ~actual:[| 0.0 |];
  check_float "clamped" 0.1 (Sharing.Adaptive_threshold.threshold c)

let test_adaptive_window_forgets () =
  let c = Sharing.Adaptive_threshold.create ~quantile:100. ~window:2 () in
  Sharing.Adaptive_threshold.observe c ~estimated:[| 0.5 |] ~actual:[| 0.0 |];
  check_float "big gap" 0.5 (Sharing.Adaptive_threshold.threshold c);
  (* Two small observations push the 0.5 out of the window. *)
  Sharing.Adaptive_threshold.observe c
    ~estimated:[| 0.1; 0.1 |]
    ~actual:[| 0.09; 0.08 |];
  Alcotest.(check bool) "forgot the spike" true
    (Sharing.Adaptive_threshold.threshold c < 0.05)

let test_adaptive_validation () =
  Alcotest.check_raises "quantile"
    (Invalid_argument "Adaptive_threshold.create: quantile out of [0, 100]")
    (fun () ->
      ignore (Sharing.Adaptive_threshold.create ~quantile:150. ()));
  let c = Sharing.Adaptive_threshold.create () in
  Alcotest.check_raises "length"
    (Invalid_argument "Adaptive_threshold.observe: length mismatch")
    (fun () ->
      Sharing.Adaptive_threshold.observe c ~estimated:[| 1. |] ~actual:[||])

(* Engine. *)

let platform =
  Array.init 4 (fun id -> Model.Node.make_cores ~id ~cores:4 ~cpu:0.6 ~mem:0.6)

let quick_config =
  {
    Simulator.Engine.default_config with
    horizon = 40.;
    arrival_rate = 0.5;
    mean_lifetime = 15.;
    reallocation_period = 8.;
  }

let test_engine_runs () =
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:1) quick_config ~platform
  in
  Alcotest.(check bool) "arrivals happened" true (stats.arrivals > 0);
  Alcotest.(check int) "admissions + rejections = arrivals" stats.arrivals
    (stats.admitted + stats.rejected);
  Alcotest.(check int) "reallocation count" 5 stats.reallocations;
  Alcotest.(check bool) "yield in range" true
    (stats.mean_min_yield >= 0. && stats.mean_min_yield <= 1. +. 1e-9);
  Alcotest.(check bool) "samples chronological" true
    (let rec sorted = function
       | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && sorted rest
       | _ -> true
     in
     sorted stats.yield_samples)

let test_engine_deterministic () =
  let run () =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:5) quick_config ~platform
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same arrivals" a.arrivals b.arrivals;
  Alcotest.(check int) "same migrations" a.migrations b.migrations;
  check_float "same yield" a.mean_min_yield b.mean_min_yield

let test_engine_perfect_estimates_beat_caps_with_error () =
  (* With zero error all policies coincide on yields at reallocation
     points; with error, caps must not beat weights on average. *)
  let with_policy policy max_error =
    (Simulator.Engine.run
       ~rng:(Prng.Rng.create ~seed:7)
       { quick_config with policy; max_error; horizon = 60. }
       ~platform)
      .mean_min_yield
  in
  let weights = with_policy Sharing.Policy.Alloc_weights 0.15 in
  let caps = with_policy Sharing.Policy.Alloc_caps 0.15 in
  Alcotest.(check bool)
    (Printf.sprintf "weights %.3f >= caps %.3f" weights caps)
    true (weights >= caps -. 1e-9)

let test_engine_rejects_when_full () =
  let tiny =
    [| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.6 ~mem:0.05 |]
  in
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:3)
      { quick_config with horizon = 60.; arrival_rate = 1. }
      ~platform:tiny
  in
  Alcotest.(check bool) "some rejections" true (stats.rejected > 0)

let test_engine_adaptive_threshold_moves () =
  let controller = Sharing.Adaptive_threshold.create ~quantile:90. () in
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:11)
      {
        quick_config with
        horizon = 80.;
        max_error = 0.1;
        threshold = Simulator.Engine.Adaptive controller;
      }
      ~platform
  in
  Alcotest.(check bool) "threshold moved off zero" true
    (stats.final_threshold > 0.);
  Alcotest.(check bool) "threshold below clamp" true
    (stats.final_threshold <= 0.5)

let test_engine_validation () =
  Alcotest.check_raises "horizon" (Invalid_argument "Engine.run: horizon")
    (fun () ->
      ignore
        (Simulator.Engine.run
           { quick_config with horizon = 0. }
           ~platform))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("event queue ordering", test_queue_ordering);
      ("event queue FIFO ties", test_queue_tie_break_fifo);
      ("adaptive initial", test_adaptive_initial);
      ("adaptive tracks error", test_adaptive_tracks_error);
      ("adaptive clamped", test_adaptive_clamped);
      ("adaptive window forgets", test_adaptive_window_forgets);
      ("adaptive validation", test_adaptive_validation);
      ("engine runs", test_engine_runs);
      ("engine deterministic", test_engine_deterministic);
      ("weights >= caps under error", test_engine_perfect_estimates_beat_caps_with_error);
      ("engine rejects when full", test_engine_rejects_when_full);
      ("adaptive threshold moves", test_engine_adaptive_threshold_moves);
      ("engine validation", test_engine_validation);
    ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_queue_sorts ]
