(* Tests for the workload substrate: PRNG, Google-trace model, instance
   generator, and error perturbation. *)

let check_float = Alcotest.(check (float 1e-9))

(* PRNG. *)

let test_rng_deterministic () =
  let a = Prng.Rng.create ~seed:7 and b = Prng.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_float "same stream" (Prng.Rng.uniform a) (Prng.Rng.uniform b)
  done

let test_rng_copy_independent () =
  let a = Prng.Rng.create ~seed:7 in
  let _ = Prng.Rng.uniform a in
  let b = Prng.Rng.copy a in
  check_float "copy continues identically" (Prng.Rng.uniform a)
    (Prng.Rng.uniform b)

let test_rng_split_differs () =
  let a = Prng.Rng.create ~seed:7 in
  let b = Prng.Rng.split a in
  let xa = Prng.Rng.uniform a and xb = Prng.Rng.uniform b in
  Alcotest.(check bool) "streams diverge" true (xa <> xb)

let test_rng_uniform_range () =
  let rng = Prng.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.Rng.uniform_range rng (-2.) 5. in
    Alcotest.(check bool) "in range" true (x >= -2. && x < 5.)
  done

let test_rng_int_range () =
  let rng = Prng.Rng.create ~seed:3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let k = Prng.Rng.int rng 5 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 5);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_gaussian_moments () =
  let rng = Prng.Rng.create ~seed:11 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Prng.Rng.gaussian rng) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int n
  in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance ~ 1" true (Float.abs (var -. 1.) < 0.1)

let test_truncated_normal_bounds () =
  let rng = Prng.Rng.create ~seed:5 in
  for _ = 1 to 2000 do
    let x =
      Prng.Rng.truncated_normal rng ~mean:0.5 ~stddev:0.5 ~lo:0.001 ~hi:1.0
    in
    Alcotest.(check bool) "within bounds" true (x >= 0.001 && x <= 1.0)
  done

let test_choose_weighted () =
  let rng = Prng.Rng.create ~seed:9 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Prng.Rng.choose_weighted rng [| 0.7; 0.0; 0.3 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  Alcotest.(check bool) "roughly proportional" true
    (counts.(0) > counts.(2));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.choose_weighted: all weights zero") (fun () ->
      ignore (Prng.Rng.choose_weighted rng [| 0.; 0. |]))

(* Google trace model. *)

let test_core_distribution_normalized () =
  let total =
    Array.fold_left (fun acc (_, p) -> acc +. p) 0.
      Workload.Google_trace.core_distribution
  in
  check_float "probabilities sum to 1" 1.0 total

let test_trace_samples_in_range () =
  let rng = Prng.Rng.create ~seed:1 in
  for _ = 1 to 2000 do
    let t = Workload.Google_trace.sample rng in
    Alcotest.(check bool) "cores in 1..4" true
      (t.Workload.Google_trace.cores >= 1
       && t.cores <= Workload.Google_trace.max_cores);
    Alcotest.(check bool) "memory fraction in (0, 0.5]" true
      (t.memory_fraction > 0. && t.memory_fraction <= 0.5)
  done

let test_trace_mostly_single_core () =
  let rng = Prng.Rng.create ~seed:2 in
  let single = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    if Workload.Google_trace.sample_cores rng = 1 then incr single
  done;
  Alcotest.(check bool) "majority single-core" true
    (float_of_int !single /. float_of_int n > 0.6)

(* Generator. *)

let config ?(hosts = 16) ?(services = 40) ?(cov = 0.5) ?(slack = 0.4)
    ?(cpu_homogeneous = false) ?(mem_homogeneous = false) () =
  {
    Workload.Generator.hosts;
    services;
    cov;
    slack;
    cpu_homogeneous;
    mem_homogeneous;
  }

let test_generator_validation () =
  Alcotest.check_raises "bad slack"
    (Invalid_argument "Generator: slack must be in (0, 1)") (fun () ->
      ignore (Workload.Generator.generate (config ~slack:1.0 ())))

let test_generator_sizes () =
  let inst = Workload.Generator.generate (config ()) in
  Alcotest.(check int) "hosts" 16 (Model.Instance.n_nodes inst);
  Alcotest.(check int) "services" 40 (Model.Instance.n_services inst)

let test_cpu_needs_normalized () =
  (* Sum of aggregate CPU needs = total CPU capacity (paper §4). *)
  let inst = Workload.Generator.generate (config ()) in
  let total_cpu = Vec.Vector.get (Model.Instance.total_capacity inst) 0 in
  let total_need = Vec.Vector.get (Model.Instance.total_need inst) 0 in
  Alcotest.(check (float 1e-6)) "needs = capacity" total_cpu total_need

let test_memory_slack_respected () =
  List.iter
    (fun slack ->
      let inst = Workload.Generator.generate (config ~slack ()) in
      let total_mem = Vec.Vector.get (Model.Instance.total_capacity inst) 1 in
      let total_req =
        Vec.Vector.get (Model.Instance.total_requirement inst) 1
      in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "slack %.1f" slack)
        ((1. -. slack) *. total_mem)
        total_req)
    [ 0.1; 0.4; 0.9 ]

let test_homogeneous_flags () =
  let inst =
    Workload.Generator.generate ~rng:(Prng.Rng.create ~seed:3)
      (config ~cov:1.0 ~cpu_homogeneous:true ())
  in
  let cpu h =
    Vec.Vector.get
      (Model.Instance.node inst h).Model.Node.capacity.Vec.Epair.aggregate 0
  in
  for h = 0 to Model.Instance.n_nodes inst - 1 do
    check_float "cpu pinned at 0.5" 0.5 (cpu h)
  done;
  (* Memory should vary at cov = 1. *)
  let mem h =
    Vec.Vector.get
      (Model.Instance.node inst h).Model.Node.capacity.Vec.Epair.aggregate 1
  in
  let distinct = ref false in
  for h = 1 to Model.Instance.n_nodes inst - 1 do
    if mem h <> mem 0 then distinct := true
  done;
  Alcotest.(check bool) "memory heterogeneous" true !distinct

let test_cov_zero_fully_homogeneous () =
  let inst = Workload.Generator.generate (config ~cov:0.0 ()) in
  for h = 0 to Model.Instance.n_nodes inst - 1 do
    let node = Model.Instance.node inst h in
    check_float "cpu" 0.5
      (Vec.Vector.get node.Model.Node.capacity.Vec.Epair.aggregate 0);
    check_float "mem" 0.5
      (Vec.Vector.get node.Model.Node.capacity.Vec.Epair.aggregate 1)
  done

let test_quad_core_elementary () =
  let inst = Workload.Generator.generate (config ()) in
  let node = Model.Instance.node inst 0 in
  check_float "elementary = aggregate / 4"
    (Vec.Vector.get node.Model.Node.capacity.Vec.Epair.aggregate 0 /. 4.)
    (Vec.Vector.get node.Model.Node.capacity.Vec.Epair.elementary 0)

let test_elementary_need_is_per_core () =
  (* n_e = n_a / cores: the per-core reference value is common to all
     services. *)
  let inst = Workload.Generator.generate (config ()) in
  let references =
    List.init (Model.Instance.n_services inst) (fun j ->
        let s = Model.Instance.service inst j in
        Vec.Vector.get s.Model.Service.need.Vec.Epair.elementary 0)
  in
  match references with
  | [] -> Alcotest.fail "no services"
  | r :: rest ->
      List.iter (fun r' -> check_float "same reference" r r') rest

let test_generator_deterministic () =
  let a = Workload.Generator.generate ~rng:(Prng.Rng.create ~seed:4) (config ()) in
  let b = Workload.Generator.generate ~rng:(Prng.Rng.create ~seed:4) (config ()) in
  for j = 0 to Model.Instance.n_services a - 1 do
    Alcotest.(check bool) "same services" true
      (Model.Service.equal (Model.Instance.service a j)
         (Model.Instance.service b j))
  done

(* Errors. *)

let test_perturb_zero_error_identity () =
  let inst = Workload.Generator.generate (config ()) in
  let rng = Prng.Rng.create ~seed:0 in
  let p = Workload.Errors.perturb ~rng ~max_error:0. inst in
  for j = 0 to Model.Instance.n_services inst - 1 do
    Alcotest.(check bool) "unchanged" true
      (Model.Service.equal (Model.Instance.service inst j)
         (Model.Instance.service p j))
  done

let test_perturb_bounds () =
  let inst = Workload.Generator.generate (config ()) in
  let rng = Prng.Rng.create ~seed:1 in
  let max_error = 0.1 in
  let p = Workload.Errors.perturb ~rng ~max_error inst in
  let orig = Workload.Errors.true_cpu_needs inst in
  let pert = Workload.Errors.true_cpu_needs p in
  Array.iteri
    (fun j x ->
      Alcotest.(check bool) "within error band or clamped" true
        (Float.abs (x -. orig.(j)) <= max_error +. 1e-9 || x = 0.001);
      Alcotest.(check bool) "above floor" true (x >= 0.001))
    pert

let test_perturb_preserves_elementary_proportion () =
  let inst = Workload.Generator.generate (config ()) in
  let rng = Prng.Rng.create ~seed:2 in
  let p = Workload.Errors.perturb ~rng ~max_error:0.2 inst in
  for j = 0 to Model.Instance.n_services inst - 1 do
    let s = Model.Instance.service inst j
    and s' = Model.Instance.service p j in
    let ratio (x : Model.Service.t) =
      let open Vec in
      let e = Vector.get x.need.Epair.elementary 0
      and a = Vector.get x.need.Epair.aggregate 0 in
      if a = 0. then 0. else e /. a
    in
    Alcotest.(check (float 1e-9)) "elem/agg ratio preserved" (ratio s)
      (ratio s')
  done

let test_perturb_only_touches_cpu () =
  let inst = Workload.Generator.generate (config ()) in
  let rng = Prng.Rng.create ~seed:3 in
  let p = Workload.Errors.perturb ~rng ~max_error:0.3 inst in
  for j = 0 to Model.Instance.n_services inst - 1 do
    let s = Model.Instance.service inst j
    and s' = Model.Instance.service p j in
    Alcotest.(check bool) "requirements unchanged" true
      (Vec.Epair.equal s.Model.Service.requirement s'.Model.Service.requirement);
    check_float "memory need unchanged"
      (Vec.Vector.get s.Model.Service.need.Vec.Epair.aggregate 1)
      (Vec.Vector.get s'.Model.Service.need.Vec.Epair.aggregate 1)
  done

let test_threshold () =
  let inst = Workload.Generator.generate (config ~services:60 ()) in
  let t = Workload.Errors.apply_threshold ~threshold:0.2 inst in
  let needs = Workload.Errors.true_cpu_needs t in
  Array.iter
    (fun x -> Alcotest.(check bool) "at least threshold" true (x >= 0.2))
    needs;
  (* Needs already above threshold stay put. *)
  let orig = Workload.Errors.true_cpu_needs inst in
  Array.iteri
    (fun j x -> if orig.(j) >= 0.2 then check_float "untouched" orig.(j) x)
    needs

(* N-dimensional generator. *)

let nd_config ?(hosts = 6) ?(services = 18) ?(cov = 0.5)
    ?(resources = Workload.Generator_nd.default_resources) () =
  { Workload.Generator_nd.hosts; services; cov; resources }

let test_nd_dims () =
  let inst = Workload.Generator_nd.generate (nd_config ()) in
  let node = Model.Instance.node inst 0 in
  Alcotest.(check int) "4 dimensions" 4
    (Vec.Epair.dim node.Model.Node.capacity)

let test_nd_utilization_targets () =
  let inst = Workload.Generator_nd.generate (nd_config ()) in
  let total = Model.Instance.total_capacity inst in
  let needs = Model.Instance.total_need inst in
  let reqs = Model.Instance.total_requirement inst in
  let resources = Workload.Generator_nd.default_resources in
  Array.iteri
    (fun d (r : Workload.Generator_nd.resource) ->
      let demand =
        if r.fluid then Vec.Vector.get needs d else Vec.Vector.get reqs d
      in
      Alcotest.(check (float 1e-6))
        (r.name ^ " utilization")
        (r.utilization *. Vec.Vector.get total d)
        demand)
    resources

let test_nd_fluid_rigid_split () =
  let inst = Workload.Generator_nd.generate (nd_config ()) in
  let needs = Model.Instance.total_need inst in
  let reqs = Model.Instance.total_requirement inst in
  (* cpu (0) and network (2) are fluid; memory (1) and disk (3) rigid. *)
  Alcotest.(check (float 1e-12)) "cpu has no requirement" 0.
    (Vec.Vector.get reqs 0);
  Alcotest.(check (float 1e-12)) "memory has no need" 0.
    (Vec.Vector.get needs 1);
  Alcotest.(check bool) "network need positive" true
    (Vec.Vector.get needs 2 > 0.);
  Alcotest.(check bool) "disk requirement positive" true
    (Vec.Vector.get reqs 3 > 0.)

let test_nd_poolable_elementary () =
  let inst = Workload.Generator_nd.generate (nd_config ()) in
  for h = 0 to Model.Instance.n_nodes inst - 1 do
    let cap = (Model.Instance.node inst h).Model.Node.capacity in
    (* memory (poolable): elementary = aggregate; cpu (4 elements):
       elementary = aggregate / 4. *)
    check_float "memory poolable"
      (Vec.Vector.get cap.Vec.Epair.aggregate 1)
      (Vec.Vector.get cap.Vec.Epair.elementary 1);
    check_float "cpu quarters"
      (Vec.Vector.get cap.Vec.Epair.aggregate 0 /. 4.)
      (Vec.Vector.get cap.Vec.Epair.elementary 0)
  done

let test_nd_solvable () =
  (* METAHVPLIGHT must handle 4-D instances end to end. *)
  let inst =
    Workload.Generator_nd.generate
      ~rng:(Prng.Rng.create ~seed:8)
      (nd_config ~hosts:6 ~services:18 ())
  in
  match Heuristics.Algorithms.metahvplight.solve inst with
  | Some sol -> (
      match Model.Placement.water_fill inst sol.placement with
      | Some alloc ->
          Alcotest.(check bool) "valid 4-D allocation" true
            (Model.Placement.check_constraints inst alloc = Ok ())
      | None -> Alcotest.fail "placement infeasible")
  | None -> Alcotest.fail "4-D instance should be solvable"

let test_nd_validation () =
  Alcotest.check_raises "empty resources"
    (Invalid_argument "Generator_nd: no resources") (fun () ->
      ignore
        (Workload.Generator_nd.generate (nd_config ~resources:[||] ())))

(* Property: slack scaling and CPU normalization hold for arbitrary
   configurations. *)

let prop_generator_invariants =
  QCheck2.Test.make ~name:"generator invariants (any config)" ~count:100
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* hosts = int_range 1 32 in
      let* services = int_range 1 64 in
      let* cov10 = int_range 0 10 in
      let* slack100 = int_range 5 95 in
      pure (seed, hosts, services, float_of_int cov10 /. 10.,
            float_of_int slack100 /. 100.))
    (fun (seed, hosts, services, cov, slack) ->
      let inst =
        Workload.Generator.generate
          ~rng:(Prng.Rng.create ~seed)
          (config ~hosts ~services ~cov ~slack ())
      in
      let total = Model.Instance.total_capacity inst in
      let needs = Model.Instance.total_need inst in
      let reqs = Model.Instance.total_requirement inst in
      Float.abs (Vec.Vector.get needs 0 -. Vec.Vector.get total 0) <= 1e-6
      && Float.abs
           (Vec.Vector.get reqs 1 -. ((1. -. slack) *. Vec.Vector.get total 1))
         <= 1e-6)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("rng deterministic", test_rng_deterministic);
      ("rng copy", test_rng_copy_independent);
      ("rng split", test_rng_split_differs);
      ("rng uniform range", test_rng_uniform_range);
      ("rng int range", test_rng_int_range);
      ("rng gaussian moments", test_rng_gaussian_moments);
      ("truncated normal bounds", test_truncated_normal_bounds);
      ("choose weighted", test_choose_weighted);
      ("trace distribution normalized", test_core_distribution_normalized);
      ("trace samples in range", test_trace_samples_in_range);
      ("trace mostly single-core", test_trace_mostly_single_core);
      ("generator validation", test_generator_validation);
      ("generator sizes", test_generator_sizes);
      ("CPU needs normalized to capacity", test_cpu_needs_normalized);
      ("memory slack respected", test_memory_slack_respected);
      ("homogeneous flags", test_homogeneous_flags);
      ("cov 0 fully homogeneous", test_cov_zero_fully_homogeneous);
      ("quad-core elementary", test_quad_core_elementary);
      ("common per-core reference need", test_elementary_need_is_per_core);
      ("generator deterministic", test_generator_deterministic);
      ("perturb zero error", test_perturb_zero_error_identity);
      ("perturb bounds + floor", test_perturb_bounds);
      ("perturb keeps elem/agg ratio", test_perturb_preserves_elementary_proportion);
      ("perturb only touches CPU needs", test_perturb_only_touches_cpu);
      ("threshold mitigation", test_threshold);
      ("nd generator dims", test_nd_dims);
      ("nd utilization targets", test_nd_utilization_targets);
      ("nd fluid/rigid split", test_nd_fluid_rigid_split);
      ("nd poolable elementary", test_nd_poolable_elementary);
      ("nd 4-D instances solvable", test_nd_solvable);
      ("nd validation", test_nd_validation);
    ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_generator_invariants ]
