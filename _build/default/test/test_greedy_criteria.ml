(* Focused semantics tests for the greedy node-selection criteria P1-P7 on
   hand-crafted platforms where each criterion's choice is unambiguous. *)

let node id ~cpu ~mem = Model.Node.make_cores ~id ~cores:4 ~cpu ~mem

(* A service with memory requirement and CPU need; memory is its largest
   requirement dimension, CPU its largest need dimension. *)
let svc ?(mem = 0.1) ?(cpu = 0.2) id =
  Model.Service.make_2d ~id ~mem_req:mem ~cpu_need:(cpu /. 4., cpu) ()

let place_first sort place nodes services =
  let inst =
    Model.Instance.v ~nodes:(Array.of_list nodes)
      ~services:(Array.of_list services)
  in
  match Heuristics.Greedy.place sort place inst with
  | Some placement -> placement.(0)
  | None -> Alcotest.fail "greedy should place"

let test_p1_most_available_in_need_dimension () =
  (* Max need dim is CPU: node 1 has more CPU. *)
  let nodes = [ node 0 ~cpu:0.4 ~mem:1.0; node 1 ~cpu:0.9 ~mem:0.3 ] in
  Alcotest.(check int) "picks the CPU-rich node" 1
    (place_first Heuristics.Greedy.S1 Heuristics.Greedy.P1 nodes [ svc 0 ])

let test_p3_best_fit_in_requirement_dimension () =
  (* Largest requirement dim is memory: best fit = least remaining memory
     after placement. *)
  let nodes = [ node 0 ~cpu:0.5 ~mem:1.0; node 1 ~cpu:0.5 ~mem:0.2 ] in
  Alcotest.(check int) "picks the tighter memory node" 1
    (place_first Heuristics.Greedy.S1 Heuristics.Greedy.P3 nodes [ svc 0 ])

let test_p5_worst_fit_in_requirement_dimension () =
  let nodes = [ node 0 ~cpu:0.5 ~mem:1.0; node 1 ~cpu:0.5 ~mem:0.2 ] in
  Alcotest.(check int) "picks the roomier memory node" 0
    (place_first Heuristics.Greedy.S1 Heuristics.Greedy.P5 nodes [ svc 0 ])

let test_p4_least_aggregate_available () =
  let nodes = [ node 0 ~cpu:0.9 ~mem:0.9; node 1 ~cpu:0.3 ~mem:0.3 ] in
  Alcotest.(check int) "picks the smaller node" 1
    (place_first Heuristics.Greedy.S1 Heuristics.Greedy.P4 nodes [ svc 0 ])

let test_p6_most_total_available () =
  let nodes = [ node 0 ~cpu:0.9 ~mem:0.9; node 1 ~cpu:0.3 ~mem:0.3 ] in
  Alcotest.(check int) "picks the bigger node" 0
    (place_first Heuristics.Greedy.S1 Heuristics.Greedy.P6 nodes [ svc 0 ])

let test_p7_first_fit () =
  let nodes = [ node 0 ~cpu:0.3 ~mem:0.05; node 1 ~cpu:0.3 ~mem:1.0 ] in
  (* Node 0 cannot satisfy the 0.1 memory requirement; P7 takes the first
     feasible node. *)
  Alcotest.(check int) "first feasible" 1
    (place_first Heuristics.Greedy.S1 Heuristics.Greedy.P7 nodes [ svc 0 ])

let test_p2_ratio_accounts_for_virtual_load () =
  (* Equal capacities; node 0 already carries a committed service's virtual
     load, so P2's after-placement ratio favours node 1. *)
  let nodes = [ node 0 ~cpu:1.0 ~mem:1.0; node 1 ~cpu:1.0 ~mem:1.0 ] in
  let services = [ svc ~cpu:0.8 0; svc 1 ] in
  let inst =
    Model.Instance.v ~nodes:(Array.of_list nodes)
      ~services:(Array.of_list services)
  in
  match Heuristics.Greedy.place Heuristics.Greedy.S1 Heuristics.Greedy.P2 inst
  with
  | Some placement ->
      Alcotest.(check bool) "spread across nodes" true
        (placement.(0) <> placement.(1))
  | None -> Alcotest.fail "should place"

let test_sort_strategies_order () =
  (* S3 sorts by total need descending: the hungry service is placed first
     and P7 puts it on node 0. *)
  let nodes = [ node 0 ~cpu:1.0 ~mem:1.0 ] in
  let hungry = svc ~cpu:0.9 0 and modest = svc ~cpu:0.1 1 in
  let inst =
    Model.Instance.v ~nodes:(Array.of_list nodes)
      ~services:[| hungry; modest |]
  in
  (* Both fit; this mostly checks the sort doesn't crash and respects
     yields downstream. *)
  match Heuristics.Greedy.solve Heuristics.Greedy.S3 Heuristics.Greedy.P7 inst
  with
  | Some sol ->
      Alcotest.(check bool) "yield positive" true (sol.min_yield > 0.)
  | None -> Alcotest.fail "should place"

let test_tie_breaks_to_lowest_node () =
  let nodes = [ node 0 ~cpu:0.5 ~mem:0.5; node 1 ~cpu:0.5 ~mem:0.5 ] in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Heuristics.Greedy.place_name p ^ " ties to node 0")
        0
        (place_first Heuristics.Greedy.S1 p nodes [ svc 0 ]))
    [ Heuristics.Greedy.P1; P2; P3; P4; P5; P6; P7 ]

(* Naive PP with the heterogeneous (remaining-capacity) ranking must also
   match the fast implementation. *)
let test_naive_pp_hvp_ranking () =
  let rng = Prng.Rng.create ~seed:99 in
  for _ = 1 to 25 do
    let dims = 2 + Prng.Rng.int rng 3 in
    let mk id lo hi =
      let v =
        Vec.Vector.init dims (fun _ -> Prng.Rng.uniform_range rng lo hi)
      in
      (id, Vec.Epair.uniform v)
    in
    let capacities = Array.init 5 (fun id -> mk id 0.4 1.0) in
    let bins () =
      Array.map
        (fun (id, capacity) -> Packing.Bin.v ~id ~capacity)
        capacities
    in
    let items =
      Array.init 15 (fun id ->
          let id, demand = mk id 0.01 0.35 in
          Packing.Item.v ~id ~demand)
    in
    let bins_a = bins () and bins_b = bins () in
    let ok_a =
      Packing.Permutation_pack.pack
        ~ranking:Packing.Permutation_pack.By_remaining_capacity ~bins:bins_a
        ~items ()
    in
    let ok_b =
      Packing.Naive_permutation_pack.pack
        ~ranking:Packing.Permutation_pack.By_remaining_capacity ~bins:bins_b
        ~items ()
    in
    Alcotest.(check bool) "same success" ok_a ok_b;
    Alcotest.(check (array int)) "same assignment"
      (Packing.Strategy.assignment ~bins:bins_a ~n_items:15)
      (Packing.Strategy.assignment ~bins:bins_b ~n_items:15)
  done

let test_strategy_ranking_smoke () =
  let rows =
    Experiments.Strategy_ranking.run ~hosts:3 ~services:6 ~covs:[ 0.5 ]
      ~slacks:[ 0.5 ] ~reps:1 ()
  in
  Alcotest.(check int) "253 strategies ranked" 253 (List.length rows);
  (* Sorted by success desc then yield desc. *)
  let rec sorted = function
    | (a : Experiments.Strategy_ranking.row) :: (b :: _ as rest) ->
        (a.successes > b.successes
        || (a.successes = b.successes && a.mean_yield >= b.mean_yield))
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ranking order" true (sorted rows);
  Alcotest.(check bool) "report renders" true
    (String.length (Experiments.Strategy_ranking.report ~top:5 rows) > 0)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("P1 most available in need dim", test_p1_most_available_in_need_dimension);
      ("P2 load ratio spreads", test_p2_ratio_accounts_for_virtual_load);
      ("P3 best fit in requirement dim", test_p3_best_fit_in_requirement_dimension);
      ("P4 least aggregate available", test_p4_least_aggregate_available);
      ("P5 worst fit in requirement dim", test_p5_worst_fit_in_requirement_dimension);
      ("P6 most total available", test_p6_most_total_available);
      ("P7 first fit", test_p7_first_fit);
      ("S3 sorting", test_sort_strategies_order);
      ("ties to lowest node", test_tie_breaks_to_lowest_node);
      ("naive PP matches fast (HVP ranking)", test_naive_pp_hvp_ranking);
      ("strategy ranking smoke", test_strategy_ranking_smoke);
    ]
