test/test_epair.ml: Alcotest Array Epair Fun List Metric Vec Vector
