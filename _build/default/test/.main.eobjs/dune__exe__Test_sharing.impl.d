test/test_sharing.ml: Alcotest Array Float List Model Printf QCheck2 QCheck_alcotest Sharing
