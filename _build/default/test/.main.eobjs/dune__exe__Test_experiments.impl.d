test/test_experiments.ml: Alcotest Array Experiments Heuristics List Model Printf Sharing String
