test/test_vector.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Vec Vector
