test/test_workload.ml: Alcotest Array Epair Float Fun Heuristics List Model Printf Prng QCheck2 QCheck_alcotest Vec Vector Workload
