test/test_codec.ml: Alcotest Filename Fun List Model Printf Prng QCheck2 QCheck_alcotest String Sys Workload
