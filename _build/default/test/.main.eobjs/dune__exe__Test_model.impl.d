test/test_model.ml: Alcotest Array Epair Float List Model Printf Prng QCheck2 QCheck_alcotest String Vec Vector
