test/main.mli:
