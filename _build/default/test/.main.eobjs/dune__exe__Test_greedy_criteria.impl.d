test/test_greedy_criteria.ml: Alcotest Array Experiments Heuristics List Model Packing Prng String Vec
