test/test_simulator.ml: Alcotest Array Float List Model Printf Prng QCheck2 QCheck_alcotest Sharing Simulator
