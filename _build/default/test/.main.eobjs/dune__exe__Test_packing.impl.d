test/test_packing.ml: Alcotest Array Bin Fit Item List Naive_permutation_pack Packing Permutation_pack QCheck2 QCheck_alcotest Strategy Vec
