test/test_heuristics.ml: Alcotest Array Heuristics List Lp Model Packing Printf Prng QCheck2 QCheck_alcotest Vec Workload
