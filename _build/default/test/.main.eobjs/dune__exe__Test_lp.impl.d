test/test_lp.ml: Alcotest Array Float List Lp Prng QCheck2 QCheck_alcotest
