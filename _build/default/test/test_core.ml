(* Smoke tests for the Core facade: the re-exports resolve and the Quick
   API works end to end. *)

let test_facade_reexports () =
  (* Types from the facade unify with the underlying libraries. *)
  let v : Core.Vector.t = Core.Vector.of_list [ 1.; 2. ] in
  Alcotest.(check int) "vector dim" 2 (Vec.Vector.dim v);
  let node = Core.Node.make_cores ~id:0 ~cores:4 ~cpu:1.0 ~mem:1.0 in
  Alcotest.(check int) "node dim" 2 (Model.Node.dim node)

let quick_instance =
  Core.Instance.v
    ~nodes:
      [|
        Core.Node.make_cores ~id:0 ~cores:4 ~cpu:3.2 ~mem:1.0;
        Core.Node.make_cores ~id:1 ~cores:2 ~cpu:2.0 ~mem:0.5;
      |]
    ~services:
      [|
        Core.Service.make_2d ~id:0 ~cpu_req:(0.5, 1.0) ~mem_req:0.5
          ~cpu_need:(0.5, 1.0) ();
      |]

let test_quick_solve () =
  match Core.Quick.solve quick_instance with
  | Some alloc ->
      Alcotest.(check int) "node B" 1 alloc.Core.Placement.placement.(0);
      Alcotest.(check (float 1e-9)) "yield" 1.0 alloc.yields.(0)
  | None -> Alcotest.fail "should solve"

let test_quick_min_yield () =
  match Core.Quick.min_yield quick_instance with
  | Some y -> Alcotest.(check (float 1e-9)) "min yield" 1.0 y
  | None -> Alcotest.fail "should solve"

let test_quick_custom_algorithm () =
  match
    Core.Quick.min_yield ~algorithm:Core.Algorithms.metagreedy quick_instance
  with
  | Some y -> Alcotest.(check bool) "in range" true (y >= 0. && y <= 1.)
  | None -> Alcotest.fail "should solve"

let test_quick_infeasible () =
  let inst =
    Core.Instance.v
      ~nodes:[| Core.Node.make_cores ~id:0 ~cores:4 ~cpu:1.0 ~mem:0.1 |]
      ~services:[| Core.Service.make_2d ~id:0 ~mem_req:0.5 () |]
  in
  Alcotest.(check bool) "infeasible" true (Core.Quick.solve inst = None)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("facade re-exports", test_facade_reexports);
      ("Quick.solve", test_quick_solve);
      ("Quick.min_yield", test_quick_min_yield);
      ("Quick custom algorithm", test_quick_custom_algorithm);
      ("Quick infeasible", test_quick_infeasible);
    ]
