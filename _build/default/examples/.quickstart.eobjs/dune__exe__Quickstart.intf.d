examples/quickstart.mli:
