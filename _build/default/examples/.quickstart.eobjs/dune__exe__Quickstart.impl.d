examples/quickstart.ml: Array Format Heuristics List Model
