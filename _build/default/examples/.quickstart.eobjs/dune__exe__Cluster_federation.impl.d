examples/cluster_federation.ml: Array Heuristics List Model Printf Stats
