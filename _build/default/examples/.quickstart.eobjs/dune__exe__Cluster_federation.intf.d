examples/cluster_federation.mli:
