examples/error_mitigation.ml: Heuristics List Printf Prng Sharing Stats Workload
