examples/capacity_planning.ml: Heuristics List Printf Prng Stats Workload
