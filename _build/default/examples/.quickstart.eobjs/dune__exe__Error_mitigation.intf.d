examples/error_mitigation.mli:
