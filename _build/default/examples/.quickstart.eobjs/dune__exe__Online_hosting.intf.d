examples/online_hosting.mli:
