examples/online_hosting.ml: Array Model Printf Prng Sharing Simulator
