(* Online hosting: the deployment loop sketched in the paper's conclusion.

   Services arrive and depart over time on a heterogeneous platform; the
   resource manager re-runs METAHVPLIGHT periodically and the hypervisors
   share CPU with a work-conserving scheduler. CPU-need estimates carry
   error, and we compare a fixed mitigation threshold against the adaptive
   controller that tracks observed error (paper §8's open problem).

   Run with:  dune exec examples/online_hosting.exe *)

let platform =
  Array.init 10 (fun id ->
      (* Two machine generations. *)
      if id < 6 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
      else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)

let base_config =
  {
    Simulator.Engine.default_config with
    horizon = 200.;
    arrival_rate = 0.8;
    mean_lifetime = 30.;
    reallocation_period = 10.;
    max_error = 0.08;
    per_core_need = 0.1;
    memory_scale = 0.5;
  }

let describe name (config : Simulator.Engine.config) =
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:31) config ~platform
  in
  Printf.printf
    "%-22s mean min-yield %.4f | arrivals %d (rejected %d) | migrations %d \
     | failed reallocs %d | final threshold %.3f\n"
    name stats.mean_min_yield stats.arrivals stats.rejected stats.migrations
    stats.failed_reallocations stats.final_threshold

let () =
  Printf.printf
    "online hosting on %d nodes, %.0f time units, error ±%.2f\n\n"
    (Array.length platform) base_config.horizon base_config.max_error;
  describe "no mitigation"
    { base_config with threshold = Simulator.Engine.Fixed 0. };
  describe "fixed threshold 0.10"
    { base_config with threshold = Simulator.Engine.Fixed 0.10 };
  describe "fixed threshold 0.30"
    { base_config with threshold = Simulator.Engine.Fixed 0.30 };
  describe "adaptive threshold"
    {
      base_config with
      threshold =
        Simulator.Engine.Adaptive
          (Sharing.Adaptive_threshold.create ~quantile:90. ());
    };
  print_newline ();
  describe "equal weights (no estimates used)"
    { base_config with policy = Sharing.Policy.Equal_weights };
  describe "hard caps"
    { base_config with policy = Sharing.Policy.Alloc_caps };
  print_endline
    "\nThe adaptive controller should land near the best fixed threshold\n\
     for this error level without being told the error in advance."
