(* Cluster federation: the heterogeneity scenario from the paper's
   introduction. Three formerly independent clusters — an old 4-core
   generation, a mid-range refresh, and a new high-memory generation — are
   federated into one service-hosting platform. A mixed workload of web
   services and batch workers must be consolidated so that the worst-served
   service runs as fast as possible.

   Run with:  dune exec examples/cluster_federation.exe *)

let make_cluster ~first_id ~count ~cpu ~mem =
  List.init count (fun i ->
      Model.Node.make_cores ~id:(first_id + i) ~cores:4 ~cpu ~mem)

let () =
  (* Three machine classes (production-cycle heterogeneity, paper §1). *)
  let nodes =
    make_cluster ~first_id:0 ~count:6 ~cpu:0.35 ~mem:0.30   (* 2009 racks *)
    @ make_cluster ~first_id:6 ~count:4 ~cpu:0.55 ~mem:0.50 (* 2011 refresh *)
    @ make_cluster ~first_id:10 ~count:2 ~cpu:0.90 ~mem:1.0 (* new big-mem *)
    |> Array.of_list
  in

  (* Workload: latency-sensitive web frontends (single-core, modest
     memory), multi-threaded application servers, and memory-hungry
     caches. *)
  let services =
    let specs =
      List.concat
        [
          List.init 14 (fun _ -> (`Web, 1));
          List.init 6 (fun _ -> (`App, 3));
          List.init 4 (fun _ -> (`Cache, 1));
        ]
    in
    List.mapi
      (fun id (kind, cores) ->
        let per_core = 0.11 in
        let cpu_need = (per_core, per_core *. float_of_int cores) in
        match kind with
        | `Web -> Model.Service.make_2d ~id ~mem_req:0.05 ~cpu_need ()
        | `App -> Model.Service.make_2d ~id ~mem_req:0.12 ~cpu_need ()
        | `Cache -> Model.Service.make_2d ~id ~mem_req:0.45 ~cpu_need ())
      specs
    |> Array.of_list
  in
  let instance = Model.Instance.v ~nodes ~services in
  Printf.printf
    "federated platform: %d nodes in 3 classes, %d services\n\n"
    (Array.length nodes) (Array.length services);

  (* Compare the paper's algorithm families. *)
  let algorithms =
    [
      Heuristics.Algorithms.metagreedy;
      Heuristics.Algorithms.metavp;
      Heuristics.Algorithms.metahvp;
      Heuristics.Algorithms.metahvplight;
      Heuristics.Algorithms.rrnz ~seed:42;
    ]
  in
  let table =
    Stats.Table.create ~headers:[ "algorithm"; "min yield"; "placement" ]
  in
  List.iter
    (fun (algo : Heuristics.Algorithms.t) ->
      match algo.solve instance with
      | None -> Stats.Table.add_row table [ algo.name; "FAIL"; "-" ]
      | Some sol ->
          (* Count services per machine class. *)
          let per_class = Array.make 3 0 in
          Array.iter
            (fun h ->
              let c = if h < 6 then 0 else if h < 10 then 1 else 2 in
              per_class.(c) <- per_class.(c) + 1)
            sol.placement;
          Stats.Table.add_row table
            [
              algo.name;
              Printf.sprintf "%.4f" sol.min_yield;
              Printf.sprintf "old:%d mid:%d new:%d" per_class.(0)
                per_class.(1) per_class.(2);
            ])
    algorithms;
  Stats.Table.print table;

  (* The rational LP relaxation bounds how much any algorithm could
     possibly achieve on this instance. *)
  match Heuristics.Milp.relaxed_bound instance with
  | Some bound -> Printf.printf "\nLP upper bound on the minimum yield: %.4f\n" bound
  | None -> print_endline "\nLP relaxation infeasible"
