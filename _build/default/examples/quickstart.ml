(* Quickstart: the paper's Fig. 1 worked example, end to end.

   Build a two-node heterogeneous platform and one service by hand, ask the
   library for the best placement, and inspect yields and validity.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Node A: 4 cores of 0.8 (aggregate CPU 3.2), 1.0 of memory.
     Node B: 2 faster cores of 1.0 (aggregate 2.0), 0.5 of memory. *)
  let node_a = Model.Node.make_cores ~id:0 ~cores:4 ~cpu:3.2 ~mem:1.0 in
  let node_b = Model.Node.make_cores ~id:1 ~cores:2 ~cpu:2.0 ~mem:0.5 in

  (* One service: two threads that each must saturate half a core
     (elementary CPU requirement 0.5, aggregate 1.0), the same again as
     fluid need, and 0.5 of memory as a rigid requirement. *)
  let service =
    Model.Service.make_2d ~id:0 ~cpu_req:(0.5, 1.0) ~cpu_need:(0.5, 1.0)
      ~mem_req:0.5 ()
  in

  let instance =
    Model.Instance.v ~nodes:[| node_a; node_b |] ~services:[| service |]
  in
  Format.printf "%a@.@." Model.Instance.pp instance;

  (* Per-node analysis, as in Fig. 1. *)
  List.iter
    (fun node ->
      match Model.Yield.max_min_yield node [ service ] with
      | Some y ->
          Format.printf "placing the service on %a gives yield %.2f@."
            Model.Node.pp node y
      | None -> Format.printf "%a cannot host the service@." Model.Node.pp node)
    [ node_a; node_b ];

  (* Let the solver decide. *)
  match Heuristics.Algorithms.metahvplight.solve instance with
  | None -> print_endline "no feasible placement"
  | Some sol ->
      Format.printf "@.METAHVPLIGHT places service 0 on node %d, minimum \
                     yield %.2f@."
        sol.placement.(0) sol.min_yield;
      (* Validate against the paper's MILP constraints (1)-(7) and print
         the operator-facing report. *)
      (match Model.Placement.water_fill instance sol.placement with
      | Some alloc -> (
          (match Model.Placement.check_constraints instance alloc with
          | Ok () -> print_endline "allocation satisfies constraints (1)-(7)\n"
          | Error e -> print_endline ("constraint violation: " ^ e));
          print_string (Model.Report.render instance alloc))
      | None -> print_endline "unexpected: placement infeasible")
