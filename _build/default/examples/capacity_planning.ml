(* Capacity planning: how much can a small platform be consolidated?

   Uses the exact MILP solver as ground truth on a small instance (the kind
   of question a capacity planner asks about one rack), then sweeps the
   memory slack to find the feasibility frontier and the price heuristics
   pay relative to the optimum.

   Run with:  dune exec examples/capacity_planning.exe *)

let build ~slack ~services =
  Workload.Generator.generate
    ~rng:(Prng.Rng.create ~seed:99)
    {
      Workload.Generator.hosts = 3;
      services;
      cov = 0.5;
      slack;
      cpu_homogeneous = false;
      mem_homogeneous = false;
    }

let () =
  print_endline "exact MILP vs heuristics on a 3-node rack, 8 services\n";
  let table =
    Stats.Table.create
      ~headers:
        [ "mem slack"; "MILP optimum"; "LP bound"; "METAHVP"; "METAGREEDY" ]
  in
  List.iter
    (fun slack ->
      let instance = build ~slack ~services:8 in
      let milp =
        match Heuristics.Milp.solve_exact ~node_limit:100_000 instance with
        | Some (Some e) -> Printf.sprintf "%.4f" e.solution.min_yield
        | Some None -> "infeasible"
        | None -> "truncated"
      in
      let bound =
        match Heuristics.Milp.relaxed_bound instance with
        | Some b -> Printf.sprintf "%.4f" b
        | None -> "infeasible"
      in
      let heuristic (algo : Heuristics.Algorithms.t) =
        match algo.solve instance with
        | Some sol -> Printf.sprintf "%.4f" sol.min_yield
        | None -> "fail"
      in
      Stats.Table.add_row table
        [
          Printf.sprintf "%.1f" slack;
          milp;
          bound;
          heuristic Heuristics.Algorithms.metahvp;
          heuristic Heuristics.Algorithms.metagreedy;
        ])
    [ 0.1; 0.2; 0.3; 0.5; 0.7 ];
  Stats.Table.print table;
  print_endline
    "\nLow slack = tight memory packing. Where the MILP itself is\n\
     infeasible no algorithm can place the workload; elsewhere METAHVP\n\
     tracks the optimum closely while METAGREEDY pays a visible gap.\n";

  (* How many services fit at all? Push consolidation until MILP says no. *)
  print_endline "consolidation frontier (slack 0.3):";
  let rec frontier services last_feasible =
    if services > 14 then last_feasible
    else
      let instance = build ~slack:0.3 ~services in
      match Heuristics.Algorithms.metahvp.solve instance with
      | Some sol ->
          Printf.printf "  %2d services: min yield %.4f\n" services
            sol.min_yield;
          frontier (services + 2) services
      | None ->
          Printf.printf "  %2d services: no feasible placement\n" services;
          frontier (services + 2) last_feasible
  in
  let best = frontier 6 0 in
  Printf.printf "largest consolidation solved: %d services\n" best
