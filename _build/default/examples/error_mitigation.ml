(* Error mitigation: planning with noisy CPU-need estimates (paper §6).

   A hosting platform only has rough estimates of how much CPU its services
   will consume. This example plans placements from perturbed estimates,
   executes them against the true needs under the three allocation
   policies, and shows how rounding small estimates up to a minimum
   threshold trades average performance for robustness.

   Run with:  dune exec examples/error_mitigation.exe *)

let () =
  let true_instance =
    Workload.Generator.generate
      ~rng:(Prng.Rng.create ~seed:2024)
      {
        Workload.Generator.hosts = 12;
        services = 36;
        cov = 0.5;
        slack = 0.4;
        cpu_homogeneous = false;
        mem_homogeneous = false;
      }
  in
  let metahvp = Heuristics.Algorithms.metahvp in

  (* Perfect knowledge reference. *)
  let ideal =
    match metahvp.solve true_instance with
    | Some sol -> sol.min_yield
    | None -> failwith "instance should be solvable"
  in
  (* Zero-knowledge floor: spread evenly, share equally. *)
  let zero_knowledge =
    match Sharing.Zero_knowledge.place true_instance with
    | None -> 0.
    | Some placement -> (
        match
          Sharing.Runtime_eval.actual_min_yield Sharing.Policy.Equal_weights
            ~true_instance ~estimated:true_instance placement
        with
        | Some y -> y
        | None -> 0.)
  in
  Printf.printf "ideal (perfect estimates): %.4f\n" ideal;
  Printf.printf "zero-knowledge baseline:   %.4f\n\n" zero_knowledge;

  let table =
    Stats.Table.create
      ~headers:
        [ "max error"; "threshold"; "ALLOCCAPS"; "ALLOCWEIGHTS";
          "EQUALWEIGHTS" ]
  in
  List.iter
    (fun max_error ->
      let estimated_base =
        Workload.Errors.perturb
          ~rng:(Prng.Rng.create ~seed:7)
          ~max_error true_instance
      in
      List.iter
        (fun threshold ->
          let estimated =
            Workload.Errors.apply_threshold ~threshold estimated_base
          in
          match metahvp.solve estimated with
          | None ->
              Stats.Table.add_row table
                [
                  Printf.sprintf "%.2f" max_error;
                  Printf.sprintf "%.2f" threshold;
                  "plan failed"; "plan failed"; "plan failed";
                ]
          | Some sol ->
              let yield policy =
                match
                  Sharing.Runtime_eval.actual_min_yield policy
                    ~true_instance ~estimated sol.placement
                with
                | Some y -> Printf.sprintf "%.4f" y
                | None -> "n/a"
              in
              Stats.Table.add_row table
                [
                  Printf.sprintf "%.2f" max_error;
                  Printf.sprintf "%.2f" threshold;
                  yield Sharing.Policy.Alloc_caps;
                  yield Sharing.Policy.Alloc_weights;
                  yield Sharing.Policy.Equal_weights;
                ])
        [ 0.0; 0.1; 0.3 ])
    [ 0.0; 0.1; 0.2; 0.4 ];
  Stats.Table.print table;
  print_endline
    "\nReading the table: with growing error, hard caps (ALLOCCAPS) starve\n\
     underestimated services; work-conserving weights recover much of the\n\
     loss; a minimum threshold flattens the decay toward the zero-knowledge\n\
     floor at the cost of some performance when estimates are good."
