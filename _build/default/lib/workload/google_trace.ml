type task = { cores : int; memory_fraction : float }

(* Shape approximating the public 2010 Google cluster trace: most tasks
   request one core, a visible minority two, and a thin tail up to four
   (the paper's reference machines are quad-core, so four is the natural
   cap). *)
let core_distribution =
  [| (1, 0.76); (2, 0.14); (3, 0.06); (4, 0.04) |]

let max_cores = 4

let weights = Array.map snd core_distribution

let sample_cores rng =
  let i = Prng.Rng.choose_weighted rng weights in
  fst core_distribution.(i)

(* Lognormal(mu = -3.2, sigma = 1.1) has median exp(-3.2) ~ 4% of a machine
   and a heavy right tail; truncation to (0.001, 0.5] keeps the occasional
   memory hog without producing unplaceable monsters in the raw draw. *)
let sample_memory_fraction rng =
  let rec draw attempts =
    if attempts > 10_000 then 0.04
    else
      let x = Prng.Rng.lognormal rng ~mu:(-3.2) ~sigma:1.1 in
      if x >= 0.001 && x <= 0.5 then x else draw (attempts + 1)
  in
  draw 0

let sample rng =
  let cores = sample_cores rng in
  let memory_fraction = sample_memory_fraction rng in
  { cores; memory_fraction }

let mean_cores =
  Array.fold_left (fun acc (c, p) -> acc +. (float_of_int c *. p)) 0.
    core_distribution
