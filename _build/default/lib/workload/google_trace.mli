(** Statistical model of the Google cluster dataset [19].

    The paper instantiates service resource demands from the 2010 Google
    cluster data, using exactly two marginals: the number of requested cores
    per task and the fraction of system memory used. The dataset is not
    shippable, so this module is the synthetic substitute documented in
    DESIGN.md §3: requested cores follow a discrete distribution heavily
    concentrated on one core (as in the public trace, where the vast
    majority of tasks request a single CPU), and memory fractions follow a
    truncated lognormal whose mass sits well below 10% of a machine —
    reproducing the "many small, few large" shape that drives the memory
    bin-packing hardness. Both marginals are subsequently rescaled by the
    generator (CPU to total capacity, memory to a target slack), so only
    their shapes matter. *)

type task = { cores : int; memory_fraction : float }

val core_distribution : (int * float) array
(** (cores, probability) pairs; probabilities sum to 1. *)

val max_cores : int
(** Largest core count the model produces (4, matching the paper's
    quad-core reference platform). *)

val sample_cores : Prng.Rng.t -> int

val sample_memory_fraction : Prng.Rng.t -> float
(** In (0, 0.5]: truncated lognormal; raw machine fraction before slack
    rescaling. *)

val sample : Prng.Rng.t -> task

val mean_cores : float
(** Expected core count under {!core_distribution} (used by tests). *)
