lib/workload/errors.mli: Model Prng
