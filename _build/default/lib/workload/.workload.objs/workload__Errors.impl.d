lib/workload/errors.ml: Array Epair Float Model Prng Vec Vector
