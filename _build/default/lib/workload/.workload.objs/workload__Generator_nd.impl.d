lib/workload/generator_nd.ml: Array Model Printf Prng Vec
