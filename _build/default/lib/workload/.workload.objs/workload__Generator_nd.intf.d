lib/workload/generator_nd.mli: Model Prng
