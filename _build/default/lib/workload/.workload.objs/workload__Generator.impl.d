lib/workload/generator.ml: Array Google_trace Model Prng Vec
