lib/workload/generator.mli: Model Prng
