lib/workload/google_trace.mli: Prng
