lib/workload/google_trace.ml: Array Prng
