let min_need = 0.001

(* Rebuild a service with its aggregate CPU need set to [agg], elementary
   rescaled to preserve the elementary/aggregate proportion. *)
let with_cpu_need (s : Model.Service.t) agg =
  let open Vec in
  let old_agg = Vector.get s.need.Epair.aggregate 0 in
  let old_elem = Vector.get s.need.Epair.elementary 0 in
  let elem = if old_agg > 0. then old_elem *. (agg /. old_agg) else agg in
  let set v d x =
    Vector.init (Vector.dim v) (fun i -> if i = d then x else Vector.get v i)
  in
  let need =
    Epair.v
      ~elementary:(set s.need.Epair.elementary 0 elem)
      ~aggregate:(set s.need.Epair.aggregate 0 agg)
  in
  Model.Service.v ~id:s.id ~requirement:s.requirement ~need

let perturb ~rng ~max_error instance =
  if max_error < 0. then invalid_arg "Errors.perturb: negative max_error";
  Model.Instance.map_services
    (fun s ->
      let open Vec in
      let agg = Vector.get s.Model.Service.need.Epair.aggregate 0 in
      let error =
        if max_error = 0. then 0.
        else Prng.Rng.uniform_range rng (-.max_error) max_error
      in
      with_cpu_need s (Float.max min_need (agg +. error)))
    instance

let apply_threshold ~threshold instance =
  if threshold < 0. then invalid_arg "Errors.apply_threshold: negative";
  if threshold = 0. then instance
  else
    Model.Instance.map_services
      (fun s ->
        let open Vec in
        let agg = Vector.get s.Model.Service.need.Epair.aggregate 0 in
        if agg < threshold then with_cpu_need s threshold else s)
      instance

let true_cpu_needs instance =
  Array.init (Model.Instance.n_services instance) (fun j ->
      let s = Model.Instance.service instance j in
      Vec.Vector.get s.Model.Service.need.Vec.Epair.aggregate 0)
