type resource = {
  name : string;
  poolable : bool;
  elements : int;
  fluid : bool;
  utilization : float;
}

let cpu =
  { name = "cpu"; poolable = false; elements = 4; fluid = true;
    utilization = 1.0 }

let memory =
  { name = "memory"; poolable = true; elements = 1; fluid = false;
    utilization = 0.6 }

let network =
  { name = "network"; poolable = false; elements = 2; fluid = true;
    utilization = 0.5 }

let disk =
  { name = "disk"; poolable = true; elements = 1; fluid = false;
    utilization = 0.4 }

let default_resources = [| cpu; memory; network; disk |]

type config = {
  hosts : int;
  services : int;
  cov : float;
  resources : resource array;
}

let validate config =
  if Array.length config.resources = 0 then
    invalid_arg "Generator_nd: no resources";
  if config.hosts <= 0 then invalid_arg "Generator_nd: hosts";
  if config.services <= 0 then invalid_arg "Generator_nd: services";
  if config.cov < 0. then invalid_arg "Generator_nd: cov";
  Array.iter
    (fun r ->
      if r.elements < 1 then
        invalid_arg (Printf.sprintf "Generator_nd: %s: elements < 1" r.name);
      if r.utilization <= 0. || r.utilization > 1. then
        invalid_arg
          (Printf.sprintf "Generator_nd: %s: utilization out of (0, 1]"
             r.name))
    config.resources

let capacity_median = 0.5

let sample_capacity rng cov =
  if cov <= 0. then capacity_median
  else
    Prng.Rng.truncated_normal rng ~mean:capacity_median
      ~stddev:(cov *. capacity_median) ~lo:0.001 ~hi:1.0

let generate ?rng config =
  validate config;
  let rng = match rng with Some r -> r | None -> Prng.Rng.create ~seed:42 in
  let dims = Array.length config.resources in
  (* Platform. *)
  let aggregates =
    Array.init config.hosts (fun _ ->
        Array.init dims (fun _ -> sample_capacity rng config.cov))
  in
  let nodes =
    Array.init config.hosts (fun id ->
        let agg = aggregates.(id) in
        let elt =
          Array.mapi
            (fun d a ->
              let r = config.resources.(d) in
              if r.poolable then a else a /. float_of_int r.elements)
            agg
        in
        Model.Node.v ~id
          ~capacity:
            (Vec.Epair.v
               ~elementary:(Vec.Vector.of_array elt)
               ~aggregate:(Vec.Vector.of_array agg)))
  in
  let total d =
    Array.fold_left (fun acc agg -> acc +. agg.(d)) 0. aggregates
  in
  (* Raw per-service demands: lognormal shapes for rigid resources (many
     small, few large), element counts plus per-element intensity for fluid
     ones. Each dimension is then rescaled to its target utilization. *)
  let raw =
    Array.init config.services (fun _ ->
        Array.init dims (fun d ->
            let r = config.resources.(d) in
            if r.fluid then begin
              let used_elements = 1 + Prng.Rng.int rng r.elements in
              let intensity = Prng.Rng.uniform_range rng 0.25 1.0 in
              (float_of_int used_elements, intensity)
            end
            else begin
              let rec draw attempts =
                if attempts > 1_000 then 0.05
                else
                  let x = Prng.Rng.lognormal rng ~mu:(-3.0) ~sigma:1.0 in
                  if x >= 0.001 && x <= 0.5 then x else draw (attempts + 1)
              in
              (1., draw 0)
            end))
  in
  let scale =
    Array.init dims (fun d ->
        let sum =
          Array.fold_left
            (fun acc per_service ->
              let elements, intensity = per_service.(d) in
              acc +. (elements *. intensity))
            0. raw
        in
        config.resources.(d).utilization *. total d /. sum)
  in
  let services =
    Array.init config.services (fun id ->
        let req_e = Array.make dims 0. and req_a = Array.make dims 0. in
        let need_e = Array.make dims 0. and need_a = Array.make dims 0. in
        Array.iteri
          (fun d (elements, intensity) ->
            let r = config.resources.(d) in
            let agg = scale.(d) *. elements *. intensity in
            let elt = agg /. elements in
            if r.fluid then begin
              need_a.(d) <- agg;
              need_e.(d) <- elt
            end
            else begin
              req_a.(d) <- agg;
              req_e.(d) <- (if r.poolable then agg else elt)
            end)
          raw.(id);
        Model.Service.v ~id
          ~requirement:
            (Vec.Epair.v
               ~elementary:(Vec.Vector.of_array req_e)
               ~aggregate:(Vec.Vector.of_array req_a))
          ~need:
            (Vec.Epair.v
               ~elementary:(Vec.Vector.of_array need_e)
               ~aggregate:(Vec.Vector.of_array need_a)))
  in
  Model.Instance.v ~nodes ~services
