type config = {
  hosts : int;
  services : int;
  cov : float;
  slack : float;
  cpu_homogeneous : bool;
  mem_homogeneous : bool;
}

let default =
  {
    hosts = 64;
    services = 100;
    cov = 0.5;
    slack = 0.4;
    cpu_homogeneous = false;
    mem_homogeneous = false;
  }

let validate config =
  if config.hosts <= 0 then invalid_arg "Generator: hosts must be positive";
  if config.services <= 0 then
    invalid_arg "Generator: services must be positive";
  if config.cov < 0. then invalid_arg "Generator: cov must be non-negative";
  if config.slack <= 0. || config.slack >= 1. then
    invalid_arg "Generator: slack must be in (0, 1)"

let capacity_median = 0.5
let capacity_min = 0.001
let capacity_max = 1.0
let cores_per_node = 4

let sample_capacity rng cov =
  if cov <= 0. then capacity_median
  else
    Prng.Rng.truncated_normal rng ~mean:capacity_median
      ~stddev:(cov *. capacity_median) ~lo:capacity_min ~hi:capacity_max

let generate_platform ~rng config =
  Array.init config.hosts (fun id ->
      let cpu =
        if config.cpu_homogeneous then capacity_median
        else sample_capacity rng config.cov
      in
      let mem =
        if config.mem_homogeneous then capacity_median
        else sample_capacity rng config.cov
      in
      Model.Node.make_cores ~id ~cores:cores_per_node ~cpu ~mem)

let generate_services ~rng config nodes =
  let tasks = Array.init config.services (fun _ -> Google_trace.sample rng) in
  let total_cpu =
    Array.fold_left
      (fun acc (n : Model.Node.t) ->
        acc +. Vec.Vector.get n.capacity.Vec.Epair.aggregate 0)
      0. nodes
  in
  let total_mem =
    Array.fold_left
      (fun acc (n : Model.Node.t) ->
        acc +. Vec.Vector.get n.capacity.Vec.Epair.aggregate 1)
      0. nodes
  in
  (* CPU needs scale so total need equals total capacity (paper §4). *)
  let total_cores =
    Array.fold_left (fun acc t -> acc + t.Google_trace.cores) 0 tasks
  in
  let per_core_need = total_cpu /. float_of_int total_cores in
  (* Memory requirements scale so a successful allocation leaves exactly
     [slack] of total memory free. *)
  let raw_mem =
    Array.fold_left (fun acc t -> acc +. t.Google_trace.memory_fraction) 0.
      tasks
  in
  let mem_factor = (1. -. config.slack) *. total_mem /. raw_mem in
  Array.mapi
    (fun id (t : Google_trace.task) ->
      Model.Service.make_2d ~id
        ~mem_req:(mem_factor *. t.memory_fraction)
        ~cpu_need:
          (per_core_need, per_core_need *. float_of_int t.cores)
        ())
    tasks

let generate ?rng config =
  validate config;
  let rng = match rng with Some r -> r | None -> Prng.Rng.create ~seed:42 in
  let nodes = generate_platform ~rng config in
  let services = generate_services ~rng config nodes in
  Model.Instance.v ~nodes ~services
