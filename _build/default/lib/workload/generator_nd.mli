(** N-dimensional synthetic workload generator.

    The paper's experiments are 2-D (CPU + memory) because those are the
    resources traces report, but the problem formulation — and this library
    — are parametric in the number of resource dimensions (paper §2, §4).
    This generator exercises that generality: platforms and workloads over
    an arbitrary list of resources (e.g. CPU, memory, network, disk), each
    either {e fluid} (generates needs, scaled to a target utilization of
    total capacity) or {e rigid} (generates requirements, scaled likewise),
    and either poolable (memory-like) or made of discrete elements
    (core-like, with elementary capacities). Used by the dimension-scaling
    ablation and the D>2 test corpus. *)

type resource = {
  name : string;
  poolable : bool;
      (** poolable: elementary capacity = aggregate (memory-like);
          otherwise the node has [elements] identical elements *)
  elements : int;  (** resource elements per node when not poolable *)
  fluid : bool;
      (** fluid: demand is a need (performance scales with allocation);
          rigid: demand is a requirement *)
  utilization : float;
      (** total service demand as a fraction of total platform capacity *)
}

val cpu : resource
(** 4 elements, fluid, utilization 1.0 — the paper's CPU. *)

val memory : resource
(** Poolable, rigid, utilization 0.6 — the paper's memory at slack 0.4. *)

val network : resource
(** 2 elements (NICs), fluid, utilization 0.5. *)

val disk : resource
(** Poolable, rigid, utilization 0.4. *)

val default_resources : resource array
(** [[cpu; memory; network; disk]]. *)

type config = {
  hosts : int;
  services : int;
  cov : float;  (** heterogeneity of node capacities, per dimension *)
  resources : resource array;
}

val generate : ?rng:Prng.Rng.t -> config -> Model.Instance.t
(** Deterministic given the rng (default seed 42). Raises
    [Invalid_argument] on empty resources, non-positive sizes, elements < 1,
    or utilization outside (0, 1]. *)
