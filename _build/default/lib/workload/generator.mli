(** Problem-instance generator (paper §4).

    Platforms: [hosts] quad-core nodes whose aggregate CPU and memory
    capacities are drawn from a normal distribution with median 0.5 and the
    requested coefficient of variation, truncated to [0.001, 1.0]; CPU
    elementary capacity is a quarter of the aggregate, memory is fully
    poolable. Either resource can be held homogeneous at 0.5 (Figures 3–4).

    Workloads: each service is a Google-trace task (see {!Google_trace}).
    CPU is all fluid need — elementary need equal to a common per-core
    reference value [c] and aggregate need [c * cores], with [c] chosen so
    that total CPU need equals total CPU capacity. Memory is all rigid
    requirement, rescaled so that a successful allocation leaves exactly
    [slack] of the total memory free. *)

type config = {
  hosts : int;
  services : int;
  cov : float;  (** coefficient of variation of node capacities, in [0,1] *)
  slack : float;  (** memory slack, in (0,1) — low = harder instance *)
  cpu_homogeneous : bool;  (** hold all CPU capacities at 0.5 (Fig. 3) *)
  mem_homogeneous : bool;  (** hold all memory capacities at 0.5 (Fig. 4) *)
}

val default : config
(** 64 hosts, 100 services, cov 0.5, slack 0.4, fully heterogeneous. *)

val generate : ?rng:Prng.Rng.t -> config -> Model.Instance.t
(** Deterministic given the rng (default seed 42). Raises
    [Invalid_argument] on nonsensical parameters ([hosts/services <= 0],
    [cov < 0], [slack] outside (0, 1)). *)

val generate_platform : rng:Prng.Rng.t -> config -> Model.Node.t array
val generate_services :
  rng:Prng.Rng.t -> config -> Model.Node.t array -> Model.Service.t array
(** The two halves of {!generate}, exposed for tests. *)
