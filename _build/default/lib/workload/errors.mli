(** CPU-need estimation errors (paper §6.2).

    The scheduler sees {e estimated} CPU needs; the platform delivers
    according to the {e true} needs. [perturb] builds the estimated instance
    from the true one: each aggregate CPU need receives an additive error
    drawn uniformly from [[-max_error, +max_error]], clamped below at 0.001
    (the paper's floor), with the elementary CPU need rescaled to keep its
    proportion to the aggregate. [apply_threshold] is the mitigation
    heuristic of §6.2: estimates are rounded up to a minimum threshold,
    holding some CPU in reserve for underestimated small services. *)

val perturb :
  rng:Prng.Rng.t -> max_error:float -> Model.Instance.t -> Model.Instance.t
(** The estimated instance. [max_error = 0.] returns an identical copy. *)

val apply_threshold : threshold:float -> Model.Instance.t -> Model.Instance.t
(** Round every aggregate CPU need below [threshold] up to it (elementary
    rescaled proportionally); [threshold = 0.] is the identity. *)

val true_cpu_needs : Model.Instance.t -> float array
(** Aggregate CPU need per service (dimension 0) — the ground truth handed
    to the {!Sharing} simulator. *)
