(** Instance hardness analysis.

    Summarizes the knobs the paper's generator controls (per-dimension
    utilizations, memory slack, platform heterogeneity) for {e any}
    instance, generated or hand-written — what a capacity planner reads
    before choosing an algorithm, and what the CLI's [inspect] prints. *)

type t = {
  hosts : int;
  services : int;
  dims : int;
  services_per_node : float;
  requirement_utilization : float array;
      (** per dimension, total aggregate requirement / total capacity; the
          paper's memory slack is [1 - requirement_utilization.(1)] *)
  need_utilization : float array;
      (** per dimension, total aggregate need / total capacity; the paper
          normalizes CPU to 1.0 *)
  capacity_cov : float array;
      (** per dimension, coefficient of variation of node aggregate
          capacities — the heterogeneity axis of Figures 2–4 *)
  all_services_placeable : bool;
      (** every service's requirements fit on at least one empty node — a
          cheap necessary condition for feasibility *)
}

val analyze : Instance.t -> t

val pp : Format.formatter -> t -> unit
