let utilization instance (alloc : Placement.allocation) =
  let open Vec in
  let h_count = Instance.n_nodes instance in
  let dims = Node.dim (Instance.node instance 0) in
  let loads = Array.init h_count (fun _ -> Array.make dims 0.) in
  Array.iteri
    (fun j h ->
      let s = Instance.service instance j in
      let demand = Service.demand_at_yield s alloc.Placement.yields.(j) in
      for d = 0 to dims - 1 do
        loads.(h).(d) <-
          loads.(h).(d) +. Vector.get demand.Epair.aggregate d
      done)
    alloc.Placement.placement;
  Array.mapi
    (fun h load ->
      let cap =
        (Instance.node instance h).Node.capacity.Epair.aggregate
      in
      Array.mapi
        (fun d l ->
          let c = Vector.get cap d in
          if c <= 0. then 0. else l /. c)
        load)
    loads

let bar width fraction =
  let filled =
    max 0 (min width (int_of_float (Float.round (fraction *. float_of_int width))))
  in
  String.make filled '#' ^ String.make (width - filled) '.'

let render ?(bar_width = 20) instance (alloc : Placement.allocation) =
  let buf = Buffer.create 1024 in
  let util = utilization instance alloc in
  let groups = Placement.group_by_node instance alloc.Placement.placement in
  let dims = Node.dim (Instance.node instance 0) in
  let min_yield = Array.fold_left Float.min 1. alloc.Placement.yields in
  Buffer.add_string buf
    (Printf.sprintf "minimum yield %.4f over %d services on %d nodes\n"
       min_yield
       (Instance.n_services instance)
       (Instance.n_nodes instance));
  Array.iteri
    (fun h services ->
      Buffer.add_string buf (Printf.sprintf "node %d:" h);
      for d = 0 to dims - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  dim%d [%s] %3.0f%%" d
             (bar bar_width util.(h).(d))
             (100. *. util.(h).(d)))
      done;
      Buffer.add_char buf '\n';
      List.iter
        (fun (s : Service.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  service %3d  yield %.4f\n" s.id
               alloc.Placement.yields.(s.id)))
        services)
    groups;
  Buffer.contents buf
