let magic = "vmalloc-instance"
let version = 1

let floats v =
  String.concat " "
    (List.map (Printf.sprintf "%.17g") (Vec.Vector.to_list v))

let to_string instance =
  let buf = Buffer.create 4096 in
  let dims =
    Vec.Epair.dim (Instance.node instance 0).Node.capacity
  in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" magic version);
  Buffer.add_string buf (Printf.sprintf "dims %d\n" dims);
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Instance.n_nodes instance));
  for h = 0 to Instance.n_nodes instance - 1 do
    let n = Instance.node instance h in
    Buffer.add_string buf
      (Printf.sprintf "node %d elt %s agg %s\n" n.Node.id
         (floats n.Node.capacity.Vec.Epair.elementary)
         (floats n.Node.capacity.Vec.Epair.aggregate))
  done;
  Buffer.add_string buf
    (Printf.sprintf "services %d\n" (Instance.n_services instance));
  for j = 0 to Instance.n_services instance - 1 do
    let s = Instance.service instance j in
    Buffer.add_string buf
      (Printf.sprintf
         "service %d req-elt %s req-agg %s need-elt %s need-agg %s\n"
         s.Service.id
         (floats s.Service.requirement.Vec.Epair.elementary)
         (floats s.Service.requirement.Vec.Epair.aggregate)
         (floats s.Service.need.Vec.Epair.elementary)
         (floats s.Service.need.Vec.Epair.aggregate))
  done;
  Buffer.contents buf

exception Parse_error of int * string

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) ->
           l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let fail line msg = raise (Parse_error (line, msg)) in
  let tokens (line, l) = (line, String.split_on_char ' ' l
                                |> List.filter (fun t -> t <> "")) in
  let parse_float line t =
    match float_of_string_opt t with
    | Some f -> f
    | None -> fail line (Printf.sprintf "expected float, got %S" t)
  in
  let parse_int line t =
    match int_of_string_opt t with
    | Some i -> i
    | None -> fail line (Printf.sprintf "expected int, got %S" t)
  in
  (* Consume [count] floats from the token list. *)
  let rec take_floats line count toks acc =
    if count = 0 then (List.rev acc, toks)
    else
      match toks with
      | [] -> fail line "unexpected end of line"
      | t :: rest -> take_floats line (count - 1) rest (parse_float line t :: acc)
  in
  let expect_keyword line kw = function
    | t :: rest when t = kw -> rest
    | t :: _ -> fail line (Printf.sprintf "expected %S, got %S" kw t)
    | [] -> fail line (Printf.sprintf "expected %S, got end of line" kw)
  in
  try
    match List.map tokens lines with
    | [] -> Error "empty input"
    | (l0, header) :: rest ->
        (match header with
        | [ m; v ] when m = magic ->
            if parse_int l0 v <> version then
              fail l0 (Printf.sprintf "unsupported version %s" v)
        | _ -> fail l0 "bad header");
        let dims, rest =
          match rest with
          | (l, [ "dims"; d ]) :: rest -> (parse_int l d, rest)
          | (l, _) :: _ -> fail l "expected 'dims D'"
          | [] -> fail l0 "truncated"
        in
        if dims <= 0 then fail l0 "dims must be positive";
        let n_nodes, rest =
          match rest with
          | (l, [ "nodes"; n ]) :: rest -> (parse_int l n, rest)
          | (l, _) :: _ -> fail l "expected 'nodes H'"
          | [] -> fail l0 "truncated"
        in
        let parse_node (l, toks) =
          let toks = expect_keyword l "node" toks in
          match toks with
          | id :: toks ->
              let id = parse_int l id in
              let toks = expect_keyword l "elt" toks in
              let elt, toks = take_floats l dims toks [] in
              let toks = expect_keyword l "agg" toks in
              let agg, toks = take_floats l dims toks [] in
              if toks <> [] then fail l "trailing tokens";
              Node.v ~id
                ~capacity:
                  (Vec.Epair.v
                     ~elementary:(Vec.Vector.of_list elt)
                     ~aggregate:(Vec.Vector.of_list agg))
          | [] -> fail l "expected node id"
        in
        let rec split_at n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> fail l0 "truncated node/service list"
          | x :: rest -> split_at (n - 1) (x :: acc) rest
        in
        let node_lines, rest = split_at n_nodes [] rest in
        let nodes = Array.of_list (List.map parse_node node_lines) in
        let n_services, rest =
          match rest with
          | (l, [ "services"; n ]) :: rest -> (parse_int l n, rest)
          | (l, _) :: _ -> fail l "expected 'services J'"
          | [] -> fail l0 "truncated"
        in
        let parse_service (l, toks) =
          let toks = expect_keyword l "service" toks in
          match toks with
          | id :: toks ->
              let id = parse_int l id in
              let toks = expect_keyword l "req-elt" toks in
              let re, toks = take_floats l dims toks [] in
              let toks = expect_keyword l "req-agg" toks in
              let ra, toks = take_floats l dims toks [] in
              let toks = expect_keyword l "need-elt" toks in
              let ne, toks = take_floats l dims toks [] in
              let toks = expect_keyword l "need-agg" toks in
              let na, toks = take_floats l dims toks [] in
              if toks <> [] then fail l "trailing tokens";
              Service.v ~id
                ~requirement:
                  (Vec.Epair.v
                     ~elementary:(Vec.Vector.of_list re)
                     ~aggregate:(Vec.Vector.of_list ra))
                ~need:
                  (Vec.Epair.v
                     ~elementary:(Vec.Vector.of_list ne)
                     ~aggregate:(Vec.Vector.of_list na))
          | [] -> fail l "expected service id"
        in
        let service_lines, rest = split_at n_services [] rest in
        (match rest with
        | [] -> ()
        | (l, _) :: _ -> fail l "trailing content");
        let services = Array.of_list (List.map parse_service service_lines) in
        Ok (Instance.v ~nodes ~services)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let write_file path instance =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string instance))

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
