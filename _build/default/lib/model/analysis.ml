type t = {
  hosts : int;
  services : int;
  dims : int;
  services_per_node : float;
  requirement_utilization : float array;
  need_utilization : float array;
  capacity_cov : float array;
  all_services_placeable : bool;
}

let per_dim_cov nodes dims =
  Array.init dims (fun d ->
      let values =
        Array.map
          (fun (n : Node.t) ->
            Vec.Vector.get n.capacity.Vec.Epair.aggregate d)
          nodes
      in
      let n = float_of_int (Array.length values) in
      let mean = Array.fold_left ( +. ) 0. values /. n in
      if mean = 0. then 0.
      else begin
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. values
          /. n
        in
        sqrt var /. mean
      end)

let analyze instance =
  let hosts = Instance.n_nodes instance in
  let services = Instance.n_services instance in
  let dims = Node.dim (Instance.node instance 0) in
  let total = Instance.total_capacity instance in
  let reqs = Instance.total_requirement instance in
  let needs = Instance.total_need instance in
  let ratio part =
    Array.init dims (fun d ->
        let c = Vec.Vector.get total d in
        if c = 0. then 0. else Vec.Vector.get part d /. c)
  in
  let nodes = Array.init hosts (Instance.node instance) in
  let all_services_placeable =
    let placeable j =
      let s = Instance.service instance j in
      Array.exists (fun node -> Yield.requirements_fit node [ s ]) nodes
    in
    let rec loop j = j >= services || (placeable j && loop (j + 1)) in
    loop 0
  in
  {
    hosts;
    services;
    dims;
    services_per_node = float_of_int services /. float_of_int hosts;
    requirement_utilization = ratio reqs;
    need_utilization = ratio needs;
    capacity_cov = per_dim_cov nodes dims;
    all_services_placeable;
  }

let pp ppf t =
  let arr a =
    String.concat " "
      (Array.to_list (Array.map (Printf.sprintf "%.3f") a))
  in
  Format.fprintf ppf
    "@[<v>%d nodes, %d services (%.1f per node), %d dimensions@,\
     requirement utilization per dim: %s@,\
     need utilization per dim:        %s@,\
     capacity CoV per dim:            %s@,\
     every service fits some empty node: %b@]"
    t.hosts t.services t.services_per_node t.dims
    (arr t.requirement_utilization)
    (arr t.need_utilization) (arr t.capacity_cov) t.all_services_placeable
