let tol = Vec.Vector.eps

let elementary_bound (node : Node.t) (s : Service.t) =
  let open Vec in
  let ce = node.capacity.Epair.elementary
  and re = s.requirement.Epair.elementary
  and ne = s.need.Epair.elementary in
  let d = Vector.dim ce in
  let rec loop i bound =
    if i >= d then Some bound
    else
      let cap = Vector.get ce i
      and req = Vector.get re i
      and need = Vector.get ne i in
      let slack_tol = tol *. Float.max 1. cap in
      if req > cap +. slack_tol then None
      else if need > 0. then
        loop (i + 1) (Float.min bound (Float.max 0. ((cap -. req) /. need)))
      else loop (i + 1) bound
  in
  loop 0 1.

let requirements_fit (node : Node.t) services =
  let open Vec in
  let d = Node.dim node in
  let ok_elementary =
    List.for_all
      (fun (s : Service.t) ->
        Vector.fits s.requirement.Epair.elementary
          node.capacity.Epair.elementary)
      services
  in
  ok_elementary
  &&
  let sum = Array.make d 0. in
  List.iter
    (fun (s : Service.t) ->
      for i = 0 to d - 1 do
        sum.(i) <- sum.(i) +. Vector.get s.requirement.Epair.aggregate i
      done)
    services;
  Vector.fits (Vector.of_array sum) node.capacity.Epair.aggregate

(* Exact breakpoint sweep for one aggregate dimension: the largest L in
   [0, 1] with  sum_j (r_j + min(L, cap_j) * n_j) <= c,  where cap_j is the
   service's elementary bound. The demand is piecewise linear and
   nondecreasing in L, so we walk the sorted caps, spending slack at the
   current slope until it runs out or every service saturates. *)
let level_for_dimension ~capacity ~requirements_sum items =
  (* items: (cap_j, n_j) with n_j > 0 *)
  let items =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) items
  in
  let slack = capacity -. requirements_sum in
  if slack < 0. then 0.
  else begin
    let slope0 = List.fold_left (fun acc (_, n) -> acc +. n) 0. items in
    let rec sweep l slack slope = function
      | [] ->
          (* All services saturated below their caps' max; level is free to
             reach 1. *)
          1.
      | (cap, n) :: rest ->
          if slope <= 1e-15 then
            (* Numerically exhausted slope: no further demand growth. *)
            sweep cap slack 0. rest
          else
            let reach = l +. (slack /. slope) in
            if reach <= cap then Float.min 1. reach
            else
              let used = slope *. (cap -. l) in
              sweep cap (slack -. used) (slope -. n) rest
    in
    (* Merge equal caps implicitly: processing them one by one at the same l
       is equivalent. *)
    Float.max 0. (Float.min 1. (sweep 0. slack slope0 items))
  end

let aggregate_level (node : Node.t) services =
  let open Vec in
  let d = Node.dim node in
  let bounds =
    List.map
      (fun s ->
        match elementary_bound node s with Some b -> (s, b) | None -> (s, 0.))
      services
  in
  let level = ref 1. in
  for dim = 0 to d - 1 do
    let capacity = Vector.get node.capacity.Epair.aggregate dim in
    let requirements_sum =
      List.fold_left
        (fun acc ((s : Service.t), _) ->
          acc +. Vector.get s.requirement.Epair.aggregate dim)
        0. bounds
    in
    let items =
      List.filter_map
        (fun ((s : Service.t), b) ->
          let n = Vector.get s.need.Epair.aggregate dim in
          if n > 0. then Some (b, n) else None)
        bounds
    in
    let l = level_for_dimension ~capacity ~requirements_sum items in
    if l < !level then level := l
  done;
  !level

let max_min_yield node services =
  match services with
  | [] -> Some 1.
  | _ ->
      if not (requirements_fit node services) then None
      else begin
        let min_bound = ref 1. in
        let ok = ref true in
        List.iter
          (fun s ->
            match elementary_bound node s with
            | None -> ok := false
            | Some b -> if b < !min_bound then min_bound := b)
          services;
        if not !ok then None
        else Some (Float.min !min_bound (aggregate_level node services))
      end

let water_fill node services =
  match services with
  | [] -> Some []
  | _ ->
      if not (requirements_fit node services) then None
      else begin
        let bounds = List.map (elementary_bound node) services in
        if List.exists Option.is_none bounds then None
        else begin
          let level = aggregate_level node services in
          Some
            (List.map
               (fun b -> Float.min (Option.get b) level)
               bounds)
        end
      end

let max_average_yields (node : Node.t) services =
  match services with
  | [] -> Some []
  | _ ->
      if not (requirements_fit node services) then None
      else begin
        let open Vec in
        let bounds = List.map (elementary_bound node) services in
        if List.exists Option.is_none bounds then None
        else begin
          let d = Node.dim node in
          (* Remaining aggregate capacity after requirements. *)
          let slack = Array.make d 0. in
          for i = 0 to d - 1 do
            slack.(i) <-
              Vector.get node.capacity.Epair.aggregate i
              -. List.fold_left
                   (fun acc (s : Service.t) ->
                     acc +. Vector.get s.requirement.Epair.aggregate i)
                   0. services
          done;
          (* Greedy: raise the cheapest services first. Cost of one unit of
             yield for service j is its aggregate need vector; order by the
             largest need component (the dimension most likely to bind). *)
          let indexed =
            List.mapi
              (fun i (s, b) -> (i, s, Option.get b))
              (List.combine services bounds |> List.map (fun (s, b) -> (s, b)))
          in
          let order =
            List.sort
              (fun (_, (a : Service.t), _) (_, (b : Service.t), _) ->
                Float.compare
                  (Vector.max_component a.need.Epair.aggregate)
                  (Vector.max_component b.need.Epair.aggregate))
              indexed
          in
          let yields = Array.make (List.length services) 0. in
          List.iter
            (fun (i, (s : Service.t), bound) ->
              (* Largest yield the remaining slack allows this service. *)
              let y = ref bound in
              for dim = 0 to d - 1 do
                let n = Vector.get s.need.Epair.aggregate dim in
                if n > 0. then
                  y := Float.min !y (Float.max 0. (slack.(dim) /. n))
              done;
              yields.(i) <- !y;
              for dim = 0 to d - 1 do
                slack.(dim) <-
                  slack.(dim) -. (!y *. Vector.get s.need.Epair.aggregate dim)
              done)
            order;
          Some (Array.to_list yields)
        end
      end

let fits_at_yield (node : Node.t) services y =
  let open Vec in
  let d = Node.dim node in
  let ok_elementary =
    List.for_all
      (fun (s : Service.t) ->
        let demand = Service.demand_at_yield s y in
        Vector.fits demand.Epair.elementary node.capacity.Epair.elementary)
      services
  in
  ok_elementary
  &&
  let sum = Array.make d 0. in
  List.iter
    (fun (s : Service.t) ->
      let demand = Service.demand_at_yield s y in
      for i = 0 to d - 1 do
        sum.(i) <- sum.(i) +. Vector.get demand.Epair.aggregate i
      done)
    services;
  Vector.fits (Vector.of_array sum) node.capacity.Epair.aggregate
