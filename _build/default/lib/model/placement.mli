(** Service-to-node placements and full allocations.

    A placement maps each service id to the node hosting it. An allocation
    additionally fixes each service's yield. The functions here evaluate a
    placement under the paper's objective (minimum yield, water-filled
    per-node) and validate allocations against the MILP constraints
    (1)–(7) of §3.1. *)

type t = int array
(** [t.(j)] is the node hosting service [j]. Values must be valid node
    indices. *)

type allocation = { placement : t; yields : float array }

val services_on : Instance.t -> t -> int -> Service.t list
(** Services placed on a node, in increasing id order. *)

val group_by_node : Instance.t -> t -> Service.t list array
(** All nodes' service lists in one pass. *)

val is_valid : Instance.t -> t -> bool
(** Structural validity: correct length and node indices in range. *)

val feasible : Instance.t -> t -> bool
(** Zero-yield feasibility of every node ({!Yield.requirements_fit}). *)

val min_yield : Instance.t -> t -> float option
(** Minimum over nodes of the per-node max–min yield; [None] when any node
    is infeasible at yield 0 or the placement is structurally invalid. *)

val water_fill : Instance.t -> t -> allocation option
(** Max–min-fair yields per service (per-node water-filling). *)

val check_constraints :
  ?tol:float -> Instance.t -> allocation -> (unit, string) result
(** Validate an allocation against constraints (1)–(7) with [Y] taken as
    the minimum yield: placement completeness (3), yield only where placed
    (4), elementary capacities (5), aggregate capacities (6), yield ranges
    (2). Returns a human-readable reason on failure. Default [tol]
    is [1e-6]. *)

val pp : Format.formatter -> t -> unit
