(** Yield semantics (paper §2 and Fig. 1).

    Given a node and the set of services placed on it, these functions
    compute the feasibility of the placement and the yields the node can
    sustain. Per-node reasoning is exact: because yields enter demands
    linearly, the max–min-fair allocation on a node is a water-filling with
    per-service elementary caps and shared aggregate capacity, computed here
    by an exact breakpoint sweep (no binary search). *)

val elementary_bound : Node.t -> Service.t -> float option
(** Highest yield the node's {e elementary} capacities allow for this
    service, in [0, 1]. [None] when even the elementary requirement does not
    fit (placement is invalid regardless of yield). A service whose needs
    are all zero gets bound [1.]. *)

val requirements_fit : Node.t -> Service.t list -> bool
(** Zero-yield feasibility: every service's elementary requirement fits a
    single element, and the summed aggregate requirements fit the node. *)

val aggregate_level : Node.t -> Service.t list -> float
(** Maximum common level [L] in [0, 1] such that allocating every service
    its requirement plus [min L (elementary bound)] of its need respects all
    aggregate capacities. Assumes {!requirements_fit} holds; services whose
    elementary requirement does not fit are treated as bound-0. *)

val max_min_yield : Node.t -> Service.t list -> float option
(** Largest achievable minimum yield over the given services on this node:
    [min (min elementary bounds) (aggregate_level)]. [None] when
    requirements do not fit. [Some 1.] for the empty list. *)

val water_fill : Node.t -> Service.t list -> float list option
(** Max–min-fair per-service yields [min (elementary bound) L] in input
    order, where [L] is {!aggregate_level}. [None] when requirements do not
    fit. Unlike {!max_min_yield}, services capped below [L] by their own
    elementary bound do not drag the others down. *)

val max_average_yields : Node.t -> Service.t list -> float list option
(** Yields maximizing the {e average} (equivalently the sum) instead of the
    minimum, for the same fixed node. Included to demonstrate the paper's
    §2 motivation: average-yield maximization is prone to starvation — it
    pours capacity into the services that are cheapest to satisfy (smallest
    aggregate need in the binding dimension) and can leave expensive
    services at yield 0, whereas max–min water-filling never starves anyone
    whose requirements fit. Exact for a single binding aggregate dimension;
    with several it is the natural greedy (cheapest service first) and a
    lower bound on the LP optimum. [None] when requirements do not fit. *)

val fits_at_yield : Node.t -> Service.t list -> float -> bool
(** [fits_at_yield node services y] checks that all services can run on the
    node at the {e common} yield [y]: elementary demand of each service fits
    one element and summed aggregate demands fit the node. This is the
    packing feasibility test used by the binary-search drivers. *)
