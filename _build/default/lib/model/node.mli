(** Physical hosts.

    A node is an ordered pair of D-dimensional vectors (paper §2): the
    {e elementary} capacity of a single resource element in each dimension
    and the {e aggregate} capacity over all elements. For poolable resources
    (memory) the two coincide; for partitionable-but-not-poolable resources
    (CPU cores) the aggregate is typically [elements * elementary], although
    no integer-multiple relation is assumed. *)

type t = { id : int; capacity : Vec.Epair.t }

val v : id:int -> capacity:Vec.Epair.t -> t
(** Raises [Invalid_argument] on negative capacities or when any elementary
    capacity exceeds the corresponding aggregate capacity. *)

val make_cores :
  id:int -> cores:int -> cpu:float -> mem:float -> t
(** Convenience for the paper's 2-D experiments: a node with [cores]
    homogeneous cores totalling [cpu] aggregate CPU capacity (each core has
    [cpu /. cores] elementary capacity) and a fully poolable memory of size
    [mem]. Dimension 0 is CPU, dimension 1 is memory. *)

val dim : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
