lib/model/placement.mli: Format Instance Service
