lib/model/analysis.ml: Array Format Instance Node Printf String Vec Yield
