lib/model/report.ml: Array Buffer Epair Float Instance List Node Placement Printf Service String Vec Vector
