lib/model/instance.ml: Array Format Node Service Vec
