lib/model/analysis.mli: Format Instance
