lib/model/placement.ml: Array Epair Float Format Instance List Node Result Service Vec Vector Yield
