lib/model/yield.ml: Array Epair Float List Node Option Service Vec Vector
