lib/model/codec.ml: Array Buffer Fun In_channel Instance List Node Printf Service String Vec
