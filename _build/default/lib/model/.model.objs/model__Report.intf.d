lib/model/report.mli: Instance Placement
