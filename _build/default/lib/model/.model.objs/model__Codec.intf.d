lib/model/codec.mli: Instance
