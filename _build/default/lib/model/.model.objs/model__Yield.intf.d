lib/model/yield.mli: Node Service
