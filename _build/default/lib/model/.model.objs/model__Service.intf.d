lib/model/service.mli: Format Vec
