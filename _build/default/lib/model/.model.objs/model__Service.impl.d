lib/model/service.ml: Format Printf Vec
