lib/model/instance.mli: Format Node Service Vec
