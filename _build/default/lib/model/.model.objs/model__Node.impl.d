lib/model/node.ml: Epair Format Printf Vec Vector
