lib/model/node.mli: Format Vec
