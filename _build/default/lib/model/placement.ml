type t = int array

type allocation = { placement : t; yields : float array }

let is_valid instance placement =
  Array.length placement = Instance.n_services instance
  && Array.for_all
       (fun h -> h >= 0 && h < Instance.n_nodes instance)
       placement

let group_by_node instance placement =
  let groups = Array.make (Instance.n_nodes instance) [] in
  (* Walk backwards so each node's list ends up in increasing id order. *)
  for j = Array.length placement - 1 downto 0 do
    let h = placement.(j) in
    groups.(h) <- Instance.service instance j :: groups.(h)
  done;
  groups

let services_on instance placement h =
  let acc = ref [] in
  for j = Array.length placement - 1 downto 0 do
    if placement.(j) = h then acc := Instance.service instance j :: !acc
  done;
  !acc

let feasible instance placement =
  is_valid instance placement
  && (let groups = group_by_node instance placement in
      let ok = ref true in
      Array.iteri
        (fun h services ->
          if not (Yield.requirements_fit (Instance.node instance h) services)
          then ok := false)
        groups;
      !ok)

let min_yield instance placement =
  if not (is_valid instance placement) then None
  else begin
    let groups = group_by_node instance placement in
    let worst = ref (Some 1.) in
    Array.iteri
      (fun h services ->
        match !worst with
        | None -> ()
        | Some w -> (
            match Yield.max_min_yield (Instance.node instance h) services with
            | None -> worst := None
            | Some y -> if y < w then worst := Some y))
      groups;
    !worst
  end

let water_fill instance placement =
  if not (is_valid instance placement) then None
  else begin
    let groups = group_by_node instance placement in
    let yields = Array.make (Instance.n_services instance) 0. in
    let ok = ref true in
    Array.iteri
      (fun h services ->
        if !ok then
          match Yield.water_fill (Instance.node instance h) services with
          | None -> ok := false
          | Some ys ->
              List.iter2
                (fun (s : Service.t) y -> yields.(s.Service.id) <- y)
                services ys)
      groups;
    if !ok then Some { placement = Array.copy placement; yields } else None
  end

let check_constraints ?(tol = 1e-6) instance { placement; yields } =
  let open Vec in
  let ( let* ) = Result.bind in
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  let* () =
    if Array.length placement <> Instance.n_services instance then
      fail "constraint 3: placement length %d <> %d services"
        (Array.length placement)
        (Instance.n_services instance)
    else Ok ()
  in
  let* () =
    if Array.length yields <> Instance.n_services instance then
      fail "yields length mismatch"
    else Ok ()
  in
  (* (1) & (3): each service on exactly one valid node. *)
  let* () =
    match
      Array.find_index
        (fun h -> h < 0 || h >= Instance.n_nodes instance)
        placement
    with
    | Some j -> fail "constraint 3: service %d placed on invalid node %d" j
                  placement.(j)
    | None -> Ok ()
  in
  (* (2): yield ranges. *)
  let* () =
    match
      Array.find_index (fun y -> y < -.tol || y > 1. +. tol) yields
    with
    | Some j -> fail "constraint 2: yield %g of service %d out of [0,1]"
                  yields.(j) j
    | None -> Ok ()
  in
  (* (5): per-service elementary capacities on the hosting node; yield is
     zero elsewhere by representation, so (4) is structural. *)
  let rec check_elementary j =
    if j >= Instance.n_services instance then Ok ()
    else begin
      let s = Instance.service instance j in
      let node = Instance.node instance placement.(j) in
      let demand = Service.demand_at_yield s yields.(j) in
      let ce = node.Node.capacity.Epair.elementary in
      let de = demand.Epair.elementary in
      let bad = ref None in
      for d = 0 to Vector.dim ce - 1 do
        if
          Vector.get de d > Vector.get ce d +. (tol *. Float.max 1. (Vector.get ce d))
          && !bad = None
        then bad := Some d
      done;
      match !bad with
      | Some d ->
          fail "constraint 5: service %d exceeds elementary capacity of node \
                %d in dim %d (%g > %g)"
            j placement.(j) d (Vector.get de d) (Vector.get ce d)
      | None -> check_elementary (j + 1)
    end
  in
  let* () = check_elementary 0 in
  (* (6): per-node aggregate capacities. *)
  let dims = Vector.dim (Instance.total_capacity instance) in
  let loads =
    Array.init (Instance.n_nodes instance) (fun _ -> Array.make dims 0.)
  in
  Array.iteri
    (fun j h ->
      let s = Instance.service instance j in
      let demand = Service.demand_at_yield s yields.(j) in
      for d = 0 to dims - 1 do
        loads.(h).(d) <-
          loads.(h).(d) +. Vector.get demand.Epair.aggregate d
      done)
    placement;
  let rec check_aggregate h =
    if h >= Instance.n_nodes instance then Ok ()
    else begin
      let ca = (Instance.node instance h).Node.capacity.Epair.aggregate in
      let bad = ref None in
      for d = 0 to dims - 1 do
        if
          loads.(h).(d) > Vector.get ca d +. (tol *. Float.max 1. (Vector.get ca d))
          && !bad = None
        then bad := Some d
      done;
      match !bad with
      | Some d ->
          fail "constraint 6: node %d aggregate capacity exceeded in dim %d \
                (%g > %g)"
            h d loads.(h).(d) (Vector.get ca d)
      | None -> check_aggregate (h + 1)
    end
  in
  check_aggregate 0

let pp ppf t =
  Format.fprintf ppf "[";
  Array.iteri
    (fun j h ->
      if j > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%d→%d" j h)
    t;
  Format.fprintf ppf "]"
