(** Human-readable placement reports.

    Renders an allocation as a per-node table: hosted services, per-service
    yields, and per-dimension aggregate utilization with ASCII bars — what
    an operator wants to see after a placement run (used by the CLI and the
    examples). *)

val render : ?bar_width:int -> Instance.t -> Placement.allocation -> string
(** Multi-line report. [bar_width] defaults to 20 columns. *)

val utilization : Instance.t -> Placement.allocation -> float array array
(** [utilization inst alloc] is a H x D matrix of aggregate load divided by
    aggregate capacity at the allocation's yields (0 for zero-capacity
    dimensions). Exposed for tests. *)
