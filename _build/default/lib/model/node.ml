type t = { id : int; capacity : Vec.Epair.t }

let v ~id ~capacity =
  let open Vec in
  let d = Epair.dim capacity in
  for i = 0 to d - 1 do
    let e = Vector.get capacity.Epair.elementary i
    and a = Vector.get capacity.Epair.aggregate i in
    if e < 0. || a < 0. then
      invalid_arg (Printf.sprintf "Node.v: negative capacity in dim %d" i);
    if e > a +. Vector.eps then
      invalid_arg
        (Printf.sprintf "Node.v: elementary capacity exceeds aggregate in dim %d" i)
  done;
  { id; capacity }

let make_cores ~id ~cores ~cpu ~mem =
  if cores <= 0 then invalid_arg "Node.make_cores: cores must be positive";
  if cpu < 0. || mem < 0. then invalid_arg "Node.make_cores: negative capacity";
  let elementary = Vec.Vector.of_array [| cpu /. float_of_int cores; mem |] in
  let aggregate = Vec.Vector.of_array [| cpu; mem |] in
  v ~id ~capacity:(Vec.Epair.v ~elementary ~aggregate)

let dim t = Vec.Epair.dim t.capacity

let equal a b = a.id = b.id && Vec.Epair.equal a.capacity b.capacity

let pp ppf t = Format.fprintf ppf "node#%d %a" t.id Vec.Epair.pp t.capacity
