(** Plain-text instance serialization.

    A simple line-oriented format so instances can be generated once, saved,
    inspected by hand, and re-solved with different algorithms (the CLI's
    workflow, and how the paper's published problem sets were shipped).

    Format (version 1):
    {v
    vmalloc-instance 1
    dims D
    nodes H
    node <id> elt <D floats> agg <D floats>     (x H)
    services J
    service <id> req-elt <D floats> req-agg <D floats> \
                 need-elt <D floats> need-agg <D floats>   (x J)
    v}
    Blank lines and lines starting with [#] are ignored. *)

val to_string : Instance.t -> string

val of_string : string -> (Instance.t, string) result
(** Parse; the error carries a line number and reason. *)

val write_file : string -> Instance.t -> unit

val read_file : string -> (Instance.t, string) result
