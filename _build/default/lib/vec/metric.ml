type scalar = Max | Sum | Max_ratio | Max_difference

type order = Unsorted | Asc of key | Desc of key
and key = Scalar of scalar | Lex

let value s v =
  match s with
  | Max -> Vector.max_component v
  | Sum -> Vector.sum v
  | Max_ratio -> Vector.max_ratio v
  | Max_difference -> Vector.max_difference v

let compare_key key a b =
  match key with
  | Scalar s -> Float.compare (value s a) (value s b)
  | Lex -> Vector.compare_lex a b

let sort order proj items =
  let items = Array.copy items in
  (match order with
  | Unsorted -> ()
  | Asc key ->
      Array.stable_sort (fun x y -> compare_key key (proj x) (proj y)) items
  | Desc key ->
      Array.stable_sort (fun x y -> compare_key key (proj y) (proj x)) items);
  items

let all_keys =
  [ Scalar Max; Scalar Sum; Scalar Max_ratio; Scalar Max_difference; Lex ]

let all_orders =
  Unsorted
  :: List.concat_map (fun k -> [ Asc k; Desc k ]) all_keys

let scalar_to_string = function
  | Max -> "MAX"
  | Sum -> "SUM"
  | Max_ratio -> "MAXRATIO"
  | Max_difference -> "MAXDIFFERENCE"

let key_to_string = function
  | Scalar s -> scalar_to_string s
  | Lex -> "LEX"

let order_to_string = function
  | Unsorted -> "NONE"
  | Asc k -> "A" ^ key_to_string k
  | Desc k -> "D" ^ key_to_string k
