lib/vec/metric.mli: Vector
