lib/vec/epair.ml: Format Vector
