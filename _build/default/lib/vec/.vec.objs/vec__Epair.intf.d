lib/vec/epair.mli: Format Vector
