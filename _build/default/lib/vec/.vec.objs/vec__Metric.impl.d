lib/vec/metric.ml: Array Float List Vector
