lib/vec/vector.mli: Format
