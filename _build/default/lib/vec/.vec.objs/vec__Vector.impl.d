lib/vec/vector.ml: Array Float Format Fun
