(** Ordered (elementary, aggregate) vector pairs.

    Every node capacity, service requirement, and service need in the paper
    is such a pair: the {e elementary} vector constrains what a single
    resource element (one core, one NIC) can provide to a single virtual
    element, and the {e aggregate} vector constrains the total over all
    elements of the node. See paper §2 and Fig. 1. *)

type t = { elementary : Vector.t; aggregate : Vector.t }

val v : elementary:Vector.t -> aggregate:Vector.t -> t
(** Raises [Invalid_argument] when the two vectors have different
    dimensions. *)

val of_arrays : float array -> float array -> t
(** [of_arrays e a] builds a pair from raw component arrays. *)

val uniform : Vector.t -> t
(** [uniform v] is the pair with elementary = aggregate = [v]; models fully
    poolable resources such as memory. *)

val dim : t -> int

val zero : int -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val at_yield : requirement:t -> need:t -> float -> t
(** [at_yield ~requirement ~need y] is the resource demand
    [(rᵉ + y·nᵉ, rᵃ + y·nᵃ)] of a service running at yield [y]. *)

val fits : t -> t -> bool
(** [fits demand capacity] checks both the elementary and the aggregate
    component-wise constraints, with the library tolerance. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
