type t = { elementary : Vector.t; aggregate : Vector.t }

let v ~elementary ~aggregate =
  if Vector.dim elementary <> Vector.dim aggregate then
    invalid_arg "Epair.v: dimension mismatch";
  { elementary; aggregate }

let of_arrays e a =
  v ~elementary:(Vector.of_array e) ~aggregate:(Vector.of_array a)

let uniform vec = { elementary = vec; aggregate = vec }

let dim p = Vector.dim p.elementary

let zero d = { elementary = Vector.zero d; aggregate = Vector.zero d }

let add a b =
  {
    elementary = Vector.add a.elementary b.elementary;
    aggregate = Vector.add a.aggregate b.aggregate;
  }

let sub a b =
  {
    elementary = Vector.sub a.elementary b.elementary;
    aggregate = Vector.sub a.aggregate b.aggregate;
  }

let scale s p =
  { elementary = Vector.scale s p.elementary;
    aggregate = Vector.scale s p.aggregate }

let at_yield ~requirement ~need y =
  {
    elementary = Vector.axpy y need.elementary requirement.elementary;
    aggregate = Vector.axpy y need.aggregate requirement.aggregate;
  }

let fits demand capacity =
  Vector.fits demand.elementary capacity.elementary
  && Vector.fits demand.aggregate capacity.aggregate

let equal ?eps a b =
  Vector.equal ?eps a.elementary b.elementary
  && Vector.equal ?eps a.aggregate b.aggregate

let pp ppf p =
  Format.fprintf ppf "@[<h>(elt %a, agg %a)@]" Vector.pp p.elementary
    Vector.pp p.aggregate

let to_string p = Format.asprintf "%a" pp p
