(** Scalarization metrics and sort orders over resource vectors.

    Vector-packing heuristics need a total order on vectors, but there is no
    single unambiguous definition of vector "size" (paper §3.5). The paper
    evaluates five scalarizations — MAX, SUM, MAXRATIO, MAXDIFFERENCE and
    the lexicographic order LEX — each usable ascending or descending, plus
    the option of not sorting at all, for 11 distinct item orders. *)

type scalar = Max | Sum | Max_ratio | Max_difference
(** Metrics that map a vector to a single float. LEX is handled separately
    because it is a genuine order, not a scalarization. *)

type order =
  | Unsorted  (** keep natural order (the paper's NONE). *)
  | Asc of key
  | Desc of key

and key = Scalar of scalar | Lex

val value : scalar -> Vector.t -> float
(** Scalarize a vector. *)

val compare_key : key -> Vector.t -> Vector.t -> int
(** Ascending comparison under a key; [Desc] callers negate it. *)

val sort : order -> ('a -> Vector.t) -> 'a array -> 'a array
(** [sort order proj items] returns a fresh array of [items] sorted by the
    projection of each item. The sort is stable so [Unsorted] and tie
    handling preserve natural order. *)

val all_orders : order list
(** The 11 item orders of the paper: [Unsorted] plus {asc, desc} x
    {MAX, SUM, MAXRATIO, MAXDIFFERENCE, LEX}. *)

val scalar_to_string : scalar -> string
val key_to_string : key -> string
val order_to_string : order -> string
(** Short names used in experiment reports (e.g. ["DMAX"], ["ASUM"],
    ["NONE"]). *)
