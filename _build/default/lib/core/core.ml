(** Single entry point for the vmalloc library.

    The paper's primary contribution — max–min-yield service placement on
    heterogeneous platforms via heterogeneous vector packing — lives in the
    sub-libraries re-exported here. Downstream users can depend on [core]
    alone and reach everything as [Core.X]; the sub-libraries remain
    independently usable for finer-grained dependencies.

    Layered bottom-up:

    - {!Vector}, {!Epair}, {!Metric} — resource-vector algebra (lib/vec).
    - {!Rng} — deterministic PRNG (lib/prng).
    - {!Lp_problem}, {!Simplex}, {!Branch_bound} — the LP/MILP substrate
      replacing GLPK/CPLEX (lib/lp).
    - {!Node}, {!Service}, {!Instance}, {!Yield}, {!Placement}, {!Codec} —
      the problem model and its exact per-node yield semantics (lib/model).
    - {!Item}, {!Bin}, {!Fit}, {!Permutation_pack},
      {!Naive_permutation_pack}, {!Strategy} — the vector-packing engine
      (lib/packing).
    - {!Binary_search}, {!Vp_solver}, {!Greedy}, {!Milp}, {!Rounding},
      {!Algorithms} — the placement heuristics (lib/heuristics).
    - {!Google_trace}, {!Generator}, {!Errors} — workload synthesis
      (lib/workload).
    - {!Work_conserving}, {!Policy}, {!Theorem}, {!Zero_knowledge},
      {!Runtime_eval}, {!Adaptive_threshold} — the run-time sharing
      simulator (lib/sharing).
    - {!Event_queue}, {!Engine} — the online-hosting extension
      (lib/simulator).
    - {!Summary}, {!Pairwise}, {!Table}, {!Series} — statistics
      (lib/stats). *)

(* Resource vectors. *)
module Vector = Vec.Vector
module Epair = Vec.Epair
module Metric = Vec.Metric

(* PRNG. *)
module Rng = Prng.Rng

(* LP / MILP substrate. *)
module Lp_problem = Lp.Problem
module Simplex = Lp.Simplex
module Branch_bound = Lp.Branch_bound

(* Problem model. *)
module Node = Model.Node
module Service = Model.Service
module Instance = Model.Instance
module Yield = Model.Yield
module Placement = Model.Placement
module Codec = Model.Codec
module Analysis = Model.Analysis
module Report = Model.Report

(* Vector packing. *)
module Item = Packing.Item
module Bin = Packing.Bin
module Fit = Packing.Fit
module Permutation_pack = Packing.Permutation_pack
module Naive_permutation_pack = Packing.Naive_permutation_pack
module Strategy = Packing.Strategy

(* Placement heuristics. *)
module Binary_search = Heuristics.Binary_search
module Vp_solver = Heuristics.Vp_solver
module Greedy = Heuristics.Greedy
module Milp = Heuristics.Milp
module Rounding = Heuristics.Rounding
module Algorithms = Heuristics.Algorithms

(* Workload synthesis. *)
module Google_trace = Workload.Google_trace
module Generator = Workload.Generator
module Errors = Workload.Errors

(* Run-time resource sharing. *)
module Work_conserving = Sharing.Work_conserving
module Policy = Sharing.Policy
module Theorem = Sharing.Theorem
module Zero_knowledge = Sharing.Zero_knowledge
module Runtime_eval = Sharing.Runtime_eval
module Adaptive_threshold = Sharing.Adaptive_threshold

(* Online hosting (extension). *)
module Event_queue = Simulator.Event_queue
module Engine = Simulator.Engine

(* Statistics. *)
module Summary = Stats.Summary
module Pairwise = Stats.Pairwise
module Table = Stats.Table
module Series = Stats.Series

(** Convenience one-call API: generate-or-load, solve, evaluate. *)
module Quick = struct
  (** [solve ?algorithm instance] runs METAHVPLIGHT (or the named
      algorithm) and returns the placement with its water-filled yields,
      validated against the MILP constraints. *)
  let solve ?(algorithm = Heuristics.Algorithms.metahvplight) instance =
    match algorithm.Heuristics.Algorithms.solve instance with
    | None -> None
    | Some sol -> Model.Placement.water_fill instance sol.placement

  (** [min_yield ?algorithm instance] is just the objective value. *)
  let min_yield ?algorithm instance =
    Option.map
      (fun (alloc : Model.Placement.allocation) ->
        Array.fold_left Float.min 1. alloc.yields)
      (solve ?algorithm instance)
end
