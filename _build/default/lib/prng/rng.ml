type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* A second mixing of the next raw output decorrelates the child stream
     from the parent's subsequent draws. *)
  let s = bits64 t in
  { state = mix64 (Int64.logxor s 0xA02B5F8C39E11F4DL) }

let uniform t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  uniform t *. bound

let uniform_range t lo hi =
  if hi < lo then invalid_arg "Rng.uniform_range: hi < lo";
  lo +. (uniform t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small ranges used (n << 2^63). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1)
                  (Int64.of_int n))

let gaussian t =
  let rec draw () =
    let u = uniform t in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = uniform t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let normal t ~mean ~stddev = mean +. (stddev *. gaussian t)

let truncated_normal t ~mean ~stddev ~lo ~hi =
  if hi < lo then invalid_arg "Rng.truncated_normal: hi < lo";
  if stddev <= 0. then Float.max lo (Float.min hi mean)
  else begin
    (* Rejection sampling; falls back to clamping after a large number of
       rejections (only reachable when [lo, hi] is far in the tail). *)
    let rec loop attempts =
      if attempts > 10_000 then Float.max lo (Float.min hi mean)
      else
        let x = normal t ~mean ~stddev in
        if x >= lo && x <= hi then x else loop (attempts + 1)
    in
    loop 0
  end

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec draw () =
    let u = uniform t in
    if u <= 0. then draw () else u
  in
  -.log (draw ()) /. rate

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~stddev:sigma)

let choose_weighted t weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0. then invalid_arg "Rng.choose_weighted: negative weight";
        acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Rng.choose_weighted: all weights zero";
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  let i = scan 0 0. in
  (* Floating-point roundoff can push [target] past the cumulative sum and
     land on a zero-weight tail entry; back up to the nearest valid one. *)
  let rec backup i = if weights.(i) > 0. then i else backup (i - 1) in
  backup i

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
