lib/prng/rng.mli:
