(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic components (workload generation, randomized rounding,
    error perturbation) draw from this generator so that every experiment is
    reproducible from a seed, independently of the OCaml stdlib [Random]
    state. Splitmix64 is a tiny, well-tested mixer with 64-bit state and
    full-period output; it is more than adequate for simulation workloads
    (we need reproducibility and uniformity, not cryptographic strength). *)

type t

val create : seed:int -> t

val copy : t -> t
(** Independent clone with identical future output. *)

val split : t -> t
(** Derive a statistically independent generator (used to give each
    instance of a sweep its own stream so that adding experiments does not
    perturb existing ones). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). [bound] must be positive. *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val uniform_range : t -> float -> float -> float
(** [uniform_range t lo hi] is uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). [n] must be positive. *)

val gaussian : t -> float
(** Standard normal via Box–Muller (one fresh sample per call). *)

val normal : t -> mean:float -> stddev:float -> float

val truncated_normal : t -> mean:float -> stddev:float -> lo:float -> hi:float -> float
(** Rejection-sampled normal restricted to [lo, hi] (resamples until inside;
    [stddev = 0.] returns the clamped mean). Used for the paper's node
    capacity distribution: median 0.5, clipped to [0.001, 1.0]. *)

val exponential : t -> rate:float -> float

val lognormal : t -> mu:float -> sigma:float -> float

val choose_weighted : t -> float array -> int
(** Index drawn proportionally to the (non-negative) weights. Raises
    [Invalid_argument] if all weights are zero or any is negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
