type threshold_mode =
  | Fixed of float
  | Adaptive of Sharing.Adaptive_threshold.t

type config = {
  horizon : float;
  arrival_rate : float;
  mean_lifetime : float;
  reallocation_period : float;
  max_error : float;
  threshold : threshold_mode;
  policy : Sharing.Policy.t;
  algorithm : Heuristics.Algorithms.t;
  per_core_need : float;
  memory_scale : float;
}

let default_config =
  {
    horizon = 100.;
    arrival_rate = 1.;
    mean_lifetime = 20.;
    reallocation_period = 5.;
    max_error = 0.;
    threshold = Fixed 0.;
    policy = Sharing.Policy.Alloc_weights;
    algorithm = Heuristics.Algorithms.metahvplight;
    per_core_need = 0.1;
    memory_scale = 0.4;
  }

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  departures : int;
  reallocations : int;
  failed_reallocations : int;
  migrations : int;
  mean_min_yield : float;
  yield_samples : (float * float) list;
  final_threshold : float;
}

(* A live service: true and estimated CPU needs plus the rigid memory
   requirement; [node] is its current host. *)
type live = {
  uid : int;
  cores : int;
  true_cpu : float;  (* aggregate true need *)
  est_cpu : float;   (* aggregate estimated need (before thresholding) *)
  memory : float;
  mutable node : int;
}

type event = Arrival | Departure of int (* uid *) | Reallocate

let validate config =
  if config.horizon <= 0. then invalid_arg "Engine.run: horizon";
  if config.arrival_rate <= 0. then invalid_arg "Engine.run: arrival_rate";
  if config.mean_lifetime <= 0. then invalid_arg "Engine.run: mean_lifetime";
  if config.reallocation_period <= 0. then
    invalid_arg "Engine.run: reallocation_period";
  if config.max_error < 0. then invalid_arg "Engine.run: max_error";
  if config.per_core_need <= 0. then invalid_arg "Engine.run: per_core_need";
  if config.memory_scale <= 0. then invalid_arg "Engine.run: memory_scale"

(* Dense-id service arrays for the model layer, in [actives] order. The
   estimated variant applies the current minimum threshold. *)
let service_of_live ~estimated ~threshold id (l : live) =
  let cpu =
    if estimated then Float.max l.est_cpu threshold else l.true_cpu
  in
  Model.Service.make_2d ~id ~mem_req:l.memory
    ~cpu_need:(cpu /. float_of_int l.cores, cpu)
    ()

let build_instances ~platform ~threshold actives =
  let actives = Array.of_list actives in
  let true_services =
    Array.mapi (service_of_live ~estimated:false ~threshold:0.) actives
  in
  let est_services =
    Array.mapi (service_of_live ~estimated:true ~threshold) actives
  in
  let placement = Array.map (fun l -> l.node) actives in
  ( actives,
    Model.Instance.v ~nodes:platform ~services:true_services,
    Model.Instance.v ~nodes:platform ~services:est_services,
    placement )

let run ?rng config ~platform =
  validate config;
  let rng = match rng with Some r -> r | None -> Prng.Rng.create ~seed:0 in
  let queue = Event_queue.create () in
  let actives : live list ref = ref [] in
  let next_uid = ref 0 in
  let arrivals = ref 0 and admitted = ref 0 and rejected = ref 0 in
  let departures = ref 0 in
  let reallocations = ref 0 and failed_reallocations = ref 0 in
  let migrations = ref 0 in
  let yield_samples = ref [] in
  let yield_integral = ref 0. in
  let last_time = ref 0. in
  let current_yield = ref 1. in
  let current_threshold () =
    match config.threshold with
    | Fixed t -> t
    | Adaptive c -> Sharing.Adaptive_threshold.threshold c
  in
  (* Piecewise-constant integration of the minimum yield. *)
  let advance_to time =
    yield_integral := !yield_integral +. (!current_yield *. (time -. !last_time));
    last_time := time
  in
  let record time =
    let y =
      match !actives with
      | [] -> 1.
      | actives_list -> (
          let _, true_inst, est_inst, placement =
            build_instances ~platform ~threshold:(current_threshold ())
              actives_list
          in
          match
            Sharing.Runtime_eval.actual_min_yield config.policy
              ~true_instance:true_inst ~estimated:est_inst placement
          with
          | Some y -> y
          | None -> 0.)
    in
    current_yield := y;
    yield_samples := (time, y) :: !yield_samples
  in
  (* Memory-requirement admission: the feasible node with the fewest
     services (the zero-knowledge spread — arrivals carry no trusted CPU
     estimate yet, only the rigid requirement matters for admission). *)
  let admit (l : live) =
    let h_count = Array.length platform in
    let mem_load = Array.make h_count 0. in
    let count = Array.make h_count 0 in
    List.iter
      (fun (a : live) ->
        mem_load.(a.node) <- mem_load.(a.node) +. a.memory;
        count.(a.node) <- count.(a.node) + 1)
      !actives;
    let best = ref (-1) in
    for h = 0 to h_count - 1 do
      let cap =
        Vec.Vector.get platform.(h).Model.Node.capacity.Vec.Epair.aggregate 1
      in
      if
        mem_load.(h) +. l.memory <= cap +. 1e-9
        && (!best < 0 || count.(h) < count.(!best))
      then best := h
    done;
    if !best >= 0 then begin
      l.node <- !best;
      true
    end
    else false
  in
  let reallocate () =
    incr reallocations;
    match !actives with
    | [] -> ()
    | actives_list -> (
        let lives, true_inst, est_inst, old_placement =
          build_instances ~platform ~threshold:(current_threshold ())
            actives_list
        in
        match config.algorithm.solve est_inst with
        | None -> incr failed_reallocations
        | Some sol ->
            Array.iteri
              (fun i (l : live) ->
                if sol.placement.(i) <> old_placement.(i) then
                  incr migrations;
                l.node <- sol.placement.(i))
              lives;
            (* Close the adaptive feedback loop with what the run-time
               scheduler actually hands out under the new placement. *)
            match config.threshold with
            | Fixed _ -> ()
            | Adaptive controller -> (
                match
                  Sharing.Runtime_eval.consumptions config.policy
                    ~true_instance:true_inst ~estimated:est_inst sol.placement
                with
                | None -> ()
                | Some actual ->
                    let estimated =
                      Array.map (fun (l : live) -> l.est_cpu) lives
                    in
                    Sharing.Adaptive_threshold.observe controller ~estimated
                      ~actual))
  in
  (* Seed the event queue. *)
  let schedule_arrival time =
    let gap = Prng.Rng.exponential rng ~rate:config.arrival_rate in
    let t = time +. gap in
    if t <= config.horizon then Event_queue.add queue ~time:t Arrival
  in
  schedule_arrival 0.;
  let rec schedule_reallocations t =
    if t <= config.horizon then begin
      Event_queue.add queue ~time:t Reallocate;
      schedule_reallocations (t +. config.reallocation_period)
    end
  in
  schedule_reallocations config.reallocation_period;
  record 0.;
  (* Main loop. *)
  let rec loop () =
    match Event_queue.pop_min queue with
    | None -> ()
    | Some (time, event) ->
        advance_to time;
        (match event with
        | Arrival ->
            incr arrivals;
            schedule_arrival time;
            let task = Workload.Google_trace.sample rng in
            let true_cpu =
              config.per_core_need *. float_of_int task.Workload.Google_trace.cores
            in
            let est_cpu =
              if config.max_error = 0. then true_cpu
              else
                Float.max 0.001
                  (true_cpu
                  +. Prng.Rng.uniform_range rng (-.config.max_error)
                       config.max_error)
            in
            let l =
              {
                uid = !next_uid;
                cores = task.cores;
                true_cpu;
                est_cpu;
                memory = config.memory_scale *. task.memory_fraction;
                node = -1;
              }
            in
            incr next_uid;
            if admit l then begin
              incr admitted;
              actives := !actives @ [ l ];
              let lifetime =
                Prng.Rng.exponential rng ~rate:(1. /. config.mean_lifetime)
              in
              if time +. lifetime <= config.horizon then
                Event_queue.add queue ~time:(time +. lifetime)
                  (Departure l.uid)
              (* Services outliving the horizon simply never depart. *)
            end
            else incr rejected
        | Departure uid ->
            incr departures;
            actives := List.filter (fun (l : live) -> l.uid <> uid) !actives
        | Reallocate -> reallocate ());
        record time;
        loop ()
  in
  loop ();
  advance_to config.horizon;
  {
    arrivals = !arrivals;
    admitted = !admitted;
    rejected = !rejected;
    departures = !departures;
    reallocations = !reallocations;
    failed_reallocations = !failed_reallocations;
    migrations = !migrations;
    mean_min_yield = !yield_integral /. config.horizon;
    yield_samples = List.rev !yield_samples;
    final_threshold = current_threshold ();
  }
