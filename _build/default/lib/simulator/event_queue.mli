(** Tiny binary-heap priority queue keyed by event time.

    The discrete-event engine only needs [add] and [pop_min]; ties are
    broken by insertion order so simultaneous events fire
    deterministically. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit

val pop_min : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val size : 'a t -> int

val is_empty : 'a t -> bool
