lib/simulator/engine.mli: Heuristics Model Prng Sharing
