lib/simulator/engine.ml: Array Event_queue Float Heuristics List Model Prng Sharing Vec Workload
