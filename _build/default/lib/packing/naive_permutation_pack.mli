(** Literal D!-list Permutation-Pack (Leinberger et al.'s formulation).

    Executable specification for {!Permutation_pack}: items are split into
    one list per dimension permutation; for each bin the candidate
    permutations are visited in the lexicographic order induced by the bin's
    own dimension ranking, and the first fitting item found wins. Selection
    is provably identical to the fast key-based implementation at full
    window — the test suite checks this on random workloads — but the cost
    per selection is O(D·D!) instead of O(J·D), which the complexity
    ablation bench demonstrates. Only the full-window Permutation flavour is
    provided. *)

val pack :
  ?ranking:Permutation_pack.bin_ranking ->
  bins:Bin.t array ->
  items:Item.t array ->
  unit ->
  bool
(** Same contract as {!Permutation_pack.pack} with [flavour = Permutation]
    and [window = D]. *)
