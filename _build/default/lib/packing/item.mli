(** Packing items.

    An item is a service's resource demand at a fixed yield: the elementary
    vector acts as an admission filter (it must fit a single resource
    element of the bin, and does not accumulate), while the aggregate vector
    is the quantity actually packed. *)

type t = { id : int; demand : Vec.Epair.t }

val v : id:int -> demand:Vec.Epair.t -> t

val size : t -> Vec.Vector.t
(** The vector used by item-sorting strategies: the aggregate demand. *)

val pp : Format.formatter -> t -> unit
