(* All permutations of [0 .. d-1] in lexicographic order. *)
let permutations d =
  let rec gen remaining =
    match remaining with
    | [] -> [ [] ]
    | _ ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) remaining in
            List.map (fun tail -> x :: tail) (gen rest))
          remaining
  in
  gen (List.init d Fun.id)
  |> List.sort compare
  |> List.map Array.of_list

let pack ?(ranking = Permutation_pack.By_load) ~bins ~items () =
  let n_items = Array.length items in
  if n_items = 0 then true
  else begin
    let d = Vec.Epair.dim items.(0).Item.demand in
    let perms = permutations d in
    (* One list (as a mutable queue of indices in item-sorted order) per
       permutation of item dimensions. *)
    let table = Hashtbl.create (List.length perms) in
    List.iter (fun p -> Hashtbl.replace table (Array.to_list p) (ref []))
      perms;
    for j = n_items - 1 downto 0 do
      let p =
        Array.to_list (Vec.Vector.permutation_desc (Item.size items.(j)))
      in
      let cell = Hashtbl.find table p in
      cell := j :: !cell
    done;
    let left = ref n_items in
    let fill_bin bin =
      let rec select () =
        if !left = 0 then ()
        else begin
          let bin_perm =
            match ranking with
            | Permutation_pack.By_load ->
                Vec.Vector.permutation_asc (Bin.load_vector bin)
            | Permutation_pack.By_remaining_capacity ->
                Vec.Vector.permutation_desc (Bin.remaining bin)
          in
          (* Visit item permutations in increasing key order: key kappa maps
             to the item permutation i |-> bin_perm.(kappa i). *)
          let candidate_of kappa =
            Array.map (fun k -> bin_perm.(k)) kappa
          in
          let rec try_lists = function
            | [] -> None
            | kappa :: rest -> (
                let item_perm = Array.to_list (candidate_of kappa) in
                let cell = Hashtbl.find table item_perm in
                let rec first_fit seen = function
                  | [] ->
                      cell := List.rev seen;
                      None
                  | j :: js ->
                      if Bin.fits bin items.(j) then begin
                        cell := List.rev_append seen js;
                        Some j
                      end
                      else first_fit (j :: seen) js
                in
                match first_fit [] !cell with
                | Some j -> Some j
                | None -> try_lists rest)
          in
          match try_lists perms with
          | None -> ()
          | Some j ->
              Bin.place bin items.(j);
              decr left;
              select ()
        end
      in
      select ()
    in
    Array.iter fill_bin bins;
    !left = 0
  end
