type t = { id : int; demand : Vec.Epair.t }

let v ~id ~demand = { id; demand }

let size t = t.demand.Vec.Epair.aggregate

let pp ppf t = Format.fprintf ppf "item#%d %a" t.id Vec.Epair.pp t.demand
