(** First-Fit and Best-Fit vector packing (paper §3.5.1).

    Both walk the items in the caller-provided (already sorted) order.
    First-Fit scans bins in the caller-provided static order and uses the
    first bin that admits the item. Best-Fit re-ranks bins dynamically
    before each item: the homogeneous flavour prefers the bin with the
    largest sum of loads across dimensions; the heterogeneous flavour
    (paper §3.5.4) prefers the bin with the smallest total remaining
    capacity — the two coincide on identical bins and differ on
    heterogeneous ones. *)

type bin_rank = By_load | By_remaining
(** Best-Fit ranking: [By_load] = descending sum of loads (homogeneous VP),
    [By_remaining] = ascending sum of remaining capacity (HVP). *)

val first_fit : bins:Bin.t array -> items:Item.t array -> bool
(** Mutates [bins]; returns false as soon as an item fits nowhere (bins keep
    the partial packing). *)

val best_fit : rank:bin_rank -> bins:Bin.t array -> items:Item.t array -> bool
