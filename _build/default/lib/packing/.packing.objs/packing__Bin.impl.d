lib/packing/bin.ml: Array Epair Float Format Item Vec Vector
