lib/packing/fit.mli: Bin Item
