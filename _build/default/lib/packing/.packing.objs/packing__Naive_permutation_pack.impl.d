lib/packing/naive_permutation_pack.ml: Array Bin Fun Hashtbl Item List Permutation_pack Vec
