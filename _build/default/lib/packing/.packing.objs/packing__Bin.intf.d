lib/packing/bin.mli: Format Item Vec
