lib/packing/permutation_pack.ml: Array Bin Item Vec
