lib/packing/item.ml: Format Vec
