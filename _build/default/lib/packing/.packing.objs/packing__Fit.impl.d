lib/packing/fit.ml: Array Bin
