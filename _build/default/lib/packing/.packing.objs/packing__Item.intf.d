lib/packing/item.mli: Format Vec
