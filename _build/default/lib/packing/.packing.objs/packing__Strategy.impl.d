lib/packing/strategy.ml: Array Bin Fit Item List Permutation_pack Printf Vec
