lib/packing/strategy.mli: Bin Item Permutation_pack Vec
