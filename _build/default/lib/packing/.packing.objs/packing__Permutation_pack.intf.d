lib/packing/permutation_pack.mli: Bin Item
