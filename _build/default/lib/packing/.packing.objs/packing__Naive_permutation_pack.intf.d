lib/packing/naive_permutation_pack.mli: Bin Item Permutation_pack
