type t = {
  id : int;
  capacity : Vec.Epair.t;
  load : float array;
  mutable contents : int list;
}

let v ~id ~capacity =
  { id; capacity; load = Array.make (Vec.Epair.dim capacity) 0.; contents = [] }

let dim t = Vec.Epair.dim t.capacity

let fits t (item : Item.t) =
  let open Vec in
  Vector.fits item.demand.Epair.elementary t.capacity.Epair.elementary
  &&
  let d = Array.length t.load in
  let rec loop i =
    if i >= d then true
    else
      let cap = Vector.get t.capacity.Epair.aggregate i in
      let tol = Vector.eps *. Float.max 1. cap in
      t.load.(i) +. Vector.get item.demand.Epair.aggregate i <= cap +. tol
      && loop (i + 1)
  in
  loop 0

let place t (item : Item.t) =
  let open Vec in
  for i = 0 to Array.length t.load - 1 do
    t.load.(i) <- t.load.(i) +. Vector.get item.demand.Epair.aggregate i
  done;
  t.contents <- item.id :: t.contents

let load_vector t = Vec.Vector.of_array t.load

let remaining t =
  let open Vec in
  Vector.init (Array.length t.load) (fun i ->
      Float.max 0. (Vector.get t.capacity.Epair.aggregate i -. t.load.(i)))

let load_sum t = Array.fold_left ( +. ) 0. t.load

let remaining_sum t = Vec.Vector.sum (remaining t)

let size t = t.capacity.Vec.Epair.aggregate

let pp ppf t =
  Format.fprintf ppf "bin#%d cap %a load %a" t.id Vec.Epair.pp t.capacity
    Vec.Vector.pp (load_vector t)
