(** Mutable packing bins.

    A bin is a node's capacity pair plus the aggregate load accumulated so
    far. Bins are heterogeneous: each carries its own elementary and
    aggregate capacities (paper §3.5.4). *)

type t = private {
  id : int;
  capacity : Vec.Epair.t;
  load : float array;  (** aggregate load per dimension, mutated by [place] *)
  mutable contents : int list;  (** item ids, most recent first *)
}

val v : id:int -> capacity:Vec.Epair.t -> t
(** Fresh empty bin. *)

val dim : t -> int

val fits : t -> Item.t -> bool
(** Admission test: the item's elementary demand fits the bin's elementary
    capacity and current load plus the item's aggregate demand fits the
    aggregate capacity (library tolerance). *)

val place : t -> Item.t -> unit
(** Add the item. Does not re-check {!fits}. *)

val load_vector : t -> Vec.Vector.t
(** Current aggregate load (copy). *)

val remaining : t -> Vec.Vector.t
(** Aggregate capacity minus load, clamped at 0 (copy). *)

val load_sum : t -> float
(** Sum of loads across dimensions (Best-Fit's homogeneous criterion). *)

val remaining_sum : t -> float
(** Sum of remaining aggregate capacity (Best-Fit's heterogeneous
    criterion). *)

val size : t -> Vec.Vector.t
(** The vector used by bin-sorting strategies: aggregate capacity. *)

val pp : Format.formatter -> t -> unit
