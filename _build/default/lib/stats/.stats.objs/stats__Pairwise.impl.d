lib/stats/pairwise.ml: Array Float
