lib/stats/series.ml: Array Buffer Float Hashtbl List Printf String
