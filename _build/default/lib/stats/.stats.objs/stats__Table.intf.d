lib/stats/table.mli:
