lib/stats/pairwise.mli:
