lib/stats/series.mli:
