lib/stats/table.ml: List String
