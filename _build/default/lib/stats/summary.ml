type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Summary.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let m = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
    /. float_of_int (Array.length xs)
  in
  sqrt var

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0. then 0. else stddev xs /. m

let of_array xs =
  if Array.length xs = 0 then invalid_arg "Summary.of_array: empty";
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min infinity xs;
    max = Array.fold_left Float.max neg_infinity xs;
  }

let of_list l = of_array (Array.of_list l)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = percentile xs 50.

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" t.count
    t.mean t.stddev t.min t.max
