(** (x, y) data series with per-x aggregation — the data behind the paper's
    figures. *)

type point = { x : float; mean : float; count : int }

val aggregate : (float * float) list -> point list
(** Group samples by x (exact match) and average; points sorted by x. *)

val to_csv : header:string * string -> point list -> string
(** Two-column CSV ["x,<name>"] of the aggregated means. *)

val render :
  ?width:int -> ?height:int -> label:string -> (float * float) list -> string
(** Crude ASCII dot-plot of raw samples (x on the horizontal axis), good
    enough to eyeball a trend in a terminal; experiment drivers emit CSV
    alongside for real plotting. *)
