type comparison = {
  yield_diff_pct : float option;
  success_diff_pct : float;
  both_succeed : int;
  only_a : int;
  only_b : int;
  neither : int;
}

let compare ~a ~b =
  let n = Array.length a in
  if n = 0 then invalid_arg "Pairwise.compare: empty";
  if Array.length b <> n then invalid_arg "Pairwise.compare: length mismatch";
  let both = ref 0 and only_a = ref 0 and only_b = ref 0 and neither = ref 0 in
  let diff_sum = ref 0. and diff_count = ref 0 in
  for i = 0 to n - 1 do
    match (a.(i), b.(i)) with
    | Some ya, Some yb ->
        incr both;
        (* Relative difference is undefined against a ~zero baseline; such
           instances are skipped for Y (they still count for S). *)
        if Float.abs yb > 1e-9 then begin
          diff_sum := !diff_sum +. ((ya -. yb) /. yb *. 100.);
          incr diff_count
        end
    | Some _, None -> incr only_a
    | None, Some _ -> incr only_b
    | None, None -> incr neither
  done;
  let pct k = 100. *. float_of_int k /. float_of_int n in
  {
    yield_diff_pct =
      (if !diff_count = 0 then None
       else Some (!diff_sum /. float_of_int !diff_count));
    success_diff_pct = pct !only_a -. pct !only_b;
    both_succeed = !both;
    only_a = !only_a;
    only_b = !only_b;
    neither = !neither;
  }

let matrix ~names ~results =
  let n = Array.length names in
  if Array.length results <> n then
    invalid_arg "Pairwise.matrix: names/results mismatch";
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j then
        out :=
          (names.(i), names.(j), compare ~a:results.(i) ~b:results.(j))
          :: !out
    done
  done;
  !out
