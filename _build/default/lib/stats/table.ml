type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map (fun _ -> 0) t.headers)
      all
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let rstrip s =
    let len = String.length s in
    let rec last i = if i > 0 && s.[i - 1] = ' ' then last (i - 1) else i in
    String.sub s 0 (last len)
  in
  let line row = rstrip (String.concat "  " (List.map2 pad widths row)) in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line t.headers :: sep :: List.map line rows)

let print t =
  print_string (render t);
  print_newline ()
