type point = { x : float; mean : float; count : int }

let aggregate samples =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (x, y) ->
      let sum, count =
        match Hashtbl.find_opt tbl x with
        | Some (s, c) -> (s +. y, c + 1)
        | None -> (y, 1)
      in
      Hashtbl.replace tbl x (sum, count))
    samples;
  Hashtbl.fold (fun x (sum, count) acc ->
      { x; mean = sum /. float_of_int count; count } :: acc)
    tbl []
  |> List.sort (fun a b -> Float.compare a.x b.x)

let to_csv ~header points =
  let hx, hy = header in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s,%s\n" hx hy);
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%g,%g\n" p.x p.mean))
    points;
  Buffer.contents buf

let render ?(width = 72) ?(height = 16) ~label samples =
  match samples with
  | [] -> Printf.sprintf "%s: (no data)" label
  | _ ->
      let xs = List.map fst samples and ys = List.map snd samples in
      let fmin = List.fold_left Float.min infinity in
      let fmax = List.fold_left Float.max neg_infinity in
      let xmin = fmin xs and xmax = fmax xs in
      let ymin = Float.min 0. (fmin ys) and ymax = Float.max (fmax ys) 1e-9 in
      let grid = Array.make_matrix height width ' ' in
      let place (x, y) =
        let xr = if xmax > xmin then (x -. xmin) /. (xmax -. xmin) else 0.5 in
        let yr = if ymax > ymin then (y -. ymin) /. (ymax -. ymin) else 0.5 in
        let col = min (width - 1) (int_of_float (xr *. float_of_int (width - 1))) in
        let row =
          height - 1
          - min (height - 1) (int_of_float (yr *. float_of_int (height - 1)))
        in
        grid.(row).(col) <- '*'
      in
      List.iter place samples;
      let buf = Buffer.create (width * height) in
      Buffer.add_string buf
        (Printf.sprintf "%s  (x: %.3g..%.3g, y: %.3g..%.3g)\n" label xmin xmax
           ymin ymax);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (String.init width (fun i -> row.(i)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.contents buf
