(** Plain-text table rendering for the experiment reports. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the row width differs from the
    headers. *)

val render : t -> string
(** Monospace table with a header separator; columns padded to content. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
