(** Summary statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on the empty array. *)

val of_list : float list -> t

val mean : float array -> float
val stddev : float array -> float
val coefficient_of_variation : float array -> float
(** stddev / mean; 0 when the mean is 0. *)

val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation. *)

val pp : Format.formatter -> t -> unit
