(** The paper's pairwise comparison metrics (§5).

    For algorithms A and B evaluated on the same instance set, with
    per-instance results [None] (failure) or [Some yield]:

    - [Y_{A,B}]: average percent minimum-yield difference of A relative to
      B, over instances where both succeed;
    - [S_{A,B}]: percentage of instances where A succeeds and B fails,
      minus the percentage where B succeeds and A fails.

    Positive values favour A. *)

type comparison = {
  yield_diff_pct : float option;
      (** [Y_{A,B}] in percent; [None] when no instance is solved by both
          (or every common success has yield ~0 for B, which would make the
          relative difference meaningless). *)
  success_diff_pct : float;  (** [S_{A,B}] in percent *)
  both_succeed : int;
  only_a : int;
  only_b : int;
  neither : int;
}

val compare : a:float option array -> b:float option array -> comparison
(** Raises [Invalid_argument] on length mismatch or empty input. *)

val matrix :
  names:string array ->
  results:float option array array ->
  (string * string * comparison) list
(** All ordered pairs (A ≠ B), row-major — the layout of Table 1. [results]
    is indexed `[algorithm].[instance]`. *)
