lib/experiments/theorem_check.ml: Array List Printf Prng Sharing Stats
