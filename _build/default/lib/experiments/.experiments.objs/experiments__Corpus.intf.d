lib/experiments/corpus.mli: Model Prng
