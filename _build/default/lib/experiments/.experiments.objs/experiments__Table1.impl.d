lib/experiments/table1.ml: Array Buffer Corpus Heuristics List Option Printf Scale Stats Unix
