lib/experiments/corpus.ml: Hashtbl List Prng Workload
