lib/experiments/success_rate.mli:
