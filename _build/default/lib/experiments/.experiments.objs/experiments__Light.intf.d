lib/experiments/light.mli: Scale
