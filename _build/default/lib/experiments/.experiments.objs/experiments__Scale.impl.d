lib/experiments/scale.ml: List Printf Sys
