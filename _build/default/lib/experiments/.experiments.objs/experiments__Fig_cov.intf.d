lib/experiments/fig_cov.mli: Scale
