lib/experiments/success_rate.ml: Buffer Corpus Heuristics List Printf Stats
