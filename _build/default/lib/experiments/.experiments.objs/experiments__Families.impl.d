lib/experiments/families.ml: Array Buffer Corpus Heuristics List Option Printf Scale Sharing Stats Workload
