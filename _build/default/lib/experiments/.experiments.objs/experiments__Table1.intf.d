lib/experiments/table1.mli: Scale
