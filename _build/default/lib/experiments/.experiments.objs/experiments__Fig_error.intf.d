lib/experiments/fig_error.mli: Scale
