lib/experiments/fig_error.ml: Buffer Corpus Float Hashtbl Heuristics List Option Printf Prng Scale Sharing Stats Workload
