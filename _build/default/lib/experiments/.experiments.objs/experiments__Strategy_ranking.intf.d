lib/experiments/strategy_ranking.mli: Packing
