lib/experiments/ablation.ml: Array Corpus Heuristics List Packing Printf Prng Stats String Unix Vec Workload
