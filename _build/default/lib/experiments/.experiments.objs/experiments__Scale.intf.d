lib/experiments/scale.mli:
