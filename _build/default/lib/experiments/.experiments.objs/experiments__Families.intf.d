lib/experiments/families.mli: Scale
