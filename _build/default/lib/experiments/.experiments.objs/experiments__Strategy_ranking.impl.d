lib/experiments/strategy_ranking.ml: Buffer Corpus Float Heuristics List Packing Printf Stats
