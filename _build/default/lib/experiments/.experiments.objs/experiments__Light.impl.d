lib/experiments/light.ml: Corpus Heuristics List Printf Scale Unix
