lib/experiments/fig_cov.ml: Buffer Corpus Float Heuristics List Option Printf Scale Stats
