lib/experiments/theorem_check.mli:
