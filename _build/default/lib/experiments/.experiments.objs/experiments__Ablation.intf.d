lib/experiments/ablation.mli:
