(** Reproduction of the §5.1 methodology that produced METAHVPLIGHT.

    The paper filtered the 253 heterogeneous vector-packing strategies by
    running all of them on the full corpus, sorting "first by success rate,
    then by average achieved minimum yield", and reading the trends off the
    top 50 per dataset (which item orders and bin orders dominate). This
    driver re-runs exactly that ranking on a corpus and reports the top-N,
    letting the reader check the trends the LIGHT subset is built from:
    descending MAX/SUM/MAXDIFFERENCE(/MAXRATIO) item orders, ascending
    LEX/MAX/SUM plus a few descending bin orders, and all three algorithm
    families represented. *)

type row = {
  strategy : Packing.Strategy.t;
  name : string;
  successes : int;
  n_instances : int;
  mean_yield : float;  (** over its own successes; 0 when none *)
  in_light_subset : bool;
}

val run :
  ?progress:(string -> unit) ->
  ?hosts:int ->
  ?services:int ->
  ?covs:float list ->
  ?slacks:float list ->
  ?reps:int ->
  unit ->
  row list
(** All 253 HVP strategies, each binary-searched on every corpus instance;
    rows sorted by (success rate desc, mean yield desc). Defaults give a
    ~60-instance corpus at 10 hosts / 40 services. *)

val report : ?top:int -> row list -> string
(** The top-N table (default 25) plus how many of them belong to the LIGHT
    subset. *)
