(** §5.1 comparison: METAHVPLIGHT vs METAHVP — near-identical solution
    quality at a fraction of the run time. *)

type result = {
  hosts : int;
  services : int;
  n_instances : int;
  both_solved : int;
  only_hvp : int;
  only_light : int;
  mean_yield_hvp : float;  (** over instances both solve *)
  mean_yield_light : float;
  mean_time_hvp : float;
  mean_time_light : float;
}

val run : ?progress:(string -> unit) -> Scale.t -> result

val report : result -> string
