type spec = {
  hosts : int;
  services : int;
  cov : float;
  slack : float;
  cpu_homogeneous : bool;
  mem_homogeneous : bool;
  rep : int;
}

(* Stable parameter hash: Hashtbl.hash over the flattened tuple is stable
   for a given OCaml version, which is enough for within-run reproducibility
   and cross-run stability on the pinned toolchain. *)
let seed_of_spec spec =
  Hashtbl.hash
    ( spec.hosts,
      spec.services,
      int_of_float (spec.cov *. 1000.),
      int_of_float (spec.slack *. 1000.),
      spec.cpu_homogeneous,
      spec.mem_homogeneous,
      spec.rep )

let rng_of_spec spec = Prng.Rng.create ~seed:(seed_of_spec spec)

let instance spec =
  let config =
    {
      Workload.Generator.hosts = spec.hosts;
      services = spec.services;
      cov = spec.cov;
      slack = spec.slack;
      cpu_homogeneous = spec.cpu_homogeneous;
      mem_homogeneous = spec.mem_homogeneous;
    }
  in
  Workload.Generator.generate ~rng:(rng_of_spec spec) config

let sweep ~hosts ~services ~covs ~slacks ~reps ?(cpu_homogeneous = false)
    ?(mem_homogeneous = false) () =
  List.concat_map
    (fun cov ->
      List.concat_map
        (fun slack ->
          List.init reps (fun rep ->
              let spec =
                {
                  hosts;
                  services;
                  cov;
                  slack;
                  cpu_homogeneous;
                  mem_homogeneous;
                  rep;
                }
              in
              (spec, instance spec)))
        slacks)
    covs
