type cell = {
  algorithm : string;
  slack : float;
  solved : int;
  total : int;
}

(* Defaults use 1.5 services per node — the paper's hardest consolidation
   ratio (Table 1's 100-service scenario): few, large memory items make the
   packing feasibility genuinely tight. With many small items even 5% slack
   packs trivially. *)
let run ?(progress = fun _ -> ()) ?(hosts = 10) ?(services = 15)
    ?(slacks = [ 0.05; 0.1; 0.2; 0.3; 0.5 ]) ?(covs = [ 0.5; 1.0 ])
    ?(reps = 5) () =
  let algorithms =
    [
      Heuristics.Algorithms.rrnz ~seed:1;
      Heuristics.Algorithms.metagreedy;
      Heuristics.Algorithms.metavp;
      Heuristics.Algorithms.metahvp;
    ]
  in
  List.concat_map
    (fun slack ->
      progress (Printf.sprintf "success-rate: slack %.2f" slack);
      let instances =
        Corpus.sweep ~hosts ~services ~covs ~slacks:[ slack ] ~reps ()
      in
      let total = List.length instances in
      List.map
        (fun (algo : Heuristics.Algorithms.t) ->
          let solved =
            List.length
              (List.filter (fun (_, inst) -> algo.solve inst <> None)
                 instances)
          in
          { algorithm = algo.name; slack; solved; total })
        algorithms)
    slacks

let report cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "== Success rate vs memory slack (hardness cliff) ==\n";
  let algorithms =
    List.sort_uniq compare (List.map (fun c -> c.algorithm) cells)
  in
  let slacks = List.sort_uniq compare (List.map (fun c -> c.slack) cells) in
  let table =
    Stats.Table.create ~headers:("slack" :: algorithms)
  in
  List.iter
    (fun slack ->
      let row =
        List.map
          (fun algorithm ->
            match
              List.find_opt
                (fun c -> c.algorithm = algorithm && c.slack = slack)
                cells
            with
            | Some c -> Printf.sprintf "%d/%d" c.solved c.total
            | None -> "n/a")
          algorithms
      in
      Stats.Table.add_row table (Printf.sprintf "%.2f" slack :: row))
    slacks;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf
    "\nPaper's shape: success rates collapse as slack shrinks. At this \
     scale the deterministic search families (greedy, VP, HVP) find the \
     same feasible sets — the separation shows against randomized \
     rounding (RRNZ), as in Table 1's S column.\n";
  Buffer.contents buf
