(** Empirical illustration of Theorem 1: the EQUALWEIGHTS competitive ratio
    bound (2J−1)/J², tight on the adversarial instance. *)

type row = {
  j : int;
  bound : float;
  worst_case_ratio : float;  (** on the tight instance n = (1, 1/J, ...) *)
  min_random_ratio : float;  (** worst ratio seen over random instances *)
}

val run : ?random_per_j:int -> ?js:int list -> unit -> row list
(** Defaults: J in 2..10, 200 random single-node instances per J. *)

val report : row list -> string
