type row = {
  j : int;
  bound : float;
  worst_case_ratio : float;
  min_random_ratio : float;
}

let run ?(random_per_j = 200) ?(js = List.init 9 (fun i -> i + 2)) () =
  let rng = Prng.Rng.create ~seed:271828 in
  List.map
    (fun j ->
      let bound = Sharing.Theorem.bound j in
      let worst_case_ratio =
        Sharing.Theorem.competitive_ratio
          ~needs:(Sharing.Theorem.worst_case_instance j)
      in
      let min_random_ratio = ref 1. in
      for _ = 1 to random_per_j do
        (* Needs are capped at 1: a service's need is defined as the
           allocation achieving full performance on the reference machine,
           so it cannot exceed that machine's capacity — the theorem's
           proof relies on this (both cases use n̂ <= 1). *)
        let needs =
          Array.init j (fun _ -> Prng.Rng.uniform_range rng 0.01 1.0)
        in
        let ratio = Sharing.Theorem.competitive_ratio ~needs in
        if ratio < !min_random_ratio then min_random_ratio := ratio
      done;
      { j; bound; worst_case_ratio; min_random_ratio = !min_random_ratio })
    js

let report rows =
  let table =
    Stats.Table.create
      ~headers:
        [ "J"; "(2J-1)/J^2"; "tight-instance ratio"; "worst random ratio" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          string_of_int r.j;
          Printf.sprintf "%.4f" r.bound;
          Printf.sprintf "%.4f" r.worst_case_ratio;
          Printf.sprintf "%.4f" r.min_random_ratio;
        ])
    rows;
  "== Theorem 1: EQUALWEIGHTS competitiveness (single node, single \
   resource) ==\n"
  ^ Stats.Table.render table
  ^ "\nThe tight-instance ratio matches the bound; random instances never \
     fall below it.\n"
