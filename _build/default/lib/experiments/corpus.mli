(** Instance corpus construction shared by the experiment drivers.

    Every instance is generated from an independent RNG stream derived from
    a stable hash of its parameters, so results are reproducible point-wise:
    adding scenarios or changing sweep order never changes any individual
    instance. *)

type spec = {
  hosts : int;
  services : int;
  cov : float;
  slack : float;
  cpu_homogeneous : bool;
  mem_homogeneous : bool;
  rep : int;  (** repetition index within identical parameters *)
}

val instance : spec -> Model.Instance.t

val sweep :
  hosts:int ->
  services:int ->
  covs:float list ->
  slacks:float list ->
  reps:int ->
  ?cpu_homogeneous:bool ->
  ?mem_homogeneous:bool ->
  unit ->
  (spec * Model.Instance.t) list

val rng_of_spec : spec -> Prng.Rng.t
(** The derived stream (exposed so error experiments can draw perturbations
    tied to the same spec). *)
