type row = {
  strategy : Packing.Strategy.t;
  name : string;
  successes : int;
  n_instances : int;
  mean_yield : float;
  in_light_subset : bool;
}

let run ?(progress = fun _ -> ()) ?(hosts = 10) ?(services = 40)
    ?(covs = [ 0.25; 0.75 ]) ?(slacks = [ 0.3; 0.6 ]) ?(reps = 3) () =
  let instances = Corpus.sweep ~hosts ~services ~covs ~slacks ~reps () in
  let n = List.length instances in
  let light_names =
    List.map Packing.Strategy.name Packing.Strategy.hvp_light
  in
  let total = List.length Packing.Strategy.hvp_all in
  List.mapi
    (fun i strategy ->
      if (i + 1) mod 50 = 0 then
        progress (Printf.sprintf "strategy ranking: %d/%d strategies" (i + 1)
                    total);
      let successes = ref 0 and yield_sum = ref 0. in
      List.iter
        (fun (_, inst) ->
          match Heuristics.Vp_solver.solve strategy inst with
          | Some sol ->
              incr successes;
              yield_sum := !yield_sum +. sol.min_yield
          | None -> ())
        instances;
      let name = Packing.Strategy.name strategy in
      {
        strategy;
        name;
        successes = !successes;
        n_instances = n;
        mean_yield =
          (if !successes = 0 then 0.
           else !yield_sum /. float_of_int !successes);
        in_light_subset = List.mem name light_names;
      })
    Packing.Strategy.hvp_all
  |> List.sort (fun a b ->
         match compare b.successes a.successes with
         | 0 -> Float.compare b.mean_yield a.mean_yield
         | c -> c)

let report ?(top = 25) rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "== §5.1 methodology: the %d HVP strategies ranked by (success \
        rate, mean yield) ==\n"
       (List.length rows));
  let table =
    Stats.Table.create
      ~headers:[ "rank"; "strategy"; "solved"; "mean yield"; "in LIGHT" ]
  in
  List.iteri
    (fun i r ->
      if i < top then
        Stats.Table.add_row table
          [
            string_of_int (i + 1);
            r.name;
            Printf.sprintf "%d/%d" r.successes r.n_instances;
            Printf.sprintf "%.4f" r.mean_yield;
            (if r.in_light_subset then "yes" else "no");
          ])
    rows;
  Buffer.add_string buf (Stats.Table.render table);
  let in_light =
    List.filteri (fun i _ -> i < top) rows
    |> List.filter (fun r -> r.in_light_subset)
    |> List.length
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n%d of the top %d strategies are in the METAHVPLIGHT subset.\n\
        Paper's trends: BF/FF/PP all present; descending MAX / SUM / \
        MAXDIFFERENCE item orders dominate;\nascending LEX / MAX / SUM bin \
        orders are common, with some descending and unsorted entries.\n"
       in_light top);
  Buffer.contents buf
