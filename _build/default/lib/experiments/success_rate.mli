(** Success rate vs memory slack.

    The paper's instance hardness is controlled by the memory slack
    (§4: "a low value corresponding to a more difficult instance"), and
    much of Table 1's signal is in success rates (e.g. METAVP solves
    15,376 of 36,900 100-service instances). This driver plots the success
    rate of each major algorithm against slack, making the hardness cliff —
    and which algorithms push it left — directly visible. *)

type cell = {
  algorithm : string;
  slack : float;
  solved : int;
  total : int;
}

val run :
  ?progress:(string -> unit) ->
  ?hosts:int ->
  ?services:int ->
  ?slacks:float list ->
  ?covs:float list ->
  ?reps:int ->
  unit ->
  cell list
(** Defaults: 10 hosts, 40 services, slacks 0.05–0.5, covs {0.5, 1.0},
    3 reps; algorithms METAGREEDY, METAVP, METAHVP (LP-based ones are too
    slow for a sweep and dominated anyway). *)

val report : cell list -> string
