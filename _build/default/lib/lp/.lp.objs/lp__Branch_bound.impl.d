lib/lp/branch_bound.ml: Array Float Problem Simplex
