(** Two-phase dense primal simplex.

    Solves the rational relaxation of a {!Problem.t} (integrality flags are
    ignored — use {!Branch_bound} for MILPs). The implementation is the
    classic full-tableau method:

    - variable lower bounds are shifted out and finite upper bounds become
      explicit rows, so the working form is [min c'x, Ax {<=,>=,=} b, x >= 0];
    - phase 1 minimizes the sum of artificial variables to find a basic
      feasible solution; phase 2 optimizes the real objective;
    - Dantzig pricing with an automatic permanent switch to Bland's rule
      after an iteration budget, guaranteeing termination.

    The dense tableau is O((m+u)·(n+m)) memory for [m] constraints, [u]
    finite upper bounds and [n] variables, which is ample for the
    reduced-size instances the LP-based algorithms of the paper (RRND/RRNZ,
    exact bounds) are exercised on; see DESIGN.md §3. *)

type solution = { objective : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

val solve : ?max_iterations:int -> Problem.t -> result
(** Solve the LP relaxation. [max_iterations] defaults to
    [max 20_000 (50 * (m + n))]; if exhausted the solver raises [Failure]
    (never observed on the test corpus — the bound is an anti-hang guard). *)

val feasibility_tol : float
(** Tolerance used to declare phase-1 success and to clean near-zero values
    in the returned point. *)
