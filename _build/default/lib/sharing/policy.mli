(** Per-node CPU allocation policies under estimation error (paper §6).

    Once services are mapped to a node using {e estimated} needs, the node
    must divide its actual CPU among them while their {e true} needs unfold:

    - [Alloc_caps]: hard caps at the estimated optimal allocation. Not
      work-conserving — over-estimated services strand capacity, and
      under-estimated ones starve at their cap.
    - [Alloc_weights]: the estimated optimal allocations become weights of
      the work-conserving scheduler.
    - [Equal_weights]: work-conserving scheduler with identical weights —
      uses no estimate information at all (and is the policy of Theorem 1).

    Yields are CPU yields: consumption divided by true need (1 for services
    with no CPU need). *)

type t = Alloc_caps | Alloc_weights | Equal_weights

val name : t -> string

val consumptions :
  t ->
  capacity:float ->
  estimated_allocations:float array ->
  true_needs:float array ->
  float array
(** Actual CPU consumption of each service on one node. *)

val yields :
  t ->
  capacity:float ->
  estimated_allocations:float array ->
  true_needs:float array ->
  float array
(** Per-service achieved yields, each in [0, 1]. *)

val min_yield :
  t ->
  capacity:float ->
  estimated_allocations:float array ->
  true_needs:float array ->
  float
(** Minimum of {!yields} (1. for an empty node). *)
