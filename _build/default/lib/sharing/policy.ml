type t = Alloc_caps | Alloc_weights | Equal_weights

let name = function
  | Alloc_caps -> "ALLOCCAPS"
  | Alloc_weights -> "ALLOCWEIGHTS"
  | Equal_weights -> "EQUALWEIGHTS"

let consumptions policy ~capacity ~estimated_allocations ~true_needs =
  let j_count = Array.length true_needs in
  if Array.length estimated_allocations <> j_count then
    invalid_arg "Policy.consumptions: length mismatch";
  match policy with
  | Alloc_caps ->
      Array.init j_count (fun j ->
          Float.min estimated_allocations.(j) true_needs.(j))
  | Alloc_weights ->
      let weights =
        (* Degenerate all-zero estimates (every service estimated at zero
           need) fall back to equal sharing, which is what a
           work-conserving scheduler does with uniform default weights. *)
        if Array.for_all (fun w -> w <= 0.) estimated_allocations then
          Array.make j_count 1.
        else estimated_allocations
      in
      Work_conserving.allocate ~capacity ~weights ~needs:true_needs
  | Equal_weights ->
      Work_conserving.allocate ~capacity
        ~weights:(Array.make j_count 1.)
        ~needs:true_needs

let yields policy ~capacity ~estimated_allocations ~true_needs =
  let alloc =
    consumptions policy ~capacity ~estimated_allocations ~true_needs
  in
  Array.mapi
    (fun j a ->
      if true_needs.(j) <= 0. then 1.
      else Float.min 1. (a /. true_needs.(j)))
    alloc

let min_yield policy ~capacity ~estimated_allocations ~true_needs =
  let ys = yields policy ~capacity ~estimated_allocations ~true_needs in
  Array.fold_left Float.min 1. ys
