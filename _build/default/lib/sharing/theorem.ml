let bound j =
  if j <= 0 then invalid_arg "Theorem.bound: J must be positive";
  let j = float_of_int j in
  ((2. *. j) -. 1.) /. (j *. j)

let optimal_min_yield ~needs =
  let total = Array.fold_left ( +. ) 0. needs in
  if total <= 0. then 1. else Float.min 1. (1. /. total)

let equal_weights_min_yield ~needs =
  let j_count = Array.length needs in
  if j_count = 0 then 1.
  else begin
    let alloc =
      Work_conserving.allocate ~capacity:1.
        ~weights:(Array.make j_count 1.)
        ~needs
    in
    let worst = ref 1. in
    Array.iteri
      (fun j a ->
        if needs.(j) > 0. then
          worst := Float.min !worst (Float.min 1. (a /. needs.(j))))
      alloc;
    !worst
  end

let competitive_ratio ~needs =
  let opt = optimal_min_yield ~needs in
  if opt <= 0. then 1. else equal_weights_min_yield ~needs /. opt

let worst_case_instance j =
  if j <= 0 then invalid_arg "Theorem.worst_case_instance: J must be positive";
  Array.init j (fun i -> if i = 0 then 1. else 1. /. float_of_int j)
