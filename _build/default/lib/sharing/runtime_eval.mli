(** Evaluation of placements computed from erroneous estimates (paper §6.2).

    The scheduler plans on the {e estimated} instance; the platform executes
    the {e true} one. CPU (dimension 0) is the dynamic resource shared by a
    {!Policy}; memory is rigid and identical in both instances, so a
    placement that is requirement-feasible for one is for the other. Yields
    here are CPU yields on the aggregate dimension — the elementary
    dimension caps planning (through METAHVP) but not the run-time
    scheduler, matching the paper's scalar scheduler model. *)

val estimated_allocations :
  Model.Instance.t -> Model.Placement.t -> float array option
(** Per-service planned aggregate CPU allocation [rᵃ + y·nᵃ] where [y] are
    the water-filled yields of the placement on the (estimated) instance.
    [None] if the placement is infeasible. *)

val consumptions :
  Policy.t ->
  true_instance:Model.Instance.t ->
  estimated:Model.Instance.t ->
  Model.Placement.t ->
  float array option
(** Per-service actual CPU consumption beyond the rigid requirement when
    each node divides its CPU under the given policy. Indexed by service
    id. *)

val actual_yields :
  Policy.t ->
  true_instance:Model.Instance.t ->
  estimated:Model.Instance.t ->
  Model.Placement.t ->
  float array option
(** Per-service achieved CPU yields, each in [0, 1]. *)

val actual_min_yield :
  Policy.t ->
  true_instance:Model.Instance.t ->
  estimated:Model.Instance.t ->
  Model.Placement.t ->
  float option
(** Minimum achieved CPU yield across all services. *)
