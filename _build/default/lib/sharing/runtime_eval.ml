let cpu_dim = 0

let estimated_allocations estimated placement =
  match Model.Placement.water_fill estimated placement with
  | None -> None
  | Some alloc ->
      Some
        (Array.init (Model.Instance.n_services estimated) (fun j ->
             let s = Model.Instance.service estimated j in
             let demand =
               Model.Service.demand_at_yield s alloc.Model.Placement.yields.(j)
             in
             Vec.Vector.get demand.Vec.Epair.aggregate cpu_dim))

let consumptions policy ~true_instance ~estimated placement =
  match estimated_allocations estimated placement with
  | None -> None
  | Some est_alloc ->
      let open Vec in
      let out = Array.make (Model.Instance.n_services true_instance) 0. in
      let groups = Model.Placement.group_by_node true_instance placement in
      Array.iteri
        (fun h services ->
          match services with
          | [] -> ()
          | _ ->
              let node = Model.Instance.node true_instance h in
              let capacity =
                Vector.get node.Model.Node.capacity.Epair.aggregate cpu_dim
              in
              let req (s : Model.Service.t) =
                Vector.get s.requirement.Epair.aggregate cpu_dim
              in
              let reqs = List.map req services in
              let shared_capacity =
                Float.max 0. (capacity -. List.fold_left ( +. ) 0. reqs)
              in
              let true_needs =
                Array.of_list
                  (List.map
                     (fun (s : Model.Service.t) ->
                       Vector.get s.need.Epair.aggregate cpu_dim)
                     services)
              in
              (* The rigid requirement is granted unconditionally; policies
                 share only the remainder, so planned allocations enter as
                 their need component. *)
              let est_needs_alloc =
                Array.of_list
                  (List.map2
                     (fun (s : Model.Service.t) r ->
                       Float.max 0. (est_alloc.(s.Model.Service.id) -. r))
                     services reqs)
              in
              let cons =
                Policy.consumptions policy ~capacity:shared_capacity
                  ~estimated_allocations:est_needs_alloc ~true_needs
              in
              List.iteri
                (fun i (s : Model.Service.t) ->
                  out.(s.Model.Service.id) <- cons.(i))
                services)
        groups;
      Some out

let actual_yields policy ~true_instance ~estimated placement =
  match consumptions policy ~true_instance ~estimated placement with
  | None -> None
  | Some cons ->
      Some
        (Array.mapi
           (fun j c ->
             let s = Model.Instance.service true_instance j in
             let need =
               Vec.Vector.get s.Model.Service.need.Vec.Epair.aggregate cpu_dim
             in
             if need <= 0. then 1. else Float.min 1. (c /. need))
           cons)

let actual_min_yield policy ~true_instance ~estimated placement =
  match actual_yields policy ~true_instance ~estimated placement with
  | None -> None
  | Some ys -> Some (Array.fold_left Float.min 1. ys)
