lib/sharing/theorem.mli:
