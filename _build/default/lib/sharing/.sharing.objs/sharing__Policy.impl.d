lib/sharing/policy.ml: Array Float Work_conserving
