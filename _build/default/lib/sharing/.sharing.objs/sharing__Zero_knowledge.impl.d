lib/sharing/zero_knowledge.ml: Array Epair Float Model Vec Vector
