lib/sharing/adaptive_threshold.ml: Array Float
