lib/sharing/runtime_eval.ml: Array Epair Float List Model Policy Vec Vector
