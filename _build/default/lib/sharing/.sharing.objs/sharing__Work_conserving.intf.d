lib/sharing/work_conserving.mli:
