lib/sharing/theorem.ml: Array Float Work_conserving
