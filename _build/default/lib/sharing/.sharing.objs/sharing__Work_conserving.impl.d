lib/sharing/work_conserving.ml: Array Float
