lib/sharing/zero_knowledge.mli: Model
