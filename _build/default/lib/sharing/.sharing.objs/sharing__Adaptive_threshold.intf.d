lib/sharing/adaptive_threshold.mli:
