lib/sharing/policy.mli:
