lib/sharing/runtime_eval.mli: Model Policy
