(** Work-conserving weighted CPU scheduler (paper §6).

    Models the work-conserving mode of modern hypervisor CPU schedulers:
    each competing service initially receives a share of the resource
    proportional to its weight; any portion a service leaves unused (because
    its actual need is smaller) is pooled and redistributed among the still
    unsatisfied services, again by weight, until everyone is satisfied or
    the resource is exhausted. Allocations smaller than {!epsilon} are
    rounded away to avoid unbounded recursion (paper: 0.0001). *)

val epsilon : float
(** 1e-4, the paper's minimum allocation. *)

val allocate :
  capacity:float -> weights:float array -> needs:float array -> float array
(** [allocate ~capacity ~weights ~needs] returns each service's actual
    consumption. Invariants (checked by the test suite): consumption never
    exceeds need; total consumption never exceeds [capacity]; the scheduler
    is work-conserving — if some service is unsatisfied, total consumption
    is within {!epsilon} x J of [capacity].

    Raises [Invalid_argument] on length mismatch, negative inputs, or an
    all-zero weight vector with non-zero total need. *)
