let epsilon = 1e-4

let allocate ~capacity ~weights ~needs =
  let j_count = Array.length needs in
  if Array.length weights <> j_count then
    invalid_arg "Work_conserving.allocate: length mismatch";
  if capacity < 0. then
    invalid_arg "Work_conserving.allocate: negative capacity";
  Array.iter
    (fun w ->
      if w < 0. then invalid_arg "Work_conserving.allocate: negative weight")
    weights;
  Array.iter
    (fun n ->
      if n < 0. then invalid_arg "Work_conserving.allocate: negative need")
    needs;
  let total_need = Array.fold_left ( +. ) 0. needs in
  let total_weight = Array.fold_left ( +. ) 0. weights in
  if total_weight <= 0. && total_need > 0. then
    invalid_arg "Work_conserving.allocate: all weights zero";
  let alloc = Array.make j_count 0. in
  let satisfied = Array.make j_count false in
  (* Zero-need services are satisfied from the start. *)
  Array.iteri (fun j n -> if n <= 0. then satisfied.(j) <- true) needs;
  let remaining = ref capacity in
  let continue_ = ref true in
  while !continue_ do
    let active_weight = ref 0. in
    Array.iteri
      (fun j w -> if not satisfied.(j) then active_weight := !active_weight +. w)
      weights;
    if !remaining <= epsilon || !active_weight <= 0. then continue_ := false
    else begin
      let pool = !remaining in
      let newly_satisfied = ref 0 in
      Array.iteri
        (fun j w ->
          if not satisfied.(j) then begin
            let share = pool *. w /. !active_weight in
            let missing = needs.(j) -. alloc.(j) in
            if missing <= share +. epsilon then begin
              (* Satisfied (within epsilon): consume what is missing but
                 never more than the share, so capacity is never
                 overdrawn; the rest of the share returns to the pool. *)
              let consumed = Float.min missing share in
              alloc.(j) <- alloc.(j) +. consumed;
              remaining := !remaining -. consumed;
              satisfied.(j) <- true;
              incr newly_satisfied
            end
            else begin
              alloc.(j) <- alloc.(j) +. share;
              remaining := !remaining -. share
            end
          end)
        weights;
      (* Progress only happens when someone got satisfied and freed
         capacity for redistribution; otherwise all shares were consumed
         fully and the resource is exhausted. *)
      if !newly_satisfied = 0 then continue_ := false
    end
  done;
  alloc
