(** Theorem 1 of the paper: on a single node with a single resource,
    EQUALWEIGHTS is (2J−1)/J²-competitive against an omniscient optimal
    allocator, and the bound is tight.

    These helpers let the test suite and the [theorem] bench section check
    both directions: every random instance satisfies the bound, and the
    adversarial instance [n = (1, 1/J, …, 1/J)] achieves it exactly.

    Precondition inherited from the paper's problem definition: each need is
    at most 1 (the unit capacity of the reference machine — a need is by
    definition achievable on it). Both cases of the proof use [n̂ <= 1]; with
    needs above capacity the ratio can drop below the bound. *)

val bound : int -> float
(** [(2J - 1) / J²]. Raises [Invalid_argument] for [J <= 0]. *)

val optimal_min_yield : needs:float array -> float
(** Omniscient optimum on a unit-capacity node: every service can be given
    the same yield [min 1 (1 / Σ needs)]. *)

val equal_weights_min_yield : needs:float array -> float
(** Minimum yield when the unit capacity is divided by the work-conserving
    EQUALWEIGHTS scheduler. *)

val competitive_ratio : needs:float array -> float
(** [equal_weights_min_yield / optimal_min_yield] (1. when the optimum is
    0). *)

val worst_case_instance : int -> float array
(** The tight instance of the proof: [n₁ = 1] and [nⱼ = 1/J] for the
    others. *)
