let place instance =
  let open Vec in
  let h_count = Model.Instance.n_nodes instance in
  let j_count = Model.Instance.n_services instance in
  let dims =
    Epair.dim (Model.Instance.node instance 0).Model.Node.capacity
  in
  let req_load = Array.init h_count (fun _ -> Array.make dims 0.) in
  let counts = Array.make h_count 0 in
  let fits h (s : Model.Service.t) =
    let node = Model.Instance.node instance h in
    Vector.fits s.requirement.Epair.elementary
      node.Model.Node.capacity.Epair.elementary
    &&
    let cap = node.Model.Node.capacity.Epair.aggregate in
    let rec loop d =
      if d >= dims then true
      else
        let c = Vector.get cap d in
        let tol = Vector.eps *. Float.max 1. c in
        req_load.(h).(d) +. Vector.get s.requirement.Epair.aggregate d
        <= c +. tol
        && loop (d + 1)
    in
    loop 0
  in
  let placement = Array.make j_count (-1) in
  let place_one j =
    let s = Model.Instance.service instance j in
    let best = ref (-1) in
    for h = 0 to h_count - 1 do
      if fits h s && (!best < 0 || counts.(h) < counts.(!best)) then best := h
    done;
    match !best with
    | -1 -> false
    | h ->
        for d = 0 to dims - 1 do
          req_load.(h).(d) <-
            req_load.(h).(d)
            +. Vector.get s.requirement.Epair.aggregate d
        done;
        counts.(h) <- counts.(h) + 1;
        placement.(j) <- h;
        true
  in
  let rec loop j =
    if j >= j_count then Some placement
    else if place_one j then loop (j + 1)
    else None
  in
  loop 0
