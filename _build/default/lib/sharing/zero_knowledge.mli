(** The zero-knowledge baseline (paper §6).

    With no information about CPU needs, the best placement policy is to
    spread services as evenly as possible across the nodes ("scheduling in
    the dark") and let a work-conserving scheduler with equal weights divide
    each node's CPU. Placement still honours rigid requirements (memory):
    each service, in id order, goes to the feasible node currently hosting
    the fewest services, ties broken toward the lowest node id. *)

val place : Model.Instance.t -> Model.Placement.t option
(** [None] when some service's requirements fit no node. *)
