type solution = {
  placement : Model.Placement.t;
  min_yield : float;
}

let items_at_yield instance y =
  Array.init (Model.Instance.n_services instance) (fun j ->
      let s = Model.Instance.service instance j in
      Packing.Item.v ~id:j ~demand:(Model.Service.demand_at_yield s y))

let fresh_bins instance =
  Array.init (Model.Instance.n_nodes instance) (fun h ->
      let node = Model.Instance.node instance h in
      Packing.Bin.v ~id:h ~capacity:node.Model.Node.capacity)

let pack_at_yield strategy instance y =
  let items = items_at_yield instance y in
  let bins = fresh_bins instance in
  Packing.Strategy.run strategy ~bins ~items

let evaluate instance placement =
  match Model.Placement.min_yield instance placement with
  | None -> None
  | Some y -> Some { placement; min_yield = y }

let finish instance = function
  | None -> None
  | Some (placement, _probed_yield) -> evaluate instance placement

let solve ?tolerance strategy instance =
  Binary_search.maximize ?tolerance (pack_at_yield strategy instance)
  |> finish instance

let solve_multi ?tolerance strategies instance =
  let oracle y =
    List.find_map (fun strategy -> pack_at_yield strategy instance y)
      strategies
  in
  Binary_search.maximize ?tolerance oracle |> finish instance
