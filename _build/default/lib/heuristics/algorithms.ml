type t = {
  name : string;
  solve : Model.Instance.t -> Vp_solver.solution option;
}

let metagreedy = { name = "METAGREEDY"; solve = Greedy.metagreedy }

let metavp =
  { name = "METAVP";
    solve = Vp_solver.solve_multi Packing.Strategy.vp_all }

let metahvp =
  { name = "METAHVP";
    solve = Vp_solver.solve_multi Packing.Strategy.hvp_all }

let metahvplight =
  { name = "METAHVPLIGHT";
    solve = Vp_solver.solve_multi Packing.Strategy.hvp_light }

let rrnd ~seed =
  {
    name = "RRND";
    solve =
      (fun instance ->
        Rounding.rrnd ~rng:(Prng.Rng.create ~seed) instance);
  }

let rrnz ~seed =
  {
    name = "RRNZ";
    solve =
      (fun instance ->
        Rounding.rrnz ~rng:(Prng.Rng.create ~seed) instance);
  }

let exact_milp ?node_limit () =
  {
    name = "MILP";
    solve =
      (fun instance ->
        match Milp.solve_exact ?node_limit instance with
        | Some (Some e) -> Some e.Milp.solution
        | Some None | None -> None);
  }

let single_vp strategy =
  { name = Packing.Strategy.name strategy;
    solve = Vp_solver.solve strategy }

let single_greedy sort place =
  {
    name =
      Printf.sprintf "GREEDY-%s/%s" (Greedy.sort_name sort)
        (Greedy.place_name place);
    solve = Greedy.solve sort place;
  }

let majors ~seed =
  [ rrnd ~seed; rrnz ~seed; metagreedy; metavp; metahvp ]

let by_name ~seed name =
  match String.uppercase_ascii name with
  | "RRND" -> Some (rrnd ~seed)
  | "RRNZ" -> Some (rrnz ~seed)
  | "METAGREEDY" -> Some metagreedy
  | "METAVP" -> Some metavp
  | "METAHVP" -> Some metahvp
  | "METAHVPLIGHT" -> Some metahvplight
  | "MILP" -> Some (exact_milp ())
  | _ -> None
