lib/heuristics/milp.ml: Array Epair Fun List Lp Model Printf Vec Vector Vp_solver
