lib/heuristics/greedy.ml: Array Epair Float List Model Vec Vector Vp_solver
