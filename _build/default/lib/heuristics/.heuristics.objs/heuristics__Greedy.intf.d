lib/heuristics/greedy.mli: Model Vp_solver
