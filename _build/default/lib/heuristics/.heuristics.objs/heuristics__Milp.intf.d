lib/heuristics/milp.mli: Lp Model Vp_solver
