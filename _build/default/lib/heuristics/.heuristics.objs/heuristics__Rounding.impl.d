lib/heuristics/rounding.ml: Array Epair Float Fun Milp Model Prng Vec Vector Vp_solver
