lib/heuristics/algorithms.mli: Greedy Model Packing Vp_solver
