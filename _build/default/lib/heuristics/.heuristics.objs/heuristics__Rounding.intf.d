lib/heuristics/rounding.mli: Model Prng Vp_solver
