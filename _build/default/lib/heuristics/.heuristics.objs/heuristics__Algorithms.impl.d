lib/heuristics/algorithms.ml: Greedy Milp Model Packing Printf Prng Rounding String Vp_solver
