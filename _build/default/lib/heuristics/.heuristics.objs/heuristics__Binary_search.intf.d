lib/heuristics/binary_search.mli:
