lib/heuristics/vp_solver.ml: Array Binary_search List Model Packing
