lib/heuristics/vp_solver.mli: Model Packing
