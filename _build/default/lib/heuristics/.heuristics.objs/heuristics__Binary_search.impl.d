lib/heuristics/binary_search.ml:
