let default_tolerance = 1e-4

let maximize ?(tolerance = default_tolerance) oracle =
  if tolerance <= 0. then invalid_arg "Binary_search.maximize: tolerance";
  match oracle 1. with
  | Some sol -> Some (sol, 1.)
  | None -> (
      match oracle 0. with
      | None -> None
      | Some sol0 ->
          let best = ref (sol0, 0.) in
          let lo = ref 0. and hi = ref 1. in
          while !hi -. !lo > tolerance do
            let mid = 0.5 *. (!lo +. !hi) in
            match oracle mid with
            | Some sol ->
                best := (sol, mid);
                lo := mid
            | None -> hi := mid
          done;
          Some !best)
