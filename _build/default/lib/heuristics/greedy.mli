(** The greedy algorithm family (paper §3.4, inherited from [3]).

    A greedy algorithm sorts the services with one of seven strategies
    (S1–S7), then walks the sorted list placing each service on a node
    chosen among the feasible ones by one of seven selection strategies
    (P1–P7) — 49 combinations. METAGREEDY runs all 49 and keeps the
    placement with the best water-filled minimum yield.

    Feasibility while placing is judged on rigid requirements only (a
    placement only {e fails} when a requirement cannot be met); the
    selection metrics are computed on each node's {e virtual load} — the
    sum of requirement plus full need of the services already committed to
    it — so that fluid demands are balanced even when requirements alone
    are sparse. All metrics use aggregate vectors. *)

type sort_strategy =
  | S1  (** no sorting *)
  | S2  (** decreasing max need *)
  | S3  (** decreasing sum of needs *)
  | S4  (** decreasing max requirement *)
  | S5  (** decreasing sum of requirements *)
  | S6  (** decreasing max(sum of requirements, sum of needs) *)
  | S7  (** decreasing sum of requirements and needs *)

type place_strategy =
  | P1  (** most available capacity in the dimension of maximum need *)
  | P2  (** min ratio of summed loads to summed capacities after placement *)
  | P3  (** least remaining capacity in dim of largest requirement (best fit) *)
  | P4  (** least aggregate available capacity (best fit) *)
  | P5  (** most remaining capacity in dim of largest requirement (worst fit) *)
  | P6  (** most total available resource (worst fit) *)
  | P7  (** first fit *)

val all_combinations : (sort_strategy * place_strategy) list
(** The 49 (sort, place) pairs in (S1,P1), (S1,P2), ... order. *)

val place :
  sort_strategy -> place_strategy -> Model.Instance.t ->
  Model.Placement.t option
(** Run one greedy combination; [None] when some service fits nowhere. *)

val solve :
  sort_strategy -> place_strategy -> Model.Instance.t ->
  Vp_solver.solution option

val metagreedy : Model.Instance.t -> Vp_solver.solution option
(** Best of the 49 by achieved minimum yield. *)

val sort_name : sort_strategy -> string
val place_name : place_strategy -> string
