(** Binary search on the yield (paper §3.5).

    Since at a fixed yield every service's demand is fixed, any packing
    heuristic doubles as a feasibility oracle for that yield; maximizing the
    minimum yield then reduces to a binary search for the largest yield at
    which the oracle succeeds. The search stops when the bracketing interval
    is narrower than the paper's threshold 1e-4. *)

val default_tolerance : float
(** 1e-4, the paper's threshold. *)

val maximize :
  ?tolerance:float -> (float -> 'a option) -> ('a * float) option
(** [maximize oracle] probes yields in [0, 1]. Returns the solution produced
    at the highest successful probe together with that yield, or [None] when
    the oracle already fails at yield 0. The oracle is first probed at 1
    (instances with slack can often run everything at full performance),
    then at 0, then bisected. *)
