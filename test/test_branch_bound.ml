(* Branch-and-bound coverage: MILP optima cross-checked between the
   revised-simplex-backed search and the dense-oracle leg, plus unit tests
   for the search-shape counters (nodes / infeasible / pruned). *)

let c = Lp.Problem.c

let with_metrics f =
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let result = f () in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  (result, fun name -> Obs.Metrics.Snapshot.counter_value snap name)

let with_dense_env f =
  let prev = Sys.getenv_opt "VMALLOC_DENSE_LP" in
  Unix.putenv "VMALLOC_DENSE_LP" "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "VMALLOC_DENSE_LP" (Option.value prev ~default:"0"))
    f

(* Property: on random feasible bounded MILPs, the optimum found with the
   revised LP solver equals the optimum found with the dense oracle. The
   instances are feasible by construction (integral witness), so both
   searches must return [Optimal]. *)

let test_milp_optima_match_oracle () =
  List.iter
    (fun seed ->
      let p = Lp_gen.generate_milp ~seed ~n_vars:5 ~n_cons:5 () in
      let ctx = Printf.sprintf "milp seed=%d" seed in
      let solve () =
        match Lp.Branch_bound.solve p with
        | Lp.Branch_bound.Optimal s -> s.objective
        | Lp.Branch_bound.Infeasible ->
            Alcotest.fail (ctx ^ ": constructed-feasible MILP reported infeasible")
        | Lp.Branch_bound.Unbounded ->
            Alcotest.fail (ctx ^ ": bounded MILP reported unbounded")
        | Lp.Branch_bound.Node_limit _ ->
            Alcotest.fail (ctx ^ ": unexpected node limit")
      in
      let revised = solve () in
      let dense = with_dense_env solve in
      Alcotest.(check bool)
        (Printf.sprintf "%s: revised %.9f = dense %.9f" ctx revised dense)
        true
        (Float.abs (revised -. dense) <= 1e-6 *. (1. +. Float.abs dense)))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* Infeasible-node accounting: x integer in [0,1] squeezed into [0.4, 0.6].
   The root relaxation is feasible (x = 0.5) but both children's LPs are
   infeasible, so the search proves infeasibility through exactly two
   infeasible nodes. *)

let test_infeasible_node_pruning () =
  let p =
    Lp.Problem.create ~n_vars:1 ~objective:[| 1. |] ~upper:[| 1. |]
      ~integer:[ 0 ]
      ~constraints:[ c [ (0, 1.) ] Ge 0.4; c [ (0, 1.) ] Le 0.6 ]
      ()
  in
  let result, v = with_metrics (fun () -> Lp.Branch_bound.solve p) in
  (match result with
  | Lp.Branch_bound.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check int) "three relaxations solved" 3 (v "branch_bound.nodes");
  Alcotest.(check int) "both children infeasible" 2
    (v "branch_bound.infeasible_nodes");
  Alcotest.(check int) "nothing bound-pruned" 0 (v "branch_bound.pruned_nodes")

(* Incumbent pruning: max x0 + x1 with x0 + x1 <= 1.5 on 0/1 variables.
   The root relaxation hits 1.5 fractionally; the first integral incumbent
   reaches 1, after which the sibling branch (LP bound also 1) cannot
   improve and must land on the pruned counter. *)

let test_incumbent_pruning () =
  let p =
    Lp.Problem.create ~n_vars:2 ~objective:[| 1.; 1. |] ~upper:[| 1.; 1. |]
      ~integer:[ 0; 1 ]
      ~constraints:[ c [ (0, 1.); (1, 1.) ] Le 1.5 ]
      ()
  in
  let result, v = with_metrics (fun () -> Lp.Branch_bound.solve p) in
  (match result with
  | Lp.Branch_bound.Optimal s -> Alcotest.(check (float 1e-6)) "optimum" 1. s.objective
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check bool) "nodes counted" true (v "branch_bound.nodes" >= 3);
  Alcotest.(check bool) "incumbent pruned a branch" true
    (v "branch_bound.pruned_nodes" >= 1)

(* Warm-start plumbing: a branchy MILP solved with metrics on must record
   warm starts (children re-optimize from the parent basis) unless the
   dense leg is active, where warm starts are ignored by design. *)

let test_bb_warm_starts_recorded () =
  let dense_on =
    match Sys.getenv_opt "VMALLOC_DENSE_LP" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  if not dense_on then begin
    let p = Lp_gen.generate_milp ~seed:3 ~n_vars:6 ~n_cons:5 () in
    let result, v = with_metrics (fun () -> Lp.Branch_bound.solve p) in
    (match result with
    | Lp.Branch_bound.Optimal _ -> ()
    | _ -> Alcotest.fail "constructed-feasible MILP must be optimal");
    if v "branch_bound.nodes" > 1 then
      Alcotest.(check bool) "warm starts recorded" true
        (v "simplex.warm_starts" > 0)
  end

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("MILP optima match dense oracle", test_milp_optima_match_oracle);
      ("infeasible-node accounting", test_infeasible_node_pruning);
      ("incumbent pruning", test_incumbent_pruning);
      ("warm starts recorded", test_bb_warm_starts_recorded);
    ]
