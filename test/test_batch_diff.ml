(* Differential lock-down of the multi-tenant batched solve scheduler
   (DESIGN.md §16): [Batch.solve_batch] must return results bit-identical
   to solving the same jobs back-to-back sequentially — same Some/None,
   same placement, same minimum yield to the last bit — at every pool
   size and every forced speculation depth, with yield-search and direct
   algorithms mixed in one request list. Re-running batches on one
   scheduler also locks the per-domain kernel scratch pools: rebinding a
   retired probe kernel to a later same-shaped job must not change any
   result. *)

module Batch = Heuristics.Batch

let with_pool = Par.Pool.with_pool

let gen_instance ~seed ~hosts ~services ~slack =
  Workload.Generator.generate
    ~rng:(Prng.Rng.create ~seed)
    {
      Workload.Generator.hosts;
      services;
      cov = 0.5;
      slack;
      cpu_homogeneous = false;
      mem_homogeneous = false;
    }

let algo ~seed name =
  match Heuristics.Algorithms.by_name ~seed name with
  | Some a -> a
  | None -> Alcotest.failf "unknown algorithm %S" name

(* Mixed tenants: three strategy-set yield searches (Yield_search kind,
   stepped round by round), the greedy sweep and an LP-rounding run
   (Direct kind, one-shot tasks), over instances spanning the tight
   slack=0.1 regime (infeasible for some tenants — the None path) up to
   loose slack=0.6. *)
let jobs =
  let names =
    [| "metahvplight"; "metavp"; "metagreedy"; "rrnz"; "metavp"; "rrnd" |]
  in
  Array.init 9 (fun i ->
      let hosts = 2 + (i mod 3) in
      let services = 4 + (i * 3 mod 9) in
      let slack = [| 0.1; 0.35; 0.6 |].(i mod 3) in
      {
        Batch.algo = algo ~seed:i names.(i mod Array.length names);
        instance = gen_instance ~seed:i ~hosts ~services ~slack;
      })

(* The reference arm: the same tenants solved back-to-back, no pool, no
   scheduler — the legacy sequential path. *)
let sequential =
  lazy (Array.map (fun j -> j.Batch.algo.solve j.Batch.instance) jobs)

let check_solution msg seq bat =
  match (seq, bat) with
  | None, None -> ()
  | ( Some (s : Heuristics.Vp_solver.solution),
      Some (b : Heuristics.Vp_solver.solution) ) ->
      if s.placement <> b.placement then
        Alcotest.failf "%s: placements differ" msg;
      if Int64.bits_of_float s.min_yield <> Int64.bits_of_float b.min_yield
      then
        Alcotest.failf "%s: yields differ (%.17g vs %.17g)" msg s.min_yield
          b.min_yield
  | Some _, None -> Alcotest.failf "%s: sequential Some, batched None" msg
  | None, Some _ -> Alcotest.failf "%s: sequential None, batched Some" msg

let check_batch msg results =
  let seq = Lazy.force sequential in
  Alcotest.(check int)
    (msg ^ ": result count")
    (Array.length seq) (Array.length results);
  Array.iteri
    (fun i b ->
      check_solution
        (Printf.sprintf "%s: job %d (%s)" msg i jobs.(i).Batch.algo.name)
        seq.(i) b)
    results

let pool_sizes () =
  (* 1 = the degenerate sequential path; 2 and 4 give the adaptive depth
     model spare capacity to spend. The env-derived size makes the CI
     VMALLOC_DOMAINS={1,2} matrix leg vary what this suite runs. *)
  let env = min 4 (Par.Pool.domains_from_env ()) in
  List.sort_uniq compare [ 1; 2; 4; env ]

(* The acceptance criterion of the batched scheduler: identical results
   at pools 1/2/4 under the adaptive depth and every forced depth.
   Depths share one scheduler per pool, so later batches also replay
   over scratch pools populated (and retired) by earlier ones. *)
let test_batched_equals_sequential () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let sched = Par.Scheduler.create ~pool in
          List.iter
            (fun depth ->
              let label =
                match depth with
                | None -> "adaptive"
                | Some d -> string_of_int d
              in
              check_batch
                (Printf.sprintf "pool %d, depth %s" domains label)
                (Batch.solve_batch ?depth ~sched jobs))
            [ None; Some 1; Some 2; Some 4 ]))
    (pool_sizes ())

(* Kernel rebinding in isolation: two identical batches on one scheduler.
   The second batch's probe kernels come (partly) from tokens the first
   batch retired; rebinding must reproduce the first batch bit-for-bit. *)
let test_rerun_batch_rebinds_identically () =
  with_pool ~domains:2 (fun pool ->
      let sched = Par.Scheduler.create ~pool in
      let first = Batch.solve_batch ~sched jobs in
      let second = Batch.solve_batch ~sched jobs in
      Array.iteri
        (fun i b ->
          check_solution
            (Printf.sprintf "rerun: job %d (%s)" i jobs.(i).Batch.algo.name)
            first.(i) b)
        second;
      check_batch "rerun (vs sequential)" second)

let test_empty_batch () =
  with_pool ~domains:2 (fun pool ->
      let sched = Par.Scheduler.create ~pool in
      Alcotest.(check int)
        "no jobs, no results" 0
        (Array.length (Batch.solve_batch ~sched [||])))

(* End-to-end through the experiment driver: a Table 1 mini-sweep in
   batched mode — every trial of a scenario as one tenant — must print
   the exact report of the plain sequential run at any pool size. *)
let mini_scale =
  {
    Experiments.Scale.small with
    label = "mini";
    table1_hosts = 4;
    table1_services = [ 6 ];
    table1_covs = [ 0.5 ];
    table1_slacks = [ 0.5 ];
    table1_reps = 2;
  }

let test_table1_batched_identical () =
  let sequential =
    Experiments.Table1.report_table1 (Experiments.Table1.run mini_scale)
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let sched = Par.Scheduler.create ~pool in
          Alcotest.(check string)
            (Printf.sprintf "table1 report identical batched at %d domains"
               domains)
            sequential
            (Experiments.Table1.report_table1
               (Experiments.Table1.run ~sched mini_scale))))
    [ 1; 2; 4 ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("batched = sequential at pools x depths", test_batched_equals_sequential);
      ("rerun on one scheduler rebinds identically",
       test_rerun_batch_rebinds_identically);
      ("empty batch", test_empty_batch);
      ("Table 1 mini-sweep identical batched", test_table1_batched_identical);
    ]
