(* Tests for the sharded online simulator: partitioning, the
   single-shard ≡ engine equivalence, and byte-identical merged stats at
   any domain count. *)

let platform =
  Array.init 8 (fun id ->
      if id < 4 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
      else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)

let config =
  {
    Simulator.Engine.default_config with
    horizon = 60.;
    arrival_rate = 1.;
    mean_lifetime = 15.;
    reallocation_period = 10.;
    memory_scale = 0.5;
  }

let stats_equal (a : Simulator.Engine.stats) (b : Simulator.Engine.stats) =
  a.arrivals = b.arrivals && a.admitted = b.admitted
  && a.rejected = b.rejected && a.departures = b.departures
  && a.reallocations = b.reallocations
  && a.failed_reallocations = b.failed_reallocations
  && a.migrations = b.migrations
  && Int64.bits_of_float a.mean_min_yield
     = Int64.bits_of_float b.mean_min_yield
  && Int64.bits_of_float a.final_threshold
     = Int64.bits_of_float b.final_threshold
  && List.length a.yield_samples = List.length b.yield_samples
  && List.for_all2
       (fun (t1, y1) (t2, y2) ->
         Int64.bits_of_float t1 = Int64.bits_of_float t2
         && Int64.bits_of_float y1 = Int64.bits_of_float y2)
       a.yield_samples b.yield_samples

let test_partition_covers_nodes () =
  let parts = Simulator.Sharded.partition ~shards:3 platform in
  Alcotest.(check int) "three shards" 3 (Array.length parts);
  let sizes = Array.map Array.length parts in
  Alcotest.(check int) "all nodes covered" (Array.length platform)
    (Array.fold_left ( + ) 0 sizes);
  Array.iter
    (fun shard ->
      Array.iteri
        (fun i (n : Model.Node.t) ->
          Alcotest.(check int) "dense per-shard ids" i n.id)
        shard)
    parts;
  (* Contiguous slices in platform order: concatenating the shard
     capacities reproduces the platform's capacities. *)
  let caps =
    Array.concat (Array.to_list parts)
    |> Array.map (fun (n : Model.Node.t) -> n.capacity)
  in
  Array.iteri
    (fun i (n : Model.Node.t) ->
      Alcotest.(check bool) "capacity preserved" true
        (Vec.Epair.equal n.capacity caps.(i)))
    platform

let test_partition_validation () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Sharded.run: shards must be positive") (fun () ->
      ignore (Simulator.Sharded.partition ~shards:0 platform));
  Alcotest.check_raises "more shards than nodes"
    (Invalid_argument "Sharded.run: more shards than nodes") (fun () ->
      ignore (Simulator.Sharded.run ~shards:9 config ~platform))

let test_single_shard_matches_engine () =
  let engine =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:3) config ~platform
  in
  let sharded = Simulator.Sharded.run ~seed:3 ~shards:1 config ~platform in
  Alcotest.(check bool) "merged = engine stats" true
    (stats_equal engine sharded.merged);
  Alcotest.(check int) "one per-shard entry" 1
    (Array.length sharded.per_shard);
  Alcotest.(check bool) "per-shard = merged" true
    (stats_equal sharded.merged sharded.per_shard.(0))

let test_merged_consistency () =
  let r = Simulator.Sharded.run ~seed:5 ~shards:4 config ~platform in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 r.per_shard in
  Alcotest.(check int) "arrivals sum"
    (sum (fun (s : Simulator.Engine.stats) -> s.arrivals))
    r.merged.arrivals;
  Alcotest.(check int) "admitted sum"
    (sum (fun (s : Simulator.Engine.stats) -> s.admitted))
    r.merged.admitted;
  Alcotest.(check int) "samples merged"
    (sum (fun (s : Simulator.Engine.stats) -> List.length s.yield_samples))
    (List.length r.merged.yield_samples);
  (* The merged log is chronological and its yield column is the global
     min over shards, so it can never exceed any shard's sample at the
     same instant. *)
  let rec chronological = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && chronological rest
    | _ -> true
  in
  Alcotest.(check bool) "merged log chronological" true
    (chronological r.merged.yield_samples);
  Alcotest.(check bool) "yield in range" true
    (List.for_all
       (fun (_, y) -> y >= 0. && y <= 1. +. 1e-9)
       r.merged.yield_samples);
  Alcotest.(check bool) "mean yield in range" true
    (r.merged.mean_min_yield >= 0.
    && r.merged.mean_min_yield <= 1. +. 1e-9)

let test_same_seed_twice () =
  let a = Simulator.Sharded.run ~seed:11 ~shards:4 config ~platform in
  let b = Simulator.Sharded.run ~seed:11 ~shards:4 config ~platform in
  Alcotest.(check bool) "identical merged stats" true
    (stats_equal a.merged b.merged)

(* The acceptance property: merged stats and event logs are byte-identical
   at VMALLOC_DOMAINS = 1, 2, and 4. *)
let test_domain_count_invariance () =
  let sequential =
    Simulator.Sharded.run ~seed:7 ~shards:4 config ~platform
  in
  List.iter
    (fun domains ->
      let pooled =
        Par.Pool.with_pool ~domains (fun pool ->
            Simulator.Sharded.run ~pool ~seed:7 ~shards:4 config ~platform)
      in
      Alcotest.(check bool)
        (Printf.sprintf "identical at %d domains" domains)
        true
        (stats_equal sequential.merged pooled.merged);
      Array.iteri
        (fun i per ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d identical at %d domains" i domains)
            true
            (stats_equal sequential.per_shard.(i) per))
        pooled.per_shard)
    [ 1; 2; 4 ]

(* Metric snapshots of a sharded run must also be domain-count invariant:
   each shard counts into its own task sink and Pool.map merges the sinks
   in shard order. *)
let test_metrics_domain_invariance () =
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let snapshot domains =
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    (if domains = 1 then
       ignore (Simulator.Sharded.run ~seed:13 ~shards:4 config ~platform)
     else
       Par.Pool.with_pool ~domains (fun pool ->
           ignore
             (Simulator.Sharded.run ~pool ~seed:13 ~shards:4 config
                ~platform)));
    Obs.Metrics.set_enabled false;
    Obs.Metrics.Snapshot.render (Obs.Metrics.snapshot ())
  in
  let reference = snapshot 1 in
  Alcotest.(check bool) "some metrics recorded" true
    (String.length reference > 0);
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "snapshot at %d domains" domains)
        reference (snapshot domains))
    [ 2; 4 ]

let test_adaptive_sharded_runs () =
  (* Each shard gets a fresh controller; the merged final threshold is the
     max over shards and must have moved under estimation error. *)
  let r =
    Simulator.Sharded.run ~seed:2 ~shards:2
      {
        config with
        max_error = 0.1;
        threshold =
          Simulator.Engine.Adaptive
            (Sharing.Adaptive_threshold.create ~quantile:90. ());
      }
      ~platform
  in
  Alcotest.(check bool) "threshold moved" true (r.merged.final_threshold > 0.);
  Array.iter
    (fun (s : Simulator.Engine.stats) ->
      Alcotest.(check bool) "merged >= shard threshold" true
        (r.merged.final_threshold >= s.final_threshold))
    r.per_shard

(* --- capacity-balanced partition (QCheck properties) --- *)

let scalar_cap (n : Model.Node.t) =
  let agg = n.Model.Node.capacity.Vec.Epair.aggregate in
  Vec.Vector.get agg 0 +. Vec.Vector.get agg 1

(* Random two-resource platforms: 1-16 nodes with capacities on a 0.1
   grid, and a legal shard count. *)
let platform_gen =
  QCheck2.Gen.(
    let* h = int_range 1 16 in
    let* shards = int_range 1 h in
    let tenth = map (fun i -> 0.1 *. float_of_int i) (int_range 1 10) in
    let* caps = list_size (pure h) (pair tenth tenth) in
    pure (shards, Array.of_list caps))

let make_platform caps =
  Array.mapi
    (fun id (cpu, mem) -> Model.Node.make_cores ~id ~cores:4 ~cpu ~mem)
    caps

let prop_balanced_partition_covers =
  QCheck2.Test.make ~name:"capacity-balanced partition assigns each node once"
    ~count:200 platform_gen
    (fun (shards, caps) ->
      let platform = make_platform caps in
      let parts =
        Simulator.Sharded.partition ~policy:Simulator.Sharded.Capacity_balanced
          ~shards platform
      in
      (* Dense per-shard ids, and the multiset of capacities is exactly the
         platform's (nodes of equal capacity are interchangeable). *)
      Array.for_all
        (fun part ->
          Array.for_all (fun (n : Model.Node.t) -> n.id >= 0) part
          && Array.length part > 0)
        parts
      &&
      let assigned =
        Array.concat (Array.to_list parts) |> Array.map scalar_cap
      in
      let expected = Array.map scalar_cap platform in
      Array.sort compare assigned;
      Array.sort compare expected;
      assigned = expected)

let prop_balanced_partition_bound =
  QCheck2.Test.make
    ~name:"capacity-balanced shard totals within one node of each other"
    ~count:200 platform_gen
    (fun (shards, caps) ->
      let platform = make_platform caps in
      let parts =
        Simulator.Sharded.partition ~policy:Simulator.Sharded.Capacity_balanced
          ~shards platform
      in
      let totals =
        Array.map
          (fun part -> Array.fold_left (fun a n -> a +. scalar_cap n) 0. part)
          parts
      in
      let max_total = Array.fold_left Float.max totals.(0) totals in
      let min_total = Array.fold_left Float.min totals.(0) totals in
      let max_node =
        Array.fold_left (fun a n -> Float.max a (scalar_cap n)) 0. platform
      in
      (* The LPT list-scheduling bound. *)
      max_total -. min_total <= max_node +. 1e-9)

let prop_balanced_single_shard_is_contiguous =
  QCheck2.Test.make
    ~name:"one capacity-balanced shard = the contiguous partition"
    ~count:100 platform_gen
    (fun (_, caps) ->
      let platform = make_platform caps in
      let balanced =
        Simulator.Sharded.partition ~policy:Simulator.Sharded.Capacity_balanced
          ~shards:1 platform
      in
      let contiguous = Simulator.Sharded.partition ~shards:1 platform in
      Array.length balanced.(0) = Array.length contiguous.(0)
      && Array.for_all2
           (fun (a : Model.Node.t) (b : Model.Node.t) ->
             a.id = b.id && Vec.Epair.equal a.capacity b.capacity)
           balanced.(0) contiguous.(0))

(* --- RNG stream assignment (locked after hoisting stream setup out of
   the dispatch loop): shard s of a k-shard run replays exactly
   Engine.run with the pre-split seed on its sub-platform, and one shard
   keeps the engine's plain stream. --- *)
let test_stream_assignment_unchanged () =
  let seed = 21 in
  let shards = 3 in
  let r = Simulator.Sharded.run ~seed ~shards config ~platform in
  let parts = Simulator.Sharded.partition ~shards platform in
  Array.iteri
    (fun s part ->
      let direct =
        Simulator.Engine.run
          ~rng:
            (Prng.Rng.create
               ~seed:(Simulator.Sharded.shard_seed ~seed ~shard:s ~shards))
          config ~platform:part
      in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d replays its pre-split stream" s)
        true
        (stats_equal direct r.per_shard.(s)))
    parts;
  let one = Simulator.Sharded.run ~seed ~shards:1 config ~platform in
  let direct =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed) config ~platform
  in
  Alcotest.(check bool) "one shard keeps the plain engine stream" true
    (stats_equal direct one.per_shard.(0))

(* --- golden seed-0 pins for the incremental placement policies ---

   Merged counts, the yield-log digest, and the simulator.* counters of a
   4-shard run are pinned at domain counts 1, 2, and 4. Only simulator.*
   counters are pinned: they are invariant across the CI matrix legs
   (VMALLOC_NO_PROBE_CACHE / VMALLOC_DENSE_LP perturb solver-internal
   counters, never the event loop's). *)
let samples_digest samples =
  List.fold_left
    (fun acc (t, y) ->
      let mix acc v =
        Int64.add (Int64.mul acc 1000003L) (Int64.bits_of_float v)
      in
      mix (mix acc t) y)
    0L samples

let policy_config placement =
  {
    config with
    Simulator.Engine.placement;
    algorithm =
      Heuristics.Algorithms.single_greedy Heuristics.Greedy.S7
        Heuristics.Greedy.P4;
  }

let run_policy_golden placement domains =
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let r =
    if domains = 1 then
      Simulator.Sharded.run ~seed:0 ~shards:4 (policy_config placement)
        ~platform
    else
      Par.Pool.with_pool ~domains (fun pool ->
          Simulator.Sharded.run ~pool ~seed:0 ~shards:4
            (policy_config placement) ~platform)
  in
  Obs.Metrics.set_enabled false;
  (r, Obs.Metrics.snapshot ())

let check_policy_golden placement ~arrivals ~admitted ~rejected ~departures
    ~migrations ~digest ~repairs ~fallbacks ~bins_touched () =
  let name = Simulator.Policy.to_string placement in
  List.iter
    (fun domains ->
      let r, snap = run_policy_golden placement domains in
      let m = r.Simulator.Sharded.merged in
      let tag fmt = Printf.sprintf "%s @%dd: %s" name domains fmt in
      Alcotest.(check int) (tag "arrivals") arrivals m.arrivals;
      Alcotest.(check int) (tag "admitted") admitted m.admitted;
      Alcotest.(check int) (tag "rejected") rejected m.rejected;
      Alcotest.(check int) (tag "departures") departures m.departures;
      Alcotest.(check int) (tag "migrations") migrations m.migrations;
      Alcotest.(check int64) (tag "yield-log digest") digest
        (samples_digest m.yield_samples);
      let counter = Obs.Metrics.Snapshot.counter_value snap in
      Alcotest.(check int) (tag "repairs") repairs
        (counter "simulator.repairs");
      Alcotest.(check int) (tag "fallbacks") fallbacks
        (counter "simulator.repair_fallbacks");
      Alcotest.(check int) (tag "bins touched") bins_touched
        (counter "simulator.bins_touched"))
    [ 1; 2; 4 ]

let test_golden_greedy_random =
  check_policy_golden Simulator.Policy.Greedy_random ~arrivals:237
    ~admitted:236 ~rejected:1 ~departures:182 ~migrations:88
    ~digest:7255892090174631288L ~repairs:19 ~fallbacks:9 ~bins_touched:552

let test_golden_best_fit =
  check_policy_golden Simulator.Policy.Best_fit ~arrivals:245 ~admitted:241
    ~rejected:4 ~departures:180 ~migrations:80
    ~digest:(-5229114624798978534L) ~repairs:16 ~fallbacks:9
    ~bins_touched:796

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("partition covers nodes", test_partition_covers_nodes);
      ("partition validation", test_partition_validation);
      ("single shard matches engine", test_single_shard_matches_engine);
      ("merged stats consistency", test_merged_consistency);
      ("same seed twice", test_same_seed_twice);
      ("domain-count invariance", test_domain_count_invariance);
      ("metrics domain invariance", test_metrics_domain_invariance);
      ("adaptive sharded runs", test_adaptive_sharded_runs);
      ("stream assignment unchanged", test_stream_assignment_unchanged);
      ("golden seed-0 greedy-random", test_golden_greedy_random);
      ("golden seed-0 best-fit", test_golden_best_fit);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_balanced_partition_covers;
        prop_balanced_partition_bound;
        prop_balanced_single_shard_is_contiguous;
      ]
