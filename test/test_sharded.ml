(* Tests for the sharded online simulator: partitioning, the
   single-shard ≡ engine equivalence, and byte-identical merged stats at
   any domain count. *)

let platform =
  Array.init 8 (fun id ->
      if id < 4 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
      else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)

let config =
  {
    Simulator.Engine.default_config with
    horizon = 60.;
    arrival_rate = 1.;
    mean_lifetime = 15.;
    reallocation_period = 10.;
    memory_scale = 0.5;
  }

let stats_equal (a : Simulator.Engine.stats) (b : Simulator.Engine.stats) =
  a.arrivals = b.arrivals && a.admitted = b.admitted
  && a.rejected = b.rejected && a.departures = b.departures
  && a.reallocations = b.reallocations
  && a.failed_reallocations = b.failed_reallocations
  && a.migrations = b.migrations
  && Int64.bits_of_float a.mean_min_yield
     = Int64.bits_of_float b.mean_min_yield
  && Int64.bits_of_float a.final_threshold
     = Int64.bits_of_float b.final_threshold
  && List.length a.yield_samples = List.length b.yield_samples
  && List.for_all2
       (fun (t1, y1) (t2, y2) ->
         Int64.bits_of_float t1 = Int64.bits_of_float t2
         && Int64.bits_of_float y1 = Int64.bits_of_float y2)
       a.yield_samples b.yield_samples

let test_partition_covers_nodes () =
  let parts = Simulator.Sharded.partition ~shards:3 platform in
  Alcotest.(check int) "three shards" 3 (Array.length parts);
  let sizes = Array.map Array.length parts in
  Alcotest.(check int) "all nodes covered" (Array.length platform)
    (Array.fold_left ( + ) 0 sizes);
  Array.iter
    (fun shard ->
      Array.iteri
        (fun i (n : Model.Node.t) ->
          Alcotest.(check int) "dense per-shard ids" i n.id)
        shard)
    parts;
  (* Contiguous slices in platform order: concatenating the shard
     capacities reproduces the platform's capacities. *)
  let caps =
    Array.concat (Array.to_list parts)
    |> Array.map (fun (n : Model.Node.t) -> n.capacity)
  in
  Array.iteri
    (fun i (n : Model.Node.t) ->
      Alcotest.(check bool) "capacity preserved" true
        (Vec.Epair.equal n.capacity caps.(i)))
    platform

let test_partition_validation () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Sharded.run: shards must be positive") (fun () ->
      ignore (Simulator.Sharded.partition ~shards:0 platform));
  Alcotest.check_raises "more shards than nodes"
    (Invalid_argument "Sharded.run: more shards than nodes") (fun () ->
      ignore (Simulator.Sharded.run ~shards:9 config ~platform))

let test_single_shard_matches_engine () =
  let engine =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:3) config ~platform
  in
  let sharded = Simulator.Sharded.run ~seed:3 ~shards:1 config ~platform in
  Alcotest.(check bool) "merged = engine stats" true
    (stats_equal engine sharded.merged);
  Alcotest.(check int) "one per-shard entry" 1
    (Array.length sharded.per_shard);
  Alcotest.(check bool) "per-shard = merged" true
    (stats_equal sharded.merged sharded.per_shard.(0))

let test_merged_consistency () =
  let r = Simulator.Sharded.run ~seed:5 ~shards:4 config ~platform in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 r.per_shard in
  Alcotest.(check int) "arrivals sum"
    (sum (fun (s : Simulator.Engine.stats) -> s.arrivals))
    r.merged.arrivals;
  Alcotest.(check int) "admitted sum"
    (sum (fun (s : Simulator.Engine.stats) -> s.admitted))
    r.merged.admitted;
  Alcotest.(check int) "samples merged"
    (sum (fun (s : Simulator.Engine.stats) -> List.length s.yield_samples))
    (List.length r.merged.yield_samples);
  (* The merged log is chronological and its yield column is the global
     min over shards, so it can never exceed any shard's sample at the
     same instant. *)
  let rec chronological = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && chronological rest
    | _ -> true
  in
  Alcotest.(check bool) "merged log chronological" true
    (chronological r.merged.yield_samples);
  Alcotest.(check bool) "yield in range" true
    (List.for_all
       (fun (_, y) -> y >= 0. && y <= 1. +. 1e-9)
       r.merged.yield_samples);
  Alcotest.(check bool) "mean yield in range" true
    (r.merged.mean_min_yield >= 0.
    && r.merged.mean_min_yield <= 1. +. 1e-9)

let test_same_seed_twice () =
  let a = Simulator.Sharded.run ~seed:11 ~shards:4 config ~platform in
  let b = Simulator.Sharded.run ~seed:11 ~shards:4 config ~platform in
  Alcotest.(check bool) "identical merged stats" true
    (stats_equal a.merged b.merged)

(* The acceptance property: merged stats and event logs are byte-identical
   at VMALLOC_DOMAINS = 1, 2, and 4. *)
let test_domain_count_invariance () =
  let sequential =
    Simulator.Sharded.run ~seed:7 ~shards:4 config ~platform
  in
  List.iter
    (fun domains ->
      let pooled =
        Par.Pool.with_pool ~domains (fun pool ->
            Simulator.Sharded.run ~pool ~seed:7 ~shards:4 config ~platform)
      in
      Alcotest.(check bool)
        (Printf.sprintf "identical at %d domains" domains)
        true
        (stats_equal sequential.merged pooled.merged);
      Array.iteri
        (fun i per ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d identical at %d domains" i domains)
            true
            (stats_equal sequential.per_shard.(i) per))
        pooled.per_shard)
    [ 1; 2; 4 ]

(* Metric snapshots of a sharded run must also be domain-count invariant:
   each shard counts into its own task sink and Pool.map merges the sinks
   in shard order. *)
let test_metrics_domain_invariance () =
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let snapshot domains =
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    (if domains = 1 then
       ignore (Simulator.Sharded.run ~seed:13 ~shards:4 config ~platform)
     else
       Par.Pool.with_pool ~domains (fun pool ->
           ignore
             (Simulator.Sharded.run ~pool ~seed:13 ~shards:4 config
                ~platform)));
    Obs.Metrics.set_enabled false;
    Obs.Metrics.Snapshot.render (Obs.Metrics.snapshot ())
  in
  let reference = snapshot 1 in
  Alcotest.(check bool) "some metrics recorded" true
    (String.length reference > 0);
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "snapshot at %d domains" domains)
        reference (snapshot domains))
    [ 2; 4 ]

let test_adaptive_sharded_runs () =
  (* Each shard gets a fresh controller; the merged final threshold is the
     max over shards and must have moved under estimation error. *)
  let r =
    Simulator.Sharded.run ~seed:2 ~shards:2
      {
        config with
        max_error = 0.1;
        threshold =
          Simulator.Engine.Adaptive
            (Sharing.Adaptive_threshold.create ~quantile:90. ());
      }
      ~platform
  in
  Alcotest.(check bool) "threshold moved" true (r.merged.final_threshold > 0.);
  Array.iter
    (fun (s : Simulator.Engine.stats) ->
      Alcotest.(check bool) "merged >= shard threshold" true
        (r.merged.final_threshold >= s.final_threshold))
    r.per_shard

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("partition covers nodes", test_partition_covers_nodes);
      ("partition validation", test_partition_validation);
      ("single shard matches engine", test_single_shard_matches_engine);
      ("merged stats consistency", test_merged_consistency);
      ("same seed twice", test_same_seed_twice);
      ("domain-count invariance", test_domain_count_invariance);
      ("metrics domain invariance", test_metrics_domain_invariance);
      ("adaptive sharded runs", test_adaptive_sharded_runs);
    ]
