(** Seeded random-LP family generator for the differential test harness.

    Each family guarantees its feasibility class by construction (known
    witness point / explicit contradiction / explicit ray), so tests can
    assert solver verdicts without trusting either solver. Shared between
    the test suite and the bench [lp] section. Deterministic: generation is
    a pure function of the seed. *)

type family =
  | Feasible  (** interior witness, finite bounds — always [Optimal] *)
  | Infeasible  (** contains an explicit contradictory constraint pair *)
  | Unbounded
      (** feasible, with an unconstrained improving ray on the last
          variable *)
  | Degenerate
      (** feasible and bounded, with tight rows and zeroed witness
          coordinates forcing primal degeneracy *)
  | Banded
      (** as [Feasible], but each row's variables come from a narrow
          window sliding with the row index — banded bases, the sparse-LU
          sweet spot *)
  | Block_diag
      (** as [Feasible], but rows cycle through diagonal variable blocks
          — disconnected basis structure *)

val all_families : family list

val family_name : family -> string

val generate :
  ?density:float -> seed:int -> n_vars:int -> n_cons:int -> family -> Lp.Problem.t
(** Random LP of the given family. [density] (default 0.6) is the
    per-entry probability that a variable appears in a constraint row.
    [n_vars] must be at least 2. *)

val generate_milp :
  ?density:float -> seed:int -> n_vars:int -> n_cons:int -> unit -> Lp.Problem.t
(** Random bounded MILP, feasible by construction (integral witness, all
    variables integer with upper bounds in {1,2}) — small enough for the
    dense-oracle branch-and-bound cross-check. *)

val to_bytes : Lp.Problem.t -> string
(** Canonical lossless serialization (hex floats): two problems are equal
    iff their bytes are equal, making seed-determinism a string compare. *)
