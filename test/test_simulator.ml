(* Tests for the online-hosting extension: event queue, adaptive threshold
   controller, and the discrete-event engine. *)

let check_float = Alcotest.(check (float 1e-9))

(* Event queue. *)

let test_queue_ordering () =
  let q = Simulator.Event_queue.create () in
  Simulator.Event_queue.add q ~time:3. "c";
  Simulator.Event_queue.add q ~time:1. "a";
  Simulator.Event_queue.add q ~time:2. "b";
  let pop () =
    match Simulator.Event_queue.pop_min q with
    | Some (_, x) -> x
    | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Simulator.Event_queue.is_empty q)

let test_queue_tie_break_fifo () =
  let q = Simulator.Event_queue.create () in
  Simulator.Event_queue.add q ~time:1. "first";
  Simulator.Event_queue.add q ~time:1. "second";
  (match Simulator.Event_queue.pop_min q with
  | Some (_, x) -> Alcotest.(check string) "insertion order" "first" x
  | None -> Alcotest.fail "empty");
  match Simulator.Event_queue.pop_min q with
  | Some (_, x) -> Alcotest.(check string) "then second" "second" x
  | None -> Alcotest.fail "empty"

(* FIFO tie-break as a property: with any mix of (possibly equal)
   timestamps — including enough entries to force several heap growths past
   the initial capacity of 16 — equal times must pop in insertion order,
   i.e. the pop sequence is exactly the stable sort of the input. *)
let prop_queue_fifo_ties =
  QCheck2.Test.make ~name:"event queue pops equal times in insertion order"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 4))
    (fun times ->
      let q = Simulator.Event_queue.create () in
      List.iteri
        (fun i t -> Simulator.Event_queue.add q ~time:(float_of_int t) i)
        times;
      let rec drain acc =
        match Simulator.Event_queue.pop_min q with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> Float.compare t1 t2)
          (List.mapi (fun i t -> (float_of_int t, i)) times)
      in
      drain [] = expected)

let prop_queue_sorts =
  QCheck2.Test.make ~name:"event queue pops in time order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_bound_inclusive 1000.))
    (fun times ->
      let q = Simulator.Event_queue.create () in
      List.iteri (fun i t -> Simulator.Event_queue.add q ~time:t i) times;
      let rec drain acc =
        match Simulator.Event_queue.pop_min q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort Float.compare times)

(* Adaptive threshold. *)

let test_adaptive_initial () =
  let c = Sharing.Adaptive_threshold.create ~initial:0.2 () in
  check_float "initial" 0.2 (Sharing.Adaptive_threshold.threshold c);
  Alcotest.(check int) "no observations" 0
    (Sharing.Adaptive_threshold.observations c)

let test_adaptive_tracks_error () =
  let c = Sharing.Adaptive_threshold.create ~quantile:100. () in
  Sharing.Adaptive_threshold.observe c
    ~estimated:[| 0.5; 0.3; 0.2 |]
    ~actual:[| 0.45; 0.32; 0.2 |];
  (* Gaps: 0.05, 0.02, 0.0 -> max = 0.05. *)
  check_float "max gap" 0.05 (Sharing.Adaptive_threshold.threshold c);
  Alcotest.(check int) "three observations" 3
    (Sharing.Adaptive_threshold.observations c)

let test_adaptive_clamped () =
  let c =
    Sharing.Adaptive_threshold.create ~quantile:100. ~max_threshold:0.1 ()
  in
  Sharing.Adaptive_threshold.observe c ~estimated:[| 1.0 |] ~actual:[| 0.0 |];
  check_float "clamped" 0.1 (Sharing.Adaptive_threshold.threshold c)

let test_adaptive_window_forgets () =
  let c = Sharing.Adaptive_threshold.create ~quantile:100. ~window:2 () in
  Sharing.Adaptive_threshold.observe c ~estimated:[| 0.5 |] ~actual:[| 0.0 |];
  check_float "big gap" 0.5 (Sharing.Adaptive_threshold.threshold c);
  (* Two small observations push the 0.5 out of the window. *)
  Sharing.Adaptive_threshold.observe c
    ~estimated:[| 0.1; 0.1 |]
    ~actual:[| 0.09; 0.08 |];
  Alcotest.(check bool) "forgot the spike" true
    (Sharing.Adaptive_threshold.threshold c < 0.05)

let test_adaptive_validation () =
  Alcotest.check_raises "quantile"
    (Invalid_argument "Adaptive_threshold.create: quantile out of [0, 100]")
    (fun () ->
      ignore (Sharing.Adaptive_threshold.create ~quantile:150. ()));
  let c = Sharing.Adaptive_threshold.create () in
  Alcotest.check_raises "length"
    (Invalid_argument "Adaptive_threshold.observe: length mismatch")
    (fun () ->
      Sharing.Adaptive_threshold.observe c ~estimated:[| 1. |] ~actual:[||])

(* Active set: the engine's O(1) replacement for its former list ref. *)

let test_active_set_order () =
  let s = Simulator.Active_set.create () in
  List.iter (fun uid -> Simulator.Active_set.append s ~uid (uid * 10))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "insertion order" [ 10; 20; 30; 40; 50 ]
    (Simulator.Active_set.to_list s);
  Alcotest.(check bool) "remove middle" true
    (Simulator.Active_set.remove s ~uid:3);
  Alcotest.(check bool) "remove head" true
    (Simulator.Active_set.remove s ~uid:1);
  Alcotest.(check (list int)) "order preserved" [ 20; 40; 50 ]
    (Simulator.Active_set.to_list s);
  Simulator.Active_set.append s ~uid:6 60;
  Alcotest.(check (list int)) "append after removals" [ 20; 40; 50; 60 ]
    (Array.to_list (Simulator.Active_set.to_array s));
  Alcotest.(check bool) "remove tail" true
    (Simulator.Active_set.remove s ~uid:6);
  Alcotest.(check (list int)) "tail gone" [ 20; 40; 50 ]
    (Simulator.Active_set.to_list s);
  Alcotest.(check int) "length" 3 (Simulator.Active_set.length s)

let test_active_set_missing_and_duplicates () =
  let s = Simulator.Active_set.create () in
  Simulator.Active_set.append s ~uid:7 "x";
  Alcotest.(check bool) "missing uid" false
    (Simulator.Active_set.remove s ~uid:8);
  Alcotest.(check bool) "mem" true (Simulator.Active_set.mem s ~uid:7);
  Alcotest.check_raises "duplicate uid"
    (Invalid_argument "Active_set.append: duplicate uid") (fun () ->
      Simulator.Active_set.append s ~uid:7 "y");
  Alcotest.(check bool) "remove" true (Simulator.Active_set.remove s ~uid:7);
  Alcotest.(check bool) "now empty" true (Simulator.Active_set.is_empty s);
  Alcotest.(check (list string)) "empty array" []
    (Array.to_list (Simulator.Active_set.to_array s));
  (* Re-adding a removed uid is fine. *)
  Simulator.Active_set.append s ~uid:7 "z";
  Alcotest.(check (list string)) "readded" [ "z" ]
    (Simulator.Active_set.to_list s)

(* A random interleaving of appends and removals must match the
   list-reference semantics ([@ [x]] / List.filter) element for element. *)
let prop_active_set_matches_list =
  QCheck2.Test.make ~name:"active set ≡ list append/filter semantics"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 120) (int_range 0 30))
    (fun ops ->
      let s = Simulator.Active_set.create () in
      let reference = ref [] in
      let next = ref 0 in
      List.iter
        (fun op ->
          if op < 20 then begin
            (* append a fresh uid *)
            let uid = !next in
            incr next;
            Simulator.Active_set.append s ~uid uid;
            reference := !reference @ [ uid ]
          end
          else begin
            (* remove the op-th oldest live uid, when it exists *)
            match List.nth_opt !reference (op - 20) with
            | None -> ()
            | Some uid ->
                ignore (Simulator.Active_set.remove s ~uid);
                reference := List.filter (fun u -> u <> uid) !reference
          end)
        ops;
      Simulator.Active_set.to_list s = !reference)

(* Engine. *)

let platform =
  Array.init 4 (fun id -> Model.Node.make_cores ~id ~cores:4 ~cpu:0.6 ~mem:0.6)

let quick_config =
  {
    Simulator.Engine.default_config with
    horizon = 40.;
    arrival_rate = 0.5;
    mean_lifetime = 15.;
    reallocation_period = 8.;
  }

let test_engine_runs () =
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:1) quick_config ~platform
  in
  Alcotest.(check bool) "arrivals happened" true (stats.arrivals > 0);
  Alcotest.(check int) "admissions + rejections = arrivals" stats.arrivals
    (stats.admitted + stats.rejected);
  Alcotest.(check int) "reallocation count" 5 stats.reallocations;
  Alcotest.(check bool) "yield in range" true
    (stats.mean_min_yield >= 0. && stats.mean_min_yield <= 1. +. 1e-9);
  Alcotest.(check bool) "samples chronological" true
    (let rec sorted = function
       | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && sorted rest
       | _ -> true
     in
     sorted stats.yield_samples)

let test_engine_deterministic () =
  let run () =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:5) quick_config ~platform
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same arrivals" a.arrivals b.arrivals;
  Alcotest.(check int) "same migrations" a.migrations b.migrations;
  check_float "same yield" a.mean_min_yield b.mean_min_yield

(* Golden byte-identity: these numbers were captured from the engine
   *before* the active-set / admission / re-evaluation hot-path rework, so
   they pin down that the rework changed no observable behaviour — counters,
   the time-averaged yield to the last bit, and an order-sensitive digest of
   the full (time, yield) event log. *)

let samples_digest samples =
  List.fold_left
    (fun acc (t, y) ->
      let mix acc v =
        Int64.add (Int64.mul acc 1000003L) (Int64.bits_of_float v)
      in
      mix (mix acc t) y)
    0L samples

let check_golden name ~arrivals ~admitted ~rejected ~departures
    ~reallocations ~migrations ~yield_bits ~samples ~digest
    (stats : Simulator.Engine.stats) =
  Alcotest.(check int) (name ^ " arrivals") arrivals stats.arrivals;
  Alcotest.(check int) (name ^ " admitted") admitted stats.admitted;
  Alcotest.(check int) (name ^ " rejected") rejected stats.rejected;
  Alcotest.(check int) (name ^ " departures") departures stats.departures;
  Alcotest.(check int) (name ^ " reallocations") reallocations
    stats.reallocations;
  Alcotest.(check int) (name ^ " migrations") migrations stats.migrations;
  Alcotest.(check int64) (name ^ " yield bits") yield_bits
    (Int64.bits_of_float stats.mean_min_yield);
  Alcotest.(check int) (name ^ " samples") samples
    (List.length stats.yield_samples);
  Alcotest.(check int64) (name ^ " log digest") digest
    (samples_digest stats.yield_samples)

let test_engine_golden_seed0 () =
  check_golden "quick" ~arrivals:20 ~admitted:20 ~rejected:0 ~departures:14
    ~reallocations:5 ~migrations:11 ~yield_bits:4607182418800017408L
    ~samples:40 ~digest:4191249768112089187L
    (Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:0) quick_config
       ~platform)

let test_engine_golden_seed0_rejecting () =
  (* The tiny-platform scenario exercises the rejected-arrival skip path
     (56 rejections), so its digest additionally proves the skip changes
     no sample. *)
  let tiny =
    [| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.6 ~mem:0.05 |]
  in
  check_golden "tiny" ~arrivals:76 ~admitted:20 ~rejected:56 ~departures:17
    ~reallocations:7 ~migrations:0 ~yield_bits:4605462041597444841L
    ~samples:101 ~digest:9066990573517124366L
    (Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:0)
       { quick_config with horizon = 60.; arrival_rate = 1. }
       ~platform:tiny)

let test_engine_rejects_non_2d_platform () =
  let platform_3d =
    [|
      Model.Node.v ~id:0
        ~capacity:
          (Vec.Epair.uniform (Vec.Vector.of_array [| 0.5; 0.5; 0.5 |]));
    |]
  in
  Alcotest.check_raises "3-D platform"
    (Invalid_argument "Engine.run: platform must be 2-D (CPU, memory)")
    (fun () ->
      ignore (Simulator.Engine.run quick_config ~platform:platform_3d));
  Alcotest.check_raises "empty platform"
    (Invalid_argument "Engine.run: empty platform") (fun () ->
      ignore (Simulator.Engine.run quick_config ~platform:[||]))

let test_engine_reeval_skips_counted () =
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let tiny =
    [| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.6 ~mem:0.05 |]
  in
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:0)
      { quick_config with horizon = 60.; arrival_rate = 1. }
      ~platform:tiny
  in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "rejections happened" true (stats.rejected > 0);
  (* Exactly the rejected arrivals skip the re-evaluation — no more (every
     other event re-evaluates) and no fewer. *)
  Alcotest.(check int) "skips = rejections" stats.rejected
    (Obs.Metrics.Snapshot.counter_value snap "simulator.reeval_skips");
  Alcotest.(check int) "rejected counter" stats.rejected
    (Obs.Metrics.Snapshot.counter_value snap "simulator.rejected");
  Alcotest.(check int) "admitted counter" stats.admitted
    (Obs.Metrics.Snapshot.counter_value snap "simulator.admitted")

let test_engine_perfect_estimates_beat_caps_with_error () =
  (* With zero error all policies coincide on yields at reallocation
     points; with error, caps must not beat weights on average. *)
  let with_policy policy max_error =
    (Simulator.Engine.run
       ~rng:(Prng.Rng.create ~seed:7)
       { quick_config with policy; max_error; horizon = 60. }
       ~platform)
      .mean_min_yield
  in
  let weights = with_policy Sharing.Policy.Alloc_weights 0.15 in
  let caps = with_policy Sharing.Policy.Alloc_caps 0.15 in
  Alcotest.(check bool)
    (Printf.sprintf "weights %.3f >= caps %.3f" weights caps)
    true (weights >= caps -. 1e-9)

let test_engine_rejects_when_full () =
  let tiny =
    [| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.6 ~mem:0.05 |]
  in
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:3)
      { quick_config with horizon = 60.; arrival_rate = 1. }
      ~platform:tiny
  in
  Alcotest.(check bool) "some rejections" true (stats.rejected > 0)

let test_engine_adaptive_threshold_moves () =
  let controller = Sharing.Adaptive_threshold.create ~quantile:90. () in
  let stats =
    Simulator.Engine.run ~rng:(Prng.Rng.create ~seed:11)
      {
        quick_config with
        horizon = 80.;
        max_error = 0.1;
        threshold = Simulator.Engine.Adaptive controller;
      }
      ~platform
  in
  Alcotest.(check bool) "threshold moved off zero" true
    (stats.final_threshold > 0.);
  Alcotest.(check bool) "threshold below clamp" true
    (stats.final_threshold <= 0.5)

let test_engine_validation () =
  Alcotest.check_raises "horizon" (Invalid_argument "Engine.run: horizon")
    (fun () ->
      ignore
        (Simulator.Engine.run
           { quick_config with horizon = 0. }
           ~platform))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("event queue ordering", test_queue_ordering);
      ("event queue FIFO ties", test_queue_tie_break_fifo);
      ("active set order", test_active_set_order);
      ("active set missing/duplicates", test_active_set_missing_and_duplicates);
      ("adaptive initial", test_adaptive_initial);
      ("adaptive tracks error", test_adaptive_tracks_error);
      ("adaptive clamped", test_adaptive_clamped);
      ("adaptive window forgets", test_adaptive_window_forgets);
      ("adaptive validation", test_adaptive_validation);
      ("engine runs", test_engine_runs);
      ("engine deterministic", test_engine_deterministic);
      ("engine golden seed 0", test_engine_golden_seed0);
      ("engine golden seed 0 (rejecting)", test_engine_golden_seed0_rejecting);
      ("engine rejects non-2D platform", test_engine_rejects_non_2d_platform);
      ("engine re-eval skips counted", test_engine_reeval_skips_counted);
      ("weights >= caps under error", test_engine_perfect_estimates_beat_caps_with_error);
      ("engine rejects when full", test_engine_rejects_when_full);
      ("adaptive threshold moves", test_engine_adaptive_threshold_moves);
      ("engine validation", test_engine_validation);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_queue_sorts; prop_queue_fifo_ties; prop_active_set_matches_list ]
