(* LP differential test harness (DESIGN.md §12).

   Locks the sparse revised {!Lp.Simplex} against the dense tableau oracle
   {!Lp.Dense_simplex} on the {!Lp_gen} random families, and locks
   warm-started probe sequences against cold ones on Table-1-style
   instances. Pivot-count assertions read the lib/obs counters, so they are
   skipped when the [VMALLOC_DENSE_LP=1] CI leg routes every solve through
   the dense oracle (warm starts are ignored there by design). *)

let dense_env_on () =
  match Sys.getenv_opt "VMALLOC_DENSE_LP" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let dense_lu_env_on () =
  match Sys.getenv_opt "VMALLOC_DENSE_LU" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Run [f] with metrics freshly enabled, returning (result, counter reader);
   restores the previous metric state afterwards. *)
let with_metrics f =
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let result = f () in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  (result, fun name -> Obs.Metrics.Snapshot.counter_value snap name)

let sizes = [ (4, 3); (6, 6); (9, 12) ]
let seeds = [ 0; 1; 2; 3; 4 ]

let corpus family =
  List.concat_map
    (fun (n_vars, n_cons) ->
      List.map
        (fun seed -> (seed, n_vars, n_cons,
                      Lp_gen.generate ~seed ~n_vars ~n_cons family))
        seeds)
    sizes

(* Generator determinism: same seed => byte-identical problem. *)

let test_generator_deterministic () =
  List.iter
    (fun family ->
      let gen seed = Lp_gen.generate ~seed ~n_vars:7 ~n_cons:9 family in
      let name = Lp_gen.family_name family in
      Alcotest.(check string)
        (name ^ ": same seed, same bytes")
        (Lp_gen.to_bytes (gen 42))
        (Lp_gen.to_bytes (gen 42));
      Alcotest.(check bool)
        (name ^ ": different seed, different bytes")
        false
        (Lp_gen.to_bytes (gen 42) = Lp_gen.to_bytes (gen 43)))
    Lp_gen.all_families;
  let m seed = Lp_gen.generate_milp ~seed ~n_vars:5 ~n_cons:4 () in
  Alcotest.(check string) "milp: same seed, same bytes"
    (Lp_gen.to_bytes (m 7)) (Lp_gen.to_bytes (m 7))

(* Dense-vs-revised agreement on every family. The family fixes the
   expected verdict by construction, so a solver disagreeing with the
   oracle AND the construction cannot hide. *)

let check_optimal_pair ~ctx p =
  match (Lp.Dense_simplex.solve p, Lp.Simplex.solve p) with
  | Lp.Dense_simplex.Optimal d, Lp.Simplex.Optimal r ->
      let scale = 1e-6 *. (1. +. Float.abs d.objective) in
      Alcotest.(check bool)
        (ctx ^ ": objectives agree")
        true
        (Float.abs (d.objective -. r.objective) <= scale);
      Alcotest.(check bool)
        (ctx ^ ": dense point feasible")
        true
        (Lp.Problem.is_feasible ~tol:1e-5 p d.x);
      Alcotest.(check bool)
        (ctx ^ ": revised point feasible")
        true
        (Lp.Problem.is_feasible ~tol:1e-5 p r.x)
  | d, r ->
      Alcotest.failf "%s: expected Optimal/Optimal, got %s/%s" ctx
        (match d with
        | Lp.Dense_simplex.Optimal _ -> "Optimal"
        | Lp.Dense_simplex.Infeasible -> "Infeasible"
        | Lp.Dense_simplex.Unbounded -> "Unbounded")
        (match r with
        | Lp.Simplex.Optimal _ -> "Optimal"
        | Lp.Simplex.Infeasible -> "Infeasible"
        | Lp.Simplex.Unbounded -> "Unbounded")

let test_family_optimal family () =
  List.iter
    (fun (seed, n_vars, n_cons, p) ->
      let ctx =
        Printf.sprintf "%s seed=%d %dx%d" (Lp_gen.family_name family) seed
          n_vars n_cons
      in
      check_optimal_pair ~ctx p)
    (corpus family)

let test_family_infeasible () =
  List.iter
    (fun (seed, n_vars, n_cons, p) ->
      let ctx = Printf.sprintf "infeasible seed=%d %dx%d" seed n_vars n_cons in
      (match Lp.Dense_simplex.solve p with
      | Lp.Dense_simplex.Infeasible -> ()
      | _ -> Alcotest.fail (ctx ^ ": dense must report infeasible"));
      match Lp.Simplex.solve p with
      | Lp.Simplex.Infeasible -> ()
      | _ -> Alcotest.fail (ctx ^ ": revised must report infeasible"))
    (corpus Lp_gen.Infeasible)

let test_family_unbounded () =
  List.iter
    (fun (seed, n_vars, n_cons, p) ->
      let ctx = Printf.sprintf "unbounded seed=%d %dx%d" seed n_vars n_cons in
      (match Lp.Dense_simplex.solve p with
      | Lp.Dense_simplex.Unbounded -> ()
      | _ -> Alcotest.fail (ctx ^ ": dense must report unbounded"));
      match Lp.Simplex.solve p with
      | Lp.Simplex.Unbounded -> ()
      | _ -> Alcotest.fail (ctx ^ ": revised must report unbounded"))
    (corpus Lp_gen.Unbounded)

(* Basis round-trip: re-solving the same problem warm from its own optimal
   basis must agree with the cold solve, and the warm re-solve must not
   pivot more than the cold one. *)

let test_warm_resolve_agrees () =
  List.iter
    (fun (seed, n_vars, n_cons, p) ->
      let ctx = Printf.sprintf "warm seed=%d %dx%d" seed n_vars n_cons in
      let (cold, basis), pivots_of =
        with_metrics (fun () -> Lp.Simplex.solve_basis p)
      in
      let cold_pivots = pivots_of "simplex.pivots" in
      match cold with
      | Lp.Simplex.Optimal c ->
          if dense_env_on () then
            Alcotest.(check bool)
              (ctx ^ ": dense leg returns no basis")
              true (basis = None)
          else begin
            let b =
              match basis with
              | Some b -> b
              | None -> Alcotest.fail (ctx ^ ": optimal solve must yield basis")
            in
            let (warm, basis'), pivots_of' =
              with_metrics (fun () -> Lp.Simplex.solve_basis ~warm_basis:b p)
            in
            (match warm with
            | Lp.Simplex.Optimal w ->
                Alcotest.(check bool)
                  (ctx ^ ": warm objective agrees")
                  true
                  (Float.abs (w.objective -. c.objective)
                   <= 1e-6 *. (1. +. Float.abs c.objective))
            | _ -> Alcotest.fail (ctx ^ ": warm re-solve must stay optimal"));
            Alcotest.(check bool)
              (ctx ^ ": warm re-solve returns basis")
              true (basis' <> None);
            Alcotest.(check bool) (ctx ^ ": warm start recorded") true
              (pivots_of' "simplex.warm_starts" > 0);
            Alcotest.(check int)
              (ctx ^ ": no silent warm fallback")
              0
              (pivots_of' "simplex.warm_fallbacks");
            Alcotest.(check bool)
              (ctx ^ ": warm pivots <= cold pivots")
              true
              (pivots_of' "simplex.pivots" <= cold_pivots)
          end
      | _ -> Alcotest.fail (ctx ^ ": feasible family must be optimal"))
    (corpus Lp_gen.Feasible)

(* Pivot-count regression bound: the revised solver on the largest
   generated feasible/degenerate LPs must stay within a generous pivot
   budget — a pricing or eta regression shows up as an order-of-magnitude
   blowup long before it hits the iteration guard. *)

let test_pivot_regression_bound () =
  if not (dense_env_on ()) then
    List.iter
      (fun family ->
        let budget = 400 in
        let _, pivots_of =
          with_metrics (fun () ->
              List.iter
                (fun seed ->
                  ignore
                    (Lp.Simplex.solve
                       (Lp_gen.generate ~seed ~n_vars:9 ~n_cons:12 family)))
                seeds)
        in
        let pivots = pivots_of "simplex.pivots" in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %d pivots within budget %d"
             (Lp_gen.family_name family) pivots budget)
          true (pivots <= budget))
      [ Lp_gen.Feasible; Lp_gen.Degenerate ]

(* VMALLOC_DENSE_LP=1 dispatch: under the env toggle the facade must
   reproduce the dense oracle exactly and return no basis. Restores the
   variable afterwards ("0" parses as off; there is no Sys.unsetenv). *)

let with_dense_env f =
  let prev = Sys.getenv_opt "VMALLOC_DENSE_LP" in
  Unix.putenv "VMALLOC_DENSE_LP" "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "VMALLOC_DENSE_LP" (Option.value prev ~default:"0"))
    f

let test_dense_escape_hatch () =
  let p = Lp_gen.generate ~seed:11 ~n_vars:6 ~n_cons:6 Lp_gen.Feasible in
  with_dense_env @@ fun () ->
  let result, basis = Lp.Simplex.solve_basis p in
  Alcotest.(check bool) "dense leg: no basis" true (basis = None);
  match (result, Lp.Dense_simplex.solve p) with
  | Lp.Simplex.Optimal r, Lp.Dense_simplex.Optimal d ->
      Alcotest.(check (float 1e-9)) "dense leg: oracle objective verbatim"
        d.objective r.objective
  | _ -> Alcotest.fail "dense leg must match the oracle verdict"

(* ---- Sparse_lu unit layer (DESIGN.md §15) ----------------------------

   factor/ftran/btran/update checked against an independent dense
   Gaussian-elimination reference on random diagonally-dominant sparse
   matrices. *)

let dense_solve a b =
  let m = Array.length a in
  let w = Array.init m (fun i -> Array.copy a.(i)) in
  let x = Array.copy b in
  for k = 0 to m - 1 do
    let best = ref k in
    for i = k + 1 to m - 1 do
      if Float.abs w.(i).(k) > Float.abs w.(!best).(k) then best := i
    done;
    let t = w.(k) in
    w.(k) <- w.(!best);
    w.(!best) <- t;
    let xt = x.(k) in
    x.(k) <- x.(!best);
    x.(!best) <- xt;
    for i = k + 1 to m - 1 do
      let f = w.(i).(k) /. w.(k).(k) in
      if f <> 0. then begin
        for j = k to m - 1 do
          w.(i).(j) <- w.(i).(j) -. (f *. w.(k).(j))
        done;
        x.(i) <- x.(i) -. (f *. x.(k))
      end
    done
  done;
  for k = m - 1 downto 0 do
    let acc = ref x.(k) in
    for j = k + 1 to m - 1 do
      acc := !acc -. (w.(k).(j) *. x.(j))
    done;
    x.(k) <- !acc /. w.(k).(k)
  done;
  x

let transpose a =
  let m = Array.length a in
  Array.init m (fun i -> Array.init m (fun j -> a.(j).(i)))

(* Strictly diagonally dominant, so the matrix and every column
   replacement below stay comfortably nonsingular. *)
let random_matrix rng m ~density =
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j && Prng.Rng.uniform rng < density then
        a.(i).(j) <- Prng.Rng.uniform_range rng (-1.) 1.
    done;
    let s = Array.fold_left (fun acc v -> acc +. Float.abs v) 0. a.(i) in
    a.(i).(i) <- s +. Prng.Rng.uniform_range rng 1. 2.
  done;
  a

let factor_dense_cols a =
  let m = Array.length a in
  Lp.Sparse_lu.factor ~size:m
    ~col:(fun j f ->
      for i = 0 to m - 1 do
        if a.(i).(j) <> 0. then f i a.(i).(j)
      done)
    ()

let check_vec ~ctx expected got =
  Array.iteri
    (fun i e ->
      let tol = 1e-8 *. (1. +. Float.abs e) in
      if Float.abs (e -. got.(i)) > tol then
        Alcotest.failf "%s: component %d: expected %.17g, got %.17g" ctx i e
          got.(i))
    expected

let test_sparse_lu_solves () =
  List.iter
    (fun (m, seed, density) ->
      let ctx = Printf.sprintf "slu m=%d seed=%d" m seed in
      let rng = Prng.Rng.create ~seed in
      let a = random_matrix rng m ~density in
      let slu = factor_dense_cols a in
      Alcotest.(check int) (ctx ^ ": size") m (Lp.Sparse_lu.size slu);
      Alcotest.(check int)
        (ctx ^ ": nnz = basis + fill")
        (Lp.Sparse_lu.basis_nnz slu + Lp.Sparse_lu.fill_in slu)
        (Lp.Sparse_lu.nnz slu);
      Alcotest.(check int) (ctx ^ ": no updates yet") 0
        (Lp.Sparse_lu.updates slu);
      let b = Array.init m (fun _ -> Prng.Rng.uniform_range rng (-2.) 2.) in
      let v = Array.copy b in
      Lp.Sparse_lu.ftran slu v;
      check_vec ~ctx:(ctx ^ " ftran") (dense_solve a b) v;
      let c = Array.init m (fun _ -> Prng.Rng.uniform_range rng (-2.) 2.) in
      let y = Array.copy c in
      Lp.Sparse_lu.btran slu y;
      check_vec ~ctx:(ctx ^ " btran") (dense_solve (transpose a) c) y)
    [ (1, 3, 1.0); (2, 4, 0.8); (5, 5, 0.5); (12, 6, 0.3); (25, 7, 0.15) ]

let test_sparse_lu_update () =
  let m = 14 in
  let rng = Prng.Rng.create ~seed:9 in
  let a = random_matrix rng m ~density:0.3 in
  let slu = factor_dense_cols a in
  for k = 0 to 7 do
    let ctx = Printf.sprintf "slu update %d" k in
    let p = k * 5 mod m in
    (* New column, kept diagonally heavy at row p. *)
    let col = Array.make m 0. in
    for i = 0 to m - 1 do
      if Prng.Rng.uniform rng < 0.4 then
        col.(i) <- Prng.Rng.uniform_range rng (-1.) 1.
    done;
    col.(p) <- Prng.Rng.uniform_range rng 4. 6.;
    (* The entering FTRAN both answers B^-1 col and stashes the spike. *)
    let d = Array.copy col in
    Lp.Sparse_lu.ftran_entering slu d;
    check_vec ~ctx:(ctx ^ " entering ftran") (dense_solve a col) d;
    Lp.Sparse_lu.update slu ~pos:p;
    for i = 0 to m - 1 do
      a.(i).(p) <- col.(i)
    done;
    Alcotest.(check int) (ctx ^ ": update count") (k + 1)
      (Lp.Sparse_lu.updates slu);
    let b = Array.init m (fun _ -> Prng.Rng.uniform_range rng (-2.) 2.) in
    let v = Array.copy b in
    Lp.Sparse_lu.ftran slu v;
    check_vec ~ctx:(ctx ^ " ftran") (dense_solve a b) v;
    let c = Array.init m (fun _ -> Prng.Rng.uniform_range rng (-2.) 2.) in
    let y = Array.copy c in
    Lp.Sparse_lu.btran slu y;
    check_vec ~ctx:(ctx ^ " btran") (dense_solve (transpose a) c) y
  done

let test_sparse_lu_singular () =
  (* A zero column is singular... *)
  (try
     ignore
       (Lp.Sparse_lu.factor ~size:2
          ~col:(fun j f -> if j = 0 then f 0 1.)
          ());
     Alcotest.fail "zero column must raise Singular"
   with Lp.Sparse_lu.Singular -> ());
  (* ... as is a duplicated column, whatever its magnitude ... *)
  (let rng = Prng.Rng.create ~seed:21 in
   let a = random_matrix rng 6 ~density:0.5 in
   for i = 0 to 5 do
     a.(i).(1) <- a.(i).(0)
   done;
   try
     ignore (factor_dense_cols a);
     Alcotest.fail "duplicate column must raise Singular"
   with Lp.Sparse_lu.Singular -> ());
  (* ... but a well-conditioned matrix scaled down to 1e-12 is NOT: the
     singularity threshold is relative to each column's magnitude (the
     absolute-threshold regression this PR fixes). *)
  let rng = Prng.Rng.create ~seed:22 in
  let a = random_matrix rng 8 ~density:0.4 in
  let scaled = Array.map (Array.map (fun v -> v *. 1e-12)) a in
  let slu = factor_dense_cols scaled in
  let b = Array.init 8 (fun _ -> Prng.Rng.uniform_range rng (-1.) 1.) in
  let v = Array.copy b in
  Lp.Sparse_lu.ftran slu v;
  Array.iteri
    (fun i e ->
      let tol = 1e-6 *. (1. +. Float.abs e) in
      if Float.abs (e -. v.(i)) > tol then
        Alcotest.failf "scaled ftran: component %d: expected %g, got %g" i e
          v.(i))
    (dense_solve scaled b)

(* ---- Factorization-backend bit-identity ------------------------------

   The acceptance bar of the sparse-LU PR: the Markowitz/Forrest-Tomlin
   backend and the dense-LU backend (VMALLOC_DENSE_LU=1) must return
   bitwise-identical results — verdict, objective and every coordinate,
   cold and warm — on every generator family, because both pivot through
   the same discrete bases and the final point is recomputed through one
   canonical factorization. Pool fan-out must not change a single bit
   either. *)

let with_dense_lu_env f =
  let prev = Sys.getenv_opt "VMALLOC_DENSE_LU" in
  Unix.putenv "VMALLOC_DENSE_LU" "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "VMALLOC_DENSE_LU" (Option.value prev ~default:"0"))
    f

let result_bits = function
  | Lp.Simplex.Infeasible -> [ 1L ]
  | Lp.Simplex.Unbounded -> [ 2L ]
  | Lp.Simplex.Optimal { objective; x } ->
      3L
      :: Int64.bits_of_float objective
      :: Array.to_list (Array.map Int64.bits_of_float x)

(* One problem's full discrete trace: cold solve, then a warm re-solve
   from the captured basis when one exists. *)
let solve_trace p =
  let result, basis = Lp.Simplex.solve_basis p in
  result_bits result
  @
  match basis with
  | None -> [ 0L ]
  | Some b -> 4L :: result_bits (Lp.Simplex.solve ~warm_basis:b p)

let bit_corpus =
  lazy
    (List.concat_map
       (fun family ->
         List.map (fun (s, _, _, p) -> (family, s, p)) (corpus family))
       Lp_gen.all_families)

let test_backend_bit_identity () =
  List.iter
    (fun (family, seed, p) ->
      let sparse = solve_trace p in
      let dense_lu = with_dense_lu_env (fun () -> solve_trace p) in
      Alcotest.(check (list int64))
        (Printf.sprintf "%s seed=%d: sparse-LU bits = dense-LU bits"
           (Lp_gen.family_name family) seed)
        dense_lu sparse)
    (Lazy.force bit_corpus)

let test_backend_bit_identity_pools () =
  let input =
    Array.of_list (List.map (fun (_, _, p) -> p) (Lazy.force bit_corpus))
  in
  let traces () =
    List.map
      (fun domains ->
        Par.Pool.with_pool ~domains (fun pool ->
            Par.Pool.map pool input solve_trace))
      [ 1; 2; 4 ]
  in
  let check_equal ~ctx = function
    | reference :: rest ->
        List.iter
          (fun t ->
            Alcotest.(check bool) ctx true (t = (reference : int64 list array)))
          rest;
        reference
    | [] -> assert false
  in
  let sparse =
    check_equal ~ctx:"sparse traces pool-size invariant" (traces ())
  in
  let dense_lu =
    with_dense_lu_env (fun () ->
        check_equal ~ctx:"dense-LU traces pool-size invariant" (traces ()))
  in
  Alcotest.(check bool) "sparse = dense-LU at every pool size" true
    (sparse = dense_lu)

(* Table-1-style probe sequences: the warm-started yield search must agree
   with the cold one on the answer while spending strictly fewer pivots.
   The paper generator scales CPU need to exactly match capacity, so its
   relaxations are feasible at yield 1 and the search returns after one
   probe; these hand-built instances oversubscribe CPU by [factor], forcing
   max yield ~ 1/factor and a full bisection (a dozen-plus probes). *)

let oversubscribed ~seed ~nodes:n_nodes ~services:n_services ~factor =
  let rng = Prng.Rng.create ~seed in
  let nodes =
    Array.init n_nodes (fun id ->
        Model.Node.make_cores ~id ~cores:4
          ~cpu:(Prng.Rng.uniform_range rng 1.5 2.5)
          ~mem:1.0)
  in
  let total_cpu =
    Array.fold_left
      (fun acc (nd : Model.Node.t) ->
        acc +. Vec.Vector.get nd.capacity.Vec.Epair.aggregate 0)
      0. nodes
  in
  let per_service = factor *. total_cpu /. Float.of_int n_services in
  let services =
    Array.init n_services (fun id ->
        let agg = per_service *. Prng.Rng.uniform_range rng 0.7 1.3 in
        Model.Service.make_2d ~id
          ~mem_req:(Prng.Rng.uniform_range rng 0.05 0.15)
          ~cpu_need:(agg /. 2., agg) ())
  in
  Model.Instance.v ~nodes ~services

(* ---- Relative-singularity regression (the Lu.factor 1e-11 bugfix) ----

   Scale every constraint row of a Table-1-style relaxation down by 1e-12:
   the feasible region is untouched, but every structural basis column's
   magnitude drops to ~1e-12. The old absolute threshold declared such
   bases singular at warm install and silently fell back to a cold solve;
   the relative threshold must warm-start them — zero fallbacks — and
   reproduce the cold objective. *)

let scale_rows s (p : Lp.Problem.t) =
  {
    p with
    Lp.Problem.constraints =
      List.map
        (fun (c : Lp.Problem.linear_constraint) ->
          {
            c with
            Lp.Problem.coeffs =
              List.map (fun (v, a) -> (v, a *. s)) c.Lp.Problem.coeffs;
            rhs = c.Lp.Problem.rhs *. s;
          })
        p.Lp.Problem.constraints;
  }

let test_scaled_rows_warm_start () =
  if not (dense_env_on ()) then begin
    let instance = oversubscribed ~seed:5 ~nodes:3 ~services:6 ~factor:2. in
    let lp, _ = Heuristics.Milp.formulation ~integer:false instance in
    let p = scale_rows 1e-12 lp in
    let (cold, basis), _ = with_metrics (fun () -> Lp.Simplex.solve_basis p) in
    let cobj =
      match cold with
      | Lp.Simplex.Optimal c -> c.objective
      | _ -> Alcotest.fail "scaled relaxation must stay optimal"
    in
    let b =
      match basis with
      | Some b -> b
      | None -> Alcotest.fail "scaled cold solve must yield a basis"
    in
    let (warm, _), counters =
      with_metrics (fun () -> Lp.Simplex.solve_basis ~warm_basis:b p)
    in
    (match warm with
    | Lp.Simplex.Optimal w ->
        Alcotest.(check (float 1e-6)) "scaled warm objective = cold" cobj
          w.objective
    | _ -> Alcotest.fail "scaled warm re-solve must stay optimal");
    Alcotest.(check int) "scaled warm: zero fallbacks" 0
      (counters "simplex.warm_fallbacks");
    Alcotest.(check bool) "scaled warm: warm start recorded" true
      (counters "simplex.warm_starts" > 0)
  end

let probe_instances =
  lazy
    (List.map
       (fun seed ->
         (seed, oversubscribed ~seed ~nodes:3 ~services:8 ~factor:2.))
       [ 1; 2; 3 ])

let run_search ~warm instance =
  with_metrics (fun () -> Heuristics.Milp.relaxed_yield_search ~warm instance)

let test_probe_sequence_warm_vs_cold () =
  List.iter
    (fun (seed, instance) ->
      let ctx = Printf.sprintf "probe seed=%d" seed in
      let cold, cold_of = run_search ~warm:false instance in
      let warm, warm_of = run_search ~warm:true instance in
      (match (cold, warm) with
      | Some (_, yc), Some (_, yw) ->
          Alcotest.(check bool)
            (ctx ^ ": warm and cold yields agree")
            true
            (Float.abs (yc -. yw)
             <= 2. *. Heuristics.Binary_search.default_tolerance)
      | None, None -> ()
      | _ -> Alcotest.fail (ctx ^ ": warm and cold verdicts differ"));
      if not (dense_env_on ()) then begin
        Alcotest.(check bool) (ctx ^ ": warm starts recorded") true
          (warm_of "simplex.warm_starts" > 0);
        Alcotest.(check int)
          (ctx ^ ": no silent warm fallback")
          0
          (warm_of "simplex.warm_fallbacks");
        if not (dense_lu_env_on ()) then
          Alcotest.(check bool)
            (ctx ^ ": Forrest-Tomlin updates exercised")
            true
            (warm_of "simplex.ft_updates" > 0);
        Alcotest.(check bool)
          (Printf.sprintf "%s: warm pivots %d < cold pivots %d" ctx
             (warm_of "simplex.pivots") (cold_of "simplex.pivots"))
          true
          (warm_of "simplex.pivots" < cold_of "simplex.pivots")
      end)
    (Lazy.force probe_instances)

(* Probed rounding variants: deterministic given the seed, and their
   placements are real (water-filled) solutions. *)

let test_probed_rounding_deterministic () =
  List.iter
    (fun (seed, instance) ->
      let ctx = Printf.sprintf "rounding seed=%d" seed in
      let run algo =
        match algo ~rng:(Prng.Rng.create ~seed:77) instance with
        | Some (s : Heuristics.Vp_solver.solution) -> Some s.min_yield
        | None -> None
      in
      let a = run (fun ~rng i -> Heuristics.Rounding.rrnd_probed ~rng i) in
      let b = run (fun ~rng i -> Heuristics.Rounding.rrnd_probed ~rng i) in
      Alcotest.(check bool) (ctx ^ ": rrnd-probed deterministic") true (a = b);
      let c = run (fun ~rng i -> Heuristics.Rounding.rrnz_probed ~rng i) in
      let d = run (fun ~rng i -> Heuristics.Rounding.rrnz_probed ~rng i) in
      Alcotest.(check bool) (ctx ^ ": rrnz-probed deterministic") true (c = d);
      match run (fun ~rng i -> Heuristics.Rounding.rrnz_probed ~rng i) with
      | Some y -> Alcotest.(check bool) (ctx ^ ": yield in [0,1]") true
                    (y >= 0. && y <= 1.)
      | None -> ())
    (Lazy.force probe_instances)

(* Full-search differential: the MILP yield search must return the same
   yield whether its LPs run on the revised solver or the dense oracle. *)

let test_probe_sequence_vs_dense_oracle () =
  if not (dense_env_on ()) then
    List.iter
      (fun (seed, instance) ->
        let ctx = Printf.sprintf "probe-vs-dense seed=%d" seed in
        let revised = Heuristics.Milp.relaxed_yield_search instance in
        let dense =
          with_dense_env (fun () ->
              Heuristics.Milp.relaxed_yield_search instance)
        in
        match (revised, dense) with
        | Some (_, yr), Some (_, yd) ->
            Alcotest.(check bool)
              (ctx ^ ": revised and dense yields agree")
              true
              (Float.abs (yr -. yd)
               <= 2. *. Heuristics.Binary_search.default_tolerance)
        | None, None -> ()
        | _ -> Alcotest.fail (ctx ^ ": verdicts differ across solvers"))
      (Lazy.force probe_instances)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("generator determinism", test_generator_deterministic);
      ("feasible family agrees", test_family_optimal Lp_gen.Feasible);
      ("degenerate family agrees", test_family_optimal Lp_gen.Degenerate);
      ("banded family agrees", test_family_optimal Lp_gen.Banded);
      ("block-diagonal family agrees", test_family_optimal Lp_gen.Block_diag);
      ("infeasible family agrees", test_family_infeasible);
      ("unbounded family agrees", test_family_unbounded);
      ("warm re-solve agrees", test_warm_resolve_agrees);
      ("pivot regression bound", test_pivot_regression_bound);
      ("dense escape hatch", test_dense_escape_hatch);
      ("sparse LU solves", test_sparse_lu_solves);
      ("sparse LU Forrest-Tomlin update", test_sparse_lu_update);
      ("sparse LU singularity thresholds", test_sparse_lu_singular);
      ("backend bit identity", test_backend_bit_identity);
      ("backend bit identity under pools", test_backend_bit_identity_pools);
      ("scaled rows warm start", test_scaled_rows_warm_start);
      ("probe sequence warm vs cold", test_probe_sequence_warm_vs_cold);
      ("probed rounding deterministic", test_probed_rounding_deterministic);
      ("probe sequence vs dense oracle", test_probe_sequence_vs_dense_oracle);
    ]
