let () =
  (* VMALLOC_OBS=1 runs the whole suite with live metric sinks (the CI
     matrix does), so instrumentation overhead paths get exercised too. *)
  if Obs.Metrics.enabled_from_env () then Obs.Metrics.set_enabled true;
  Alcotest.run "vmalloc"
    [
      ("vector", Test_vector.suite);
      ("epair+metric", Test_epair.suite);
      ("lp", Test_lp.suite);
      ("simplex-diff", Test_simplex_diff.suite);
      ("branch-bound", Test_branch_bound.suite);
      ("model", Test_model.suite);
      ("codec", Test_codec.suite);
      ("packing", Test_packing.suite);
      ("heuristics", Test_heuristics.suite);
      ("binary-search-diff", Test_binary_search_diff.suite);
      ("batch-diff", Test_batch_diff.suite);
      ("kernel-diff", Test_kernel_diff.suite);
      ("greedy-criteria", Test_greedy_criteria.suite);
      ("workload", Test_workload.suite);
      ("sharing", Test_sharing.suite);
      ("stats", Test_stats.suite);
      ("experiments", Test_experiments.suite);
      ("rng", Test_rng.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("simulator", Test_simulator.suite);
      ("sharded", Test_sharded.suite);
      ("repair-diff", Test_repair_diff.suite);
      ("core-facade", Test_core.suite);
    ]
