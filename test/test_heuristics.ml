(* Tests for the placement heuristics: binary search, VP solvers, greedy
   family, the MILP formulation, and randomized rounding. *)

let check_float = Alcotest.(check (float 1e-9))

(* Small deterministic instances. *)

let instance_fig1 =
  Model.Instance.v
    ~nodes:
      [|
        Model.Node.make_cores ~id:0 ~cores:4 ~cpu:3.2 ~mem:1.0;
        Model.Node.make_cores ~id:1 ~cores:2 ~cpu:2.0 ~mem:0.5;
      |]
    ~services:
      [|
        Model.Service.make_2d ~id:0 ~cpu_req:(0.5, 1.0) ~mem_req:0.5
          ~cpu_need:(0.5, 1.0) ();
      |]

let gen_instance ~seed ~hosts ~services ~slack =
  Workload.Generator.generate
    ~rng:(Prng.Rng.create ~seed)
    {
      Workload.Generator.hosts;
      services;
      cov = 0.5;
      slack;
      cpu_homogeneous = false;
      mem_homogeneous = false;
    }

(* Binary search. *)

let test_binary_search_exact_one () =
  match Heuristics.Binary_search.maximize (fun y -> if y <= 1. then Some y else None)
  with
  | Some (_, y) -> check_float "reaches 1" 1. y
  | None -> Alcotest.fail "should succeed"

let test_binary_search_threshold () =
  let target = 0.37 in
  match
    Heuristics.Binary_search.maximize (fun y -> if y <= target then Some y else None)
  with
  | Some (_, y) ->
      Alcotest.(check bool) "within tolerance below target" true
        (y <= target && target -. y <= 2. *. Heuristics.Binary_search.default_tolerance)
  | None -> Alcotest.fail "should succeed"

let test_binary_search_zero_fail () =
  Alcotest.(check bool) "failure at 0 propagates" true
    (Heuristics.Binary_search.maximize (fun _ -> None) = None)

(* A non-positive tolerance must be clamped to the default, not trusted:
   with the bracket never allowed to close, [~tolerance:0.] would bisect
   forever. The oracle below fails at 1 so the search cannot take the
   feasible-at-1 shortcut — it has to run (and terminate) the loop. *)
let test_binary_search_nonpositive_tolerance_clamped () =
  let target = 0.37 in
  let oracle y = if y <= target then Some y else None in
  let expected = Heuristics.Binary_search.maximize oracle in
  List.iter
    (fun tolerance ->
      match (Heuristics.Binary_search.maximize ~tolerance oracle, expected) with
      | Some (_, y), Some (_, y') ->
          check_float
            (Printf.sprintf "tolerance %g clamped to default" tolerance)
            y' y
      | _ -> Alcotest.fail "should terminate and succeed")
    [ 0.; -1e-6; neg_infinity ]

(* VP solver on Fig. 1: the only service should land on node B with yield
   1. *)

let any_strategy =
  {
    Packing.Strategy.algo = Packing.Strategy.First_fit;
    item_order = Vec.Metric.Unsorted;
    bin_order = Vec.Metric.Unsorted;
    variant = Packing.Strategy.Vp;
  }

let test_vp_solver_fig1 () =
  match Heuristics.Vp_solver.solve any_strategy instance_fig1 with
  | Some sol ->
      check_float "yield 1 on node B" 1.0 sol.min_yield;
      Alcotest.(check int) "node B" 1 sol.placement.(0)
  | None -> Alcotest.fail "should solve"

let test_items_at_yield () =
  let items = Heuristics.Vp_solver.items_at_yield instance_fig1 0.6 in
  check_float "aggregate demand" 1.6
    (Vec.Vector.get items.(0).Packing.Item.demand.Vec.Epair.aggregate 0)

(* Greedy. *)

let test_greedy_counts () =
  Alcotest.(check int) "49 combinations" 49
    (List.length Heuristics.Greedy.all_combinations)

let test_greedy_fig1 () =
  (* Worst-fit P6 places the service on the biggest node (A, yield 0.6);
     METAGREEDY must find B (yield 1.0). *)
  (match Heuristics.Greedy.solve Heuristics.Greedy.S1 Heuristics.Greedy.P6
           instance_fig1
   with
  | Some sol -> check_float "P6 lands on A" 0.6 sol.min_yield
  | None -> Alcotest.fail "P6 should place");
  match Heuristics.Greedy.metagreedy instance_fig1 with
  | Some sol -> check_float "METAGREEDY finds B" 1.0 sol.min_yield
  | None -> Alcotest.fail "METAGREEDY should place"

let test_greedy_infeasible () =
  let inst =
    Model.Instance.v
      ~nodes:[| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.5 ~mem:0.2 |]
      ~services:[| Model.Service.make_2d ~id:0 ~mem_req:0.5 () |]
  in
  Alcotest.(check bool) "no greedy placement" true
    (Heuristics.Greedy.metagreedy inst = None)

let test_metagreedy_beats_singletons () =
  let inst = gen_instance ~seed:5 ~hosts:6 ~services:18 ~slack:0.4 in
  match Heuristics.Greedy.metagreedy inst with
  | None -> Alcotest.fail "metagreedy failed"
  | Some best ->
      List.iter
        (fun (s, p) ->
          match Heuristics.Greedy.solve s p inst with
          | None -> ()
          | Some sol ->
              Alcotest.(check bool)
                (Printf.sprintf "META >= %s/%s" (Heuristics.Greedy.sort_name s)
                   (Heuristics.Greedy.place_name p))
                true
                (best.min_yield >= sol.min_yield -. 1e-12))
        Heuristics.Greedy.all_combinations

(* MILP formulation. *)

let test_milp_formulation_shape () =
  let problem, mapping = Heuristics.Milp.formulation instance_fig1 in
  Alcotest.(check int) "variables" ((2 * 1 * 2) + 1) problem.Lp.Problem.n_vars;
  Alcotest.(check int) "objective var" 4 mapping.Heuristics.Milp.y_min;
  Alcotest.(check bool) "e vars integral" true problem.Lp.Problem.integer.(0);
  Alcotest.(check bool) "y vars rational" false
    problem.Lp.Problem.integer.(mapping.Heuristics.Milp.y 0 0)

let test_milp_exact_fig1 () =
  match Heuristics.Milp.solve_exact instance_fig1 with
  | Some (Some e) ->
      check_float "optimal Y" 1.0 e.milp_objective;
      Alcotest.(check int) "places on B" 1 e.solution.placement.(0)
  | _ -> Alcotest.fail "exact solve failed"

let test_milp_infeasible_instance () =
  let inst =
    Model.Instance.v
      ~nodes:[| Model.Node.make_cores ~id:0 ~cores:4 ~cpu:0.5 ~mem:0.2 |]
      ~services:[| Model.Service.make_2d ~id:0 ~mem_req:0.5 () |]
  in
  Alcotest.(check bool) "infeasible" true
    (Heuristics.Milp.solve_exact inst = Some None)

let test_relaxed_bound_dominates () =
  let inst = gen_instance ~seed:11 ~hosts:4 ~services:10 ~slack:0.5 in
  match
    (Heuristics.Milp.relaxed_bound inst, Heuristics.Algorithms.metahvp.solve inst)
  with
  | Some bound, Some sol ->
      Alcotest.(check bool) "LP bound >= heuristic yield" true
        (bound +. 1e-6 >= sol.min_yield)
  | Some _, None -> ()
  | None, _ -> Alcotest.fail "relaxation should be feasible"

let test_relaxed_e_matrix_rows_sum_to_one () =
  let inst = gen_instance ~seed:13 ~hosts:4 ~services:8 ~slack:0.5 in
  match Heuristics.Milp.relaxed_e_matrix inst with
  | None -> Alcotest.fail "relaxation should be feasible"
  | Some e ->
      Array.iteri
        (fun j row ->
          let sum = Array.fold_left ( +. ) 0. row in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "row %d sums to 1" j)
            1.0 sum)
        e

(* Rounding. *)

let test_round_probabilities_respects_requirements () =
  (* Two services of 0.6 memory, two nodes of 1.0 memory: both cannot share
     a node; rounding must split them even with probabilities pushing
     together. *)
  let inst =
    Model.Instance.v
      ~nodes:
        [|
          Model.Node.make_cores ~id:0 ~cores:4 ~cpu:1.0 ~mem:1.0;
          Model.Node.make_cores ~id:1 ~cores:4 ~cpu:1.0 ~mem:1.0;
        |]
      ~services:
        [|
          Model.Service.make_2d ~id:0 ~mem_req:0.6 ();
          Model.Service.make_2d ~id:1 ~mem_req:0.6 ();
        |]
  in
  let e_matrix = [| [| 1.0; 0.0 |]; [| 1.0; 0.0 |] |] in
  (* RRND-style: service 1's only nonzero probability is node 0, which is
     full after service 0 -> failure. *)
  Alcotest.(check bool) "rrnd-style fails" true
    (Heuristics.Rounding.round_probabilities
       ~rng:(Prng.Rng.create ~seed:0)
       ~e_matrix inst
     = None);
  (* RRNZ fixes it by injecting epsilon. *)
  match Heuristics.Rounding.rrnz ~rng:(Prng.Rng.create ~seed:0) inst with
  | Some sol ->
      Alcotest.(check bool) "services split" true
        (sol.placement.(0) <> sol.placement.(1))
  | None -> Alcotest.fail "rrnz should succeed"

let test_rounding_deterministic_given_seed () =
  let inst = gen_instance ~seed:17 ~hosts:4 ~services:10 ~slack:0.5 in
  let a = Heuristics.Rounding.rrnz ~rng:(Prng.Rng.create ~seed:9) inst in
  let b = Heuristics.Rounding.rrnz ~rng:(Prng.Rng.create ~seed:9) inst in
  match (a, b) with
  | Some sa, Some sb ->
      Alcotest.(check bool) "same placement" true
        (sa.placement = sb.placement)
  | None, None -> ()
  | _ -> Alcotest.fail "nondeterministic"

(* Meta algorithms. *)

let test_metavp_at_least_single_strategies () =
  let inst = gen_instance ~seed:23 ~hosts:6 ~services:20 ~slack:0.4 in
  match Heuristics.Algorithms.metavp.solve inst with
  | None ->
      List.iter
        (fun strategy ->
          Alcotest.(check bool)
            (Packing.Strategy.name strategy ^ " also fails")
            true
            (Heuristics.Vp_solver.solve strategy inst = None))
        Packing.Strategy.vp_all
  | Some meta ->
      List.iter
        (fun strategy ->
          match Heuristics.Vp_solver.solve strategy inst with
          | None -> ()
          | Some sol ->
              Alcotest.(check bool)
                ("METAVP >= " ^ Packing.Strategy.name strategy)
                true
                (meta.min_yield >= sol.min_yield -. 1e-3))
        Packing.Strategy.vp_all

let test_algorithm_registry () =
  Alcotest.(check int) "5 majors" 5
    (List.length (Heuristics.Algorithms.majors ~seed:0));
  Alcotest.(check bool) "lookup" true
    (Heuristics.Algorithms.by_name ~seed:0 "metahvplight" <> None);
  Alcotest.(check bool) "unknown" true
    (Heuristics.Algorithms.by_name ~seed:0 "nope" = None)

(* Properties. *)

let small_instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* hosts = int_range 2 5 in
    let* services = int_range 2 12 in
    let* slack10 = int_range 3 7 in
    pure (seed, hosts, services, float_of_int slack10 /. 10.))

let solutions_are_valid ~name solve =
  QCheck2.Test.make ~name ~count:60 small_instance_gen
    (fun (seed, hosts, services, slack) ->
      let inst = gen_instance ~seed ~hosts ~services ~slack in
      match solve inst with
      | None -> true
      | Some (sol : Heuristics.Vp_solver.solution) -> (
          sol.min_yield >= -1e-9
          && sol.min_yield <= 1. +. 1e-9
          &&
          match Model.Placement.water_fill inst sol.placement with
          | None -> false
          | Some alloc -> (
              match Model.Placement.check_constraints inst alloc with
              | Ok () -> true
              | Error _ -> false)))

let prop_metahvp_valid =
  solutions_are_valid ~name:"METAHVP solutions valid"
    Heuristics.Algorithms.metahvp.solve

let prop_metagreedy_valid =
  solutions_are_valid ~name:"METAGREEDY solutions valid"
    Heuristics.Greedy.metagreedy

let prop_rrnz_valid =
  solutions_are_valid ~name:"RRNZ solutions valid" (fun inst ->
      Heuristics.Rounding.rrnz ~rng:(Prng.Rng.create ~seed:1) inst)

(* Invariants every registry algorithm must satisfy on any reported
   solution: the placement is structurally valid and feasible at yield 0 in
   every dimension (elementary and aggregate requirements both fit), and
   the reported minimum yield equals an independent
   [Model.Placement.min_yield] recomputation. The bound is exact (1e-9):
   all algorithms score through the same water-filling evaluation, so any
   drift indicates a stale or hand-edited [min_yield]. *)

let placement_invariants ~name solve =
  QCheck2.Test.make ~name ~count:40 small_instance_gen
    (fun (seed, hosts, services, slack) ->
      let inst = gen_instance ~seed ~hosts ~services ~slack in
      match solve inst with
      | None -> true
      | Some (sol : Heuristics.Vp_solver.solution) ->
          Model.Placement.is_valid inst sol.placement
          && Model.Placement.feasible inst sol.placement
          &&
          match Model.Placement.min_yield inst sol.placement with
          | None -> false
          | Some y -> Float.abs (y -. sol.min_yield) <= 1e-9)

let prop_registry_invariants =
  List.map
    (fun (algo : Heuristics.Algorithms.t) ->
      placement_invariants
        ~name:(algo.name ^ ": feasible placement, yield recomputes")
        algo.solve)
    (Heuristics.Algorithms.majors ~seed:3
    @ [ Heuristics.Algorithms.metahvplight ])

let prop_heuristics_below_milp_optimum =
  QCheck2.Test.make ~name:"heuristics never beat the exact MILP" ~count:25
    QCheck2.Gen.(
      let* seed = int_range 0 1000 in
      let* hosts = int_range 2 3 in
      let* services = int_range 2 6 in
      pure (seed, hosts, services))
    (fun (seed, hosts, services) ->
      let inst = gen_instance ~seed ~hosts ~services ~slack:0.5 in
      match Heuristics.Milp.solve_exact ~node_limit:50_000 inst with
      | None -> QCheck2.assume_fail () (* truncated: skip *)
      | Some None ->
          (* Infeasible: heuristics must fail too. *)
          Heuristics.Algorithms.metahvp.solve inst = None
      | Some (Some exact) -> (
          match Heuristics.Algorithms.metahvp.solve inst with
          | None -> true
          | Some sol ->
              (* Water-filling can exceed the MILP's uniform-yield optimum
                 for individual services but the minimum yield cannot. *)
              sol.min_yield <= exact.solution.min_yield +. 1e-6))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("binary search reaches 1", test_binary_search_exact_one);
      ("binary search threshold", test_binary_search_threshold);
      ("binary search fails at 0", test_binary_search_zero_fail);
      ("binary search clamps non-positive tolerance",
       test_binary_search_nonpositive_tolerance_clamped);
      ("vp solver on Fig. 1", test_vp_solver_fig1);
      ("items at yield", test_items_at_yield);
      ("greedy 49 combinations", test_greedy_counts);
      ("greedy on Fig. 1", test_greedy_fig1);
      ("greedy infeasible", test_greedy_infeasible);
      ("metagreedy >= each greedy", test_metagreedy_beats_singletons);
      ("MILP formulation shape", test_milp_formulation_shape);
      ("MILP exact on Fig. 1", test_milp_exact_fig1);
      ("MILP infeasible", test_milp_infeasible_instance);
      ("LP bound dominates heuristics", test_relaxed_bound_dominates);
      ("relaxed e rows sum to 1", test_relaxed_e_matrix_rows_sum_to_one);
      ("rounding respects requirements", test_round_probabilities_respects_requirements);
      ("rounding deterministic", test_rounding_deterministic_given_seed);
      ("METAVP >= single strategies", test_metavp_at_least_single_strategies);
      ("algorithm registry", test_algorithm_registry);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_metahvp_valid;
        prop_metagreedy_valid;
        prop_rrnz_valid;
        prop_heuristics_below_milp_optimum;
      ]
  @ List.map QCheck_alcotest.to_alcotest prop_registry_invariants
