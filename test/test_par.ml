(* Tests for the deterministic worker pool (lib/par): Pool.map must agree
   with Array.map at every pool size, preserve order, propagate exceptions,
   and leave experiment drivers bit-for-bit reproducible. *)

let with_pool = Par.Pool.with_pool

let test_create_clamps () =
  with_pool ~domains:0 (fun pool ->
      Alcotest.(check int) "domains clamped to 1" 1 (Par.Pool.size pool))

let check_map_matches ~domains n =
  with_pool ~domains (fun pool ->
      let input = Array.init n (fun i -> i) in
      let f i = (i * 7919) mod 1009 in
      Alcotest.(check (array int))
        (Printf.sprintf "map = Array.map (n=%d, domains=%d)" n domains)
        (Array.map f input)
        (Par.Pool.map pool input f))

let test_map_matches_sequential () =
  List.iter
    (fun domains ->
      List.iter (fun n -> check_map_matches ~domains n) [ 0; 1; 2; 17; 1000 ])
    [ 1; 2; 4 ]

let test_map_preserves_order_under_skew () =
  (* Uneven task costs: early indices are slow, late ones instant. Results
     must still land at their input positions. *)
  with_pool ~domains:4 (fun pool ->
      let n = 64 in
      let input = Array.init n (fun i -> i) in
      let f i =
        if i < 4 then (
          let acc = ref 0 in
          for k = 0 to 200_000 do
            acc := (!acc + (k * i)) mod 65_537
          done;
          ignore !acc);
        i * 2
      in
      Alcotest.(check (array int)) "order preserved"
        (Array.map f input)
        (Par.Pool.map pool input f))

let test_map_reduce_sum () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let n = 500 in
          let input = Array.init n (fun i -> i + 1) in
          let total =
            Par.Pool.map_reduce pool input
              ~map:(fun x -> x * x)
              ~fold:(fun acc x -> acc + x)
              ~init:0
          in
          Alcotest.(check int)
            (Printf.sprintf "sum of squares (domains=%d)" domains)
            (n * (n + 1) * ((2 * n) + 1) / 6)
            total))
    [ 1; 3 ]

exception Boom of int

let test_map_propagates_exception () =
  with_pool ~domains:2 (fun pool ->
      let input = Array.init 32 (fun i -> i) in
      Alcotest.check_raises "first failure re-raised" (Boom 5) (fun () ->
          ignore
            (Par.Pool.map pool input (fun i ->
                 if i = 5 then raise (Boom 5) else i))))

(* A raising oracle inside the speculative yield search: the exception must
   surface through [Binary_search.maximize_par]'s Pool.map round, and the
   pool must stay usable afterwards — both for a bare map and for another
   speculative search. *)
let test_maximize_par_raising_oracle () =
  with_pool ~domains:2 (fun pool ->
      let oracle y =
        if y = 1. then None
        else if y = 0. then Some y
        else raise (Boom 7)
      in
      Alcotest.check_raises "oracle exception propagates" (Boom 7) (fun () ->
          ignore (Heuristics.Binary_search.maximize_par ~pool oracle));
      let input = Array.init 16 (fun i -> i) in
      Alcotest.(check (array int)) "pool still maps"
        (Array.map succ input)
        (Par.Pool.map pool input succ);
      let target = 0.37 in
      let sane y = if y <= target then Some y else None in
      match Heuristics.Binary_search.maximize_par ~pool sane with
      | Some (_, y) ->
          Alcotest.(check bool) "pool still searches" true
            (y <= target
            && target -. y <= 2. *. Heuristics.Binary_search.default_tolerance)
      | None -> Alcotest.fail "search after error should succeed")

(* A task that maps on its own pool again would deadlock or starve (one
   job queue, and the task occupies the claim loop), so the re-entry must
   be rejected loudly — at every pool size, including the sequential
   short-circuit — and leave the pool usable. *)
let test_nested_map_same_pool_rejected () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let input = Array.init 8 (fun i -> i) in
          let rejected =
            try
              ignore
                (Par.Pool.map pool input (fun i ->
                     ignore (Par.Pool.map pool [| i; i + 1 |] succ);
                     i));
              false
            with Invalid_argument msg ->
              if not (String.starts_with ~prefix:"Par.Pool.map: nested" msg)
              then Alcotest.failf "unexpected message: %s" msg;
              true
          in
          Alcotest.(check bool)
            (Printf.sprintf "nested map rejected (domains=%d)" domains)
            true rejected;
          Alcotest.(check (array int)) "pool usable after rejection"
            (Array.map succ input)
            (Par.Pool.map pool input succ)))
    [ 1; 2; 4 ]

(* Maps on a *different* pool from inside a task are documented as fine:
   that pool's workers are separate domains, so the detection must key on
   pool identity, not a bare in-a-task flag. *)
let test_nested_map_different_pool_allowed () =
  with_pool ~domains:2 (fun outer ->
      with_pool ~domains:2 (fun inner ->
          let input = Array.init 8 (fun i -> i) in
          let f i =
            Array.fold_left ( + ) 0
              (Par.Pool.map inner [| i; 10 * i |] (fun x -> x * 3))
          in
          Alcotest.(check (array int)) "inner-pool map from a task"
            (Array.map (fun i -> 33 * i) input)
            (Par.Pool.map outer input f)))

let test_pool_reusable_after_error () =
  with_pool ~domains:2 (fun pool ->
      let input = Array.init 16 (fun i -> i) in
      (try ignore (Par.Pool.map pool input (fun _ -> failwith "boom"))
       with Failure _ -> ());
      Alcotest.(check (array int)) "pool still works"
        (Array.map succ input)
        (Par.Pool.map pool input succ))

(* The determinism contract end-to-end: a Table 1 mini-sweep must produce
   the exact same report — yields, not timings — at any pool size, because
   every trial's RNG stream is derived from its spec before dispatch. *)

let mini_scale =
  {
    Experiments.Scale.small with
    label = "mini";
    table1_hosts = 4;
    table1_services = [ 6 ];
    table1_covs = [ 0.5 ];
    table1_slacks = [ 0.5 ];
    table1_reps = 2;
  }

let test_table1_parallel_identical () =
  let report pool =
    Experiments.Table1.report_table1 (Experiments.Table1.run ?pool mini_scale)
  in
  let sequential = report None in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "table1 report identical at %d domains" domains)
            sequential
            (report (Some pool))))
    [ 2; 4 ]

(* Same contract for the other way the pool can be used: accelerating each
   trial's yield search from the inside (probe_pool) instead of fanning
   trials out. *)
let test_table1_probe_pool_identical () =
  let sequential =
    Experiments.Table1.report_table1 (Experiments.Table1.run mini_scale)
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "table1 report identical with %d-domain probes"
               domains)
            sequential
            (Experiments.Table1.report_table1
               (Experiments.Table1.run ~probe_pool:pool mini_scale))))
    [ 2; 4 ]

let test_domains_from_env_default_positive () =
  (* Whatever the machine, the resolved default must be a usable size. *)
  Alcotest.(check bool) "positive" true (Par.Pool.domains_from_env () >= 1)

let test_domains_from_env_parsing () =
  (* Unix.putenv cannot truly unset, so "unset" is approximated by the
     empty string — int_of_string_opt rejects it exactly like a missing
     variable's branch resolves, to the recommended count. *)
  let saved = Sys.getenv_opt "VMALLOC_DOMAINS" in
  let restore () =
    Unix.putenv "VMALLOC_DOMAINS" (Option.value saved ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      let default = Domain.recommended_domain_count () in
      List.iter
        (fun (v, expect, label) ->
          Unix.putenv "VMALLOC_DOMAINS" v;
          Alcotest.(check int) label expect (Par.Pool.domains_from_env ()))
        [
          ("3", 3, "valid positive parses");
          (" 7 ", 7, "surrounding whitespace trimmed");
          ("1", 1, "1 selects the legacy sequential path");
          ("", default, "empty falls back to the recommended count");
          ("soup", default, "garbage falls back to the recommended count");
          ("0", default, "zero is rejected (pools need >= 1 member)");
          ("-4", default, "negative is rejected");
        ])

let test_with_pool_shutdown_on_exception () =
  (* If with_pool leaked its worker domains when the body raises, this
     loop would pile up live domains and trip the runtime's Max_domains
     limit (128 by default) long before finishing; joining them in the
     cleanup keeps the count flat. *)
  for i = 1 to 200 do
    try with_pool ~domains:2 (fun _ -> raise (Boom i))
    with Boom j ->
      if i <> j then Alcotest.failf "exception mangled: Boom %d -> Boom %d" i j
  done

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("create clamps to >= 1 domain", test_create_clamps);
      ("map = Array.map at 1/2/4 domains", test_map_matches_sequential);
      ("map preserves order under skew", test_map_preserves_order_under_skew);
      ("map_reduce sums chunks in order", test_map_reduce_sum);
      ("map propagates exceptions", test_map_propagates_exception);
      ("nested map on the same pool rejected", test_nested_map_same_pool_rejected);
      ("nested map on a different pool allowed",
       test_nested_map_different_pool_allowed);
      ("maximize_par propagates oracle exceptions", test_maximize_par_raising_oracle);
      ("pool reusable after an error", test_pool_reusable_after_error);
      ("Table 1 mini-sweep identical in parallel", test_table1_parallel_identical);
      ("Table 1 mini-sweep identical with probe pool", test_table1_probe_pool_identical);
      ("domains_from_env is positive", test_domains_from_env_default_positive);
      ("domains_from_env parsing sweep", test_domains_from_env_parsing);
      ("with_pool joins workers on exception",
       test_with_pool_shutdown_on_exception);
    ]
