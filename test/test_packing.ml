(* Tests for the vector-packing engine: bins, First/Best-Fit,
   Permutation-Pack (fast and naive implementations), and the strategy
   enumerations. *)

open Packing

let v = Vec.Vector.of_list
let epair e a = Vec.Epair.v ~elementary:(v e) ~aggregate:(v a)

let item id e a = Item.v ~id ~demand:(epair e a)
let bin id e a = Bin.v ~id ~capacity:(epair e a)

(* A simple uniform item: elementary = aggregate (poolable view). *)
let uitem id comps = item id comps comps
let ubin id comps = bin id comps comps

let check_float = Alcotest.(check (float 1e-9))

let test_bin_fits_and_place () =
  let b = ubin 0 [ 1.0; 1.0 ] in
  let i1 = uitem 0 [ 0.6; 0.2 ] in
  let i2 = uitem 1 [ 0.6; 0.2 ] in
  Alcotest.(check bool) "fits empty" true (Bin.fits b i1);
  Bin.place b i1;
  Alcotest.(check bool) "second overflows dim 0" false (Bin.fits b i2);
  check_float "load" 0.6 (Vec.Vector.get (Bin.load_vector b) 0);
  check_float "remaining" 0.4 (Vec.Vector.get (Bin.remaining b) 0);
  check_float "load sum" 0.8 (Bin.load_sum b);
  check_float "remaining sum" 1.2 (Bin.remaining_sum b)

(* The running sum_load / sum_remaining fields must always equal the
   folds over load and capacity they replace, through arbitrary
   place/reset sequences, and reset bins must behave like fresh ones. *)
let test_bin_running_sums () =
  let fold_load b =
    Array.fold_left ( +. ) 0. (Vec.Vector.to_array (Bin.load_vector b))
  in
  let fold_remaining (b : Bin.t) =
    let cap = b.Bin.capacity.Vec.Epair.aggregate in
    let load = Bin.load_vector b in
    let acc = ref 0. in
    for i = 0 to Bin.dim b - 1 do
      acc :=
        !acc
        +. Float.max 0. (Vec.Vector.get cap i -. Vec.Vector.get load i)
    done;
    !acc
  in
  let check_sums msg b =
    check_float (msg ^ ": load_sum") (fold_load b) (Bin.load_sum b);
    check_float (msg ^ ": remaining_sum") (fold_remaining b)
      (Bin.remaining_sum b)
  in
  let b = ubin 0 [ 1.0; 2.0; 0.5 ] in
  check_sums "fresh" b;
  Bin.place b (uitem 0 [ 0.3; 0.1; 0.2 ]);
  check_sums "after one place" b;
  (* Overfill a dimension: remaining clamps at 0 in that dimension. *)
  Bin.place b (uitem 1 [ 0.9; 0.2; 0.1 ]);
  check_sums "after overfilling dim 0" b;
  Bin.reset b;
  check_sums "after reset" b;
  let fresh = ubin 0 [ 1.0; 2.0; 0.5 ] in
  check_float "reset load_sum = fresh" (Bin.load_sum fresh) (Bin.load_sum b);
  check_float "reset remaining_sum = fresh" (Bin.remaining_sum fresh)
    (Bin.remaining_sum b);
  Alcotest.(check (list int)) "reset clears contents" [] b.Bin.contents;
  Bin.place b (uitem 2 [ 0.4; 0.4; 0.4 ]);
  check_sums "place after reset" b

let test_bin_elementary_filter () =
  (* Elementary demand exceeds elementary capacity: never fits, regardless
     of aggregate headroom. *)
  let b = bin 0 [ 0.25; 1.0 ] [ 1.0; 1.0 ] in
  let i = item 0 [ 0.3; 0.1 ] [ 0.3; 0.1 ] in
  Alcotest.(check bool) "elementary filter" false (Bin.fits b i)

let test_first_fit_order () =
  let bins = [| ubin 0 [ 0.5; 0.5 ]; ubin 1 [ 1.0; 1.0 ] |] in
  let items = [| uitem 0 [ 0.4; 0.4 ]; uitem 1 [ 0.4; 0.4 ] |] in
  Alcotest.(check bool) "packs" true (Fit.first_fit ~bins ~items);
  let assign = Strategy.assignment ~bins ~n_items:2 in
  (* First item goes to bin 0 (first that fits), second no longer fits
     there. *)
  Alcotest.(check (array int)) "assignment" [| 0; 1 |] assign

let test_first_fit_failure_is_reported () =
  let bins = [| ubin 0 [ 0.5; 0.5 ] |] in
  let items = [| uitem 0 [ 0.6; 0.1 ] |] in
  Alcotest.(check bool) "cannot pack" false (Fit.first_fit ~bins ~items)

let test_best_fit_by_load () =
  (* Identical bins; after the first item, BF prefers the fuller bin. *)
  let bins = [| ubin 0 [ 1.0; 1.0 ]; ubin 1 [ 1.0; 1.0 ] |] in
  let items =
    [| uitem 0 [ 0.3; 0.3 ]; uitem 1 [ 0.3; 0.3 ]; uitem 2 [ 0.3; 0.3 ] |]
  in
  Alcotest.(check bool) "packs" true
    (Fit.best_fit ~rank:Fit.By_load ~bins ~items);
  let assign = Strategy.assignment ~bins ~n_items:3 in
  Alcotest.(check (array int)) "all on one bin" [| 0; 0; 0 |] assign

let test_best_fit_by_remaining_prefers_smaller_bin () =
  (* Heterogeneous: HVP Best-Fit targets the bin with least remaining
     capacity. *)
  let bins = [| ubin 0 [ 1.0; 1.0 ]; ubin 1 [ 0.5; 0.5 ] |] in
  let items = [| uitem 0 [ 0.3; 0.3 ] |] in
  Alcotest.(check bool) "packs" true
    (Fit.best_fit ~rank:Fit.By_remaining ~bins ~items);
  Alcotest.(check (array int)) "smaller bin wins" [| 1 |]
    (Strategy.assignment ~bins ~n_items:1)

let test_permutation_key_paper_example () =
  (* Paper §3.5.2's 4-D example: bin ordering (4,2,3,1), item ordering
     (3,1,4,2) -> key (3,4,1,2). 0-indexed: bin perm (3,1,2,0), item perm
     (2,0,3,1), key (2,3,0,1). *)
  let bin_perm = [| 3; 1; 2; 0 |] in
  let pos = Array.make 4 0 in
  Array.iteri (fun rank d -> pos.(d) <- rank) bin_perm;
  (* item with demands ranked: largest in dim 2, then 0, then 3, then 1 *)
  let it = uitem 0 [ 0.6; 0.1; 0.9; 0.3 ] in
  let key = Permutation_pack.item_key ~bin_perm_pos:pos it in
  Alcotest.(check (array int)) "key" [| 2; 3; 0; 1 |] key

let test_compare_keys_window () =
  let a = [| 0; 3; 1; 2 |] and b = [| 0; 1; 3; 2 |] in
  Alcotest.(check bool) "full permutation order" true
    (Permutation_pack.compare_keys Permutation_pack.Permutation ~window:4 a b
     > 0);
  Alcotest.(check bool) "window 1 ties" true
    (Permutation_pack.compare_keys Permutation_pack.Permutation ~window:1 a b
     = 0);
  (* Choose-Pack compares window contents as a set. *)
  Alcotest.(check bool) "choose w=2 {0,3} vs {0,1}" true
    (Permutation_pack.compare_keys Permutation_pack.Choose ~window:2 a b > 0)

let test_permutation_pack_balances () =
  (* One bin, two dims. Load starts skewed by a seed item; PP must pick the
     item that fights the imbalance. *)
  let b = ubin 0 [ 1.0; 1.0 ] in
  Bin.place b (uitem 99 [ 0.4; 0.1 ]);
  (* dim 0 is loaded *)
  let items = [| uitem 0 [ 0.3; 0.1 ]; uitem 1 [ 0.1; 0.3 ] |] in
  Alcotest.(check bool) "packs" true
    (Permutation_pack.pack ~bins:[| b |] ~items ());
  (* Item 1 (big in dim 1, the less-loaded dimension) must be placed
     first. *)
  Alcotest.(check (list int)) "selection order (most recent first)" [ 0; 1; 99 ]
    b.Bin.contents

let test_permutation_pack_failure () =
  let bins = [| ubin 0 [ 0.5; 0.5 ] |] in
  let items = [| uitem 0 [ 0.4; 0.4 ]; uitem 1 [ 0.4; 0.4 ] |] in
  Alcotest.(check bool) "second item does not fit" false
    (Permutation_pack.pack ~bins ~items ())

let test_strategy_counts () =
  Alcotest.(check int) "33 VP strategies" 33 (List.length Strategy.vp_all);
  Alcotest.(check int) "253 HVP strategies" 253 (List.length Strategy.hvp_all);
  Alcotest.(check int) "60 light strategies" 60
    (List.length Strategy.hvp_light)

let test_strategy_names_unique () =
  let names =
    List.map Strategy.name (Strategy.vp_all @ Strategy.hvp_all)
  in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_light_subset_of_full () =
  let full = List.map Strategy.name Strategy.hvp_all in
  List.iter
    (fun s ->
      let n = Strategy.name s in
      Alcotest.(check bool) (n ^ " in METAHVP set") true (List.mem n full))
    Strategy.hvp_light

let test_hvp_first_fit_sorted_bins () =
  (* HVP-FF with bins ascending by MAX: the small bin is tried first. *)
  let strategy =
    {
      Strategy.algo = Strategy.First_fit;
      item_order = Vec.Metric.Unsorted;
      bin_order = Vec.Metric.Asc (Vec.Metric.Scalar Vec.Metric.Max);
      variant = Strategy.Hvp;
    }
  in
  let bins = [| ubin 0 [ 1.0; 1.0 ]; ubin 1 [ 0.5; 0.5 ] |] in
  let items = [| uitem 0 [ 0.3; 0.3 ] |] in
  match Strategy.run strategy ~bins ~items with
  | Some assign -> Alcotest.(check (array int)) "small bin first" [| 1 |] assign
  | None -> Alcotest.fail "should pack"

(* Random packing instances. *)

let random_packing_gen =
  QCheck2.Gen.(
    let* dims = int_range 2 4 in
    let* n_bins = int_range 1 6 in
    let* n_items = int_range 1 20 in
    let* bin_comps =
      list_size (pure n_bins) (list_size (pure dims) (float_range 0.3 1.))
    in
    let* item_comps =
      list_size (pure n_items) (list_size (pure dims) (float_range 0.01 0.4))
    in
    pure (bin_comps, item_comps))

let build_packing (bin_comps, item_comps) =
  let bins =
    Array.of_list (List.mapi (fun id comps -> ubin id comps) bin_comps)
  in
  let items =
    Array.of_list (List.mapi (fun id comps -> uitem id comps) item_comps)
  in
  (bins, items)

let no_overflow bins =
  Array.for_all
    (fun (b : Bin.t) ->
      Vec.Vector.fits (Bin.load_vector b) b.Bin.capacity.Vec.Epair.aggregate)
    bins

let prop_packing_never_overflows =
  QCheck2.Test.make ~name:"no algorithm ever overflows a bin" ~count:300
    random_packing_gen (fun spec ->
      List.for_all
        (fun run ->
          let bins, items = build_packing spec in
          ignore (run ~bins ~items);
          no_overflow bins)
        [
          (fun ~bins ~items -> Fit.first_fit ~bins ~items);
          (fun ~bins ~items -> Fit.best_fit ~rank:Fit.By_load ~bins ~items);
          (fun ~bins ~items ->
            Fit.best_fit ~rank:Fit.By_remaining ~bins ~items);
          (fun ~bins ~items -> Permutation_pack.pack ~bins ~items ());
          (fun ~bins ~items ->
            Permutation_pack.pack ~flavour:Permutation_pack.Choose ~window:1
              ~bins ~items ());
        ])

let prop_success_means_all_placed =
  QCheck2.Test.make ~name:"success <=> every item assigned" ~count:300
    random_packing_gen (fun spec ->
      let bins, items = build_packing spec in
      let ok = Fit.first_fit ~bins ~items in
      let assign = Strategy.assignment ~bins ~n_items:(Array.length items) in
      let all_assigned = Array.for_all (fun b -> b >= 0) assign in
      ok = all_assigned)

let prop_fast_pp_equals_naive =
  (* Differential oracle: the key-based implementation must be
     observationally identical to the literal D!-list scan — same
     success/failure, same final assignment, and the same placement
     *sequence* into every bin ([Bin.contents] is most-recent-first, so
     equal lists mean the two implementations selected items in the same
     order, not merely reached the same end state). *)
  QCheck2.Test.make
    ~name:"fast key-based PP selects exactly like the D!-list version"
    ~count:200 random_packing_gen (fun spec ->
      let bins_a, items_a = build_packing spec in
      let bins_b, items_b = build_packing spec in
      let ok_a = Permutation_pack.pack ~bins:bins_a ~items:items_a () in
      let ok_b =
        Naive_permutation_pack.pack ~bins:bins_b ~items:items_b ()
      in
      ok_a = ok_b
      && Strategy.assignment ~bins:bins_a ~n_items:(Array.length items_a)
         = Strategy.assignment ~bins:bins_b ~n_items:(Array.length items_b)
      && Array.for_all2
           (fun (a : Bin.t) (b : Bin.t) -> a.Bin.contents = b.Bin.contents)
           bins_a bins_b)

let prop_pp_cp_coincide_at_window_1 =
  QCheck2.Test.make ~name:"PP = CP at window 1 (paper §3.5.2)" ~count:200
    random_packing_gen (fun spec ->
      let bins_a, items_a = build_packing spec in
      let bins_b, items_b = build_packing spec in
      let ok_a =
        Permutation_pack.pack ~flavour:Permutation_pack.Permutation ~window:1
          ~bins:bins_a ~items:items_a ()
      in
      let ok_b =
        Permutation_pack.pack ~flavour:Permutation_pack.Choose ~window:1
          ~bins:bins_b ~items:items_b ()
      in
      ok_a = ok_b
      && Strategy.assignment ~bins:bins_a ~n_items:(Array.length items_a)
         = Strategy.assignment ~bins:bins_b ~n_items:(Array.length items_b))

let prop_strategies_agree_on_feasibility_direction =
  (* Any strategy that succeeds produces a complete, valid assignment. *)
  QCheck2.Test.make ~name:"strategy runs produce valid assignments"
    ~count:100 random_packing_gen (fun spec ->
      List.for_all
        (fun strategy ->
          let bins, items = build_packing spec in
          match Strategy.run strategy ~bins ~items with
          | None -> true
          | Some assign ->
              Array.for_all
                (fun b -> b >= 0 && b < Array.length bins)
                assign
              && no_overflow bins)
        (Strategy.vp_all @ Strategy.hvp_light))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("bin fits/place/load", test_bin_fits_and_place);
      ("bin running sums", test_bin_running_sums);
      ("bin elementary filter", test_bin_elementary_filter);
      ("first fit order", test_first_fit_order);
      ("first fit failure", test_first_fit_failure_is_reported);
      ("best fit by load", test_best_fit_by_load);
      ("best fit by remaining (HVP)", test_best_fit_by_remaining_prefers_smaller_bin);
      ("permutation key (paper example)", test_permutation_key_paper_example);
      ("compare keys / window", test_compare_keys_window);
      ("PP balances dimensions", test_permutation_pack_balances);
      ("PP failure", test_permutation_pack_failure);
      ("strategy counts 33/253/60", test_strategy_counts);
      ("strategy names unique", test_strategy_names_unique);
      ("light subset of METAHVP", test_light_subset_of_full);
      ("HVP FF uses sorted bins", test_hvp_first_fit_sorted_bins);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_packing_never_overflows;
        prop_success_means_all_placed;
        prop_fast_pp_equals_naive;
        prop_pp_cp_coincide_at_window_1;
        prop_strategies_agree_on_feasibility_direction;
      ]
