(* lib/obs lock-down: the disabled path records nothing, enabled counters
   and histograms total correctly, Pool.map's task-sink merge keeps merged
   snapshots byte-identical at any domain count (including a real Table 1
   sweep — the ISSUE's acceptance criterion), and the span tracer
   round-trips through its Chrome JSON export. *)

(* Every test toggles the global flag, so save/restore it — the rest of
   the suite must keep running under whatever VMALLOC_OBS selected. *)
let with_enabled v f =
  let prev = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled v;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled prev) f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_disabled_noop () =
  with_enabled false @@ fun () ->
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.obs.disabled" in
  let h = Obs.Metrics.histogram "test.obs.disabled_hist" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Obs.Metrics.observe h 7;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "counter stayed zero" 0
    (Obs.Metrics.Snapshot.counter_value snap "test.obs.disabled");
  Alcotest.(check bool) "histogram stayed empty" false
    (contains (Obs.Metrics.Snapshot.render snap) "test.obs.disabled_hist")

let test_counters_and_histograms () =
  with_enabled true @@ fun () ->
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  let h = Obs.Metrics.histogram "test.obs.hist" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 900 ];
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "counter total" 42
    (Obs.Metrics.Snapshot.counter_value snap "test.obs.counter");
  let rendered = Obs.Metrics.Snapshot.render snap in
  (* 0 -> bucket "0"; 1 -> "1"; 2,3 -> "2-3"; 900 -> "512-1023". *)
  Alcotest.(check bool) "histogram line" true
    (contains rendered "test.obs.hist count=5 sum=906 [0:1 1:1 2-3:2 512-1023:1]");
  let json = Obs.Metrics.Snapshot.to_json snap in
  Alcotest.(check bool) "counter in JSON" true
    (contains json "\"test.obs.counter\": 42");
  Alcotest.(check bool) "histogram in JSON" true
    (contains json "\"test.obs.hist\": {\"count\": 5, \"sum\": 906");
  Obs.Metrics.reset ();
  let snap' = Obs.Metrics.snapshot () in
  Alcotest.(check int) "reset zeroes the counter" 0
    (Obs.Metrics.Snapshot.counter_value snap' "test.obs.counter");
  Alcotest.(check bool) "reset empties the histogram" false
    (contains (Obs.Metrics.Snapshot.render snap') "test.obs.hist")

(* Pool.map installs a fresh sink per task and merges the task sinks in
   task-input order, so a merged snapshot is byte-identical whatever the
   pool size — even though the tasks themselves land on different domains. *)
let test_pool_merge_domain_invariant () =
  with_enabled true @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.pool" in
  let h = Obs.Metrics.histogram "test.obs.pool_hist" in
  let work i =
    Obs.Metrics.add c (i + 1);
    Obs.Metrics.observe h i;
    i
  in
  let run domains =
    Obs.Metrics.reset ();
    Par.Pool.with_pool ~domains (fun pool ->
        ignore (Par.Pool.map pool (Array.init 20 Fun.id) work));
    let snap = Obs.Metrics.snapshot () in
    ( Obs.Metrics.Snapshot.render snap,
      Obs.Metrics.Snapshot.counter_value snap "test.obs.pool" )
  in
  let r1, total1 = run 1 in
  let r2, total2 = run 2 in
  let r4, total4 = run 4 in
  (* 1 + 2 + ... + 20 *)
  Alcotest.(check int) "total at 1 domain" 210 total1;
  Alcotest.(check int) "total at 2 domains" 210 total2;
  Alcotest.(check int) "total at 4 domains" 210 total4;
  Alcotest.(check string) "render: 1 vs 2 domains" r1 r2;
  Alcotest.(check string) "render: 1 vs 4 domains" r1 r4

(* The acceptance criterion end-to-end: a (tiny) Table 1 sweep with metrics
   on produces byte-identical merged counter snapshots at VMALLOC_DOMAINS
   1, 2, and 4. Every instrumented layer fires here — binary search,
   vp_solver, packing, greedy, the trial counter. *)
let test_table1_snapshot_domain_invariant () =
  with_enabled true @@ fun () ->
  let scale =
    {
      Experiments.Scale.small with
      table1_hosts = 4;
      table1_services = [ 6 ];
      table1_covs = [ 0.5 ];
      table1_slacks = [ 0.4 ];
      table1_reps = 2;
    }
  in
  let run domains =
    Obs.Metrics.reset ();
    (if domains = 1 then ignore (Experiments.Table1.run scale)
     else
       Par.Pool.with_pool ~domains (fun pool ->
           ignore (Experiments.Table1.run ~pool scale)));
    let snap = Obs.Metrics.snapshot () in
    ( Obs.Metrics.Snapshot.render snap,
      Obs.Metrics.Snapshot.counter_value snap "experiments.table1.trials" )
  in
  let r1, trials1 = run 1 in
  let r2, trials2 = run 2 in
  let r4, trials4 = run 4 in
  (* 2 instances x 5 major algorithms. *)
  Alcotest.(check int) "trials counted (1 domain)" 10 trials1;
  Alcotest.(check int) "trials counted (2 domains)" 10 trials2;
  Alcotest.(check int) "trials counted (4 domains)" 10 trials4;
  Alcotest.(check bool) "solver layers fired" true
    (contains r1 "binary_search.rounds" && contains r1 "packing.placements"
    && contains r1 "greedy.candidate_evals");
  Alcotest.(check string) "snapshot: 1 vs 2 domains" r1 r2;
  Alcotest.(check string) "snapshot: 1 vs 4 domains" r1 r4

let test_trace_spans () =
  Obs.Trace.stop ();
  Obs.Trace.reset ();
  (* Disabled: span runs the thunk, records nothing. *)
  Alcotest.(check int) "disabled span passes through" 7
    (Obs.Trace.span "dark" (fun () -> 7));
  Alcotest.(check int) "nothing captured while disabled" 0
    (Obs.Trace.event_count ());
  Obs.Trace.start ();
  Fun.protect ~finally:(fun () ->
      Obs.Trace.stop ();
      Obs.Trace.reset ())
  @@ fun () ->
  let v =
    Obs.Trace.span "outer" ~args:[ ("k", "v") ] (fun () ->
        Obs.Trace.instant "mark";
        Obs.Trace.span "inner" (fun () -> 42))
  in
  Alcotest.(check int) "span returns its thunk's value" 42 v;
  (* Spans record on exceptions too. *)
  (try Obs.Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "outer + instant + inner + boom" 4
    (Obs.Trace.event_count ());
  let json = Obs.Trace.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "JSON has %s" needle) true
        (contains json needle))
    [
      "\"traceEvents\"";
      "\"displayTimeUnit\": \"ms\"";
      "\"name\": \"outer\"";
      "\"ph\": \"X\"";
      "\"ph\": \"i\"";
      "\"k\": \"v\"";
    ]

(* Busy-wait until the µs wall clock ticks, so every span that wraps it
   has a strictly positive duration — what the interval-nesting fold
   relies on to separate parents from the children recorded at (almost)
   the same instant. *)
let spin () =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () <= t0 do () done

let with_trace f =
  Obs.Trace.stop ();
  Obs.Trace.reset ();
  Obs.Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.stop ();
      Obs.Trace.reset ())
    f

let find_agg label aggs =
  match
    List.find_opt (fun (a : Obs.Trace.agg) -> a.label = label) aggs
  with
  | Some a -> a
  | None -> Alcotest.failf "no aggregate for span %S" label

(* Self time is the span's duration minus its direct children's: with one
   parent over two leaf children the arithmetic is exact, and leaves keep
   self = total. *)
let test_trace_self_time () =
  with_trace @@ fun () ->
  Obs.Trace.span "outer" (fun () ->
      Obs.Trace.span "a" spin;
      Obs.Trace.span "b" spin;
      spin ());
  let aggs = Obs.Trace.aggregate () in
  let outer = find_agg "outer" aggs in
  let a = find_agg "a" aggs in
  let b = find_agg "b" aggs in
  Alcotest.(check int) "one outer call" 1 outer.calls;
  Alcotest.(check bool) "all durations positive" true
    (outer.total_us > 0. && a.total_us > 0. && b.total_us > 0.);
  Alcotest.(check bool) "children fit inside the parent" true
    (outer.total_us >= a.total_us +. b.total_us);
  Alcotest.(check (float 1e-6)) "outer self = total - children"
    (outer.total_us -. a.total_us -. b.total_us)
    outer.self_us;
  Alcotest.(check (float 1e-9)) "leaf self = leaf total" a.total_us a.self_us;
  Alcotest.(check string) "folded call stacks"
    "outer 1\nouter;a 1\nouter;b 1\n"
    (Obs.Trace.to_folded ~weight:Obs.Trace.Calls ())

let test_trace_nesting () =
  with_trace @@ fun () ->
  Obs.Trace.span "l1" (fun () ->
      Obs.Trace.span "l2" (fun () -> Obs.Trace.span "l3" spin);
      Obs.Trace.span "l2" (fun () -> Obs.Trace.span "l3" spin));
  Alcotest.(check string) "three-level folded stacks"
    "l1 1\nl1;l2 2\nl1;l2;l3 2\n"
    (Obs.Trace.to_folded ~weight:Obs.Trace.Calls ());
  let aggs = Obs.Trace.aggregate () in
  Alcotest.(check int) "l2 called twice" 2 (find_agg "l2" aggs).calls;
  Alcotest.(check int) "l3 called twice" 2 (find_agg "l3" aggs).calls;
  (* The Self_us folding covers the same stacks with timing weights. *)
  let timed = Obs.Trace.to_folded () in
  List.iter
    (fun prefix ->
      Alcotest.(check bool) (prefix ^ " present") true
        (contains timed prefix))
    [ "l1 "; "l1;l2 "; "l1;l2;l3 " ]

(* Call-weighted folded stacks are a pure function of the span-nesting
   structure, so a fan-out whose per-task span tree is fixed produces
   byte-identical output at any pool size — the tids differ, the folded
   stacks don't. *)
let test_trace_folded_pool_invariant () =
  let run domains =
    with_trace @@ fun () ->
    Par.Pool.with_pool ~domains (fun pool ->
        ignore
          (Par.Pool.map pool (Array.init 8 Fun.id) (fun i ->
               Obs.Trace.span "task" (fun () ->
                   Obs.Trace.span "sub" spin;
                   i))));
    Obs.Trace.to_folded ~weight:Obs.Trace.Calls ()
  in
  let f1 = run 1 in
  let f2 = run 2 in
  let f4 = run 4 in
  Alcotest.(check string) "expected stacks" "task 8\ntask;sub 8\n" f1;
  Alcotest.(check string) "folded: 1 vs 2 domains" f1 f2;
  Alcotest.(check string) "folded: 1 vs 4 domains" f1 f4

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("disabled sinks record nothing", test_disabled_noop);
      ("counters, histograms, reset", test_counters_and_histograms);
      ("Pool.map merge is domain-count invariant",
       test_pool_merge_domain_invariant);
      ("Table 1 sweep snapshot identical at 1/2/4 domains",
       test_table1_snapshot_domain_invariant);
      ("trace spans and Chrome JSON export", test_trace_spans);
      ("trace self-time arithmetic", test_trace_self_time);
      ("trace span nesting and folded stacks", test_trace_nesting);
      ("folded stacks identical at 1/2/4 domains",
       test_trace_folded_pool_invariant);
    ]
