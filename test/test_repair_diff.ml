(* Differential layer for the incremental placement policies (DESIGN.md
   §13), mirroring test_kernel_diff.ml's kernel-vs-naive idiom: the
   incremental path (per-bin load state updated in place on every
   arrival/departure/repair) must be bitwise-identical to the full
   recompute path ([incremental:false], which rebuilds the bin state from
   the live ground truth before every decision). Admissions, rejections,
   repairs, fallbacks, the yield log, and the final placement must all
   agree — and the final placement must respect every node's memory
   capacity. *)

let platform =
  Array.init 8 (fun id ->
      if id < 4 then Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
      else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)

(* Tight memory (some arrivals are rejected, exercising the full-scan
   fallback of the probe paths) and enough load that bins overload and
   the repair/fallback machinery engages. The epoch/fallback re-solver is
   the cheap single-pass greedy. *)
let config =
  {
    Simulator.Engine.default_config with
    horizon = 80.;
    arrival_rate = 2.;
    mean_lifetime = 15.;
    reallocation_period = 10.;
    memory_scale = 1.4;
    algorithm =
      Heuristics.Algorithms.single_greedy Heuristics.Greedy.S7
        Heuristics.Greedy.P4;
  }

let stats_equal (a : Simulator.Engine.stats) (b : Simulator.Engine.stats) =
  a.arrivals = b.arrivals && a.admitted = b.admitted
  && a.rejected = b.rejected && a.departures = b.departures
  && a.reallocations = b.reallocations
  && a.failed_reallocations = b.failed_reallocations
  && a.migrations = b.migrations
  && Int64.bits_of_float a.mean_min_yield
     = Int64.bits_of_float b.mean_min_yield
  && Int64.bits_of_float a.final_threshold
     = Int64.bits_of_float b.final_threshold
  && List.length a.yield_samples = List.length b.yield_samples
  && List.for_all2
       (fun (t1, y1) (t2, y2) ->
         Int64.bits_of_float t1 = Int64.bits_of_float t2
         && Int64.bits_of_float y1 = Int64.bits_of_float y2)
       a.yield_samples b.yield_samples

let finals_equal (a : Simulator.Engine.final_service list)
    (b : Simulator.Engine.final_service list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Simulator.Engine.final_service)
            (y : Simulator.Engine.final_service) ->
         x.f_uid = y.f_uid && x.f_node = y.f_node
         && Int64.bits_of_float x.f_mem = Int64.bits_of_float y.f_mem
         && Int64.bits_of_float x.f_cpu = Int64.bits_of_float y.f_cpu)
       a b

(* The end-of-run placement respects every node's rigid memory capacity
   (the feasibility half of the acceptance criterion; CPU may legitimately
   be oversubscribed — that is what the yield measures). *)
let check_feasible ~msg nodes (finals : Simulator.Engine.final_service list) =
  let h = Array.length nodes in
  let load = Array.make h 0. in
  List.iter
    (fun (f : Simulator.Engine.final_service) ->
      Alcotest.(check bool) (msg ^ ": node in range") true
        (f.f_node >= 0 && f.f_node < h);
      load.(f.f_node) <- load.(f.f_node) +. f.f_mem)
    finals;
  Array.iteri
    (fun i (n : Model.Node.t) ->
      let cap =
        Vec.Vector.get n.Model.Node.capacity.Vec.Epair.aggregate
          Model.Service.mem_dim
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: node %d memory within capacity" msg i)
        true
        (load.(i) <= cap +. 1e-9))
    nodes

let run_engine ~seed ~incremental placement =
  let finals = ref [] in
  let stats =
    Simulator.Engine.run
      ~rng:(Prng.Rng.create ~seed)
      ~incremental
      ~final:(fun fs -> finals := fs)
      { config with placement }
      ~platform
  in
  (stats, !finals)

(* Engine level: incremental vs full recompute, across seeds and both
   probe policies. *)
let test_engine_incremental_matches_full () =
  List.iter
    (fun placement ->
      let name = Simulator.Policy.to_string placement in
      let rejections = ref 0 in
      List.iter
        (fun seed ->
          let fast, fast_finals =
            run_engine ~seed ~incremental:true placement
          in
          let slow, slow_finals =
            run_engine ~seed ~incremental:false placement
          in
          let msg = Printf.sprintf "%s seed %d" name seed in
          Alcotest.(check bool) (msg ^ ": stats identical") true
            (stats_equal fast slow);
          Alcotest.(check bool) (msg ^ ": finals identical") true
            (finals_equal fast_finals slow_finals);
          check_feasible ~msg platform fast_finals;
          Alcotest.(check bool) (msg ^ ": some admissions") true
            (fast.admitted > 0);
          rejections := !rejections + fast.rejected)
        [ 0; 1; 2; 3; 4 ];
      (* The scenario must exercise the reject branch somewhere across the
         seed set, or the admit/reject half of the diff proves nothing. *)
      Alcotest.(check bool) (name ^ ": some rejections across seeds") true
        (!rejections > 0))
    [ Simulator.Policy.Greedy_random; Simulator.Policy.Best_fit ]

(* The resolve path ignores [incremental] entirely. *)
let test_resolve_ignores_incremental () =
  let a, af = run_engine ~seed:2 ~incremental:true Simulator.Policy.Resolve in
  let b, bf = run_engine ~seed:2 ~incremental:false Simulator.Policy.Resolve in
  Alcotest.(check bool) "stats identical" true (stats_equal a b);
  Alcotest.(check bool) "finals identical" true (finals_equal af bf);
  check_feasible ~msg:"resolve" platform af

(* Sharded level: the same differential across shard counts and pool
   sizes, for both partition policies. *)
let test_sharded_incremental_matches_full () =
  List.iter
    (fun partition ->
      List.iter
        (fun shards ->
          let run ?pool incremental =
            Simulator.Sharded.run ?pool ~seed:9 ~partition ~incremental
              ~shards
              { config with placement = Simulator.Policy.Greedy_random }
              ~platform
          in
          let fast = run true in
          let slow = run false in
          let msg = Printf.sprintf "shards %d" shards in
          Alcotest.(check bool) (msg ^ ": merged identical") true
            (stats_equal fast.merged slow.merged);
          Array.iteri
            (fun i per ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: shard %d identical" msg i)
                true
                (stats_equal per slow.per_shard.(i)))
            fast.per_shard;
          let parts =
            Simulator.Sharded.partition ~policy:partition ~shards platform
          in
          Array.iteri
            (fun i finals ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: shard %d finals identical" msg i)
                true
                (finals_equal finals slow.finals.(i));
              check_feasible
                ~msg:(Printf.sprintf "%s shard %d" msg i)
                parts.(i) finals)
            fast.finals;
          (* Pool sizes must not perturb the incremental path either. *)
          if shards > 1 then
            List.iter
              (fun domains ->
                let pooled =
                  Par.Pool.with_pool ~domains (fun pool -> run ~pool true)
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s: identical at %d domains" msg domains)
                  true
                  (stats_equal fast.merged pooled.merged))
              [ 2; 4 ])
        [ 1; 2; 4 ])
    [ Simulator.Sharded.Contiguous; Simulator.Sharded.Capacity_balanced ]

(* The new counters engage on a probe-policy run: probes touch bins,
   departures trigger repair passes. *)
let test_repair_counters_engage () =
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let _ = run_engine ~seed:0 ~incremental:true Simulator.Policy.Greedy_random in
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  let counter = Obs.Metrics.Snapshot.counter_value snap in
  Alcotest.(check bool) "bins touched" true
    (counter "simulator.bins_touched" > 0);
  Alcotest.(check bool) "repair passes" true (counter "simulator.repairs" > 0)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ( "engine incremental = full recompute",
        test_engine_incremental_matches_full );
      ("resolve ignores incremental flag", test_resolve_ignores_incremental);
      ( "sharded incremental = full recompute",
        test_sharded_incremental_matches_full );
      ("repair counters engage", test_repair_counters_engage);
    ]
