(* Stream-independence tests for the splitmix64 generator. The parallel
   experiment engine hands each trial a stream derived (by seed hashing or
   [Rng.split]) *before* dispatch; these tests pin down the properties that
   contract relies on: children neither collide with their parent nor with
   each other, and a child's output is insensitive to how much its siblings
   have consumed. *)

let draws rng n = List.init n (fun _ -> Prng.Rng.bits64 rng)

module Int64Set = Set.Make (Int64)

let test_split_child_disjoint_from_parent () =
  let parent = Prng.Rng.create ~seed:42 in
  let child = Prng.Rng.split parent in
  let parent_draws = Int64Set.of_list (draws parent 10_000) in
  let child_draws = Int64Set.of_list (draws child 10_000) in
  Alcotest.(check int) "no shared 64-bit outputs over 10k draws" 0
    (Int64Set.cardinal (Int64Set.inter parent_draws child_draws))

let test_split_children_pairwise_disjoint () =
  let parent = Prng.Rng.create ~seed:7 in
  let children = List.init 4 (fun _ -> Prng.Rng.split parent) in
  let sets = List.map (fun c -> Int64Set.of_list (draws c 2_500)) children in
  List.iteri
    (fun i si ->
      List.iteri
        (fun k sk ->
          if i < k then
            Alcotest.(check int)
              (Printf.sprintf "children %d/%d disjoint" i k)
              0
              (Int64Set.cardinal (Int64Set.inter si sk)))
        sets)
    sets

let test_child_insensitive_to_sibling_consumption () =
  (* Derive two children, then exhaust the first sibling by very different
     amounts; the second child's stream must not move. *)
  let run ~sibling_draws =
    let parent = Prng.Rng.create ~seed:1234 in
    let first = Prng.Rng.split parent in
    let second = Prng.Rng.split parent in
    for _ = 1 to sibling_draws do
      ignore (Prng.Rng.bits64 first)
    done;
    draws second 1_000
  in
  Alcotest.(check bool) "sibling consumption order irrelevant" true
    (run ~sibling_draws:0 = run ~sibling_draws:10_000)

let test_copy_replays () =
  let rng = Prng.Rng.create ~seed:99 in
  ignore (draws rng 17);
  let clone = Prng.Rng.copy rng in
  Alcotest.(check bool) "copy replays the original stream" true
    (draws clone 1_000 = draws rng 1_000)

let test_distinct_seeds_distinct_streams () =
  let a = Int64Set.of_list (draws (Prng.Rng.create ~seed:0) 10_000) in
  let b = Int64Set.of_list (draws (Prng.Rng.create ~seed:1) 10_000) in
  Alcotest.(check int) "seeds 0 and 1 share no outputs" 0
    (Int64Set.cardinal (Int64Set.inter a b))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("split child disjoint from parent", test_split_child_disjoint_from_parent);
      ("split children pairwise disjoint", test_split_children_pairwise_disjoint);
      ( "child insensitive to sibling consumption",
        test_child_insensitive_to_sibling_consumption );
      ("copy replays", test_copy_replays);
      ("distinct seeds, distinct streams", test_distinct_seeds_distinct_streams);
    ]
