(* Timeline + observatory lock-down: the Obs.Timeline container's golden
   serializations, the sharded simulator's fixed-grid telemetry being
   byte-identical at VMALLOC_DOMAINS 1/2/4 for shard counts 1/2/4 (the
   ISSUE's acceptance criterion), the always-on Lp.Pivot_clock, and the
   bench-history report: render determinism, highest-n-file-wins rev
   selection, a passing gate on steady history, and the gate failing on a
   synthetic regressed entry. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

(* ---- Obs.Timeline container ----------------------------------------- *)

let test_container () =
  Alcotest.check_raises "non-positive interval"
    (Invalid_argument "Timeline.create: interval") (fun () ->
      ignore (Obs.Timeline.create ~interval:0. ~cols:[| "x" |]));
  Alcotest.check_raises "empty columns"
    (Invalid_argument "Timeline.create: no columns") (fun () ->
      ignore (Obs.Timeline.create ~interval:1. ~cols:[||]));
  let t = Obs.Timeline.create ~interval:2.5 ~cols:[| "yield"; "n" |] in
  Alcotest.check_raises "row width mismatch"
    (Invalid_argument "Timeline.append: row width mismatch") (fun () ->
      Obs.Timeline.append t ~time:0. [| 1. |]);
  Obs.Timeline.append t ~time:0. [| 1.; 0. |];
  Obs.Timeline.append t ~time:2.5 [| 0.75; 3. |];
  Alcotest.(check int) "two rows" 2 (Obs.Timeline.length t);
  Alcotest.(check string) "JSONL golden"
    "{\"timeline\": {\"interval\": 2.5, \"samples\": 2, \"cols\": \
     [\"yield\", \"n\"]}}\n\
     {\"t\": 0, \"yield\": 1, \"n\": 0}\n\
     {\"t\": 2.5, \"yield\": 0.75, \"n\": 3}\n"
    (Obs.Timeline.to_jsonl t);
  Alcotest.(check string) "Prometheus golden"
    "# HELP vmalloc_yield vmalloc sim-clock gauge yield\n\
     # TYPE vmalloc_yield gauge\n\
     vmalloc_yield 1 0\n\
     vmalloc_yield 0.75 2500\n\
     # HELP vmalloc_n vmalloc sim-clock gauge n\n\
     # TYPE vmalloc_n gauge\n\
     vmalloc_n 0 0\n\
     vmalloc_n 3 2500\n"
    (Obs.Timeline.to_prom t);
  let t' = Obs.Timeline.create ~interval:2.5 ~cols:[| "yield"; "n" |] in
  Obs.Timeline.append t' ~time:0. [| 1.; 0. |];
  Alcotest.(check bool) "equal is structural" false (Obs.Timeline.equal t t');
  Obs.Timeline.append t' ~time:2.5 [| 0.75; 3. |];
  Alcotest.(check bool) "equal after same rows" true (Obs.Timeline.equal t t')

(* Non-finite samples: JSON has no NaN/Inf token, so the JSONL emitter
   must print null — and Obs.Json must read the line back, with the poisoned
   cells parsing as Null (to_num None) and finite neighbours intact. *)
let test_container_non_finite () =
  let t = Obs.Timeline.create ~interval:1. ~cols:[| "good"; "bad" |] in
  Obs.Timeline.append t ~time:0. [| 0.5; Float.nan |];
  Obs.Timeline.append t ~time:1. [| 0.25; Float.infinity |];
  Obs.Timeline.append t ~time:2. [| 0.125; Float.neg_infinity |];
  let jsonl = Obs.Timeline.to_jsonl t in
  let lines =
    String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + three samples" 4 (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Json.parse line with
      | Error e -> Alcotest.failf "line %d must stay parseable: %s" i e
      | Ok doc ->
          if i > 0 then begin
            let num key =
              Option.bind (Obs.Json.member key doc) Obs.Json.to_num
            in
            Alcotest.(check (option (float 1e-12)))
              (Printf.sprintf "line %d: finite gauge round-trips" i)
              (Some (0.5 /. Float.of_int (1 lsl (i - 1))))
              (num "good");
            Alcotest.(check bool)
              (Printf.sprintf "line %d: non-finite gauge is Null" i)
              true
              (Obs.Json.member "bad" doc = Some Obs.Json.Null);
            Alcotest.(check (option (float 1e-12)))
              (Printf.sprintf "line %d: to_num Null is None" i)
              None (num "bad")
          end)
    lines;
  (* Chrome-trace events get the same guard on ts/dur. *)
  Obs.Trace.start ();
  Fun.protect ~finally:(fun () ->
      Obs.Trace.stop ();
      Obs.Trace.reset ())
  @@ fun () ->
  Obs.Trace.instant "probe";
  match Obs.Json.parse (Obs.Trace.to_json ()) with
  | Error e -> Alcotest.failf "trace JSON must parse: %s" e
  | Ok _ -> ()

(* ---- Sharded telemetry determinism ---------------------------------- *)

let platform hosts =
  Array.init hosts (fun id ->
      if id < hosts / 2 then
        Model.Node.make_cores ~id ~cores:4 ~cpu:0.4 ~mem:0.4
      else Model.Node.make_cores ~id ~cores:4 ~cpu:0.8 ~mem:0.8)

let probe_config () =
  let placement =
    match Simulator.Policy.of_string "greedy-random" with
    | Some p -> p
    | None -> Alcotest.fail "greedy-random policy missing"
  in
  {
    Simulator.Engine.default_config with
    horizon = 40.;
    memory_scale = 0.5;
    placement;
  }

let run_timeline ~domains ~shards =
  let config = probe_config () in
  let platform = platform 8 in
  let result =
    if domains > 1 && shards > 1 then
      Par.Pool.with_pool ~domains (fun pool ->
          Simulator.Sharded.run ~pool ~shards ~timeline_interval:5. config
            ~platform)
    else
      Simulator.Sharded.run ~shards ~timeline_interval:5. config ~platform
  in
  match result.Simulator.Sharded.timeline with
  | Some tl -> tl
  | None -> Alcotest.fail "timeline requested but absent"

(* Seed-0 simulate: the serialized timeline is byte-identical at 1/2/4
   domains for each shard count — the gauges are sampled on the sim
   clock and merged in shard order, never read from scheduler-dependent
   state. *)
let test_sharded_domain_invariant () =
  List.iter
    (fun shards ->
      let t1 = run_timeline ~domains:1 ~shards in
      let t2 = run_timeline ~domains:2 ~shards in
      let t4 = run_timeline ~domains:4 ~shards in
      let name fmt = Printf.sprintf fmt shards in
      Alcotest.(check int)
        (name "shards=%d: horizon/interval + 1 samples")
        9
        (Obs.Timeline.length t1);
      Alcotest.(check string)
        (name "shards=%d: JSONL 1 vs 2 domains")
        (Obs.Timeline.to_jsonl t1) (Obs.Timeline.to_jsonl t2);
      Alcotest.(check string)
        (name "shards=%d: JSONL 1 vs 4 domains")
        (Obs.Timeline.to_jsonl t1) (Obs.Timeline.to_jsonl t4);
      Alcotest.(check string)
        (name "shards=%d: Prometheus 1 vs 4 domains")
        (Obs.Timeline.to_prom t1) (Obs.Timeline.to_prom t4);
      (* The run does real work: some bins-touched rate is nonzero, and
         the grid carries live services. *)
      let rows = Obs.Timeline.rows t1 in
      let some_activity =
        List.exists (fun (_, v) -> v.(4) > 0. || v.(1) > 0.) rows
      in
      Alcotest.(check bool) (name "shards=%d: nonzero activity") true
        some_activity)
    [ 1; 2; 4 ]

(* ---- Lp.Pivot_clock -------------------------------------------------- *)

let test_pivot_clock () =
  let inst =
    Workload.Generator.generate
      ~rng:(Prng.Rng.create ~seed:7)
      {
        Workload.Generator.hosts = 4;
        services = 10;
        cov = 0.5;
        slack = 0.5;
        cpu_homogeneous = false;
        mem_homogeneous = false;
      }
  in
  let before = Lp.Pivot_clock.total () in
  ignore (Heuristics.Milp.relaxed_bound inst);
  let after = Lp.Pivot_clock.total () in
  Alcotest.(check bool) "solving an LP ticks the clock" true (after > before);
  (* The clock is always on — no Obs.Metrics flag involved. *)
  Alcotest.(check bool) "monotone" true (Lp.Pivot_clock.total () >= after)

(* ---- Bench-history report ------------------------------------------- *)

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  close_out oc

let entry ~bins_per_event ~reeval =
  Printf.sprintf
    "{\"online\": [{\"policy\": \"best-fit\", \"hosts\": 10, \
     \"bins_per_event\": %g, \"repairs\": 5, \"admitted\": 90}], \"sim\": \
     {\"reeval_skips\": %d}}"
    bins_per_event reeval

(* A fresh history dir per test, with mtimes pinned so rev order is
   (aaa, bbb, ccc) regardless of write speed. *)
let with_history entries f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vmalloc_report_test_%d_%d" (Unix.getpid ())
         (Hashtbl.hash entries))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  List.iteri
    (fun i (name, body) ->
      let path = Filename.concat dir name in
      write_file path body;
      let t = 1e9 +. (float_of_int i *. 100.) in
      Unix.utimes path t t)
    entries;
  f dir

let test_report_render_and_gate_pass () =
  with_history
    [
      ("aaa-0.json", entry ~bins_per_event:10. ~reeval:3);
      (* The stale first bench run of rev bbb: the higher-numbered rerun
         must win. *)
      ("bbb-0.json", entry ~bins_per_event:99. ~reeval:4);
      ("bbb-1.json", entry ~bins_per_event:10.5 ~reeval:4);
    ]
  @@ fun dir ->
  match Obs.Report.load ~dir with
  | Error e -> Alcotest.fail e
  | Ok t -> (
      Alcotest.(check (array string))
        "revs chronological" [| "aaa"; "bbb" |] (Obs.Report.revs t);
      (match (Obs.Report.render t, Obs.Report.render t) with
      | Ok r1, Ok r2 ->
          Alcotest.(check string) "render twice is byte-identical" r1 r2;
          Alcotest.(check bool) "latest value is from bbb-1, not bbb-0" true
            (contains r1 "10.5");
          Alcotest.(check bool) "stale bbb-0 value ignored" false
            (contains r1 "99");
          Alcotest.(check bool) "gated metric flagged" true
            (contains r1 "online.best-fit.h10.bins_per_event  [gated]")
      | Error e, _ | _, Error e -> Alcotest.fail e);
      match Obs.Report.gate ~baseline:"aaa" ~max_regression_pct:25. t with
      | Error e -> Alcotest.fail e
      | Ok failures ->
          Alcotest.(check int) "+5% stays under a 25% gate" 0
            (List.length failures))

let test_report_gate_fails_on_regression () =
  with_history
    [
      ("aaa-0.json", entry ~bins_per_event:10. ~reeval:3);
      ("ccc-0.json", entry ~bins_per_event:20. ~reeval:3);
    ]
  @@ fun dir ->
  match Obs.Report.load ~dir with
  | Error e -> Alcotest.fail e
  | Ok t -> (
      match Obs.Report.gate ~baseline:"aaa" ~max_regression_pct:25. t with
      | Error e -> Alcotest.fail e
      | Ok failures ->
          Alcotest.(check int) "the doubled counter fails the gate" 1
            (List.length failures);
          let f = List.hd failures in
          Alcotest.(check string) "which metric"
            "online.best-fit.h10.bins_per_event" f.Obs.Report.metric;
          Alcotest.(check (float 1e-9)) "regression percent" 100.
            f.Obs.Report.pct;
          Alcotest.(check bool) "failure rendering names the metric" true
            (contains
               (Obs.Report.render_failures failures)
               "REGRESSION online.best-fit.h10.bins_per_event: 10 -> 20 \
                (+100.0%)");
          (* Ungated info metrics never trip the gate, and a generous
             threshold passes the same history. *)
          (match
             Obs.Report.gate ~baseline:"aaa" ~max_regression_pct:150. t
           with
          | Ok [] -> ()
          | Ok _ -> Alcotest.fail "150% gate should pass a +100% regression"
          | Error e -> Alcotest.fail e);
          match Obs.Report.gate ~baseline:"zzz" ~max_regression_pct:25. t with
          | Error msg ->
              Alcotest.(check bool) "unknown baseline is a one-line error"
                true
                (contains msg "baseline rev zzz not in history")
          | Ok _ -> Alcotest.fail "unknown baseline must be an error")

let test_report_real_history () =
  (* The committed bench history must load, render deterministically, and
     pass its own gate against the committed baseline rev. *)
  let dir = "../bench/history" in
  let dir = if Sys.file_exists dir then dir else "bench/history" in
  if not (Sys.file_exists dir) then ()
  else
    match Obs.Report.load ~dir with
    | Error e -> Alcotest.fail e
    | Ok t -> (
        let revs = Obs.Report.revs t in
        Alcotest.(check bool) "at least one rev" true (Array.length revs > 0);
        match (Obs.Report.render t, Obs.Report.render t) with
        | Ok r1, Ok r2 ->
            Alcotest.(check string) "real history renders deterministically"
              r1 r2
        | Error e, _ | _, Error e -> Alcotest.fail e)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("container create/append/serialize", test_container);
      ("non-finite gauges emit null and round-trip",
       test_container_non_finite);
      ("sharded timeline identical at 1/2/4 domains x 1/2/4 shards",
       test_sharded_domain_invariant);
      ("pivot clock ticks on LP solves", test_pivot_clock);
      ("report: render determinism, rev selection, passing gate",
       test_report_render_and_gate_pass);
      ("report: gate fails on a synthetic regression",
       test_report_gate_fails_on_regression);
      ("report: committed bench history loads and renders",
       test_report_real_history);
    ]
