(* Seeded random-LP family generator.

   Shared by the differential test suite (test_simplex_diff.ml,
   test_branch_bound.ml) and the bench `lp` section, which is why it is a
   small dune library rather than a test module. Every family is built
   around a known witness so the feasibility class is guaranteed by
   construction, not discovered by a solver:

   - [Feasible]: constraints anchored at a random interior point x0 with
     positive slack; finite upper bounds above x0, so the LP is bounded and
     both solvers must return [Optimal].
   - [Degenerate]: as [Feasible] but with zeroed x0 coordinates and half
     the inequality rows tight at x0 — primal degeneracy at a vertex, the
     diet of the Bland's-rule switchover.
   - [Infeasible]: a feasible base plus a contradictory pair
     [a.x <= r, a.x >= r + delta] (same coefficients, delta >= 1), which no
     point satisfies regardless of bounds.
   - [Unbounded]: a feasible base over the first n-1 variables; the last
     variable appears in no constraint, has no upper bound, and carries a
     strictly positive Maximize objective coefficient.
   - [Banded]: as [Feasible], but each row draws its variables from a
     narrow window sliding with the row index — the banded structure whose
     bases reward a fill-in-aware factorization.
   - [Block_diag]: as [Feasible], but variables are split into diagonal
     blocks and every row lives inside one block (rows cycle through the
     blocks), giving disconnected basis structure.

   Generation is a pure function of the seed (lib/prng splitmix64), and
   [to_bytes] is a canonical serialization, so "same seed => same problem
   bytes" is testable literally. The sparse families reuse the dense
   families' sampling order exactly, so adding them left every existing
   (family, seed) problem byte-identical. *)

type family =
  | Feasible
  | Infeasible
  | Unbounded
  | Degenerate
  | Banded
  | Block_diag

let all_families =
  [ Feasible; Infeasible; Unbounded; Degenerate; Banded; Block_diag ]

let family_name = function
  | Feasible -> "feasible"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Degenerate -> "degenerate"
  | Banded -> "banded"
  | Block_diag -> "block_diag"

(* Magnitudes in [0.05, 1]: no near-zero coefficients, so generated pivots
   stay well away from the solvers' pivot tolerances. *)
let coef rng =
  let mag = Prng.Rng.uniform_range rng 0.05 1. in
  if Prng.Rng.uniform rng < 0.5 then -.mag else mag

let generate ?(density = 0.6) ~seed ~n_vars ~n_cons family =
  if n_vars < 2 then invalid_arg "Lp_gen.generate: n_vars must be >= 2";
  let rng = Prng.Rng.create ~seed in
  let n = n_vars in
  (* Witness point; the last variable is reserved as the unbounded ray. *)
  let x0 = Array.init n (fun _ -> Prng.Rng.uniform_range rng 0. 2.) in
  (match family with
  | Degenerate ->
      for v = 0 to n - 1 do
        if Prng.Rng.uniform rng < 0.5 then x0.(v) <- 0.
      done
  | Unbounded -> x0.(n - 1) <- 0.
  | Feasible | Infeasible | Banded | Block_diag -> ());
  let avail = match family with Unbounded -> n - 1 | _ -> n in
  (* Variable window of row [i]: everything for the dense families, a
     sliding band or one diagonal block for the sparse ones. [density]
     still applies inside the window. *)
  let window i =
    match family with
    | Banded ->
        let band = min avail (max 3 ((avail / 8) + 2)) in
        let lo =
          if n_cons <= 1 then 0 else i * (avail - band) / (n_cons - 1)
        in
        (lo, lo + band)
    | Block_diag ->
        let blocks = max 2 (avail / 5) in
        let bs = (avail + blocks - 1) / blocks in
        let lo = i mod blocks * bs in
        (lo, min avail (lo + bs))
    | Feasible | Infeasible | Unbounded | Degenerate -> (0, avail)
  in
  let row i =
    let lo, hi = window i in
    let coeffs = ref [] in
    for v = hi - 1 downto lo do
      if Prng.Rng.uniform rng < density then
        coeffs := (v, coef rng) :: !coeffs
    done;
    if !coeffs = [] then
      coeffs := [ (lo + Prng.Rng.int rng (hi - lo), coef rng) ];
    !coeffs
  in
  let constraints = ref [] in
  let lhs0 coeffs =
    List.fold_left (fun acc (v, a) -> acc +. (a *. x0.(v))) 0. coeffs
  in
  for i = 0 to n_cons - 1 do
    let coeffs = row i in
    let base = lhs0 coeffs in
    let name = Printf.sprintf "r%d" i in
    let tight =
      match family with Degenerate -> i mod 2 = 0 | _ -> false
    in
    let slack =
      if tight then 0. else Prng.Rng.uniform_range rng 0.1 2.
    in
    let cstr =
      if i mod 5 = 4 then Lp.Problem.c ~name coeffs Lp.Problem.Eq base
      else if i mod 2 = 0 then
        Lp.Problem.c ~name coeffs Lp.Problem.Le (base +. slack)
      else Lp.Problem.c ~name coeffs Lp.Problem.Ge (base -. slack)
    in
    constraints := cstr :: !constraints
  done;
  (match family with
  | Infeasible ->
      let k = min 3 avail in
      let a = List.init k (fun v -> (v, Prng.Rng.uniform_range rng 0.1 1.)) in
      let r = lhs0 a +. Prng.Rng.uniform rng in
      constraints :=
        Lp.Problem.c ~name:"contra_ge" a Lp.Problem.Ge
          (r +. 1. +. Prng.Rng.uniform rng)
        :: Lp.Problem.c ~name:"contra_le" a Lp.Problem.Le r
        :: !constraints
  | Feasible | Unbounded | Degenerate | Banded | Block_diag -> ());
  let lower = Array.make n 0. in
  let upper =
    Array.init n (fun v -> x0.(v) +. Prng.Rng.uniform_range rng 0.5 2.)
  in
  if family = Unbounded then upper.(n - 1) <- infinity;
  let objective = Array.init n (fun _ -> Prng.Rng.uniform_range rng (-1.) 1.) in
  if family = Unbounded then
    objective.(n - 1) <- Prng.Rng.uniform_range rng 0.5 1.;
  Lp.Problem.create ~sense:Lp.Problem.Maximize ~lower ~upper ~n_vars:n
    ~objective
    ~constraints:(List.rev !constraints) ()

(* Random bounded MILP, feasible by construction: the witness x0 is
   integral, every variable is integer with a small upper bound, and every
   constraint is anchored at x0 (tight for Eq, slack otherwise). *)
let generate_milp ?(density = 0.6) ~seed ~n_vars ~n_cons () =
  let rng = Prng.Rng.create ~seed in
  let n = n_vars in
  let upper = Array.init n (fun _ -> Float.of_int (1 + Prng.Rng.int rng 2)) in
  let x0 =
    Array.init n (fun v -> Float.of_int (Prng.Rng.int rng (1 + int_of_float upper.(v))))
  in
  let row () =
    let coeffs = ref [] in
    for v = n - 1 downto 0 do
      if Prng.Rng.uniform rng < density then
        coeffs := (v, coef rng) :: !coeffs
    done;
    if !coeffs = [] then coeffs := [ (Prng.Rng.int rng n, coef rng) ];
    !coeffs
  in
  let constraints = ref [] in
  for i = 0 to n_cons - 1 do
    let coeffs = row () in
    let base =
      List.fold_left (fun acc (v, a) -> acc +. (a *. x0.(v))) 0. coeffs
    in
    let name = Printf.sprintf "m%d" i in
    let slack = Prng.Rng.uniform_range rng 0.2 1.5 in
    let cstr =
      if i mod 4 = 3 then Lp.Problem.c ~name coeffs Lp.Problem.Eq base
      else if i mod 2 = 0 then
        Lp.Problem.c ~name coeffs Lp.Problem.Le (base +. slack)
      else Lp.Problem.c ~name coeffs Lp.Problem.Ge (base -. slack)
    in
    constraints := cstr :: !constraints
  done;
  let objective = Array.init n (fun _ -> Prng.Rng.uniform_range rng (-1.) 1.) in
  Lp.Problem.create ~sense:Lp.Problem.Maximize ~upper ~n_vars:n ~objective
    ~integer:(List.init n Fun.id)
    ~constraints:(List.rev !constraints) ()

(* Canonical, lossless serialization (hex floats): equal problems produce
   equal strings, so seed-determinism is a string comparison. *)
let to_bytes (p : Lp.Problem.t) =
  let b = Buffer.create 1024 in
  let fl x = Printf.bprintf b "%h;" x in
  Printf.bprintf b "n:%d;sense:%s;" p.Lp.Problem.n_vars
    (match p.Lp.Problem.sense with
    | Lp.Problem.Maximize -> "max"
    | Lp.Problem.Minimize -> "min");
  Buffer.add_string b "obj:";
  Array.iter fl p.Lp.Problem.objective;
  Buffer.add_string b "lo:";
  Array.iter fl p.Lp.Problem.lower;
  Buffer.add_string b "up:";
  Array.iter fl p.Lp.Problem.upper;
  Buffer.add_string b "int:";
  Array.iter (fun f -> Buffer.add_char b (if f then '1' else '0')) p.Lp.Problem.integer;
  Buffer.add_string b ";cons:";
  List.iter
    (fun (c : Lp.Problem.linear_constraint) ->
      Printf.bprintf b "[%s|%s|%h|" c.Lp.Problem.name
        (match c.Lp.Problem.relation with
        | Lp.Problem.Le -> "<="
        | Lp.Problem.Ge -> ">="
        | Lp.Problem.Eq -> "=")
        c.Lp.Problem.rhs;
      List.iter (fun (v, a) -> Printf.bprintf b "%d:%h," v a) c.Lp.Problem.coeffs;
      Buffer.add_char b ']')
    p.Lp.Problem.constraints;
  Buffer.contents b
