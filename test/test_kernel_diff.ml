(* Differential lock-down of the probe-shared packing kernel
   (DESIGN.md §11): solves through the kernel (shared item scratch,
   memoized sort orders and Permutation-Pack item permutations, reset
   bins) must be bit-identical to the naive fresh-allocation path
   restored by VMALLOC_NO_PROBE_CACHE=1 / ~kernel:false — same
   Some/None, same placement, same yield to the last bit — across random
   instances, single-strategy (FF/BF/PP/CP) and META (VP/HVP/HVPLIGHT)
   strategy sets, and probe-pool sizes 1/2/4.

   Monotone strategy pruning is opt-in (its per-strategy monotonicity
   premise was falsified at Table-1 scale, see vp_solver.ml), so its
   tests are scoped to where the premise is checked to hold: a replay
   test verifies that on this corpus no probe's naive winner was ever
   prunable (i.e. had failed at an earlier, lower-or-equal probed
   yield), and a prune-mode differential test confirms that there —
   and only there — ~prune:true still reproduces the naive bits. *)

module VS = Heuristics.Vp_solver

let with_pool = Par.Pool.with_pool

let single_strategies =
  let open Packing.Strategy in
  let pp flavour = Permutation_pack { flavour; window = None } in
  [
    ("FF",
     { algo = First_fit; item_order = Vec.Metric.(Desc (Scalar Sum));
       bin_order = Vec.Metric.Unsorted; variant = Vp });
    ("BF",
     { algo = Best_fit; item_order = Vec.Metric.(Desc (Scalar Max));
       bin_order = Vec.Metric.Unsorted; variant = Hvp });
    ("PP",
     { algo = pp Packing.Permutation_pack.Permutation;
       item_order = Vec.Metric.(Desc (Scalar Max_ratio));
       bin_order = Vec.Metric.(Asc Lex); variant = Hvp });
    ("CP",
     { algo = pp Packing.Permutation_pack.Choose;
       item_order = Vec.Metric.(Desc (Scalar Max_difference));
       bin_order = Vec.Metric.Unsorted; variant = Vp });
  ]

let meta_sets =
  [
    ("METAVP", Packing.Strategy.vp_all);
    ("METAHVPLIGHT", Packing.Strategy.hvp_light);
  ]

let gen_instance ~seed ~hosts ~services ~slack =
  Workload.Generator.generate
    ~rng:(Prng.Rng.create ~seed)
    {
      Workload.Generator.hosts;
      services;
      cov = 0.5;
      slack;
      cpu_homogeneous = false;
      mem_homogeneous = false;
    }

(* Easy, mid, and hard-to-infeasible regimes, so the sweep crosses the
   feasible-at-1, interior-optimum, and infeasible-at-0 fast paths. *)
let corpus =
  let slacks = [| 0.05; 0.2; 0.35; 0.5; 0.7; 0.9 |] in
  List.init 12 (fun seed ->
      let hosts = 2 + (seed mod 5) in
      let services = 3 + (seed * 5 mod 17) in
      let slack = slacks.(seed mod Array.length slacks) in
      (seed, gen_instance ~seed ~hosts ~services ~slack))

let check_identical msg kernel naive =
  match (kernel, naive) with
  | None, None -> ()
  | Some (a : VS.solution), Some (b : VS.solution) ->
      if a.placement <> b.placement then
        Alcotest.failf "%s: placements differ" msg;
      if Int64.bits_of_float a.min_yield <> Int64.bits_of_float b.min_yield
      then
        Alcotest.failf "%s: yields differ (%.17g vs %.17g)" msg a.min_yield
          b.min_yield
  | Some _, None -> Alcotest.failf "%s: kernel Some, naive None" msg
  | None, Some _ -> Alcotest.failf "%s: kernel None, naive Some" msg

let pool_sizes = [ 1; 2; 4 ]

let test_kernel_vs_naive_singles () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          List.iter
            (fun (seed, inst) ->
              List.iter
                (fun (sname, strategy) ->
                  check_identical
                    (Printf.sprintf "seed %d, %s, %d domains" seed sname
                       domains)
                    (VS.solve ~pool ~kernel:true strategy inst)
                    (VS.solve ~pool ~kernel:false strategy inst))
                single_strategies)
            corpus))
    pool_sizes

let test_kernel_vs_naive_meta () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          List.iter
            (fun (seed, inst) ->
              List.iter
                (fun (mname, strategies) ->
                  check_identical
                    (Printf.sprintf "seed %d, %s, %d domains" seed mname
                       domains)
                    (VS.solve_multi ~pool ~kernel:true strategies inst)
                    (VS.solve_multi ~pool ~kernel:false strategies inst))
                meta_sets)
            corpus))
    pool_sizes

(* The full 253-strategy METAHVP set is the expensive one; lock it down on
   a few instances spanning the three regimes, at every pool size. *)
let test_kernel_vs_naive_metahvp () =
  let picks =
    [
      (0, gen_instance ~seed:0 ~hosts:4 ~services:10 ~slack:0.05);
      (1, gen_instance ~seed:1 ~hosts:5 ~services:14 ~slack:0.35);
      (2, gen_instance ~seed:2 ~hosts:3 ~services:8 ~slack:0.9);
    ]
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          List.iter
            (fun (seed, inst) ->
              check_identical
                (Printf.sprintf "seed %d, METAHVP, %d domains" seed domains)
                (VS.solve_multi ~pool ~kernel:true Packing.Strategy.hvp_all
                   inst)
                (VS.solve_multi ~pool ~kernel:false Packing.Strategy.hvp_all
                   inst))
            picks))
    pool_sizes

(* The env escape hatch itself: VMALLOC_NO_PROBE_CACHE=1 must route a
   default solve through the naive path (same results, so the only
   observable is the kernel's counters staying silent). *)
let with_env_no_cache f =
  Unix.putenv "VMALLOC_NO_PROBE_CACHE" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "VMALLOC_NO_PROBE_CACHE" "")
    f

let counter_after ~env_hatch solve =
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  (if env_hatch then with_env_no_cache solve else solve ());
  Obs.Metrics.set_enabled false;
  Obs.Metrics.snapshot ()

let test_escape_hatch_and_counters () =
  let inst = gen_instance ~seed:7 ~hosts:5 ~services:14 ~slack:0.35 in
  let solve ?kernel ?prune () =
    ignore (VS.solve_multi ?kernel ?prune Packing.Strategy.hvp_light inst)
  in
  (* ~kernel:true so the test means the same thing when the whole suite
     runs under VMALLOC_NO_PROBE_CACHE=1 (the CI fallback leg). *)
  let on = counter_after ~env_hatch:false (fun () -> solve ~kernel:true ()) in
  let pruned =
    counter_after ~env_hatch:false (fun () ->
        solve ~kernel:true ~prune:true ())
  in
  let off = counter_after ~env_hatch:true (fun () -> solve ()) in
  let v snap name = Obs.Metrics.Snapshot.counter_value snap name in
  Alcotest.(check bool) "kernel solve hits the sort memo" true
    (v on "vp_solver.items_cache_hits" > 0);
  Alcotest.(check int) "pruning is opt-in: silent by default" 0
    (v on "vp_solver.strategies_pruned");
  Alcotest.(check bool) "~prune:true prunes strategies" true
    (v pruned "vp_solver.strategies_pruned" > 0);
  Alcotest.(check int) "env hatch silences pruning" 0
    (v off "vp_solver.strategies_pruned");
  Alcotest.(check int) "env hatch silences the sort memo" 0
    (v off "vp_solver.items_cache_hits");
  (* Memoization never changes, and pruning only ever removes, attempts. *)
  Alcotest.(check int) "kernel attempts = naive attempts"
    (v off "vp_solver.strategy_attempts")
    (v on "vp_solver.strategy_attempts");
  Alcotest.(check bool) "pruned attempts <= naive attempts" true
    (v pruned "vp_solver.strategy_attempts"
    <= v off "vp_solver.strategy_attempts");
  Alcotest.(check int) "same probe count either way"
    (v off "vp_solver.oracle_calls")
    (v on "vp_solver.oracle_calls")

(* Opt-in pruning mode: where the replay test below validates the
   monotonicity premise, ~prune:true must still reproduce the naive bits
   (sequential search — the premise is checked on the sequential probe
   sequence). *)
let test_prune_mode_identity_on_corpus () =
  List.iter
    (fun (seed, inst) ->
      List.iter
        (fun (mname, strategies) ->
          check_identical
            (Printf.sprintf "seed %d, %s, pruned" seed mname)
            (VS.solve_multi ~kernel:true ~prune:true strategies inst)
            (VS.solve_multi ~kernel:false strategies inst))
        meta_sets)
    corpus

(* Pruning soundness, checked directly rather than via end-to-end
   equality: record the sequential probe sequence of a kernel solve, then
   replay every (probe, strategy) pair through the naive oracle. For each
   probe, the naive winner — the strategy whose placement the probe
   returns — must not have failed at any earlier probed yield <= the
   current one; otherwise pruning would have skipped a would-be winner
   and changed the outcome. (This premise does NOT hold universally —
   differential sweeps falsified it at Table-1 scale, which is why
   pruning is opt-in — but it must hold on the instances the prune-mode
   identity test above relies on.) *)
let test_pruning_never_skips_a_winner () =
  let checked = ref 0 in
  List.iter
    (fun (seed, inst) ->
      List.iter
        (fun (mname, strategies) ->
          let probes = ref [] in
          ignore
            (VS.solve_multi
               ~on_round:(fun pts ->
                 probes := Array.to_list pts @ !probes)
               strategies inst);
          let probes = List.rev !probes in
          let strategies = Array.of_list strategies in
          (* fails.(i) = lowest yield strategy i failed at so far. *)
          let fails = Array.make (Array.length strategies) infinity in
          List.iter
            (fun y ->
              let winner = ref None in
              Array.iteri
                (fun i s ->
                  if !winner = None then
                    match VS.pack_at_yield s inst y with
                    | Some _ -> winner := Some i
                    | None -> if y < fails.(i) then fails.(i) <- y)
                strategies;
              match !winner with
              | Some i when fails.(i) <= y ->
                  Alcotest.failf
                    "seed %d, %s: winner %s at probe %.17g failed earlier \
                     at %.17g — pruning would skip it"
                    seed mname
                    (Packing.Strategy.name strategies.(i))
                    y fails.(i)
              | _ -> incr checked)
            probes)
        [
          ("METAVP", Packing.Strategy.vp_all);
          ("METAHVPLIGHT", Packing.Strategy.hvp_light);
        ])
    [
      (3, gen_instance ~seed:3 ~hosts:4 ~services:12 ~slack:0.2);
      (8, gen_instance ~seed:8 ~hosts:5 ~services:10 ~slack:0.35);
    ];
  Alcotest.(check bool) "replay covered probes" true (!checked > 0)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("kernel = naive on FF/BF/PP/CP solves", test_kernel_vs_naive_singles);
      ("kernel = naive on METAVP/METAHVPLIGHT", test_kernel_vs_naive_meta);
      ("kernel = naive on METAHVP", test_kernel_vs_naive_metahvp);
      ("escape hatch + kernel counters", test_escape_hatch_and_counters);
      ("prune mode = naive where premise holds",
       test_prune_mode_identity_on_corpus);
      ("pruning never skips a would-be winner",
       test_pruning_never_skips_a_winner);
    ]
