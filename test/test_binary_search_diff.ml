(* Differential lock-down of the speculative k-probe yield search:
   [Binary_search.maximize_par] must return bit-identical results to
   [maximize] — same Some/None, same placement, same yield to the last
   bit — for real packing oracles at every pool size, including the
   infeasible-at-0 and feasible-at-1 fast paths; and it must win its
   speed-up in oracle *rounds* without ever needing more rounds than the
   sequential search needs probes. *)

module BS = Heuristics.Binary_search

let with_pool = Par.Pool.with_pool

(* One packing oracle per base algorithm of the paper: FF, BF, PP, CP. *)
let oracle_strategies =
  let open Packing.Strategy in
  let pp flavour =
    Permutation_pack { flavour; window = None }
  in
  [
    ("FF",
     { algo = First_fit; item_order = Vec.Metric.(Desc (Scalar Sum));
       bin_order = Vec.Metric.Unsorted; variant = Vp });
    ("BF",
     { algo = Best_fit; item_order = Vec.Metric.(Desc (Scalar Max));
       bin_order = Vec.Metric.Unsorted; variant = Hvp });
    ("PP",
     { algo = pp Packing.Permutation_pack.Permutation;
       item_order = Vec.Metric.(Desc (Scalar Max_ratio));
       bin_order = Vec.Metric.(Asc Lex); variant = Hvp });
    ("CP",
     { algo = pp Packing.Permutation_pack.Choose;
       item_order = Vec.Metric.(Desc (Scalar Max_difference));
       bin_order = Vec.Metric.Unsorted; variant = Vp });
  ]

let gen_instance ~seed ~hosts ~services ~slack =
  Workload.Generator.generate
    ~rng:(Prng.Rng.create ~seed)
    {
      Workload.Generator.hosts;
      services;
      cov = 0.5;
      slack;
      cpu_homogeneous = false;
      mem_homogeneous = false;
    }

(* ~50 instances spanning easy, mid, and hard-to-infeasible (slack 0.05)
   regimes, plus the paper's Fig. 1 instance — whose lone service runs at
   full performance on node B, pinning the feasible-at-1 fast path on real
   packing oracles (the generator never produces slack that loose). *)
let instance_fig1 =
  Model.Instance.v
    ~nodes:
      [|
        Model.Node.make_cores ~id:0 ~cores:4 ~cpu:3.2 ~mem:1.0;
        Model.Node.make_cores ~id:1 ~cores:2 ~cpu:2.0 ~mem:0.5;
      |]
    ~services:
      [|
        Model.Service.make_2d ~id:0 ~cpu_req:(0.5, 1.0) ~mem_req:0.5
          ~cpu_need:(0.5, 1.0) ();
      |]

let corpus =
  let slacks = [| 0.05; 0.2; 0.35; 0.5; 0.7; 0.9 |] in
  (-1, instance_fig1)
  :: List.init 50 (fun seed ->
         let hosts = 2 + (seed mod 5) in
         let services = 3 + (seed * 3 mod 16) in
         let slack = slacks.(seed mod Array.length slacks) in
         (seed, gen_instance ~seed ~hosts ~services ~slack))

let check_identical msg seq par =
  match (seq, par) with
  | None, None -> ()
  | Some (p1, y1), Some (p2, y2) ->
      if p1 <> p2 then Alcotest.failf "%s: placements differ" msg;
      if Int64.bits_of_float y1 <> Int64.bits_of_float y2 then
        Alcotest.failf "%s: yields differ (%.17g vs %.17g)" msg y1 y2
  | Some _, None -> Alcotest.failf "%s: sequential Some, parallel None" msg
  | None, Some _ -> Alcotest.failf "%s: sequential None, parallel Some" msg

let pool_sizes () =
  (* 1 = the degenerate sequential path; 2 and 4 exercise speculation
     depths 2 and 3. The env-derived size makes the CI
     VMALLOC_DOMAINS={1,2} matrix leg vary what this suite runs. *)
  let env = min 4 (Par.Pool.domains_from_env ()) in
  List.sort_uniq compare [ 1; 2; 4; env ]

let test_differential_packing_oracles () =
  let feasible = ref 0 and infeasible = ref 0 and at_one = ref 0 in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          List.iter
            (fun (seed, inst) ->
              List.iter
                (fun (oname, strategy) ->
                  let oracle = Heuristics.Vp_solver.pack_at_yield strategy inst in
                  let seq = BS.maximize oracle in
                  let par = BS.maximize_par ~pool oracle in
                  (match seq with
                  | None -> incr infeasible
                  | Some (_, y) ->
                      incr feasible;
                      if y = 1. then incr at_one);
                  check_identical
                    (Printf.sprintf "seed %d, %s oracle, %d domains" seed
                       oname domains)
                    seq par)
                oracle_strategies)
            corpus))
    (pool_sizes ());
  (* The sweep must genuinely cover all three outcome classes. *)
  Alcotest.(check bool) "sweep hit feasible instances" true (!feasible > 0);
  Alcotest.(check bool) "sweep hit infeasible-at-0 instances" true
    (!infeasible > 0);
  Alcotest.(check bool) "sweep hit feasible-at-1 instances" true (!at_one > 0)

(* The two fast paths, pinned deterministically (no reliance on what the
   generator happens to produce), plus non-default tolerances. *)
let test_differential_fast_paths () =
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          check_identical "always-feasible oracle"
            (BS.maximize (fun y -> Some y))
            (BS.maximize_par ~pool (fun y -> Some y));
          check_identical "never-feasible oracle"
            (BS.maximize (fun _ -> None))
            (BS.maximize_par ~pool (fun _ -> None));
          List.iter
            (fun tolerance ->
              let target = 0.37 in
              let oracle y = if y <= target then Some y else None in
              check_identical
                (Printf.sprintf "threshold oracle, tolerance %g" tolerance)
                (BS.maximize ~tolerance oracle)
                (BS.maximize_par ~tolerance ~pool oracle))
            (* 0. exercises the non-positive clamp on both sides. *)
            [ 1e-2; 1e-3; 3e-4; 0. ]))
    (pool_sizes ())

(* Exact announced-probe sequences, pinned point by point. Oracle feasible
   iff y <= 0.3 at tolerance 0.2 — wide enough to trace by hand:

   sequential   [1]; [0]; [0.5]; [0.25]; [0.375]        (bracket 0.25..0.375)
   k=2 (n=3)    [1]; [0]; [0.5 0.25 0.75]; [0.375]
   k=4 (n=7)    [1]; [0]; [0.5 0.25 0.75 0.125 0.375 0.625 0.875]

   The speculative batches are the next bisection levels below the current
   bracket in heap order (children of i at 2i+1/2i+2); the on-path points
   (0.5, 0.25, 0.375) appear bit-identically inside them. After the k=2
   first fan resolves, the bracket is 0.25..0.5 — one bisection level from
   the tolerance — so the remaining-levels cap shrinks the second fan to
   the single on-path point instead of speculating past the stop. *)
let show_rounds rounds =
  String.concat "; "
    (List.map
       (fun pts ->
         "["
         ^ String.concat " "
             (List.map (Printf.sprintf "%.17g") (Array.to_list pts))
         ^ "]")
       rounds)

let record f =
  let rounds = ref [] in
  ignore (f (fun pts -> rounds := Array.copy pts :: !rounds));
  show_rounds (List.rev !rounds)

let test_probe_sequences () =
  let tolerance = 0.2 in
  let oracle y = if y <= 0.3 then Some y else None in
  let expect rounds = show_rounds (List.map Array.of_list rounds) in
  let seq_expected = expect [ [ 1. ]; [ 0. ]; [ 0.5 ]; [ 0.25 ]; [ 0.375 ] ] in
  Alcotest.(check string) "sequential probe sequence" seq_expected
    (record (fun on_round -> BS.maximize ~tolerance ~on_round oracle));
  let par ~domains on_round =
    with_pool ~domains (fun pool ->
        BS.maximize_par ~tolerance ~pool ~on_round oracle)
  in
  Alcotest.(check string) "pool size 1 degenerates to the sequential sequence"
    seq_expected
    (record (fun on_round -> par ~domains:1 on_round));
  Alcotest.(check string)
    "pool size 2: 3-point fan, then a capped single-point round"
    (expect [ [ 1. ]; [ 0. ]; [ 0.5; 0.25; 0.75 ]; [ 0.375 ] ])
    (record (fun on_round -> par ~domains:2 on_round));
  Alcotest.(check string) "pool size 4: one 7-point speculative round"
    (expect
       [ [ 1. ]; [ 0. ];
         [ 0.5; 0.25; 0.75; 0.125; 0.375; 0.625; 0.875 ] ])
    (record (fun on_round -> par ~domains:4 on_round))

(* The fast paths announce exactly the endpoint probes — [|1.|] alone when
   feasible at 1, [|1.|]; [|0.|] when infeasible at 0 — identically on both
   searches at every pool size. *)
let test_probe_sequence_endpoints () =
  let feasible_at_1 = "[1]" and infeasible_at_0 = "[1]; [0]" in
  Alcotest.(check string) "maximize feasible-at-1" feasible_at_1
    (record (fun on_round -> BS.maximize ~on_round (fun y -> Some y)));
  Alcotest.(check string) "maximize infeasible-at-0" infeasible_at_0
    (record (fun on_round -> BS.maximize ~on_round (fun _ -> None)));
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "maximize_par feasible-at-1 (k=%d)" domains)
            feasible_at_1
            (record (fun on_round ->
                 BS.maximize_par ~pool ~on_round (fun y -> Some y)));
          Alcotest.(check string)
            (Printf.sprintf "maximize_par infeasible-at-0 (k=%d)" domains)
            infeasible_at_0
            (record (fun on_round ->
                 BS.maximize_par ~pool ~on_round (fun _ -> None)))))
    [ 1; 2; 4 ]

(* Round/probe regression: with a k-domain pool each Pool.map round resolves
   ⌈log₂(k+1)⌉ bisection levels, so the number of oracle rounds (the
   latency-critical serial steps; counted via [on_round]) must never exceed
   the sequential probe count and must meet the ⌈log_{k+1}(1/tol)⌉ + 2
   bound. The oracle call counter additionally checks the speculative
   fan-out stays within one tree per round: per-round batches have at most
   2k - 1 probes. *)

let round_bound ~k ~tolerance =
  let inv = 1. /. tolerance in
  let rec go rounds reach =
    if reach >= inv then rounds else go (rounds + 1) (reach *. float_of_int (k + 1))
  in
  go 0 1. + 2

let test_round_regression () =
  let tolerances = [ 1e-2; 1e-3; BS.default_tolerance ] in
  let target = 0.37 in
  List.iter
    (fun k ->
      with_pool ~domains:k (fun pool ->
          List.iter
            (fun tolerance ->
              let calls = ref 0 in
              let oracle y =
                incr calls;
                if y <= target then Some y else None
              in
              let seq_probes = ref 0 in
              ignore
                (BS.maximize ~tolerance
                   ~on_round:(fun _ -> incr seq_probes)
                   oracle);
              Alcotest.(check int)
                (Printf.sprintf "sequential rounds = oracle calls (tol %g)"
                   tolerance)
                !calls !seq_probes;
              let par_rounds = ref 0 in
              let max_batch = ref 0 in
              ignore
                (BS.maximize_par ~tolerance ~pool
                   ~on_round:(fun batch ->
                     incr par_rounds;
                     max_batch := max !max_batch (Array.length batch))
                   oracle);
              let msg fmt =
                Printf.ksprintf
                  (fun s -> Printf.sprintf "%s (k=%d, tol %g)" s k tolerance)
                  fmt
              in
              Alcotest.(check bool)
                (msg "par rounds %d <= seq probes %d" !par_rounds !seq_probes)
                true
                (!par_rounds <= !seq_probes);
              Alcotest.(check bool)
                (msg "par rounds %d <= bound %d" !par_rounds
                   (round_bound ~k ~tolerance))
                true
                (!par_rounds <= round_bound ~k ~tolerance);
              Alcotest.(check bool)
                (msg "batch size %d <= 2k-1" !max_batch)
                true
                (!max_batch <= max 1 ((2 * k) - 1)))
            tolerances))
    [ 1; 2; 4 ]

(* Forced speculation depths: any [~depth] must leave the result
   bit-identical to the sequential search — depth only trades probes for
   rounds. Swept over real packing oracles on a corpus slice so the
   on-path points exercise genuine bracket updates, not just the
   synthetic threshold. *)
let test_forced_depth_differential () =
  let slice =
    List.filteri (fun i _ -> i mod 5 = 0) corpus
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          List.iter
            (fun depth ->
              List.iter
                (fun (seed, inst) ->
                  List.iter
                    (fun (oname, strategy) ->
                      let oracle =
                        Heuristics.Vp_solver.pack_at_yield strategy inst
                      in
                      check_identical
                        (Printf.sprintf
                           "seed %d, %s oracle, %d domains, depth %d" seed
                           oname domains depth)
                        (BS.maximize oracle)
                        (BS.maximize_par ~pool ~depth oracle))
                    oracle_strategies)
                slice)
            [ 1; 2; 3; 5 ]))
    (pool_sizes ())

(* Probe accounting: the parallel search calls the oracle exactly
   [sequential probes + speculative waste] times — every extra call is an
   off-path speculative point, none are silently dropped or repeated. *)
let test_probe_accounting () =
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let target = 0.37 in
  let waste () =
    Obs.Metrics.Snapshot.counter_value (Obs.Metrics.snapshot ())
      "binary_search.speculative_waste"
  in
  List.iter
    (fun k ->
      with_pool ~domains:k (fun pool ->
          List.iter
            (fun tolerance ->
              let seq_calls = ref 0 in
              ignore
                (BS.maximize ~tolerance (fun y ->
                     incr seq_calls;
                     if y <= target then Some y else None));
              let par_calls = ref 0 in
              let waste0 = waste () in
              ignore
                (BS.maximize_par ~tolerance ~pool (fun y ->
                     incr par_calls;
                     if y <= target then Some y else None));
              Alcotest.(check int)
                (Printf.sprintf
                   "par calls = seq calls + waste (k=%d, tol %g)" k tolerance)
                (!seq_calls + (waste () - waste0))
                !par_calls)
            [ 1e-2; 1e-3; BS.default_tolerance ]))
    [ 1; 2; 4 ]

(* The same regression on a real packing search end-to-end: METAHVPLIGHT's
   multi-strategy oracle on an instance whose optimum lies strictly inside
   (0, 1), so the full bisection runs. *)
let test_round_regression_packing () =
  let inst = gen_instance ~seed:7 ~hosts:5 ~services:14 ~slack:0.35 in
  let strategies = Packing.Strategy.hvp_light in
  let seq_probes = ref 0 in
  let seq =
    Heuristics.Vp_solver.solve_multi
      ~on_round:(fun _ -> incr seq_probes)
      strategies inst
  in
  (match seq with
  | Some sol when sol.min_yield > 0. && sol.min_yield < 1. -> ()
  | Some _ -> Alcotest.fail "expected an interior optimum (fast path hit)"
  | None -> Alcotest.fail "expected a feasible instance");
  List.iter
    (fun k ->
      with_pool ~domains:k (fun pool ->
          let par_rounds = ref 0 in
          let par =
            Heuristics.Vp_solver.solve_multi ~pool
              ~on_round:(fun _ -> incr par_rounds)
              strategies inst
          in
          (match (seq, par) with
          | Some a, Some b ->
              Alcotest.(check bool)
                (Printf.sprintf "same placement (k=%d)" k)
                true
                (a.placement = b.placement
                && Int64.bits_of_float a.min_yield
                   = Int64.bits_of_float b.min_yield)
          | _ -> Alcotest.fail "Some/None disagreement");
          Alcotest.(check bool)
            (Printf.sprintf "METAHVPLIGHT rounds %d <= seq probes %d (k=%d)"
               !par_rounds !seq_probes k)
            true
            (!par_rounds <= !seq_probes);
          Alcotest.(check bool)
            (Printf.sprintf "METAHVPLIGHT rounds %d within bound %d (k=%d)"
               !par_rounds
               (round_bound ~k ~tolerance:BS.default_tolerance)
               k)
            true
            (!par_rounds <= round_bound ~k ~tolerance:BS.default_tolerance))
        )
    [ 2; 4 ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("maximize_par = maximize on FF/BF/PP/CP oracles",
       test_differential_packing_oracles);
      ("maximize_par fast paths and tolerances", test_differential_fast_paths);
      ("exact announced probe sequences", test_probe_sequences);
      ("endpoint probe announcements", test_probe_sequence_endpoints);
      ("forced depths stay bit-identical", test_forced_depth_differential);
      ("probe accounting: par = seq + waste", test_probe_accounting);
      ("round count: bound and <= sequential probes", test_round_regression);
      ("round count on a packing search", test_round_regression_packing);
    ]
